package authtext

import (
	"testing"
)

func TestExportImportClient(t *testing.T) {
	o := owner(t)
	blob, err := o.ExportClient()
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClientFromExport(blob)
	if err != nil {
		t.Fatal(err)
	}
	server := o.Server()
	res, err := server.Search("patent examiner", 3, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Verify("patent examiner", 3, res); err != nil {
		t.Fatalf("imported client rejected a valid result: %v", err)
	}
	// And it still detects tampering.
	if len(res.Hits) > 0 {
		res.Hits[0].Score += 1
		if err := client.Verify("patent examiner", 3, res); err == nil {
			t.Fatal("imported client accepted a tampered result")
		}
	}
}

func TestExportRejectsFastSigner(t *testing.T) {
	o, err := NewOwner(newsDocs(), WithFastSigner([]byte("x")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.ExportClient(); err == nil {
		t.Fatal("fast-signer collection exported")
	}
}

func TestImportRejectsTamperedExport(t *testing.T) {
	o := owner(t)
	blob, err := o.ExportClient()
	if err != nil {
		t.Fatal(err)
	}
	for _, offset := range []int{0, 6, len(blob) / 2, len(blob) - 3} {
		bad := append([]byte{}, blob...)
		bad[offset] ^= 0x40
		if _, err := NewClientFromExport(bad); err == nil {
			t.Fatalf("tampered export (offset %d) accepted", offset)
		}
	}
	if _, err := NewClientFromExport(blob[:10]); err == nil {
		t.Fatal("truncated export accepted")
	}
	if _, err := NewClientFromExport(append(blob, 0)); err == nil {
		t.Fatal("padded export accepted")
	}
}

func TestManifestDecodeRoundTripViaExport(t *testing.T) {
	o := owner(t)
	m, _ := o.col.Manifest()
	blob, err := o.ExportClient()
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClientFromExport(blob)
	if err != nil {
		t.Fatal(err)
	}
	got := client.manifest
	if got.N != m.N || got.M != m.M || got.HashSize != m.HashSize ||
		got.BlockSize != m.BlockSize || got.DictMode != m.DictMode ||
		got.VocabProofsEnabled != m.VocabProofsEnabled {
		t.Fatalf("manifest fields lost in round trip:\n in: %+v\nout: %+v", m, got)
	}
	if string(got.DocHashRoot) != string(m.DocHashRoot) {
		t.Fatal("doc hash root lost")
	}
	if string(got.NameDictRoot) != string(m.NameDictRoot) {
		t.Fatal("name dict root lost")
	}
}
