package authtext_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"authtext"
	"authtext/internal/httpapi"
)

// Regression for the fleet-shaped generation race: behind a front end a
// search answer and the follow-up manifest refresh can land on DIFFERENT
// replicas, and the manifest replica may lag the answering one mid-swap.
// The refresh then "succeeds" without advancing (same-generation manifest
// the client already holds) and the answer still names a newer
// generation. The single-server race (update between answer and refresh)
// always advances the client; only the cross-replica shape leaves it
// behind — the retry loop must compare generations in BOTH directions.
//
// Deterministic reproduction: the real handler answers searches at
// generation 2, while a wrapper serves a captured generation-1 export for
// the first two /v1/manifest fetches (bootstrap + first refresh) before
// delegating — exactly what a lagging manifest replica looks like.
func TestRemoteSearchRetriesAcrossLaggingManifestReplica(t *testing.T) {
	owner, _, err := authtext.NewLiveOwner(liveRemoteDocs(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	staleExport, err := owner.ExportClient()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := owner.AddDocuments(liveRemoteDocs(10, 2)); err != nil {
		t.Fatal(err)
	}
	handler, err := owner.HTTPHandler()
	if err != nil {
		t.Fatal(err)
	}

	var manifestGets atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == httpapi.PathManifest {
			if manifestGets.Add(1) <= 2 {
				w.Header().Set("Content-Type", "application/json")
				_ = json.NewEncoder(w).Encode(httpapi.ManifestResponse{
					Format: httpapi.FormatATCX,
					Export: staleExport,
				})
				return
			}
		}
		handler.ServeHTTP(w, r)
	}))
	defer srv.Close()

	rc, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rc.Search(context.Background(), "merkle tree", 5, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		t.Fatalf("search across the lagging manifest replica failed: %v", err)
	}
	if want := owner.Generation(); res.Generation != want {
		t.Fatalf("verified generation %d, want %d", res.Generation, want)
	}
	// Bootstrap (stale), first refresh (stale, non-advancing), retry
	// refresh (fresh): anything fewer means the race was not exercised.
	if n := manifestGets.Load(); n < 3 {
		t.Fatalf("only %d manifest fetches; the stale-refresh retry path did not run", n)
	}
	if rc.Generation() != owner.Generation() {
		t.Fatalf("client generation %d after success, want %d", rc.Generation(), owner.Generation())
	}
}
