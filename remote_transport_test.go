package authtext_test

import (
	"context"
	"net/http/httptest"
	"net/http/httptrace"
	"sync/atomic"
	"testing"

	"authtext"
)

// TestRemoteConnectionReuse is the regression fence around the tuned
// default transport: a verifier's traffic shape is many small
// request/response pairs against one host, and the default
// http.Transport's 2-idle-conns-per-host cap silently turns that into a
// redial (and TLS re-handshake) per burst. The test drives a sequence of
// searches through one RemoteClient and requires that after the first
// request every connection obtained is a reused one.
func TestRemoteConnectionReuse(t *testing.T) {
	handler, _ := remoteEnv(t)
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}

	var gets, reused atomic.Int64
	trace := &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) {
			gets.Add(1)
			if info.Reused {
				reused.Add(1)
			}
		},
	}
	ctx := httptrace.WithClientTrace(context.Background(), trace)

	// First call bootstraps the manifest and then searches — the very
	// first connection is necessarily fresh; everything after it must
	// come from the idle pool.
	const rounds = 8
	for i := 0; i < rounds; i++ {
		if _, err := rc.Search(ctx, remoteQuery, remoteR, authtext.TNRA, authtext.ChainMHT); err != nil {
			t.Fatalf("search %d failed: %v", i, err)
		}
	}
	g, ru := gets.Load(), reused.Load()
	if g < rounds {
		t.Fatalf("saw %d connections for %d searches", g, rounds)
	}
	if fresh := g - ru; fresh > 1 {
		t.Fatalf("%d of %d connections were fresh dials; the tuned transport must reuse after the first", fresh, g)
	}
}
