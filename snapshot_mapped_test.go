package authtext

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// Facade-level mapped-open suite: OpenSnapshotMapped, the sharded
// directory variant and the mapped LiveReplica must be drop-in
// replacements for the copying opens — same answers, same verification
// verdicts — with the lifetime rules (Close, pinned servers across
// generation swaps) actually holding.

func writeOwnerSnapshot(t *testing.T, o *Owner) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "col.atsn")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMappedSnapshotServesIdentically: the mapped open answers exactly
// like the copying open — byte-identical VOs — and its answers verify
// against both its own client and the original owner's.
func TestMappedSnapshotServesIdentically(t *testing.T) {
	owner, err := NewOwner(snapshotTestDocs(), WithVocabularyProofs())
	if err != nil {
		t.Fatal(err)
	}
	path := writeOwnerSnapshot(t, owner)

	copyServer, _, err := OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := OpenSnapshotMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	if err := ms.Validate(); err != nil {
		t.Fatalf("background validation failed on an intact snapshot: %v", err)
	}
	if ms.SizeBytes() == 0 {
		t.Fatal("mapped snapshot reports zero size")
	}

	query := "merkle tree root"
	origClient := owner.Client()
	for _, algo := range []Algorithm{TRA, TNRA} {
		for _, scheme := range []Scheme{MHT, ChainMHT} {
			want, err := copyServer.Search(query, 3, algo, scheme)
			if err != nil {
				t.Fatalf("%s-%s: copying server: %v", algo, scheme, err)
			}
			got, err := ms.Server().Search(query, 3, algo, scheme)
			if err != nil {
				t.Fatalf("%s-%s: mapped server: %v", algo, scheme, err)
			}
			if !bytes.Equal(want.VO, got.VO) {
				t.Fatalf("%s-%s: mapped VO differs from the copying open's", algo, scheme)
			}
			if err := ms.Client().Verify(query, 3, got); err != nil {
				t.Errorf("%s-%s: mapped client rejected mapped server: %v", algo, scheme, err)
			}
			if err := origClient.Verify(query, 3, got); err != nil {
				t.Errorf("%s-%s: original owner's client rejected mapped server: %v", algo, scheme, err)
			}
		}
	}
}

// TestShardedSnapshotDirMapped: the zero-copy sharded open performs the
// same signed-set cross-checks and serves verifiable merged results.
func TestShardedSnapshotDirMapped(t *testing.T) {
	owner, err := NewShardedOwner(shardedTestDocs(), 3,
		WithFastSigner([]byte("sharded-mapped")), WithSingletonTerms())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := owner.WriteSnapshotDir(dir); err != nil {
		t.Fatal(err)
	}

	ms, err := OpenShardedSnapshotDirMapped(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	if err := ms.Validate(); err != nil {
		t.Fatalf("background validation failed on an intact directory: %v", err)
	}
	res, err := ms.Server().Search(shardedQuery, 5, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Client().Verify(shardedQuery, 5, res); err != nil {
		t.Fatalf("mapped sharded answer failed verification: %v", err)
	}
	if err := owner.Client().Verify(shardedQuery, 5, res); err != nil {
		t.Fatalf("owner's client rejected the mapped sharded answer: %v", err)
	}

	// A swapped shard file must fail the mapped open's cross-checks just
	// like the copying open's.
	if err := os.Rename(filepath.Join(dir, shardSnapshotName(0)),
		filepath.Join(dir, shardSnapshotName(0)+".bak")); err != nil {
		t.Fatal(err)
	}
	if bad, err := OpenShardedSnapshotDirMapped(dir); err == nil {
		bad.Close()
		t.Fatal("mapped open accepted a directory missing a shard")
	}
}

// TestLiveReplicaMappedSwap: a mapped replica hot-swaps generations, a
// Server() pinned before the swap keeps answering its own generation
// (its pages stay mapped until the handle is collected), and the
// post-swap replica serves the new generation.
func TestLiveReplicaMappedSwap(t *testing.T) {
	dir := t.TempDir()
	owner, _, err := NewLiveOwner(liveDocs(0, 12), WithFastSigner([]byte("live-mapped")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := owner.WriteSnapshotDir(dir); err != nil {
		t.Fatal(err)
	}
	replica, err := OpenLiveSnapshotDirMapped(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	if replica.Generation() != 1 {
		t.Fatalf("replica generation = %d", replica.Generation())
	}

	pinned := replica.Server()
	client1 := replica.Client()
	res1, err := pinned.Search(liveQuery, 3, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if err := client1.Verify(liveQuery, 3, res1); err != nil {
		t.Fatalf("generation-1 answer failed verification: %v", err)
	}

	// Publish generation 2 and swap.
	if _, _, err := owner.Update(liveDocs(12, 2), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := owner.WriteSnapshotDir(dir); err != nil {
		t.Fatal(err)
	}
	swapped, err := replica.Reload()
	if err != nil || !swapped {
		t.Fatalf("reload = (%v, %v), want swap", swapped, err)
	}
	if replica.Generation() != 2 {
		t.Fatalf("replica generation after reload = %d", replica.Generation())
	}

	// The superseded generation's mapping must survive for the pinned
	// handle: it still answers, and its answers still verify against the
	// generation-1 client — even after GC runs (nothing may have unmapped
	// the pages under the reader).
	runtime.GC()
	res1b, err := pinned.Search(liveQuery, 3, TNRA, ChainMHT)
	if err != nil {
		t.Fatalf("pinned generation-1 server failed after swap: %v", err)
	}
	if err := client1.Verify(liveQuery, 3, res1b); err != nil {
		t.Fatalf("pinned generation-1 answer failed verification after swap: %v", err)
	}
	if !bytes.Equal(res1.VO, res1b.VO) {
		t.Fatal("pinned server's answers changed across the swap")
	}

	res2, err := replica.Server().Search(liveQuery, 3, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.Client().Verify(liveQuery, 3, res2); err != nil {
		t.Fatalf("generation-2 answer failed verification: %v", err)
	}
	if res2.Generation != 2 {
		t.Fatalf("generation-2 server answered with generation %d", res2.Generation)
	}
}
