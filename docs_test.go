package authtext_test

import (
	"go/format"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Documentation checks: the docs are part of the product (ARCHITECTURE.md
// is the entry point and links into every subsystem spec), so broken
// intra-repo links and Go snippets that no longer parse fail the build
// like any other regression. CI runs these in the docs job.

// docFiles returns every tracked markdown file in the repo root, docs/
// and examples/.
func docFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, glob := range []string{"*.md", "docs/*.md", "examples/*.md", "examples/*/*.md"} {
		matches, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, matches...)
	}
	if len(files) < 8 {
		t.Fatalf("found only %d markdown files; the glob set is probably wrong: %v", len(files), files)
	}
	return files
}

var markdownLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsLinksResolve verifies that every relative markdown link in the
// documentation points at a file that exists in the repository.
func TestDocsLinksResolve(t *testing.T) {
	for _, file := range docFiles(t) {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range markdownLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: link (%s) does not resolve: %v", file, m[1], err)
			}
		}
	}
}

var goFence = regexp.MustCompile("(?s)```go\n(.*?)```")

// TestDocsGoSnippets runs every ```go block in the documentation through
// gofmt's parser, so API drift in the docs' code samples fails loudly.
// Blocks using prose ellipses ("...", "…") are deliberately abridged and
// are skipped.
func TestDocsGoSnippets(t *testing.T) {
	snippets := 0
	for _, file := range docFiles(t) {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range goFence.FindAllStringSubmatch(string(raw), -1) {
			src := m[1]
			if strings.Contains(src, "...") || strings.Contains(src, "…") {
				continue
			}
			snippets++
			// format.Source accepts a full file or a declaration/statement
			// list — exactly the two shapes doc snippets take.
			if _, err := format.Source([]byte(src)); err != nil {
				t.Errorf("%s: go snippet %d does not parse: %v\n%s", file, i+1, err, src)
			}
		}
	}
	if snippets == 0 {
		t.Fatal("no Go snippets found in the docs; the fence regexp is probably wrong")
	}
}
