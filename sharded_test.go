package authtext

import (
	"os"
	"path/filepath"
	"testing"
)

func shardedTestDocs() []Document {
	texts := []string{
		"professional users require integrity assurance from paid content services",
		"a merkle hash tree authenticates messages by signing the root digest",
		"threshold algorithms pop the entry with the highest term score",
		"the verification object contains digests to recompute the signed root",
		"sorted access maintains lower and upper bounds for candidate documents",
		"signatures generated with the private key verify with the public key",
		"the frequency ordered inverted index stores impact entries",
		"an audit trail archives verification objects for every decision",
		"random access fetches term frequencies from the document record",
		"chains of block trees verify leading blocks with one stored signature",
		"buddy leaves are cheaper to transmit than covering digests",
		"the user recomputes every score and checks the excluded documents",
		"query processing costs are dominated by disk reads of list blocks",
		"altered rankings divert attention from certain documents",
		"spurious results with fake entries may discourage competitors",
		"a breached server may return incorrect results to its users",
	}
	docs := make([]Document, len(texts))
	for i, s := range texts {
		docs[i] = Document{Content: []byte(s)}
	}
	return docs
}

func buildShardedFixture(t *testing.T, shards int, opts ...Option) (*ShardedServer, *ShardedClient) {
	t.Helper()
	opts = append([]Option{WithFastSigner([]byte("sharded-test")), WithSingletonTerms()}, opts...)
	owner, err := NewShardedOwner(shardedTestDocs(), shards, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if owner.Shards() != shards {
		t.Fatalf("Shards() = %d, want %d", owner.Shards(), shards)
	}
	return owner.Server(), owner.Client()
}

const shardedQuery = "merkle tree signatures verify the root digest"

func TestShardedHonestSearchVerifies(t *testing.T) {
	server, client := buildShardedFixture(t, 4)
	for _, algo := range []Algorithm{TRA, TNRA} {
		for _, scheme := range []Scheme{MHT, ChainMHT} {
			res, err := server.Search(shardedQuery, 5, algo, scheme)
			if err != nil {
				t.Fatalf("%s-%s: %v", algo, scheme, err)
			}
			if len(res.PerShard) != 4 {
				t.Fatalf("%s-%s: %d shard responses", algo, scheme, len(res.PerShard))
			}
			if len(res.Merged) == 0 {
				t.Fatalf("%s-%s: empty merged ranking", algo, scheme)
			}
			if err := client.Verify(shardedQuery, 5, res); err != nil {
				t.Errorf("%s-%s: honest result rejected: %v", algo, scheme, err)
			}
			// Merged hits must be globally ordered and carry content.
			for i := 1; i < len(res.Merged); i++ {
				if res.Merged[i].Score > res.Merged[i-1].Score {
					t.Errorf("%s-%s: merged ranking not sorted at %d", algo, scheme, i)
				}
			}
			for i, h := range res.Merged {
				if len(h.Content) == 0 {
					t.Errorf("%s-%s: merged hit %d has no content", algo, scheme, i)
				}
				if h.GlobalID < 0 || h.GlobalID >= len(shardedTestDocs()) {
					t.Errorf("%s-%s: merged hit %d global id %d out of range", algo, scheme, i, h.GlobalID)
				}
			}
		}
	}
}

// TestShardedTamperingDetected is the acceptance matrix: altering any
// single shard's response, dropping a shard, or reordering the merged
// top-k must classify as tampering for both TRA and TNRA.
func TestShardedTamperingDetected(t *testing.T) {
	server, client := buildShardedFixture(t, 4)
	for _, algo := range []Algorithm{TRA, TNRA} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			fresh := func() *ShardedResult {
				res, err := server.Search(shardedQuery, 5, algo, ChainMHT)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Merged) < 2 {
					t.Fatalf("need ≥ 2 merged hits to tamper, got %d", len(res.Merged))
				}
				return res
			}
			expectTampered := func(name string, res *ShardedResult) {
				t.Helper()
				err := client.Verify(shardedQuery, 5, res)
				if err == nil {
					t.Errorf("%s: tampering went undetected", name)
					return
				}
				if !IsTampered(err) {
					t.Errorf("%s: error not classified as tampering: %v", name, err)
				}
			}

			// 1. Alter a single shard's response: inflate a score.
			res := fresh()
			victim := res.Merged[0].Shard
			if len(res.PerShard[victim].Hits) == 0 {
				t.Fatalf("victim shard %d has no hits", victim)
			}
			res.PerShard[victim].Hits[0].Score += 1
			expectTampered("inflated shard score", res)

			// 2. Alter a single shard's response: swap delivered content.
			res = fresh()
			victim = res.Merged[0].Shard
			res.PerShard[victim].Hits[0].Content = []byte("forged document content")
			expectTampered("forged shard content", res)

			// 3. Alter a single shard's response: corrupt its VO.
			res = fresh()
			victim = res.Merged[0].Shard
			res.PerShard[victim].VO[len(res.PerShard[victim].VO)/2] ^= 0x01
			expectTampered("corrupted shard VO", res)

			// 4. Drop a shard entirely.
			res = fresh()
			res.PerShard = res.PerShard[:len(res.PerShard)-1]
			expectTampered("dropped shard", res)

			// 5. Null out a shard's response while keeping the count.
			res = fresh()
			res.PerShard[0] = nil
			expectTampered("nil shard response", res)

			// 6. Reorder the merged top-k.
			res = fresh()
			res.Merged[0], res.Merged[1] = res.Merged[1], res.Merged[0]
			expectTampered("reordered merge", res)

			// 7. Truncate the merged top-k (hide the best hit).
			res = fresh()
			res.Merged = res.Merged[1:]
			expectTampered("truncated merge", res)

			// 8. Rewrite a merged entry's global ID.
			res = fresh()
			res.Merged[0].GlobalID = (res.Merged[0].GlobalID + 1) % len(shardedTestDocs())
			expectTampered("rewritten global id", res)

			// 9. Swap merged content against the shard answers.
			res = fresh()
			res.Merged[0].Content = []byte("forged merged content")
			expectTampered("forged merged content", res)

			// Control: an untouched result still verifies.
			if err := client.Verify(shardedQuery, 5, fresh()); err != nil {
				t.Errorf("control: honest result rejected: %v", err)
			}
		})
	}
}

func TestShardedWrongShardCountRejected(t *testing.T) {
	server, _ := buildShardedFixture(t, 4)
	_, otherClient := buildShardedFixture(t, 2)
	res, err := server.Search(shardedQuery, 5, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	err = otherClient.Verify(shardedQuery, 5, res)
	if err == nil || !IsTampered(err) {
		t.Errorf("4-shard result accepted by 2-shard client: %v", err)
	}
}

func TestShardedExportRoundTrip(t *testing.T) {
	owner, err := NewShardedOwner(shardedTestDocs(), 3, WithSingletonTerms())
	if err != nil {
		t.Fatal(err)
	}
	export, err := owner.ExportClient()
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewShardedClientFromExport(export)
	if err != nil {
		t.Fatal(err)
	}
	if client.Shards() != 3 {
		t.Fatalf("Shards() = %d", client.Shards())
	}
	server := owner.Server()
	res, err := server.Search(shardedQuery, 4, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Verify(shardedQuery, 4, res); err != nil {
		t.Errorf("export-derived client rejected honest result: %v", err)
	}

	// Any flipped byte must be rejected at parse time.
	for _, i := range []int{0, 6, len(export) / 2, len(export) - 1} {
		bad := append([]byte(nil), export...)
		bad[i] ^= 0x01
		if _, err := NewShardedClientFromExport(bad); err == nil {
			t.Errorf("flipping export byte %d went undetected", i)
		}
	}
	if _, err := NewShardedClientFromExport(export[:len(export)-3]); err == nil {
		t.Error("truncated export accepted")
	}
	if _, err := NewShardedClientFromExport(append(append([]byte(nil), export...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestShardedSnapshotDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	owner, err := NewShardedOwner(shardedTestDocs(), 3,
		WithFastSigner([]byte("sharded-snap")), WithSingletonTerms())
	if err != nil {
		t.Fatal(err)
	}
	snapDir := filepath.Join(dir, "shards")
	if err := owner.WriteSnapshotDir(snapDir); err != nil {
		t.Fatal(err)
	}
	if !IsShardedSnapshot(snapDir) {
		t.Error("IsShardedSnapshot = false for a sharded snapshot directory")
	}
	if IsShardedSnapshot(filepath.Join(dir, "nope")) {
		t.Error("IsShardedSnapshot = true for a missing path")
	}

	server, client, err := OpenShardedSnapshotDir(snapDir)
	if err != nil {
		t.Fatal(err)
	}
	if server.Shards() != 3 {
		t.Fatalf("reopened server has %d shards", server.Shards())
	}
	for _, algo := range []Algorithm{TRA, TNRA} {
		res, err := server.Search(shardedQuery, 4, algo, ChainMHT)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := client.Verify(shardedQuery, 4, res); err != nil {
			t.Errorf("%s: snapshot-booted result rejected: %v", algo, err)
		}
		// Cross-check against a client from the ORIGINAL owner: the
		// snapshot channel is untrusted, the owner's export is the root.
		if err := owner.Client().Verify(shardedQuery, 4, res); err != nil {
			t.Errorf("%s: original client rejected snapshot-booted result: %v", algo, err)
		}
	}

	// Swapping two shard files must fail the open-time cross-check.
	a := filepath.Join(snapDir, shardSnapshotName(0))
	b := filepath.Join(snapDir, shardSnapshotName(1))
	tmp := filepath.Join(snapDir, "tmp")
	for _, mv := range [][2]string{{a, tmp}, {b, a}, {tmp, b}} {
		if err := os.Rename(mv[0], mv[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := OpenShardedSnapshotDir(snapDir); err == nil {
		t.Error("swapped shard files opened cleanly")
	}
}

func TestShardedBuildErrors(t *testing.T) {
	if _, err := NewShardedOwner(nil, 2); err == nil {
		t.Error("empty collection accepted")
	}
	if _, err := NewShardedOwner(shardedTestDocs(), 0, WithSingletonTerms()); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewShardedOwner(shardedTestDocs(), len(shardedTestDocs())+1, WithSingletonTerms()); err == nil {
		t.Error("more shards than documents accepted")
	}
}

func TestShardedPartitionHash(t *testing.T) {
	owner, err := NewShardedOwner(shardedTestDocs(), 2,
		WithFastSigner([]byte("hash-part")), WithSingletonTerms(),
		WithShardPartitioner(PartitionHash))
	if err != nil {
		t.Fatal(err)
	}
	server, client := owner.Server(), owner.Client()
	res, err := server.Search(shardedQuery, 4, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Verify(shardedQuery, 4, res); err != nil {
		t.Errorf("hash-partitioned result rejected: %v", err)
	}
}

func TestShardedStatsAggregate(t *testing.T) {
	server, _ := buildShardedFixture(t, 4)
	res, err := server.Search(shardedQuery, 5, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Shards != 4 {
		t.Errorf("Stats.Shards = %d", st.Shards)
	}
	var voSum int
	for _, sr := range res.PerShard {
		voSum += len(sr.VO)
	}
	if st.VOBytes != voSum {
		t.Errorf("Stats.VOBytes = %d, per-shard sum %d", st.VOBytes, voSum)
	}
	if st.Wall <= 0 {
		t.Errorf("Stats.Wall = %v", st.Wall)
	}
}
