package authtext

import (
	"io"
	"net/http"
	"sync"
	"time"

	"authtext/internal/obs"
	"authtext/internal/snapshot"
)

// Metrics is the serving fleet's metric registry: per-stage search cost
// decomposition, live-path generation telemetry, VO-cache counters and
// client-side verification costs, exposed in the Prometheus text format at
// /v1/metrics (docs/OBSERVABILITY.md is the catalog). One Metrics may be
// shared by any number of servers, handlers and clients — series are
// atomics, and every instrument is pre-bound at construction so the hot
// search path never takes the registry lock.
//
// A nil *Metrics is valid everywhere one is accepted and records nothing:
// servers without metrics attached pay only a nil check.
type Metrics struct {
	reg *obs.Registry

	stageEngine      *obs.Histogram
	stageVOEncode    *obs.Histogram
	stageCacheLookup *obs.Histogram
	stageMerge       *obs.Histogram
	stageWireDecode  *obs.Histogram

	searchSingle  *obs.Counter
	searchSharded *obs.Counter

	liveGeneration  *obs.Gauge
	liveSwaps       *obs.Counter
	liveSwapSeconds *obs.Histogram
	liveReuseRatio  *obs.Gauge
	liveDocuments   *obs.Gauge
	liveTombstones  *obs.Gauge
	liveCompactions *obs.Counter
	snapshotOpen    *obs.Histogram

	clientVerify *obs.Histogram
	clientTamper *obs.Counter

	fleetCrosschecks   *obs.Counter
	fleetEquivocations *obs.Counter
	fleetReplicaLag    *obs.Gauge

	cacheOnce sync.Once
}

// swapBuckets spans 1ms to 30s: generation rebuilds are index builds, not
// request-scale events.
var swapBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30}

// NewMetrics returns a registry with every server-side instrument
// registered (so /v1/metrics serves the full catalog from the first
// scrape, zero-valued until traffic arrives).
func NewMetrics() *Metrics {
	r := obs.NewRegistry()
	m := &Metrics{reg: r}

	const stageHelp = "Per-stage server cost decomposition of one search (seconds)."
	stage := func(name string) *obs.Histogram {
		return r.Histogram("authtext_search_stage_seconds", stageHelp,
			obs.DefLatencyBuckets, obs.L("stage", name))
	}
	m.stageEngine = stage("engine")
	m.stageVOEncode = stage("vo_encode")
	m.stageCacheLookup = stage("cache_lookup")
	m.stageMerge = stage("merge")
	// wire_decode is the remote clients' response decode cost (JSON parse or
	// frame check+inflate+decode), the receive-side mirror of wire_encode.
	m.stageWireDecode = stage("wire_decode")
	// The wire_encode stage is observed by the HTTP layer against the same
	// family; registering it here keeps the catalog complete pre-traffic.
	stage("wire_encode")

	m.reg.GaugeFunc("authtext_snapshot_mapped_bytes",
		"Snapshot bytes currently memory-mapped by this process (zero-copy opens).",
		func() float64 { return float64(snapshot.MappedBytes()) })

	const searchHelp = "Searches answered, by collection kind."
	m.searchSingle = r.Counter("authtext_searches_total", searchHelp, obs.L("kind", "single"))
	m.searchSharded = r.Counter("authtext_searches_total", searchHelp, obs.L("kind", "sharded"))

	m.liveGeneration = r.Gauge("authtext_live_generation",
		"Latest published (or loaded) collection generation.")
	m.liveSwaps = r.Counter("authtext_live_swaps_total",
		"Generation swaps served: accepted update batches plus replica reloads.")
	m.liveSwapSeconds = r.Histogram("authtext_live_swap_seconds",
		"Wall time from accepting an update batch to swapping the served generation (seconds).",
		swapBuckets)
	m.liveReuseRatio = r.Gauge("authtext_live_signature_reuse_ratio",
		"Signatures reused from the previous generation over the signatures the last update's "+
			"rebuild produced (reuse-eligible structures only; tombstoned slots don't dilute it).")
	m.liveDocuments = r.Gauge("authtext_live_documents",
		"Live documents in the served generation (tombstoned slots excluded).")
	m.liveTombstones = r.Gauge("authtext_live_tombstoned_slots",
		"Removed-but-still-indexed slots the served generation carries.")
	m.liveCompactions = r.Counter("authtext_live_compactions_total",
		"Rebuilds that compacted accumulated tombstoned slots away (full re-signs).")
	m.snapshotOpen = r.Histogram("authtext_live_snapshot_open_seconds",
		"Wall time to open and verify a snapshot during a replica reload (seconds).",
		swapBuckets)

	m.clientVerify = r.Histogram("authtext_client_verify_seconds",
		"Client-side result verification wall time (seconds).", obs.DefLatencyBuckets)
	m.clientTamper = r.Counter("authtext_client_tamper_rejections_total",
		"Results rejected by client verification as tampered.")

	m.fleetCrosschecks = r.Counter("authtext_fleet_crosschecks_total",
		"Cross-replica manifest cross-checks performed by fleet clients.")
	m.fleetEquivocations = r.Counter("authtext_fleet_equivocations_total",
		"Cross-checks that detected fleet equivocation (split views, forks, frozen replicas).")
	m.fleetReplicaLag = r.Gauge("authtext_fleet_replica_lag_generations",
		"Generations between the most and least advanced reachable replica at the last cross-check.")
	return m
}

// WritePrometheus renders every series in the Prometheus text exposition
// format (the /v1/metrics payload).
func (m *Metrics) WritePrometheus(w io.Writer) error { return m.reg.WritePrometheus(w) }

// Handler serves the registry in the exposition format (GET only). Handlers
// built with WithMetrics mount it at /v1/metrics automatically; use this to
// mount the same registry elsewhere.
func (m *Metrics) Handler() http.Handler { return m.reg.Handler() }

// BindVOCache registers the cache's counters as scrape-time series
// (authtext_vocache_*). The series read the SAME atomics /v1/healthz
// reports, so the two surfaces can never disagree. The first bound cache
// wins; binding again (or binding a second cache) is a no-op — which is
// the right behaviour for the supported topology of one shared cache.
// Handlers built with both WithMetrics and WithVOCache bind automatically.
func (m *Metrics) BindVOCache(c *VOCache) {
	if m == nil || c == nil {
		return
	}
	m.cacheOnce.Do(func() {
		counter := func(name, help string, get func(VOCacheStats) int64) {
			m.reg.CounterFunc(name, help, func() float64 { return float64(get(c.Stats())) })
		}
		gauge := func(name, help string, get func(VOCacheStats) int64) {
			m.reg.GaugeFunc(name, help, func() float64 { return float64(get(c.Stats())) })
		}
		counter("authtext_vocache_hits_total", "VO cache lookups answered from memory.",
			func(s VOCacheStats) int64 { return s.Hits })
		counter("authtext_vocache_misses_total", "VO cache lookups that fell through to the engine.",
			func(s VOCacheStats) int64 { return s.Misses })
		counter("authtext_vocache_evictions_total", "VO cache entries dropped by the LRU bound.",
			func(s VOCacheStats) int64 { return s.Evictions })
		counter("authtext_vocache_invalidations_total", "VO cache entries reclaimed after a generation bump.",
			func(s VOCacheStats) int64 { return s.Invalidations })
		gauge("authtext_vocache_entries", "VO cache resident entries.",
			func(s VOCacheStats) int64 { return s.Entries })
		gauge("authtext_vocache_bytes", "VO cache resident bytes.",
			func(s VOCacheStats) int64 { return s.Bytes })
		gauge("authtext_vocache_capacity_bytes", "VO cache configured byte bound.",
			func(s VOCacheStats) int64 { return s.CapacityBytes })
	})
}

// registry exposes the underlying registry to the HTTP layer (same module;
// internal/httpapi registers its request instruments on it).
func (m *Metrics) registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// --- recording helpers (all nil-safe; callers hold pre-bound handles) ---

func (m *Metrics) observeCacheLookup(d time.Duration) {
	if m == nil {
		return
	}
	m.stageCacheLookup.Observe(d.Seconds())
}

// recordSearchHit counts a single-collection search answered from the VO
// cache (no engine stages to observe).
func (m *Metrics) recordSearchHit() {
	if m == nil {
		return
	}
	m.searchSingle.Inc()
}

// recordShardedSearchHit is recordSearchHit for fan-out answers.
func (m *Metrics) recordShardedSearchHit() {
	if m == nil {
		return
	}
	m.searchSharded.Inc()
}

// recordSearch observes one single-collection answer's stage costs.
func (m *Metrics) recordSearch(serverWall, encodeWall time.Duration) {
	if m == nil {
		return
	}
	m.searchSingle.Inc()
	m.stageEngine.Observe((serverWall - encodeWall).Seconds())
	m.stageVOEncode.Observe(encodeWall.Seconds())
}

// recordShardedSearch observes one fan-out answer: every shard's stage
// costs (k observations — real per-collection work) plus the merge.
func (m *Metrics) recordShardedSearch(shardWalls, shardEncodes []time.Duration, mergeWall time.Duration) {
	if m == nil {
		return
	}
	m.searchSharded.Inc()
	for i := range shardWalls {
		m.stageEngine.Observe((shardWalls[i] - shardEncodes[i]).Seconds())
		m.stageVOEncode.Observe(shardEncodes[i].Seconds())
	}
	m.stageMerge.Observe(mergeWall.Seconds())
}

// recordUpdate observes one accepted live update batch.
func (m *Metrics) recordUpdate(rep *UpdateReport) {
	if m == nil || rep == nil {
		return
	}
	m.liveGeneration.Set(float64(rep.Generation))
	m.liveSwaps.Inc()
	m.liveSwapSeconds.Observe(rep.RebuildMillis / 1000)
	if total := rep.SignaturesSigned + rep.SignaturesReused; total > 0 {
		m.liveReuseRatio.Set(float64(rep.SignaturesReused) / float64(total))
	}
	m.liveDocuments.Set(float64(rep.Documents))
	m.liveTombstones.Set(float64(rep.TombstonedSlots))
	if rep.Compacted {
		m.liveCompactions.Inc()
	}
}

// recordSnapshotOpen observes one replica reload.
func (m *Metrics) recordSnapshotOpen(generation uint64, d time.Duration) {
	if m == nil {
		return
	}
	m.liveGeneration.Set(float64(generation))
	m.liveSwaps.Inc()
	m.snapshotOpen.Observe(d.Seconds())
}

// setGeneration records the serving generation without counting a swap
// (initial publication / handler construction).
func (m *Metrics) setGeneration(g uint64) {
	if m == nil {
		return
	}
	m.liveGeneration.Set(float64(g))
}

// observeVerify records one client-side verification outcome.
func (m *Metrics) observeVerify(d time.Duration, err error) {
	if m == nil {
		return
	}
	m.clientVerify.Observe(d.Seconds())
	if IsTampered(err) {
		m.clientTamper.Inc()
	}
}

// observeWireDecode records one response-body decode on a remote client.
func (m *Metrics) observeWireDecode(d time.Duration) {
	if m == nil {
		return
	}
	m.stageWireDecode.Observe(d.Seconds())
}

// countTamper counts a tamper rejection detected before verification ran
// (a response frame that failed its integrity checks).
func (m *Metrics) countTamper() {
	if m == nil {
		return
	}
	m.clientTamper.Inc()
}

// recordCrossCheck observes one fleet cross-check: the generation spread
// between the most and least advanced reachable replica, and whether the
// check detected equivocation.
func (m *Metrics) recordCrossCheck(lagGenerations uint64, equivocated bool) {
	if m == nil {
		return
	}
	m.fleetCrosschecks.Inc()
	m.fleetReplicaLag.Set(float64(lagGenerations))
	if equivocated {
		m.fleetEquivocations.Inc()
		m.clientTamper.Inc()
	}
}
