package authtext

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestServerSearchBatchMatchesSingleSearches(t *testing.T) {
	owner, err := NewOwner(snapshotTestDocs(), WithSingletonTerms())
	if err != nil {
		t.Fatal(err)
	}
	server, client := owner.Server(), owner.Client()
	queries := []BatchQuery{
		{Query: "merkle tree root", R: 3, Algorithm: TNRA, Scheme: ChainMHT},
		{Query: "inverted index", R: 2, Algorithm: TRA, Scheme: MHT},
		{Query: "verification object", R: 4, Algorithm: TNRA, Scheme: MHT},
		{Query: "signed root digest", R: 3, Algorithm: TRA, Scheme: ChainMHT},
	}
	items := server.SearchBatch(queries, 3)
	if len(items) != len(queries) {
		t.Fatalf("%d items for %d queries", len(items), len(queries))
	}
	for i, item := range items {
		if item.Err != nil {
			t.Fatalf("query %d: %v", i, item.Err)
		}
		if err := client.Verify(queries[i].Query, queries[i].R, item.Result); err != nil {
			t.Fatalf("query %d failed verification: %v", i, err)
		}
		// A batched query must be indistinguishable from a lone one: same
		// VO bytes, same per-query stats.
		lone, err := server.Search(queries[i].Query, queries[i].R, queries[i].Algorithm, queries[i].Scheme)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(lone.VO, item.Result.VO) {
			t.Errorf("query %d: batched VO differs from single-query VO", i)
		}
		if lone.Stats.BlockReads != item.Result.Stats.BlockReads ||
			lone.Stats.RandomReads != item.Result.Stats.RandomReads {
			t.Errorf("query %d: batched stats %+v differ from single-query stats %+v",
				i, item.Result.Stats, lone.Stats)
		}
	}
}

func TestServerSearchBatchPerQueryErrors(t *testing.T) {
	owner, err := NewOwner(snapshotTestDocs())
	if err != nil {
		t.Fatal(err)
	}
	server := owner.Server()
	items := server.SearchBatch([]BatchQuery{
		{Query: "merkle tree", R: 0, Algorithm: TNRA, Scheme: ChainMHT}, // r < 1 fails
		{Query: "merkle tree", R: 2, Algorithm: TNRA, Scheme: ChainMHT},
	}, 0)
	if items[0].Err == nil {
		t.Error("r=0 query did not fail")
	}
	if items[1].Err != nil {
		t.Errorf("valid query failed: %v", items[1].Err)
	}
}

func TestShardedServerSearchBatch(t *testing.T) {
	owner, err := NewShardedOwner(snapshotTestDocs(), 3,
		WithFastSigner([]byte("sharded-batch")), WithSingletonTerms())
	if err != nil {
		t.Fatal(err)
	}
	server, client := owner.Server(), owner.Client()
	queries := []BatchQuery{
		{Query: "merkle tree", R: 3, Algorithm: TNRA, Scheme: ChainMHT},
		{Query: "inverted index", R: 2, Algorithm: TRA, Scheme: ChainMHT},
		{Query: "signed root", R: 3, Algorithm: TNRA, Scheme: MHT},
	}
	for i, item := range server.SearchBatch(queries, 2) {
		if item.Err != nil {
			t.Fatalf("query %d: %v", i, item.Err)
		}
		if err := client.Verify(queries[i].Query, queries[i].R, item.Result); err != nil {
			t.Fatalf("query %d failed verification: %v", i, err)
		}
	}
}

func TestRemoteClientSearchBatch(t *testing.T) {
	owner, err := NewOwner(snapshotTestDocs(), WithSingletonTerms())
	if err != nil {
		t.Fatal(err)
	}
	handler, err := owner.HTTPHandler()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	queries := []BatchQuery{
		{Query: "merkle tree", R: 3, Algorithm: TNRA, Scheme: ChainMHT},
		{Query: "inverted index", R: 2, Algorithm: TRA, Scheme: MHT},
		{Query: "verification object", R: 3, Algorithm: TNRA, Scheme: MHT},
	}
	items, err := rc.SearchBatch(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(queries) {
		t.Fatalf("%d items", len(items))
	}
	for i, item := range items {
		if item.Err != nil {
			t.Fatalf("query %d: %v", i, item.Err)
		}
		// Cross-check against a single verified search.
		lone, err := rc.Search(ctx, queries[i].Query, queries[i].R, queries[i].Algorithm, queries[i].Scheme)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(lone.VO, item.Result.VO) {
			t.Errorf("query %d: batched VO differs from single-query VO", i)
		}
	}

	// Client-side limits: a bad element is caught locally (the server
	// would reject the whole batch), with the offending index named.
	if _, err := rc.SearchBatch(ctx, []BatchQuery{{Query: "x", R: 0}}); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := rc.SearchBatch(ctx, []BatchQuery{{Query: "x", R: 1}, {Query: "  ", R: 1}}); err == nil {
		t.Error("blank query accepted")
	} else if !strings.Contains(err.Error(), "query 1") {
		t.Errorf("error does not name the bad query: %v", err)
	}
	big := make([]BatchQuery, 65)
	for i := range big {
		big[i] = BatchQuery{Query: "x", R: 1}
	}
	if _, err := rc.SearchBatch(ctx, big); err == nil {
		t.Error("oversized batch accepted")
	}
	if items, err := rc.SearchBatch(ctx, nil); err != nil || items != nil {
		t.Errorf("empty batch: %v, %v", items, err)
	}
}

// Both remote clients must come with a bounded default transport, and a
// stalled server must fail the call by timeout instead of hanging the
// verifier (the server is untrusted; liveness is the client's own job).
func TestRemoteClientDefaultTimeout(t *testing.T) {
	rc, err := NewRemoteClient("http://127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	if rc.hc.Timeout != defaultHTTPTimeout {
		t.Errorf("RemoteClient default timeout = %v, want %v", rc.hc.Timeout, defaultHTTPTimeout)
	}
	src, err := NewShardedRemoteClient("http://127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	if src.hc.Timeout != defaultHTTPTimeout {
		t.Errorf("ShardedRemoteClient default timeout = %v, want %v", src.hc.Timeout, defaultHTTPTimeout)
	}
}

// stalledServer accepts requests and never answers until the client gives
// up (the handler returns when the request context is cancelled).
func stalledServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestRemoteClientStalledServerTimesOut(t *testing.T) {
	srv := stalledServer(t)
	rc, err := NewRemoteClient(srv.URL, WithHTTPClient(&http.Client{Timeout: 100 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = rc.Search(context.Background(), "anything", 2, TNRA, ChainMHT)
	if err == nil {
		t.Fatal("search against a stalled server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled server held the client for %v", elapsed)
	}
	if !strings.Contains(err.Error(), "Client.Timeout") && !strings.Contains(err.Error(), "deadline") {
		t.Errorf("error does not look like a timeout: %v", err)
	}
}

func TestShardedRemoteClientStalledServerTimesOut(t *testing.T) {
	srv := stalledServer(t)
	rc, err := NewShardedRemoteClient(srv.URL, WithShardedHTTPClient(&http.Client{Timeout: 100 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = rc.Search(context.Background(), "anything", 2, TNRA, ChainMHT)
	if err == nil {
		t.Fatal("search against a stalled server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled server held the client for %v", elapsed)
	}
}
