package authtext

import (
	"context"
	"crypto/sha256"
	"fmt"
	"net/url"
	"strings"
	"sync"
	"time"

	"authtext/internal/core"
	"authtext/internal/httpapi"
)

// FleetClient is a RemoteClient pointed at a fleet front end, plus the
// client-side defence the fleet topology demands: an equivocation
// detector that periodically cross-checks the signed manifests of ≥ 2
// replicas over a direct side channel, bypassing the front end.
//
// A single untrusted server can at worst serve stale or broken answers —
// verification catches both. A FLEET of servers (or a front end) can
// additionally equivocate: show different users different signed states
// of the same collection, each internally consistent. Signatures alone
// cannot catch that — both views verify — so the client compares views
// ACROSS replicas and across time: two different manifests for one
// generation (a split view or a forked generation chain), or a replica
// frozen at an old generation while the fleet advances, are classified
// as ErrEquivocation, a tamper class (IsTampered reports true), never as
// a transient failure. Plain unavailability — crashes, drops, timeouts,
// truncated responses — is reported as ordinary non-tamper errors.
// docs/FLEET.md describes the trust model; the fault-injection battery
// in fleet_equivocation_test.go pins the classification.
type FleetClient struct {
	*RemoteClient
	replicas []string
	maxLag   int

	// mu guards the cross-check history below.
	mu sync.Mutex
	// seen maps generation -> hash of the manifest encoding accepted for
	// it. One generation never has two honest encodings, so a second
	// hash for a seen generation is proof of equivocation.
	seen map[uint64][sha256.Size]byte
	// lagging counts consecutive cross-checks each replica has trailed
	// the fleet maximum (freeze detection).
	lagging map[string]int
}

// FleetOption customises NewFleetClient.
type FleetOption func(*fleetClientConfig)

type fleetClientConfig struct {
	remote []RemoteOption
	maxLag int
}

// WithFleetLagTolerance sets how many consecutive cross-checks a replica
// may trail the fleet's newest generation before the lag is classified
// as a frozen-replica equivocation rather than an in-progress swap
// (default 2; 0 flags any replica still behind on its second sighting).
func WithFleetLagTolerance(n int) FleetOption {
	return func(c *fleetClientConfig) { c.maxLag = n }
}

// WithFleetRemoteOptions forwards options to the underlying RemoteClient
// (transport, metrics, out-of-band export).
func WithFleetRemoteOptions(opts ...RemoteOption) FleetOption {
	return func(c *fleetClientConfig) { c.remote = append(c.remote, opts...) }
}

// NewFleetClient prepares a verifying client for a replica fleet:
// frontendURL is the load-balanced serving path (searches go through
// it), replicaURLs are ≥ 2 direct replica addresses used only for
// manifest cross-checks. The replica set should bypass the front end —
// a front end that can choose which replicas the detector sees can hide
// a split view.
func NewFleetClient(frontendURL string, replicaURLs []string, opts ...FleetOption) (*FleetClient, error) {
	cfg := fleetClientConfig{maxLag: 2}
	for _, opt := range opts {
		opt(&cfg)
	}
	if len(replicaURLs) < 2 {
		return nil, fmt.Errorf("authtext: fleet cross-checking needs at least 2 replicas, got %d", len(replicaURLs))
	}
	replicas := make([]string, len(replicaURLs))
	for i, raw := range replicaURLs {
		u, err := url.Parse(strings.TrimRight(raw, "/"))
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("authtext: bad replica URL %q", raw)
		}
		replicas[i] = u.String()
	}
	rc, err := NewRemoteClient(frontendURL, cfg.remote...)
	if err != nil {
		return nil, err
	}
	return &FleetClient{
		RemoteClient: rc,
		replicas:     replicas,
		maxLag:       cfg.maxLag,
		seen:         make(map[uint64][sha256.Size]byte),
		lagging:      make(map[string]int),
	}, nil
}

// ReplicaStatus is one replica's outcome inside a CrossCheckReport.
type ReplicaStatus struct {
	URL string
	// Generation is the verified generation the replica presented (0 when
	// Err is non-nil).
	Generation uint64
	// Err is nil when the replica's manifest fetched and verified.
	Err error
	// Unavailable reports that Err is transport-shaped (crash, timeout,
	// truncation, 5xx) — NOT evidence of tampering. A false Unavailable
	// with a non-nil Err means the replica presented data that failed
	// verification.
	Unavailable bool
}

// CrossCheckReport is the outcome of one fleet cross-check.
type CrossCheckReport struct {
	Replicas []ReplicaStatus
	// Generation is the highest verified generation observed fleet-wide.
	Generation uint64
	// Lag is the spread between the most and least advanced reachable
	// replica (0 when fewer than two were reachable).
	Lag uint64
	// Reachable counts replicas whose manifest fetched and verified.
	Reachable int
	// Equivocation is non-nil when this check (combined with history)
	// proved conflicting signed states; errors.Is(…, ErrEquivocation) and
	// IsTampered report true for it.
	Equivocation error
}

// manifestState snapshots the client's own accepted manifest (encoding +
// generation) to seed the cross-check history.
func (c *Client) manifestState() (raw []byte, gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.manifest.Encode(), c.manifest.Generation
}

// fetchedManifest is one replica's raw manifest response.
type fetchedManifest struct {
	raw    []byte
	sig    []byte
	netErr error
}

// CrossCheck fetches every replica's signed manifest directly and
// compares the views against each other and against this client's
// history. It returns the report plus an error summarising the worst
// finding: ErrEquivocation-classified (tampering) when conflicting
// signed states were proven, a plain error when no replica was reachable
// at all, nil otherwise. Transient failures of individual replicas never
// produce a tamper-classified error. On a healthy fleet the check also
// advances this client to the newest generation it verified.
func (fc *FleetClient) CrossCheck(ctx context.Context) (*CrossCheckReport, error) {
	client, err := fc.bootstrapAnywhere(ctx)
	if err != nil {
		return nil, err
	}

	// Fetch all replicas concurrently over the direct side channel,
	// always as plain JSON: cross-checks are rare and small, and the
	// JSON path keeps transport damage (truncation, resets) surfacing as
	// plain errors rather than anything verification-shaped.
	fetched := make([]fetchedManifest, len(fc.replicas))
	var wg sync.WaitGroup
	for i, u := range fc.replicas {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			var m httpapi.ManifestResponse
			if err := httpGetJSON(ctx, fc.hc, u, httpapi.PathManifest, &m); err != nil {
				fetched[i].netErr = err
				return
			}
			if m.Format != httpapi.FormatATCX {
				fetched[i].netErr = fmt.Errorf("authtext: replica manifest format %q not supported", m.Format)
				return
			}
			raw, sigRaw, _, err := splitClientExport(m.Export)
			if err != nil {
				fetched[i].netErr = err
				return
			}
			fetched[i].raw = append([]byte(nil), raw...)
			fetched[i].sig = append([]byte(nil), sigRaw...)
		}(i, u)
	}
	wg.Wait()

	rep := &CrossCheckReport{Replicas: make([]ReplicaStatus, len(fc.replicas))}
	type verified struct {
		idx int
		m   *core.Manifest
	}
	var ok []verified
	minGen := ^uint64(0)
	for i, u := range fc.replicas {
		st := &rep.Replicas[i]
		st.URL = u
		if f := fetched[i]; f.netErr != nil {
			// Transport or malformed-blob failure: the replica presented
			// nothing signed, so there is nothing to hold against it.
			st.Err = f.netErr
			st.Unavailable = !IsTampered(f.netErr)
			continue
		}
		m, derr := core.DecodeManifest(fetched[i].raw)
		if derr == nil {
			// Verify against the PINNED key, never the key the replica
			// embeds: a replica substituting its own key pair must fail
			// here, not get judged against its own material.
			derr = core.VerifyManifest(m, fetched[i].sig, client.verifier)
		}
		if derr != nil {
			st.Err = fmt.Errorf("authtext: replica %s: %w", u, derr)
			st.Unavailable = !IsTampered(st.Err)
			continue
		}
		st.Generation = m.Generation
		rep.Reachable++
		if m.Generation > rep.Generation {
			rep.Generation = m.Generation
		}
		if m.Generation < minGen {
			minGen = m.Generation
		}
		ok = append(ok, verified{idx: i, m: m})
	}
	if rep.Reachable == 0 {
		first := "no error detail"
		for _, st := range rep.Replicas {
			if st.Err != nil {
				first = st.Err.Error()
				break
			}
		}
		fc.metrics.recordCrossCheck(0, false)
		return rep, fmt.Errorf("authtext: fleet cross-check: no replica reachable (%s)", first)
	}
	if rep.Reachable >= 2 {
		rep.Lag = rep.Generation - minGen
	}

	// Compare the verified views against each other and against every
	// view this client has ever accepted.
	fc.mu.Lock()
	ownRaw, ownGen := client.manifestState()
	fc.noteManifest(ownGen, ownRaw)
	for _, v := range ok {
		st := &rep.Replicas[v.idx]
		if prev, okSeen := fc.seen[v.m.Generation]; okSeen && prev != sha256.Sum256(fetched[v.idx].raw) {
			st.Err = equivErr("replica %s presents a conflicting manifest for generation %d (split view or forked generation chain)",
				st.URL, v.m.Generation)
			if rep.Equivocation == nil {
				rep.Equivocation = st.Err
			}
			continue
		}
		fc.noteManifest(v.m.Generation, fetched[v.idx].raw)
	}
	// Freeze detection: a replica persistently behind the fleet's newest
	// generation is withholding updates from the users it serves —
	// equivocation by omission. A swap in progress looks the same for one
	// check, so lag only becomes a verdict after maxLag consecutive
	// sightings.
	for _, v := range ok {
		st := &rep.Replicas[v.idx]
		if st.Err != nil {
			continue
		}
		if v.m.Generation < rep.Generation {
			fc.lagging[st.URL]++
			if fc.lagging[st.URL] > fc.maxLag {
				st.Err = equivErr("replica %s frozen at generation %d while the fleet serves %d (%d consecutive checks)",
					st.URL, v.m.Generation, rep.Generation, fc.lagging[st.URL])
				if rep.Equivocation == nil {
					rep.Equivocation = st.Err
				}
			}
		} else {
			delete(fc.lagging, st.URL)
		}
	}
	fc.mu.Unlock()

	// Advance the verifying client to the newest verified view, so the
	// cross-check doubles as a freshness push even when searches are
	// idle. A failure here is conflicting-signed-state evidence too
	// (Advance re-checks signature, monotonicity and same-generation
	// consistency under its own lock).
	if rep.Equivocation == nil && rep.Generation > client.Generation() {
		for _, v := range ok {
			if v.m.Generation != rep.Generation {
				continue
			}
			if aerr := client.Advance(fetched[v.idx].raw, fetched[v.idx].sig); aerr != nil && IsTampered(aerr) {
				rep.Equivocation = equivErr("advancing to replica %s generation %d: %v",
					rep.Replicas[v.idx].URL, v.m.Generation, aerr)
			}
			break
		}
	}

	fc.metrics.recordCrossCheck(rep.Lag, rep.Equivocation != nil)
	return rep, rep.Equivocation
}

// noteManifest records one generation's accepted manifest hash (caller
// holds fc.mu).
func (fc *FleetClient) noteManifest(gen uint64, raw []byte) {
	if _, ok := fc.seen[gen]; !ok {
		fc.seen[gen] = sha256.Sum256(raw)
	}
}

// bootstrapAnywhere bootstraps the verification client from the front
// end, falling back to the direct replicas when the front end is down —
// the detector must keep working through exactly the outages it exists
// to observe.
func (fc *FleetClient) bootstrapAnywhere(ctx context.Context) (*Client, error) {
	fc.RemoteClient.mu.Lock()
	defer fc.RemoteClient.mu.Unlock()
	if fc.RemoteClient.client != nil {
		return fc.RemoteClient.client, nil
	}
	ferr := fc.RemoteClient.bootstrapLocked(ctx)
	if ferr == nil {
		return fc.RemoteClient.client, nil
	}
	for _, u := range fc.replicas {
		var m httpapi.ManifestResponse
		if err := httpGetJSON(ctx, fc.hc, u, httpapi.PathManifest, &m); err != nil {
			continue
		}
		if m.Format != httpapi.FormatATCX {
			continue
		}
		c, err := NewClientFromExport(m.Export)
		if err != nil {
			continue
		}
		fc.RemoteClient.client = c
		return c, nil
	}
	return nil, ferr
}

// StartCrossCheck runs CrossCheck every interval until the returned stop
// function is called. onResult (optional) receives every outcome;
// operators typically alarm on IsTampered(err).
func (fc *FleetClient) StartCrossCheck(interval time.Duration, onResult func(*CrossCheckReport, error)) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), defaultHTTPTimeout)
				rep, err := fc.CrossCheck(ctx)
				cancel()
				if onResult != nil {
					onResult(rep, err)
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// equivErr builds an equivocation-classified error (matches
// ErrEquivocation under errors.Is; IsTampered reports true).
func equivErr(format string, args ...interface{}) error {
	return fmt.Errorf("authtext: fleet cross-check: %w",
		&core.VerifyError{Code: core.CodeEquivocation, Detail: fmt.Sprintf(format, args...)})
}
