package authtext

import (
	"bytes"
	"testing"
)

func snapshotTestDocs() []Document {
	texts := []string{
		"professional users require integrity assurance from paid content services",
		"a merkle hash tree authenticates messages by signing the root digest",
		"threshold algorithms pop the entry with the highest term score",
		"the verification object contains digests to recompute the signed root",
		"sorted access maintains lower and upper bounds for candidate documents",
		"signatures generated with the private key verify with the public key",
		"the frequency ordered inverted index stores impact entries",
		"an audit trail archives verification objects for every decision",
	}
	docs := make([]Document, len(texts))
	for i, s := range texts {
		docs[i] = Document{Content: []byte(s)}
	}
	return docs
}

// TestSnapshotRoundTrip is the acceptance path: build → WriteSnapshot →
// OpenSnapshot must serve TRA and TNRA queries under both schemes whose
// VOs verify against a Client created from the ORIGINAL in-memory owner,
// and the published verification material must be byte-identical across
// the round trip.
func TestSnapshotRoundTrip(t *testing.T) {
	owner, err := NewOwner(snapshotTestDocs(), WithVocabularyProofs())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := owner.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snapServer, snapClient, err := OpenSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	origExport, err := owner.ExportClient()
	if err != nil {
		t.Fatal(err)
	}
	snapExport, err := snapClient.Export()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(origExport, snapExport) {
		t.Error("manifest + signature + key changed across the snapshot round trip")
	}

	origClient := owner.Client()
	query := "merkle tree root"
	for _, algo := range []Algorithm{TRA, TNRA} {
		for _, scheme := range []Scheme{MHT, ChainMHT} {
			res, err := snapServer.Search(query, 3, algo, scheme)
			if err != nil {
				t.Fatalf("%s-%s: %v", algo, scheme, err)
			}
			if len(res.Hits) == 0 {
				t.Fatalf("%s-%s: no hits", algo, scheme)
			}
			if err := origClient.Verify(query, 3, res); err != nil {
				t.Errorf("%s-%s: original owner's client rejected snapshot server: %v", algo, scheme, err)
			}
			if err := snapClient.Verify(query, 3, res); err != nil {
				t.Errorf("%s-%s: snapshot client rejected snapshot server: %v", algo, scheme, err)
			}
		}
	}

	// Unknown-term queries exercise the vocabulary proofs after reopen.
	res, err := snapServer.Search("merkle xylophone", 3, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if err := origClient.Verify("merkle xylophone", 3, res); err != nil {
		t.Errorf("vocab proof after reopen: %v", err)
	}
}

// TestSnapshotFlippedByteRejected flips single bytes across the artifact:
// every flip must either fail to open (checksums) or — if it were to open —
// produce responses the client rejects. With per-section CRCs the first arm
// triggers for raw flips; the consistent-adversary arm is exercised in
// internal/snapshot's tamper tests.
func TestSnapshotFlippedByteRejected(t *testing.T) {
	owner, err := NewOwner(snapshotTestDocs())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := owner.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()
	client := owner.Client()
	for _, off := range []int{9, len(snap) / 5, len(snap) / 3, len(snap) / 2, len(snap) - 2} {
		bad := append([]byte(nil), snap...)
		bad[off] ^= 0x01
		server, _, err := OpenSnapshot(bytes.NewReader(bad))
		if err != nil {
			continue // rejected at open: acceptable arm one
		}
		res, err := server.Search("merkle tree", 3, TNRA, ChainMHT)
		if err != nil {
			continue
		}
		if err := client.Verify("merkle tree", 3, res); err == nil {
			t.Errorf("byte flip at %d survived open AND verification", off)
		}
	}
}

// TestOpenSnapshotGarbage makes sure hostile non-snapshots error cleanly.
func TestOpenSnapshotGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("x"), []byte("ATSN"), bytes.Repeat([]byte{0xff}, 4096)} {
		if _, _, err := OpenSnapshot(bytes.NewReader(data)); err == nil {
			t.Errorf("garbage input %q accepted", data[:min(len(data), 8)])
		}
	}
}
