package authtext_test

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"authtext"
)

// Randomized fleet property test: replicas join, leave and crash, the
// owner keeps publishing generations, and every verified answer each
// client receives must satisfy two invariants regardless of the
// interleaving:
//
//  1. no tampering classification, ever — membership churn, crashes and
//     mid-swap routing are availability events, and the fleet serves
//     only honest data here;
//  2. per-client generation monotonicity — once a client has verified a
//     generation-G answer it never verifies an answer from G' < G, even
//     when a request lands on a replica that has not reloaded yet.
//
// The schedule is driven by a fixed seed so a failure replays; the suite
// is part of the -race battery (frontend routing state, replica reload
// swaps and client advances all interleave here).

// propReplica is one snapshot-serving replica with its own reload loop.
type propReplica struct {
	srv  *httptest.Server
	stop chan struct{}
	done chan struct{}
}

func startPropReplica(t *testing.T, dir string) *propReplica {
	t.Helper()
	rep, err := authtext.OpenLiveSnapshotDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	handler, err := authtext.NewLiveReplicaHTTPHandler(rep)
	if err != nil {
		t.Fatal(err)
	}
	p := &propReplica{
		srv:  httptest.NewServer(handler),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		defer close(p.done)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-tick.C:
				rep.Reload()
			}
		}
	}()
	return p
}

// halt stops the reload loop and the server (crash or graceful removal —
// from the fleet's perspective both are just a dead address).
func (p *propReplica) halt() {
	close(p.stop)
	<-p.done
	p.srv.CloseClientConnections()
	p.srv.Close()
}

func TestFleetRandomizedChurnInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second randomized fleet schedule")
	}
	rng := rand.New(rand.NewSource(20260808))
	owner, _, err := authtext.NewLiveOwner(liveRemoteDocs(0, 12))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := owner.PersistGenerations(dir, nil); err != nil {
		t.Fatal(err)
	}

	// Replica 0 lives for the whole run so the fleet never goes fully
	// dark; churn only ever touches the extras.
	anchor := startPropReplica(t, dir)
	defer anchor.halt()
	fe, err := authtext.NewFrontend([]string{anchor.srv.URL},
		authtext.WithFrontendProbeInterval(15*time.Millisecond),
		authtext.WithFrontendRetry(3, 500*time.Millisecond),
		authtext.WithFrontendEjection(2, 30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	fes := httptest.NewServer(fe)
	defer fes.Close()

	extras := make(map[string]*propReplica)
	defer func() {
		for _, p := range extras {
			p.halt()
		}
	}()

	// Query workers: each holds its OWN verifying client (monotonicity is
	// a per-client property) and hammers the front end until told to stop.
	const workers = 4
	ctx := context.Background()
	queries := []string{"merkle tree", "signature verification", "inverted index", "digest root"}
	stop := make(chan struct{})
	violations := make([]error, workers)
	var searches atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rc, err := authtext.NewRemoteClient(fes.URL)
			if err != nil {
				violations[w] = err
				return
			}
			var lastGen uint64
			algo := authtext.TRA
			if w%2 == 1 {
				algo = authtext.TNRA
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, err := rc.Search(ctx, queries[(w+i)%len(queries)], 5, algo, authtext.ChainMHT)
				if err != nil {
					// Transient refusals (a crashed replica mid-request, a
					// momentarily dark rotation) are legitimate; tampering is
					// not — the fleet is honest throughout this test.
					if authtext.IsTampered(err) {
						violations[w] = fmt.Errorf("worker %d: honest churn classified as tampering: %w", w, err)
						return
					}
					continue
				}
				searches.Add(1)
				if res.Generation < lastGen {
					violations[w] = fmt.Errorf("worker %d: verified generation regressed %d -> %d", w, lastGen, res.Generation)
					return
				}
				lastGen = res.Generation
			}
		}(w)
	}

	// The chaos schedule: publish generations, add/remove/crash replicas.
	nextDoc := 12
	for op := 0; op < 24; op++ {
		switch rng.Intn(4) {
		case 0: // owner publishes a new generation
			if _, _, err := owner.AddDocuments(liveRemoteDocs(nextDoc, 1)); err != nil {
				t.Fatal(err)
			}
			nextDoc++
		case 1: // a replica joins
			if len(extras) < 4 {
				p := startPropReplica(t, dir)
				// A crashed backend stays registered until ejection has no
				// more work to do; if the OS hands its port to the newcomer
				// the add is a duplicate — skip, don't fail.
				if err := fe.AddBackend(p.srv.URL); err != nil {
					p.halt()
					break
				}
				extras[p.srv.URL] = p
			}
		case 2: // a replica leaves gracefully
			for url, p := range extras {
				fe.RemoveBackend(url)
				p.halt()
				delete(extras, url)
				break
			}
		case 3: // a replica crashes and stays in rotation (ejection's job)
			for url, p := range extras {
				p.halt()
				delete(extras, url)
				break
			}
		}
		time.Sleep(time.Duration(20+rng.Intn(60)) * time.Millisecond)
	}

	close(stop)
	wg.Wait()
	for _, err := range violations {
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := searches.Load(); n < int64(workers)*10 {
		t.Fatalf("only %d verified searches completed across the schedule; the fleet was effectively dark", n)
	}
	if got, want := fe.Generation(), owner.Generation(); got != want {
		// The anchor reloads every 10ms and probes run every 15ms, so by
		// the end of the schedule the watermark must have caught up.
		deadline := time.Now().Add(5 * time.Second)
		for fe.Generation() != want && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if fe.Generation() != want {
			t.Fatalf("fleet watermark %d never reached owner generation %d", got, want)
		}
	}
}
