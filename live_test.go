package authtext

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"authtext/internal/core"
	"authtext/internal/vo"
)

// Live-collection suite: generation swaps are atomic (searches observe
// whole generations, never a torn mix), signatures are reused across
// updates, and every update-shaped tampering vector — rollback, stale
// answers, removed documents reappearing, mixed-generation shard sets —
// classifies via IsTampered / ErrStaleGeneration.

// liveVocab is closed so that updates do not shift dictionary term IDs
// (which would disable signature reuse; see internal/live).
var liveVocab = []string{
	"merkle", "tree", "signature", "verification", "inverted", "index",
	"threshold", "algorithm", "random", "access", "digest", "root",
	"chain", "block", "proof", "query", "result", "server", "client", "owner",
}

// liveDoc builds the document at absolute position pos.
func liveDoc(pos int) Document {
	var b []byte
	for j := 0; j < 8; j++ {
		b = append(b, liveVocab[(pos+j)%len(liveVocab)]...)
		b = append(b, ' ')
	}
	for j := 0; j <= pos%5; j++ {
		b = append(b, liveVocab[(pos*7)%len(liveVocab)]...)
		b = append(b, ' ')
	}
	return Document{Content: b}
}

func liveDocs(start, n int) []Document {
	docs := make([]Document, n)
	for i := range docs {
		docs[i] = liveDoc(start + i)
	}
	return docs
}

const liveQuery = "merkle digest proof"

func liveSearchVerify(t *testing.T, srv *LiveServer, c *Client, algo Algorithm, scheme Scheme) *SearchResult {
	t.Helper()
	res, err := srv.Search(liveQuery, 3, algo, scheme)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(liveQuery, 3, res); err != nil {
		t.Fatalf("honest live result failed verification: %v", err)
	}
	return res
}

func TestLiveUpdateVerifyAndRollback(t *testing.T) {
	owner, handles, err := NewLiveOwner(liveDocs(0, 16), WithFastSigner([]byte("live-root")))
	if err != nil {
		t.Fatal(err)
	}
	srv := owner.Server()
	client := owner.Client()
	if got := client.Generation(); got != 1 {
		t.Fatalf("client generation = %d, want 1", got)
	}
	liveSearchVerify(t, srv, client, TNRA, ChainMHT)

	// Keep generation 1's manifest and a generation-1 answer (for both
	// algorithms) around: they become the rollback/replay material.
	gen1Manifest, gen1Sig := owner.ManifestUpdate()
	oldTRA, err := srv.Search(liveQuery, 3, TRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	oldTNRA, err := srv.Search(liveQuery, 3, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}

	// Publish generation 2: remove one document, add two.
	added, rep, err := owner.Update(liveDocs(16, 2), []DocHandle{handles[0]})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generation != 2 || owner.Generation() != 2 || len(added) != 2 {
		t.Fatalf("update report %+v, added %v", rep, added)
	}
	if srv.Generation() != 2 {
		t.Fatalf("server generation = %d, want 2", srv.Generation())
	}

	// The old client (still at generation 1) advances with the owner's
	// signed manifest and then verifies generation-2 answers.
	m2, s2 := owner.ManifestUpdate()
	if err := client.Advance(m2, s2); err != nil {
		t.Fatalf("advance to generation 2: %v", err)
	}
	res2 := liveSearchVerify(t, srv, client, TRA, ChainMHT)
	if res2.Generation != 2 {
		t.Fatalf("result generation = %d, want 2", res2.Generation)
	}

	// Rollback: re-presenting generation 1's manifest is tampering.
	err = client.Advance(gen1Manifest, gen1Sig)
	if !errors.Is(err, ErrStaleGeneration) || !IsTampered(err) {
		t.Fatalf("manifest rollback classified as %v", err)
	}

	// Replay: generation-1 answers (including the removed document's
	// hits) against the advanced client are stale for TRA and TNRA alike.
	for name, old := range map[string]*SearchResult{"TRA": oldTRA, "TNRA": oldTNRA} {
		err := client.Verify(liveQuery, 3, old)
		if !errors.Is(err, ErrStaleGeneration) || !IsTampered(err) {
			t.Fatalf("%s replay of generation 1 classified as %v", name, err)
		}
	}

	// A LYING server that rewrites the VO's generation stamp to match the
	// current manifest still fails verification: the rest of the proof
	// material speaks for the old state.
	for name, old := range map[string]*SearchResult{"TRA": oldTRA, "TNRA": oldTNRA} {
		decoded, err := vo.Decode(old.VO)
		if err != nil {
			t.Fatal(err)
		}
		decoded.Generation = 2
		forged, _, err := vo.Encode(decoded, 16)
		if err != nil {
			t.Fatal(err)
		}
		res := &SearchResult{Hits: old.Hits, VO: forged, Generation: 2}
		err = client.Verify(liveQuery, 3, res)
		if err == nil {
			t.Fatalf("%s: forged generation stamp accepted", name)
		}
		if !IsTampered(err) || errors.Is(err, ErrStaleGeneration) {
			t.Fatalf("%s: forged stamp classified as %v (code %v)", name, err, core.CodeOf(err))
		}
	}

	// Unrelated clients bootstrapping fresh at the current generation are
	// unaffected by any of this.
	liveSearchVerify(t, srv, owner.Client(), TNRA, MHT)
}

func TestLiveEquivocationRejected(t *testing.T) {
	// Two different corpora published under the same generation number:
	// a client that accepted one must not accept the other.
	ownerA, _, err := NewLiveOwner(liveDocs(0, 10), WithFastSigner([]byte("equivocate")))
	if err != nil {
		t.Fatal(err)
	}
	ownerB, _, err := NewLiveOwner(liveDocs(5, 10), WithFastSigner([]byte("equivocate")))
	if err != nil {
		t.Fatal(err)
	}
	client := ownerA.Client()
	if err := client.Verify(liveQuery, 3, mustSearch(t, ownerA.Server(), liveQuery)); err != nil {
		t.Fatal(err)
	}
	mB, sB := ownerB.ManifestUpdate()
	err = client.Advance(mB, sB)
	if !errors.Is(err, ErrStaleGeneration) || !IsTampered(err) {
		t.Fatalf("equivocating generation-1 manifest classified as %v", err)
	}
}

func mustSearch(t *testing.T, srv *LiveServer, q string) *SearchResult {
	t.Helper()
	res, err := srv.Search(q, 3, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestLiveConcurrentSearchHammer is the acceptance-criterion hammer: a
// live server keeps answering verified queries while updates land. Every
// answer verifies against its own generation's manifest — a torn mix of
// two generations would fail with a non-stale tampering code, which the
// test treats as fatal. Honest races (an answer from generation g
// verified after the client advanced past g) classify as stale and are
// retried, never misreported as any other violation.
func TestLiveConcurrentSearchHammer(t *testing.T) {
	const (
		searchers  = 4
		updates    = 8
		docsPerGen = 2
	)
	owner, handles, err := NewLiveOwner(liveDocs(0, 24), WithFastSigner([]byte("hammer")))
	if err != nil {
		t.Fatal(err)
	}
	srv := owner.Server()

	var (
		wg       sync.WaitGroup
		done     atomic.Bool
		verified atomic.Int64
		retried  atomic.Int64
	)
	errc := make(chan error, searchers+1)
	for w := 0; w < searchers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := owner.Client()
			lastGen := uint64(0)
			// Keep hammering for a minimum number of iterations even after
			// the updater finishes, so fast updates still overlap searches.
			for i := 0; i < 50 || !done.Load(); i++ {
				res, err := srv.Search(liveQuery, 3, TNRA, ChainMHT)
				if err != nil {
					errc <- fmt.Errorf("searcher %d: %v", w, err)
					return
				}
				if res.Generation < lastGen {
					errc <- fmt.Errorf("searcher %d: generation went backward %d -> %d", w, lastGen, res.Generation)
					return
				}
				lastGen = res.Generation
				if res.Generation > client.Generation() {
					if err := client.Advance(owner.ManifestUpdate()); err != nil && !errors.Is(err, ErrStaleGeneration) {
						errc <- fmt.Errorf("searcher %d: advance: %v", w, err)
						return
					}
				}
				switch err := client.Verify(liveQuery, 3, res); {
				case err == nil:
					verified.Add(1)
				case errors.Is(err, ErrStaleGeneration):
					// Honest race: the collection moved while this answer
					// was in flight. Retry.
					retried.Add(1)
				default:
					errc <- fmt.Errorf("searcher %d: generation %d answer failed as %v", w, res.Generation, err)
					return
				}
			}
		}(w)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		next := 24
		for u := 0; u < updates; u++ {
			add := liveDocs(next, docsPerGen)
			next += docsPerGen
			newHandles, _, err := owner.Update(add, handles[:1])
			if err != nil {
				errc <- fmt.Errorf("update %d: %v", u, err)
				return
			}
			handles = append(handles[1:], newHandles...)
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if owner.Generation() != uint64(1+updates) {
		t.Fatalf("final generation %d, want %d", owner.Generation(), 1+updates)
	}
	if verified.Load() == 0 {
		t.Fatal("hammer verified no answers")
	}
	t.Logf("hammer: %d verified, %d stale-retried across %d generations", verified.Load(), retried.Load(), owner.Generation())
}

func TestLiveShardedMixedGenerationRejected(t *testing.T) {
	owner, _, err := NewLiveShardedOwner(liveDocs(0, 32), 4,
		WithFastSigner([]byte("live-shards")), WithShardPartitioner(PartitionHash))
	if err != nil {
		t.Fatal(err)
	}
	client := owner.Client() // generation 1
	old, err := owner.Server().Search(liveQuery, 3, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Verify(liveQuery, 3, old); err != nil {
		t.Fatal(err)
	}
	export1, err := owner.ExportClient()
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := owner.Update(liveDocs(32, 3), nil); err != nil {
		t.Fatal(err)
	}
	if owner.Generation() != 2 {
		t.Fatalf("generation = %d", owner.Generation())
	}
	export2, err := owner.ExportClient()
	if err != nil {
		t.Fatal(err)
	}
	if err := client.AdvanceExport(export2); err != nil {
		t.Fatalf("advance to set generation 2: %v", err)
	}
	fresh, err := owner.Server().Search(liveQuery, 3, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Verify(liveQuery, 3, fresh); err != nil {
		t.Fatalf("generation-2 sharded answer failed: %v", err)
	}

	// Mixed-generation answer: swap one rebuilt shard's response for its
	// generation-1 predecessor. The client must reject it as tampering.
	rebuilt := -1
	for i, sr := range fresh.PerShard {
		if sr.Generation == 2 && old.PerShard[i].Generation == 1 {
			rebuilt = i
			break
		}
	}
	if rebuilt < 0 {
		t.Fatal("no shard was rebuilt at generation 2; widen the update batch")
	}
	mixed := *fresh
	mixed.PerShard = append([]*SearchResult(nil), fresh.PerShard...)
	mixed.PerShard[rebuilt] = old.PerShard[rebuilt]
	err = client.Verify(liveQuery, 3, &mixed)
	if err == nil {
		t.Fatal("mixed-generation sharded answer accepted")
	}
	if !IsTampered(err) {
		t.Fatalf("mixed-generation answer classified as non-tampering: %v", err)
	}

	// Whole-set rollback to generation 1 is tampering.
	err = client.AdvanceExport(export1)
	if !errors.Is(err, ErrStaleGeneration) || !IsTampered(err) {
		t.Fatalf("set rollback classified as %v", err)
	}
}

func TestLiveSnapshotDirAndReplica(t *testing.T) {
	dir := t.TempDir()
	owner, _, err := NewLiveOwner(liveDocs(0, 12), WithFastSigner([]byte("live-snap")))
	if err != nil {
		t.Fatal(err)
	}
	path1, err := owner.WriteSnapshotDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path1) != "gen-000000000001.atsn" {
		t.Fatalf("generation-1 snapshot named %s", filepath.Base(path1))
	}
	replica, err := OpenLiveSnapshotDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if replica.Generation() != 1 {
		t.Fatalf("replica generation = %d", replica.Generation())
	}
	res, err := replica.Server().Search(liveQuery, 3, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.Client().Verify(liveQuery, 3, res); err != nil {
		t.Fatalf("replica answer failed verification: %v", err)
	}

	// PersistGenerations makes every future generation land on disk from
	// inside the update critical section; generation 2 needs no explicit
	// WriteSnapshotDir call.
	if _, err := owner.PersistGenerations(dir, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := owner.Update(liveDocs(12, 1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, liveSnapshotName(2))); err != nil {
		t.Fatalf("generation 2 snapshot not persisted by the publish hook: %v", err)
	}
	swapped, err := replica.Reload()
	if err != nil || !swapped {
		t.Fatalf("reload = (%v, %v), want swap", swapped, err)
	}
	if replica.Generation() != 2 {
		t.Fatalf("replica generation after reload = %d", replica.Generation())
	}
	if swapped, err := replica.Reload(); err != nil || swapped {
		t.Fatalf("idle reload = (%v, %v)", swapped, err)
	}

	// Rolling the directory back under a running replica fails Reload.
	if err := os.Remove(filepath.Join(dir, liveSnapshotName(2))); err != nil {
		t.Fatal(err)
	}
	if _, err := replica.Reload(); err == nil {
		t.Fatal("rolled-back snapshot directory accepted")
	}
}

// TestLiveSnapshotLayoutStable pins the per-generation layout: the file
// naming scheme is load-bearing (replicas pick the lexicographically
// greatest name), and a snapshot whose signed manifest disagrees with its
// filename must be rejected.
func TestLiveSnapshotLayoutStable(t *testing.T) {
	if got := liveSnapshotName(1); got != "gen-000000000001.atsn" {
		t.Fatalf("layout changed: generation 1 file is %q", got)
	}
	if got := liveSnapshotName(987654321012); got != "gen-987654321012.atsn" {
		t.Fatalf("layout changed: %q", got)
	}
	for name, want := range map[string]uint64{
		"gen-000000000007.atsn": 7,
		"gen-999999999999.atsn": 999999999999,
	} {
		got, ok := parseLiveSnapshotName(name)
		if !ok || got != want {
			t.Fatalf("parse(%q) = (%d, %v), want %d", name, got, ok, want)
		}
	}
	for _, bad := range []string{
		"gen-0000000001.atsn",    // wrong width
		"gen-000000000000.atsn",  // generation 0 never exists
		"gen-00000000000a.atsn",  // non-numeric
		"generation-1.atsn",      // foreign prefix
		"gen-000000000001.atsnx", // foreign suffix
	} {
		if _, ok := parseLiveSnapshotName(bad); ok {
			t.Fatalf("foreign name %q parsed as a generation snapshot", bad)
		}
	}

	// Manifest-vs-filename cross-check: renaming a generation file to
	// claim a different generation is detected at open.
	dir := t.TempDir()
	owner, _, err := NewLiveOwner(liveDocs(0, 10), WithFastSigner([]byte("layout")))
	if err != nil {
		t.Fatal(err)
	}
	path, err := owner.WriteSnapshotDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	forged := filepath.Join(dir, liveSnapshotName(9))
	if err := os.Rename(path, forged); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLiveSnapshotDir(dir); err == nil {
		t.Fatal("renamed generation snapshot accepted")
	}
}

// TestLiveRemovalReuseRegression pins the economics the tombstone model
// exists for: a removal-heavy batch re-signs (almost) nothing, because
// removed documents keep their slots — postings stay in the signed lists,
// records stay signed — and only the manifest changes. Before stable IDs
// this regime renumbered every surviving document and reused 0%.
func TestLiveRemovalReuseRegression(t *testing.T) {
	owner, handles, err := NewLiveOwner(liveDocs(0, 40), WithFastSigner([]byte("reuse-reg")))
	if err != nil {
		t.Fatal(err)
	}
	reuse := func(rep *UpdateReport) float64 {
		return float64(rep.SignaturesReused) / float64(rep.SignaturesSigned+rep.SignaturesReused)
	}

	// Removal-heavy batch: 15 of 40 documents gone at the cost of one
	// fresh signature (the manifest).
	_, rep, err := owner.Update(nil, handles[:15])
	if err != nil {
		t.Fatal(err)
	}
	if rep.TombstonedSlots != 15 || rep.Documents != 25 || rep.Removed != 15 {
		t.Fatalf("removal batch report = %+v", rep)
	}
	if rep.SignaturesSigned != 1 {
		t.Fatalf("removal-heavy batch signed %d structures, want 1 (the manifest)", rep.SignaturesSigned)
	}
	if r := reuse(rep); r < 0.6 {
		t.Fatalf("removal-heavy batch reused %.1f%% of signatures, want >= 60%%", 100*r)
	}

	// Replace batch: removals plus same-size additions — costs what the
	// additions cost, nothing for the removals. The 20-word toy vocabulary
	// makes any addition touch most term lists, so the floor here is loose;
	// the realistic >= 60% floor for this regime is enforced by the
	// authbench -reuse-floor gate on a Zipfian corpus (see CI bench-smoke).
	_, rep2, err := owner.Update(liveDocs(40, 5), handles[15:20])
	if err != nil {
		t.Fatal(err)
	}
	if rep2.TombstonedSlots != 20 || rep2.Documents != 25 {
		t.Fatalf("replace batch report = %+v", rep2)
	}
	if r := reuse(rep2); r < 0.5 {
		t.Fatalf("replace batch reused %.1f%% of signatures, want >= 50%%", 100*r)
	}

	client := owner.Client()
	for _, algo := range []Algorithm{TRA, TNRA} {
		for _, scheme := range []Scheme{MHT, ChainMHT} {
			liveSearchVerify(t, owner.Server(), client, algo, scheme)
		}
	}
}

// TestLiveCompaction drives dead slots past the live count and checks the
// compaction rebuild: tombstones drop, the slot space shrinks to the live
// documents, and the collection keeps verifying (and reusing signatures)
// afterwards.
func TestLiveCompaction(t *testing.T) {
	owner, handles, err := NewLiveOwner(liveDocs(0, 40), WithFastSigner([]byte("compact")))
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := owner.Update(nil, handles[:15]) // dead 15 < live 25
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compacted || rep.TombstonedSlots != 15 {
		t.Fatalf("pre-compaction report = %+v", rep)
	}
	_, rep2, err := owner.Update(nil, handles[15:26]) // dead 26 > live 14
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Compacted || rep2.TombstonedSlots != 0 || rep2.Documents != 14 {
		t.Fatalf("compaction report = %+v", rep2)
	}
	m, _ := owner.lc.Current().Manifest()
	if int(m.N) != 14 || len(m.Tombstones) != 0 {
		t.Fatalf("compacted manifest: n=%d tombstones=%d bytes", m.N, len(m.Tombstones))
	}
	if got := len(owner.Handles()); got != 14 {
		t.Fatalf("handles after compaction = %d, want 14", got)
	}
	client := owner.Client()
	liveSearchVerify(t, owner.Server(), client, TRA, ChainMHT)
	liveSearchVerify(t, owner.Server(), client, TNRA, MHT)

	// The compacted ID space is the new stable baseline: the next update
	// reuses signatures against it.
	_, rep3, err := owner.Update(liveDocs(50, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.SignaturesReused == 0 {
		t.Fatalf("no reuse after compaction: %+v", rep3)
	}
}

// TestLiveShardedSnapshotDirAndReplica covers the per-generation sharded
// snapshot layout end to end: persist, restart from disk, reload forward,
// refuse rollback.
func TestLiveShardedSnapshotDirAndReplica(t *testing.T) {
	owner, handles, err := NewLiveShardedOwner(liveDocs(0, 40), 3, WithFastSigner([]byte("shard-snap")))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := owner.PersistGenerations(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != liveShardedGenName(1) {
		t.Fatalf("generation 1 written to %q", path)
	}
	if !IsLiveShardedSnapshotDir(dir) {
		t.Fatal("IsLiveShardedSnapshotDir = false on a freshly written directory")
	}
	if IsLiveSnapshotDir(dir) {
		t.Fatal("sharded generation directory misdetected as a single-collection one")
	}

	replica, err := OpenLiveShardedSnapshotDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if replica.Generation() != 1 {
		t.Fatalf("replica opened at generation %d", replica.Generation())
	}

	// An accepted update persists generation 2 from inside the publish
	// hook; Reload picks it up.
	if _, _, err := owner.Update(liveDocs(40, 2), handles[:1]); err != nil {
		t.Fatal(err)
	}
	swapped, err := replica.Reload()
	if err != nil || !swapped {
		t.Fatalf("reload after update: swapped=%v err=%v", swapped, err)
	}
	if replica.Generation() != 2 {
		t.Fatalf("replica at generation %d after reload, want 2", replica.Generation())
	}
	res, err := replica.Server().Search(liveQuery, 3, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.Client().Verify(liveQuery, 3, res); err != nil {
		t.Fatalf("replica answer failed verification: %v", err)
	}

	// Restart: a fresh open resumes at the latest generation on disk.
	replica2, err := OpenLiveShardedSnapshotDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if replica2.Generation() != 2 {
		t.Fatalf("restart opened generation %d, want 2", replica2.Generation())
	}

	// Rollback on disk is refused: with generation 2 gone, the serving
	// replica will not fall back to generation 1.
	if err := os.RemoveAll(filepath.Join(dir, liveShardedGenName(2))); err != nil {
		t.Fatal(err)
	}
	if _, err := replica.Reload(); err == nil {
		t.Fatal("reload accepted a rolled-back snapshot directory")
	}

	// Name-vs-manifest cross-check: a renamed generation directory is
	// rejected at open.
	if err := os.Rename(filepath.Join(dir, liveShardedGenName(1)), filepath.Join(dir, liveShardedGenName(7))); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLiveShardedSnapshotDir(dir); err == nil {
		t.Fatal("renamed generation directory accepted")
	}
}

// TestLiveShardedRejectsRoundRobin pins the partitioner guard: round-robin
// placement depends on global document position, which removals would
// reshuffle, so live sharded sets refuse it with an actionable error.
func TestLiveShardedRejectsRoundRobin(t *testing.T) {
	_, _, err := NewLiveShardedOwner(liveDocs(0, 12), 3,
		WithFastSigner([]byte("rr")), WithShardPartitioner(PartitionRoundRobin))
	if err == nil {
		t.Fatal("round-robin partitioner accepted on a live sharded set")
	}
	if !strings.Contains(err.Error(), "hash partitioner") {
		t.Fatalf("rejection does not point at the hash partitioner: %v", err)
	}
	// The default (no partitioner option) is hash and works.
	if _, _, err := NewLiveShardedOwner(liveDocs(0, 12), 3, WithFastSigner([]byte("rr2"))); err != nil {
		t.Fatalf("default partitioner failed: %v", err)
	}
}
