package authtext

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"authtext/internal/httpapi"
	"authtext/internal/obs"
)

// Observability suite: /v1/metrics serves a parseable exposition whose
// values agree with /v1/healthz, covers the documented catalog once
// traffic arrives, and stays consistent while generations swap under it.

// metricsHarness is a live deployment with cache and metrics attached,
// driven through the real HTTP handler.
type metricsHarness struct {
	owner   *LiveOwner
	handles []DocHandle
	m       *Metrics
	h       http.Handler
}

func newMetricsHarness(t *testing.T) *metricsHarness {
	t.Helper()
	owner, handles, err := NewLiveOwner(liveDocs(0, 16))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	h, err := owner.HTTPHandler(WithMetrics(m), WithVOCache(NewVOCache(1<<20)))
	if err != nil {
		t.Fatal(err)
	}
	return &metricsHarness{owner: owner, handles: handles, m: m, h: h}
}

func (mh *metricsHarness) search(t *testing.T, query string) *httptest.ResponseRecorder {
	t.Helper()
	body := fmt.Sprintf(`{"query":%q,"r":3}`, query)
	req := httptest.NewRequest(http.MethodPost, httpapi.PathSearch, strings.NewReader(body))
	w := httptest.NewRecorder()
	mh.h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("search %q: status %d: %s", query, w.Code, w.Body)
	}
	return w
}

func (mh *metricsHarness) scrape(t *testing.T) []obs.Sample {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, httpapi.PathMetrics, nil)
	w := httptest.NewRecorder()
	mh.h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("scrape: status %d: %s", w.Code, w.Body)
	}
	samples, err := obs.Parse(bytes.NewReader(w.Body.Bytes()))
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	return samples
}

func sampleValue(t *testing.T, samples []obs.Sample, name string, labels ...obs.Label) float64 {
	t.Helper()
	s, ok := obs.FindSample(samples, name, labels...)
	if !ok {
		t.Fatalf("series %s %v not found", name, labels)
	}
	return s.Value
}

// TestMetricsCatalogNonZeroAfterTraffic is the acceptance check: after
// representative traffic (searches, a repeat for a cache hit, one update
// batch), the exposition parses and at least 12 distinct metric families
// carry a non-zero sample.
func TestMetricsCatalogNonZeroAfterTraffic(t *testing.T) {
	mh := newMetricsHarness(t)

	mh.search(t, liveQuery)
	mh.search(t, liveQuery) // repeat: cache hit
	mh.search(t, "inverted index digest")
	update, err := json.Marshal(&httpapi.UpdateRequest{
		Add: []httpapi.UpdateDocument{{Content: []byte("merkle chain proof server")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, httpapi.PathAdminUpdate, bytes.NewReader(update))
	w := httptest.NewRecorder()
	mh.h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("update: status %d: %s", w.Code, w.Body)
	}
	mh.search(t, liveQuery) // new generation: cache miss again

	samples := mh.scrape(t)

	// A histogram family counts as non-zero when its _count moved, so fold
	// component samples back to their family name.
	family := func(name string) string {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, suffix); ok {
				return f
			}
		}
		return name
	}
	nonZero := map[string]bool{}
	for _, s := range samples {
		if s.Value != 0 {
			nonZero[family(s.Name)] = true
		}
	}
	// The documented core catalog; every family must have moved.
	core := []string{
		"authtext_http_requests_total",
		"authtext_http_request_seconds",
		"authtext_http_response_bytes_total",
		"authtext_search_stage_seconds",
		"authtext_searches_total",
		"authtext_vocache_hits_total",
		"authtext_vocache_misses_total",
		"authtext_vocache_entries",
		"authtext_vocache_bytes",
		"authtext_vocache_capacity_bytes",
		"authtext_live_generation",
		"authtext_live_swaps_total",
		"authtext_live_swap_seconds",
	}
	for _, name := range core {
		if !nonZero[name] {
			t.Errorf("core series %s did not move under traffic", name)
		}
	}
	if len(nonZero) < 12 {
		t.Fatalf("only %d distinct non-zero families after traffic, want >= 12: %v", len(nonZero), nonZero)
	}

	// Stage decomposition: engine, vo_encode, cache_lookup and wire_encode
	// all observed; cache_lookup counts every cacheable search.
	for _, stage := range []string{"engine", "vo_encode", "cache_lookup", "wire_encode"} {
		if v := sampleValue(t, samples, "authtext_search_stage_seconds_count", obs.L("stage", stage)); v == 0 {
			t.Errorf("stage %q never observed", stage)
		}
	}
	if hits := sampleValue(t, samples, "authtext_vocache_hits_total"); hits != 1 {
		t.Errorf("cache hits = %g, want exactly 1 (one repeated query before the update)", hits)
	}
	if v := sampleValue(t, samples, "authtext_live_swaps_total"); v != 1 {
		t.Errorf("live swaps = %g, want 1", v)
	}
	if v := sampleValue(t, samples, "authtext_live_generation"); v != float64(mh.owner.Generation()) {
		t.Errorf("generation gauge = %g, want %d", v, mh.owner.Generation())
	}
}

// TestMetricsHealthzCacheAgreement pins the drift fix: the cache counters
// in /v1/healthz and the authtext_vocache_* series come from the same
// atomics, so the two surfaces must report identical values when quiescent.
func TestMetricsHealthzCacheAgreement(t *testing.T) {
	mh := newMetricsHarness(t)
	mh.search(t, liveQuery)
	mh.search(t, liveQuery)
	mh.search(t, "threshold random access")

	req := httptest.NewRequest(http.MethodGet, httpapi.PathHealthz, nil)
	w := httptest.NewRecorder()
	mh.h.ServeHTTP(w, req)
	var h httpapi.Health
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Cache == nil {
		t.Fatal("healthz reports no cache")
	}

	samples := mh.scrape(t)
	agree := []struct {
		series string
		health int64
	}{
		{"authtext_vocache_hits_total", h.Cache.Hits},
		{"authtext_vocache_misses_total", h.Cache.Misses},
		{"authtext_vocache_evictions_total", h.Cache.Evictions},
		{"authtext_vocache_invalidations_total", h.Cache.Invalidations},
		{"authtext_vocache_entries", h.Cache.Entries},
		{"authtext_vocache_bytes", h.Cache.Bytes},
		{"authtext_vocache_capacity_bytes", h.Cache.CapacityBytes},
	}
	for _, a := range agree {
		if v := sampleValue(t, samples, a.series); v != float64(a.health) {
			t.Errorf("%s = %g but healthz reports %d", a.series, v, a.health)
		}
	}
	if h.Cache.Hits == 0 || h.Cache.Misses == 0 {
		t.Fatalf("traffic did not exercise the cache: %+v", h.Cache)
	}
}

// TestConcurrentMetricsScrapeDuringSwaps hammers /v1/metrics from eight
// goroutines while searches run and the owner publishes generations
// underneath. Every scrape must parse cleanly, and gauges derived from
// swap state (the generation) must never run backward within one scraper.
// The name matches the CI race-detector job's -run filter.
func TestConcurrentMetricsScrapeDuringSwaps(t *testing.T) {
	const (
		scrapers = 8
		updates  = 6
	)
	mh := newMetricsHarness(t)
	mh.search(t, liveQuery)

	var (
		wg   sync.WaitGroup
		done atomic.Bool
	)
	errc := make(chan error, scrapers+2)

	for s := 0; s < scrapers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			lastGen := 0.0
			for i := 0; i < 25 || !done.Load(); i++ {
				req := httptest.NewRequest(http.MethodGet, httpapi.PathMetrics, nil)
				w := httptest.NewRecorder()
				mh.h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					errc <- fmt.Errorf("scraper %d: status %d", s, w.Code)
					return
				}
				samples, err := obs.Parse(bytes.NewReader(w.Body.Bytes()))
				if err != nil {
					errc <- fmt.Errorf("scraper %d: scrape did not parse mid-swap: %v", s, err)
					return
				}
				gen, ok := obs.FindSample(samples, "authtext_live_generation")
				if !ok {
					errc <- fmt.Errorf("scraper %d: generation gauge missing", s)
					return
				}
				if gen.Value < lastGen {
					errc <- fmt.Errorf("scraper %d: generation gauge ran backward %g -> %g", s, lastGen, gen.Value)
					return
				}
				lastGen = gen.Value
			}
		}(s)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40 || !done.Load(); i++ {
			req := httptest.NewRequest(http.MethodPost, httpapi.PathSearch,
				strings.NewReader(fmt.Sprintf(`{"query":%q,"r":3}`, liveQuery)))
			w := httptest.NewRecorder()
			mh.h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				errc <- fmt.Errorf("searcher: status %d: %s", w.Code, w.Body)
				return
			}
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for i := 0; i < updates; i++ {
			if _, _, err := mh.owner.Update(liveDocs(100+2*i, 2), nil); err != nil {
				errc <- fmt.Errorf("update %d: %v", i, err)
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	samples := mh.scrape(t)
	if v := sampleValue(t, samples, "authtext_live_swaps_total"); v != updates {
		t.Errorf("swaps = %g, want %d", v, updates)
	}
	if v := sampleValue(t, samples, "authtext_live_generation"); v != float64(mh.owner.Generation()) {
		t.Errorf("final generation gauge = %g, want %d", v, mh.owner.Generation())
	}
}

// TestClientMetricsVerifyAndTamper checks the client-side satellite: a
// RemoteClient built with WithClientMetrics times every verification, and
// counts exactly the tampered rejections.
func TestClientMetricsVerifyAndTamper(t *testing.T) {
	owner, err := NewOwner(newsDocs())
	if err != nil {
		t.Fatal(err)
	}
	h, err := owner.HTTPHandler()
	if err != nil {
		t.Fatal(err)
	}
	// tamper flips one content byte of every search response when armed.
	var tamper atomic.Bool
	proxy := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != httpapi.PathSearch || !tamper.Load() {
			h.ServeHTTP(w, r)
			return
		}
		// This adversary tampers at the JSON layer; force the honest
		// server off binary frames (the framed path has its own battery
		// in remote_wire_test.go).
		r.Header.Del("Accept")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		var resp httpapi.SearchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || len(resp.Hits) == 0 {
			w.Write(rec.Body.Bytes())
			return
		}
		resp.Hits[0].Content = append([]byte("forged "), resp.Hits[0].Content...)
		json.NewEncoder(w).Encode(&resp)
	})
	ts := httptest.NewServer(proxy)
	defer ts.Close()

	m := NewMetrics()
	rc, err := NewRemoteClient(ts.URL, WithClientMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	ctx := t.Context()
	if _, err := rc.Search(ctx, "patent examiner", 3, TNRA, ChainMHT); err != nil {
		t.Fatalf("honest search: %v", err)
	}
	tamper.Store(true)
	if _, err := rc.Search(ctx, "patent examiner", 3, TNRA, ChainMHT); !IsTampered(err) {
		t.Fatalf("tampered search: err = %v, want tampered", err)
	}

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if v := sampleValue(t, samples, "authtext_client_verify_seconds_count"); v != 2 {
		t.Errorf("verify count = %g, want 2", v)
	}
	if v := sampleValue(t, samples, "authtext_client_tamper_rejections_total"); v != 1 {
		t.Errorf("tamper rejections = %g, want 1", v)
	}
}
