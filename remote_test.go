package authtext_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"authtext"
	"authtext/internal/httpapi"
)

// The remote integration suite proves the §3.1 trust model holds across a
// real HTTP boundary: an honest authserved response verifies, and any
// in-transit mutation of the response — by the server or a
// man-in-the-middle — is rejected by the RemoteClient's local
// verification, for both TRA and TNRA.

var remoteFixture struct {
	once    sync.Once
	owner   *authtext.Owner
	handler http.Handler
	export  []byte
	err     error
}

func remoteCorpus() []authtext.Document {
	texts := []string{
		"The old night keeper keeps the keep in the town",
		"In the big old house in the big old gown",
		"The house in the town had the big old keep",
		"Where the old night keeper never did sleep",
		"The night keeper keeps the keep in the night",
		"And this is the big old sleeps dark light house",
		"A merchant sailed along the river at dawn with silk and spice",
		"The market square filled with traders selling copper and grain",
		"Fishermen mended their nets beside the harbor wall at dusk",
		"A stone bridge crossed the river near the old mill and granary",
		"Shepherds drove their flock across the valley before the storm",
		"The library kept maps and grain ledgers and letters under seal",
	}
	docs := make([]authtext.Document, len(texts))
	for i, s := range texts {
		docs[i] = authtext.Document{Content: []byte(s)}
	}
	return docs
}

func remoteEnv(t *testing.T) (http.Handler, []byte) {
	t.Helper()
	remoteFixture.once.Do(func() {
		owner, err := authtext.NewOwner(remoteCorpus())
		if err != nil {
			remoteFixture.err = err
			return
		}
		export, err := owner.ExportClient()
		if err != nil {
			remoteFixture.err = err
			return
		}
		remoteFixture.owner = owner
		remoteFixture.export = export
		remoteFixture.handler = authtext.NewHTTPHandler(owner.Server(), export)
	})
	if remoteFixture.err != nil {
		t.Fatal(remoteFixture.err)
	}
	return remoteFixture.handler, remoteFixture.export
}

const (
	remoteQuery = "night keeper keep"
	remoteR     = 3
)

func TestRemoteHonestServerVerifies(t *testing.T) {
	handler, _ := remoteEnv(t)
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []authtext.Algorithm{authtext.TRA, authtext.TNRA} {
		for _, scheme := range []authtext.Scheme{authtext.MHT, authtext.ChainMHT} {
			t.Run(algo.String()+"-"+scheme.String(), func(t *testing.T) {
				res, err := rc.Search(context.Background(), remoteQuery, remoteR, algo, scheme)
				if err != nil {
					t.Fatalf("verified search failed: %v", err)
				}
				if len(res.Hits) != remoteR {
					t.Fatalf("got %d hits, want %d", len(res.Hits), remoteR)
				}
				if res.Hits[0].Score <= res.Hits[len(res.Hits)-1].Score {
					t.Fatalf("scores not distinct enough for the tamper suite: %+v", res.Hits)
				}
				if len(res.Hits[0].Content) == 0 {
					t.Fatal("hit content not delivered")
				}
				if res.Stats.VOBytes == 0 || res.Stats.QueryTerms == 0 {
					t.Fatalf("stats not populated: %+v", res.Stats)
				}
			})
		}
	}
}

// tamperingProxy wraps an honest handler and mutates every /v1/search
// response body in transit; all other endpoints pass through untouched.
func tamperingProxy(honest http.Handler, mutate func(*httpapi.SearchResponse)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != httpapi.PathSearch {
			honest.ServeHTTP(w, r)
			return
		}
		// This adversary tampers at the JSON layer; force the honest
		// server off binary frames (the framed path has its own battery
		// in remote_wire_test.go).
		r.Header.Del("Accept")
		rec := httptest.NewRecorder()
		honest.ServeHTTP(rec, r)
		if rec.Code != http.StatusOK {
			w.WriteHeader(rec.Code)
			_, _ = w.Write(rec.Body.Bytes())
			return
		}
		var resp httpapi.SearchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		mutate(&resp)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(&resp)
	})
}

func TestRemoteTamperingDetected(t *testing.T) {
	handler, _ := remoteEnv(t)
	mutations := []struct {
		name   string
		mutate func(*httpapi.SearchResponse)
	}{
		{"inflate top score", func(r *httpapi.SearchResponse) {
			r.Hits[0].Score *= 2
		}},
		{"swap ranking", func(r *httpapi.SearchResponse) {
			last := len(r.Hits) - 1
			r.Hits[0], r.Hits[last] = r.Hits[last], r.Hits[0]
		}},
		{"drop result document", func(r *httpapi.SearchResponse) {
			r.Hits = r.Hits[:len(r.Hits)-1]
		}},
		{"empty result", func(r *httpapi.SearchResponse) {
			r.Hits = nil
		}},
		{"alter document content", func(r *httpapi.SearchResponse) {
			r.Hits[0].Content = append([]byte("FORGED "), r.Hits[0].Content...)
		}},
		{"substitute document", func(r *httpapi.SearchResponse) {
			r.Hits[0].DocID = r.Hits[0].DocID + 1000
		}},
		{"flip VO byte", func(r *httpapi.SearchResponse) {
			r.VO = append([]byte(nil), r.VO...)
			r.VO[len(r.VO)/2] ^= 0x40
		}},
		{"truncate VO", func(r *httpapi.SearchResponse) {
			r.VO = r.VO[:len(r.VO)/2]
		}},
	}
	for _, algo := range []authtext.Algorithm{authtext.TRA, authtext.TNRA} {
		for _, m := range mutations {
			t.Run(algo.String()+"/"+m.name, func(t *testing.T) {
				srv := httptest.NewServer(tamperingProxy(handler, m.mutate))
				defer srv.Close()
				rc, err := authtext.NewRemoteClient(srv.URL)
				if err != nil {
					t.Fatal(err)
				}
				res, err := rc.Search(context.Background(), remoteQuery, remoteR, algo, authtext.ChainMHT)
				if err == nil {
					t.Fatalf("tampered response (%s) verified", m.name)
				}
				if !authtext.IsTampered(err) {
					t.Fatalf("rejection not classified as tampering: %v", err)
				}
				if res != nil {
					t.Fatal("tampered result was returned alongside the error")
				}
			})
		}
	}
}

func TestRemoteManifestFetchedOnce(t *testing.T) {
	handler, _ := remoteEnv(t)
	var manifestFetches atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == httpapi.PathManifest {
			manifestFetches.Add(1)
		}
		handler.ServeHTTP(w, r)
	}))
	defer srv.Close()

	rc, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := rc.Search(context.Background(), remoteQuery, remoteR, authtext.TNRA, authtext.ChainMHT); err != nil {
			t.Fatal(err)
		}
	}
	if n := manifestFetches.Load(); n != 1 {
		t.Fatalf("manifest fetched %d times, want 1", n)
	}
}

func TestRemoteTamperedManifestRejected(t *testing.T) {
	handler, export := remoteEnv(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != httpapi.PathManifest {
			handler.ServeHTTP(w, r)
			return
		}
		forged := append([]byte(nil), export...)
		forged[len(forged)-1] ^= 0x01 // corrupt the public key DER
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(&httpapi.ManifestResponse{Format: httpapi.FormatATCX, Export: forged})
	}))
	defer srv.Close()

	rc, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Bootstrap(context.Background()); err == nil {
		t.Fatal("forged manifest accepted")
	}

	// Out-of-band verification material sidesteps the hostile endpoint.
	rc, err = authtext.NewRemoteClient(srv.URL, authtext.WithClientExport(export))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Search(context.Background(), remoteQuery, remoteR, authtext.TNRA, authtext.ChainMHT); err != nil {
		t.Fatalf("search with out-of-band export failed: %v", err)
	}
}

func TestRemoteServerHealth(t *testing.T) {
	handler, _ := remoteEnv(t)
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	h, err := rc.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Documents != len(remoteCorpus()) || h.Terms == 0 {
		t.Fatalf("health = %+v", h)
	}
}

func TestRemoteServerErrorSurfaced(t *testing.T) {
	handler, _ := remoteEnv(t)
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Search(context.Background(), "   ", remoteR, authtext.TNRA, authtext.ChainMHT); err == nil {
		t.Fatal("empty query accepted")
	} else if authtext.IsTampered(err) {
		t.Fatalf("local/protocol error misclassified as tampering: %v", err)
	}
	// r out of range is a caller error, caught before any request: the
	// wire treats r=0 as unset, so letting it through would make an honest
	// server's defaulted answer misclassify as tampering.
	for _, r := range []int{0, -1, 1001} {
		if _, err := rc.Search(context.Background(), remoteQuery, r, authtext.TNRA, authtext.ChainMHT); err == nil {
			t.Fatalf("r=%d accepted", r)
		} else if authtext.IsTampered(err) {
			t.Fatalf("r=%d misclassified as tampering: %v", r, err)
		}
	}
}

// The JSON round trip must not disturb floating-point scores: the client
// recomputes them bit-for-bit during verification.
func TestRemoteScoreRoundTrip(t *testing.T) {
	handler, _ := remoteEnv(t)
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := rc.Search(context.Background(), remoteQuery, remoteR, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	local, err := remoteFixture.owner.Server().Search(remoteQuery, remoteR, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote.Hits) != len(local.Hits) {
		t.Fatalf("remote %d hits, local %d", len(remote.Hits), len(local.Hits))
	}
	for i := range remote.Hits {
		if remote.Hits[i].Score != local.Hits[i].Score || remote.Hits[i].DocID != local.Hits[i].DocID {
			t.Fatalf("hit %d differs: remote %+v local %+v", i, remote.Hits[i], local.Hits[i])
		}
		if !bytes.Equal(remote.Hits[i].Content, local.Hits[i].Content) {
			t.Fatalf("hit %d content differs", i)
		}
	}
}
