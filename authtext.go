package authtext

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"authtext/internal/core"
	"authtext/internal/engine"
	"authtext/internal/index"
	"authtext/internal/okapi"
	"authtext/internal/sig"
	"authtext/internal/store"
	"authtext/internal/textproc"
)

// Algorithm selects the query processing strategy.
type Algorithm int

const (
	// TRA is Threshold with Random Access (§3.3): fewest list entries
	// read, at the price of one random document access per encountered
	// document and larger VOs.
	TRA Algorithm = iota + 1
	// TNRA is Threshold with No Random Access (§3.4): sorted access only,
	// sequential I/O, the smallest VOs. The paper's overall winner when
	// paired with ChainMHT.
	TNRA
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	if a == TRA {
		return "TRA"
	}
	return "TNRA"
}

// Scheme selects the authentication structure.
type Scheme int

const (
	// MHT authenticates each inverted list with a single Merkle tree
	// (§3.3.1); the server re-reads whole lists to regenerate digests.
	MHT Scheme = iota + 1
	// ChainMHT authenticates each list with a back-to-front chain of
	// per-block Merkle trees plus buddy inclusion (§3.3.2); the server
	// never reads past the query's cut-off block.
	ChainMHT
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	if s == MHT {
		return "MHT"
	}
	return "CMHT"
}

func (a Algorithm) core() core.Algo {
	if a == TRA {
		return core.AlgoTRA
	}
	return core.AlgoTNRA
}

func (s Scheme) core() core.Scheme {
	if s == MHT {
		return core.SchemeMHT
	}
	return core.SchemeCMHT
}

// Document is an input document: raw content, optionally pre-tokenised.
type Document struct {
	Content []byte
	// Tokens, when non-nil, bypasses the tokenizer (stopwords are still
	// removed).
	Tokens []string
}

// Hit is one entry of a verified result.
type Hit struct {
	DocID   int
	Score   float64
	Content []byte
}

// SearchResult bundles everything the server returns for a query: the
// ordered hits, the verification object, and the server-side cost report.
type SearchResult struct {
	Hits []Hit
	// VO is the encoded verification object; archive it alongside the
	// result to build an audit trail (§1).
	VO []byte
	// Generation is the publication generation that answered (0 for
	// static collections). The authoritative stamp travels inside the VO
	// and is cross-checked during verification; this copy is the
	// convenient, untrusted echo (docs/UPDATES.md).
	Generation uint64
	Stats      Stats
}

// Stats reports the per-query costs the paper measures (§4.1).
type Stats struct {
	Algorithm      Algorithm
	Scheme         Scheme
	QueryTerms     int
	EntriesRead    int
	EntriesPerTerm float64
	PctListRead    float64
	BlockReads     int64
	RandomReads    int64
	// IOTime is simulated disk time under the configured cost model.
	IOTime StatsDuration
	// ServerTime is the real wall time the engine spent answering this
	// query (search + VO assembly). Unlike a wall clock around a batch, it
	// is per-query even when queries run concurrently.
	ServerTime StatsDuration
	// VOBytes is the encoded VO size.
	VOBytes int
}

// StatsDuration is a float64 millisecond count (keeps Stats printable
// without importing time).
type StatsDuration float64

// String implements fmt.Stringer.
func (d StatsDuration) String() string { return fmt.Sprintf("%.3fms", float64(d)) }

// options collects construction-time settings.
type options struct {
	blockSize        int
	hashSize         int
	rsaBits          int
	fastSignerKey    []byte
	dictMode         bool
	vocabProofs      bool
	keepSingletons   bool
	k1, b            float64
	storeParamsSet   bool
	storeParams      store.Params
	signerOverridden bool
	authority        []float64
	pageRankLinks    [][]int
	beta             float64
	partitioner      ShardPartitioner
}

// Option customises NewOwner.
type Option func(*options)

// WithBlockSize sets the simulated disk block size (default 1024, §4.1).
func WithBlockSize(n int) Option { return func(o *options) { o.blockSize = n } }

// WithHashSize sets the digest size in bytes (default 16 = 128 bits,
// Table 1).
func WithHashSize(n int) Option { return func(o *options) { o.hashSize = n } }

// WithRSABits sets the RSA modulus size (default 1024 bits, Table 1).
func WithRSABits(n int) Option { return func(o *options) { o.rsaBits = n } }

// WithFastSigner replaces RSA with a keyed-hash signer of identical
// signature size. Builds become orders of magnitude faster but signatures
// are only verifiable by holders of the key — benchmarking only.
func WithFastSigner(key []byte) Option {
	return func(o *options) { o.fastSignerKey = key; o.signerOverridden = true }
}

// WithDictionaryMode stores one signature for the whole index via a
// dictionary-MHT instead of one per inverted list (§3.4 space
// optimisation), trading VO size for storage.
func WithDictionaryMode() Option { return func(o *options) { o.dictMode = true } }

// WithVocabularyProofs enables non-membership proofs for out-of-dictionary
// query terms, closing the dropped-term gap discussed in DESIGN.md §4.
func WithVocabularyProofs() Option { return func(o *options) { o.vocabProofs = true } }

// WithSingletonTerms keeps terms that occur in only one document (the
// paper removes them, §4.1).
func WithSingletonTerms() Option { return func(o *options) { o.keepSingletons = true } }

// WithOkapi overrides the similarity parameters (defaults k1=1.2, b=0.75).
func WithOkapi(k1, b float64) Option { return func(o *options) { o.k1, o.b = k1, b } }

// WithDiskModel overrides the simulated disk cost parameters.
func WithDiskModel(p DiskModel) Option {
	return func(o *options) {
		o.storeParamsSet = true
		o.storeParams = store.Params{
			BlockSize:           p.BlockSize,
			Seek:                p.Seek,
			Rotation:            p.Rotation,
			TransferBytesPerSec: p.TransferBytesPerSec,
		}
	}
}

// DiskModel mirrors the simulated disk parameters (see store.Params).
type DiskModel struct {
	BlockSize           int
	Seek                time.Duration
	Rotation            time.Duration
	TransferBytesPerSec float64
}

// Owner builds and publishes an authenticated collection.
type Owner struct {
	col *engine.Collection
}

// prepareBuild resolves the option list into a ready engine configuration
// (fresh signer included) and the engine-level document slice. It is shared
// by NewOwner and NewShardedOwner so both build identically configured
// collections.
func prepareBuild(docs []Document, opts []Option) (engine.Config, []index.Document, *options, error) {
	if len(docs) == 0 {
		return engine.Config{}, nil, nil, errors.New("authtext: empty collection")
	}
	o := &options{blockSize: 1024, hashSize: sig.DefaultHashSize, rsaBits: sig.DefaultRSABits,
		k1: okapi.DefaultK1, b: okapi.DefaultB}
	for _, opt := range opts {
		opt(o)
	}
	var signer sig.Signer
	var err error
	if o.signerOverridden {
		signer, err = sig.NewHMACSigner(o.fastSignerKey, 128)
	} else {
		signer, err = sig.NewRSASigner(o.rsaBits)
	}
	if err != nil {
		return engine.Config{}, nil, nil, err
	}
	params := store.DefaultParams()
	if o.storeParamsSet {
		params = o.storeParams
	}
	params.BlockSize = o.blockSize
	authority, err := computeAuthority(o, len(docs))
	if err != nil {
		return engine.Config{}, nil, nil, err
	}
	cfg := engine.Config{
		Store:            params,
		HashSize:         o.hashSize,
		Signer:           signer,
		Okapi:            okapi.Params{K1: o.k1, B: o.b},
		RemoveSingletons: !o.keepSingletons,
		DictMode:         o.dictMode,
		VocabProofs:      o.vocabProofs,
		Authority:        authority,
		Beta:             o.beta,
	}
	idocs := make([]index.Document, len(docs))
	for i, d := range docs {
		idocs[i] = index.Document{Content: d.Content, Tokens: d.Tokens}
	}
	return cfg, idocs, o, nil
}

// NewOwner indexes the documents and constructs every authentication
// structure with a freshly generated RSA key (unless WithFastSigner).
func NewOwner(docs []Document, opts ...Option) (*Owner, error) {
	cfg, idocs, _, err := prepareBuild(docs, opts)
	if err != nil {
		return nil, err
	}
	col, err := engine.BuildCollection(idocs, cfg)
	if err != nil {
		return nil, err
	}
	return &Owner{col: col}, nil
}

// Server returns the query-serving half (hand it, conceptually, to the
// untrusted host).
func (o *Owner) Server() *Server { return &Server{col: o.col} }

// Client returns the verification half (publish it to users: it embeds
// only the signed manifest and the public key).
func (o *Owner) Client() *Client {
	m, msig := o.col.Manifest()
	return &Client{manifest: m, manifestSig: msig, verifier: o.col.Verifier()}
}

// Stats summarises the owner-side build.
func (o *Owner) Stats() (buildMillis float64, signatures int, deviceBytes int64) {
	bs := o.col.BuildStats()
	return float64(bs.BuildTime.Milliseconds()), bs.Signatures, o.col.Space().DeviceBytes
}

// Server answers queries with integrity proofs. It is safe for concurrent
// use: the underlying collection is immutable once built, every query runs
// on its own store session, and any number of Search calls may be in
// flight at once (docs/CONCURRENCY.md describes the model). SearchBatch
// executes many queries with a bounded worker pool.
type Server struct {
	col *engine.Collection
	// cache, when non-nil, serves repeat queries from pre-built answers
	// (see cache.go for the safety argument). Set before serving starts.
	cache *VOCache
	// metrics, when non-nil, receives per-stage cost observations
	// (metrics.go). Set before serving starts.
	metrics *Metrics
}

// SetVOCache attaches a VO cache (nil detaches). Call before the server
// starts answering queries; the cache itself is safe for concurrent use
// and may be shared between servers.
func (s *Server) SetVOCache(c *VOCache) { s.cache = c }

// SetMetrics attaches a metric registry (nil detaches). Call before the
// server starts answering queries; one Metrics may be shared between
// servers.
func (s *Server) SetMetrics(m *Metrics) { s.metrics = m }

// withCache returns a shallow copy of s serving through c. Snapshot
// accessors that hand out a SHARED *Server use it so attaching a cache
// never mutates a server other goroutines are reading.
func (s *Server) withCache(c *VOCache) *Server {
	if c == nil {
		return s
	}
	cp := *s
	cp.cache = c
	return &cp
}

// withMetrics is withCache for the metric registry.
func (s *Server) withMetrics(m *Metrics) *Server {
	if m == nil {
		return s
	}
	cp := *s
	cp.metrics = m
	return &cp
}

// Search runs a top-r similarity query. The query text goes through the
// same pipeline as the documents (lowercasing, stopword removal);
// out-of-dictionary terms are ignored per §3.1. Search is safe for
// concurrent use, and per-query Stats are unaffected by concurrency.
func (s *Server) Search(query string, r int, algo Algorithm, scheme Scheme) (*SearchResult, error) {
	tokens := textproc.Terms(query)
	manifest, _ := s.col.Manifest()
	var key string
	if s.cache != nil {
		key = cacheKey(cacheKindSingle, tokens, r, algo, scheme, manifest.Generation)
		lookupStart := time.Now()
		res, ok := s.cache.getResult(key)
		s.metrics.observeCacheLookup(time.Since(lookupStart))
		if ok {
			s.metrics.recordSearchHit()
			return res, nil
		}
	}
	res, voBytes, st, err := s.col.Search(tokens, r, algo.core(), scheme.core())
	if err != nil {
		return nil, err
	}
	out := &SearchResult{VO: voBytes, Generation: manifest.Generation}
	for _, e := range res.Entries {
		out.Hits = append(out.Hits, Hit{DocID: int(e.Doc), Score: e.Score, Content: res.Contents[e.Doc]})
	}
	out.Stats = Stats{
		Algorithm:      algo,
		Scheme:         scheme,
		QueryTerms:     st.QueryTerms,
		EntriesRead:    st.EntriesRead,
		EntriesPerTerm: st.EntriesPerTerm,
		PctListRead:    st.PctListRead,
		BlockReads:     st.IO.BlockReads,
		RandomReads:    st.IO.RandomReads,
		IOTime:         StatsDuration(float64(st.IO.SimTime.Microseconds()) / 1000),
		ServerTime:     StatsDuration(float64(st.ServerWall.Microseconds()) / 1000),
		VOBytes:        len(voBytes),
	}
	s.metrics.recordSearch(st.ServerWall, st.EncodeWall)
	if s.cache != nil {
		s.cache.putResult(key, manifest.Generation, out)
	}
	return out, nil
}

// ErrStaleGeneration classifies rollback: a server (or manifest channel)
// presenting an older publication generation than one this client already
// accepted. Test with errors.Is; IsTampered reports true for it.
// docs/UPDATES.md describes the generation trust rules.
var ErrStaleGeneration error = &core.VerifyError{
	Code:   core.CodeStaleGeneration,
	Detail: "older generation than one already accepted",
}

// ErrEquivocation classifies fleet equivocation: replicas of one
// collection presenting conflicting signed states — two different
// manifests for the same generation (a split view or a forked generation
// chain), or a replica frozen at an old generation while the rest of the
// fleet advances. Both sides of the conflict carry valid owner
// signatures, so this is misbehaviour by the serving side (or a stolen
// signing key), never a transient failure: test with errors.Is;
// IsTampered reports true for it. FleetClient.CrossCheck raises it
// (docs/FLEET.md describes the trust model).
var ErrEquivocation error = &core.VerifyError{
	Code:   core.CodeEquivocation,
	Detail: "conflicting signed states for the same collection",
}

// Client verifies query results against the owner's published manifest and
// public key. It holds no collection data. The public key is pinned at
// construction and never changes; for live collections (docs/UPDATES.md)
// the manifest can move FORWARD to later generations via Advance /
// AdvanceExport — never backward: a regression is rejected as
// ErrStaleGeneration. Safe for concurrent use.
type Client struct {
	// verifier is the pinned public key; everything mutable sits behind mu.
	verifier sig.Verifier

	mu          sync.Mutex
	manifest    *core.Manifest
	manifestSig []byte
	checked     bool
	checkErr    error
	// maxGen is the highest generation this client has accepted; Advance
	// refuses to go below it.
	maxGen uint64
}

// checkManifestLocked runs the one-time manifest signature check (caller
// holds mu). The outcome is cached until a successful Advance replaces
// the manifest: a bad manifest fails every subsequent Verify identically.
func (c *Client) checkManifestLocked() error {
	if !c.checked {
		c.checkErr = core.VerifyManifest(c.manifest, c.manifestSig, c.verifier)
		c.checked = true
		if c.checkErr == nil && c.manifest.Generation > c.maxGen {
			c.maxGen = c.manifest.Generation
		}
	}
	return c.checkErr
}

// current returns the verified manifest to check a result against.
func (c *Client) current() (*core.Manifest, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkManifestLocked(); err != nil {
		return nil, err
	}
	return c.manifest, nil
}

// Generation returns the generation of the manifest this client currently
// verifies against (0 for a static collection).
func (c *Client) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.manifest.Generation
}

// Advance moves the client to a newer generation of a live collection:
// manifestBytes is the owner's canonical manifest encoding (the exact
// signed bytes) and sigBytes the signature over them. The signature is
// checked against the PINNED key — the channel delivering the update needs
// no trust of its own — and the generation must not regress below any the
// client has accepted (ErrStaleGeneration otherwise; a different manifest
// re-using an already-accepted generation is rejected the same way, since
// one generation never has two honest encodings). Advancing to the current
// generation with identical bytes is a no-op.
func (c *Client) Advance(manifestBytes, sigBytes []byte) error {
	m, err := core.DecodeManifest(manifestBytes)
	if err != nil {
		return fmt.Errorf("authtext: %w", err)
	}
	if err := core.VerifyManifest(m, sigBytes, c.verifier); err != nil {
		return &core.VerifyError{Code: core.CodeBadSignature, Detail: err.Error()}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Pin maxGen from the bootstrap manifest before comparing, so a
	// rollback attempted before the first Verify is still caught.
	if err := c.checkManifestLocked(); err != nil {
		return err
	}
	switch {
	case m.Generation < c.maxGen:
		return &core.VerifyError{Code: core.CodeStaleGeneration,
			Detail: fmt.Sprintf("manifest generation %d, already accepted %d", m.Generation, c.maxGen)}
	case m.Generation == c.maxGen:
		if !bytes.Equal(manifestBytes, c.manifest.Encode()) {
			return &core.VerifyError{Code: core.CodeStaleGeneration,
				Detail: fmt.Sprintf("conflicting manifest for generation %d", m.Generation)}
		}
		return nil
	}
	c.manifest = m
	c.manifestSig = append([]byte(nil), sigBytes...)
	c.maxGen = m.Generation
	c.checked, c.checkErr = true, nil
	return nil
}

// AdvanceExport is Advance over an ATCX export blob (the /v1/manifest
// payload). The blob's embedded key is ignored — the signature must verify
// against this client's pinned key.
func (c *Client) AdvanceExport(data []byte) error {
	manifestRaw, sigRaw, _, err := splitClientExport(data)
	if err != nil {
		return err
	}
	return c.Advance(manifestRaw, sigRaw)
}

// Verify checks a search result (including its delivered document
// contents) against the VO. It returns nil iff the result satisfies the
// correctness criteria of §3.1; the error explains the first violation
// found.
func (c *Client) Verify(query string, r int, res *SearchResult) error {
	if res == nil {
		return errors.New("authtext: nil result")
	}
	manifest, err := c.current()
	if err != nil {
		return err
	}
	decoded, err := decodeVO(res.VO)
	if err != nil {
		// An undecodable VO from a server is tampering, not a local usage
		// error: classify it so IsTampered reports true.
		return &core.VerifyError{Code: core.CodeMalformedVO, Detail: err.Error()}
	}
	entries := make([]core.ResultEntry, len(res.Hits))
	contents := make(map[index.DocID][]byte, len(res.Hits))
	for i, h := range res.Hits {
		entries[i] = core.ResultEntry{Doc: index.DocID(h.DocID), Score: h.Score}
		contents[index.DocID(h.DocID)] = h.Content
	}
	return core.Verify(&core.VerifyInput{
		Manifest: manifest,
		Verifier: c.verifier,
		Tokens:   textproc.Terms(query),
		R:        r,
		Result:   entries,
		Contents: contents,
		VO:       decoded,
	})
}

// IsTampered reports whether an error from Verify indicates tampering (as
// opposed to a malformed input).
func IsTampered(err error) bool {
	return err != nil && core.CodeOf(err) != core.VerifyOK
}
