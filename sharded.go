package authtext

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"authtext/internal/core"
	"authtext/internal/index"
	"authtext/internal/shard"
	"authtext/internal/sig"
	"authtext/internal/textproc"
)

// Sharded collections split one corpus into k independently authenticated
// sub-collections. The owner signs every shard plus a compact shard-set
// manifest pinning the shard population; a ShardedServer fans each query
// out to all shards in parallel; a ShardedClient verifies every shard's
// verification object with the single-collection machinery and then checks
// the merged ranking is the true global top-r by recomputation. Tampering
// with any shard's answer, dropping or substituting a shard, or reordering
// the merge classifies as tampering (IsTampered reports true).
// docs/SHARDING.md describes the design and its trust model.

// ShardPartitioner selects how documents are assigned to shards.
type ShardPartitioner int

const (
	// PartitionRoundRobin assigns document i to shard i mod k (balanced,
	// the default).
	PartitionRoundRobin ShardPartitioner = iota + 1
	// PartitionHash assigns documents by content hash (stable under corpus
	// reordering).
	PartitionHash
)

func (p ShardPartitioner) internal() shard.Partitioner {
	if p == PartitionHash {
		return shard.HashContent
	}
	return shard.RoundRobin
}

// WithShardPartitioner overrides the document→shard assignment policy used
// by NewShardedOwner (default PartitionRoundRobin). It has no effect on
// NewOwner.
func WithShardPartitioner(p ShardPartitioner) Option {
	return func(o *options) { o.partitioner = p }
}

// ShardedOwner builds and publishes a sharded authenticated collection:
// one signing key, k shards, one signed shard-set manifest.
type ShardedOwner struct {
	set *shard.Set
}

// NewShardedOwner partitions the documents into shards, builds every shard
// concurrently (all Options apply to each shard exactly as they would to
// NewOwner), and signs the set manifest with the same key.
func NewShardedOwner(docs []Document, shards int, opts ...Option) (*ShardedOwner, error) {
	cfg, idocs, o, err := prepareBuild(docs, opts)
	if err != nil {
		return nil, err
	}
	part := shard.RoundRobin
	if o.partitioner != 0 {
		part = o.partitioner.internal()
	}
	set, err := shard.Build(idocs, shard.Config{Engine: cfg, Shards: shards, Partitioner: part})
	if err != nil {
		return nil, err
	}
	return &ShardedOwner{set: set}, nil
}

// Shards returns the shard count.
func (o *ShardedOwner) Shards() int { return o.set.K() }

// Server returns the query-serving half (conceptually handed to the
// untrusted host — or hosts; each shard is one snapshot file).
func (o *ShardedOwner) Server() *ShardedServer { return &ShardedServer{set: o.set} }

// Client returns the verification half: the signed set manifest, every
// shard's signed manifest, the doc maps and the public key.
func (o *ShardedOwner) Client() *ShardedClient { return newShardedClientFromSet(o.set) }

// Stats aggregates owner-side build costs across shards. buildMillis is
// the slowest shard (shards build in parallel).
func (o *ShardedOwner) Stats() (buildMillis float64, signatures int, deviceBytes int64) {
	for i := 0; i < o.set.K(); i++ {
		bs := o.set.Col(i).BuildStats()
		if ms := float64(bs.BuildTime.Milliseconds()); ms > buildMillis {
			buildMillis = ms
		}
		signatures += bs.Signatures
		deviceBytes += o.set.Col(i).Space().DeviceBytes
	}
	signatures++ // the set-manifest signature
	return buildMillis, signatures, deviceBytes
}

// ShardedServer answers queries by parallel fan-out over every shard.
type ShardedServer struct {
	set *shard.Set
	// cache, when non-nil, serves repeat queries with the whole merged
	// fan-out answer (see cache.go). Set before serving starts.
	cache *VOCache
	// metrics, when non-nil, receives per-stage cost observations
	// (metrics.go). Set before serving starts.
	metrics *Metrics
}

// SetVOCache attaches a VO cache (nil detaches). Call before the server
// starts answering queries. The cached unit is the complete fan-out
// answer — per-shard results plus merge — so a hit skips every shard.
func (s *ShardedServer) SetVOCache(c *VOCache) { s.cache = c }

// SetMetrics attaches a metric registry (nil detaches). Call before the
// server starts answering queries.
func (s *ShardedServer) SetMetrics(m *Metrics) { s.metrics = m }

// withCache returns a shallow copy of s serving through c (see
// Server.withCache).
func (s *ShardedServer) withCache(c *VOCache) *ShardedServer {
	if c == nil {
		return s
	}
	cp := *s
	cp.cache = c
	return &cp
}

// withMetrics is withCache for the metric registry.
func (s *ShardedServer) withMetrics(m *Metrics) *ShardedServer {
	if m == nil {
		return s
	}
	cp := *s
	cp.metrics = m
	return &cp
}

// Shards returns the shard count.
func (s *ShardedServer) Shards() int { return s.set.K() }

// Shard returns the single-collection server for shard i (tests use it for
// targeted tampering; deployments can serve shards from separate processes).
func (s *ShardedServer) Shard(i int) *Server { return &Server{col: s.set.Col(i)} }

// ShardedHit is one entry of the merged global ranking.
type ShardedHit struct {
	// Shard and DocID identify the document inside its shard (DocID is the
	// shard-local ID the shard's VO speaks about).
	Shard int
	DocID int
	// GlobalID is the document's index in the original corpus, from the
	// authenticated shard doc map.
	GlobalID int
	Score    float64
	Content  []byte
}

// ShardedStats aggregates per-query costs across the fan-out.
type ShardedStats struct {
	Shards      int
	Algorithm   Algorithm
	Scheme      Scheme
	QueryTerms  int
	EntriesRead int
	// VOBytes is the summed size of all shard VOs.
	VOBytes int
	// IOTime is the slowest shard's simulated disk time (shards run in
	// parallel, so this is the critical path).
	IOTime StatsDuration
	// Wall is the fan-out wall time.
	Wall time.Duration
}

// ShardedResult bundles everything the server returns for one fanned-out
// query: each shard's individually authenticated answer plus the merged
// global ranking.
type ShardedResult struct {
	// PerShard holds shard i's result (hits, VO, stats) at index i.
	PerShard []*SearchResult
	// Merged is the claimed global top-r. The client recomputes it from
	// the verified per-shard results; it carries no proof of its own.
	Merged []ShardedHit
	// Generation is the shard-set generation that answered (0 for static
	// sets) — an untrusted echo, like SearchResult.Generation.
	Generation uint64
	Stats      ShardedStats
}

// Search runs a top-r similarity query against every shard concurrently
// and merges the local rankings into the global top-r.
func (s *ShardedServer) Search(query string, r int, algo Algorithm, scheme Scheme) (*ShardedResult, error) {
	tokens := textproc.Terms(query)
	sm, _ := s.set.Manifest()
	var key string
	if s.cache != nil {
		key = cacheKey(cacheKindSharded, tokens, r, algo, scheme, sm.Generation)
		lookupStart := time.Now()
		res, ok := s.cache.getSharded(key)
		s.metrics.observeCacheLookup(time.Since(lookupStart))
		if ok {
			s.metrics.recordShardedSearchHit()
			return res, nil
		}
	}
	setRes, err := s.set.Search(tokens, r, algo.core(), scheme.core())
	if err != nil {
		return nil, err
	}
	out := &ShardedResult{
		PerShard:   make([]*SearchResult, len(setRes.PerShard)),
		Merged:     make([]ShardedHit, len(setRes.Merged)),
		Generation: sm.Generation,
		Stats: ShardedStats{
			Shards:    s.set.K(),
			Algorithm: algo,
			Scheme:    scheme,
			Wall:      setRes.Wall,
		},
	}
	for i, sr := range setRes.PerShard {
		shardMan, _ := s.set.Col(i).Manifest()
		res := &SearchResult{VO: sr.VO, Generation: shardMan.Generation}
		for _, e := range sr.Result.Entries {
			res.Hits = append(res.Hits, Hit{DocID: int(e.Doc), Score: e.Score, Content: sr.Result.Contents[e.Doc]})
		}
		res.Stats = Stats{
			Algorithm:      algo,
			Scheme:         scheme,
			QueryTerms:     sr.Stats.QueryTerms,
			EntriesRead:    sr.Stats.EntriesRead,
			EntriesPerTerm: sr.Stats.EntriesPerTerm,
			PctListRead:    sr.Stats.PctListRead,
			BlockReads:     sr.Stats.IO.BlockReads,
			RandomReads:    sr.Stats.IO.RandomReads,
			IOTime:         StatsDuration(float64(sr.Stats.IO.SimTime.Microseconds()) / 1000),
			ServerTime:     StatsDuration(float64(sr.Stats.ServerWall.Microseconds()) / 1000),
			VOBytes:        len(sr.VO),
		}
		out.PerShard[i] = res
		out.Stats.QueryTerms = sr.Stats.QueryTerms
		out.Stats.EntriesRead += sr.Stats.EntriesRead
		out.Stats.VOBytes += len(sr.VO)
		if res.Stats.IOTime > out.Stats.IOTime {
			out.Stats.IOTime = res.Stats.IOTime
		}
	}
	for i, m := range setRes.Merged {
		out.Merged[i] = ShardedHit{
			Shard:    m.Shard,
			DocID:    int(m.Doc),
			GlobalID: int(m.Global),
			Score:    m.Score,
			Content:  setRes.PerShard[m.Shard].Result.Contents[m.Doc],
		}
	}
	if s.metrics != nil {
		walls := make([]time.Duration, len(setRes.PerShard))
		encodes := make([]time.Duration, len(setRes.PerShard))
		for i, sr := range setRes.PerShard {
			walls[i], encodes[i] = sr.Stats.ServerWall, sr.Stats.EncodeWall
		}
		s.metrics.recordShardedSearch(walls, encodes, setRes.MergeWall)
	}
	if s.cache != nil {
		s.cache.putSharded(key, sm.Generation, out)
	}
	return out, nil
}

// ShardedClient verifies fanned-out query results. It holds no collection
// data: only the signed set manifest, each shard's signed manifest, the
// doc maps and the owner's public key. Like Client, the key is pinned at
// construction and the manifests can move forward — never backward — to
// later generations of a live shard set via AdvanceExport. Safe for
// concurrent use.
type ShardedClient struct {
	verifier sig.Verifier

	mu          sync.Mutex
	manifest    *shard.SetManifest
	manifestSig []byte
	shards      []*Client
	docMaps     [][]uint32
	checked     bool
	checkErr    error
	maxGen      uint64
}

func newShardedClientFromSet(set *shard.Set) *ShardedClient {
	sm, smSig := set.Manifest()
	c := &ShardedClient{
		manifest:    sm,
		manifestSig: smSig,
		verifier:    set.Verifier(),
		shards:      make([]*Client, set.K()),
		docMaps:     make([][]uint32, set.K()),
	}
	for i := 0; i < set.K(); i++ {
		m, msig := set.Col(i).Manifest()
		c.shards[i] = &Client{manifest: m, manifestSig: msig, verifier: set.Verifier()}
		c.docMaps[i] = set.DocMap(i)
	}
	return c
}

// Shards returns the shard count the set manifest commits to.
func (c *ShardedClient) Shards() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.shards)
}

// Generation returns the generation of the set manifest this client
// currently verifies against (0 for a static shard set).
func (c *ShardedClient) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.manifest.Generation
}

// checkManifestLocked runs the one-time set-manifest signature check
// (cached, like Client.checkManifestLocked; caller holds mu).
func (c *ShardedClient) checkManifestLocked() error {
	if !c.checked {
		if err := shard.VerifySetManifest(c.manifest, c.manifestSig, c.verifier); err != nil {
			c.checkErr = &core.VerifyError{Code: core.CodeBadSignature, Detail: err.Error()}
		}
		c.checked = true
		if c.checkErr == nil && c.manifest.Generation > c.maxGen {
			c.maxGen = c.manifest.Generation
		}
	}
	return c.checkErr
}

// state returns the verified manifest plus the per-shard verification
// material for one Verify pass.
func (c *ShardedClient) state() (*shard.SetManifest, []*Client, [][]uint32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkManifestLocked(); err != nil {
		return nil, nil, nil, err
	}
	return c.manifest, c.shards, c.docMaps, nil
}

// AdvanceExport moves the client to a newer generation of a live shard
// set, given the owner's current ATSX export (the /v1/shards/manifest
// payload). The set-manifest signature must verify against the PINNED key
// — the blob's embedded key is not trusted — and the generation must not
// regress below any already accepted (ErrStaleGeneration otherwise, which
// IsTampered classifies as tampering). Re-presenting the already-accepted
// generation byte-identically is a no-op.
func (c *ShardedClient) AdvanceExport(data []byte) error {
	ex, err := parseShardedExport(data)
	if err != nil {
		return err
	}
	// parseShardedExport verified against the embedded key; rollback
	// protection needs the pinned one.
	if err := shard.VerifySetManifest(ex.manifest, ex.manifestSig, c.verifier); err != nil {
		return &core.VerifyError{Code: core.CodeBadSignature, Detail: err.Error()}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkManifestLocked(); err != nil {
		return err
	}
	switch {
	case ex.manifest.Generation < c.maxGen:
		return &core.VerifyError{Code: core.CodeStaleGeneration,
			Detail: fmt.Sprintf("set manifest generation %d, already accepted %d", ex.manifest.Generation, c.maxGen)}
	case ex.manifest.Generation == c.maxGen:
		if !bytes.Equal(ex.manifest.Encode(), c.manifest.Encode()) {
			return &core.VerifyError{Code: core.CodeStaleGeneration,
				Detail: fmt.Sprintf("conflicting set manifest for generation %d", ex.manifest.Generation)}
		}
		return nil
	}
	c.manifest = ex.manifest
	c.manifestSig = ex.manifestSig
	c.docMaps = ex.docMaps
	c.shards = make([]*Client, ex.manifest.K)
	for i := range c.shards {
		// Shard manifests are bound to the (pinned-key-verified) set
		// manifest by digest, checked in parseShardedExport.
		c.shards[i] = &Client{manifest: ex.shardMans[i], manifestSig: ex.shardSigs[i],
			verifier: c.verifier, checked: true, maxGen: ex.shardMans[i].Generation}
	}
	c.maxGen = ex.manifest.Generation
	c.checked, c.checkErr = true, nil
	return nil
}

// Verify checks a sharded search result end to end: the set-manifest
// signature, every shard's verification object against that shard's signed
// manifest, and finally that the merged ranking equals the deterministic
// top-r recomputed from the (now trusted) per-shard results. It returns
// nil iff all checks pass; IsTampered classifies the error.
func (c *ShardedClient) Verify(query string, r int, res *ShardedResult) error {
	if res == nil {
		return errors.New("authtext: nil result")
	}
	_, shards, docMaps, err := c.state()
	if err != nil {
		return err
	}
	if len(res.PerShard) != len(shards) {
		return &core.VerifyError{Code: core.CodeIncomplete,
			Detail: fmt.Sprintf("%d shard responses for a %d-shard collection", len(res.PerShard), len(shards))}
	}
	perShard := make([][]core.ResultEntry, len(shards))
	contents := make(map[[2]int][]byte)
	for i, sr := range res.PerShard {
		if sr == nil {
			return &core.VerifyError{Code: core.CodeIncomplete,
				Detail: fmt.Sprintf("shard %d returned no response", i)}
		}
		if err := shards[i].Verify(query, r, sr); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		entries := make([]core.ResultEntry, len(sr.Hits))
		for j, h := range sr.Hits {
			entries[j] = core.ResultEntry{Doc: index.DocID(h.DocID), Score: h.Score}
			contents[[2]int{i, h.DocID}] = h.Content
		}
		perShard[i] = entries
	}
	merged := make([]shard.MergedHit, len(res.Merged))
	for i, h := range res.Merged {
		merged[i] = shard.MergedHit{Shard: h.Shard, Doc: index.DocID(h.DocID), Global: uint32(h.GlobalID), Score: h.Score}
	}
	if err := shard.VerifyMerge(perShard, docMaps, r, merged); err != nil {
		return err
	}
	// The merged entries must deliver the same (verified) content as the
	// shard answers they cite.
	for i, h := range res.Merged {
		if want, ok := contents[[2]int{h.Shard, h.DocID}]; !ok || !bytes.Equal(h.Content, want) {
			return &core.VerifyError{Code: core.CodeBadContent,
				Detail: fmt.Sprintf("merged entry %d content disagrees with shard %d's verified answer", i, h.Shard)}
		}
	}
	return nil
}
