package authtext

import "authtext/internal/vo"

// decodeVO isolates the wire-format dependency of the facade.
func decodeVO(b []byte) (*vo.VO, error) { return vo.Decode(b) }
