package authtext_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"authtext"
	"authtext/internal/fleet"
)

// Chaos battery: every availability fault a flaky network or dying
// replica can inject — connection drops, injected 5xx, multi-second
// stalls, responses truncated mid-body — must surface to the verifying
// client as a PLAIN error. None of them can forge signed data, so a
// single IsTampered misclassification here would teach operators to
// ignore the one alarm that matters. The chaos proxy lives in
// internal/fleet and is shared with the front-end ride-through tests.

func chaosOwner(t *testing.T) (*authtext.LiveOwner, http.Handler) {
	t.Helper()
	owner, _, err := authtext.NewLiveOwner(liveRemoteDocs(0, 12))
	if err != nil {
		t.Fatal(err)
	}
	h, err := owner.HTTPHandler()
	if err != nil {
		t.Fatal(err)
	}
	return owner, h
}

var chaosModes = []struct {
	name string
	mode fleet.FaultMode
}{
	{"Drop", fleet.Drop},
	{"Err500", fleet.Err500},
	{"Err503", fleet.Err503},
	{"Delay", fleet.Delay},
	{"Truncate", fleet.Truncate},
}

// A client talking straight to a chaos-wrapped replica: every fault mode
// yields an error, never a tamper classification, and the client
// recovers the moment the fault clears — no poisoned state.
func TestChaosFaultsNeverClassifyAsTampering(t *testing.T) {
	_, handler := chaosOwner(t)
	replica := httptest.NewServer(handler)
	defer replica.Close()
	p := fleet.NewChaosProxy(replica.URL)
	defer p.Close()

	rc, err := authtext.NewRemoteClient(p.URL(),
		authtext.WithHTTPClient(&http.Client{Timeout: 500 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	search := func() error {
		_, err := rc.Search(ctx, "merkle tree proof", 5, authtext.TNRA, authtext.ChainMHT)
		return err
	}
	if err := search(); err != nil {
		t.Fatalf("bootstrap through passive proxy: %v", err)
	}

	p.SetDelay(time.Second) // > client timeout
	for _, tc := range chaosModes {
		t.Run(tc.name, func(t *testing.T) {
			p.SetMode(tc.mode)
			err := search()
			if err == nil {
				t.Fatalf("%s: search succeeded through an injected fault", tc.name)
			}
			if authtext.IsTampered(err) {
				t.Fatalf("%s: transport fault misclassified as tampering: %v", tc.name, err)
			}
			p.SetMode(fleet.Pass)
			if err := search(); err != nil {
				t.Fatalf("%s: client did not recover once the fault cleared: %v", tc.name, err)
			}
		})
	}
	if p.Faults() == 0 {
		t.Fatal("chaos proxy injected no faults")
	}
}

// End-to-end failover: two real replicas behind a real front end, one of
// them wrapped in chaos. Under every fault mode the client must keep
// getting VERIFIED answers via the healthy replica, with zero tampering
// classifications along the way.
func TestFrontendFailoverUnderChaos(t *testing.T) {
	_, handler := chaosOwner(t)
	clean := httptest.NewServer(handler)
	defer clean.Close()
	victim := httptest.NewServer(handler)
	defer victim.Close()
	p := fleet.NewChaosProxy(victim.URL)
	defer p.Close()

	fe, err := authtext.NewFrontend([]string{clean.URL, p.URL()},
		authtext.WithFrontendProbeInterval(20*time.Millisecond),
		authtext.WithFrontendRetry(3, 300*time.Millisecond),
		authtext.WithFrontendEjection(2, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	fes := httptest.NewServer(fe)
	defer fes.Close()

	rc, err := authtext.NewRemoteClient(fes.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := rc.Search(ctx, "merkle tree proof", 5, authtext.TRA, authtext.ChainMHT); err != nil {
		t.Fatalf("bootstrap through front end: %v", err)
	}

	p.SetDelay(time.Second) // > per-attempt timeout
	for _, tc := range chaosModes {
		p.SetMode(tc.mode)
		// The fault window may cost a request or two while probes catch up
		// (Truncate in particular fails after the status line was already
		// relayed, so the front end cannot retry it); what is forbidden is
		// a tamper classification or a failure to converge.
		deadline := time.Now().Add(10 * time.Second)
		streak := 0
		for streak < 8 {
			_, err := rc.Search(ctx, "merkle tree proof", 5, authtext.TNRA, authtext.ChainMHT)
			if err != nil {
				if authtext.IsTampered(err) {
					t.Fatalf("%s: fault through front end misclassified as tampering: %v", tc.name, err)
				}
				streak = 0
			} else {
				streak++
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: front end never converged to steady verified answers (last err: %v)", tc.name, err)
			}
		}
		p.SetMode(fleet.Pass)
	}
}

// The cross-check detector sees a chaos-dropped replica as unavailable —
// a crash is not evidence of equivocation.
func TestFleetCrossCheckThroughChaos(t *testing.T) {
	_, handler := chaosOwner(t)
	a := httptest.NewServer(handler)
	defer a.Close()
	b := httptest.NewServer(handler)
	defer b.Close()
	p := fleet.NewChaosProxy(b.URL)
	defer p.Close()

	fc, err := authtext.NewFleetClient(a.URL, []string{a.URL, p.URL()},
		authtext.WithFleetRemoteOptions(
			authtext.WithHTTPClient(&http.Client{Timeout: 500 * time.Millisecond})))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := fc.CrossCheck(ctx); err != nil {
		t.Fatalf("healthy cross-check: %v", err)
	}

	p.SetMode(fleet.Drop)
	rep, err := fc.CrossCheck(ctx)
	if err != nil {
		t.Fatalf("cross-check with one dropped replica must not fail: %v", err)
	}
	st := rep.Replicas[1]
	if st.Err == nil || !st.Unavailable {
		t.Fatalf("dropped replica status: err=%v unavailable=%v, want a transport error", st.Err, st.Unavailable)
	}
	if rep.Equivocation != nil {
		t.Fatalf("drop misclassified as equivocation: %v", rep.Equivocation)
	}
}
