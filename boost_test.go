package authtext

import "testing"

func TestWithAuthorityEndToEnd(t *testing.T) {
	docs := newsDocs()
	scores := make([]float64, len(docs))
	for i := range scores {
		scores[i] = float64(i) / float64(len(docs)-1)
	}
	o, err := NewOwner(docs, WithAuthority(scores, 2.0), WithFastSigner([]byte("boost")))
	if err != nil {
		t.Fatal(err)
	}
	server, client := o.Server(), o.Client()
	for _, q := range []string{"patent examiner", "search results", "integrity"} {
		for _, algo := range []Algorithm{TRA, TNRA} {
			for _, scheme := range []Scheme{MHT, ChainMHT} {
				res, err := server.Search(q, 3, algo, scheme)
				if err != nil {
					t.Fatalf("%v-%v: %v", algo, scheme, err)
				}
				if err := client.Verify(q, 3, res); err != nil {
					t.Fatalf("%v-%v %q: %v", algo, scheme, q, err)
				}
			}
		}
	}
}

func TestWithPageRankEndToEnd(t *testing.T) {
	docs := newsDocs()
	links := make([][]int, len(docs))
	for i := 1; i < len(docs); i++ {
		links[i] = []int{0, i / 2}
	}
	o, err := NewOwner(docs, WithPageRank(links, 1.5), WithFastSigner([]byte("pr")))
	if err != nil {
		t.Fatal(err)
	}
	server, client := o.Server(), o.Client()
	res, err := server.Search("patent examiner portal", 3, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Verify("patent examiner portal", 3, res); err != nil {
		t.Fatal(err)
	}
	// Tampered hit score must be rejected.
	if len(res.Hits) > 0 {
		res.Hits[0].Score += 0.1
		if err := client.Verify("patent examiner portal", 3, res); err == nil {
			t.Fatal("tampered boosted score accepted")
		}
	}
}

func TestBoostOptionValidation(t *testing.T) {
	docs := newsDocs()
	if _, err := NewOwner(docs, WithAuthority([]float64{1}, 1)); err == nil {
		t.Fatal("mismatched authority length accepted")
	}
	if _, err := NewOwner(docs,
		WithAuthority(make([]float64, len(docs)), 1),
		WithPageRank(make([][]int, len(docs)), 1)); err == nil {
		t.Fatal("conflicting boost options accepted")
	}
	if _, err := NewOwner(docs, WithPageRank(make([][]int, 3), 1)); err == nil {
		t.Fatal("mismatched link-list length accepted")
	}
}

// TestLiveAuthorityBoostEndToEnd lifts the old "static collections only"
// caveat: a live collection built with WithAuthority serves verifiable
// boosted answers for every algorithm/scheme pair, keeps doing so across
// updates (UpdateWithAuthority scores the newcomers), and still rejects
// tampered scores and misuse.
func TestLiveAuthorityBoostEndToEnd(t *testing.T) {
	docs := liveDocs(0, 20)
	scores := make([]float64, len(docs))
	for i := range scores {
		scores[i] = float64(i) / float64(len(docs)-1)
	}
	owner, handles, err := NewLiveOwner(docs, WithAuthority(scores, 2.0), WithFastSigner([]byte("live-boost")))
	if err != nil {
		t.Fatal(err)
	}
	srv, client := owner.Server(), owner.Client()
	for _, algo := range []Algorithm{TRA, TNRA} {
		for _, scheme := range []Scheme{MHT, ChainMHT} {
			liveSearchVerify(t, srv, client, algo, scheme)
		}
	}

	// Updates on a boosted collection: newcomers carry their own scores,
	// removals tombstone as usual, and the next generation still verifies.
	if _, _, err := owner.UpdateWithAuthority(liveDocs(20, 2), []float64{0.9, 0.1}, []DocHandle{handles[0]}); err != nil {
		t.Fatal(err)
	}
	if err := client.Advance(owner.ManifestUpdate()); err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{TRA, TNRA} {
		liveSearchVerify(t, srv, client, algo, ChainMHT)
	}

	// A plain Update (no scores) works too: newcomers default to zero
	// authority.
	if _, _, err := owner.Update(liveDocs(22, 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := client.Advance(owner.ManifestUpdate()); err != nil {
		t.Fatal(err)
	}
	res := liveSearchVerify(t, srv, client, TNRA, MHT)

	// A tampered boosted score must still be rejected.
	if len(res.Hits) > 0 {
		res.Hits[0].Score += 0.1
		if err := client.Verify(liveQuery, 3, res); err == nil {
			t.Fatal("tampered boosted live score accepted")
		}
	}

	// Authority scores on an unboosted collection are rejected.
	plain, _, err := NewLiveOwner(liveDocs(0, 8), WithFastSigner([]byte("plain")))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := plain.UpdateWithAuthority(liveDocs(8, 1), []float64{0.5}, nil); err == nil {
		t.Fatal("authority scores accepted on an unboosted live collection")
	}
}

// TestLiveShardedAuthorityBoost covers the sharded half of the same lift:
// boosted live sharded sets build, update, and verify.
func TestLiveShardedAuthorityBoost(t *testing.T) {
	docs := liveDocs(0, 24)
	scores := make([]float64, len(docs))
	for i := range scores {
		scores[i] = 1 - float64(i)/float64(len(docs))
	}
	owner, handles, err := NewLiveShardedOwner(docs, 3, WithAuthority(scores, 1.5), WithFastSigner([]byte("shard-boost")))
	if err != nil {
		t.Fatal(err)
	}
	check := func() {
		t.Helper()
		res, err := owner.Server().Search(liveQuery, 3, TNRA, ChainMHT)
		if err != nil {
			t.Fatal(err)
		}
		if err := owner.Client().Verify(liveQuery, 3, res); err != nil {
			t.Fatalf("boosted sharded live answer failed verification: %v", err)
		}
	}
	check()
	if _, _, err := owner.UpdateWithAuthority(liveDocs(24, 2), []float64{0.8, 0.2}, handles[:1]); err != nil {
		t.Fatal(err)
	}
	check()
}
