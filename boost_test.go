package authtext

import "testing"

func TestWithAuthorityEndToEnd(t *testing.T) {
	docs := newsDocs()
	scores := make([]float64, len(docs))
	for i := range scores {
		scores[i] = float64(i) / float64(len(docs)-1)
	}
	o, err := NewOwner(docs, WithAuthority(scores, 2.0), WithFastSigner([]byte("boost")))
	if err != nil {
		t.Fatal(err)
	}
	server, client := o.Server(), o.Client()
	for _, q := range []string{"patent examiner", "search results", "integrity"} {
		for _, algo := range []Algorithm{TRA, TNRA} {
			for _, scheme := range []Scheme{MHT, ChainMHT} {
				res, err := server.Search(q, 3, algo, scheme)
				if err != nil {
					t.Fatalf("%v-%v: %v", algo, scheme, err)
				}
				if err := client.Verify(q, 3, res); err != nil {
					t.Fatalf("%v-%v %q: %v", algo, scheme, q, err)
				}
			}
		}
	}
}

func TestWithPageRankEndToEnd(t *testing.T) {
	docs := newsDocs()
	links := make([][]int, len(docs))
	for i := 1; i < len(docs); i++ {
		links[i] = []int{0, i / 2}
	}
	o, err := NewOwner(docs, WithPageRank(links, 1.5), WithFastSigner([]byte("pr")))
	if err != nil {
		t.Fatal(err)
	}
	server, client := o.Server(), o.Client()
	res, err := server.Search("patent examiner portal", 3, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Verify("patent examiner portal", 3, res); err != nil {
		t.Fatal(err)
	}
	// Tampered hit score must be rejected.
	if len(res.Hits) > 0 {
		res.Hits[0].Score += 0.1
		if err := client.Verify("patent examiner portal", 3, res); err == nil {
			t.Fatal("tampered boosted score accepted")
		}
	}
}

func TestBoostOptionValidation(t *testing.T) {
	docs := newsDocs()
	if _, err := NewOwner(docs, WithAuthority([]float64{1}, 1)); err == nil {
		t.Fatal("mismatched authority length accepted")
	}
	if _, err := NewOwner(docs,
		WithAuthority(make([]float64, len(docs)), 1),
		WithPageRank(make([][]int, len(docs)), 1)); err == nil {
		t.Fatal("conflicting boost options accepted")
	}
	if _, err := NewOwner(docs, WithPageRank(make([][]int, 3), 1)); err == nil {
		t.Fatal("mismatched link-list length accepted")
	}
}
