package authtext

import (
	"strconv"
	"strings"

	"authtext/internal/httpapi"
	"authtext/internal/vocache"
)

// Server-side VO cache. A published generation is immutable, so the answer
// to (normalized query terms, r, algorithm, scheme, generation) is a pure
// function — the server may replay it from memory without weakening the
// protocol one bit, because clients verify the bytes, not the server's
// diligence: a corrupted cache entry fails verification and a stale one
// classifies as ErrStaleGeneration, exactly like any other tampering
// (docs/ARCHITECTURE.md "The hot-query VO cache"). The generation is part
// of every key, so a document update invalidates the whole cache by
// construction: new queries build keys the old entries can never match,
// with no eviction logic on the hot path. Production traffic is heavily
// head-skewed (internal/workload.Zipfian models it), which is what makes
// a bounded cache absorb most of the serve load.

// VOCache is a sharded, byte-bounded LRU of complete answers (hits,
// encoded VO, stats) shared by any number of servers. One cache may back
// a Server, a ShardedServer and their live variants at once; entries are
// kind-tagged so single and sharded answers never collide. Safe for
// concurrent use. Attach it with the SetVOCache methods (library use) or
// WithVOCache / WithShardedVOCache (HTTP handlers), before serving
// starts.
type VOCache struct {
	c *vocache.Cache
}

// NewVOCache returns a cache bounded by maxBytes of encoded answer bytes
// (VO + delivered contents + bookkeeping overhead). Very small bounds are
// rounded up so every internal shard holds at least a few typical
// entries.
func NewVOCache(maxBytes int64) *VOCache {
	return &VOCache{c: vocache.New(maxBytes)}
}

// VOCacheStats is a point-in-time snapshot of a cache's counters.
type VOCacheStats struct {
	// Entries and Bytes describe the current population; CapacityBytes is
	// the configured bound.
	Entries, Bytes, CapacityBytes int64
	// Hits and Misses count lookups; Evictions counts LRU drops,
	// Invalidations entries reclaimed after a generation bump.
	Hits, Misses, Evictions, Invalidations int64
}

// HitRate returns Hits/(Hits+Misses), 0 before any lookup.
func (s VOCacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats snapshots the cache counters.
func (c *VOCache) Stats() VOCacheStats {
	st := c.c.Stats()
	return VOCacheStats{
		Entries: st.Entries, Bytes: st.Bytes, CapacityBytes: st.CapacityBytes,
		Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions, Invalidations: st.Invalidations,
	}
}

// health converts the stats to the healthz wire form.
func (c *VOCache) health() *httpapi.CacheHealth {
	st := c.Stats()
	return &httpapi.CacheHealth{
		Entries: st.Entries, Bytes: st.Bytes, CapacityBytes: st.CapacityBytes,
		Hits: st.Hits, Misses: st.Misses, HitRate: st.HitRate(),
		Evictions: st.Evictions, Invalidations: st.Invalidations,
	}
}

// dropBelow reclaims entries of generations below gen. Correctness never
// depends on it (dead generations are unreachable by key); the update
// path calls it so superseded answers return their memory immediately
// instead of aging out of the LRU.
func (c *VOCache) dropBelow(gen uint64) {
	c.c.DropBelow(gen)
}

// Key kinds: single-collection answers and sharded fan-out answers live
// in the same cache without colliding.
const (
	cacheKindSingle  = 'q'
	cacheKindSharded = 'k'
)

// cacheKey builds the lookup key: kind, generation, r, algorithm, scheme,
// then the normalized query terms in engine order. The terms come out of
// textproc.Terms, so two spellings of the same query (case, stopwords,
// whitespace) share an entry, while term ORDER is preserved — the VO
// encodes per-term structure, so differently ordered queries keep their
// own answers.
func cacheKey(kind byte, tokens []string, r int, algo Algorithm, scheme Scheme, gen uint64) string {
	var b strings.Builder
	n := 16
	for _, t := range tokens {
		n += len(t) + 1
	}
	b.Grow(n)
	b.WriteByte(kind)
	b.WriteByte('|')
	b.WriteString(strconv.FormatUint(gen, 10))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(r))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(int(algo)))
	b.WriteString(strconv.Itoa(int(scheme)))
	for _, t := range tokens {
		b.WriteByte('|')
		b.WriteString(t)
	}
	return b.String()
}

// Per-entry accounting overheads: the bound is expressed in encoded answer
// bytes, so fixed structure costs are charged as conservative constants.
const (
	cacheEntryOverhead = 256
	cacheHitOverhead   = 64
)

func resultCost(key string, res *SearchResult) int64 {
	n := int64(len(key)) + cacheEntryOverhead + int64(len(res.VO))
	for _, h := range res.Hits {
		n += int64(len(h.Content)) + cacheHitOverhead
	}
	return n
}

func shardedCost(key string, res *ShardedResult) int64 {
	n := int64(len(key)) + cacheEntryOverhead
	for _, sr := range res.PerShard {
		n += resultCost("", sr)
	}
	// Merged entries share their Content with the per-shard answers.
	n += int64(len(res.Merged)) * cacheHitOverhead
	return n
}

// putResult caches a private shallow copy of res: the caller owns what
// Search returned, and later hits get their own top-level copies, so no
// caller can reorder or rescore another caller's answer through the
// cache. The VO and document contents stay shared — they are immutable by
// contract, and any process that does scribble on them is caught by
// client verification, not trusted silently.
func (c *VOCache) putResult(key string, gen uint64, res *SearchResult) {
	cp := *res
	cp.Hits = append([]Hit(nil), res.Hits...)
	c.c.Put(key, gen, resultCost(key, res), &cp)
}

func (c *VOCache) getResult(key string) (*SearchResult, bool) {
	v, ok := c.c.Get(key)
	if !ok {
		return nil, false
	}
	res, ok := v.(*SearchResult)
	if !ok {
		return nil, false
	}
	cp := *res
	cp.Hits = append([]Hit(nil), res.Hits...)
	return &cp, true
}

// putSharded / getSharded are the fan-out analogues; per-shard results are
// shared as pointers (immutable by the same contract).
func (c *VOCache) putSharded(key string, gen uint64, res *ShardedResult) {
	cp := *res
	cp.PerShard = append([]*SearchResult(nil), res.PerShard...)
	cp.Merged = append([]ShardedHit(nil), res.Merged...)
	c.c.Put(key, gen, shardedCost(key, res), &cp)
}

func (c *VOCache) getSharded(key string) (*ShardedResult, bool) {
	v, ok := c.c.Get(key)
	if !ok {
		return nil, false
	}
	res, ok := v.(*ShardedResult)
	if !ok {
		return nil, false
	}
	cp := *res
	cp.PerShard = append([]*SearchResult(nil), res.PerShard...)
	cp.Merged = append([]ShardedHit(nil), res.Merged...)
	return &cp, true
}
