package authtext

import (
	"net/http"

	"authtext/internal/index"
	"authtext/internal/live"
)

// Live collections accept document updates after publication: every batch
// of additions and removals becomes a new, fully authenticated publication
// state — a *generation* — built as a fresh immutable collection and
// atomically swapped into the serving path, exactly the mutation pattern
// docs/CONCURRENCY.md legislates. The generation number is signed inside
// the manifest and stamped into every VO, so clients can tell which state
// an answer speaks for and refuse to be rolled back to an older one.
// docs/UPDATES.md describes the model, its trust rules and its costs.

// DocHandle identifies a document inside a live collection for later
// removal. Handles are assigned on addition, are never reused, and stay
// valid across generations until the document is removed.
type DocHandle uint64

// UpdateReport summarises one accepted update batch.
type UpdateReport struct {
	// Generation is the newly published generation.
	Generation uint64
	// Documents is the number of live documents after the update;
	// tombstoned slots don't count.
	Documents int
	// Added and Removed count the batch's changes.
	Added, Removed int
	// TombstonedSlots is the number of removed-but-still-indexed slots the
	// new generation carries; Compacted reports that this rebuild dropped
	// the accumulated dead slots (a full re-sign). See docs/UPDATES.md.
	TombstonedSlots int
	Compacted       bool
	// SignaturesSigned counts fresh signatures the rebuild required;
	// SignaturesReused the ones carried over from the previous generation
	// (identical signed messages — unchanged term lists and document
	// records).
	SignaturesSigned, SignaturesReused int
	// ShardsReused counts whole shards carried over without a rebuild
	// (sharded deployments only).
	ShardsReused int
	// RebuildMillis is the wall time from accepting the batch to swapping
	// the served pointer.
	RebuildMillis float64
}

func updateReport(st *live.UpdateStats) *UpdateReport {
	return &UpdateReport{
		Generation:       st.Generation,
		Documents:        st.Documents,
		Added:            st.Added,
		Removed:          st.Removed,
		TombstonedSlots:  st.TombstonedSlots,
		Compacted:        st.Compacted,
		SignaturesSigned: st.Signed,
		SignaturesReused: st.Reused,
		ShardsReused:     st.ShardsReused,
		RebuildMillis:    float64(st.Rebuild.Microseconds()) / 1000,
	}
}

// LiveOwner owns a live collection: it holds the signing key, accepts
// update batches, and publishes a new signed generation for each.
// All construction Options of NewOwner apply, including the authority
// boost (WithAuthority / WithPageRank); use UpdateWithAuthority to score
// documents added later. Safe for concurrent use: updates serialise
// against each other, never against searches.
type LiveOwner struct {
	lc *live.Collection
	// metrics, when non-nil, receives generation telemetry for every
	// accepted update (metrics.go). Set before updates start.
	metrics *Metrics
}

// SetMetrics attaches a metric registry recording generation swaps,
// rebuild latency and signature reuse for every accepted update (nil
// detaches). The current generation is published immediately.
func (o *LiveOwner) SetMetrics(m *Metrics) {
	o.metrics = m
	m.setGeneration(o.lc.Generation())
}

// NewLiveOwner indexes the documents and publishes generation 1. The
// returned handles identify the initial documents, in input order.
func NewLiveOwner(docs []Document, opts ...Option) (*LiveOwner, []DocHandle, error) {
	cfg, idocs, _, err := prepareBuild(docs, opts)
	if err != nil {
		return nil, nil, err
	}
	lc, handles, err := live.New(idocs, cfg)
	if err != nil {
		return nil, nil, err
	}
	return &LiveOwner{lc: lc}, docHandles(handles), nil
}

func docHandles(hs []uint64) []DocHandle {
	out := make([]DocHandle, len(hs))
	for i, h := range hs {
		out[i] = DocHandle(h)
	}
	return out
}

func rawHandles(hs []DocHandle) []uint64 {
	out := make([]uint64, len(hs))
	for i, h := range hs {
		out[i] = uint64(h)
	}
	return out
}

// AddDocuments publishes a new generation containing the given documents
// in addition to the current corpus.
func (o *LiveOwner) AddDocuments(docs []Document) ([]DocHandle, *UpdateReport, error) {
	return o.Update(docs, nil)
}

// RemoveDocuments publishes a new generation without the given documents.
func (o *LiveOwner) RemoveDocuments(handles ...DocHandle) (*UpdateReport, error) {
	_, rep, err := o.Update(nil, handles)
	return rep, err
}

// Update applies additions and removals as one atomic generation change.
// On error nothing is published and the serving state is unchanged.
func (o *LiveOwner) Update(add []Document, remove []DocHandle) ([]DocHandle, *UpdateReport, error) {
	return o.UpdateWithAuthority(add, nil, remove)
}

// UpdateWithAuthority is Update with per-document authority scores for
// the additions (collections built with WithAuthority or WithPageRank
// only; len(auth) == len(add), scores in [0,1]). A nil auth on a boosted
// collection scores every added document 0.
func (o *LiveOwner) UpdateWithAuthority(add []Document, auth []float64, remove []DocHandle) ([]DocHandle, *UpdateReport, error) {
	idocs := make([]index.Document, len(add))
	for i, d := range add {
		idocs[i] = index.Document{Content: d.Content, Tokens: d.Tokens}
	}
	handles, st, err := o.lc.UpdateWithAuthority(idocs, auth, rawHandles(remove))
	if err != nil {
		return nil, nil, err
	}
	rep := updateReport(st)
	o.metrics.recordUpdate(rep)
	return docHandles(handles), rep, nil
}

// Generation returns the latest published generation (≥ 1).
func (o *LiveOwner) Generation() uint64 { return o.lc.Generation() }

// Handles returns the handles of the current corpus, in document order.
func (o *LiveOwner) Handles() []DocHandle { return docHandles(o.lc.Handles()) }

// LastUpdate reports the cost of the most recent generation change
// (the initial build for a freshly constructed owner).
func (o *LiveOwner) LastUpdate() *UpdateReport {
	st := o.lc.LastStats()
	return updateReport(&st)
}

// Server returns the live serving half. One LiveServer tracks every
// future generation; Snapshot pins the current one.
func (o *LiveOwner) Server() *LiveServer { return &LiveServer{lc: o.lc} }

// Client returns a verification client pinned to the owner's public key,
// positioned at the current generation. Advance it with ManifestUpdate
// payloads (or let a RemoteClient advance itself from /v1/manifest).
func (o *LiveOwner) Client() *Client {
	col := o.lc.Current()
	m, msig := col.Manifest()
	return &Client{manifest: m, manifestSig: msig, verifier: col.Verifier()}
}

// ManifestUpdate returns the current generation's canonical manifest
// encoding and signature — the payload Client.Advance consumes. Publish
// it over any channel; its trust comes from the signature, not the
// transport.
func (o *LiveOwner) ManifestUpdate() (manifest, sig []byte) {
	m, msig := o.lc.Current().Manifest()
	return m.Encode(), msig
}

// ExportClient serialises the current generation's verification material
// as an ATCX blob (RSA-signed collections only, like Owner.ExportClient).
func (o *LiveOwner) ExportClient() ([]byte, error) { return o.Client().Export() }

// HTTPHandler exposes the live collection over the versioned HTTP
// protocol with the admin update endpoint enabled: searches serve the
// latest generation, /v1/admin/update applies batches through this owner,
// and /v1/manifest always publishes the current generation's export.
func (o *LiveOwner) HTTPHandler(opts ...HandlerOption) (http.Handler, error) {
	return newLiveHTTPHandler(o.Server(), o, opts...)
}

// LiveServer serves queries from the latest published generation of a
// live collection. Safe for concurrent use; a search in flight during a
// generation swap completes entirely against the generation it started
// on (its VO names that generation), never a mix.
type LiveServer struct {
	lc      *live.Collection
	cache   *VOCache
	metrics *Metrics
}

// SetVOCache attaches a VO cache carried into every Snapshot (nil
// detaches). Generation-stamped keys make it safe across updates: a swap
// invalidates every cached answer by construction, and an entry of the
// old generation that is somehow replayed still verifies (or classifies
// ErrStaleGeneration) client-side. Call before serving starts.
func (s *LiveServer) SetVOCache(c *VOCache) { s.cache = c }

// SetMetrics attaches a metric registry carried into every Snapshot (nil
// detaches). Call before serving starts.
func (s *LiveServer) SetMetrics(m *Metrics) {
	s.metrics = m
	m.setGeneration(s.lc.Generation())
}

// Snapshot pins the current generation and returns an ordinary Server
// for it: batches or multi-query sessions that must see one consistent
// state use the pinned server for all their queries.
func (s *LiveServer) Snapshot() *Server {
	return (&Server{col: s.lc.Current()}).withCache(s.cache).withMetrics(s.metrics)
}

// Generation returns the latest published generation.
func (s *LiveServer) Generation() uint64 { return s.lc.Generation() }

// Search runs a top-r query against the latest generation (see
// Server.Search).
func (s *LiveServer) Search(query string, r int, algo Algorithm, scheme Scheme) (*SearchResult, error) {
	return s.Snapshot().Search(query, r, algo, scheme)
}

// SearchBatch executes the batch against ONE generation: the whole batch
// is answered by the generation current when it started (see
// Server.SearchBatch for the execution model).
func (s *LiveServer) SearchBatch(queries []BatchQuery, workers int) []BatchItem {
	return s.Snapshot().SearchBatch(queries, workers)
}
