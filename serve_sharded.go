package authtext

import (
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"authtext/internal/httpapi"
)

// This file adapts a ShardedServer to the /v1 HTTP protocol: the sharded
// endpoints (/v1/shards/search, /v1/shards/manifest) answer fanned-out
// queries and serve the ATSX bootstrap blob, while /v1/healthz reports the
// shard count so clients can discover the deployment shape. The plain
// /v1/search endpoint is not served — a sharded answer needs the sharded
// wire format — and answers 404 with a pointer to the sharded path.

// shardedHandlerOptions collects the optional callbacks of a sharded
// handler.
type shardedHandlerOptions struct {
	queryLog  func(query string, r int, stats ShardedStats, wall time.Duration)
	updateLog func(*UpdateReport)
	cache     *VOCache
	metrics   *Metrics
	reqLog    *slog.Logger
}

// httpapiOpts translates the observability options to the HTTP layer's.
func (o *shardedHandlerOptions) httpapiOpts() []httpapi.HandlerOpt {
	var out []httpapi.HandlerOpt
	if o.metrics != nil {
		out = append(out, httpapi.WithMetricsRegistry(o.metrics.registry()))
	}
	if o.reqLog != nil {
		out = append(out, httpapi.WithRequestLog(o.reqLog))
	}
	return out
}

// ShardedHandlerOption customises NewShardedHTTPHandler and the live
// sharded handler.
type ShardedHandlerOption func(*shardedHandlerOptions)

// WithShardedQueryLog installs a per-query callback; stats aggregate the
// whole fan-out. Requests are served concurrently, so the callback MUST be
// safe for concurrent use.
func WithShardedQueryLog(fn func(query string, r int, stats ShardedStats, wall time.Duration)) ShardedHandlerOption {
	return func(o *shardedHandlerOptions) { o.queryLog = fn }
}

// WithShardedUpdateLog is WithUpdateLog for sharded live handlers.
func WithShardedUpdateLog(fn func(*UpdateReport)) ShardedHandlerOption {
	return func(o *shardedHandlerOptions) { o.updateLog = fn }
}

// WithShardedVOCache is WithVOCache for sharded handlers: a hit serves
// the complete fan-out answer (every shard's VO plus the merge) without
// touching any shard.
func WithShardedVOCache(c *VOCache) ShardedHandlerOption {
	return func(o *shardedHandlerOptions) { o.cache = c }
}

// WithShardedMetrics is WithMetrics for sharded handlers.
func WithShardedMetrics(m *Metrics) ShardedHandlerOption {
	return func(o *shardedHandlerOptions) { o.metrics = m }
}

// WithShardedRequestLog is WithRequestLog for sharded handlers.
func WithShardedRequestLog(logger *slog.Logger) ShardedHandlerOption {
	return func(o *shardedHandlerOptions) { o.reqLog = logger }
}

// NewShardedHTTPHandler exposes a ShardedServer over the versioned HTTP
// protocol. export is the ATSX blob from ShardedOwner.ExportClient, served
// at /v1/shards/manifest; pass nil to require out-of-band bootstrap.
func NewShardedHTTPHandler(srv *ShardedServer, export []byte, opts ...ShardedHandlerOption) http.Handler {
	b := &shardedHTTPBackend{srv: srv, export: export, start: time.Now()}
	for _, opt := range opts {
		opt(&b.opts)
	}
	b.srv = b.srv.withCache(b.opts.cache).withMetrics(b.opts.metrics)
	b.cache = b.srv.cache
	if b.opts.metrics != nil {
		sm, _ := b.srv.set.Manifest()
		b.opts.metrics.setGeneration(sm.Generation)
	}
	b.srv.metrics.BindVOCache(b.cache)
	return httpapi.NewHandler(b, b.opts.httpapiOpts()...)
}

// HTTPHandler is the owner-side convenience: export the verification
// material and wrap the serving half in one call.
func (o *ShardedOwner) HTTPHandler(opts ...ShardedHandlerOption) (http.Handler, error) {
	export, err := o.ExportClient()
	if err != nil {
		return nil, err
	}
	return NewShardedHTTPHandler(o.Server(), export, opts...), nil
}

// shardedHTTPBackend implements httpapi.ShardBackend on a ShardedServer.
type shardedHTTPBackend struct {
	srv    *ShardedServer
	export []byte
	start  time.Time
	opts   shardedHandlerOptions
	cache  *VOCache
	served atomic.Int64
	failed atomic.Int64
}

// Search implements the non-sharded endpoint: not available here.
func (b *shardedHTTPBackend) Search(req *httpapi.SearchRequest) (*httpapi.SearchResponse, error) {
	return nil, &httpapi.StatusError{
		Status:  http.StatusNotFound,
		Code:    httpapi.CodeNotFound,
		Message: "this server is sharded; query " + httpapi.PathShardSearch,
	}
}

// ClientExport implements the non-sharded bootstrap: not available here.
func (b *shardedHTTPBackend) ClientExport() ([]byte, error) {
	return nil, &httpapi.StatusError{
		Status:  http.StatusNotFound,
		Code:    httpapi.CodeNotFound,
		Message: "this server is sharded; fetch " + httpapi.PathShardManifest,
	}
}

func (b *shardedHTTPBackend) ShardSearch(req *httpapi.SearchRequest) (*httpapi.ShardedSearchResponse, error) {
	algo, scheme := parseWireAlgo(req.Algo), parseWireScheme(req.Scheme)
	start := time.Now()
	res, err := b.srv.Search(req.Query, req.R, algo, scheme)
	if err != nil {
		b.failed.Add(1)
		return nil, err
	}
	wall := time.Since(start)
	b.served.Add(1)
	if b.opts.queryLog != nil {
		b.opts.queryLog(req.Query, req.R, res.Stats, wall)
	}
	// The wire response is a pure function of (req, res) — ServerMillis is
	// the engine-measured fan-out wall stored in the result — so a cache
	// hit serializes byte-identically to the miss that populated it.
	out := &httpapi.ShardedSearchResponse{
		Query:      req.Query,
		R:          req.R,
		Algo:       req.Algo,
		Scheme:     req.Scheme,
		Generation: res.Generation,
		Shards:     make([]httpapi.SearchResponse, len(res.PerShard)),
		Merged:     make([]httpapi.MergedHit, len(res.Merged)),
		Stats: httpapi.ShardedSearchStats{
			Shards:       res.Stats.Shards,
			EntriesRead:  res.Stats.EntriesRead,
			VOBytes:      res.Stats.VOBytes,
			IOMillis:     float64(res.Stats.IOTime),
			ServerMillis: float64(res.Stats.Wall.Microseconds()) / 1000,
		},
	}
	for i, sr := range res.PerShard {
		w := httpapi.SearchResponse{
			Query:      req.Query,
			R:          req.R,
			Algo:       req.Algo,
			Scheme:     req.Scheme,
			Generation: sr.Generation,
			Hits:       make([]httpapi.Hit, len(sr.Hits)),
			VO:         sr.VO,
			Stats:      wireStats(sr.Stats),
		}
		for j, h := range sr.Hits {
			w.Hits[j] = httpapi.Hit{DocID: h.DocID, Score: h.Score, Content: h.Content}
		}
		out.Shards[i] = w
	}
	for i, m := range res.Merged {
		out.Merged[i] = httpapi.MergedHit{Shard: m.Shard, DocID: m.DocID, GlobalID: m.GlobalID, Score: m.Score}
	}
	return out, nil
}

func (b *shardedHTTPBackend) ShardExport() ([]byte, error) {
	if b.export == nil {
		return nil, &httpapi.StatusError{
			Status:  http.StatusServiceUnavailable,
			Code:    httpapi.CodeUnavailable,
			Message: "this server does not publish verification material",
		}
	}
	return b.export, nil
}

func (b *shardedHTTPBackend) Health() httpapi.Health {
	h := shardedHealth(b.srv, b.start, b.served.Load(), b.failed.Load())
	if b.cache != nil {
		h.Cache = b.cache.health()
	}
	return h
}

// shardedHealth builds the healthz payload for a (possibly live) sharded
// server.
func shardedHealth(srv *ShardedServer, start time.Time, served, failed int64) httpapi.Health {
	docs, terms := 0, 0
	for i := 0; i < srv.Shards(); i++ {
		col := srv.set.Col(i)
		docs += col.LiveDocs() // live documents, not slots
		terms += col.Index().M()
	}
	sm, _ := srv.set.Manifest()
	return httpapi.Health{
		Status:        "ok",
		Documents:     docs,
		Terms:         terms,
		Shards:        srv.Shards(),
		Generation:    sm.Generation,
		UptimeMillis:  time.Since(start).Milliseconds(),
		QueriesServed: served,
		QueriesFailed: failed,
	}
}
