package authtext_test

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"authtext"
	"authtext/internal/httpapi"
	"authtext/internal/wire"
)

// The binary-path counterpart of remote_test.go's tamper suite: a
// RemoteClient negotiates framed responses by default, and the frames
// travel over the same untrusted transport as JSON — so in-transit
// mutation of a frame, at any layer (header, CRC, payload), must come
// back from Search as a tampering classification, never as a verified
// result and never as an unclassified transport error.

// frameProxy wraps an honest handler and rewrites every framed
// /v1/search response body with mutate(frame). Non-frame and non-search
// responses pass through untouched.
func frameProxy(honest http.Handler, frames *atomic.Int64, mutate func([]byte) []byte) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != httpapi.PathSearch {
			honest.ServeHTTP(w, r)
			return
		}
		rec := httptest.NewRecorder()
		honest.ServeHTTP(rec, r)
		ct := rec.Header().Get("Content-Type")
		if rec.Code != http.StatusOK || !strings.HasPrefix(ct, wire.ContentType) {
			for k, v := range rec.Header() {
				w.Header()[k] = v
			}
			w.WriteHeader(rec.Code)
			_, _ = w.Write(rec.Body.Bytes())
			return
		}
		frames.Add(1)
		w.Header().Set("Content-Type", wire.ContentType)
		_, _ = w.Write(mutate(rec.Body.Bytes()))
	})
}

// TestRemoteBinaryFrameTamperBattery flips one bit at a battery of
// offsets spanning every frame region — magic, version, type, flags,
// CRC, length and payload — and demands the client classify each as
// tampering for both TRA and TNRA. (The exhaustive every-bit battery
// runs in-memory in internal/wire; this one proves the classification
// survives the full client stack.)
func TestRemoteBinaryFrameTamperBattery(t *testing.T) {
	handler, _ := remoteEnv(t)
	offsets := []struct {
		name string
		pick func(n int) int
	}{
		{"magic", func(int) int { return 1 }},
		{"version", func(int) int { return 4 }},
		{"type", func(int) int { return 5 }},
		{"flags", func(int) int { return 7 }},
		{"crc", func(int) int { return 9 }},
		{"length", func(int) int { return 14 }},
		{"payload start", func(int) int { return wire.HeaderSize }},
		{"payload middle", func(n int) int { return wire.HeaderSize + (n-wire.HeaderSize)/2 }},
		{"payload end", func(n int) int { return n - 1 }},
	}
	for _, algo := range []authtext.Algorithm{authtext.TRA, authtext.TNRA} {
		for _, off := range offsets {
			t.Run(algo.String()+"/"+off.name, func(t *testing.T) {
				var frames atomic.Int64
				srv := httptest.NewServer(frameProxy(handler, &frames, func(frame []byte) []byte {
					out := append([]byte(nil), frame...)
					out[off.pick(len(out))] ^= 0x10
					return out
				}))
				defer srv.Close()
				rc, err := authtext.NewRemoteClient(srv.URL)
				if err != nil {
					t.Fatal(err)
				}
				res, err := rc.Search(context.Background(), remoteQuery, remoteR, algo, authtext.ChainMHT)
				if err == nil {
					t.Fatalf("bit-flipped frame (%s) verified", off.name)
				}
				if !authtext.IsTampered(err) {
					t.Fatalf("rejection not classified as tampering: %v", err)
				}
				if res != nil {
					t.Fatal("tampered result was returned alongside the error")
				}
				if frames.Load() == 0 {
					t.Fatal("proxy saw no framed response — binary negotiation did not happen")
				}
			})
		}
	}
}

// TestRemoteBinarySemanticTamperDetected re-frames a semantically
// mutated response with a fresh, valid CRC — the transport checksum is
// not the defense here, client-side verification is. Both TRA and TNRA
// must reject the forged ranking and the forged VO.
func TestRemoteBinarySemanticTamperDetected(t *testing.T) {
	handler, _ := remoteEnv(t)
	mutations := []struct {
		name   string
		mutate func(*wire.SearchResponse)
	}{
		{"inflate top score", func(r *wire.SearchResponse) { r.Hits[0].Score *= 2 }},
		{"drop result document", func(r *wire.SearchResponse) { r.Hits = r.Hits[:len(r.Hits)-1] }},
		{"alter document content", func(r *wire.SearchResponse) {
			r.Hits[0].Content = append([]byte("FORGED "), r.Hits[0].Content...)
		}},
		{"flip VO byte", func(r *wire.SearchResponse) {
			r.VO = append([]byte(nil), r.VO...)
			r.VO[len(r.VO)/2] ^= 0x40
		}},
	}
	for _, algo := range []authtext.Algorithm{authtext.TRA, authtext.TNRA} {
		for _, m := range mutations {
			t.Run(algo.String()+"/"+m.name, func(t *testing.T) {
				var frames atomic.Int64
				srv := httptest.NewServer(frameProxy(handler, &frames, func(frame []byte) []byte {
					resp, err := wire.DecodeSearchResponse(frame)
					if err != nil {
						t.Errorf("honest frame failed to decode in proxy: %v", err)
						return frame
					}
					m.mutate(resp)
					return wire.EncodeSearchResponse(resp)
				}))
				defer srv.Close()
				rc, err := authtext.NewRemoteClient(srv.URL)
				if err != nil {
					t.Fatal(err)
				}
				res, err := rc.Search(context.Background(), remoteQuery, remoteR, algo, authtext.ChainMHT)
				if err == nil {
					t.Fatalf("semantically tampered frame (%s) verified", m.name)
				}
				if !authtext.IsTampered(err) {
					t.Fatalf("rejection not classified as tampering: %v", err)
				}
				if res != nil {
					t.Fatal("tampered result was returned alongside the error")
				}
				if frames.Load() == 0 {
					t.Fatal("proxy saw no framed response — binary negotiation did not happen")
				}
			})
		}
	}
}

// TestRemoteBinaryMatchesJSON pins the negotiation boundary from the
// client side: the same server serves one query to a binary-preferring
// client and one forced-JSON client, and the verified results must be
// identical — same hits, same VO bytes, same stats. Binary is a
// transport optimization, never a semantic fork.
func TestRemoteBinaryMatchesJSON(t *testing.T) {
	handler, _ := remoteEnv(t)
	srv := httptest.NewServer(handler)
	defer srv.Close()

	binaryClient, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	// A 406-latching server forces the second client onto plain JSON.
	latching := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.Header.Get("Accept"), wire.ContentType) {
			w.WriteHeader(http.StatusNotAcceptable)
			return
		}
		handler.ServeHTTP(w, r)
	}))
	defer latching.Close()
	jsonClient, err := authtext.NewRemoteClient(latching.URL)
	if err != nil {
		t.Fatal(err)
	}

	for _, algo := range []authtext.Algorithm{authtext.TRA, authtext.TNRA} {
		br, err := binaryClient.Search(context.Background(), remoteQuery, remoteR, algo, authtext.ChainMHT)
		if err != nil {
			t.Fatalf("binary search failed: %v", err)
		}
		jr, err := jsonClient.Search(context.Background(), remoteQuery, remoteR, algo, authtext.ChainMHT)
		if err != nil {
			t.Fatalf("json search failed: %v", err)
		}
		if len(br.Hits) != len(jr.Hits) {
			t.Fatalf("hit counts differ: binary %d, json %d", len(br.Hits), len(jr.Hits))
		}
		for i := range br.Hits {
			if br.Hits[i].DocID != jr.Hits[i].DocID || br.Hits[i].Score != jr.Hits[i].Score ||
				!bytes.Equal(br.Hits[i].Content, jr.Hits[i].Content) {
				t.Fatalf("hit %d differs between binary and json paths", i)
			}
		}
		if !bytes.Equal(br.VO, jr.VO) {
			t.Fatal("VO bytes differ between binary and json paths")
		}
	}
}

// TestRemoteJSONFallbackOn406 proves the latch: after one 406 the
// client stops offering binary entirely, so a strict JSON-only server
// costs one extra round trip, not one per request.
func TestRemoteJSONFallbackOn406(t *testing.T) {
	handler, _ := remoteEnv(t)
	var rejected, plain atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.Header.Get("Accept"), wire.ContentType) {
			rejected.Add(1)
			w.WriteHeader(http.StatusNotAcceptable)
			_, _ = io.WriteString(w, "binary frames not spoken here")
			return
		}
		if r.URL.Path == httpapi.PathSearch {
			plain.Add(1)
		}
		handler.ServeHTTP(w, r)
	}))
	defer srv.Close()
	rc, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := rc.Search(context.Background(), remoteQuery, remoteR, authtext.TNRA, authtext.ChainMHT); err != nil {
			t.Fatalf("search %d failed after 406 fallback: %v", i, err)
		}
	}
	if got := rejected.Load(); got != 1 {
		t.Fatalf("server rejected %d binary offers, want exactly 1 (the latch)", got)
	}
	if got := plain.Load(); got != 3 {
		t.Fatalf("server served %d plain searches, want 3", got)
	}
}
