// Package authtext is a Go implementation of "Authenticating the Query
// Results of Text Search Engines" (Pang & Mouratidis, PVLDB 1(1), 2008): a
// similarity-based text search engine over a frequency-ordered inverted
// index whose every answer carries a cryptographic proof of correctness.
//
// Three parties participate (§3.1):
//
//   - the data Owner indexes a document collection, builds Merkle-tree
//     authentication structures over the inverted lists and documents, and
//     signs their roots;
//   - the (untrusted) Server answers top-r similarity queries with adapted
//     threshold algorithms — TRA (threshold with random access) or TNRA
//     (threshold with no random access) — and returns a verification
//     object (VO) alongside each result;
//   - the Client recomputes the Merkle roots from the VO and checks the
//     result against the owner's signatures: the entries must be the true
//     top-r, in the right order, with the right scores, and no unseen
//     document may be able to outscore them.
//
// Quickstart (all three parties in one process):
//
//	owner, err := authtext.NewOwner(docs)             // build + sign
//	server := owner.Server()                          // hand to the host
//	client := owner.Client()                          // publish to users
//	res, err := server.Search("merkle trees", 10, authtext.TNRA, authtext.ChainMHT)
//	err = client.Verify("merkle trees", 10, res)      // nil ⇔ authentic
//
// Two authentication schemes are available per algorithm: plain per-list
// Merkle trees (MHT, §3.3.1) and chained per-block Merkle trees with buddy
// inclusion (ChainMHT, §3.3.2). TNRA+ChainMHT is the configuration the
// paper recommends (§4.5).
//
// # Serving over the network
//
// The protocol only becomes meaningful when the server really is a
// different machine. NewHTTPHandler (and the cmd/authserved daemon built
// on it) exposes a Server on a versioned JSON API, and RemoteClient is
// its verifying counterpart: it bootstraps from the owner's signed
// manifest — fetched from /v1/manifest or supplied out of band with
// WithClientExport — and locally verifies every answer it receives, so a
// compromised server or man-in-the-middle is detected by IsTampered
// rather than trusted transport:
//
//	rc, err := authtext.NewRemoteClient("http://search.example.com:8470")
//	res, err := rc.Search(ctx, "merkle trees", 10, authtext.TNRA, authtext.ChainMHT)
//	// err == nil ⇔ the response is the authentic top-10
//
// The wire format is defined in internal/httpapi and documented in
// docs/PROTOCOL.md.
//
// # Sharded collections
//
// NewShardedOwner splits the corpus into k independently signed shards
// built in parallel; ShardedServer fans every query out to all shards
// concurrently and merges the local top-r lists; ShardedClient verifies
// every shard's VO and that the merged ranking is the true global top-r
// by deterministic recomputation. Tampering with any shard's answer,
// dropping a shard, or reordering the merge classifies as tampering.
// Each shard persists as one ordinary snapshot file
// (ShardedOwner.WriteSnapshotDir / OpenShardedSnapshotDir), and
// ShardedRemoteClient is the verifying counterpart over HTTP. The design
// and trust model are documented in docs/SHARDING.md.
//
// # Live collections and generations
//
// NewLiveOwner builds a collection that accepts updates after
// publication: every AddDocuments/RemoveDocuments batch rebuilds a fresh
// immutable collection under the next signed generation — reusing every
// signature whose underlying structure the batch did not change — and
// atomically swaps the serving pointer, so concurrent searches always
// observe one whole generation. Clients follow generations forward only:
// Client.Advance (and RemoteClient automatically) accepts a newer signed
// manifest and rejects rollback with ErrStaleGeneration. Each generation
// persists as its own snapshot (LiveOwner.WriteSnapshotDir), from which
// OpenLiveSnapshotDir serves a hot-swappable replica. The model, trust
// rules and measured costs are documented in docs/UPDATES.md.
package authtext
