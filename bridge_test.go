package authtext

import "authtext/internal/engine"

// ServerForTest wraps a prebuilt engine collection in the facade Server,
// so external tests (package authtext_test, which can import
// internal/experiments without a cycle) can benchmark the facade over the
// shared experiment fixture without re-running the authenticated build.
// Test-only: this file compiles only into the test binary.
func ServerForTest(col *engine.Collection) *Server { return &Server{col: col} }
