package authtext

import (
	"encoding/binary"
	"errors"
	"fmt"

	"authtext/internal/core"
	"authtext/internal/shard"
	"authtext/internal/sig"
)

// Sharded client export format ("ATSX"): everything a user needs to verify
// fanned-out results, in one self-contained blob the owner publishes out
// of band — the signed set manifest, the public key, every shard's signed
// manifest and its local→global document map.
//
// Layout:
//
//	magic "ATSX" | u16 version
//	u32 len + set-manifest encoding | u32 len + set-manifest signature
//	u8 verifier kind | u32 len + verifier encoding
//	per shard: u32 len + shard manifest encoding | u32 len + shard
//	           manifest signature | u32 len + doc-map encoding
//
// Unlike ATCX this format uses sig.MarshalVerifier, so fast-signer (HMAC)
// sets export too — with the same caveat as snapshots: the HMAC "public"
// half is the shared key, benchmarking only.

const shardedExportMagic = "ATSX"

const shardedExportVersion = 1

// ExportClient serialises the sharded verification material for
// distribution to users.
func (o *ShardedOwner) ExportClient() ([]byte, error) { return exportSet(o.set) }

// ExportClient returns the same ATSX blob for a serving set — a
// snapshot-booted ShardedServer (which has no ShardedOwner) uses it to
// publish /v1/shards/manifest, guaranteed consistent with the shards it
// actually opened.
func (s *ShardedServer) ExportClient() ([]byte, error) { return exportSet(s.set) }

func exportSet(set *shard.Set) ([]byte, error) {
	kind, pub, err := sig.MarshalVerifier(set.Verifier())
	if err != nil {
		return nil, fmt.Errorf("authtext: %w", err)
	}
	sm, smSig := set.Manifest()
	out := []byte(shardedExportMagic)
	out = binary.BigEndian.AppendUint16(out, shardedExportVersion)
	out = appendChunk32(out, sm.Encode())
	out = appendChunk32(out, smSig)
	out = append(out, kind)
	out = appendChunk32(out, pub)
	for i := 0; i < set.K(); i++ {
		m, msig := set.Col(i).Manifest()
		out = appendChunk32(out, m.Encode())
		out = appendChunk32(out, msig)
		out = appendChunk32(out, shard.EncodeDocMap(set.DocMap(i)))
	}
	return out, nil
}

func appendChunk32(b, chunk []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(chunk)))
	return append(b, chunk...)
}

// shardedExport is the parsed, fully validated content of an ATSX blob.
type shardedExport struct {
	manifest    *shard.SetManifest
	manifestSig []byte
	verifier    sig.Verifier
	shardMans   []*core.Manifest
	shardSigs   [][]byte
	docMaps     [][]uint32
}

// parseShardedExport decodes and verifies an ATSX blob: the set-manifest
// signature, every shard manifest's signature, and every digest pinned by
// the set manifest. A tampered blob is rejected here rather than at first
// use.
func parseShardedExport(data []byte) (*shardedExport, error) {
	r := chunkReader{b: data}
	if !r.magic(shardedExportMagic) {
		return nil, errors.New("authtext: not a sharded client export")
	}
	if v := r.u16(); r.err == nil && v != shardedExportVersion {
		return nil, fmt.Errorf("authtext: sharded export version %d not supported (this build speaks %d)", v, shardedExportVersion)
	}
	smRaw := r.chunk()
	smSig := r.chunk()
	kind := r.u8()
	pub := r.chunk()
	if r.err != nil {
		return nil, fmt.Errorf("authtext: %w", r.err)
	}
	sm, err := shard.DecodeSetManifest(smRaw)
	if err != nil {
		return nil, fmt.Errorf("authtext: %w", err)
	}
	verifier, err := sig.ParseVerifier(kind, pub)
	if err != nil {
		return nil, fmt.Errorf("authtext: %w", err)
	}
	if err := shard.VerifySetManifest(sm, smSig, verifier); err != nil {
		return nil, fmt.Errorf("authtext: %w", err)
	}
	hasher, err := sig.NewHasher(int(sm.HashSize))
	if err != nil {
		return nil, fmt.Errorf("authtext: %w", err)
	}
	ex := &shardedExport{
		manifest:    sm,
		manifestSig: smSig,
		verifier:    verifier,
		shardMans:   make([]*core.Manifest, sm.K),
		shardSigs:   make([][]byte, sm.K),
		docMaps:     make([][]uint32, sm.K),
	}
	for i := 0; i < int(sm.K); i++ {
		mRaw := r.chunk()
		mSig := r.chunk()
		dmRaw := r.chunk()
		if r.err != nil {
			return nil, fmt.Errorf("authtext: sharded export shard %d: %w", i, r.err)
		}
		if string(hasher.Sum(mRaw)) != string(sm.ManifestDigests[i]) {
			return nil, fmt.Errorf("authtext: sharded export shard %d manifest does not match the set manifest", i)
		}
		if string(hasher.Sum(dmRaw)) != string(sm.DocMapDigests[i]) {
			return nil, fmt.Errorf("authtext: sharded export shard %d doc map does not match the set manifest", i)
		}
		m, err := core.DecodeManifest(mRaw)
		if err != nil {
			return nil, fmt.Errorf("authtext: sharded export shard %d: %w", i, err)
		}
		if err := core.VerifyManifest(m, mSig, verifier); err != nil {
			return nil, fmt.Errorf("authtext: sharded export shard %d: %w", i, err)
		}
		dm, err := shard.DecodeDocMap(dmRaw)
		if err != nil {
			return nil, fmt.Errorf("authtext: sharded export shard %d: %w", i, err)
		}
		if len(dm) != int(sm.ShardDocs[i]) {
			return nil, fmt.Errorf("authtext: sharded export shard %d doc map has %d entries for %d documents", i, len(dm), sm.ShardDocs[i])
		}
		ex.shardMans[i] = m
		ex.shardSigs[i] = append([]byte(nil), mSig...)
		ex.docMaps[i] = dm
	}
	if !r.empty() {
		return nil, errors.New("authtext: trailing bytes in sharded client export")
	}
	return ex, nil
}

// NewShardedClientFromExport reconstructs a ShardedClient from an
// ExportClient blob. All signatures and digests are checked before the
// client is returned.
func NewShardedClientFromExport(data []byte) (*ShardedClient, error) {
	ex, err := parseShardedExport(data)
	if err != nil {
		return nil, err
	}
	c := &ShardedClient{
		manifest:    ex.manifest,
		manifestSig: ex.manifestSig,
		verifier:    ex.verifier,
		shards:      make([]*Client, ex.manifest.K),
		docMaps:     ex.docMaps,
	}
	for i := range c.shards {
		// Verified by parseShardedExport.
		c.shards[i] = &Client{manifest: ex.shardMans[i], manifestSig: ex.shardSigs[i],
			verifier: ex.verifier, checked: true, maxGen: ex.shardMans[i].Generation}
	}
	// Set manifest verified by parseShardedExport.
	c.checked = true
	c.maxGen = ex.manifest.Generation
	return c, nil
}

// chunkReader is a bounds-checked reader over an export blob.
type chunkReader struct {
	b   []byte
	off int
	err error
}

func (r *chunkReader) magic(m string) bool {
	if len(r.b) < len(m) || string(r.b[:len(m)]) != m {
		return false
	}
	r.off = len(m)
	return true
}

func (r *chunkReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) || r.off+n < r.off {
		r.err = errors.New("truncated export")
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *chunkReader) u8() uint8 {
	v := r.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

func (r *chunkReader) u16() uint16 {
	v := r.take(2)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint16(v)
}

func (r *chunkReader) chunk() []byte {
	v := r.take(4)
	if v == nil {
		return nil
	}
	n := int(binary.BigEndian.Uint32(v))
	c := r.take(n)
	if c == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, c)
	return out
}

func (r *chunkReader) empty() bool { return r.err == nil && r.off == len(r.b) }
