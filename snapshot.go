package authtext

import (
	"io"
	"os"

	"authtext/internal/snapshot"
)

// Snapshot persistence: the owner builds and signs a collection once, then
// writes it to a durable artifact that any server process can reopen in
// milliseconds — no re-tokenising, no re-indexing and, crucially, no
// re-signing (the private key never has to be present where snapshots are
// opened). docs/SNAPSHOT.md specifies the on-disk format.
//
// Trust model: snapshot integrity is NOT assumed. Per-section checksums
// catch accidental corruption at open time, but the root of trust stays
// the manifest signature — a snapshot altered consistently enough to open
// serves responses whose verification objects fail Client.Verify.

// WriteSnapshot serialises the fully built collection to w in the
// versioned snapshot format. Works with any signer: RSA snapshots embed
// only the public key; fast-signer (HMAC) snapshots embed the shared
// benchmark key and are therefore for benchmarking only.
func (o *Owner) WriteSnapshot(w io.Writer) error {
	return snapshot.Write(w, o.col)
}

// OpenSnapshot reopens a snapshot and returns the serving half plus a
// verification client carrying the embedded manifest and public key. The
// input is treated as untrusted: malformed, truncated or corrupted
// snapshots error out here, and users who must not trust the snapshot
// channel should verify results with a Client bootstrapped out of band
// from the owner instead of the returned one.
func OpenSnapshot(r io.ReaderAt) (*Server, *Client, error) {
	col, err := snapshot.Open(r)
	if err != nil {
		return nil, nil, err
	}
	m, msig := col.Manifest()
	return &Server{col: col},
		&Client{manifest: m, manifestSig: msig, verifier: col.Verifier()},
		nil
}

// OpenSnapshotFile is OpenSnapshot over a file path.
func OpenSnapshotFile(path string) (*Server, *Client, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return OpenSnapshot(f)
}

// MappedSnapshot is a snapshot opened zero-copy: the serving collection
// reads straight out of a read-only file mapping shared with the OS page
// cache, so opening costs decode time instead of a full-file copy, and
// replicas of one generation share physical memory. The Server and Client
// stay valid until Close; see docs/SNAPSHOT.md "Mapped opens" for the
// integrity schedule (small sections CRC-checked at open; the bulk
// sections — block store, index, signatures — validated in the
// background, poisoning reads on mismatch).
type MappedSnapshot struct {
	server *Server
	client *Client
	m      *snapshot.Mapped
}

// OpenSnapshotMapped memory-maps the snapshot file at path and returns the
// serving halves without copying the block store or authentication
// tables. The trust model is OpenSnapshot's; only the copy is gone.
func OpenSnapshotMapped(path string) (*MappedSnapshot, error) {
	mp, err := snapshot.OpenMapped(path)
	if err != nil {
		return nil, err
	}
	col := mp.Collection()
	m, msig := col.Manifest()
	return &MappedSnapshot{
		server: &Server{col: col},
		client: &Client{manifest: m, manifestSig: msig, verifier: col.Verifier()},
		m:      mp,
	}, nil
}

// Server returns the serving half. Valid until Close.
func (ms *MappedSnapshot) Server() *Server { return ms.server }

// Client returns the verification client. Valid until Close.
func (ms *MappedSnapshot) Client() *Client { return ms.client }

// SizeBytes reports the mapped file size.
func (ms *MappedSnapshot) SizeBytes() int64 { return ms.m.SizeBytes() }

// Validate blocks until the deferred bulk-section checksums finished and
// returns its verdict. Callers that must fail fast on a corrupted file
// (rather than letting reads or client verification catch it) call this
// once after opening.
func (ms *MappedSnapshot) Validate() error { return ms.m.Wait() }

// Close releases the mapping. The Server and Client must not be used
// afterwards.
func (ms *MappedSnapshot) Close() error {
	ms.m.Release()
	return nil
}
