package authtext

import (
	"log/slog"
	"net/http"
	"time"

	"authtext/internal/fleet"
)

// Frontend fans /v1 traffic out across a fleet of replica backends
// (docs/FLEET.md): health-aware load balancing (power of two choices over
// in-flight load), ejection with exponential backoff after consecutive
// failures, retries across distinct replicas, and generation-consistent
// routing — once the fleet has served generation G, no client receives an
// answer from an earlier generation, even mid-swap with lagging replicas
// still in rotation.
//
// The front end is untrusted, like the replicas behind it: clients verify
// every answer against the owner's public key regardless of the path it
// took. It implements http.Handler; Close stops its health probes.
type Frontend struct {
	f *fleet.Frontend
}

// FrontendOption customises NewFrontend.
type FrontendOption func(*frontendConfig)

type frontendConfig struct {
	probe      time.Duration
	attempts   int
	timeout    time.Duration
	ejectAfter int
	ejectFor   time.Duration
	metrics    *Metrics
	logger     *slog.Logger
	transport  http.RoundTripper
}

// WithFrontendProbeInterval sets the health-probe period (default 500ms).
// Probes learn replica generations and drive ejection/recovery
// independent of request traffic, so a dead replica is routed around
// within roughly one interval.
func WithFrontendProbeInterval(d time.Duration) FrontendOption {
	return func(c *frontendConfig) { c.probe = d }
}

// WithFrontendRetry bounds one request's fan-out: at most attempts
// distinct replicas are tried, each within perAttemptTimeout (defaults: 3
// attempts, 10s).
func WithFrontendRetry(attempts int, perAttemptTimeout time.Duration) FrontendOption {
	return func(c *frontendConfig) { c.attempts = attempts; c.timeout = perAttemptTimeout }
}

// WithFrontendEjection tunes backend ejection: after consecutive failures
// a replica leaves the rotation for backoff (doubling per consecutive
// ejection, capped; defaults: 2 failures, 1s base).
func WithFrontendEjection(after int, backoff time.Duration) FrontendOption {
	return func(c *frontendConfig) { c.ejectAfter = after; c.ejectFor = backoff }
}

// WithFrontendMetrics records authtext_fleet_* series (backends in
// rotation, generation watermark, proxied/retried/ejected counts) in m
// and serves the registry at /v1/metrics.
func WithFrontendMetrics(m *Metrics) FrontendOption {
	return func(c *frontendConfig) { c.metrics = m }
}

// WithFrontendLogger receives ejection and recovery events.
func WithFrontendLogger(l *slog.Logger) FrontendOption {
	return func(c *frontendConfig) { c.logger = l }
}

// WithFrontendTransport overrides the forwarding transport.
func WithFrontendTransport(rt http.RoundTripper) FrontendOption {
	return func(c *frontendConfig) { c.transport = rt }
}

// NewFrontend starts a fleet front end over the given replica base URLs
// (at least one). Close it to stop the health probes.
func NewFrontend(backends []string, opts ...FrontendOption) (*Frontend, error) {
	var c frontendConfig
	for _, opt := range opts {
		opt(&c)
	}
	f, err := fleet.New(fleet.Config{
		Backends:       backends,
		ProbeInterval:  c.probe,
		AttemptTimeout: c.timeout,
		MaxAttempts:    c.attempts,
		EjectAfter:     c.ejectAfter,
		EjectFor:       c.ejectFor,
		Transport:      c.transport,
		Registry:       c.metrics.registry(),
		Logger:         c.logger,
	})
	if err != nil {
		return nil, err
	}
	return &Frontend{f: f}, nil
}

// ServeHTTP implements http.Handler: /v1/search, /v1/manifest and the
// sharded read endpoints are load-balanced across the fleet;
// /v1/healthz is synthesized from the fleet's view; /v1/fleet/healthz
// reports per-replica status; /v1/admin/update answers 403 (updates
// happen at the owner); /v1/metrics serves the registry when
// WithFrontendMetrics was given.
func (f *Frontend) ServeHTTP(w http.ResponseWriter, r *http.Request) { f.f.ServeHTTP(w, r) }

// Generation returns the fleet generation watermark: the highest
// publication generation any replica has been seen serving.
func (f *Frontend) Generation() uint64 { return f.f.Generation() }

// AddBackend adds a replica to the rotation at runtime.
func (f *Frontend) AddBackend(url string) error { return f.f.AddBackend(url) }

// RemoveBackend removes a replica from the rotation, reporting whether it
// was present.
func (f *Frontend) RemoveBackend(url string) bool { return f.f.RemoveBackend(url) }

// FrontendBackendStatus is one replica's routing state.
type FrontendBackendStatus struct {
	URL        string
	Healthy    bool
	Probed     bool
	Ejected    bool
	Generation uint64
	Inflight   int64
}

// FrontendStatus is a point-in-time fleet snapshot.
type FrontendStatus struct {
	// Status is "ok" while at least one replica is in rotation.
	Status string
	// Generation is the fleet watermark.
	Generation uint64
	Backends   []FrontendBackendStatus
}

// Status returns the current fleet snapshot (the /v1/fleet/healthz
// payload).
func (f *Frontend) Status() FrontendStatus {
	fh := f.f.Status()
	out := FrontendStatus{Status: fh.Status, Generation: fh.Generation}
	for _, b := range fh.Backends {
		out.Backends = append(out.Backends, FrontendBackendStatus{
			URL:        b.URL,
			Healthy:    b.Healthy,
			Probed:     b.Probed,
			Ejected:    b.Ejected,
			Generation: b.Generation,
			Inflight:   b.Inflight,
		})
	}
	return out
}

// Close stops the health probes. In-flight requests finish normally.
func (f *Frontend) Close() { f.f.Close() }
