package authtext

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"authtext/internal/engine"
	"authtext/internal/httpapi"
	"authtext/internal/live"
	"authtext/internal/shard"
	"authtext/internal/snapshot"
)

// Per-generation sharded snapshot layout: a live sharded snapshot
// directory holds one ordinary sharded snapshot DIRECTORY per published
// set generation,
//
//	dir/gen-000000000001/shard-0000.atsn ... shards.atsx
//	dir/gen-000000000002/shard-0000.atsn ... shards.atsx
//	...
//
// written atomically (temp directory + rename), so a crash mid-write
// never leaves a partial generation under a generation name. The highest
// generation IS the current state — the same no-pointer-file design as
// the single-collection layout in live_snapshot.go — and each generation
// directory is independently a valid OpenShardedSnapshotDir input. The
// trust model is OpenShardedSnapshotDir's: the directory is untrusted and
// every shard file is cross-checked against the signed set manifest; a
// replica additionally refuses to move to a lower generation.

// liveShardedGenPattern names one set generation's snapshot directory.
// Zero-padding to 12 digits keeps lexicographic and numeric order
// identical.
const liveShardedGenPattern = "gen-%012d"

func liveShardedGenName(gen uint64) string { return fmt.Sprintf(liveShardedGenPattern, gen) }

// parseLiveShardedGenName inverts liveShardedGenName (0, false for
// foreign entries).
func parseLiveShardedGenName(name string) (uint64, bool) {
	var gen uint64
	if _, err := fmt.Sscanf(name, liveShardedGenPattern, &gen); err != nil || gen == 0 {
		return 0, false
	}
	if name != liveShardedGenName(gen) {
		return 0, false
	}
	return gen, true
}

// WriteSnapshotDir persists the CURRENT set generation as
// dir/gen-NNNNNNNNNNNN/ (creating dir if needed) and returns the written
// path. Earlier generations' directories are left in place — prune them
// with any retention policy; a replica always picks the highest
// generation.
func (o *LiveShardedOwner) WriteSnapshotDir(dir string) (string, error) {
	return writeShardedGenerationSnapshot(o.lc.Current(), dir)
}

// PersistGenerations writes the current set generation's snapshot to dir
// now and arranges for every FUTURE generation to be written too, from
// inside the update critical section — updates are serialised, so each
// one leaves its own gen-*/ directory, in order. onError (optional)
// receives snapshot failures of future generations; the update itself
// still succeeds (serving beats durability; the next generation's
// snapshot re-establishes the latest state on disk).
func (o *LiveShardedOwner) PersistGenerations(dir string, onError func(gen uint64, err error)) (string, error) {
	path, err := o.WriteSnapshotDir(dir)
	if err != nil {
		return "", err
	}
	o.lc.SetPublishHook(func(set *shard.Set, st *live.UpdateStats) {
		if _, err := writeShardedGenerationSnapshot(set, dir); err != nil && onError != nil {
			onError(st.Generation, err)
		}
	})
	return path, nil
}

// writeShardedGenerationSnapshot atomically writes set's generation
// directory into dir and returns its path. A generation that is already
// on disk is left alone: the signed content is determined by the
// generation, so the existing directory is as good as a rewrite.
func writeShardedGenerationSnapshot(set *shard.Set, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	sm, _ := set.Manifest()
	path := filepath.Join(dir, liveShardedGenName(sm.Generation))
	if _, err := os.Stat(path); err == nil {
		return path, nil
	}
	tmp, err := os.MkdirTemp(dir, ".gen-*.tmp")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(tmp)
	for i := 0; i < set.K(); i++ {
		if err := writeShardFile(filepath.Join(tmp, shardSnapshotName(i)), set.Col(i)); err != nil {
			return "", fmt.Errorf("authtext: shard %d: %w", i, err)
		}
	}
	export, err := exportSet(set)
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(tmp, ShardedManifestFile), export, 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		// A concurrent writer may have landed the same generation first;
		// its directory is equally valid.
		if _, statErr := os.Stat(path); statErr == nil {
			return path, nil
		}
		return "", err
	}
	return path, nil
}

// writeShardFile writes one shard's ATSN snapshot.
func writeShardFile(path string, col *engine.Collection) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snapshot.Write(f, col); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// IsLiveShardedSnapshotDir reports whether path is a directory holding
// per-generation sharded snapshots (used by the CLIs to route
// -snapshot PATH).
func IsLiveShardedSnapshotDir(path string) bool {
	gen, _, err := latestShardedGenerationSnapshot(path)
	return err == nil && gen > 0
}

// latestShardedGenerationSnapshot scans dir for the highest-generation
// sharded snapshot directory.
func latestShardedGenerationSnapshot(dir string) (uint64, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, "", err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, ok := parseLiveShardedGenName(e.Name()); !ok {
			continue
		}
		// A generation directory is only eligible once its ATSX bundle is
		// in place (renames are atomic, so this only excludes foreign dirs).
		if _, err := os.Stat(filepath.Join(dir, e.Name(), ShardedManifestFile)); err != nil {
			continue
		}
		names = append(names, e.Name())
	}
	if len(names) == 0 {
		return 0, "", errors.New("authtext: no sharded generation snapshots in directory")
	}
	sort.Strings(names) // zero-padded: lexicographic == numeric
	latest := names[len(names)-1]
	gen, _ := parseLiveShardedGenName(latest)
	return gen, filepath.Join(dir, latest), nil
}

// shardedReplicaState is one loaded set generation of a
// LiveShardedReplica.
type shardedReplicaState struct {
	server *ShardedServer
	client *ShardedClient
	gen    uint64
	export []byte // the ATSX bundle, as served at /v1/shards/manifest
}

// LiveShardedReplica serves a live sharded collection from its snapshot
// directory without holding the signing key: it opens the latest set
// generation and, on Reload, hot-swaps to any newer generation that has
// appeared. Like LiveReplica it refuses to move backward — a directory
// whose latest generation shrank fails Reload rather than silently
// serving rolled-back state.
type LiveShardedReplica struct {
	dir string

	mu      sync.Mutex // serialises Reload
	cur     atomic.Pointer[shardedReplicaState]
	cache   *VOCache
	metrics *Metrics
}

// OpenLiveShardedSnapshotDir opens the latest set generation in dir and
// returns the serving replica. Every generation directory is
// cross-checked against its name: a snapshot whose signed set manifest
// pins a different generation than its directory name claims is rejected.
func OpenLiveShardedSnapshotDir(dir string) (*LiveShardedReplica, error) {
	r := &LiveShardedReplica{dir: dir}
	if _, err := r.Reload(); err != nil {
		return nil, err
	}
	return r, nil
}

// loadShardedGeneration opens one generation directory and validates its
// manifest-vs-name consistency.
func loadShardedGeneration(path string, wantGen uint64) (*shardedReplicaState, error) {
	server, client, err := OpenShardedSnapshotDir(path)
	if err != nil {
		return nil, err
	}
	if got := client.Generation(); got != wantGen {
		return nil, fmt.Errorf("authtext: %s: set manifest pins generation %d, directory name claims %d",
			filepath.Base(path), got, wantGen)
	}
	export, err := os.ReadFile(filepath.Join(path, ShardedManifestFile))
	if err != nil {
		return nil, err
	}
	return &shardedReplicaState{server: server, client: client, gen: wantGen, export: export}, nil
}

// Reload checks the directory for a newer set generation and atomically
// swaps to it, returning whether a swap happened. Cheap when nothing
// changed (one directory scan).
func (r *LiveShardedReplica) Reload() (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	gen, path, err := latestShardedGenerationSnapshot(r.dir)
	if err != nil {
		return false, err
	}
	cur := r.cur.Load()
	if cur != nil {
		if gen == cur.gen {
			return false, nil
		}
		if gen < cur.gen {
			return false, fmt.Errorf("authtext: snapshot directory rolled back: serving generation %d, latest on disk is %d",
				cur.gen, gen)
		}
	}
	openStart := time.Now()
	st, err := loadShardedGeneration(path, gen)
	if err != nil {
		return false, err
	}
	r.cur.Store(st)
	r.metrics.recordSnapshotOpen(gen, time.Since(openStart))
	return true, nil
}

// SetVOCache attaches a VO cache carried into every Server() result (nil
// detaches). Call before serving starts; generation-stamped keys make
// reloads safe without cache work.
func (r *LiveShardedReplica) SetVOCache(c *VOCache) { r.cache = c }

// SetMetrics attaches a metric registry carried into every Server()
// result and recording reload telemetry (nil detaches). Call before
// serving starts.
func (r *LiveShardedReplica) SetMetrics(m *Metrics) {
	r.metrics = m
	m.setGeneration(r.Generation())
}

// Server returns the serving half of the current set generation. The
// result is pinned: it keeps answering from its generation even after a
// Reload swaps the replica forward.
func (r *LiveShardedReplica) Server() *ShardedServer {
	return r.cur.Load().server.withCache(r.cache).withMetrics(r.metrics)
}

// Client returns the verification client of the current set generation.
func (r *LiveShardedReplica) Client() *ShardedClient { return r.cur.Load().client }

// Generation returns the currently served set generation.
func (r *LiveShardedReplica) Generation() uint64 { return r.cur.Load().gen }

// HTTPHandler exposes the replica over the versioned HTTP protocol: the
// sharded serving surface of the latest loaded generation, with
// /v1/admin/update answering 403 because updates happen at the owner
// that writes the snapshots.
func (r *LiveShardedReplica) HTTPHandler(opts ...ShardedHandlerOption) (http.Handler, error) {
	b := &shardedReplicaHTTPBackend{rep: r, start: time.Now()}
	for _, opt := range opts {
		opt(&b.opts)
	}
	b.cache = b.opts.cache
	if b.cache == nil {
		b.cache = r.cache
	}
	if m := b.opts.metrics; m != nil {
		if r.metrics == nil {
			r.SetMetrics(m)
		}
		m.BindVOCache(b.cache)
	}
	return httpapi.NewHandler(b, b.opts.httpapiOpts()...), nil
}

// shardedReplicaHTTPBackend serves the sharded protocol from whatever
// generation the replica currently holds, pinning one generation per
// fan-out.
type shardedReplicaHTTPBackend struct {
	rep    *LiveShardedReplica
	start  time.Time
	opts   shardedHandlerOptions
	cache  *VOCache
	served atomic.Int64
	failed atomic.Int64
}

func (b *shardedReplicaHTTPBackend) Search(req *httpapi.SearchRequest) (*httpapi.SearchResponse, error) {
	return nil, &httpapi.StatusError{
		Status:  http.StatusNotFound,
		Code:    httpapi.CodeNotFound,
		Message: "this server is sharded; query " + httpapi.PathShardSearch,
	}
}

func (b *shardedReplicaHTTPBackend) ClientExport() ([]byte, error) {
	return nil, &httpapi.StatusError{
		Status:  http.StatusNotFound,
		Code:    httpapi.CodeNotFound,
		Message: "this server is sharded; fetch " + httpapi.PathShardManifest,
	}
}

func (b *shardedReplicaHTTPBackend) ShardSearch(req *httpapi.SearchRequest) (*httpapi.ShardedSearchResponse, error) {
	pinned := &shardedHTTPBackend{srv: b.rep.Server().withCache(b.opts.cache), opts: b.opts}
	resp, err := pinned.ShardSearch(req)
	if err != nil {
		b.failed.Add(1)
		return nil, err
	}
	b.served.Add(1)
	return resp, nil
}

func (b *shardedReplicaHTTPBackend) ShardExport() ([]byte, error) {
	return b.rep.cur.Load().export, nil
}

func (b *shardedReplicaHTTPBackend) Update(req *httpapi.UpdateRequest) (*httpapi.UpdateResponse, error) {
	return nil, &httpapi.StatusError{
		Status:  http.StatusForbidden,
		Code:    httpapi.CodeUpdateFailed,
		Message: "this replica is serving-only; apply updates at the owner",
	}
}

func (b *shardedReplicaHTTPBackend) Health() httpapi.Health {
	h := shardedHealth(b.rep.Server(), b.start, b.served.Load(), b.failed.Load())
	if b.cache != nil {
		h.Cache = b.cache.health()
	}
	return h
}
