package authtext

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"authtext/internal/wire"
)

// The cache suite proves the hot-query VO cache is transparent on the
// wire and powerless as an attack vector: a hit is byte-identical to the
// miss that populated it, and a poisoned entry — bit-flipped, swapped
// across queries, or replayed across generations — is rejected by client
// verification exactly like any other tampering.

func TestCacheKeyDiscriminates(t *testing.T) {
	base := cacheKey(cacheKindSingle, []string{"night", "keeper"}, 3, TNRA, ChainMHT, 1)
	same := cacheKey(cacheKindSingle, []string{"night", "keeper"}, 3, TNRA, ChainMHT, 1)
	if base != same {
		t.Fatal("identical parameters produced different keys")
	}
	variants := []string{
		cacheKey(cacheKindSharded, []string{"night", "keeper"}, 3, TNRA, ChainMHT, 1),
		cacheKey(cacheKindSingle, []string{"keeper", "night"}, 3, TNRA, ChainMHT, 1),
		cacheKey(cacheKindSingle, []string{"night"}, 3, TNRA, ChainMHT, 1),
		cacheKey(cacheKindSingle, []string{"night", "keeper"}, 4, TNRA, ChainMHT, 1),
		cacheKey(cacheKindSingle, []string{"night", "keeper"}, 3, TRA, ChainMHT, 1),
		cacheKey(cacheKindSingle, []string{"night", "keeper"}, 3, TNRA, MHT, 1),
		cacheKey(cacheKindSingle, []string{"night", "keeper"}, 3, TNRA, ChainMHT, 2),
	}
	seen := map[string]bool{base: true}
	for i, k := range variants {
		if seen[k] {
			t.Fatalf("variant %d collided: %q", i, k)
		}
		seen[k] = true
	}
}

func TestCacheHitVerifiesLikeMiss(t *testing.T) {
	o := owner(t)
	srv := o.Server()
	cache := NewVOCache(1 << 20)
	srv.SetVOCache(cache)
	client := o.Client()

	const q, r = "patent examiner portal", 3
	miss, err := srv.Search(q, r, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := srv.Search(q, r, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("expected one miss then one hit, got %+v", st)
	}
	if !bytes.Equal(miss.VO, hit.VO) || len(miss.Hits) != len(hit.Hits) {
		t.Fatal("cache hit differs from the miss that populated it")
	}
	if err := client.Verify(q, r, hit); err != nil {
		t.Fatalf("cached answer failed verification: %v", err)
	}
	// Different spellings normalise onto the same entry...
	if _, err := srv.Search("The PATENT examiner portal", r, TNRA, ChainMHT); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Hits; got != 2 {
		t.Fatalf("normalised respelling missed the cache: hits=%d", got)
	}
	// ...while different parameters do not.
	if _, err := srv.Search(q, r+1, TNRA, ChainMHT); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Misses; got != 2 {
		t.Fatalf("different r hit the wrong entry: misses=%d", got)
	}
}

// TestCacheCallerCannotPoisonViaResult: mutating the result a caller got
// back must not leak into what the next caller is served.
func TestCacheCallerCannotPoisonViaResult(t *testing.T) {
	o := owner(t)
	srv := o.Server()
	srv.SetVOCache(NewVOCache(1 << 20))

	const q, r = "inverted index documents", 3
	first, err := srv.Search(q, r, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Hits) < 2 {
		t.Fatalf("need ≥2 hits, got %d", len(first.Hits))
	}
	first.Hits[0], first.Hits[1] = first.Hits[1], first.Hits[0]
	first.Generation = 999

	second, err := srv.Search(q, r, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if second.Hits[0].DocID == first.Hits[0].DocID && second.Hits[1].DocID == first.Hits[1].DocID {
		t.Fatal("caller's reorder leaked into the cached answer")
	}
	if second.Generation == 999 {
		t.Fatal("caller's generation scribble leaked into the cached answer")
	}
	if err := o.Client().Verify(q, r, second); err != nil {
		t.Fatalf("cached answer failed verification after caller mutation: %v", err)
	}
}

// poisonVO flips one bit of every cached SearchResult's VO in place,
// emulating a compromised cache (memory corruption, or a server operator
// scribbling on the stored answers).
func poisonVO(c *VOCache, t *testing.T) {
	t.Helper()
	poisoned := 0
	c.c.Range(func(key string, gen uint64, val any) bool {
		if res, ok := val.(*SearchResult); ok && len(res.VO) > 0 {
			res.VO[len(res.VO)/2] ^= 0x40
			poisoned++
		}
		return true
	})
	if poisoned == 0 {
		t.Fatal("nothing to poison: cache empty")
	}
}

// TestCachePoisonedEntryRejected: a bit-flipped cached VO must fail
// client verification for both algorithms (satellite: tamper test,
// local).
func TestCachePoisonedEntryRejected(t *testing.T) {
	for _, algo := range []Algorithm{TRA, TNRA} {
		t.Run(algo.String(), func(t *testing.T) {
			o := owner(t)
			srv := o.Server()
			cache := NewVOCache(1 << 20)
			srv.SetVOCache(cache)
			client := o.Client()

			const q, r = "search results integrity", 3
			if _, err := srv.Search(q, r, algo, ChainMHT); err != nil {
				t.Fatal(err)
			}
			poisonVO(cache, t)
			res, err := srv.Search(q, r, algo, ChainMHT)
			if err != nil {
				t.Fatal(err)
			}
			if cache.Stats().Hits == 0 {
				t.Fatal("poisoned entry was not served from cache")
			}
			err = client.Verify(q, r, res)
			if err == nil {
				t.Fatal("poisoned cached VO verified")
			}
			if !IsTampered(err) {
				t.Fatalf("poisoned cached VO misclassified: %v", err)
			}
		})
	}
}

// TestCacheCrossQuerySwapRejected: serving query A's cached answer for
// query B (keys crossed inside a compromised cache) must fail B's
// verification.
func TestCacheCrossQuerySwapRejected(t *testing.T) {
	o := owner(t)
	srv := o.Server()
	cache := NewVOCache(1 << 20)
	srv.SetVOCache(cache)
	client := o.Client()

	const qa, qb, r = "patent examiner portal", "inverted index documents", 3
	if _, err := srv.Search(qa, r, TNRA, ChainMHT); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Search(qb, r, TNRA, ChainMHT); err != nil {
		t.Fatal(err)
	}
	// Swap the two stored answers through the in-place Range hook.
	var stored []*SearchResult
	cache.c.Range(func(key string, gen uint64, val any) bool {
		if res, ok := val.(*SearchResult); ok {
			stored = append(stored, res)
		}
		return true
	})
	if len(stored) != 2 {
		t.Fatalf("expected 2 cached answers, found %d", len(stored))
	}
	*stored[0], *stored[1] = *stored[1], *stored[0]

	for _, q := range []string{qa, qb} {
		res, err := srv.Search(q, r, TNRA, ChainMHT)
		if err != nil {
			t.Fatal(err)
		}
		if err := client.Verify(q, r, res); err == nil {
			t.Fatalf("%q: cross-query swapped answer verified", q)
		} else if !IsTampered(err) {
			t.Fatalf("%q: swap misclassified: %v", q, err)
		}
	}
}

// TestCacheCrossGenerationReplayRejected: replaying a previous
// generation's cached answer after an update must classify as
// ErrStaleGeneration at the client, for both algorithms.
func TestCacheCrossGenerationReplayRejected(t *testing.T) {
	for _, algo := range []Algorithm{TRA, TNRA} {
		t.Run(algo.String(), func(t *testing.T) {
			lo, _, err := NewLiveOwner(newsDocs(), WithFastSigner([]byte("cache-replay")))
			if err != nil {
				t.Fatal(err)
			}
			srv := lo.Server()
			cache := NewVOCache(1 << 20)
			srv.SetVOCache(cache)
			client := lo.Client()

			const q, r = "patent examiner portal", 3
			stale, err := srv.Search(q, r, algo, ChainMHT)
			if err != nil {
				t.Fatal(err)
			}
			staleCopy := *stale
			staleCopy.Hits = append([]Hit(nil), stale.Hits...)

			if _, _, err := lo.AddDocuments([]Document{{Content: []byte("a fresh document about the patent examiner")}}); err != nil {
				t.Fatal(err)
			}
			m, msig := lo.ManifestUpdate()
			if err := client.Advance(m, msig); err != nil {
				t.Fatal(err)
			}
			// Prime the new generation's entry, then overwrite it with the old
			// generation's answer — a rollback inside the cache.
			if _, err := srv.Search(q, r, algo, ChainMHT); err != nil {
				t.Fatal(err)
			}
			replaced := false
			cache.c.Range(func(key string, gen uint64, val any) bool {
				if res, ok := val.(*SearchResult); ok && res.Generation > staleCopy.Generation {
					*res = staleCopy
					replaced = true
				}
				return true
			})
			if !replaced {
				t.Fatal("no current-generation entry to roll back")
			}
			res, err := srv.Search(q, r, algo, ChainMHT)
			if err != nil {
				t.Fatal(err)
			}
			err = client.Verify(q, r, res)
			if err == nil {
				t.Fatal("stale-generation cached answer verified against the advanced client")
			}
			if !errors.Is(err, ErrStaleGeneration) {
				t.Fatalf("stale replay misclassified (want ErrStaleGeneration): %v", err)
			}
		})
	}
}

// TestCacheHTTPPoisonRejectedByRemoteClient: the tamper test over a real
// HTTP boundary — a RemoteClient must reject responses served from a
// poisoned cache, for both algorithms (satellite: tamper test, HTTP).
func TestCacheHTTPPoisonRejectedByRemoteClient(t *testing.T) {
	o := owner(t)
	export, err := o.ExportClient()
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{TRA, TNRA} {
		t.Run(algo.String(), func(t *testing.T) {
			cache := NewVOCache(1 << 20)
			handler := NewHTTPHandler(o.Server(), export, WithVOCache(cache))
			hs := httptest.NewServer(handler)
			defer hs.Close()

			rc, err := NewRemoteClient(hs.URL)
			if err != nil {
				t.Fatal(err)
			}
			const q, r = "search results integrity", 3
			if _, err := rc.Search(context.Background(), q, r, algo, ChainMHT); err != nil {
				t.Fatalf("honest cached serve failed: %v", err)
			}
			poisonVO(cache, t)
			_, err = rc.Search(context.Background(), q, r, algo, ChainMHT)
			if err == nil {
				t.Fatal("remote client accepted a response from a poisoned cache")
			}
		})
	}
}

// searchBody POSTs one /v1/search request and returns the raw response
// body.
func searchBody(t *testing.T, handler http.Handler, q string, r int) []byte {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"query": q, "r": r})
	req := httptest.NewRequest(http.MethodPost, "/v1/search", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("search: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	return rec.Body.Bytes()
}

// searchBodyBinary is searchBody with binary-frame negotiation: it sets
// the Accept header and asserts the server actually answered with a
// frame.
func searchBodyBinary(t *testing.T, handler http.Handler, q string, r int) []byte {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"query": q, "r": r})
	req := httptest.NewRequest(http.MethodPost, "/v1/search", bytes.NewReader(body))
	req.Header.Set("Accept", wire.ContentType)
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("search: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("negotiated binary but got Content-Type %q", ct)
	}
	return rec.Body.Bytes()
}

// TestCacheHitByteIdenticalOnWire: the golden wire property — for the
// same (query, r, generation), a cache hit's HTTP response body is
// byte-for-byte the uncached response (satellite: wire fixture).
func TestCacheHitByteIdenticalOnWire(t *testing.T) {
	o := owner(t)
	export, err := o.ExportClient()
	if err != nil {
		t.Fatal(err)
	}
	uncachedHandler := NewHTTPHandler(o.Server(), export)
	cache := NewVOCache(1 << 20)
	cachedHandler := NewHTTPHandler(o.Server(), export, WithVOCache(cache))

	const q, r = "inverted index documents", 3
	uncached := searchBody(t, uncachedHandler, q, r)
	miss := searchBody(t, cachedHandler, q, r)
	hit := searchBody(t, cachedHandler, q, r)
	if st := cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("expected one miss then one hit, got %+v", st)
	}
	if !bytes.Equal(miss, hit) {
		t.Fatalf("cache hit body differs from the miss:\nmiss: %s\nhit:  %s", miss, hit)
	}
	// Across handler instances only server_millis (a genuine engine
	// timing) may differ; everything the client verifies is identical.
	if got, want := dropServerMillis(t, miss), dropServerMillis(t, uncached); got != want {
		t.Fatalf("cached-path body differs from the uncached server beyond timing:\nuncached: %s\ncached:   %s", want, got)
	}

	// The same property must hold when the client negotiates binary
	// frames: the cache stores results, not encodings, and the frame
	// encoder is deterministic — so a hit replays the identical frame.
	bmiss := searchBodyBinary(t, cachedHandler, q, r)
	bhit := searchBodyBinary(t, cachedHandler, q, r)
	if !bytes.Equal(bmiss, bhit) {
		t.Fatal("binary cache hit frame differs from the frame that populated it")
	}
	// The framed answer carries the same verifiable content as the JSON
	// one (the stats' server timing aside): same hits, same VO bytes.
	var jresp wire.SearchResponse
	if err := json.Unmarshal(hit, &jresp); err != nil {
		t.Fatal(err)
	}
	bresp, err := wire.DecodeSearchResponse(bhit)
	if err != nil {
		t.Fatalf("cached binary frame failed to decode: %v", err)
	}
	if !bytes.Equal(bresp.VO, jresp.VO) {
		t.Fatal("binary and JSON cache hits carry different VO bytes")
	}
	if len(bresp.Hits) != len(jresp.Hits) {
		t.Fatalf("binary cache hit has %d hits, JSON has %d", len(bresp.Hits), len(jresp.Hits))
	}
	for i := range bresp.Hits {
		if bresp.Hits[i].DocID != jresp.Hits[i].DocID ||
			!bytes.Equal(bresp.Hits[i].Content, jresp.Hits[i].Content) {
			t.Fatalf("hit %d differs between the binary and JSON cache paths", i)
		}
	}
}

// dropServerMillis canonicalises a /v1/search body with the one
// nondeterministic field (measured engine time) removed.
func dropServerMillis(t *testing.T, body []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if stats, ok := m["stats"].(map[string]any); ok {
		delete(stats, "server_millis")
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestHealthzReportsCache: /v1/healthz carries the cache counters when
// caching is on, and omits the field when off.
func TestHealthzReportsCache(t *testing.T) {
	o := owner(t)
	export, err := o.ExportClient()
	if err != nil {
		t.Fatal(err)
	}
	cache := NewVOCache(1 << 20)
	handler := NewHTTPHandler(o.Server(), export, WithVOCache(cache))
	searchBody(t, handler, "patent portal", 2)
	searchBody(t, handler, "patent portal", 2)

	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", rec.Code)
	}
	var health struct {
		Cache *struct {
			Entries       int64   `json:"entries"`
			CapacityBytes int64   `json:"capacity_bytes"`
			Hits          int64   `json:"hits"`
			Misses        int64   `json:"misses"`
			HitRate       float64 `json:"hit_rate"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Cache == nil {
		t.Fatalf("healthz missing cache stats: %s", rec.Body.String())
	}
	if health.Cache.Hits != 1 || health.Cache.Misses != 1 || health.Cache.Entries != 1 {
		t.Fatalf("healthz cache counters wrong: %+v", *health.Cache)
	}
	if health.Cache.HitRate != 0.5 {
		t.Fatalf("healthz hit_rate = %v, want 0.5", health.Cache.HitRate)
	}

	plain := NewHTTPHandler(o.Server(), export)
	rec = httptest.NewRecorder()
	plain.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if bytes.Contains(rec.Body.Bytes(), []byte(`"cache"`)) {
		t.Fatalf("uncached healthz leaked a cache field: %s", rec.Body.String())
	}
}

// TestShardedCacheHitVerifies: the fan-out cache path — a repeated
// sharded query is served from cache and still passes full sharded
// verification.
func TestShardedCacheHitVerifies(t *testing.T) {
	so, err := NewShardedOwner(newsDocs(), 3, WithFastSigner([]byte("sharded-cache")))
	if err != nil {
		t.Fatal(err)
	}
	srv := so.Server()
	cache := NewVOCache(1 << 20)
	srv.SetVOCache(cache)
	client := so.Client()

	const q, r = "patent examiner portal", 3
	miss, err := srv.Search(q, r, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := srv.Search(q, r, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("expected one miss then one hit, got %+v", st)
	}
	if len(hit.Merged) != len(miss.Merged) || len(hit.PerShard) != len(miss.PerShard) {
		t.Fatal("sharded cache hit differs from the miss")
	}
	if err := client.Verify(q, r, hit); err != nil {
		t.Fatalf("cached sharded answer failed verification: %v", err)
	}
	// And a poisoned per-shard VO is rejected.
	cache.c.Range(func(key string, gen uint64, val any) bool {
		if res, ok := val.(*ShardedResult); ok {
			for _, sr := range res.PerShard {
				if len(sr.VO) > 0 {
					sr.VO[len(sr.VO)/2] ^= 0x40
					return false
				}
			}
		}
		return true
	})
	poisoned, err := srv.Search(q, r, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Verify(q, r, poisoned); err == nil {
		t.Fatal("poisoned sharded cache entry verified")
	} else if !IsTampered(err) {
		t.Fatalf("poisoned sharded entry misclassified: %v", err)
	}
}
