package authtext

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"authtext/internal/core"
	"authtext/internal/httpapi"
	"authtext/internal/wire"
)

// RemoteClient verifies search results received over HTTP from an
// untrusted authserved instance. It fetches the owner's signed manifest
// and public key once (from /v1/manifest, or injected out of band via
// WithClientExport), then every Search answer — hits, contents, scores,
// and VO — is verified locally before it is returned, exactly as if the
// result had been produced in-process. A server, proxy, or
// man-in-the-middle that rewrites any part of a response is detected by
// verification (IsTampered reports true for the returned error), not
// trusted transport: plain HTTP is sufficient for integrity, though TLS is
// still needed for confidentiality.
type RemoteClient struct {
	base string
	hc   *http.Client
	// metrics, when non-nil, records verify latency and tamper rejections
	// (WithClientMetrics).
	metrics *Metrics

	// noBinary latches after a server answers 406 to the binary-frame
	// offer: every later request from this client goes straight to JSON
	// instead of re-offering per call (docs/PROTOCOL.md "Binary framing").
	noBinary atomic.Bool

	mu     sync.Mutex
	client *Client // verification half, nil until bootstrapped

	optErr error // deferred option failure, reported by NewRemoteClient
}

// RemoteOption customises NewRemoteClient.
type RemoteOption func(*RemoteClient)

// defaultHTTPTimeout bounds every request a remote client makes with the
// default transport: the server is untrusted, and a stalled or black-holed
// endpoint must fail the call, not hang the verifier forever.
const defaultHTTPTimeout = 30 * time.Second

// defaultHTTPClient builds the transport used when the caller supplies
// none; RemoteClient and ShardedRemoteClient share it. The transport is
// tuned for the verifier's traffic shape — many small request/response
// pairs against one or a few hosts — so connections are kept alive and
// reused instead of re-dialled per call: http.DefaultTransport caps idle
// connections per host at 2, which forces reconnects (and, under TLS,
// re-handshakes) as soon as a sharded client or batch workload fans out.
func defaultHTTPClient() *http.Client {
	return &http.Client{
		Timeout: defaultHTTPTimeout,
		Transport: &http.Transport{
			Proxy: http.ProxyFromEnvironment,
			DialContext: (&net.Dialer{
				Timeout:   10 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			ForceAttemptHTTP2:     true,
			MaxIdleConns:          256,
			MaxIdleConnsPerHost:   128,
			IdleConnTimeout:       90 * time.Second,
			TLSHandshakeTimeout:   10 * time.Second,
			ExpectContinueTimeout: 1 * time.Second,
		},
	}
}

// WithHTTPClient substitutes the transport (default: defaultHTTPClient,
// which enforces a 30 s overall timeout).
func WithHTTPClient(hc *http.Client) RemoteOption { return func(rc *RemoteClient) { rc.hc = hc } }

// WithClientMetrics records client-side verification latency
// (authtext_client_verify_seconds) and tamper rejections
// (authtext_client_tamper_rejections_total) in m, making the paper's
// three-party cost split — server, transport, verifier — observable end to
// end. The registry may be a fresh NewMetrics or one shared with a server
// in the same process.
func WithClientMetrics(m *Metrics) RemoteOption { return func(rc *RemoteClient) { rc.metrics = m } }

// WithClientExport seeds the verification material from an out-of-band
// copy of the owner's ATCX export instead of fetching /v1/manifest. Use it
// when the owner distributes the export through a channel the server
// cannot influence (the stronger deployment, see docs/PROTOCOL.md).
func WithClientExport(export []byte) RemoteOption {
	return func(rc *RemoteClient) {
		c, err := NewClientFromExport(export)
		if err != nil {
			rc.optErr = err
			return
		}
		rc.client = c
	}
}

// NewRemoteClient prepares a client for the authserved instance at
// baseURL (scheme + host[:port], e.g. "http://127.0.0.1:8080"). No
// network traffic happens until the first call.
func NewRemoteClient(baseURL string, opts ...RemoteOption) (*RemoteClient, error) {
	u, err := url.Parse(strings.TrimRight(baseURL, "/"))
	if err != nil {
		return nil, fmt.Errorf("authtext: bad server URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("authtext: bad server URL %q: scheme must be http or https", baseURL)
	}
	rc := &RemoteClient{base: u.String(), hc: defaultHTTPClient()}
	for _, opt := range opts {
		opt(rc)
	}
	if rc.optErr != nil {
		return nil, rc.optErr
	}
	return rc, nil
}

// Bootstrap fetches and verifies the owner's manifest now instead of
// lazily on the first Search. The manifest signature is checked against
// the embedded public key before it is accepted.
func (rc *RemoteClient) Bootstrap(ctx context.Context) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.bootstrapLocked(ctx)
}

func (rc *RemoteClient) bootstrapLocked(ctx context.Context) error {
	if rc.client != nil {
		return nil
	}
	m, err := rc.fetchManifest(ctx)
	if err != nil {
		return err
	}
	if m.Format != httpapi.FormatATCX {
		return fmt.Errorf("authtext: server manifest format %q not supported", m.Format)
	}
	c, err := NewClientFromExport(m.Export)
	if err != nil {
		return err
	}
	rc.client = c
	return nil
}

// fetchManifest retrieves /v1/manifest with content negotiation.
func (rc *RemoteClient) fetchManifest(ctx context.Context) (*httpapi.ManifestResponse, error) {
	var m httpapi.ManifestResponse
	err := httpDoNegotiated(rc.hc, &rc.noBinary, rc.metrics,
		func() (*http.Request, error) {
			return http.NewRequestWithContext(ctx, http.MethodGet, rc.base+httpapi.PathManifest, nil)
		},
		func(frame []byte) error {
			d, err := wire.DecodeManifestResponse(frame)
			if err != nil {
				return err
			}
			m = *d
			return nil
		}, &m)
	if err != nil {
		return nil, err
	}
	return &m, nil
}

// Generation returns the publication generation this client currently
// verifies against (0 before bootstrap or for static collections). It
// only moves forward: a server that presents an older generation is
// rejected with ErrStaleGeneration.
func (rc *RemoteClient) Generation() uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.client == nil {
		return 0
	}
	return rc.client.Generation()
}

// refreshManifest advances the verification client to the server's
// current manifest — called when a response names a newer generation than
// the client holds. Client.AdvanceExport enforces the trust rules: the
// new manifest must verify against the PINNED key and must not regress.
func (rc *RemoteClient) refreshManifest(ctx context.Context, client *Client) error {
	m, err := rc.fetchManifest(ctx)
	if err != nil {
		return err
	}
	if m.Format != httpapi.FormatATCX {
		return fmt.Errorf("authtext: server manifest format %q not supported", m.Format)
	}
	return client.AdvanceExport(m.Export)
}

// maybeAdvance refreshes the manifest when a response claims a newer
// generation. Claims of OLDER generations are not acted on — verification
// rejects them as stale via the VO stamp.
func (rc *RemoteClient) maybeAdvance(ctx context.Context, client *Client, respGen uint64) error {
	if respGen > client.Generation() {
		return rc.refreshManifest(ctx, client)
	}
	return nil
}

// Search asks the server for the top-r documents and verifies the answer
// locally against the owner's manifest — using the parameters this client
// asked for, never the server's echo. It returns the result only if
// verification succeeds; otherwise the error explains the violation and
// IsTampered reports whether it indicates server misbehaviour.
func (rc *RemoteClient) Search(ctx context.Context, query string, r int, algo Algorithm, scheme Scheme) (*SearchResult, error) {
	// Validate locally: r's zero value is "unset" on the wire, so sending
	// r<1 would make an honest server answer with its default and the
	// mismatch would misclassify as tampering during verification.
	if r < 1 || r > httpapi.MaxR {
		return nil, fmt.Errorf("authtext: result size r=%d out of range [1, %d]", r, httpapi.MaxR)
	}
	rc.mu.Lock()
	if err := rc.bootstrapLocked(ctx); err != nil {
		rc.mu.Unlock()
		return nil, err
	}
	client := rc.client
	rc.mu.Unlock()

	reqBody, err := json.Marshal(&httpapi.SearchRequest{
		Query: query, R: r, Algo: wireAlgo(algo), Scheme: wireScheme(scheme),
	})
	if err != nil {
		return nil, err
	}
	// Up to two retries absorb honest generation races: if the collection
	// is updated between the search response and the manifest refresh,
	// the answer is older than the manifest we now hold and would fail
	// verification as stale — re-asking gets a current-generation answer
	// from an honest server, while a rolled-back server keeps answering
	// old generations and still ends in ErrStaleGeneration.
	//
	// Behind a fleet front end the race has a second shape: the search
	// answer and the manifest refresh can land on DIFFERENT replicas, and
	// the manifest replica may lag the answering one mid-swap. Then the
	// refresh leaves the client behind the answer (or reports staleness
	// itself), still an honest race — so the retry condition compares the
	// two generations in both directions, and a stale manifest fetch is
	// retried rather than reported, as long as budget remains. A genuinely
	// rolled-back or equivocating fleet keeps failing and still ends in
	// ErrStaleGeneration after the budget.
	for attempt := 0; ; attempt++ {
		var sr httpapi.SearchResponse
		err := httpDoNegotiated(rc.hc, &rc.noBinary, rc.metrics,
			func() (*http.Request, error) {
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, rc.base+httpapi.PathSearch, bytes.NewReader(reqBody))
				if err != nil {
					return nil, err
				}
				req.Header.Set("Content-Type", "application/json")
				return req, nil
			},
			func(frame []byte) error {
				d, err := wire.DecodeSearchResponse(frame)
				if err != nil {
					return err
				}
				sr = *d
				return nil
			}, &sr)
		if err != nil {
			return nil, err
		}
		if err := rc.maybeAdvance(ctx, client, sr.Generation); err != nil {
			if errors.Is(err, ErrStaleGeneration) && attempt < 2 {
				continue
			}
			return nil, err
		}
		if sr.Generation != client.Generation() && attempt < 2 {
			continue
		}
		return verifyWireResult(client, rc.metrics, &sr, query, r, algo, scheme)
	}
}

// verifyWireResult converts one wire response and verifies it against the
// bootstrapped manifest, using the parameters the client asked for. m
// (nil-safe) records the verification cost and outcome.
func verifyWireResult(client *Client, m *Metrics, wire *httpapi.SearchResponse, query string, r int, algo Algorithm, scheme Scheme) (*SearchResult, error) {
	res := &SearchResult{VO: wire.VO, Generation: wire.Generation, Hits: make([]Hit, len(wire.Hits))}
	for i, h := range wire.Hits {
		res.Hits[i] = Hit{DocID: h.DocID, Score: h.Score, Content: h.Content}
	}
	res.Stats = Stats{
		Algorithm:      algo,
		Scheme:         scheme,
		QueryTerms:     wire.Stats.QueryTerms,
		EntriesRead:    wire.Stats.EntriesRead,
		EntriesPerTerm: wire.Stats.EntriesPerTerm,
		PctListRead:    wire.Stats.PctListRead,
		BlockReads:     wire.Stats.BlockReads,
		RandomReads:    wire.Stats.RandomReads,
		IOTime:         StatsDuration(wire.Stats.IOMillis),
		VOBytes:        len(wire.VO),
	}
	verifyStart := time.Now()
	err := client.Verify(query, r, res)
	m.observeVerify(time.Since(verifyStart), err)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// SearchBatch sends up to httpapi.MaxBatchQueries queries in one request;
// the server executes them concurrently. Every answer is verified locally
// exactly as in Search, and per-query failures (including verification
// failures) come back in the matching BatchItem rather than failing the
// whole batch. The returned slice has one item per query, in input order.
func (rc *RemoteClient) SearchBatch(ctx context.Context, queries []BatchQuery) ([]BatchItem, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	if len(queries) > httpapi.MaxBatchQueries {
		return nil, fmt.Errorf("authtext: batch of %d queries exceeds the server maximum of %d",
			len(queries), httpapi.MaxBatchQueries)
	}
	wireReqs := make([]httpapi.SearchRequest, len(queries))
	for i, q := range queries {
		// Validate locally: the server rejects a malformed batch WHOLE, so
		// catching a bad element here (with its index) spares the good ones.
		if q.R < 1 || q.R > httpapi.MaxR {
			return nil, fmt.Errorf("authtext: query %d: result size r=%d out of range [1, %d]", i, q.R, httpapi.MaxR)
		}
		if strings.TrimSpace(q.Query) == "" {
			return nil, fmt.Errorf("authtext: query %d: empty query", i)
		}
		if len(q.Query) > httpapi.MaxQueryBytes {
			return nil, fmt.Errorf("authtext: query %d exceeds %d bytes", i, httpapi.MaxQueryBytes)
		}
		wireReqs[i] = httpapi.SearchRequest{
			Query: q.Query, R: q.R, Algo: wireAlgo(q.Algorithm), Scheme: wireScheme(q.Scheme),
		}
	}
	rc.mu.Lock()
	if err := rc.bootstrapLocked(ctx); err != nil {
		rc.mu.Unlock()
		return nil, err
	}
	client := rc.client
	rc.mu.Unlock()

	reqBody, err := json.Marshal(&httpapi.BatchSearchRequest{Queries: wireReqs})
	if err != nil {
		return nil, err
	}
	var br httpapi.BatchSearchResponse
	// Retry loop as in Search: a live server answers the whole batch from
	// one generation; if updates raced the manifest refresh, re-ask.
	for attempt := 0; ; attempt++ {
		br = httpapi.BatchSearchResponse{}
		err := httpDoNegotiated(rc.hc, &rc.noBinary, rc.metrics,
			func() (*http.Request, error) {
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, rc.base+httpapi.PathSearch, bytes.NewReader(reqBody))
				if err != nil {
					return nil, err
				}
				req.Header.Set("Content-Type", "application/json")
				return req, nil
			},
			func(frame []byte) error {
				d, err := wire.DecodeBatchSearchResponse(frame)
				if err != nil {
					return err
				}
				br = *d
				return nil
			}, &br)
		if err != nil {
			return nil, err
		}
		if len(br.Results) != len(queries) {
			return nil, fmt.Errorf("authtext: server answered %d results for %d queries", len(br.Results), len(queries))
		}
		var maxWireGen uint64
		for i := range br.Results {
			if r := br.Results[i].Response; r != nil && r.Generation > maxWireGen {
				maxWireGen = r.Generation
			}
		}
		if err := rc.maybeAdvance(ctx, client, maxWireGen); err != nil {
			// Same cross-replica race as in Search: a lagging replica's
			// manifest is a retryable condition, not a verdict.
			if errors.Is(err, ErrStaleGeneration) && attempt < 2 {
				continue
			}
			return nil, err
		}
		if maxWireGen != 0 && maxWireGen != client.Generation() && attempt < 2 {
			continue
		}
		break
	}
	out := make([]BatchItem, len(queries))
	for i := range br.Results {
		q := queries[i]
		switch {
		case br.Results[i].Error != nil:
			out[i].Err = fmt.Errorf("authtext: query %d: server error %s: %s",
				i, br.Results[i].Error.Code, br.Results[i].Error.Message)
		case br.Results[i].Response == nil:
			out[i].Err = fmt.Errorf("authtext: query %d: empty batch result", i)
		default:
			out[i].Result, out[i].Err = verifyWireResult(client, rc.metrics, br.Results[i].Response,
				q.Query, q.R, q.Algorithm, q.Scheme)
		}
	}
	return out, nil
}

// ServerHealth mirrors the /v1/healthz payload. Shards is 0 for a
// single-collection server; Generation is 0 for a static one.
type ServerHealth struct {
	Status        string
	Documents     int
	Terms         int
	Shards        int
	Generation    uint64
	UptimeMillis  int64
	QueriesServed int64
	QueriesFailed int64
}

// Health reports the server's liveness and aggregate counters. Nothing in
// it is authenticated — it is operational data only.
func (rc *RemoteClient) Health(ctx context.Context) (*ServerHealth, error) {
	var h httpapi.Health
	if err := rc.get(ctx, httpapi.PathHealthz, &h); err != nil {
		return nil, err
	}
	return &ServerHealth{
		Status:        h.Status,
		Documents:     h.Documents,
		Terms:         h.Terms,
		Shards:        h.Shards,
		Generation:    h.Generation,
		UptimeMillis:  h.UptimeMillis,
		QueriesServed: h.QueriesServed,
		QueriesFailed: h.QueriesFailed,
	}, nil
}

func (rc *RemoteClient) get(ctx context.Context, path string, out interface{}) error {
	return httpGetJSON(ctx, rc.hc, rc.base, path, out)
}

// maxResponseBytes caps how much of a response body a remote client will
// buffer: the server is untrusted, and an endless 200 body must not
// exhaust the verifier's memory before verification can reject it.
const maxResponseBytes = 64 << 20

// httpDoNegotiated performs one request with binary-frame content
// negotiation: unless noBinary has latched, the request offers
// wire.ContentType via Accept, and the response is decoded by fromFrame
// (frame body) or into out (JSON body) depending on what the server
// chose. A 406 latches noBinary and retries the request once as plain
// JSON, which keeps this client compatible with both older servers that
// ignore Accept (they simply answer JSON) and strict ones that reject
// unknown media types. makeReq must build a fresh request per call so the
// body can be re-read on that retry.
func httpDoNegotiated(hc *http.Client, noBinary *atomic.Bool, m *Metrics,
	makeReq func() (*http.Request, error), fromFrame func([]byte) error, out interface{}) error {
	for {
		req, err := makeReq()
		if err != nil {
			return err
		}
		binary := !noBinary.Load()
		if binary {
			req.Header.Set("Accept", wire.ContentType)
		}
		resp, err := hc.Do(req)
		if err != nil {
			return fmt.Errorf("authtext: %s: %w", req.URL.Path, err)
		}
		if binary && resp.StatusCode == http.StatusNotAcceptable {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxResponseBytes))
			resp.Body.Close()
			noBinary.Store(true)
			continue
		}
		err = decodeNegotiatedBody(req.URL.Path, resp, m, fromFrame, out)
		resp.Body.Close()
		return err
	}
}

// decodeNegotiatedBody dispatches on the response Content-Type. A frame
// that fails its CRC or decode is classified as tampering (the transport
// is the untrusted party here, exactly like an undecodable VO), so
// IsTampered reports true for it.
func decodeNegotiatedBody(path string, resp *http.Response, m *Metrics,
	fromFrame func([]byte) error, out interface{}) error {
	if resp.StatusCode != http.StatusOK {
		se := httpapi.ReadErrorResponse(resp.StatusCode, resp.Body)
		return fmt.Errorf("authtext: %s: server returned %d: %w", path, se.Status, se)
	}
	ct, _, _ := strings.Cut(resp.Header.Get("Content-Type"), ";")
	if strings.EqualFold(strings.TrimSpace(ct), wire.ContentType) {
		frame, err := readCapped(resp.Body)
		if err != nil {
			return fmt.Errorf("authtext: %s: %w", path, err)
		}
		start := time.Now()
		if err := fromFrame(frame); err != nil {
			verr := &core.VerifyError{Code: core.CodeMalformedVO, Detail: err.Error()}
			m.countTamper()
			return fmt.Errorf("authtext: %s: %w", path, verr)
		}
		m.observeWireDecode(time.Since(start))
		return nil
	}
	start := time.Now()
	body := io.LimitReader(resp.Body, maxResponseBytes)
	if err := json.NewDecoder(body).Decode(out); err != nil {
		return fmt.Errorf("authtext: %s: bad response body: %w", path, err)
	}
	_, _ = io.Copy(io.Discard, body)
	m.observeWireDecode(time.Since(start))
	return nil
}

// readCapped buffers a body under maxResponseBytes, erroring (rather than
// silently truncating) when the server exceeds the cap.
func readCapped(r io.Reader) ([]byte, error) {
	b, err := io.ReadAll(io.LimitReader(r, maxResponseBytes+1))
	if err != nil {
		return nil, err
	}
	if len(b) > maxResponseBytes {
		return nil, fmt.Errorf("response body exceeds %d byte cap", maxResponseBytes)
	}
	return b, nil
}

// httpGetJSON fetches base+path and decodes the JSON body (shared by
// RemoteClient and ShardedRemoteClient).
func httpGetJSON(ctx context.Context, hc *http.Client, base, path string, out interface{}) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		return err
	}
	return httpDoJSON(hc, req, out)
}

// httpDoJSON performs a request against an untrusted server and decodes
// the (size-capped) JSON body.
func httpDoJSON(hc *http.Client, req *http.Request, out interface{}) error {
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("authtext: %s: %w", req.URL.Path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		se := httpapi.ReadErrorResponse(resp.StatusCode, resp.Body)
		return fmt.Errorf("authtext: %s: server returned %d: %w", req.URL.Path, se.Status, se)
	}
	body := io.LimitReader(resp.Body, maxResponseBytes)
	if err := json.NewDecoder(body).Decode(out); err != nil {
		return fmt.Errorf("authtext: %s: bad response body: %w", req.URL.Path, err)
	}
	// Drain (still capped) so the connection can be reused.
	_, _ = io.Copy(io.Discard, body)
	return nil
}

func wireAlgo(a Algorithm) string {
	if a == TRA {
		return httpapi.AlgoTRA
	}
	return httpapi.AlgoTNRA
}

func wireScheme(s Scheme) string {
	if s == MHT {
		return httpapi.SchemeMHT
	}
	return httpapi.SchemeCMHT
}

// parseWireAlgo / parseWireScheme invert wireAlgo / wireScheme for the
// server-side backends (inputs are already normalised by the handler).
func parseWireAlgo(s string) Algorithm {
	if s == httpapi.AlgoTRA {
		return TRA
	}
	return TNRA
}

func parseWireScheme(s string) Scheme {
	if s == httpapi.SchemeMHT {
		return MHT
	}
	return ChainMHT
}
