// Command authbench regenerates the tables and figures of the paper's
// evaluation (§4) on a synthetic WSJ-like collection.
//
// Usage:
//
//	authbench [-profile tiny|small|medium|wsj]
//	          [-fig all|4|13|14|15|table2|space|headline|snapshot|shards|concurrency|updates|cache|wire|fleet]
//	          [-queries N] [-rsa] [-out FILE] [-json FILE] [-metrics-dump] [-reuse-floor PCT]
//
// The medium profile (20,000 documents) reproduces the shape of every
// figure in minutes; wsj runs at full paper scale (172,961 documents).
// With -rsa the owner signs with RSA-1024 exactly as in the paper (slow at
// scale); the default keyed-hash signer emits RSA-sized signatures so VO
// sizes and I/O are unaffected (DESIGN.md §3.7).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"authtext"
	"authtext/internal/corpus"
	"authtext/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "authbench:", err)
		os.Exit(1)
	}
}

func run() error {
	profileName := flag.String("profile", "medium", "corpus profile: tiny, small, medium, wsj")
	fig := flag.String("fig", "all", "experiment: all, 4, 13, 14, 15, table2, space, headline, snapshot, shards, concurrency, updates, cache, wire, fleet")
	queries := flag.Int("queries", 0, "queries per sweep point (0 = profile default)")
	rsa := flag.Bool("rsa", false, "sign with RSA-1024 instead of the fast keyed-hash signer")
	outPath := flag.String("out", "", "write output to this file as well as stdout")
	jsonPath := flag.String("json", "", "write machine-readable reports of the selected experiments to this JSON file")
	metricsDump := flag.Bool("metrics-dump", false, "print the final metrics snapshot (Prometheus text format) after the run")
	reuseFloor := flag.Float64("reuse-floor", 0,
		"with -fig updates: fail unless the 'replace oldest 10%' row reuses at least this percentage of signatures")
	flag.Parse()

	var metrics *authtext.Metrics
	if *metricsDump {
		metrics = authtext.NewMetrics()
		experiments.SetMetricsSink(metrics)
	}

	profile, err := corpus.ProfileByName(*profileName)
	if err != nil {
		return err
	}
	opts := experiments.DefaultOptions()
	switch profile.Name {
	case "tiny":
		opts.Queries = 20
	case "small":
		opts.Queries = 50
	case "medium":
		opts.Queries = 100
	case "wsj":
		opts.Queries = 100
	}
	if *queries > 0 {
		opts.Queries = *queries
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(w, "authbench: profile=%s docs=%d vocab=%d queries/point=%d rsa=%v\n",
		profile.Name, profile.Docs, profile.Vocab, opts.Queries, *rsa)
	start := time.Now()
	fixture, err := experiments.NewFixture(profile, *rsa)
	if err != nil {
		return err
	}
	bs := fixture.Col.BuildStats()
	idx := fixture.Col.Index()
	fmt.Fprintf(w, "built collection: n=%d m=%d signatures=%d build=%v device=%.1f MB\n\n",
		idx.N, idx.M(), bs.Signatures, bs.BuildTime.Round(time.Millisecond),
		float64(fixture.Col.Space().DeviceBytes)/(1<<20))

	jsonOut := map[string]interface{}{}
	want := strings.Split(*fig, ",")
	has := func(name string) bool {
		for _, x := range want {
			if x == "all" || x == name {
				return true
			}
		}
		return false
	}

	if has("4") {
		experiments.Fig4(fixture, w)
		fmt.Fprintln(w)
	}
	if has("13") {
		if _, err := experiments.Fig13(fixture, opts, w); err != nil {
			return err
		}
	}
	if has("table2") {
		if _, err := experiments.Table2(fixture, opts, w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if has("14") {
		if _, err := experiments.Fig14(fixture, opts, w); err != nil {
			return err
		}
	}
	if has("15") {
		if _, err := experiments.Fig15(fixture, opts, w); err != nil {
			return err
		}
	}
	if has("space") {
		experiments.SpaceReport(fixture, w)
		fmt.Fprintln(w)
	}
	if has("headline") {
		if _, err := experiments.Headline(fixture, opts, w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if has("snapshot") {
		if _, err := experiments.SnapshotCompare(fixture, w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if has("shards") {
		if _, err := experiments.ShardCompare(profile, opts.Queries, w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if has("concurrency") {
		if _, err := experiments.ConcurrencyCompare(fixture, opts.Queries, w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if has("updates") {
		urep, err := experiments.UpdateCompare(profile, *rsa, w)
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
		if *reuseFloor > 0 {
			if err := checkReuseFloor(urep, *reuseFloor, w); err != nil {
				return err
			}
		}
	} else if *reuseFloor > 0 {
		return fmt.Errorf("-reuse-floor needs the updates experiment (-fig updates)")
	}
	if has("cache") {
		if _, err := experiments.CacheCompare(profile, opts.Queries, w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if has("wire") {
		wrep, err := experiments.WireCompare(fixture, opts, w)
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
		jsonOut["wire"] = wrep
	}
	if has("fleet") {
		frep, err := experiments.FleetCompare(profile, opts.Queries, w)
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
		jsonOut["fleet"] = frep
	}
	if *jsonPath != "" {
		if len(jsonOut) == 0 {
			return fmt.Errorf("-json: none of the selected experiments emit a JSON report")
		}
		b, err := json.MarshalIndent(jsonOut, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote JSON report: %s\n", *jsonPath)
	}
	fmt.Fprintf(w, "total experiment time: %v\n", time.Since(start).Round(time.Millisecond))
	if metrics != nil {
		fmt.Fprintf(w, "\n--- metrics snapshot (%s) ---\n", time.Since(start).Round(time.Millisecond))
		if err := metrics.WritePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}

// checkReuseFloor enforces the removal-reuse regression gate: the
// "replace oldest 10%" row must reuse at least floor percent of its
// signatures (the regime that collapsed to 0% when removals renumbered
// surviving documents).
func checkReuseFloor(rep *experiments.UpdateReport, floor float64, w io.Writer) error {
	for _, pt := range rep.Points {
		if pt.Label != "replace oldest 10%" {
			continue
		}
		if pt.ReusePct < floor {
			return fmt.Errorf("reuse floor: %q reused %.1f%% of signatures, floor is %.1f%%",
				pt.Label, pt.ReusePct, floor)
		}
		fmt.Fprintf(w, "reuse floor: %q reused %.1f%% >= %.1f%% — ok\n\n", pt.Label, pt.ReusePct, floor)
		return nil
	}
	return fmt.Errorf("reuse floor: no %q row in the updates experiment", "replace oldest 10%")
}
