package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"authtext/internal/demo"
)

func TestSnippet(t *testing.T) {
	if got := snippet([]byte("hello   world"), 20); got != "hello world" {
		t.Fatalf("snippet = %q", got)
	}
	long := strings.Repeat("word ", 30)
	got := snippet([]byte(long), 20)
	if len(got) > 24 || !strings.HasSuffix(got, "…") {
		t.Fatalf("long snippet = %q", got)
	}
}

func TestLoadDocsDemo(t *testing.T) {
	docs, names, err := loadDocs("")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != len(demo.Texts()) || len(names) != len(docs) {
		t.Fatalf("demo corpus: %d docs, %d names", len(docs), len(names))
	}
}

func TestLoadDocsDirectory(t *testing.T) {
	dir := t.TempDir()
	for _, f := range []struct{ name, body string }{
		{"b.txt", "second document about braking"},
		{"a.txt", "first document about patents"},
		{"ignored.md", "not indexed"},
	} {
		if err := os.WriteFile(filepath.Join(dir, f.name), []byte(f.body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	docs, names, err := loadDocs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("%d docs, want 2 (.md skipped)", len(docs))
	}
	// Sorted by filename.
	if names[0] != "a.txt" || names[1] != "b.txt" {
		t.Fatalf("names = %v", names)
	}
	if !strings.Contains(string(docs[0].Content), "patents") {
		t.Fatal("content mismatch")
	}
}

func TestLoadDocsEmptyDirectory(t *testing.T) {
	if _, _, err := loadDocs(t.TempDir()); err == nil {
		t.Fatal("empty directory accepted")
	}
}
