package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"authtext"
	"authtext/internal/demo"
)

func TestSnippet(t *testing.T) {
	if got := snippet([]byte("hello   world"), 20); got != "hello world" {
		t.Fatalf("snippet = %q", got)
	}
	long := strings.Repeat("word ", 30)
	got := snippet([]byte(long), 20)
	if len(got) > 24 || !strings.HasSuffix(got, "…") {
		t.Fatalf("long snippet = %q", got)
	}
}

func TestLoadDocsDemo(t *testing.T) {
	docs, names, err := demo.Load("")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != len(demo.Texts()) || len(names) != len(docs) {
		t.Fatalf("demo corpus: %d docs, %d names", len(docs), len(names))
	}
}

func TestLoadDocsDirectory(t *testing.T) {
	dir := t.TempDir()
	for _, f := range []struct{ name, body string }{
		{"b.txt", "second document about braking"},
		{"a.txt", "first document about patents"},
		{"ignored.md", "not indexed"},
	} {
		if err := os.WriteFile(filepath.Join(dir, f.name), []byte(f.body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	docs, names, err := demo.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("%d docs, want 2 (.md skipped)", len(docs))
	}
	// Sorted by filename.
	if names[0] != "a.txt" || names[1] != "b.txt" {
		t.Fatalf("names = %v", names)
	}
	if !strings.Contains(string(docs[0].Content), "patents") {
		t.Fatal("content mismatch")
	}
}

func TestLoadDocsEmptyDirectory(t *testing.T) {
	if _, _, err := demo.Load(t.TempDir()); err == nil {
		t.Fatal("empty directory accepted")
	}
}

// All usage validation happens in parseFlags, before anything is indexed
// or signed.
func TestParseFlagsValidation(t *testing.T) {
	bad := [][]string{
		{"-no-such-flag"},
		{"-serve", ":0", "-remote", "http://x"},
		{"-remote", "http://x", "-dir", "docs"},
		{"-snapshot", "x.snap", "-dir", "docs"},
		{"-snapshot", "x.snap", "-remote", "http://x"},
		{"-build"},                            // missing -o
		{"-o", "x.snap"},                      // -o without -build
		{"-build", "-o", "x", "-serve", ":0"}, // build excludes serve
		{"-algo", "bogus"},
		{"-scheme", "bogus"},
		{"-r", "0"},
		{"-shards", "-1"},
		{"-shards", "2", "-snapshot", "x"},
		{"-shards", "2", "-remote", "http://x"},
		{"stray"},
	}
	for _, args := range bad {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	if _, err := parseFlags([]string{"-help"}); err != flag.ErrHelp {
		t.Errorf("-help: got %v, want flag.ErrHelp", err)
	}
	cfg, err := parseFlags([]string{"-build", "-o", "c.snap", "-algo", "TRA", "-scheme", "MHT"})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.build || cfg.out != "c.snap" || cfg.algo != authtext.TRA || cfg.scheme != authtext.MHT {
		t.Fatalf("cfg = %+v", cfg)
	}
}

// -build -shards N -o DIR writes a sharded snapshot directory that both
// authsearch and authserved can reopen and serve.
func TestBuildShardedSnapshotDirRoundTrip(t *testing.T) {
	docs, _, err := demo.Load("")
	if err != nil {
		t.Fatal(err)
	}
	owner, err := authtext.NewShardedOwner(docs, 3, authtext.WithVocabularyProofs())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "shards")
	if err := owner.WriteSnapshotDir(dir); err != nil {
		t.Fatal(err)
	}
	if !authtext.IsShardedSnapshot(dir) {
		t.Fatal("written directory not detected as a sharded snapshot")
	}

	server, client, err := authtext.OpenShardedSnapshotDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := server.Search("search results", 3, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Merged) == 0 {
		t.Fatal("no merged hits")
	}
	if err := client.Verify("search results", 3, res); err != nil {
		t.Fatalf("sharded snapshot server failed verification: %v", err)
	}
	if err := owner.Client().Verify("search results", 3, res); err != nil {
		t.Fatalf("original sharded client rejected snapshot server: %v", err)
	}
}

// The owner-role -build mode and the reopening modes must round-trip
// through a real file on disk.
func TestBuildThenOpenSnapshotFile(t *testing.T) {
	docs, _, err := demo.Load("")
	if err != nil {
		t.Fatal(err)
	}
	owner, err := authtext.NewOwner(docs, authtext.WithVocabularyProofs())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "demo.snap")
	if err := writeSnapshot(owner, path); err != nil {
		t.Fatal(err)
	}

	server, client, err := authtext.OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := server.Search("merkle tree", 3, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Verify("merkle tree", 3, res); err != nil {
		t.Fatalf("snapshot-opened server failed verification: %v", err)
	}
	// The original owner's client accepts the same responses.
	if err := owner.Client().Verify("merkle tree", 3, res); err != nil {
		t.Fatalf("original client rejected snapshot server: %v", err)
	}
}
