// Command authsearch is an end-to-end demonstration of the authenticated
// search pipeline: it indexes a directory of .txt files (or a built-in demo
// corpus), answers queries read from stdin, and verifies every answer
// client-side before displaying it.
//
// Usage:
//
//	authsearch [-dir PATH] [-r N] [-algo tra|tnra] [-scheme mht|cmht]
//	authsearch -serve ADDR [-dir PATH]      # expose the collection over HTTP
//	authsearch -remote URL [-r N] [...]     # query a running authserved
//
// The default mode runs owner, server and client in one process. With
// -serve the process becomes an authserved-compatible HTTP server; with
// -remote it becomes the verifying client of a remote server, performing
// the same VO verification on answers received over the network.
//
// Each answer line reports the verification verdict, the similarity score,
// and the per-query costs (entries read, I/O time under the simulated disk
// model, VO size).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"authtext"
	"authtext/internal/demo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "authsearch:", err)
		os.Exit(1)
	}
}

func run() error {
	dir := flag.String("dir", "", "directory of .txt files to index (default: demo corpus)")
	r := flag.Int("r", 5, "number of results per query")
	algoName := flag.String("algo", "tnra", "query algorithm: tra or tnra")
	schemeName := flag.String("scheme", "cmht", "authentication scheme: mht or cmht")
	serveAddr := flag.String("serve", "", "serve the collection over HTTP at this address instead of the interactive prompt")
	remoteURL := flag.String("remote", "", "query a running authserved at this URL instead of building a local collection")
	flag.Parse()

	algo := authtext.TNRA
	if strings.EqualFold(*algoName, "tra") {
		algo = authtext.TRA
	}
	scheme := authtext.ChainMHT
	if strings.EqualFold(*schemeName, "mht") {
		scheme = authtext.MHT
	}

	if *remoteURL != "" && *serveAddr != "" {
		return fmt.Errorf("-serve and -remote are mutually exclusive")
	}
	if *remoteURL != "" && *dir != "" {
		return fmt.Errorf("-dir has no effect with -remote: the remote server chose its own collection")
	}
	if *remoteURL != "" {
		return runRemote(*remoteURL, *r, algo, scheme)
	}

	docs, names, err := loadDocs(*dir)
	if err != nil {
		return err
	}
	fmt.Printf("indexing %d documents and building authentication structures (RSA-1024)...\n", len(docs))
	owner, err := authtext.NewOwner(docs, authtext.WithVocabularyProofs())
	if err != nil {
		return err
	}
	buildMs, sigs, devBytes := owner.Stats()
	fmt.Printf("built in %.0f ms: %d signatures, %.1f MB on the simulated disk\n",
		buildMs, sigs, float64(devBytes)/(1<<20))

	if *serveAddr != "" {
		return serve(owner, *serveAddr)
	}

	server, client := owner.Server(), owner.Client()
	fmt.Printf("ready — %s-%s, top-%d; type a query (empty line to quit)\n", algo, scheme, *r)
	return repl(func(query string) {
		res, err := server.Search(query, *r, algo, scheme)
		if err != nil {
			fmt.Println("  error:", err)
			return
		}
		verdict := "VERIFIED"
		if err := client.Verify(query, *r, res); err != nil {
			verdict = "REJECTED: " + err.Error()
		}
		printResult(verdict, res, func(docID int) string { return names[docID] })
	})
}

// serve exposes the collection on the authserved HTTP protocol.
func serve(owner *authtext.Owner, addr string) error {
	handler, err := owner.HTTPHandler(authtext.WithQueryLog(
		func(query string, r int, st authtext.Stats, wall time.Duration) {
			fmt.Printf("query %q r=%d %s-%s vo=%dB wall=%s\n",
				query, r, st.Algorithm, st.Scheme, st.VOBytes, wall.Round(time.Microsecond))
		}))
	if err != nil {
		return err
	}
	fmt.Printf("serving /v1/search, /v1/manifest, /v1/healthz on %s\n", addr)
	srv := &http.Server{Addr: addr, Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	return srv.ListenAndServe()
}

// runRemote is the verifying-client mode: every answer from the remote
// server is verified locally before being displayed.
func runRemote(url string, r int, algo authtext.Algorithm, scheme authtext.Scheme) error {
	rc, err := authtext.NewRemoteClient(url)
	if err != nil {
		return err
	}
	ctx := context.Background()
	health, err := rc.Health(ctx)
	if err != nil {
		return fmt.Errorf("server unreachable: %w", err)
	}
	if err := rc.Bootstrap(ctx); err != nil {
		return fmt.Errorf("manifest bootstrap failed: %w", err)
	}
	fmt.Printf("connected to %s — %d documents, %d terms; manifest verified\n",
		url, health.Documents, health.Terms)
	fmt.Printf("ready — %s-%s, top-%d; type a query (empty line to quit)\n", algo, scheme, r)
	return repl(func(query string) {
		res, err := rc.Search(ctx, query, r, algo, scheme)
		if err != nil {
			if authtext.IsTampered(err) {
				fmt.Println("  [REJECTED — SERVER RESPONSE FAILED VERIFICATION]", err)
			} else {
				fmt.Println("  error:", err)
			}
			return
		}
		printResult("VERIFIED", res, func(docID int) string { return fmt.Sprintf("doc-%d", docID) })
	})
}

// repl reads queries from stdin until an empty line or EOF.
func repl(answer func(query string)) error {
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("query> ")
		if !scanner.Scan() {
			break
		}
		query := strings.TrimSpace(scanner.Text())
		if query == "" {
			break
		}
		answer(query)
	}
	return scanner.Err()
}

func printResult(verdict string, res *authtext.SearchResult, name func(docID int) string) {
	st := res.Stats
	fmt.Printf("  [%s] q=%d entries/term=%.1f io=%s vo=%dB\n",
		verdict, st.QueryTerms, st.EntriesPerTerm, st.IOTime, st.VOBytes)
	for i, h := range res.Hits {
		fmt.Printf("  %2d. (%.4f) %s: %s\n", i+1, h.Score, name(h.DocID), snippet(h.Content, 70))
	}
	if len(res.Hits) == 0 {
		fmt.Println("  no matching documents")
	}
}

// loadDocs loads the collection (kept as a thin wrapper so the demo corpus
// and directory loader are shared with cmd/authserved).
func loadDocs(dir string) ([]authtext.Document, []string, error) { return demo.Load(dir) }

func snippet(b []byte, n int) string {
	s := strings.Join(strings.Fields(string(b)), " ")
	if len(s) > n {
		return s[:n] + "…"
	}
	return s
}
