// Command authsearch is an end-to-end demonstration of the authenticated
// search pipeline: it indexes a directory of .txt files (or a built-in demo
// corpus), answers queries read from stdin, and verifies every answer
// client-side before displaying it.
//
// Usage:
//
//	authsearch [-dir PATH] [-r N] [-algo tra|tnra] [-scheme mht|cmht] [-shards N]
//	authsearch -build -o corpus.snap [-dir PATH]   # build once, write a snapshot
//	authsearch -build -shards N -o DIR [-dir PATH] # build a sharded snapshot directory
//	authsearch -snapshot corpus.snap [...]         # reopen: no rebuild, no re-signing
//	authsearch -snapshot DIR [...]                 # reopen a sharded snapshot directory
//	authsearch -serve ADDR [-dir PATH|-snapshot F] # expose the collection over HTTP
//	authsearch -remote URL [-r N] [...]            # query a running authserved
//
// The default mode runs owner, server and client in one process. With
// -shards N the corpus is split into N independently signed shards,
// queries fan out to all shards in parallel, and the client additionally
// verifies the merged global ranking (docs/SHARDING.md). With -build the
// process performs only the owner role: it builds and signs the
// collection and writes the snapshot artifact that `authserved -snapshot`
// or `authsearch -snapshot` open in milliseconds (docs/SNAPSHOT.md). With
// -serve the process becomes an authserved-compatible HTTP server; with
// -remote it becomes the verifying client of a remote server — sharded or
// not, detected from /v1/healthz — performing the same VO verification on
// answers received over the network.
//
// Each answer line reports the verification verdict, the similarity score,
// and the per-query costs (entries read, I/O time under the simulated disk
// model, VO size).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"authtext"
	"authtext/internal/demo"
)

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err == flag.ErrHelp {
		os.Exit(0)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "authsearch:", err)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "authsearch:", err)
		os.Exit(1)
	}
}

// config is the fully validated command line; producing it builds nothing.
type config struct {
	dir       string
	r         int
	algo      authtext.Algorithm
	scheme    authtext.Scheme
	serveAddr string
	remoteURL string
	build     bool
	out       string
	snapshot  string
	shards    int
}

// parseFlags parses and cross-validates the command line before any
// indexing, signing or snapshot I/O happens.
func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("authsearch", flag.ContinueOnError)
	dir := fs.String("dir", "", "directory of .txt files to index (default: demo corpus)")
	r := fs.Int("r", 5, "number of results per query")
	algoName := fs.String("algo", "tnra", "query algorithm: tra or tnra")
	schemeName := fs.String("scheme", "cmht", "authentication scheme: mht or cmht")
	serveAddr := fs.String("serve", "", "serve the collection over HTTP at this address instead of the interactive prompt")
	remoteURL := fs.String("remote", "", "query a running authserved at this URL instead of building a local collection")
	build := fs.Bool("build", false, "build the collection, write the snapshot named by -o, and exit")
	out := fs.String("o", "", "snapshot output path (with -build)")
	snap := fs.String("snapshot", "", "open this snapshot (file or sharded directory) instead of building a collection")
	shards := fs.Int("shards", 0, "split the corpus into N independently signed shards")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() > 0 {
		return config{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	cfg := config{
		dir: *dir, r: *r, serveAddr: *serveAddr, remoteURL: *remoteURL,
		build: *build, out: *out, snapshot: *snap, shards: *shards,
		algo: authtext.TNRA, scheme: authtext.ChainMHT,
	}
	if strings.EqualFold(*algoName, "tra") {
		cfg.algo = authtext.TRA
	} else if !strings.EqualFold(*algoName, "tnra") {
		return config{}, fmt.Errorf("unknown -algo %q", *algoName)
	}
	if strings.EqualFold(*schemeName, "mht") {
		cfg.scheme = authtext.MHT
	} else if !strings.EqualFold(*schemeName, "cmht") {
		return config{}, fmt.Errorf("unknown -scheme %q", *schemeName)
	}
	if cfg.r < 1 {
		return config{}, fmt.Errorf("-r %d out of range", cfg.r)
	}
	if cfg.shards < 0 {
		return config{}, fmt.Errorf("-shards %d out of range", cfg.shards)
	}
	if cfg.shards > 0 && cfg.snapshot != "" {
		return config{}, errors.New("-shards and -snapshot are mutually exclusive: a sharded snapshot directory fixes its own shard count")
	}
	if cfg.shards > 0 && cfg.remoteURL != "" {
		return config{}, errors.New("-shards has no effect with -remote: the remote server chose its own shard count")
	}

	if cfg.remoteURL != "" && cfg.serveAddr != "" {
		return config{}, errors.New("-serve and -remote are mutually exclusive")
	}
	if cfg.remoteURL != "" && cfg.dir != "" {
		return config{}, errors.New("-dir has no effect with -remote: the remote server chose its own collection")
	}
	if cfg.snapshot != "" && cfg.dir != "" {
		return config{}, errors.New("-snapshot and -dir are mutually exclusive: the snapshot already contains its collection")
	}
	if cfg.snapshot != "" && cfg.remoteURL != "" {
		return config{}, errors.New("-snapshot has no effect with -remote")
	}
	if cfg.build {
		if cfg.out == "" {
			return config{}, errors.New("-build requires -o FILE")
		}
		if cfg.snapshot != "" || cfg.serveAddr != "" || cfg.remoteURL != "" {
			return config{}, errors.New("-build only builds: it excludes -snapshot, -serve and -remote")
		}
	} else if cfg.out != "" {
		return config{}, errors.New("-o requires -build")
	}
	return cfg, nil
}

func run(cfg config) error {
	if cfg.remoteURL != "" {
		return runRemote(cfg.remoteURL, cfg.r, cfg.algo, cfg.scheme)
	}
	if cfg.shards > 0 || (cfg.snapshot != "" && authtext.IsShardedSnapshot(cfg.snapshot)) {
		return runSharded(cfg)
	}

	var (
		server *authtext.Server
		client *authtext.Client
		names  func(docID int) string
	)
	if cfg.snapshot != "" {
		start := time.Now()
		var err error
		server, client, err = authtext.OpenSnapshotFile(cfg.snapshot)
		if err != nil {
			return err
		}
		fmt.Printf("opened snapshot %s in %s (no rebuild, no re-signing)\n",
			cfg.snapshot, time.Since(start).Round(time.Millisecond))
		names = func(docID int) string { return fmt.Sprintf("doc-%d", docID) }
	} else {
		docs, docNames, err := demo.Load(cfg.dir)
		if err != nil {
			return err
		}
		fmt.Printf("indexing %d documents and building authentication structures (RSA-1024)...\n", len(docs))
		owner, err := authtext.NewOwner(docs, authtext.WithVocabularyProofs())
		if err != nil {
			return err
		}
		buildMs, sigs, devBytes := owner.Stats()
		fmt.Printf("built in %.0f ms: %d signatures, %.1f MB on the simulated disk\n",
			buildMs, sigs, float64(devBytes)/(1<<20))

		if cfg.build {
			return writeSnapshot(owner, cfg.out)
		}
		server, client = owner.Server(), owner.Client()
		names = func(docID int) string { return docNames[docID] }
	}

	if cfg.serveAddr != "" {
		return serve(server, client, cfg.serveAddr)
	}

	fmt.Printf("ready — %s-%s, top-%d; type a query (empty line to quit)\n", cfg.algo, cfg.scheme, cfg.r)
	return repl(func(query string) {
		res, err := server.Search(query, cfg.r, cfg.algo, cfg.scheme)
		if err != nil {
			fmt.Println("  error:", err)
			return
		}
		verdict := "VERIFIED"
		if err := client.Verify(query, cfg.r, res); err != nil {
			verdict = "REJECTED: " + err.Error()
		}
		printResult(verdict, res, names)
	})
}

// runSharded is the sharded counterpart of run's local modes: build a
// sharded snapshot directory, serve the sharded HTTP protocol, or answer
// interactive queries with parallel fan-out and full client verification.
func runSharded(cfg config) error {
	var (
		server *authtext.ShardedServer
		client *authtext.ShardedClient
	)
	if cfg.snapshot != "" {
		start := time.Now()
		var err error
		server, client, err = authtext.OpenShardedSnapshotDir(cfg.snapshot)
		if err != nil {
			return err
		}
		fmt.Printf("opened sharded snapshot %s (%d shards) in %s (no rebuild, no re-signing)\n",
			cfg.snapshot, server.Shards(), time.Since(start).Round(time.Millisecond))
	} else {
		docs, _, err := demo.Load(cfg.dir)
		if err != nil {
			return err
		}
		fmt.Printf("indexing %d documents into %d shards, building authentication structures (RSA-1024)...\n",
			len(docs), cfg.shards)
		owner, err := authtext.NewShardedOwner(docs, cfg.shards, authtext.WithVocabularyProofs())
		if err != nil {
			return err
		}
		buildMs, sigs, devBytes := owner.Stats()
		fmt.Printf("built %d shards in %.0f ms (parallel): %d signatures, %.1f MB on the simulated disks\n",
			owner.Shards(), buildMs, sigs, float64(devBytes)/(1<<20))

		if cfg.build {
			if err := owner.WriteSnapshotDir(cfg.out); err != nil {
				return err
			}
			fmt.Printf("wrote sharded snapshot directory %s (%d shards); serve it with: authserved -snapshot %s\n",
				cfg.out, owner.Shards(), cfg.out)
			return nil
		}
		server, client = owner.Server(), owner.Client()
	}

	if cfg.serveAddr != "" {
		export, err := server.ExportClient()
		if err != nil {
			return err
		}
		handler := authtext.NewShardedHTTPHandler(server, export)
		fmt.Printf("serving /v1/shards/search, /v1/shards/manifest, /v1/healthz on %s (%d shards)\n",
			cfg.serveAddr, server.Shards())
		srv := &http.Server{Addr: cfg.serveAddr, Handler: handler, ReadHeaderTimeout: 5 * time.Second}
		return srv.ListenAndServe()
	}

	fmt.Printf("ready — %s-%s, top-%d over %d shards; type a query (empty line to quit)\n",
		cfg.algo, cfg.scheme, cfg.r, server.Shards())
	return repl(func(query string) {
		res, err := server.Search(query, cfg.r, cfg.algo, cfg.scheme)
		if err != nil {
			fmt.Println("  error:", err)
			return
		}
		verdict := "VERIFIED"
		if err := client.Verify(query, cfg.r, res); err != nil {
			verdict = "REJECTED: " + err.Error()
		}
		printShardedResult(verdict, res)
	})
}

// writeSnapshot persists the built collection (owner role of the
// build-once / serve-many deployment).
func writeSnapshot(owner *authtext.Owner, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := owner.WriteSnapshot(f); err != nil {
		f.Close()
		os.Remove(path) // don't leave a truncated artifact behind
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("wrote snapshot %s (%.1f MB); serve it with: authserved -snapshot %s\n",
		path, float64(info.Size())/(1<<20), path)
	return nil
}

// serve exposes the collection on the authserved HTTP protocol.
func serve(server *authtext.Server, client *authtext.Client, addr string) error {
	export, err := client.Export()
	if err != nil {
		return err
	}
	handler := authtext.NewHTTPHandler(server, export, authtext.WithQueryLog(
		func(query string, r int, st authtext.Stats, wall time.Duration) {
			fmt.Printf("query %q r=%d %s-%s vo=%dB wall=%s\n",
				query, r, st.Algorithm, st.Scheme, st.VOBytes, wall.Round(time.Microsecond))
		}))
	fmt.Printf("serving /v1/search, /v1/manifest, /v1/healthz on %s\n", addr)
	srv := &http.Server{Addr: addr, Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	return srv.ListenAndServe()
}

// runRemote is the verifying-client mode: every answer from the remote
// server is verified locally before being displayed. Sharded deployments
// are detected from /v1/healthz and queried over the sharded protocol.
func runRemote(url string, r int, algo authtext.Algorithm, scheme authtext.Scheme) error {
	rc, err := authtext.NewRemoteClient(url)
	if err != nil {
		return err
	}
	ctx := context.Background()
	health, err := rc.Health(ctx)
	if err != nil {
		return fmt.Errorf("server unreachable: %w", err)
	}
	if health.Shards > 0 {
		return runShardedRemote(url, r, algo, scheme, health)
	}
	if err := rc.Bootstrap(ctx); err != nil {
		return fmt.Errorf("manifest bootstrap failed: %w", err)
	}
	if health.Generation > 0 {
		fmt.Printf("connected to %s — %d documents, %d terms, live generation %d; manifest verified\n",
			url, health.Documents, health.Terms, health.Generation)
	} else {
		fmt.Printf("connected to %s — %d documents, %d terms; manifest verified\n",
			url, health.Documents, health.Terms)
	}
	fmt.Printf("ready — %s-%s, top-%d; type a query (empty line to quit)\n", algo, scheme, r)
	return repl(func(query string) {
		res, err := rc.Search(ctx, query, r, algo, scheme)
		if err != nil {
			if authtext.IsTampered(err) {
				fmt.Println("  [REJECTED — SERVER RESPONSE FAILED VERIFICATION]", err)
			} else {
				fmt.Println("  error:", err)
			}
			return
		}
		label := "VERIFIED"
		if res.Generation > 0 {
			label = fmt.Sprintf("VERIFIED @ generation %d", res.Generation)
		}
		printResult(label, res, func(docID int) string { return fmt.Sprintf("doc-%d", docID) })
	})
}

// runShardedRemote is the verifying-client mode against a sharded
// deployment: every shard answer and the merged ranking are verified
// locally before being displayed.
func runShardedRemote(url string, r int, algo authtext.Algorithm, scheme authtext.Scheme, health *authtext.ServerHealth) error {
	rc, err := authtext.NewShardedRemoteClient(url)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if err := rc.Bootstrap(ctx); err != nil {
		return fmt.Errorf("sharded manifest bootstrap failed: %w", err)
	}
	fmt.Printf("connected to %s — %d documents across %d shards; set manifest verified\n",
		url, health.Documents, rc.Shards())
	fmt.Printf("ready — %s-%s, top-%d; type a query (empty line to quit)\n", algo, scheme, r)
	return repl(func(query string) {
		res, err := rc.Search(ctx, query, r, algo, scheme)
		if err != nil {
			if authtext.IsTampered(err) {
				fmt.Println("  [REJECTED — SERVER RESPONSE FAILED VERIFICATION]", err)
			} else {
				fmt.Println("  error:", err)
			}
			return
		}
		printShardedResult("VERIFIED", res)
	})
}

// repl reads queries from stdin until an empty line or EOF.
func repl(answer func(query string)) error {
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("query> ")
		if !scanner.Scan() {
			break
		}
		query := strings.TrimSpace(scanner.Text())
		if query == "" {
			break
		}
		answer(query)
	}
	return scanner.Err()
}

func printResult(verdict string, res *authtext.SearchResult, name func(docID int) string) {
	st := res.Stats
	fmt.Printf("  [%s] q=%d entries/term=%.1f io=%s vo=%dB\n",
		verdict, st.QueryTerms, st.EntriesPerTerm, st.IOTime, st.VOBytes)
	for i, h := range res.Hits {
		fmt.Printf("  %2d. (%.4f) %s: %s\n", i+1, h.Score, name(h.DocID), snippet(h.Content, 70))
	}
	if len(res.Hits) == 0 {
		fmt.Println("  no matching documents")
	}
}

func printShardedResult(verdict string, res *authtext.ShardedResult) {
	st := res.Stats
	fmt.Printf("  [%s] shards=%d entries=%d io=%s vo=%dB wall=%s\n",
		verdict, st.Shards, st.EntriesRead, st.IOTime, st.VOBytes, st.Wall.Round(time.Microsecond))
	for i, h := range res.Merged {
		fmt.Printf("  %2d. (%.4f) doc-%d [shard %d]: %s\n", i+1, h.Score, h.GlobalID, h.Shard, snippet(h.Content, 70))
	}
	if len(res.Merged) == 0 {
		fmt.Println("  no matching documents")
	}
}

func snippet(b []byte, n int) string {
	s := strings.Join(strings.Fields(string(b)), " ")
	if len(s) > n {
		return s[:n] + "…"
	}
	return s
}
