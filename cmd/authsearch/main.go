// Command authsearch is an end-to-end demonstration of the authenticated
// search pipeline: it indexes a directory of .txt files (or a built-in demo
// corpus), answers queries read from stdin, and verifies every answer
// client-side before displaying it.
//
// Usage:
//
//	authsearch [-dir PATH] [-r N] [-algo tra|tnra] [-scheme mht|cmht]
//
// Each answer line reports the verification verdict, the similarity score,
// and the per-query costs (entries read, I/O time under the simulated disk
// model, VO size).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"authtext"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "authsearch:", err)
		os.Exit(1)
	}
}

func run() error {
	dir := flag.String("dir", "", "directory of .txt files to index (default: demo corpus)")
	r := flag.Int("r", 5, "number of results per query")
	algoName := flag.String("algo", "tnra", "query algorithm: tra or tnra")
	schemeName := flag.String("scheme", "cmht", "authentication scheme: mht or cmht")
	flag.Parse()

	algo := authtext.TNRA
	if strings.EqualFold(*algoName, "tra") {
		algo = authtext.TRA
	}
	scheme := authtext.ChainMHT
	if strings.EqualFold(*schemeName, "mht") {
		scheme = authtext.MHT
	}

	docs, names, err := loadDocs(*dir)
	if err != nil {
		return err
	}
	fmt.Printf("indexing %d documents and building authentication structures (RSA-1024)...\n", len(docs))
	owner, err := authtext.NewOwner(docs, authtext.WithVocabularyProofs())
	if err != nil {
		return err
	}
	buildMs, sigs, devBytes := owner.Stats()
	fmt.Printf("built in %.0f ms: %d signatures, %.1f MB on the simulated disk\n",
		buildMs, sigs, float64(devBytes)/(1<<20))
	server, client := owner.Server(), owner.Client()

	fmt.Printf("ready — %s-%s, top-%d; type a query (empty line to quit)\n", algo, scheme, *r)
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("query> ")
		if !scanner.Scan() {
			break
		}
		query := strings.TrimSpace(scanner.Text())
		if query == "" {
			break
		}
		res, err := server.Search(query, *r, algo, scheme)
		if err != nil {
			fmt.Println("  error:", err)
			continue
		}
		verdict := "VERIFIED"
		if err := client.Verify(query, *r, res); err != nil {
			verdict = "REJECTED: " + err.Error()
		}
		st := res.Stats
		fmt.Printf("  [%s] q=%d entries/term=%.1f io=%s vo=%dB\n",
			verdict, st.QueryTerms, st.EntriesPerTerm, st.IOTime, st.VOBytes)
		for i, h := range res.Hits {
			fmt.Printf("  %2d. (%.4f) %s: %s\n", i+1, h.Score, names[h.DocID], snippet(h.Content, 70))
		}
		if len(res.Hits) == 0 {
			fmt.Println("  no matching documents")
		}
	}
	return scanner.Err()
}

func loadDocs(dir string) ([]authtext.Document, []string, error) {
	if dir == "" {
		docs := make([]authtext.Document, len(demoCorpus))
		names := make([]string, len(demoCorpus))
		for i, text := range demoCorpus {
			docs[i] = authtext.Document{Content: []byte(text)}
			names[i] = fmt.Sprintf("demo-%02d", i)
		}
		return docs, names, nil
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.txt"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(entries)
	if len(entries) == 0 {
		return nil, nil, fmt.Errorf("no .txt files in %s", dir)
	}
	var docs []authtext.Document
	var names []string
	for _, path := range entries {
		content, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		docs = append(docs, authtext.Document{Content: content})
		names = append(names, filepath.Base(path))
	}
	return docs, names, nil
}

func snippet(b []byte, n int) string {
	s := strings.Join(strings.Fields(string(b)), " ")
	if len(s) > n {
		return s[:n] + "…"
	}
	return s
}

// demoCorpus paraphrases the paper's own subject matter, so queries like
// "inverted index", "threshold algorithm" or "merkle tree" return sensible
// results out of the box.
var demoCorpus = []string{
	"Professional users in the financial and legal industries require integrity assurance from paid content services.",
	"A patent examiner using the web portal expects the same search results as the up-to-date CD-ROM edition.",
	"A breached server that is not detected in time may return incorrect results to its users.",
	"An attacker could make patents drop out of the search results by tampering with the index or the ranking function.",
	"Altered rankings divert the searcher's attention from certain patents by reordering the results.",
	"Spurious results with fake patents may discourage potential competitors from filing applications.",
	"Most text search engines rate document similarity with an inverted index over the dictionary terms.",
	"The frequency ordered inverted index stores impact entries sorted by descending term frequency.",
	"The Okapi formulation weighs terms by their frequency in the document and across the collection.",
	"A merkle hash tree authenticates a set of messages by signing only the digest of its root node.",
	"The verification object contains the digests needed to recompute the signed root of the tree.",
	"Threshold algorithms pop the entry with the highest term score and stop at the cut off threshold.",
	"Random access fetches the term frequencies of a document directly from its document record.",
	"Sorted access alone maintains lower and upper bounds for the score of every candidate document.",
	"Chains of block trees verify the leading blocks of a list with a single stored signature.",
	"Buddy leaves are cheaper to transmit than the digests that would otherwise cover their group.",
	"The user recomputes every score and checks that no excluded document can outrank the results.",
	"Signatures generated with the private key of the owner verify with the published public key.",
	"An audit trail archives the verification objects to justify any decision taken by the user.",
	"Query processing costs are dominated by the disk reads of inverted list blocks and records.",
}
