// Command authserved serves an authenticated document collection over
// HTTP. It plays the untrusted-server role of the Pang & Mouratidis
// three-party protocol: it indexes a directory of .txt files (or the
// built-in demo corpus), builds and signs the authentication structures
// on startup, and then answers concurrent queries on the versioned JSON
// API documented in docs/PROTOCOL.md:
//
//	POST /v1/search   top-r query → hits + verification object
//	GET  /v1/manifest signed manifest + public key (client bootstrap)
//	GET  /v1/healthz  liveness, collection shape, serving counters
//
// Remote users verify every answer locally with authtext.RemoteClient (or
// `authsearch -remote URL`); nothing the daemon returns needs to be
// trusted.
//
// Usage:
//
//	authserved [-addr :8470] [-dir PATH] [-vocab-proofs] [-quiet]
//
// In a real deployment the owner would build and sign the collection
// offline and hand only the serving half to the host; authserved performs
// both roles in one process for convenience, which changes where the key
// lives but not the verification protocol.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"authtext"
	"authtext/internal/demo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "authserved:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8470", "listen address")
	dir := flag.String("dir", "", "directory of .txt files to index (default: demo corpus)")
	vocab := flag.Bool("vocab-proofs", true, "prove non-membership of out-of-dictionary query terms")
	quiet := flag.Bool("quiet", false, "suppress per-query log lines")
	flag.Parse()

	logger := log.New(os.Stderr, "authserved ", log.LstdFlags)
	handler, err := buildHandler(*dir, *vocab, *quiet, logger)
	if err != nil {
		return err
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		logger.Printf("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// buildHandler indexes the collection and wires it to the /v1 protocol.
func buildHandler(dir string, vocab, quiet bool, logger *log.Logger) (http.Handler, error) {
	docs, _, err := demo.Load(dir)
	if err != nil {
		return nil, err
	}
	logger.Printf("indexing %d documents and building authentication structures (RSA-1024)...", len(docs))
	var opts []authtext.Option
	if vocab {
		opts = append(opts, authtext.WithVocabularyProofs())
	}
	owner, err := authtext.NewOwner(docs, opts...)
	if err != nil {
		return nil, err
	}
	buildMs, sigs, devBytes := owner.Stats()
	logger.Printf("built in %.0f ms: %d signatures, %.1f MB on the simulated disk",
		buildMs, sigs, float64(devBytes)/(1<<20))

	var handlerOpts []authtext.HandlerOption
	if !quiet {
		handlerOpts = append(handlerOpts, authtext.WithQueryLog(
			func(query string, r int, st authtext.Stats, wall time.Duration) {
				logger.Printf("query %q r=%d %s-%s terms=%d entries/term=%.1f io=%s vo=%dB wall=%s",
					query, r, st.Algorithm, st.Scheme, st.QueryTerms, st.EntriesPerTerm,
					st.IOTime, st.VOBytes, wall.Round(time.Microsecond))
			}))
	}
	return owner.HTTPHandler(handlerOpts...)
}
