// Command authserved serves an authenticated document collection over
// HTTP. It plays the untrusted-server role of the Pang & Mouratidis
// three-party protocol: it either opens a pre-built snapshot (the
// production deployment — the owner built and signed elsewhere, this host
// holds no private key) or indexes a directory of .txt files / the
// built-in demo corpus on startup, and then answers concurrent queries on
// the versioned JSON API documented in docs/PROTOCOL.md:
//
//	POST /v1/search   top-r query → hits + verification object
//	GET  /v1/manifest signed manifest + public key (client bootstrap)
//	GET  /v1/healthz  liveness, collection shape, serving counters
//
// Remote users verify every answer locally with authtext.RemoteClient (or
// `authsearch -remote URL`); nothing the daemon returns needs to be
// trusted — a tampered snapshot, index or response fails client
// verification (docs/SNAPSHOT.md describes the trust model).
//
// Usage:
//
//	authserved [-addr :8470] [-snapshot FILE|DIR | -dir PATH] [-shards N] [-vocab-proofs] [-quiet]
//
// With -snapshot the daemon boots in milliseconds from an artifact
// produced by `authsearch -build -o FILE`; nothing is re-tokenised,
// re-indexed or re-signed. When the snapshot path is a DIRECTORY written
// by `authsearch -build -shards N -o DIR`, the daemon serves the sharded
// protocol (/v1/shards/search, /v1/shards/manifest) with parallel query
// fan-out over every shard. Without -snapshot the daemon performs the
// owner role in-process for convenience; adding -shards N splits the
// corpus into N independently signed shards at startup.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"authtext"
	"authtext/internal/demo"
)

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err == flag.ErrHelp {
		os.Exit(0)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "authserved:", err)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "authserved:", err)
		os.Exit(1)
	}
}

// config is the fully validated command line. Producing it must not build
// anything: flag errors and -help exit before any indexing or signing
// happens.
type config struct {
	addr     string
	dir      string
	snapshot string
	shards   int
	vocab    bool
	quiet    bool
}

// parseFlags parses and cross-validates the command line. It is the only
// step allowed to fail with a usage error, and it runs to completion
// before any collection work starts.
func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("authserved", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", ":8470", "listen address")
	fs.StringVar(&cfg.dir, "dir", "", "directory of .txt files to index (default: demo corpus)")
	fs.StringVar(&cfg.snapshot, "snapshot", "", "boot from this snapshot file (or sharded snapshot directory) instead of building a collection")
	fs.IntVar(&cfg.shards, "shards", 0, "split the corpus into N independently signed shards (build mode)")
	fs.BoolVar(&cfg.vocab, "vocab-proofs", true, "prove non-membership of out-of-dictionary query terms (build mode)")
	fs.BoolVar(&cfg.quiet, "quiet", false, "suppress per-query log lines")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() > 0 {
		return config{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.snapshot != "" && cfg.dir != "" {
		return config{}, errors.New("-snapshot and -dir are mutually exclusive: the snapshot already contains its collection")
	}
	if cfg.addr == "" {
		return config{}, errors.New("-addr must not be empty")
	}
	if cfg.shards < 0 {
		return config{}, fmt.Errorf("-shards %d out of range", cfg.shards)
	}
	if cfg.shards > 0 && cfg.snapshot != "" {
		return config{}, errors.New("-shards and -snapshot are mutually exclusive: a sharded snapshot directory fixes its own shard count")
	}
	if cfg.snapshot != "" {
		if _, err := os.Stat(cfg.snapshot); err != nil {
			return config{}, fmt.Errorf("snapshot: %w", err)
		}
	}
	return cfg, nil
}

func run(cfg config) error {
	logger := log.New(os.Stderr, "authserved ", log.LstdFlags)
	handler, err := buildHandler(cfg, logger)
	if err != nil {
		return err
	}

	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", cfg.addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		logger.Printf("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// buildHandler produces the /v1 handler: warm start from a snapshot, or
// cold build from documents.
func buildHandler(cfg config, logger *log.Logger) (http.Handler, error) {
	queryLogOpts := func() []authtext.HandlerOption {
		if cfg.quiet {
			return nil
		}
		return []authtext.HandlerOption{authtext.WithQueryLog(
			func(query string, r int, st authtext.Stats, wall time.Duration) {
				logger.Printf("query %q r=%d %s-%s terms=%d entries/term=%.1f io=%s vo=%dB wall=%s",
					query, r, st.Algorithm, st.Scheme, st.QueryTerms, st.EntriesPerTerm,
					st.IOTime, st.VOBytes, wall.Round(time.Microsecond))
			})}
	}

	shardedLogOpts := func() []authtext.ShardedHandlerOption {
		if cfg.quiet {
			return nil
		}
		return []authtext.ShardedHandlerOption{authtext.WithShardedQueryLog(
			func(query string, r int, st authtext.ShardedStats, wall time.Duration) {
				logger.Printf("query %q r=%d %s-%s shards=%d entries=%d io=%s vo=%dB wall=%s",
					query, r, st.Algorithm, st.Scheme, st.Shards, st.EntriesRead,
					st.IOTime, st.VOBytes, wall.Round(time.Microsecond))
			})}
	}

	if cfg.snapshot != "" {
		start := time.Now()
		if authtext.IsShardedSnapshot(cfg.snapshot) {
			server, _, err := authtext.OpenShardedSnapshotDir(cfg.snapshot)
			if err != nil {
				return nil, err
			}
			// Export from the opened set (not a second read of shards.atsx),
			// so the published material always matches the serving shards.
			export, err := server.ExportClient()
			if err != nil {
				return nil, err
			}
			logger.Printf("opened sharded snapshot %s (%d shards) in %s (no re-indexing, no re-signing)",
				cfg.snapshot, server.Shards(), time.Since(start).Round(time.Millisecond))
			return authtext.NewShardedHTTPHandler(server, export, shardedLogOpts()...), nil
		}
		server, client, err := authtext.OpenSnapshotFile(cfg.snapshot)
		if err != nil {
			return nil, err
		}
		export, err := client.Export()
		if err != nil {
			return nil, fmt.Errorf("snapshot has no publishable key (fast-signer build?): %w", err)
		}
		logger.Printf("opened snapshot %s in %s (no re-indexing, no re-signing)",
			cfg.snapshot, time.Since(start).Round(time.Millisecond))
		return authtext.NewHTTPHandler(server, export, queryLogOpts()...), nil
	}

	docs, _, err := demo.Load(cfg.dir)
	if err != nil {
		return nil, err
	}
	var opts []authtext.Option
	if cfg.vocab {
		opts = append(opts, authtext.WithVocabularyProofs())
	}
	if cfg.shards > 0 {
		logger.Printf("indexing %d documents into %d shards, building authentication structures (RSA-1024)...",
			len(docs), cfg.shards)
		owner, err := authtext.NewShardedOwner(docs, cfg.shards, opts...)
		if err != nil {
			return nil, err
		}
		buildMs, sigs, devBytes := owner.Stats()
		logger.Printf("built %d shards in %.0f ms (parallel): %d signatures, %.1f MB on the simulated disks",
			owner.Shards(), buildMs, sigs, float64(devBytes)/(1<<20))
		return owner.HTTPHandler(shardedLogOpts()...)
	}
	logger.Printf("indexing %d documents and building authentication structures (RSA-1024)...", len(docs))
	owner, err := authtext.NewOwner(docs, opts...)
	if err != nil {
		return nil, err
	}
	buildMs, sigs, devBytes := owner.Stats()
	logger.Printf("built in %.0f ms: %d signatures, %.1f MB on the simulated disk",
		buildMs, sigs, float64(devBytes)/(1<<20))
	return owner.HTTPHandler(queryLogOpts()...)
}
