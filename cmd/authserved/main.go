// Command authserved serves an authenticated document collection over
// HTTP. It plays the untrusted-server role of the Pang & Mouratidis
// three-party protocol: it either opens a pre-built snapshot (the
// production deployment — the owner built and signed elsewhere, this host
// holds no private key) or indexes a directory of .txt files / the
// built-in demo corpus on startup, and then answers concurrent queries on
// the versioned JSON API documented in docs/PROTOCOL.md:
//
//	POST /v1/search   top-r query → hits + verification object
//	GET  /v1/manifest signed manifest + public key (client bootstrap)
//	GET  /v1/healthz  liveness, collection shape, serving counters
//
// Remote users verify every answer locally with authtext.RemoteClient (or
// `authsearch -remote URL`); nothing the daemon returns needs to be
// trusted — a tampered snapshot, index or response fails client
// verification (docs/SNAPSHOT.md describes the trust model).
//
// Usage:
//
//	authserved [-addr :8470] [-snapshot FILE|DIR | -dir PATH] [-shards N]
//	           [-live [-live-snapshots DIR]] [-watch DUR] [-cache-mb N]
//	           [-vocab-proofs] [-quiet]
//
// With -snapshot the daemon boots in milliseconds from an artifact
// produced by `authsearch -build -o FILE`; nothing is re-tokenised,
// re-indexed or re-signed. When the snapshot path is a DIRECTORY written
// by `authsearch -build -shards N -o DIR`, the daemon serves the sharded
// protocol (/v1/shards/search, /v1/shards/manifest) with parallel query
// fan-out over every shard; when it is a per-generation snapshot
// directory written by a live owner (gen-NNNNNNNNNNNN.atsn files,
// docs/UPDATES.md), the daemon serves the latest generation and — with
// -watch — hot-swaps to newer generations as they appear. Without
// -snapshot the daemon performs the owner role in-process for
// convenience; adding -shards N splits the corpus into N independently
// signed shards at startup, and -live additionally accepts document
// add/remove batches on /v1/admin/update, publishing a new signed
// generation per batch (persisted per generation with -live-snapshots).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"authtext"
	"authtext/internal/demo"
)

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err == flag.ErrHelp {
		os.Exit(0)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "authserved:", err)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "authserved:", err)
		os.Exit(1)
	}
}

// config is the fully validated command line. Producing it must not build
// anything: flag errors and -help exit before any indexing or signing
// happens.
type config struct {
	addr      string
	dir       string
	snapshot  string
	shards    int
	vocab     bool
	quiet     bool
	live      bool
	liveSnaps string
	watch     time.Duration
	cacheMB   int
}

// parseFlags parses and cross-validates the command line. It is the only
// step allowed to fail with a usage error, and it runs to completion
// before any collection work starts.
func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("authserved", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", ":8470", "listen address")
	fs.StringVar(&cfg.dir, "dir", "", "directory of .txt files to index (default: demo corpus)")
	fs.StringVar(&cfg.snapshot, "snapshot", "", "boot from this snapshot file (or sharded snapshot directory) instead of building a collection")
	fs.IntVar(&cfg.shards, "shards", 0, "split the corpus into N independently signed shards (build mode)")
	fs.BoolVar(&cfg.vocab, "vocab-proofs", true, "prove non-membership of out-of-dictionary query terms (build mode)")
	fs.BoolVar(&cfg.quiet, "quiet", false, "suppress per-query log lines")
	fs.BoolVar(&cfg.live, "live", false, "accept document updates on /v1/admin/update (build mode); every batch publishes a new signed generation")
	fs.StringVar(&cfg.liveSnaps, "live-snapshots", "", "with -live: persist every published generation as an ATSN snapshot in this directory")
	fs.DurationVar(&cfg.watch, "watch", 0, "with -snapshot DIR of per-generation snapshots: poll at this interval and hot-swap to new generations")
	fs.IntVar(&cfg.cacheMB, "cache-mb", 0, "serve repeat queries from an in-memory VO cache bounded by N MiB of encoded answers (0 disables); document updates invalidate it automatically")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() > 0 {
		return config{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.snapshot != "" && cfg.dir != "" {
		return config{}, errors.New("-snapshot and -dir are mutually exclusive: the snapshot already contains its collection")
	}
	if cfg.addr == "" {
		return config{}, errors.New("-addr must not be empty")
	}
	if cfg.shards < 0 {
		return config{}, fmt.Errorf("-shards %d out of range", cfg.shards)
	}
	if cfg.shards > 0 && cfg.snapshot != "" {
		return config{}, errors.New("-shards and -snapshot are mutually exclusive: a sharded snapshot directory fixes its own shard count")
	}
	if cfg.snapshot != "" {
		if _, err := os.Stat(cfg.snapshot); err != nil {
			return config{}, fmt.Errorf("snapshot: %w", err)
		}
	}
	if cfg.live && cfg.snapshot != "" {
		return config{}, errors.New("-live and -snapshot are mutually exclusive: a snapshot boot has no signing key; use -watch to follow a live owner's snapshot directory")
	}
	if cfg.liveSnaps != "" && !cfg.live {
		return config{}, errors.New("-live-snapshots requires -live")
	}
	if cfg.live && cfg.shards > 0 && cfg.liveSnaps != "" {
		return config{}, errors.New("-live-snapshots is not supported for sharded live deployments yet")
	}
	if cfg.watch < 0 {
		return config{}, fmt.Errorf("-watch %s out of range", cfg.watch)
	}
	if cfg.watch > 0 && cfg.snapshot == "" {
		return config{}, errors.New("-watch requires -snapshot DIR (a per-generation snapshot directory)")
	}
	if cfg.cacheMB < 0 {
		return config{}, fmt.Errorf("-cache-mb %d out of range", cfg.cacheMB)
	}
	return cfg, nil
}

func run(cfg config) error {
	logger := log.New(os.Stderr, "authserved ", log.LstdFlags)
	handler, err := buildHandler(cfg, logger)
	if err != nil {
		return err
	}

	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", cfg.addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		logger.Printf("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// buildHandler produces the /v1 handler: warm start from a snapshot, or
// cold build from documents.
func buildHandler(cfg config, logger *log.Logger) (http.Handler, error) {
	cache := newCache(cfg, logger)
	queryLogOpts := func() []authtext.HandlerOption {
		var out []authtext.HandlerOption
		if cache != nil {
			out = append(out, authtext.WithVOCache(cache))
		}
		if cfg.quiet {
			return out
		}
		return append(out, authtext.WithQueryLog(
			func(query string, r int, st authtext.Stats, wall time.Duration) {
				logger.Printf("query %q r=%d %s-%s terms=%d entries/term=%.1f io=%s vo=%dB wall=%s",
					query, r, st.Algorithm, st.Scheme, st.QueryTerms, st.EntriesPerTerm,
					st.IOTime, st.VOBytes, wall.Round(time.Microsecond))
			}))
	}

	shardedLogOpts := func() []authtext.ShardedHandlerOption {
		var out []authtext.ShardedHandlerOption
		if cache != nil {
			out = append(out, authtext.WithShardedVOCache(cache))
		}
		if cfg.quiet {
			return out
		}
		return append(out, authtext.WithShardedQueryLog(
			func(query string, r int, st authtext.ShardedStats, wall time.Duration) {
				logger.Printf("query %q r=%d %s-%s shards=%d entries=%d io=%s vo=%dB wall=%s",
					query, r, st.Algorithm, st.Scheme, st.Shards, st.EntriesRead,
					st.IOTime, st.VOBytes, wall.Round(time.Microsecond))
			}))
	}

	if cfg.snapshot != "" {
		start := time.Now()
		if cfg.watch > 0 && !authtext.IsLiveSnapshotDir(cfg.snapshot) {
			// Catch this here (the check needs the filesystem, so it cannot
			// live in parseFlags) instead of silently serving frozen state
			// while the operator believes hot-reload is active.
			return nil, errors.New("-watch requires -snapshot to be a per-generation snapshot directory (gen-NNNNNNNNNNNN.atsn files)")
		}
		if authtext.IsLiveSnapshotDir(cfg.snapshot) {
			replica, err := authtext.OpenLiveSnapshotDir(cfg.snapshot)
			if err != nil {
				return nil, err
			}
			logger.Printf("opened live snapshot directory %s at generation %d in %s (no re-indexing, no re-signing)",
				cfg.snapshot, replica.Generation(), time.Since(start).Round(time.Millisecond))
			if cfg.watch > 0 {
				go watchReplica(replica, cfg.watch, logger)
			}
			return authtext.NewLiveReplicaHTTPHandler(replica, queryLogOpts()...)
		}
		if authtext.IsShardedSnapshot(cfg.snapshot) {
			server, _, err := authtext.OpenShardedSnapshotDir(cfg.snapshot)
			if err != nil {
				return nil, err
			}
			// Export from the opened set (not a second read of shards.atsx),
			// so the published material always matches the serving shards.
			export, err := server.ExportClient()
			if err != nil {
				return nil, err
			}
			logger.Printf("opened sharded snapshot %s (%d shards) in %s (no re-indexing, no re-signing)",
				cfg.snapshot, server.Shards(), time.Since(start).Round(time.Millisecond))
			return authtext.NewShardedHTTPHandler(server, export, shardedLogOpts()...), nil
		}
		server, client, err := authtext.OpenSnapshotFile(cfg.snapshot)
		if err != nil {
			return nil, err
		}
		export, err := client.Export()
		if err != nil {
			return nil, fmt.Errorf("snapshot has no publishable key (fast-signer build?): %w", err)
		}
		logger.Printf("opened snapshot %s in %s (no re-indexing, no re-signing)",
			cfg.snapshot, time.Since(start).Round(time.Millisecond))
		return authtext.NewHTTPHandler(server, export, queryLogOpts()...), nil
	}

	docs, _, err := demo.Load(cfg.dir)
	if err != nil {
		return nil, err
	}
	var opts []authtext.Option
	if cfg.vocab {
		opts = append(opts, authtext.WithVocabularyProofs())
	}
	if cfg.live {
		return buildLiveHandler(cfg, docs, opts, cache, logger)
	}
	if cfg.shards > 0 {
		logger.Printf("indexing %d documents into %d shards, building authentication structures (RSA-1024)...",
			len(docs), cfg.shards)
		owner, err := authtext.NewShardedOwner(docs, cfg.shards, opts...)
		if err != nil {
			return nil, err
		}
		buildMs, sigs, devBytes := owner.Stats()
		logger.Printf("built %d shards in %.0f ms (parallel): %d signatures, %.1f MB on the simulated disks",
			owner.Shards(), buildMs, sigs, float64(devBytes)/(1<<20))
		return owner.HTTPHandler(shardedLogOpts()...)
	}
	logger.Printf("indexing %d documents and building authentication structures (RSA-1024)...", len(docs))
	owner, err := authtext.NewOwner(docs, opts...)
	if err != nil {
		return nil, err
	}
	buildMs, sigs, devBytes := owner.Stats()
	logger.Printf("built in %.0f ms: %d signatures, %.1f MB on the simulated disk",
		buildMs, sigs, float64(devBytes)/(1<<20))
	return owner.HTTPHandler(queryLogOpts()...)
}

// newCache builds the serve-side VO cache -cache-mb asks for (nil when
// disabled). Every deployment shape takes it the same way: cached answers
// are generation-keyed, so live updates and watched reloads invalidate
// them automatically, and clients verify hits exactly like misses.
func newCache(cfg config, logger *log.Logger) *authtext.VOCache {
	if cfg.cacheMB <= 0 {
		return nil
	}
	cache := authtext.NewVOCache(int64(cfg.cacheMB) << 20)
	logger.Printf("VO cache enabled: %d MiB (stats on /v1/healthz)", cfg.cacheMB)
	return cache
}

// buildLiveHandler performs the live owner role in-process: every
// accepted /v1/admin/update batch publishes a new signed generation, and
// (single-collection mode) optionally persists it as a snapshot.
func buildLiveHandler(cfg config, docs []authtext.Document, opts []authtext.Option, cache *authtext.VOCache, logger *log.Logger) (http.Handler, error) {
	logUpdate := func(rep *authtext.UpdateReport) {
		logger.Printf("published generation %d: %d documents (+%d/−%d), %d signed / %d reused signatures, rebuild %.0f ms",
			rep.Generation, rep.Documents, rep.Added, rep.Removed,
			rep.SignaturesSigned, rep.SignaturesReused, rep.RebuildMillis)
	}
	if cfg.shards > 0 {
		logger.Printf("indexing %d documents into %d live shards (RSA-1024)...", len(docs), cfg.shards)
		owner, _, err := authtext.NewLiveShardedOwner(docs, cfg.shards,
			append(opts, authtext.WithShardPartitioner(authtext.PartitionHash))...)
		if err != nil {
			return nil, err
		}
		logger.Printf("serving %d shards at generation %d; updates on %s", owner.Shards(), owner.Generation(), "/v1/admin/update")
		shardedOpts := []authtext.ShardedHandlerOption{authtext.WithShardedUpdateLog(logUpdate)}
		if cache != nil {
			shardedOpts = append(shardedOpts, authtext.WithShardedVOCache(cache))
		}
		if !cfg.quiet {
			shardedOpts = append(shardedOpts, authtext.WithShardedQueryLog(
				func(query string, r int, st authtext.ShardedStats, wall time.Duration) {
					logger.Printf("query %q r=%d %s-%s shards=%d io=%s vo=%dB wall=%s",
						query, r, st.Algorithm, st.Scheme, st.Shards, st.IOTime, st.VOBytes,
						wall.Round(time.Microsecond))
				}))
		}
		return owner.HTTPHandler(shardedOpts...)
	}
	logger.Printf("indexing %d live documents (RSA-1024)...", len(docs))
	owner, _, err := authtext.NewLiveOwner(docs, opts...)
	if err != nil {
		return nil, err
	}
	handlerOpts := []authtext.HandlerOption{authtext.WithUpdateLog(logUpdate)}
	if cache != nil {
		handlerOpts = append(handlerOpts, authtext.WithVOCache(cache))
	}
	if !cfg.quiet {
		handlerOpts = append(handlerOpts, authtext.WithQueryLog(
			func(query string, r int, st authtext.Stats, wall time.Duration) {
				logger.Printf("query %q r=%d %s-%s entries/term=%.1f io=%s vo=%dB wall=%s",
					query, r, st.Algorithm, st.Scheme, st.EntriesPerTerm, st.IOTime, st.VOBytes,
					wall.Round(time.Microsecond))
			}))
	}
	if cfg.liveSnaps != "" {
		// PersistGenerations writes inside the update critical section, so
		// every published generation gets its own snapshot file even when
		// admin updates race one another.
		path, err := owner.PersistGenerations(cfg.liveSnaps, func(gen uint64, err error) {
			logger.Printf("snapshot of generation %d failed: %v", gen, err)
		})
		if err != nil {
			return nil, fmt.Errorf("initial generation snapshot: %w", err)
		}
		logger.Printf("wrote %s (and will persist every future generation)", path)
	}
	logger.Printf("serving generation %d; updates on /v1/admin/update", owner.Generation())
	return owner.HTTPHandler(handlerOpts...)
}

// watchReplica polls a per-generation snapshot directory and hot-swaps
// the replica to every new generation that appears.
func watchReplica(r *authtext.LiveReplica, every time.Duration, logger *log.Logger) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for range ticker.C {
		swapped, err := r.Reload()
		if err != nil {
			logger.Printf("watch: %v", err)
			continue
		}
		if swapped {
			logger.Printf("watch: swapped to generation %d", r.Generation())
		}
	}
}
