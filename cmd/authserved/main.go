// Command authserved serves an authenticated document collection over
// HTTP. It plays the untrusted-server role of the Pang & Mouratidis
// three-party protocol: it either opens a pre-built snapshot (the
// production deployment — the owner built and signed elsewhere, this host
// holds no private key) or indexes a directory of .txt files / the
// built-in demo corpus on startup, and then answers concurrent queries on
// the versioned JSON API documented in docs/PROTOCOL.md:
//
//	POST /v1/search   top-r query → hits + verification object
//	GET  /v1/manifest signed manifest + public key (client bootstrap)
//	GET  /v1/healthz  liveness, collection shape, serving counters
//	GET  /v1/metrics  Prometheus text exposition (docs/OBSERVABILITY.md)
//
// Remote users verify every answer locally with authtext.RemoteClient (or
// `authsearch -remote URL`); nothing the daemon returns needs to be
// trusted — a tampered snapshot, index or response fails client
// verification (docs/SNAPSHOT.md describes the trust model).
//
// Usage:
//
//	authserved [-addr :8470] [-snapshot FILE|DIR | -dir PATH] [-shards N]
//	           [-live [-live-snapshots DIR]] [-watch DUR] [-cache-mb N]
//	           [-fleet URL,URL,... [-fleet-probe DUR]]
//	           [-vocab-proofs] [-quiet] [-log-format text|json]
//	           [-log-level LEVEL] [-pprof-addr ADDR]
//
// With -snapshot the daemon boots in milliseconds from an artifact
// produced by `authsearch -build -o FILE`; nothing is re-tokenised,
// re-indexed or re-signed. When the snapshot path is a DIRECTORY written
// by `authsearch -build -shards N -o DIR`, the daemon serves the sharded
// protocol (/v1/shards/search, /v1/shards/manifest) with parallel query
// fan-out over every shard; when it is a per-generation snapshot
// directory written by a live owner (gen-NNNNNNNNNNNN.atsn files,
// docs/UPDATES.md), the daemon serves the latest generation and — with
// -watch — hot-swaps to newer generations as they appear. Without
// -snapshot the daemon performs the owner role in-process for
// convenience; adding -shards N splits the corpus into N independently
// signed shards at startup, and -live additionally accepts document
// add/remove batches on /v1/admin/update, publishing a new signed
// generation per batch (persisted per generation with -live-snapshots).
//
// With -fleet the daemon serves no collection of its own: it becomes a
// fleet FRONT END that load-balances the /v1 read surface across the
// listed replica URLs with health probes, ejection, retries, and
// generation-consistent routing during snapshot swaps (docs/FLEET.md).
// Per-replica status is served at /v1/fleet/healthz.
//
// Every deployment shape serves its metric registry at /v1/metrics and
// logs one structured record per request (request IDs included; -quiet
// silences only the per-query lines). -log-format json switches the whole
// log stream to JSON for ingestion; -pprof-addr starts net/http/pprof on
// a SEPARATE listener so profiling is never exposed on the serving port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"authtext"
	"authtext/internal/demo"
)

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err == flag.ErrHelp {
		os.Exit(0)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "authserved:", err)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "authserved:", err)
		os.Exit(1)
	}
}

// config is the fully validated command line. Producing it must not build
// anything: flag errors and -help exit before any indexing or signing
// happens.
type config struct {
	addr       string
	dir        string
	snapshot   string
	shards     int
	vocab      bool
	quiet      bool
	live       bool
	liveSnaps  string
	mmap       bool
	watch      time.Duration
	cacheMB    int
	fleet      string
	fleetProbe time.Duration
	logFormat  string
	logLevel   slog.Level
	pprofAddr  string
}

// logLevels maps the -log-level spellings to slog levels.
var logLevels = map[string]slog.Level{
	"debug": slog.LevelDebug,
	"info":  slog.LevelInfo,
	"warn":  slog.LevelWarn,
	"error": slog.LevelError,
}

// parseFlags parses and cross-validates the command line. It is the only
// step allowed to fail with a usage error, and it runs to completion
// before any collection work starts.
func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("authserved", flag.ContinueOnError)
	var cfg config
	var logLevel string
	fs.StringVar(&cfg.addr, "addr", ":8470", "listen address")
	fs.StringVar(&cfg.dir, "dir", "", "directory of .txt files to index (default: demo corpus)")
	fs.StringVar(&cfg.snapshot, "snapshot", "", "boot from this snapshot file (or sharded snapshot directory) instead of building a collection")
	fs.IntVar(&cfg.shards, "shards", 0, "split the corpus into N independently signed shards (build mode)")
	fs.BoolVar(&cfg.vocab, "vocab-proofs", true, "prove non-membership of out-of-dictionary query terms (build mode)")
	fs.BoolVar(&cfg.quiet, "quiet", false, "suppress per-query log lines")
	fs.BoolVar(&cfg.live, "live", false, "accept document updates on /v1/admin/update (build mode); every batch publishes a new signed generation")
	fs.StringVar(&cfg.liveSnaps, "live-snapshots", "", "with -live: persist every published generation as an ATSN snapshot in this directory")
	fs.BoolVar(&cfg.mmap, "mmap", false, "with -snapshot: memory-map snapshot files instead of copying them (zero-copy opens, page-cache shared between processes)")
	fs.DurationVar(&cfg.watch, "watch", 0, "with -snapshot DIR of per-generation snapshots: poll at this interval and hot-swap to new generations")
	fs.IntVar(&cfg.cacheMB, "cache-mb", 0, "serve repeat queries from an in-memory VO cache bounded by N MiB of encoded answers (0 disables); document updates invalidate it automatically")
	fs.StringVar(&cfg.fleet, "fleet", "", "run as a fleet front end over these comma-separated replica base URLs instead of serving a collection")
	fs.DurationVar(&cfg.fleetProbe, "fleet-probe", 0, "with -fleet: health-probe interval (default 500ms)")
	fs.StringVar(&cfg.logFormat, "log-format", "text", "log output format: text or json")
	fs.StringVar(&logLevel, "log-level", "info", "minimum log level: debug, info, warn or error")
	fs.StringVar(&cfg.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this SEPARATE address (empty disables); never expose it publicly")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() > 0 {
		return config{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.snapshot != "" && cfg.dir != "" {
		return config{}, errors.New("-snapshot and -dir are mutually exclusive: the snapshot already contains its collection")
	}
	if cfg.addr == "" {
		return config{}, errors.New("-addr must not be empty")
	}
	if cfg.shards < 0 {
		return config{}, fmt.Errorf("-shards %d out of range", cfg.shards)
	}
	if cfg.shards > 0 && cfg.snapshot != "" {
		return config{}, errors.New("-shards and -snapshot are mutually exclusive: a sharded snapshot directory fixes its own shard count")
	}
	if cfg.snapshot != "" {
		if _, err := os.Stat(cfg.snapshot); err != nil {
			return config{}, fmt.Errorf("snapshot: %w", err)
		}
	}
	if cfg.live && cfg.snapshot != "" {
		return config{}, errors.New("-live and -snapshot are mutually exclusive: a snapshot boot has no signing key; use -watch to follow a live owner's snapshot directory")
	}
	if cfg.liveSnaps != "" && !cfg.live {
		return config{}, errors.New("-live-snapshots requires -live")
	}
	if cfg.live && cfg.shards > 0 && cfg.liveSnaps != "" {
		return config{}, errors.New("-live-snapshots is not supported for sharded live deployments yet")
	}
	if cfg.watch < 0 {
		return config{}, fmt.Errorf("-watch %s out of range", cfg.watch)
	}
	if cfg.watch > 0 && cfg.snapshot == "" {
		return config{}, errors.New("-watch requires -snapshot DIR (a per-generation snapshot directory)")
	}
	if cfg.mmap && cfg.snapshot == "" {
		return config{}, errors.New("-mmap requires -snapshot (there is nothing to map in build mode)")
	}
	if cfg.cacheMB < 0 {
		return config{}, fmt.Errorf("-cache-mb %d out of range", cfg.cacheMB)
	}
	if cfg.fleet != "" {
		// A front end serves no collection: every collection-shaped flag is
		// a configuration mistake worth stopping on.
		switch {
		case cfg.snapshot != "":
			return config{}, errors.New("-fleet and -snapshot are mutually exclusive: a front end serves replicas, not a collection")
		case cfg.dir != "":
			return config{}, errors.New("-fleet and -dir are mutually exclusive: a front end serves replicas, not a collection")
		case cfg.shards > 0:
			return config{}, errors.New("-fleet and -shards are mutually exclusive")
		case cfg.live:
			return config{}, errors.New("-fleet and -live are mutually exclusive: updates happen at the owner, not the front end")
		case cfg.watch > 0:
			return config{}, errors.New("-fleet and -watch are mutually exclusive")
		case cfg.cacheMB > 0:
			return config{}, errors.New("-fleet and -cache-mb are mutually exclusive: replicas own their caches")
		case cfg.mmap:
			return config{}, errors.New("-fleet and -mmap are mutually exclusive")
		}
	}
	if cfg.fleetProbe != 0 {
		if cfg.fleet == "" {
			return config{}, errors.New("-fleet-probe requires -fleet")
		}
		if cfg.fleetProbe < 0 {
			return config{}, fmt.Errorf("-fleet-probe %s out of range", cfg.fleetProbe)
		}
	}
	if cfg.logFormat != "text" && cfg.logFormat != "json" {
		return config{}, fmt.Errorf("-log-format %q: must be text or json", cfg.logFormat)
	}
	level, ok := logLevels[strings.ToLower(logLevel)]
	if !ok {
		return config{}, fmt.Errorf("-log-level %q: must be debug, info, warn or error", logLevel)
	}
	cfg.logLevel = level
	if cfg.pprofAddr != "" && sameListenPort(cfg.pprofAddr, cfg.addr) {
		return config{}, errors.New("-pprof-addr must use a different port than -addr: profiling stays off the serving listener")
	}
	return cfg, nil
}

// sameListenPort reports whether two listen addresses would contend for
// the same port: string equality misses spellings like ":8470" vs
// "0.0.0.0:8470". Ports are compared literally; equal ports collide when
// the hosts match or either side binds a wildcard interface. Port "0"
// (kernel-assigned) never collides. Unparsable addresses fail at bind
// time with a clearer error than flag validation could give.
func sameListenPort(a, b string) bool {
	hostA, portA, errA := net.SplitHostPort(a)
	hostB, portB, errB := net.SplitHostPort(b)
	if errA != nil || errB != nil || portA != portB || portA == "0" {
		return false
	}
	wildcard := func(h string) bool {
		return h == "" || h == "0.0.0.0" || h == "::" || h == "[::]"
	}
	return hostA == hostB || wildcard(hostA) || wildcard(hostB)
}

// newLogger builds the process-wide structured logger the -log-format and
// -log-level flags ask for.
func newLogger(cfg config) *slog.Logger {
	opts := &slog.HandlerOptions{Level: cfg.logLevel}
	if cfg.logFormat == "json" {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts))
}

func run(cfg config) error {
	logger := newLogger(cfg)
	handler, err := buildHandler(cfg, logger)
	if err != nil {
		return err
	}

	// The operator explicitly asked for profiling, so a pprof listener
	// that cannot bind is fatal — logging and carrying on would leave the
	// process running with profiling silently absent.
	pprofErrc := make(chan error, 1)
	if cfg.pprofAddr != "" {
		go func() { pprofErrc <- servePprof(cfg.pprofAddr, logger) }()
	}

	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", cfg.addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case err := <-pprofErrc:
		return fmt.Errorf("pprof listener on %s: %w", cfg.pprofAddr, err)
	case <-ctx.Done():
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// servePprof runs the net/http/pprof handlers on their own mux and
// listener, so the profiling surface never shares a port with the public
// protocol (and an empty -pprof-addr costs nothing). It only returns on
// listener failure, which run treats as fatal.
func servePprof(addr string, logger *slog.Logger) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("pprof listening", "addr", addr)
	return http.ListenAndServe(addr, mux)
}

// buildHandler produces the /v1 handler: warm start from a snapshot, or
// cold build from documents. Every shape carries the same observability:
// a metric registry on /v1/metrics and one structured log record per
// request.
func buildHandler(cfg config, logger *slog.Logger) (http.Handler, error) {
	metrics := authtext.NewMetrics()
	if cfg.fleet != "" {
		return buildFleetHandler(cfg, metrics, logger)
	}
	cache := newCache(cfg, logger)
	queryLogOpts := func() []authtext.HandlerOption {
		out := []authtext.HandlerOption{
			authtext.WithMetrics(metrics),
			authtext.WithRequestLog(logger),
		}
		if cache != nil {
			out = append(out, authtext.WithVOCache(cache))
		}
		if cfg.quiet {
			return out
		}
		return append(out, authtext.WithQueryLog(
			func(query string, r int, st authtext.Stats, wall time.Duration) {
				logger.Info("query",
					"q", query, "r", r,
					"algo", st.Algorithm.String(), "scheme", st.Scheme.String(),
					"terms", st.QueryTerms, "entries_per_term", st.EntriesPerTerm,
					"io_ms", float64(st.IOTime), "vo_bytes", st.VOBytes,
					"wall", wall.Round(time.Microsecond))
			}))
	}

	shardedLogOpts := func() []authtext.ShardedHandlerOption {
		out := []authtext.ShardedHandlerOption{
			authtext.WithShardedMetrics(metrics),
			authtext.WithShardedRequestLog(logger),
		}
		if cache != nil {
			out = append(out, authtext.WithShardedVOCache(cache))
		}
		if cfg.quiet {
			return out
		}
		return append(out, authtext.WithShardedQueryLog(
			func(query string, r int, st authtext.ShardedStats, wall time.Duration) {
				logger.Info("query",
					"q", query, "r", r,
					"algo", st.Algorithm.String(), "scheme", st.Scheme.String(),
					"shards", st.Shards, "entries", st.EntriesRead,
					"io_ms", float64(st.IOTime), "vo_bytes", st.VOBytes,
					"wall", wall.Round(time.Microsecond))
			}))
	}

	if cfg.snapshot != "" {
		start := time.Now()
		if cfg.watch > 0 && !authtext.IsLiveSnapshotDir(cfg.snapshot) {
			// Catch this here (the check needs the filesystem, so it cannot
			// live in parseFlags) instead of silently serving frozen state
			// while the operator believes hot-reload is active.
			return nil, errors.New("-watch requires -snapshot to be a per-generation snapshot directory (gen-NNNNNNNNNNNN.atsn files)")
		}
		if authtext.IsLiveSnapshotDir(cfg.snapshot) {
			openDir := authtext.OpenLiveSnapshotDir
			if cfg.mmap {
				openDir = authtext.OpenLiveSnapshotDirMapped
			}
			replica, err := openDir(cfg.snapshot)
			if err != nil {
				return nil, err
			}
			logger.Info("opened live snapshot directory (no re-indexing, no re-signing)",
				"path", cfg.snapshot, "generation", replica.Generation(), "mmap", cfg.mmap,
				"elapsed", time.Since(start).Round(time.Millisecond))
			if cfg.watch > 0 {
				go watchReplica(replica, cfg.watch, logger)
			}
			return authtext.NewLiveReplicaHTTPHandler(replica, queryLogOpts()...)
		}
		if authtext.IsShardedSnapshot(cfg.snapshot) {
			var server *authtext.ShardedServer
			if cfg.mmap {
				ms, err := authtext.OpenShardedSnapshotDirMapped(cfg.snapshot)
				if err != nil {
					return nil, err
				}
				server = ms.Server() // serves for the process lifetime; never closed
			} else {
				var err error
				server, _, err = authtext.OpenShardedSnapshotDir(cfg.snapshot)
				if err != nil {
					return nil, err
				}
			}
			// Export from the opened set (not a second read of shards.atsx),
			// so the published material always matches the serving shards.
			export, err := server.ExportClient()
			if err != nil {
				return nil, err
			}
			logger.Info("opened sharded snapshot (no re-indexing, no re-signing)",
				"path", cfg.snapshot, "shards", server.Shards(),
				"elapsed", time.Since(start).Round(time.Millisecond))
			return authtext.NewShardedHTTPHandler(server, export, shardedLogOpts()...), nil
		}
		var (
			server *authtext.Server
			client *authtext.Client
		)
		if cfg.mmap {
			ms, err := authtext.OpenSnapshotMapped(cfg.snapshot)
			if err != nil {
				return nil, err
			}
			server, client = ms.Server(), ms.Client() // process-lifetime mapping
		} else {
			var err error
			server, client, err = authtext.OpenSnapshotFile(cfg.snapshot)
			if err != nil {
				return nil, err
			}
		}
		export, err := client.Export()
		if err != nil {
			return nil, fmt.Errorf("snapshot has no publishable key (fast-signer build?): %w", err)
		}
		logger.Info("opened snapshot (no re-indexing, no re-signing)",
			"path", cfg.snapshot, "mmap", cfg.mmap, "elapsed", time.Since(start).Round(time.Millisecond))
		return authtext.NewHTTPHandler(server, export, queryLogOpts()...), nil
	}

	docs, _, err := demo.Load(cfg.dir)
	if err != nil {
		return nil, err
	}
	var opts []authtext.Option
	if cfg.vocab {
		opts = append(opts, authtext.WithVocabularyProofs())
	}
	if cfg.live {
		return buildLiveHandler(cfg, docs, opts, queryLogOpts(), shardedLogOpts(), logger)
	}
	if cfg.shards > 0 {
		logger.Info("indexing into shards, building authentication structures (RSA-1024)",
			"documents", len(docs), "shards", cfg.shards)
		owner, err := authtext.NewShardedOwner(docs, cfg.shards, opts...)
		if err != nil {
			return nil, err
		}
		buildMs, sigs, devBytes := owner.Stats()
		logger.Info("built shards (parallel)",
			"shards", owner.Shards(), "build_ms", buildMs, "signatures", sigs,
			"device_mb", float64(devBytes)/(1<<20))
		return owner.HTTPHandler(shardedLogOpts()...)
	}
	logger.Info("indexing and building authentication structures (RSA-1024)", "documents", len(docs))
	owner, err := authtext.NewOwner(docs, opts...)
	if err != nil {
		return nil, err
	}
	buildMs, sigs, devBytes := owner.Stats()
	logger.Info("built collection",
		"build_ms", buildMs, "signatures", sigs, "device_mb", float64(devBytes)/(1<<20))
	return owner.HTTPHandler(queryLogOpts()...)
}

// buildFleetHandler runs the daemon as a fleet front end: no collection,
// no signing key — just health-probed, generation-consistent fan-out over
// the replica URLs (docs/FLEET.md).
func buildFleetHandler(cfg config, metrics *authtext.Metrics, logger *slog.Logger) (http.Handler, error) {
	var backends []string
	for _, u := range strings.Split(cfg.fleet, ",") {
		if u = strings.TrimSpace(u); u != "" {
			backends = append(backends, u)
		}
	}
	opts := []authtext.FrontendOption{
		authtext.WithFrontendMetrics(metrics),
		authtext.WithFrontendLogger(logger),
	}
	if cfg.fleetProbe > 0 {
		opts = append(opts, authtext.WithFrontendProbeInterval(cfg.fleetProbe))
	}
	fe, err := authtext.NewFrontend(backends, opts...)
	if err != nil {
		return nil, err
	}
	// The front end lives for the process lifetime; its probe loop stops
	// with the process.
	logger.Info("serving as fleet front end", "replicas", len(backends), "status_path", "/v1/fleet/healthz")
	return fe, nil
}

// newCache builds the serve-side VO cache -cache-mb asks for (nil when
// disabled). Every deployment shape takes it the same way: cached answers
// are generation-keyed, so live updates and watched reloads invalidate
// them automatically, and clients verify hits exactly like misses.
func newCache(cfg config, logger *slog.Logger) *authtext.VOCache {
	if cfg.cacheMB <= 0 {
		return nil
	}
	cache := authtext.NewVOCache(int64(cfg.cacheMB) << 20)
	logger.Info("VO cache enabled (stats on /v1/healthz and /v1/metrics)", "mib", cfg.cacheMB)
	return cache
}

// buildLiveHandler performs the live owner role in-process: every
// accepted /v1/admin/update batch publishes a new signed generation, and
// (single-collection mode) optionally persists it as a snapshot. The
// option sets arrive from buildHandler so the observability wiring
// (metrics, request log, cache, query log) is identical across shapes.
func buildLiveHandler(cfg config, docs []authtext.Document, opts []authtext.Option,
	handlerOpts []authtext.HandlerOption, shardedOpts []authtext.ShardedHandlerOption,
	logger *slog.Logger) (http.Handler, error) {
	logUpdate := func(rep *authtext.UpdateReport) {
		logger.Info("published generation",
			"generation", rep.Generation, "documents", rep.Documents,
			"added", rep.Added, "removed", rep.Removed,
			"signatures_signed", rep.SignaturesSigned, "signatures_reused", rep.SignaturesReused,
			"rebuild_ms", rep.RebuildMillis)
	}
	if cfg.shards > 0 {
		logger.Info("indexing into live shards (RSA-1024)", "documents", len(docs), "shards", cfg.shards)
		owner, _, err := authtext.NewLiveShardedOwner(docs, cfg.shards,
			append(opts, authtext.WithShardPartitioner(authtext.PartitionHash))...)
		if err != nil {
			return nil, err
		}
		logger.Info("serving live shards",
			"shards", owner.Shards(), "generation", owner.Generation(), "update_path", "/v1/admin/update")
		return owner.HTTPHandler(append(shardedOpts, authtext.WithShardedUpdateLog(logUpdate))...)
	}
	logger.Info("indexing live documents (RSA-1024)", "documents", len(docs))
	owner, _, err := authtext.NewLiveOwner(docs, opts...)
	if err != nil {
		return nil, err
	}
	if cfg.liveSnaps != "" {
		// PersistGenerations writes inside the update critical section, so
		// every published generation gets its own snapshot file even when
		// admin updates race one another.
		path, err := owner.PersistGenerations(cfg.liveSnaps, func(gen uint64, err error) {
			logger.Error("generation snapshot failed", "generation", gen, "err", err)
		})
		if err != nil {
			return nil, fmt.Errorf("initial generation snapshot: %w", err)
		}
		logger.Info("persisting generations", "path", path)
	}
	logger.Info("serving live collection",
		"generation", owner.Generation(), "update_path", "/v1/admin/update")
	return owner.HTTPHandler(append(handlerOpts, authtext.WithUpdateLog(logUpdate))...)
}

// watchReplica polls a per-generation snapshot directory and hot-swaps
// the replica to every new generation that appears.
func watchReplica(r *authtext.LiveReplica, every time.Duration, logger *slog.Logger) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for range ticker.C {
		swapped, err := r.Reload()
		if err != nil {
			logger.Warn("watch reload failed", "err", err)
			continue
		}
		if swapped {
			logger.Info("watch swapped generation", "generation", r.Generation())
		}
	}
}
