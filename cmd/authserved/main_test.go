package main

import (
	"context"
	"encoding/json"
	"flag"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"authtext"
	"authtext/internal/demo"
	"authtext/internal/httpapi"
)

func writeCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	texts := map[string]string{
		"a.txt": "the merkle tree authenticates the inverted index",
		"b.txt": "the inverted index stores impact entries by frequency",
		"c.txt": "clients verify the tree root against the owner signature",
	}
	for name, body := range texts {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// The daemon's handler must serve a collection a RemoteClient can
// bootstrap from and verify against — the same end-to-end path `authserved
// -dir ...` exposes on a real socket.
func TestBuildHandlerServesVerifiableCollection(t *testing.T) {
	dir := writeCorpus(t)
	logger := log.New(io.Discard, "", 0)
	handler, err := buildHandler(config{dir: dir, vocab: true, quiet: true}, logger)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rc.Search(context.Background(), "inverted index", 2, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		t.Fatalf("remote search against daemon handler failed: %v", err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits")
	}

	health, err := http.Get(srv.URL + httpapi.PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	defer health.Body.Close()
	var h httpapi.Health
	if err := json.NewDecoder(health.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Documents != 3 || h.QueriesServed != 1 {
		t.Fatalf("health = %+v", h)
	}
}

func TestBuildHandlerDemoCorpus(t *testing.T) {
	handler, err := buildHandler(config{quiet: true}, log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Search(context.Background(), "merkle tree", 3, authtext.TRA, authtext.MHT); err != nil {
		t.Fatalf("demo corpus search failed: %v", err)
	}
}

// A daemon booted from a snapshot must serve the identical protocol: the
// remote client bootstraps from /v1/manifest and verifies answers, without
// the daemon ever holding a signer.
func TestBuildHandlerFromSnapshot(t *testing.T) {
	docs, _, err := demo.Load("")
	if err != nil {
		t.Fatal(err)
	}
	owner, err := authtext.NewOwner(docs, authtext.WithVocabularyProofs())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "demo.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	handler, err := buildHandler(config{snapshot: path, quiet: true}, log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rc.Search(context.Background(), "merkle tree", 3, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		t.Fatalf("remote search against snapshot-booted daemon failed: %v", err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits")
	}
}

// Flag parsing (and -help) must complete before any collection is built:
// parseFlags performs every usage check and touches no documents.
func TestParseFlagsBeforeBuild(t *testing.T) {
	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
	if _, err := parseFlags([]string{"-help"}); err != flag.ErrHelp {
		t.Errorf("-help: got %v, want flag.ErrHelp", err)
	}
	if _, err := parseFlags([]string{"-snapshot", "x.snap", "-dir", "docs"}); err == nil {
		t.Error("-snapshot with -dir accepted")
	}
	if _, err := parseFlags([]string{"-addr", ""}); err == nil {
		t.Error("empty -addr accepted")
	}
	if _, err := parseFlags([]string{"-snapshot", filepath.Join(t.TempDir(), "missing.snap")}); err == nil {
		t.Error("missing snapshot file accepted")
	}
	if _, err := parseFlags([]string{"stray"}); err == nil {
		t.Error("stray positional argument accepted")
	}
	cfg, err := parseFlags([]string{"-addr", ":0", "-quiet"})
	if err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	if cfg.addr != ":0" || !cfg.quiet || !cfg.vocab {
		t.Fatalf("cfg = %+v", cfg)
	}
}
