package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"authtext"
	"authtext/internal/demo"
	"authtext/internal/httpapi"
	"authtext/internal/obs"
)

func writeCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	texts := map[string]string{
		"a.txt": "the merkle tree authenticates the inverted index",
		"b.txt": "the inverted index stores impact entries by frequency",
		"c.txt": "clients verify the tree root against the owner signature",
	}
	for name, body := range texts {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// The daemon's handler must serve a collection a RemoteClient can
// bootstrap from and verify against — the same end-to-end path `authserved
// -dir ...` exposes on a real socket.
func TestBuildHandlerServesVerifiableCollection(t *testing.T) {
	dir := writeCorpus(t)
	logger := discardLogger()
	handler, err := buildHandler(config{dir: dir, vocab: true, quiet: true}, logger)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rc.Search(context.Background(), "inverted index", 2, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		t.Fatalf("remote search against daemon handler failed: %v", err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits")
	}

	health, err := http.Get(srv.URL + httpapi.PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	defer health.Body.Close()
	var h httpapi.Health
	if err := json.NewDecoder(health.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Documents != 3 || h.QueriesServed != 1 {
		t.Fatalf("health = %+v", h)
	}
}

// A daemon booted with -cache-mb serves verifiable answers from its VO
// cache and reports the counters on healthz.
func TestBuildHandlerWithCache(t *testing.T) {
	dir := writeCorpus(t)
	logger := discardLogger()
	handler, err := buildHandler(config{dir: dir, vocab: true, quiet: true, cacheMB: 16}, logger)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := rc.Search(context.Background(), "inverted index", 2, authtext.TNRA, authtext.ChainMHT); err != nil {
			t.Fatalf("search %d failed: %v", i, err)
		}
	}
	health, err := http.Get(srv.URL + httpapi.PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	defer health.Body.Close()
	var h httpapi.Health
	if err := json.NewDecoder(health.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Cache == nil {
		t.Fatalf("healthz missing cache block: %+v", h)
	}
	if h.Cache.Hits != 2 || h.Cache.Misses != 1 || h.Cache.CapacityBytes != 16<<20 {
		t.Fatalf("cache counters = %+v", *h.Cache)
	}
}

func TestBuildHandlerDemoCorpus(t *testing.T) {
	handler, err := buildHandler(config{quiet: true}, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Search(context.Background(), "merkle tree", 3, authtext.TRA, authtext.MHT); err != nil {
		t.Fatalf("demo corpus search failed: %v", err)
	}
}

// A daemon booted from a snapshot must serve the identical protocol: the
// remote client bootstraps from /v1/manifest and verifies answers, without
// the daemon ever holding a signer.
func TestBuildHandlerFromSnapshot(t *testing.T) {
	docs, _, err := demo.Load("")
	if err != nil {
		t.Fatal(err)
	}
	owner, err := authtext.NewOwner(docs, authtext.WithVocabularyProofs())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "demo.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	handler, err := buildHandler(config{snapshot: path, quiet: true}, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rc.Search(context.Background(), "merkle tree", 3, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		t.Fatalf("remote search against snapshot-booted daemon failed: %v", err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits")
	}
}

// writeShardCorpus is a corpus big enough that every shard keeps shared
// terms after per-shard singleton removal.
func writeShardCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	texts := map[string]string{
		"a.txt": "the merkle tree authenticates the inverted index",
		"b.txt": "the inverted index stores impact entries by frequency",
		"c.txt": "clients verify the tree root against the owner signature",
		"d.txt": "the inverted index drives the merkle tree verification",
		"e.txt": "entries of the inverted index carry a frequency and a signature",
		"f.txt": "the owner publishes the merkle tree root for verification",
	}
	for name, body := range texts {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// A daemon started with -shards must serve the sharded protocol with
// parallel fan-out, verifiable by a ShardedRemoteClient.
func TestBuildHandlerSharded(t *testing.T) {
	dir := writeShardCorpus(t)
	handler, err := buildHandler(config{dir: dir, shards: 3, vocab: true, quiet: true}, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewShardedRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rc.Search(context.Background(), "inverted index", 2, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		t.Fatalf("sharded remote search against daemon handler failed: %v", err)
	}
	if len(res.Merged) == 0 {
		t.Fatal("no merged hits")
	}
	health, err := rc.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if health.Shards != 3 || health.Documents != 6 {
		t.Fatalf("health = %+v", health)
	}
}

// A daemon pointed at a sharded snapshot directory must detect it and
// serve the sharded protocol without a signer.
func TestBuildHandlerFromShardedSnapshot(t *testing.T) {
	docs, _, err := demo.Load("")
	if err != nil {
		t.Fatal(err)
	}
	owner, err := authtext.NewShardedOwner(docs, 2, authtext.WithVocabularyProofs())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "shards")
	if err := owner.WriteSnapshotDir(dir); err != nil {
		t.Fatal(err)
	}

	handler, err := buildHandler(config{snapshot: dir, quiet: true}, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewShardedRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	// "search results" stays frequent in both shards of the demo corpus;
	// "merkle" would be singleton-removed per shard.
	res, err := rc.Search(context.Background(), "search results", 3, authtext.TRA, authtext.ChainMHT)
	if err != nil {
		t.Fatalf("remote search against sharded snapshot daemon failed: %v", err)
	}
	if len(res.Merged) == 0 {
		t.Fatal("no merged hits")
	}
}

// Flag parsing (and -help) must complete before any collection is built:
// parseFlags performs every usage check and touches no documents.
func TestParseFlagsBeforeBuild(t *testing.T) {
	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
	if _, err := parseFlags([]string{"-help"}); err != flag.ErrHelp {
		t.Errorf("-help: got %v, want flag.ErrHelp", err)
	}
	if _, err := parseFlags([]string{"-snapshot", "x.snap", "-dir", "docs"}); err == nil {
		t.Error("-snapshot with -dir accepted")
	}
	if _, err := parseFlags([]string{"-addr", ""}); err == nil {
		t.Error("empty -addr accepted")
	}
	if _, err := parseFlags([]string{"-snapshot", filepath.Join(t.TempDir(), "missing.snap")}); err == nil {
		t.Error("missing snapshot file accepted")
	}
	if _, err := parseFlags([]string{"stray"}); err == nil {
		t.Error("stray positional argument accepted")
	}
	if _, err := parseFlags([]string{"-shards", "-1"}); err == nil {
		t.Error("negative -shards accepted")
	}
	if _, err := parseFlags([]string{"-cache-mb", "-1"}); err == nil {
		t.Error("negative -cache-mb accepted")
	}
	if cfg, err := parseFlags([]string{"-cache-mb", "64"}); err != nil || cfg.cacheMB != 64 {
		t.Errorf("-cache-mb 64: cfg=%+v err=%v", cfg, err)
	}
	if _, err := parseFlags([]string{"-shards", "2", "-snapshot", "x"}); err == nil {
		t.Error("-shards with -snapshot accepted")
	}
	if cfg, err := parseFlags([]string{"-shards", "4"}); err != nil || cfg.shards != 4 {
		t.Errorf("-shards 4: cfg=%+v err=%v", cfg, err)
	}
	cfg, err := parseFlags([]string{"-addr", ":0", "-quiet"})
	if err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	if cfg.addr != ":0" || !cfg.quiet || !cfg.vocab {
		t.Fatalf("cfg = %+v", cfg)
	}
}

func discardLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }

// The observability flags validate like every other flag: before any
// build work, with clear usage errors.
func TestParseFlagsObservability(t *testing.T) {
	if _, err := parseFlags([]string{"-log-format", "xml"}); err == nil {
		t.Error("-log-format xml accepted")
	}
	if _, err := parseFlags([]string{"-log-level", "loud"}); err == nil {
		t.Error("-log-level loud accepted")
	}
	if _, err := parseFlags([]string{"-addr", ":8470", "-pprof-addr", ":8470"}); err == nil {
		t.Error("-pprof-addr colliding with -addr accepted")
	}
	// Collision detection compares ports, not flag spellings: ":8470" and
	// "0.0.0.0:8470" bind the same socket.
	if _, err := parseFlags([]string{"-addr", ":8470", "-pprof-addr", "0.0.0.0:8470"}); err == nil {
		t.Error("-pprof-addr 0.0.0.0:8470 colliding with -addr :8470 accepted")
	}
	if _, err := parseFlags([]string{"-addr", "localhost:8470", "-pprof-addr", "[::]:8470"}); err == nil {
		t.Error("-pprof-addr wildcard host colliding with -addr port accepted")
	}
	// Distinct explicit hosts on one port, and kernel-assigned port 0, are
	// legitimate.
	if _, err := parseFlags([]string{"-addr", "127.0.0.1:8470", "-pprof-addr", "127.0.0.2:8470"}); err != nil {
		t.Errorf("distinct hosts on one port rejected: %v", err)
	}
	if _, err := parseFlags([]string{"-addr", ":0", "-pprof-addr", ":0"}); err != nil {
		t.Errorf("kernel-assigned ports rejected: %v", err)
	}
	cfg, err := parseFlags([]string{"-log-format", "json", "-log-level", "Debug", "-pprof-addr", ":6060"})
	if err != nil {
		t.Fatalf("valid observability flags rejected: %v", err)
	}
	if cfg.logFormat != "json" || cfg.logLevel != slog.LevelDebug || cfg.pprofAddr != ":6060" {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg, err := parseFlags(nil); err != nil || cfg.logFormat != "text" || cfg.logLevel != slog.LevelInfo || cfg.pprofAddr != "" {
		t.Fatalf("defaults: cfg=%+v err=%v", cfg, err)
	}
}

// TestMetricsEndToEnd is the CI smoke check for the whole observability
// path: boot a live daemon handler with a cache, drive searches (with a
// repeat for a cache hit) and one update batch through HTTP, then scrape
// /v1/metrics and assert the core series moved. It asserts by parsed
// value, not by grepping exposition text.
func TestMetricsEndToEnd(t *testing.T) {
	dir := writeCorpus(t)
	handler, err := buildHandler(config{dir: dir, vocab: true, quiet: true, live: true, cacheMB: 8}, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ { // 1 miss + 2 cache hits
		if _, err := rc.Search(ctx, "inverted index", 2, authtext.TNRA, authtext.ChainMHT); err != nil {
			t.Fatalf("search %d: %v", i, err)
		}
	}
	update, err := json.Marshal(&httpapi.UpdateRequest{
		Add: []httpapi.UpdateDocument{{Content: []byte("a fresh merkle tree document")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	up, err := http.Post(srv.URL+httpapi.PathAdminUpdate, "application/json", bytes.NewReader(update))
	if err != nil {
		t.Fatal(err)
	}
	up.Body.Close()
	if up.StatusCode != http.StatusOK {
		t.Fatalf("update: status %d", up.StatusCode)
	}

	resp, err := http.Get(srv.URL + httpapi.PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", httpapi.PathMetrics, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	samples, err := obs.Parse(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}

	wantPositive := []struct {
		name   string
		labels []obs.Label
	}{
		{"authtext_http_requests_total", []obs.Label{obs.L("endpoint", "search"), obs.L("code", "200")}},
		{"authtext_http_request_seconds_count", []obs.Label{obs.L("endpoint", "search")}},
		{"authtext_http_response_bytes_total", []obs.Label{obs.L("endpoint", "search")}},
		{"authtext_search_stage_seconds_count", []obs.Label{obs.L("stage", "engine")}},
		{"authtext_search_stage_seconds_count", []obs.Label{obs.L("stage", "vo_encode")}},
		{"authtext_search_stage_seconds_count", []obs.Label{obs.L("stage", "cache_lookup")}},
		{"authtext_search_stage_seconds_count", []obs.Label{obs.L("stage", "wire_encode")}},
		{"authtext_searches_total", []obs.Label{obs.L("kind", "single")}},
		{"authtext_vocache_hits_total", nil},
		{"authtext_vocache_misses_total", nil},
		{"authtext_vocache_capacity_bytes", nil},
		{"authtext_live_generation", nil},
		{"authtext_live_swaps_total", nil},
		{"authtext_live_swap_seconds_count", nil},
	}
	for _, w := range wantPositive {
		s, ok := obs.FindSample(samples, w.name, w.labels...)
		if !ok {
			t.Errorf("series %s %v missing from scrape", w.name, w.labels)
			continue
		}
		if s.Value <= 0 {
			t.Errorf("%s = %g, want > 0", s.Key(), s.Value)
		}
	}
	if s, ok := obs.FindSample(samples, "authtext_vocache_hits_total"); ok && s.Value != 2 {
		t.Errorf("cache hits = %g, want 2", s.Value)
	}
}

// The fleet flags validate before any work happens: -fleet is a serving
// shape of its own and excludes every collection-building flag.
func TestParseFlagsFleet(t *testing.T) {
	for _, bad := range [][]string{
		{"-fleet", "http://r1:8470", "-dir", "docs"},
		{"-fleet", "http://r1:8470", "-snapshot", "x.snap"},
		{"-fleet", "http://r1:8470", "-shards", "2"},
		{"-fleet", "http://r1:8470", "-live"},
		{"-fleet", "http://r1:8470", "-watch", "1s"},
		{"-fleet", "http://r1:8470", "-cache-mb", "64"},
		{"-fleet", "http://r1:8470", "-mmap"},
		{"-fleet-probe", "1s"},
		{"-fleet", "http://r1:8470", "-fleet-probe", "-1s"},
	} {
		if _, err := parseFlags(bad); err == nil {
			t.Errorf("%v accepted", bad)
		}
	}
	cfg, err := parseFlags([]string{"-fleet", "http://r1:8470,http://r2:8470", "-fleet-probe", "250ms"})
	if err != nil {
		t.Fatalf("valid fleet flags rejected: %v", err)
	}
	if cfg.fleet != "http://r1:8470,http://r2:8470" || cfg.fleetProbe.String() != "250ms" {
		t.Fatalf("cfg = %+v", cfg)
	}
}

// `authserved -fleet` end to end: a front end built from the flag config
// load-balances real replicas, and a RemoteClient verifies answers
// through it exactly as against a single daemon.
func TestBuildFleetHandlerServesVerifiableFleet(t *testing.T) {
	dir := writeCorpus(t)
	logger := discardLogger()
	replica, err := buildHandler(config{dir: dir, vocab: true, quiet: true}, logger)
	if err != nil {
		t.Fatal(err)
	}
	r1 := httptest.NewServer(replica)
	defer r1.Close()
	r2 := httptest.NewServer(replica)
	defer r2.Close()

	// Spacing and a trailing comma must not confuse the URL list.
	cfg := config{fleet: r1.URL + ", " + r2.URL + ",", fleetProbe: 20 * time.Millisecond}
	handler, err := buildFleetHandler(cfg, authtext.NewMetrics(), logger)
	if err != nil {
		t.Fatal(err)
	}
	fes := httptest.NewServer(handler)
	defer fes.Close()

	rc, err := authtext.NewRemoteClient(fes.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rc.Search(context.Background(), "inverted index", 2, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		t.Fatalf("remote search through fleet front end failed: %v", err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits through the front end")
	}

	status, err := http.Get(fes.URL + "/v1/fleet/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer status.Body.Close()
	var fh struct {
		Status   string `json:"status"`
		Backends []struct {
			URL string `json:"url"`
		} `json:"backends"`
	}
	if err := json.NewDecoder(status.Body).Decode(&fh); err != nil {
		t.Fatal(err)
	}
	if fh.Status != "ok" || len(fh.Backends) != 2 {
		t.Fatalf("fleet healthz = %+v", fh)
	}
}
