package main

import (
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"authtext"
	"authtext/internal/httpapi"
)

// The daemon's handler must serve a collection a RemoteClient can
// bootstrap from and verify against — the same end-to-end path `authserved
// -dir ...` exposes on a real socket.
func TestBuildHandlerServesVerifiableCollection(t *testing.T) {
	dir := t.TempDir()
	texts := map[string]string{
		"a.txt": "the merkle tree authenticates the inverted index",
		"b.txt": "the inverted index stores impact entries by frequency",
		"c.txt": "clients verify the tree root against the owner signature",
	}
	for name, body := range texts {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	logger := log.New(io.Discard, "", 0)
	handler, err := buildHandler(dir, true, true, logger)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rc.Search(context.Background(), "inverted index", 2, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		t.Fatalf("remote search against daemon handler failed: %v", err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits")
	}

	health, err := http.Get(srv.URL + httpapi.PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	defer health.Body.Close()
	var h httpapi.Health
	if err := json.NewDecoder(health.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Documents != len(texts) || h.QueriesServed != 1 {
		t.Fatalf("health = %+v", h)
	}
}

func TestBuildHandlerDemoCorpus(t *testing.T) {
	handler, err := buildHandler("", false, true, log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Search(context.Background(), "merkle tree", 3, authtext.TRA, authtext.MHT); err != nil {
		t.Fatalf("demo corpus search failed: %v", err)
	}
}
