package main

import (
	"context"
	"encoding/json"
	"flag"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"authtext"
	"authtext/internal/demo"
	"authtext/internal/httpapi"
)

func writeCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	texts := map[string]string{
		"a.txt": "the merkle tree authenticates the inverted index",
		"b.txt": "the inverted index stores impact entries by frequency",
		"c.txt": "clients verify the tree root against the owner signature",
	}
	for name, body := range texts {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// The daemon's handler must serve a collection a RemoteClient can
// bootstrap from and verify against — the same end-to-end path `authserved
// -dir ...` exposes on a real socket.
func TestBuildHandlerServesVerifiableCollection(t *testing.T) {
	dir := writeCorpus(t)
	logger := log.New(io.Discard, "", 0)
	handler, err := buildHandler(config{dir: dir, vocab: true, quiet: true}, logger)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rc.Search(context.Background(), "inverted index", 2, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		t.Fatalf("remote search against daemon handler failed: %v", err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits")
	}

	health, err := http.Get(srv.URL + httpapi.PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	defer health.Body.Close()
	var h httpapi.Health
	if err := json.NewDecoder(health.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Documents != 3 || h.QueriesServed != 1 {
		t.Fatalf("health = %+v", h)
	}
}

// A daemon booted with -cache-mb serves verifiable answers from its VO
// cache and reports the counters on healthz.
func TestBuildHandlerWithCache(t *testing.T) {
	dir := writeCorpus(t)
	logger := log.New(io.Discard, "", 0)
	handler, err := buildHandler(config{dir: dir, vocab: true, quiet: true, cacheMB: 16}, logger)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := rc.Search(context.Background(), "inverted index", 2, authtext.TNRA, authtext.ChainMHT); err != nil {
			t.Fatalf("search %d failed: %v", i, err)
		}
	}
	health, err := http.Get(srv.URL + httpapi.PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	defer health.Body.Close()
	var h httpapi.Health
	if err := json.NewDecoder(health.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Cache == nil {
		t.Fatalf("healthz missing cache block: %+v", h)
	}
	if h.Cache.Hits != 2 || h.Cache.Misses != 1 || h.Cache.CapacityBytes != 16<<20 {
		t.Fatalf("cache counters = %+v", *h.Cache)
	}
}

func TestBuildHandlerDemoCorpus(t *testing.T) {
	handler, err := buildHandler(config{quiet: true}, log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Search(context.Background(), "merkle tree", 3, authtext.TRA, authtext.MHT); err != nil {
		t.Fatalf("demo corpus search failed: %v", err)
	}
}

// A daemon booted from a snapshot must serve the identical protocol: the
// remote client bootstraps from /v1/manifest and verifies answers, without
// the daemon ever holding a signer.
func TestBuildHandlerFromSnapshot(t *testing.T) {
	docs, _, err := demo.Load("")
	if err != nil {
		t.Fatal(err)
	}
	owner, err := authtext.NewOwner(docs, authtext.WithVocabularyProofs())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "demo.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	handler, err := buildHandler(config{snapshot: path, quiet: true}, log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rc.Search(context.Background(), "merkle tree", 3, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		t.Fatalf("remote search against snapshot-booted daemon failed: %v", err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits")
	}
}

// writeShardCorpus is a corpus big enough that every shard keeps shared
// terms after per-shard singleton removal.
func writeShardCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	texts := map[string]string{
		"a.txt": "the merkle tree authenticates the inverted index",
		"b.txt": "the inverted index stores impact entries by frequency",
		"c.txt": "clients verify the tree root against the owner signature",
		"d.txt": "the inverted index drives the merkle tree verification",
		"e.txt": "entries of the inverted index carry a frequency and a signature",
		"f.txt": "the owner publishes the merkle tree root for verification",
	}
	for name, body := range texts {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// A daemon started with -shards must serve the sharded protocol with
// parallel fan-out, verifiable by a ShardedRemoteClient.
func TestBuildHandlerSharded(t *testing.T) {
	dir := writeShardCorpus(t)
	handler, err := buildHandler(config{dir: dir, shards: 3, vocab: true, quiet: true}, log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewShardedRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rc.Search(context.Background(), "inverted index", 2, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		t.Fatalf("sharded remote search against daemon handler failed: %v", err)
	}
	if len(res.Merged) == 0 {
		t.Fatal("no merged hits")
	}
	health, err := rc.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if health.Shards != 3 || health.Documents != 6 {
		t.Fatalf("health = %+v", health)
	}
}

// A daemon pointed at a sharded snapshot directory must detect it and
// serve the sharded protocol without a signer.
func TestBuildHandlerFromShardedSnapshot(t *testing.T) {
	docs, _, err := demo.Load("")
	if err != nil {
		t.Fatal(err)
	}
	owner, err := authtext.NewShardedOwner(docs, 2, authtext.WithVocabularyProofs())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "shards")
	if err := owner.WriteSnapshotDir(dir); err != nil {
		t.Fatal(err)
	}

	handler, err := buildHandler(config{snapshot: dir, quiet: true}, log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewShardedRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	// "search results" stays frequent in both shards of the demo corpus;
	// "merkle" would be singleton-removed per shard.
	res, err := rc.Search(context.Background(), "search results", 3, authtext.TRA, authtext.ChainMHT)
	if err != nil {
		t.Fatalf("remote search against sharded snapshot daemon failed: %v", err)
	}
	if len(res.Merged) == 0 {
		t.Fatal("no merged hits")
	}
}

// Flag parsing (and -help) must complete before any collection is built:
// parseFlags performs every usage check and touches no documents.
func TestParseFlagsBeforeBuild(t *testing.T) {
	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
	if _, err := parseFlags([]string{"-help"}); err != flag.ErrHelp {
		t.Errorf("-help: got %v, want flag.ErrHelp", err)
	}
	if _, err := parseFlags([]string{"-snapshot", "x.snap", "-dir", "docs"}); err == nil {
		t.Error("-snapshot with -dir accepted")
	}
	if _, err := parseFlags([]string{"-addr", ""}); err == nil {
		t.Error("empty -addr accepted")
	}
	if _, err := parseFlags([]string{"-snapshot", filepath.Join(t.TempDir(), "missing.snap")}); err == nil {
		t.Error("missing snapshot file accepted")
	}
	if _, err := parseFlags([]string{"stray"}); err == nil {
		t.Error("stray positional argument accepted")
	}
	if _, err := parseFlags([]string{"-shards", "-1"}); err == nil {
		t.Error("negative -shards accepted")
	}
	if _, err := parseFlags([]string{"-cache-mb", "-1"}); err == nil {
		t.Error("negative -cache-mb accepted")
	}
	if cfg, err := parseFlags([]string{"-cache-mb", "64"}); err != nil || cfg.cacheMB != 64 {
		t.Errorf("-cache-mb 64: cfg=%+v err=%v", cfg, err)
	}
	if _, err := parseFlags([]string{"-shards", "2", "-snapshot", "x"}); err == nil {
		t.Error("-shards with -snapshot accepted")
	}
	if cfg, err := parseFlags([]string{"-shards", "4"}); err != nil || cfg.shards != 4 {
		t.Errorf("-shards 4: cfg=%+v err=%v", cfg, err)
	}
	cfg, err := parseFlags([]string{"-addr", ":0", "-quiet"})
	if err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	if cfg.addr != ":0" || !cfg.quiet || !cfg.vocab {
		t.Fatalf("cfg = %+v", cfg)
	}
}
