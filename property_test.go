package authtext_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"authtext"
)

// Property-style round-trip suite: randomized corpora (sizes, vocabulary
// overlap, singleton terms, token lengths) and randomized queries (known,
// unknown and mixed terms) must produce honest Search→Verify round trips
// across every Algorithm×Scheme combination — directly, through a snapshot
// round-trip, and sharded. Seeds are fixed so failures reproduce.

// propVocabulary builds a vocabulary pool with controlled overlap: common
// words appear in many documents, rare words in few, and singletons in one.
func propVocabulary(rng *rand.Rand, size int) []string {
	vocab := make([]string, size)
	for i := range vocab {
		n := 3 + rng.Intn(8)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		// A numeric suffix keeps words unique even on collision.
		vocab[i] = string(b) + fmt.Sprint(i)
	}
	return vocab
}

func propCorpus(rng *rand.Rand) ([]authtext.Document, []string) {
	nDocs := 5 + rng.Intn(36)
	common := propVocabulary(rng, 5+rng.Intn(10))
	rare := propVocabulary(rng, 20+rng.Intn(30))
	docs := make([]authtext.Document, nDocs)
	for d := range docs {
		words := make([]string, 0, 30)
		wlen := 8 + rng.Intn(22)
		for w := 0; w < wlen; w++ {
			if rng.Intn(3) > 0 {
				words = append(words, common[rng.Intn(len(common))])
			} else {
				words = append(words, rare[rng.Intn(len(rare))])
			}
		}
		docs[d] = authtext.Document{Content: []byte(strings.Join(words, " "))}
	}
	return docs, append(common, rare...)
}

func propQuery(rng *rand.Rand, vocab []string) string {
	qlen := 1 + rng.Intn(4)
	words := make([]string, qlen)
	for i := range words {
		switch rng.Intn(5) {
		case 0:
			// Out-of-dictionary term ("zz" prefix never collides with the
			// generated vocabulary, which is lower-case-then-digit).
			words[i] = "zzunknown" + fmt.Sprint(rng.Intn(100))
		default:
			words[i] = vocab[rng.Intn(len(vocab))]
		}
	}
	return strings.Join(words, " ")
}

func TestPropertyHonestRoundTrip(t *testing.T) {
	algorithms := []authtext.Algorithm{authtext.TRA, authtext.TNRA}
	schemes := []authtext.Scheme{authtext.MHT, authtext.ChainMHT}
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprint("seed=", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			docs, vocab := propCorpus(rng)
			opts := []authtext.Option{authtext.WithFastSigner([]byte(fmt.Sprint("prop-", trial)))}
			if rng.Intn(2) == 0 {
				opts = append(opts, authtext.WithSingletonTerms())
			}
			if rng.Intn(2) == 0 {
				opts = append(opts, authtext.WithVocabularyProofs())
			}
			owner, err := authtext.NewOwner(docs, opts...)
			if err != nil {
				// A fully singleton dictionary is a legitimate build error
				// for tiny random corpora without WithSingletonTerms.
				if strings.Contains(err.Error(), "no terms survive") {
					t.Skipf("degenerate corpus: %v", err)
				}
				t.Fatal(err)
			}
			server, client := owner.Server(), owner.Client()

			var buf bytes.Buffer
			if err := owner.WriteSnapshot(&buf); err != nil {
				t.Fatal(err)
			}
			snapServer, snapClient, err := authtext.OpenSnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}

			for q := 0; q < 8; q++ {
				query := propQuery(rng, vocab)
				r := 1 + rng.Intn(12)
				for _, algo := range algorithms {
					for _, scheme := range schemes {
						res, err := server.Search(query, r, algo, scheme)
						if err != nil {
							t.Fatalf("%s-%s %q r=%d: %v", algo, scheme, query, r, err)
						}
						if err := client.Verify(query, r, res); err != nil {
							t.Errorf("%s-%s %q r=%d: honest result rejected: %v", algo, scheme, query, r, err)
						}
						// The same query through the snapshot round-trip,
						// cross-verified by the original client.
						sres, err := snapServer.Search(query, r, algo, scheme)
						if err != nil {
							t.Fatalf("snapshot %s-%s %q r=%d: %v", algo, scheme, query, r, err)
						}
						if err := snapClient.Verify(query, r, sres); err != nil {
							t.Errorf("snapshot client %s-%s %q r=%d: %v", algo, scheme, query, r, err)
						}
						if err := client.Verify(query, r, sres); err != nil {
							t.Errorf("original client on snapshot result %s-%s %q r=%d: %v", algo, scheme, query, r, err)
						}
					}
				}
			}
		})
	}
}

// TestPropertyShardedRoundTrip extends the property suite to sharded
// collections: random shard counts and partitioners, fully verified merged
// rankings, including through a sharded snapshot round-trip.
func TestPropertyShardedRoundTrip(t *testing.T) {
	trials := 4
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprint("seed=", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(2000 + trial)))
			docs, vocab := propCorpus(rng)
			shards := 2 + rng.Intn(3)
			opts := []authtext.Option{
				authtext.WithFastSigner([]byte(fmt.Sprint("prop-shard-", trial))),
				authtext.WithSingletonTerms(),
			}
			if rng.Intn(2) == 0 {
				opts = append(opts, authtext.WithShardPartitioner(authtext.PartitionHash))
			}
			owner, err := authtext.NewShardedOwner(docs, shards, opts...)
			if err != nil {
				t.Fatal(err)
			}
			server, client := owner.Server(), owner.Client()

			dir := t.TempDir()
			if err := owner.WriteSnapshotDir(dir); err != nil {
				t.Fatal(err)
			}
			snapServer, snapClient, err := authtext.OpenShardedSnapshotDir(dir)
			if err != nil {
				t.Fatal(err)
			}

			for q := 0; q < 5; q++ {
				query := propQuery(rng, vocab)
				r := 1 + rng.Intn(8)
				for _, algo := range []authtext.Algorithm{authtext.TRA, authtext.TNRA} {
					for _, scheme := range []authtext.Scheme{authtext.MHT, authtext.ChainMHT} {
						res, err := server.Search(query, r, algo, scheme)
						if err != nil {
							t.Fatalf("%s-%s %q r=%d: %v", algo, scheme, query, r, err)
						}
						if err := client.Verify(query, r, res); err != nil {
							t.Errorf("%s-%s %q r=%d: honest sharded result rejected: %v", algo, scheme, query, r, err)
						}
						sres, err := snapServer.Search(query, r, algo, scheme)
						if err != nil {
							t.Fatalf("snapshot %s-%s %q r=%d: %v", algo, scheme, query, r, err)
						}
						if err := snapClient.Verify(query, r, sres); err != nil {
							t.Errorf("sharded snapshot client %s-%s %q r=%d: %v", algo, scheme, query, r, err)
						}
						if err := client.Verify(query, r, sres); err != nil {
							t.Errorf("original sharded client on snapshot result %s-%s %q r=%d: %v", algo, scheme, query, r, err)
						}
					}
				}
			}
		})
	}
}

// TestPropertyCachedZipfianStream interleaves a Zipf-skewed query stream
// with random document-update batches on a live server that serves
// through a VO cache. The invariant under test is the cache transparency
// claim from docs/ARCHITECTURE.md: every response — cache hit or miss,
// before or after any number of generation swaps — verifies against a
// current client, and any answer saved from a superseded generation is
// classified exactly as ErrStaleGeneration. 1000 iterations, -race
// clean.
func TestPropertyCachedZipfianStream(t *testing.T) {
	algorithms := []authtext.Algorithm{authtext.TRA, authtext.TNRA}
	schemes := []authtext.Scheme{authtext.MHT, authtext.ChainMHT}
	iterations := 1000
	if testing.Short() {
		iterations = 200
	}
	rng := rand.New(rand.NewSource(4096))
	docs, vocab := propCorpus(rng)
	owner, _, err := authtext.NewLiveOwner(docs,
		authtext.WithFastSigner([]byte("prop-cache")),
		authtext.WithSingletonTerms())
	if err != nil {
		t.Fatal(err)
	}
	srv := owner.Server()
	cache := authtext.NewVOCache(4 << 20)
	srv.SetVOCache(cache)
	client := owner.Client()

	// A hot pool of queries replayed with Zipfian skew: the head queries
	// recur constantly (cache hits), the tail keeps missing.
	pool := make([]string, 24)
	for i := range pool {
		pool[i] = propQuery(rng, vocab)
	}
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(pool)-1))

	type saved struct {
		query string
		r     int
		res   *authtext.SearchResult
		gen   uint64
	}
	var old *saved
	generation := uint64(1)
	for i := 0; i < iterations; i++ {
		// ~10% of iterations publish an update batch, swapping the
		// generation under the cache mid-stream.
		if rng.Intn(10) == 0 {
			words := make([]string, 5+rng.Intn(10))
			for w := range words {
				words[w] = vocab[rng.Intn(len(vocab))]
			}
			_, rep, err := owner.Update([]authtext.Document{{Content: []byte(strings.Join(words, " "))}}, nil)
			if err != nil {
				t.Fatalf("iter %d update: %v", i, err)
			}
			generation = rep.Generation
			if err := client.Advance(owner.ManifestUpdate()); err != nil {
				t.Fatalf("iter %d advance: %v", i, err)
			}
		}

		query := pool[zipf.Uint64()]
		r := 1 + rng.Intn(8)
		algo := algorithms[rng.Intn(len(algorithms))]
		scheme := schemes[rng.Intn(len(schemes))]
		res, err := srv.Search(query, r, algo, scheme)
		if err != nil {
			t.Fatalf("iter %d %s-%s %q r=%d: %v", i, algo, scheme, query, r, err)
		}
		if res.Generation != generation {
			t.Fatalf("iter %d: answer generation %d, current is %d (cache leaked across a swap)", i, res.Generation, generation)
		}
		if err := client.Verify(query, r, res); err != nil {
			t.Fatalf("iter %d %s-%s %q r=%d: response rejected: %v", i, algo, scheme, query, r, err)
		}

		// A response saved earlier must still verify while its generation
		// is current, and classify as ErrStaleGeneration once superseded.
		if old != nil {
			err := client.Verify(old.query, old.r, old.res)
			switch {
			case old.gen == generation && err != nil:
				t.Fatalf("iter %d: same-generation saved answer rejected: %v", i, err)
			case old.gen != generation && !errors.Is(err, authtext.ErrStaleGeneration):
				t.Fatalf("iter %d: stale saved answer (gen %d vs %d) classified as %v", i, old.gen, generation, err)
			}
		}
		if rng.Intn(4) == 0 {
			old = &saved{query: query, r: r, res: res, gen: generation}
		}
	}
	st := cache.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("stream never exercised both cache paths: %+v", st)
	}
	t.Logf("cache after %d iterations: %+v (hit rate %.1f%%)", iterations, st, 100*st.HitRate())
}

// TestPropertyLiveUpdateSequence drives a live collection through a
// random add/remove/search/verify sequence: after every accepted update
// the advancing client verifies fresh answers across all
// Algorithm×Scheme combinations, and a stale answer saved from any
// earlier generation is rejected as tampering once the client advances.
func TestPropertyLiveUpdateSequence(t *testing.T) {
	algorithms := []authtext.Algorithm{authtext.TRA, authtext.TNRA}
	schemes := []authtext.Scheme{authtext.MHT, authtext.ChainMHT}
	trials := 4
	steps := 8
	if testing.Short() {
		trials, steps = 2, 4
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprint("seed=", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7000 + trial)))
			docs, vocab := propCorpus(rng)
			docAt := func() authtext.Document {
				words := make([]string, 6+rng.Intn(12))
				for i := range words {
					words[i] = vocab[rng.Intn(len(vocab))]
				}
				return authtext.Document{Content: []byte(strings.Join(words, " "))}
			}
			owner, handles, err := authtext.NewLiveOwner(docs,
				authtext.WithFastSigner([]byte(fmt.Sprint("prop-live-", trial))),
				authtext.WithSingletonTerms())
			if err != nil {
				t.Fatal(err)
			}
			srv := owner.Server()
			client := owner.Client()
			var stale *authtext.SearchResult
			var staleQuery string

			for step := 0; step < steps; step++ {
				// Random batch: adds, removes, or both (never emptying).
				var add []authtext.Document
				var remove []authtext.DocHandle
				for n := rng.Intn(3); n >= 0; n-- {
					add = append(add, docAt())
				}
				if len(handles) > 3 {
					for n := rng.Intn(2); n >= 0 && len(handles) > 3; n-- {
						i := rng.Intn(len(handles))
						remove = append(remove, handles[i])
						handles = append(handles[:i], handles[i+1:]...)
					}
				}
				added, rep, err := owner.Update(add, remove)
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				handles = append(handles, added...)
				if rep.Generation != uint64(step+2) {
					t.Fatalf("step %d published generation %d", step, rep.Generation)
				}
				if err := client.Advance(owner.ManifestUpdate()); err != nil {
					t.Fatalf("step %d advance: %v", step, err)
				}

				query := propQuery(rng, vocab)
				r := 1 + rng.Intn(8)
				for _, algo := range algorithms {
					for _, scheme := range schemes {
						res, err := srv.Search(query, r, algo, scheme)
						if err != nil {
							t.Fatalf("step %d %s-%s: %v", step, algo, scheme, err)
						}
						if res.Generation != rep.Generation {
							t.Fatalf("step %d answer generation %d, want %d", step, res.Generation, rep.Generation)
						}
						if err := client.Verify(query, r, res); err != nil {
							t.Errorf("step %d %s-%s honest result rejected: %v", step, algo, scheme, err)
						}
					}
				}
				// An answer saved from an earlier generation must be stale
				// for the advanced client.
				if stale != nil {
					err := client.Verify(staleQuery, 3, stale)
					if !errors.Is(err, authtext.ErrStaleGeneration) {
						t.Errorf("step %d: stale answer classified as %v", step, err)
					}
				}
				if rng.Intn(2) == 0 {
					staleQuery = propQuery(rng, vocab)
					if stale, err = srv.Search(staleQuery, 3, authtext.TRA, authtext.ChainMHT); err != nil {
						t.Fatal(err)
					}
				}
			}
		})
	}
}

// TestPropertyLiveRemovalExclusion is the removal-specific property: under
// randomized interleaved add/remove sequences, a tombstoned document's
// content never appears in a verified answer — including the empty-answer
// case, where the verifier must prove the absence of a term whose only
// postings belong to dead slots — while every live document stays
// reachable through its own marker term. Each document carries a unique
// marker token so reachability is decidable from the outside.
func TestPropertyLiveRemovalExclusion(t *testing.T) {
	algorithms := []authtext.Algorithm{authtext.TRA, authtext.TNRA}
	schemes := []authtext.Scheme{authtext.MHT, authtext.ChainMHT}
	trials := 3
	steps := 6
	if testing.Short() {
		trials, steps = 2, 3
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprint("seed=", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(9100 + trial)))
			filler := propVocabulary(rng, 12)
			nextMarker := 0
			makeDoc := func() (authtext.Document, string) {
				marker := fmt.Sprintf("markerxyz%d", nextMarker)
				nextMarker++
				words := []string{marker}
				for w := 4 + rng.Intn(10); w > 0; w-- {
					words = append(words, filler[rng.Intn(len(filler))])
				}
				return authtext.Document{Content: []byte(strings.Join(words, " "))}, marker
			}
			const initial = 20
			docs := make([]authtext.Document, initial)
			markers := make([]string, initial) // marker per live handle, same order
			for i := range docs {
				docs[i], markers[i] = makeDoc()
			}
			owner, handles, err := authtext.NewLiveOwner(docs,
				authtext.WithFastSigner([]byte(fmt.Sprint("prop-removal-", trial))),
				authtext.WithSingletonTerms())
			if err != nil {
				t.Fatal(err)
			}
			srv := owner.Server()
			client := owner.Client()
			var removedMarkers []string

			for step := 0; step < steps; step++ {
				// Remove a random few, sometimes add replacements.
				var add []authtext.Document
				var addMarkers []string
				for n := rng.Intn(3); n > 0; n-- {
					d, m := makeDoc()
					add = append(add, d)
					addMarkers = append(addMarkers, m)
				}
				var remove []authtext.DocHandle
				for n := 1 + rng.Intn(3); n > 0 && len(handles) > 2; n-- {
					i := rng.Intn(len(handles))
					remove = append(remove, handles[i])
					removedMarkers = append(removedMarkers, markers[i])
					handles = append(handles[:i], handles[i+1:]...)
					markers = append(markers[:i], markers[i+1:]...)
				}
				added, rep, err := owner.Update(add, remove)
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				handles = append(handles, added...)
				markers = append(markers, addMarkers...)
				if err := client.Advance(owner.ManifestUpdate()); err != nil {
					t.Fatalf("step %d advance: %v", step, err)
				}
				if len(handles) != rep.Documents {
					t.Fatalf("step %d: tracking %d handles but report says %d live documents",
						step, len(handles), rep.Documents)
				}
				if got := len(owner.Handles()); got != len(handles) {
					t.Fatalf("step %d: owner tracks %d handles, test tracks %d", step, got, len(handles))
				}

				// Every removed marker must yield a verified answer free of
				// the removed document — usually an empty one, since markers
				// are unique to their document.
				for _, m := range removedMarkers {
					for _, algo := range algorithms {
						for _, scheme := range schemes {
							res, err := srv.Search(m, 2, algo, scheme)
							if err != nil {
								t.Fatalf("step %d %s-%s %q: %v", step, algo, scheme, m, err)
							}
							if err := client.Verify(m, 2, res); err != nil {
								t.Errorf("step %d %s-%s: honest answer for removed marker %q rejected: %v",
									step, algo, scheme, m, err)
							}
							for _, h := range res.Hits {
								if bytes.Contains(h.Content, []byte(m)) {
									t.Errorf("step %d %s-%s: removed document (marker %q) served as doc %d",
										step, algo, scheme, m, h.DocID)
								}
							}
						}
					}
				}

				// A random live marker must still find its document.
				if len(markers) > 0 {
					i := rng.Intn(len(markers))
					res, err := srv.Search(markers[i], 2, authtext.TNRA, authtext.ChainMHT)
					if err != nil {
						t.Fatalf("step %d live marker: %v", step, err)
					}
					if err := client.Verify(markers[i], 2, res); err != nil {
						t.Errorf("step %d: live marker %q answer rejected: %v", step, markers[i], err)
					}
					found := false
					for _, h := range res.Hits {
						if bytes.Contains(h.Content, []byte(markers[i])) {
							found = true
						}
					}
					if !found {
						t.Errorf("step %d: live document (marker %q) missing from its own query", step, markers[i])
					}
				}
			}
		})
	}
}
