module authtext

go 1.22
