package authtext_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"authtext"
	"authtext/internal/httpapi"
)

// The sharded remote suite proves the distributed trust model across a
// real HTTP boundary: an honest sharded deployment's answers verify, and
// in-transit mutations of any shard's response or of the merged ranking
// are rejected by the ShardedRemoteClient's local verification.

var shardedRemoteFixture struct {
	once    sync.Once
	handler http.Handler
	export  []byte
	err     error
}

func shardedRemoteEnv(t *testing.T) (http.Handler, []byte) {
	t.Helper()
	shardedRemoteFixture.once.Do(func() {
		owner, err := authtext.NewShardedOwner(remoteCorpus(), 3, authtext.WithSingletonTerms())
		if err != nil {
			shardedRemoteFixture.err = err
			return
		}
		export, err := owner.ExportClient()
		if err != nil {
			shardedRemoteFixture.err = err
			return
		}
		shardedRemoteFixture.export = export
		shardedRemoteFixture.handler = authtext.NewShardedHTTPHandler(owner.Server(), export)
	})
	if shardedRemoteFixture.err != nil {
		t.Fatal(shardedRemoteFixture.err)
	}
	return shardedRemoteFixture.handler, shardedRemoteFixture.export
}

func TestShardedRemoteHonestServerVerifies(t *testing.T) {
	handler, _ := shardedRemoteEnv(t)
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewShardedRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	health, err := rc.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.Shards != 3 {
		t.Fatalf("health.Shards = %d, want 3", health.Shards)
	}
	for _, algo := range []authtext.Algorithm{authtext.TRA, authtext.TNRA} {
		for _, scheme := range []authtext.Scheme{authtext.MHT, authtext.ChainMHT} {
			t.Run(algo.String()+"-"+scheme.String(), func(t *testing.T) {
				res, err := rc.Search(ctx, remoteQuery, remoteR, algo, scheme)
				if err != nil {
					t.Fatalf("verified sharded search failed: %v", err)
				}
				if len(res.Merged) == 0 {
					t.Fatal("empty merged ranking")
				}
				if len(res.Merged[0].Content) == 0 {
					t.Fatal("merged hit content not delivered")
				}
				if res.Stats.Shards != 3 || res.Stats.VOBytes == 0 {
					t.Fatalf("stats not populated: %+v", res.Stats)
				}
			})
		}
	}
}

func TestShardedRemoteOutOfBandExport(t *testing.T) {
	handler, export := shardedRemoteEnv(t)
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := authtext.NewShardedRemoteClient(srv.URL, authtext.WithShardedClientExport(export))
	if err != nil {
		t.Fatal(err)
	}
	if rc.Shards() != 3 {
		t.Fatalf("Shards() = %d before any traffic, want 3", rc.Shards())
	}
	if _, err := rc.Search(context.Background(), remoteQuery, remoteR, authtext.TNRA, authtext.ChainMHT); err != nil {
		t.Fatalf("out-of-band bootstrapped search failed: %v", err)
	}
}

// shardedTamperingProxy mutates every /v1/shards/search response in
// transit; other endpoints pass through untouched.
func shardedTamperingProxy(honest http.Handler, mutate func(*httpapi.ShardedSearchResponse)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != httpapi.PathShardSearch {
			honest.ServeHTTP(w, r)
			return
		}
		// This adversary tampers at the JSON layer; force the honest
		// server off binary frames (the framed path has its own battery
		// in remote_wire_test.go).
		r.Header.Del("Accept")
		rec := httptest.NewRecorder()
		honest.ServeHTTP(rec, r)
		if rec.Code != http.StatusOK {
			w.WriteHeader(rec.Code)
			w.Write(rec.Body.Bytes())
			return
		}
		var resp httpapi.ShardedSearchResponse
		if err := json.NewDecoder(bytes.NewReader(rec.Body.Bytes())).Decode(&resp); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		mutate(&resp)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(&resp)
	})
}

func TestShardedRemoteTamperingRejected(t *testing.T) {
	handler, _ := shardedRemoteEnv(t)

	mutations := []struct {
		name   string
		mutate func(*httpapi.ShardedSearchResponse)
	}{
		{"inflate shard score", func(r *httpapi.ShardedSearchResponse) {
			s := r.Merged[0].Shard
			r.Shards[s].Hits[0].Score += 1
		}},
		{"forge shard content", func(r *httpapi.ShardedSearchResponse) {
			s := r.Merged[0].Shard
			r.Shards[s].Hits[0].Content = []byte("forged")
		}},
		{"corrupt shard vo", func(r *httpapi.ShardedSearchResponse) {
			s := r.Merged[0].Shard
			r.Shards[s].VO[len(r.Shards[s].VO)/2] ^= 1
		}},
		{"drop a shard", func(r *httpapi.ShardedSearchResponse) {
			r.Shards = r.Shards[:len(r.Shards)-1]
		}},
		{"reorder merge", func(r *httpapi.ShardedSearchResponse) {
			r.Merged[0], r.Merged[1] = r.Merged[1], r.Merged[0]
		}},
		{"truncate merge", func(r *httpapi.ShardedSearchResponse) {
			r.Merged = r.Merged[1:]
		}},
		{"rewrite global id", func(r *httpapi.ShardedSearchResponse) {
			r.Merged[0].GlobalID++
		}},
	}
	for _, algo := range []authtext.Algorithm{authtext.TRA, authtext.TNRA} {
		for _, m := range mutations {
			t.Run(algo.String()+"/"+m.name, func(t *testing.T) {
				srv := httptest.NewServer(shardedTamperingProxy(handler, m.mutate))
				defer srv.Close()
				rc, err := authtext.NewShardedRemoteClient(srv.URL)
				if err != nil {
					t.Fatal(err)
				}
				_, err = rc.Search(context.Background(), remoteQuery, remoteR, algo, authtext.ChainMHT)
				if err == nil {
					t.Fatal("tampered sharded response accepted")
				}
				if !authtext.IsTampered(err) {
					t.Fatalf("error not classified as tampering: %v", err)
				}
			})
		}
	}
}

func TestShardedEndpointsAbsentOnPlainServer(t *testing.T) {
	handler, _ := remoteEnv(t)
	srv := httptest.NewServer(handler)
	defer srv.Close()

	resp, err := http.Get(srv.URL + httpapi.PathShardManifest)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("plain server answered %d on %s", resp.StatusCode, httpapi.PathShardManifest)
	}
}

func TestPlainEndpointsRedirectOnShardedServer(t *testing.T) {
	handler, _ := shardedRemoteEnv(t)
	srv := httptest.NewServer(handler)
	defer srv.Close()

	for _, path := range []string{httpapi.PathSearch + "?q=keep", httpapi.PathManifest} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var env httpapi.ErrorResponse
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: error body is not an envelope: %v", path, err)
		}
		if resp.StatusCode != http.StatusNotFound || env.Error.Code != httpapi.CodeNotFound {
			t.Errorf("%s: status %d code %q", path, resp.StatusCode, env.Error.Code)
		}
	}
}
