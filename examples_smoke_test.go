package authtext_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// Examples smoke suite: every examples/ program must build and run to
// completion against its embedded corpus, so the examples cannot silently
// rot as the API evolves. Each program is a self-contained demo that exits
// 0 on success and non-zero (log.Fatal) when a verification that should
// succeed fails — so exit status is the assertion.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples build and run RSA collections; skipped in -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatal("no example programs found")
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			deadline := 3 * time.Minute
			if d, ok := t.Deadline(); ok {
				if until := time.Until(d) - 10*time.Second; until < deadline {
					deadline = until
				}
			}
			cmd := exec.Command(goBin, "run", "./"+filepath.Join("examples", name))
			cmd.Env = os.Environ()
			done := make(chan struct{})
			var out []byte
			var runErr error
			go func() {
				out, runErr = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(deadline):
				cmd.Process.Kill()
				<-done
				t.Fatalf("example %s did not finish within %v", name, deadline)
			}
			if runErr != nil {
				t.Fatalf("example %s failed: %v\n%s", name, runErr, out)
			}
			if len(strings.TrimSpace(string(out))) == 0 {
				t.Errorf("example %s produced no output", name)
			}
		})
	}
}
