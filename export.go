package authtext

import (
	"encoding/binary"
	"errors"
	"fmt"

	"authtext/internal/core"
	"authtext/internal/sig"
)

// Client export format: everything a user needs to verify results, in one
// self-contained blob the owner can publish out of band (web page, package
// registry, smart card): the signed manifest and the RSA public key.
//
// Layout: magic "ATCX" | u16 len + manifest bytes | u16 len + manifest
// signature | u16 len + PKIX public key DER.

const exportMagic = "ATCX"

// ExportClient serialises the verification material for distribution to
// users. It requires the default RSA signer (the keyed-hash benchmark
// signer has no public half to export).
func (o *Owner) ExportClient() ([]byte, error) {
	return o.Client().Export()
}

// Export serialises this client's verification material as an ATCX blob —
// the same format ExportClient produces. It lets a snapshot-booted server
// (which has a Client but no Owner) publish the manifest bootstrap
// endpoint. RSA-verified clients only.
func (c *Client) Export() ([]byte, error) {
	rsaVerifier, ok := c.verifier.(*sig.RSAVerifier)
	if !ok {
		return nil, errors.New("authtext: only RSA-signed collections can be exported")
	}
	der, err := rsaVerifier.Marshal()
	if err != nil {
		return nil, err
	}
	enc := c.manifest.Encode()
	out := make([]byte, 0, len(exportMagic)+6+len(enc)+len(c.manifestSig)+len(der))
	out = append(out, exportMagic...)
	out = appendChunk(out, enc)
	out = appendChunk(out, c.manifestSig)
	out = appendChunk(out, der)
	return out, nil
}

func appendChunk(b, chunk []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(chunk)))
	return append(b, chunk...)
}

// splitClientExport slices an ATCX blob into its three chunks: manifest
// encoding, manifest signature, PKIX public key DER.
func splitClientExport(data []byte) (manifestRaw, sigRaw, keyDER []byte, err error) {
	if len(data) < len(exportMagic) || string(data[:len(exportMagic)]) != exportMagic {
		return nil, nil, nil, errors.New("authtext: not a client export")
	}
	rest := data[len(exportMagic):]
	chunks := make([][]byte, 3)
	for i := range chunks {
		if len(rest) < 2 {
			return nil, nil, nil, errors.New("authtext: truncated client export")
		}
		n := int(binary.BigEndian.Uint16(rest))
		rest = rest[2:]
		if len(rest) < n {
			return nil, nil, nil, errors.New("authtext: truncated client export")
		}
		chunks[i] = rest[:n]
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, nil, nil, errors.New("authtext: trailing bytes in client export")
	}
	return chunks[0], chunks[1], chunks[2], nil
}

// NewClientFromExport reconstructs a Client from an ExportClient blob. The
// manifest signature is checked against the embedded public key before the
// client is returned, so a tampered blob is rejected here rather than at
// first use.
func NewClientFromExport(data []byte) (*Client, error) {
	manifestRaw, sigRaw, keyDER, err := splitClientExport(data)
	if err != nil {
		return nil, err
	}
	manifest, err := core.DecodeManifest(manifestRaw)
	if err != nil {
		return nil, fmt.Errorf("authtext: %w", err)
	}
	verifier, err := sig.ParseRSAVerifier(keyDER)
	if err != nil {
		return nil, err
	}
	sigCopy := append([]byte(nil), sigRaw...)
	if err := core.VerifyManifest(manifest, sigCopy, verifier); err != nil {
		return nil, err
	}
	// Manifest verified just above; seed maxGen from it.
	return &Client{manifest: manifest, manifestSig: sigCopy, verifier: verifier,
		checked: true, maxGen: manifest.Generation}, nil
}
