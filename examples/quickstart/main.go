// Quickstart: the minimal owner → server → client round trip.
//
// The owner indexes a handful of documents and signs the authentication
// structures; the (untrusted) server answers a top-3 query with a
// verification object; the client checks the result against the owner's
// public key before trusting it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"authtext"
)

func main() {
	docs := []authtext.Document{
		{Content: []byte("The old night keeper keeps the keep in the town")},
		{Content: []byte("In the big old house in the big old gown")},
		{Content: []byte("The house in the town had the big old keep")},
		{Content: []byte("Where the old night keeper never did sleep")},
		{Content: []byte("The night keeper keeps the keep in the night")},
		{Content: []byte("And this is the big old sleeps dark light house")},
		{Content: []byte("A merchant sailed along the river at dawn with silk and spice")},
		{Content: []byte("The market square filled with traders selling copper and grain")},
		{Content: []byte("Fishermen mended their nets beside the harbor wall at dusk")},
		{Content: []byte("A stone bridge crossed the river near the old mill and granary")},
		{Content: []byte("Shepherds drove their flock across the valley before the storm")},
		{Content: []byte("The library kept maps and grain ledgers and letters under seal")},
	}

	// 1. The data owner builds the index, the Merkle structures, and signs
	//    their roots with a fresh RSA-1024 key.
	owner, err := authtext.NewOwner(docs)
	if err != nil {
		log.Fatal(err)
	}
	server := owner.Server() // runs at the (untrusted) search engine
	client := owner.Client() // holds only the manifest and public key

	// 2. The server answers a similarity query. TNRA + chain-MHT is the
	//    configuration the paper recommends (§4.5).
	const query = "night keeper keep"
	res, err := server.Search(query, 3, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The client verifies the result before using it.
	if err := client.Verify(query, 3, res); err != nil {
		log.Fatalf("result REJECTED: %v", err)
	}

	fmt.Printf("query %q verified (%d-byte proof, %.1f entries/term read)\n\n",
		query, res.Stats.VOBytes, res.Stats.EntriesPerTerm)
	for i, h := range res.Hits {
		fmt.Printf("%d. doc %d (score %.4f): %s\n", i+1, h.DocID, h.Score, h.Content)
	}
}
