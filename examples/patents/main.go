// Patents: the MicroPatent threat scenario from the paper's introduction.
//
// A patent examiner queries a third-party search portal. The portal has
// been compromised and mounts, in turn, the three attacks of §1:
//
//  1. incomplete results — a competitor's patent silently dropped;
//  2. altered ranking — the order of two results swapped;
//  3. spurious results — a fake patent spliced into the answer.
//
// Each attack is simulated by mutating the answer after the honest search,
// and each is caught by the client-side verification.
//
// Run with: go run ./examples/patents
package main

import (
	"fmt"
	"log"

	"authtext"
)

var patents = []string{
	"Patent 4001: method for braking a bicycle with a hydraulic disc and caliper assembly",
	"Patent 4002: bicycle braking system using regenerative electric motor resistance",
	"Patent 4003: hydraulic brake fluid reservoir with automatic pressure compensation",
	"Patent 4004: carbon fiber bicycle frame with integrated cable routing channels",
	"Patent 4005: disc brake rotor with ventilated cooling fins for bicycles",
	"Patent 4006: anti lock braking controller for lightweight electric bicycles",
	"Patent 4007: gear shifting mechanism with electronic derailleur actuation",
	"Patent 4008: suspension fork with adjustable hydraulic damping circuit",
	"Patent 4009: braking lever geometry for reduced hand fatigue on long descents",
	"Patent 4010: quick release wheel hub with safety retention for disc brakes",
	"Patent 4011: tire compound with silica additive for wet braking performance",
	"Patent 4012: handlebar mounted display for electric bicycle battery status",
}

func main() {
	docs := make([]authtext.Document, len(patents))
	for i, p := range patents {
		docs[i] = authtext.Document{Content: []byte(p)}
	}
	owner, err := authtext.NewOwner(docs)
	if err != nil {
		log.Fatal(err)
	}
	server, client := owner.Server(), owner.Client()

	const query = "bicycle hydraulic disc braking"
	const r = 4
	honest, err := server.Search(query, r, authtext.TRA, authtext.ChainMHT)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Verify(query, r, honest); err != nil {
		log.Fatalf("honest answer rejected: %v", err)
	}
	fmt.Printf("honest answer for %q VERIFIED:\n", query)
	for i, h := range honest.Hits {
		fmt.Printf("  %d. (%.4f) %s\n", i+1, h.Score, h.Content)
	}
	fmt.Println()

	attacks := []struct {
		name  string
		apply func(*authtext.SearchResult)
	}{
		{
			"incomplete result (competitor's patent dropped)",
			func(res *authtext.SearchResult) {
				res.Hits = res.Hits[1:]
			},
		},
		{
			"altered ranking (top two results swapped)",
			func(res *authtext.SearchResult) {
				res.Hits[0], res.Hits[1] = res.Hits[1], res.Hits[0]
			},
		},
		{
			"spurious result (fake patent spliced in)",
			func(res *authtext.SearchResult) {
				fake := authtext.Hit{
					DocID:   len(patents) + 99,
					Score:   res.Hits[0].Score + 1,
					Content: []byte("Patent 9999: perpetual motion braking system"),
				}
				res.Hits = append([]authtext.Hit{fake}, res.Hits[1:]...)
			},
		},
	}

	for _, attack := range attacks {
		// The compromised portal recomputes nothing; it mutates the honest
		// answer and replays the original proof.
		tampered, err := server.Search(query, r, authtext.TRA, authtext.ChainMHT)
		if err != nil {
			log.Fatal(err)
		}
		attack.apply(tampered)
		err = client.Verify(query, r, tampered)
		if err == nil {
			log.Fatalf("ATTACK SUCCEEDED: %s", attack.name)
		}
		fmt.Printf("attack %-55s → detected: %v\n", attack.name, err)
	}
	fmt.Println("\nall three §1 attacks detected")
}
