// Webgraph: authenticated search with hyperlink-based authority boosting —
// the paper's §5 future-work direction, implemented as an extension.
//
// A small "web" of pages links preferentially to a handful of hubs. The
// owner computes PageRank over the link graph, commits the authority
// scores in an authority-MHT, and publishes beta and A_max in the signed
// manifest. Rankings become S(d|Q) + β·A(d) for matching pages; the VO
// additionally proves every revealed page's authority, so a compromised
// engine can neither inflate a page's authority nor hide a hub.
//
// Run with: go run ./examples/webgraph
package main

import (
	"fmt"
	"log"

	"authtext"
)

// pages and links model a tiny tech-news web: page 0 is the front page
// everyone links to, page 1 a popular reference.
var pages = []string{
	"front page linking the best articles about storage engines and verified search",
	"reference manual for the verified search engine and its storage format",
	"blog post about storage engines with benchmarks and tuning advice",
	"opinion column about search ranking and the economics of verified results",
	"tutorial building a storage engine from scratch in a weekend",
	"forum thread comparing storage engines for verified workloads",
	"press release announcing a verified search product for legal archives",
	"archived mailing list discussion of ranking functions and storage",
	"personal notes on search ranking experiments with storage backends",
	"link roundup of storage and ranking articles from this month",
}

var links = [][]int{
	1: {0}, 2: {0, 1}, 3: {0}, 4: {1, 0}, 5: {0, 2, 1},
	6: {0}, 7: {1}, 8: {2, 0}, 9: {0, 1, 2, 3},
}

func main() {
	docs := make([]authtext.Document, len(pages))
	for i, p := range pages {
		docs[i] = authtext.Document{Content: []byte(p)}
	}
	linkLists := make([][]int, len(pages))
	copy(linkLists, links)

	plainOwner, err := authtext.NewOwner(docs)
	if err != nil {
		log.Fatal(err)
	}
	boostedOwner, err := authtext.NewOwner(docs, authtext.WithPageRank(linkLists, 3.0))
	if err != nil {
		log.Fatal(err)
	}

	const query = "storage engines verified search"
	const r = 4

	show := func(label string, owner *authtext.Owner) *authtext.SearchResult {
		server, client := owner.Server(), owner.Client()
		res, err := server.Search(query, r, authtext.TNRA, authtext.ChainMHT)
		if err != nil {
			log.Fatal(err)
		}
		if err := client.Verify(query, r, res); err != nil {
			log.Fatalf("%s: verification failed: %v", label, err)
		}
		fmt.Printf("%s (VO %d bytes):\n", label, res.Stats.VOBytes)
		for i, h := range res.Hits {
			fmt.Printf("  %d. page %d (%.4f) %.60s…\n", i+1, h.DocID, h.Score, h.Content)
		}
		fmt.Println()
		return res
	}

	show("plain Okapi ranking", plainOwner)
	res := show("PageRank-boosted ranking (β = 3)", boostedOwner)

	// A compromised engine cannot quietly strip the boost: the claimed
	// scores would no longer match the certified authorities.
	client := boostedOwner.Client()
	res.Hits[0].Score -= 1.0
	if err := client.Verify(query, r, res); err != nil {
		fmt.Printf("score-tampering detected: %v\n", err)
	} else {
		log.Fatal("tampered boost went undetected")
	}
}
