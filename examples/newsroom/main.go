// Newsroom: a subscription news archive compares the two query algorithms
// on the same collection.
//
// A financial-news archive (the kind of paid content service the paper's
// introduction motivates) serves verified searches. The example runs the
// same queries under TRA and TNRA with both authentication schemes and
// prints the cost profile of each — reproducing, at miniature scale, the
// §4.5 conclusion that TNRA + chain-MHT gives the smallest proofs and the
// least I/O.
//
// Run with: go run ./examples/newsroom
package main

import (
	"fmt"
	"log"
	"strings"

	"authtext"
)

var articles = []string{
	"Central bank raises interest rates amid persistent inflation in consumer prices",
	"Quarterly earnings beat expectations as cloud revenue doubles for the software giant",
	"Merger talks between the two railway operators stall over regulatory concerns",
	"Inflation cools for the third straight month easing pressure on the central bank",
	"Venture funding for climate technology startups reaches a record high this quarter",
	"The airline restores dividend payments after three years of pandemic losses",
	"Regulators approve the acquisition of the chip designer despite antitrust objections",
	"Oil prices slide as production quotas loosen across the exporting countries",
	"The retailer warns on margins as freight costs climb and inventories swell",
	"Bond yields surge after the central bank signals further interest rate increases",
	"Housing starts fall sharply as mortgage rates reach a two decade high",
	"The carmaker recalls half a million vehicles over a braking software defect",
	"Earnings season opens with banks reporting stronger than expected trading revenue",
	"Grain exports resume under the renewed shipping corridor agreement",
	"The exchange fines a brokerage for reporting failures in derivatives trading",
	"Semiconductor inventories normalize as data center demand absorbs the surplus",
	"Consumer confidence rebounds on falling fuel prices and steady employment",
	"The pension fund shifts allocations toward inflation protected securities",
	"Streaming subscriptions plateau prompting the studio to bundle its services",
	"Copper futures rally on electrification demand and constrained mine supply",
	"The regulator proposes new disclosure rules for climate related financial risk",
	"Private equity raises a record buyout fund targeting industrial automation",
	"The startup delays its listing citing volatile market conditions",
	"Currency intervention steadies the exchange rate after a week of declines",
}

func main() {
	docs := make([]authtext.Document, len(articles))
	for i, a := range articles {
		docs[i] = authtext.Document{Content: []byte(a)}
	}
	owner, err := authtext.NewOwner(docs)
	if err != nil {
		log.Fatal(err)
	}
	buildMs, sigs, _ := owner.Stats()
	fmt.Printf("archive indexed: %d articles, %d signatures, %.0f ms build\n\n", len(articles), sigs, buildMs)
	server, client := owner.Server(), owner.Client()

	queries := []string{
		"central bank interest rates",
		"earnings revenue trading",
		"inflation consumer prices",
	}
	configs := []struct {
		algo   authtext.Algorithm
		scheme authtext.Scheme
	}{
		{authtext.TRA, authtext.MHT},
		{authtext.TRA, authtext.ChainMHT},
		{authtext.TNRA, authtext.MHT},
		{authtext.TNRA, authtext.ChainMHT},
	}

	fmt.Printf("%-12s %-30s %10s %10s %8s\n", "variant", "query", "entries/t", "io", "vo(B)")
	for _, q := range queries {
		for _, cfg := range configs {
			res, err := server.Search(q, 3, cfg.algo, cfg.scheme)
			if err != nil {
				log.Fatal(err)
			}
			if err := client.Verify(q, 3, res); err != nil {
				log.Fatalf("verification failed for %q under %v-%v: %v", q, cfg.algo, cfg.scheme, err)
			}
			st := res.Stats
			fmt.Printf("%-12s %-30s %10.1f %10s %8d\n",
				cfg.algo.String()+"-"+cfg.scheme.String(), truncate(q, 30),
				st.EntriesPerTerm, st.IOTime, st.VOBytes)
		}
		fmt.Println()
	}

	// Show the verified answer of the recommended configuration.
	q := queries[0]
	res, err := server.Search(q, 3, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Verify(q, 3, res); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified answer for %q:\n", q)
	for i, h := range res.Hits {
		fmt.Printf("  %d. (%.4f) %s\n", i+1, h.Score, h.Content)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return strings.TrimSpace(s[:n-1]) + "…"
}
