// Livefeed: authenticated search over a corpus that changes while it is
// being served — the generation model of docs/UPDATES.md.
//
// A breaking-news feed publishes articles, corrects one, and retracts
// another. Every update batch becomes a new signed generation, swapped
// atomically under the running server. The subscriber's client follows
// the generations forward — and proves that it cannot be rolled back: a
// replayed answer from before the retraction (still showing the retracted
// article) and a re-presented older manifest are both rejected as
// tampering (errors.Is(err, authtext.ErrStaleGeneration)).
package main

import (
	"errors"
	"fmt"
	"log"

	"authtext"
)

func doc(s string) authtext.Document { return authtext.Document{Content: []byte(s)} }

func main() {
	articles := []authtext.Document{
		doc("markets rally as the central bank signals steady interest rates"),
		doc("storm warnings close the harbor and the old bridge before the weekend"),
		doc("the city council approves funding for the new harbor bridge"),
		doc("researchers publish results on verified search over signed indexes"),
		doc("the harbor bridge design faces criticism over projected costs"),
		doc("central bank researchers model interest rate scenarios for markets"),
	}

	// Generation 1: the feed goes live.
	owner, handles, err := authtext.NewLiveOwner(articles)
	if err != nil {
		log.Fatal(err)
	}
	server := owner.Server()
	client := owner.Client()
	fmt.Printf("published generation %d with %d articles\n", owner.Generation(), len(handles))

	query, r := "harbor bridge funding", 3
	res, err := server.Search(query, r, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Verify(query, r, res); err != nil {
		log.Fatalf("generation 1 answer failed verification: %v", err)
	}
	fmt.Printf("  verified %d hits at generation %d\n", len(res.Hits), res.Generation)
	stale := res // the pre-retraction answer, kept for the replay attack below
	gen1Manifest, gen1Sig := owner.ManifestUpdate()

	// Generation 2: one correction (replace) and one retraction (remove),
	// one atomic batch. Unchanged articles keep their signatures.
	corrected := doc("the city council approves REVISED funding for the new harbor bridge")
	_, rep, err := owner.Update([]authtext.Document{corrected}, []authtext.DocHandle{handles[2], handles[4]})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published generation %d: +%d/−%d articles, %d signatures reused, %d signed, rebuilt in %.0f ms\n",
		rep.Generation, rep.Added, rep.Removed, rep.SignaturesReused, rep.SignaturesSigned, rep.RebuildMillis)

	// The subscriber advances — forward only — with the owner's signed
	// manifest and verifies a fresh answer.
	if err := client.Advance(owner.ManifestUpdate()); err != nil {
		log.Fatal(err)
	}
	res2, err := server.Search(query, r, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Verify(query, r, res2); err != nil {
		log.Fatalf("generation 2 answer failed verification: %v", err)
	}
	fmt.Printf("  verified %d hits at generation %d (retracted article gone)\n", len(res2.Hits), res2.Generation)

	// Attack 1: replay the pre-retraction answer. The VO pins generation
	// 1; the client holds generation 2.
	err = client.Verify(query, r, stale)
	if !errors.Is(err, authtext.ErrStaleGeneration) || !authtext.IsTampered(err) {
		log.Fatalf("stale replay was not rejected as rollback: %v", err)
	}
	fmt.Println("  replayed generation-1 answer rejected: ", err)

	// Attack 2: re-present the (validly signed!) generation-1 manifest to
	// roll the client's view back. Same verdict: generations only move
	// forward.
	err = client.Advance(gen1Manifest, gen1Sig)
	if !errors.Is(err, authtext.ErrStaleGeneration) || !authtext.IsTampered(err) {
		log.Fatalf("manifest rollback was not rejected: %v", err)
	}
	fmt.Println("  generation-1 manifest rollback rejected:", err)
	fmt.Println("livefeed: all generations verified, all rollbacks rejected")
}
