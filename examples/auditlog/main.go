// Auditlog: archiving verification objects as an audit trail.
//
// §1 notes that "the integrity proof can also be archived to construct an
// audit trail for any ensuing decision taken by the user." This example
// plays a compliance officer at a legal firm: every search is archived to
// disk — query, result, and VO — and re-verified later (e.g. during an
// audit months after the fact), without contacting the search engine again.
//
// Run with: go run ./examples/auditlog
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"authtext"
)

// archiveEntry is the durable audit record for one search.
type archiveEntry struct {
	Query   string             `json:"query"`
	R       int                `json:"r"`
	Hits    []archivedHit      `json:"hits"`
	VO      []byte             `json:"vo"`
	Stats   map[string]float64 `json:"stats"`
	Verdict string             `json:"verdict_at_search_time"`
}

type archivedHit struct {
	DocID   int     `json:"doc_id"`
	Score   float64 `json:"score"`
	Content []byte  `json:"content"`
}

var filings = []string{
	"Case 17 concerns breach of a software escrow agreement and source code disclosure",
	"Case 18 disputes the licensing terms of a standard essential patent portfolio",
	"Case 19 alleges misappropriation of trade secrets by a departing engineer",
	"Case 20 reviews indemnification clauses in a cloud services master agreement",
	"Case 21 concerns patent infringement by an imported braking assembly",
	"Case 22 challenges the validity of a design patent on a handheld scanner",
	"Case 23 examines copyright in machine generated documentation and code",
	"Case 24 settles royalty disputes over audio codec patent licensing",
	"Case 25 addresses trademark dilution in comparative search advertising",
	"Case 26 interprets the arbitration clause of a chip supply agreement",
}

func main() {
	docs := make([]authtext.Document, len(filings))
	for i, f := range filings {
		docs[i] = authtext.Document{Content: []byte(f)}
	}
	owner, err := authtext.NewOwner(docs)
	if err != nil {
		log.Fatal(err)
	}
	server, client := owner.Server(), owner.Client()

	dir, err := os.MkdirTemp("", "authtext-audit-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Phase 1 — research: run searches, verify, archive.
	queries := []string{"patent licensing", "agreement clause", "trade secrets engineer"}
	for i, q := range queries {
		res, err := server.Search(q, 3, authtext.TNRA, authtext.ChainMHT)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "verified"
		if err := client.Verify(q, 3, res); err != nil {
			verdict = "rejected: " + err.Error()
		}
		entry := archiveEntry{Query: q, R: 3, VO: res.VO, Verdict: verdict,
			Stats: map[string]float64{"vo_bytes": float64(res.Stats.VOBytes)}}
		for _, h := range res.Hits {
			entry.Hits = append(entry.Hits, archivedHit{DocID: h.DocID, Score: h.Score, Content: h.Content})
		}
		blob, err := json.MarshalIndent(entry, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("search-%03d.json", i))
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("archived %q → %s (%d bytes, %s)\n", q, filepath.Base(path), len(blob), verdict)
	}

	// Phase 2 — audit: months later, reload each record and re-verify the
	// archived proof offline.
	fmt.Println("\nreplaying the audit trail:")
	records, err := filepath.Glob(filepath.Join(dir, "search-*.json"))
	if err != nil {
		log.Fatal(err)
	}
	for _, path := range records {
		blob, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		var entry archiveEntry
		if err := json.Unmarshal(blob, &entry); err != nil {
			log.Fatal(err)
		}
		res := &authtext.SearchResult{VO: entry.VO}
		for _, h := range entry.Hits {
			res.Hits = append(res.Hits, authtext.Hit{DocID: h.DocID, Score: h.Score, Content: h.Content})
		}
		if err := client.Verify(entry.Query, entry.R, res); err != nil {
			log.Fatalf("audit FAILED for %q: %v", entry.Query, err)
		}
		fmt.Printf("  %s: %q re-verified against the archived proof\n", filepath.Base(path), entry.Query)
	}

	// Phase 3 — a forged archive entry does not survive the audit.
	fmt.Println("\ntampering with an archived record:")
	blob, err := os.ReadFile(records[0])
	if err != nil {
		log.Fatal(err)
	}
	var entry archiveEntry
	if err := json.Unmarshal(blob, &entry); err != nil {
		log.Fatal(err)
	}
	entry.Hits[0].Score += 0.5 // doctor the archived score
	res := &authtext.SearchResult{VO: entry.VO}
	for _, h := range entry.Hits {
		res.Hits = append(res.Hits, authtext.Hit{DocID: h.DocID, Score: h.Score, Content: h.Content})
	}
	if err := client.Verify(entry.Query, entry.R, res); err != nil {
		fmt.Printf("  forged record rejected: %v\n", err)
	} else {
		log.Fatal("forged archive record passed the audit")
	}
}
