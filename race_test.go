package authtext

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// The Client's one-time manifest check must be safe under concurrent
// Verify calls (it used to be a racy bool; now a sync.Once). Run with
// -race to enforce.
func TestClientVerifyConcurrent(t *testing.T) {
	owner, err := NewOwner(snapshotTestDocs())
	if err != nil {
		t.Fatal(err)
	}
	server, client := owner.Server(), owner.Client()
	res, err := server.Search("merkle tree", 3, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := client.Verify("merkle tree", 3, res); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}

// RemoteClient shares one Client across concurrent Search calls; the same
// once-guard covers it. Run with -race to enforce.
func TestRemoteClientConcurrentSearch(t *testing.T) {
	owner, err := NewOwner(snapshotTestDocs())
	if err != nil {
		t.Fatal(err)
	}
	handler, err := owner.HTTPHandler()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := rc.Search(ctx, "inverted index", 2, TNRA, ChainMHT); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}

// One Server hammered from many goroutines: the engine's read path is
// lock-free (per-query store sessions over an immutable collection), and
// every concurrent answer must still verify. Run with -race to enforce.
func TestServerConcurrentSearch(t *testing.T) {
	owner, err := NewOwner(snapshotTestDocs())
	if err != nil {
		t.Fatal(err)
	}
	server, client := owner.Server(), owner.Client()
	queries := []string{"merkle tree", "inverted index", "verification object", "threshold"}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				q := queries[(g+i)%len(queries)]
				algo := TNRA
				if (g+i)%2 == 0 {
					algo = TRA
				}
				res, err := server.Search(q, 3, algo, ChainMHT)
				if err != nil {
					errs[g] = err
					return
				}
				if err := client.Verify(q, 3, res); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}

// The session-refactor regression: one UNSHARDED collection hammered with
// parallel Search+Verify across all four Algorithm×Scheme variants, with
// SearchBatch calls mixed in. The old engine kept disk-head position and
// I/O statistics in device-wide shared state — Device.Stats/ResetStats
// raced unless a collection-wide mutex serialized every query. Sessions
// replaced that API; this test (run with -race in CI) would fail on any
// return to shared per-device accounting.
func TestUnshardedParallelSearchVerifyRace(t *testing.T) {
	owner, err := NewOwner(snapshotTestDocs())
	if err != nil {
		t.Fatal(err)
	}
	server, client := owner.Server(), owner.Client()
	queries := []string{"merkle tree", "inverted index", "verification object", "threshold", "signed root"}
	variants := []struct {
		algo   Algorithm
		scheme Scheme
	}{{TRA, MHT}, {TRA, ChainMHT}, {TNRA, MHT}, {TNRA, ChainMHT}}

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines+1)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				q := queries[(g+i)%len(queries)]
				v := variants[(g+i)%len(variants)]
				res, err := server.Search(q, 3, v.algo, v.scheme)
				if err != nil {
					errs[g] = err
					return
				}
				if err := client.Verify(q, 3, res); err != nil {
					errs[g] = err
					return
				}
				if len(res.Hits) > 0 && res.Stats.BlockReads == 0 {
					errs[g] = fmt.Errorf("query %q returned hits without I/O", q)
					return
				}
			}
		}(g)
	}
	// One more goroutine drives the batch API against the same collection.
	wg.Add(1)
	go func() {
		defer wg.Done()
		batch := make([]BatchQuery, 2*len(queries))
		for i := range batch {
			v := variants[i%len(variants)]
			batch[i] = BatchQuery{Query: queries[i%len(queries)], R: 3, Algorithm: v.algo, Scheme: v.scheme}
		}
		for round := 0; round < 4; round++ {
			for i, item := range server.SearchBatch(batch, 4) {
				if item.Err != nil {
					errs[goroutines] = item.Err
					return
				}
				if err := client.Verify(batch[i].Query, 3, item.Result); err != nil {
					errs[goroutines] = err
					return
				}
			}
		}
	}()
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}

// The cache-under-update regression: 16 goroutines hammer one cached
// LiveServer — the Zipf head repeating (cache hits) alongside unique
// tails (misses and fills) — while updates swap the generation under
// them. The cache is lock-sharded and the generation lives inside every
// key, so the only acceptable outcomes per response are a clean verify
// or ErrStaleGeneration from a client that hasn't caught up; anything
// else (a torn entry, a cross-generation hit, a tampered VO) fails. Run
// with -race to enforce.
func TestCachedLiveServerConcurrentHammer(t *testing.T) {
	owner, _, err := NewLiveOwner(snapshotTestDocs(),
		WithFastSigner([]byte("cache-hammer")), WithSingletonTerms())
	if err != nil {
		t.Fatal(err)
	}
	srv := owner.Server()
	cache := NewVOCache(8 << 20)
	srv.SetVOCache(cache)
	hot := []string{"merkle tree", "inverted index", "verification object", "signed root"}

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	var verified atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := owner.Client()
			for i := 0; i < 30; i++ {
				q := hot[(g+i)%len(hot)]
				if i%7 == 0 {
					// A cold tail query keeps the miss/fill path busy too.
					q = fmt.Sprintf("unique%dtail%d", g, i)
				}
				algo := TNRA
				if (g+i)%2 == 0 {
					algo = TRA
				}
				res, err := srv.Search(q, 3, algo, ChainMHT)
				if err != nil {
					errs[g] = err
					return
				}
				err = client.Verify(q, 3, res)
				if errors.Is(err, ErrStaleGeneration) {
					// The generation moved under us; catch up and retry once.
					if err := client.Advance(owner.ManifestUpdate()); err != nil {
						errs[g] = err
						return
					}
					err = client.Verify(q, 3, res)
					if errors.Is(err, ErrStaleGeneration) {
						continue // moved again between Search and Advance
					}
				}
				if err != nil {
					errs[g] = fmt.Errorf("iter %d %q: %w", i, q, err)
					return
				}
				verified.Add(1)
			}
		}(g)
	}
	// The updater swaps generations under the readers the whole time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for u := 0; u < 12; u++ {
			doc := Document{Content: fmt.Appendf(nil, "hammer update document %d merkle", u)}
			if _, _, err := owner.Update([]Document{doc}, nil); err != nil {
				errs[0] = err
				return
			}
		}
	}()
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
	st := cache.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("hammer never exercised both cache paths: %+v", st)
	}
	if verified.Load() == 0 {
		t.Error("no response ever verified")
	}
}

// A ShardedServer fans every query out to goroutines internally AND is
// hammered from many client goroutines here; every merged answer must
// verify, including the merge recomputation. Run with -race to enforce.
func TestShardedServerConcurrentSearch(t *testing.T) {
	owner, err := NewShardedOwner(snapshotTestDocs(), 4,
		WithFastSigner([]byte("sharded-race")), WithSingletonTerms())
	if err != nil {
		t.Fatal(err)
	}
	server, client := owner.Server(), owner.Client()
	queries := []string{"merkle tree", "inverted index", "verification object", "signed root"}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				q := queries[(g+i)%len(queries)]
				algo := TNRA
				if (g+i)%2 == 0 {
					algo = TRA
				}
				res, err := server.Search(q, 3, algo, ChainMHT)
				if err != nil {
					errs[g] = err
					return
				}
				if err := client.Verify(q, 3, res); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}

// ShardedRemoteClient shares one ShardedClient across concurrent Search
// calls over a real HTTP boundary. Run with -race to enforce.
func TestShardedRemoteClientConcurrentSearch(t *testing.T) {
	owner, err := NewShardedOwner(snapshotTestDocs(), 3,
		WithFastSigner([]byte("sharded-remote-race")), WithSingletonTerms())
	if err != nil {
		t.Fatal(err)
	}
	handler, err := owner.HTTPHandler()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := NewShardedRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const goroutines = 6
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := rc.Search(ctx, "inverted index", 2, TNRA, ChainMHT); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}
