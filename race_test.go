package authtext

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
)

// The Client's one-time manifest check must be safe under concurrent
// Verify calls (it used to be a racy bool; now a sync.Once). Run with
// -race to enforce.
func TestClientVerifyConcurrent(t *testing.T) {
	owner, err := NewOwner(snapshotTestDocs())
	if err != nil {
		t.Fatal(err)
	}
	server, client := owner.Server(), owner.Client()
	res, err := server.Search("merkle tree", 3, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := client.Verify("merkle tree", 3, res); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}

// RemoteClient shares one Client across concurrent Search calls; the same
// once-guard covers it. Run with -race to enforce.
func TestRemoteClientConcurrentSearch(t *testing.T) {
	owner, err := NewOwner(snapshotTestDocs())
	if err != nil {
		t.Fatal(err)
	}
	handler, err := owner.HTTPHandler()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	rc, err := NewRemoteClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := rc.Search(ctx, "inverted index", 2, TNRA, ChainMHT); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}
