package authtext

import (
	"runtime"
	"sync"
)

// This file is the facade's batch query API. A built collection is an
// immutable, concurrently searchable structure (docs/CONCURRENCY.md), so a
// batch of queries is executed by a bounded pool of workers pulling from a
// shared queue — per-query stats are exactly what each query would report
// alone, because every query runs on its own store session.

// BatchQuery is one query of a SearchBatch call.
type BatchQuery struct {
	Query     string
	R         int
	Algorithm Algorithm
	Scheme    Scheme
}

// BatchItem is the outcome of one batch query: the verified-result payload
// (with its VO and per-query stats) or the error that query produced.
// Index i of SearchBatch's result corresponds to index i of its input.
type BatchItem struct {
	Result *SearchResult
	Err    error
}

// BatchConcurrency resolves a worker-count argument: values < 1 default to
// GOMAXPROCS, and the count never exceeds the number of queries.
func batchConcurrency(workers, queries int) int {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > queries {
		workers = queries
	}
	return workers
}

// runBatch executes one job per index with a bounded worker pool.
func runBatch(n, workers int, job func(i int)) {
	workers = batchConcurrency(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// SearchBatch answers a batch of queries concurrently with at most workers
// goroutines (workers < 1 defaults to GOMAXPROCS). Results (or per-query
// errors) come back in input order; one failing query does not abort the
// rest. Each query carries the same per-query statistics it would report if
// executed alone.
func (s *Server) SearchBatch(queries []BatchQuery, workers int) []BatchItem {
	out := make([]BatchItem, len(queries))
	runBatch(len(queries), workers, func(i int) {
		q := queries[i]
		out[i].Result, out[i].Err = s.Search(q.Query, q.R, q.Algorithm, q.Scheme)
	})
	return out
}

// ShardedBatchItem is the outcome of one sharded batch query.
type ShardedBatchItem struct {
	Result *ShardedResult
	Err    error
}

// SearchBatch answers a batch of queries concurrently with at most workers
// fan-outs in flight (workers < 1 defaults to GOMAXPROCS). Each query still
// fans out to every shard, so the total shard-query concurrency is
// workers × shards; queries overlap inside each shard as well as across
// shards, because shard collections are concurrently searchable.
func (s *ShardedServer) SearchBatch(queries []BatchQuery, workers int) []ShardedBatchItem {
	out := make([]ShardedBatchItem, len(queries))
	runBatch(len(queries), workers, func(i int) {
		q := queries[i]
		out[i].Result, out[i].Err = s.Search(q.Query, q.R, q.Algorithm, q.Scheme)
	})
	return out
}
