package authtext

import (
	"fmt"
	"os"
	"path/filepath"

	"authtext/internal/engine"
	"authtext/internal/shard"
	"authtext/internal/snapshot"
)

// Sharded snapshot layout: one directory holding one ATSN snapshot per
// shard plus the ATSX bundle that binds them together. Each shard file is
// an ordinary single-collection snapshot — a deployment can hand each one
// to a different host — and the manifest file lets any process (or client)
// know the exact shard population the owner signed.

const (
	// ShardedManifestFile is the ATSX bundle inside a sharded snapshot
	// directory.
	ShardedManifestFile = "shards.atsx"
)

// shardSnapshotName returns the file name of shard i's snapshot.
func shardSnapshotName(i int) string { return fmt.Sprintf("shard-%04d.atsn", i) }

// WriteSnapshotDir persists the sharded collection: dir/shard-NNNN.atsn
// for every shard plus dir/shards.atsx. The directory is created if
// missing; a failed write removes the partial files it created.
func (o *ShardedOwner) WriteSnapshotDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var written []string
	fail := func(err error) error {
		for _, p := range written {
			os.Remove(p)
		}
		return err
	}
	for i := 0; i < o.set.K(); i++ {
		path := filepath.Join(dir, shardSnapshotName(i))
		f, err := os.Create(path)
		if err != nil {
			return fail(err)
		}
		written = append(written, path)
		if err := snapshot.Write(f, o.set.Col(i)); err != nil {
			f.Close()
			return fail(fmt.Errorf("shard %d: %w", i, err))
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
	}
	export, err := o.ExportClient()
	if err != nil {
		return fail(err)
	}
	manifestPath := filepath.Join(dir, ShardedManifestFile)
	written = append(written, manifestPath)
	if err := os.WriteFile(manifestPath, export, 0o644); err != nil {
		return fail(err)
	}
	return nil
}

// OpenShardedSnapshotDir reopens a directory written by WriteSnapshotDir
// and returns the serving half plus a verification client. Every shard
// snapshot is cross-checked against the signed set manifest, so a missing,
// swapped or foreign shard file fails here; the deeper trust model is the
// same as OpenSnapshot's — a consistently forged directory still produces
// answers that fail verification against an out-of-band client.
func OpenShardedSnapshotDir(dir string) (*ShardedServer, *ShardedClient, error) {
	export, err := os.ReadFile(filepath.Join(dir, ShardedManifestFile))
	if err != nil {
		return nil, nil, fmt.Errorf("authtext: sharded snapshot: %w", err)
	}
	ex, err := parseShardedExport(export)
	if err != nil {
		return nil, nil, err
	}
	cols := make([]*engine.Collection, ex.manifest.K)
	for i := range cols {
		path := filepath.Join(dir, shardSnapshotName(i))
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, fmt.Errorf("authtext: sharded snapshot: %w", err)
		}
		col, err := snapshot.Open(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("authtext: shard %d: %w", i, err)
		}
		cols[i] = col
	}
	set, err := shard.Assemble(cols, ex.manifest, ex.manifestSig, ex.verifier, ex.docMaps)
	if err != nil {
		return nil, nil, fmt.Errorf("authtext: %w", err)
	}
	return &ShardedServer{set: set}, newShardedClientFromSet(set), nil
}

// MappedShardedSnapshot is a sharded snapshot directory opened zero-copy:
// every shard's ATSN file is memory-mapped (see MappedSnapshot). Server
// and Client stay valid until Close.
type MappedShardedSnapshot struct {
	server *ShardedServer
	client *ShardedClient
	maps   []*snapshot.Mapped
}

// OpenShardedSnapshotDirMapped is OpenShardedSnapshotDir with per-shard
// memory mapping instead of copies. The cross-checks are identical; only
// the copies are gone.
func OpenShardedSnapshotDirMapped(dir string) (*MappedShardedSnapshot, error) {
	export, err := os.ReadFile(filepath.Join(dir, ShardedManifestFile))
	if err != nil {
		return nil, fmt.Errorf("authtext: sharded snapshot: %w", err)
	}
	ex, err := parseShardedExport(export)
	if err != nil {
		return nil, err
	}
	maps := make([]*snapshot.Mapped, 0, ex.manifest.K)
	fail := func(err error) (*MappedShardedSnapshot, error) {
		for _, mp := range maps {
			mp.Release()
		}
		return nil, err
	}
	cols := make([]*engine.Collection, ex.manifest.K)
	for i := range cols {
		mp, err := snapshot.OpenMapped(filepath.Join(dir, shardSnapshotName(i)))
		if err != nil {
			return fail(fmt.Errorf("authtext: shard %d: %w", i, err))
		}
		maps = append(maps, mp)
		cols[i] = mp.Collection()
	}
	set, err := shard.Assemble(cols, ex.manifest, ex.manifestSig, ex.verifier, ex.docMaps)
	if err != nil {
		return fail(fmt.Errorf("authtext: %w", err))
	}
	return &MappedShardedSnapshot{
		server: &ShardedServer{set: set},
		client: newShardedClientFromSet(set),
		maps:   maps,
	}, nil
}

// Server returns the serving half. Valid until Close.
func (ms *MappedShardedSnapshot) Server() *ShardedServer { return ms.server }

// Client returns the verification client. Valid until Close.
func (ms *MappedShardedSnapshot) Client() *ShardedClient { return ms.client }

// Validate blocks until every shard's deferred block-store checksum
// finished and returns the first failure (nil when all are intact).
func (ms *MappedShardedSnapshot) Validate() error {
	for i, mp := range ms.maps {
		if err := mp.Wait(); err != nil {
			return fmt.Errorf("authtext: shard %d: %w", i, err)
		}
	}
	return nil
}

// Close releases every shard mapping. The Server and Client must not be
// used afterwards.
func (ms *MappedShardedSnapshot) Close() error {
	for _, mp := range ms.maps {
		mp.Release()
	}
	ms.maps = nil
	return nil
}

// IsShardedSnapshot reports whether path is a sharded snapshot directory
// (used by the CLIs to route -snapshot PATH transparently).
func IsShardedSnapshot(path string) bool {
	info, err := os.Stat(path)
	if err != nil || !info.IsDir() {
		return false
	}
	_, err = os.Stat(filepath.Join(path, ShardedManifestFile))
	return err == nil
}
