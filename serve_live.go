package authtext

import (
	"net/http"
	"sync/atomic"
	"time"

	"authtext/internal/httpapi"
)

// This file adapts live deployments to the /v1 HTTP protocol. On top of
// the static endpoints, a live handler:
//
//   - answers every search from the LATEST generation (each request pins
//     one generation for its whole execution — batches included — so no
//     response mixes states);
//   - serves the CURRENT generation's export at /v1/manifest, which is
//     how remote clients advance when they see a newer generation in a
//     response;
//   - reports the generation in /v1/healthz;
//   - accepts add/remove batches at /v1/admin/update when owner-backed
//     (a snapshot replica serves the same surface but rejects updates).
//
// docs/PROTOCOL.md documents the wire format, docs/UPDATES.md the model.

// liveSource is the serving side a live backend draws from: an
// owner-backed LiveServer or a snapshot-fed LiveReplica.
type liveSource interface {
	currentServer() *Server
	currentExport() ([]byte, error)
	Generation() uint64
	// voCache is the cache the source itself carries (SetVOCache), nil
	// when none; a WithVOCache handler option overrides it.
	voCache() *VOCache
}

func (s *LiveServer) currentServer() *Server { return s.Snapshot() }

func (s *LiveServer) voCache() *VOCache { return s.cache }

func (s *LiveServer) currentExport() ([]byte, error) {
	col := s.lc.Current()
	m, msig := col.Manifest()
	c := &Client{manifest: m, manifestSig: msig, verifier: col.Verifier()}
	return c.Export()
}

func (r *LiveReplica) currentServer() *Server { return r.Server() }

func (r *LiveReplica) voCache() *VOCache { return r.cache }

func (r *LiveReplica) currentExport() ([]byte, error) {
	st := r.cur.Load()
	if st.export == nil {
		return nil, errNoExportableKey
	}
	return st.export, nil
}

var errNoExportableKey = &httpapi.StatusError{
	Status:  http.StatusServiceUnavailable,
	Code:    httpapi.CodeUnavailable,
	Message: "this server has no publishable verification key (fast-signer build?)",
}

// liveUpdater applies admin update batches; nil on serving-only
// deployments.
type liveUpdater func(add []Document, remove []DocHandle) ([]DocHandle, *UpdateReport, error)

// newLiveHTTPHandler wires a live source (and optionally an updater) onto
// the /v1 protocol.
func newLiveHTTPHandler(src liveSource, owner *LiveOwner, opts ...HandlerOption) (http.Handler, error) {
	// Fail construction, not the first request, when the key cannot be
	// published (mirrors Owner.HTTPHandler's contract).
	if _, err := src.currentExport(); err != nil {
		return nil, err
	}
	b := &liveHTTPBackend{src: src, start: time.Now()}
	if owner != nil {
		b.update = owner.Update
	}
	for _, opt := range opts {
		opt(&b.opts)
	}
	b.cache = b.opts.cache
	if b.cache == nil {
		b.cache = src.voCache()
	}
	if m := b.opts.metrics; m != nil {
		// Attach the registry to the serving source (unless it already has
		// one) so snapshots, updates and reloads record into it, and bind the
		// effective cache so /v1/metrics and /v1/healthz read the same
		// counters.
		switch s := src.(type) {
		case *LiveServer:
			if s.metrics == nil {
				s.SetMetrics(m)
			}
		case *LiveReplica:
			if s.metrics == nil {
				s.SetMetrics(m)
			}
		}
		if owner != nil && owner.metrics == nil {
			owner.SetMetrics(m)
		}
		m.BindVOCache(b.cache)
	}
	return httpapi.NewHandler(b, b.opts.httpapiOpts()...), nil
}

// NewLiveReplicaHTTPHandler exposes a snapshot-fed replica over the /v1
// protocol: the live serving surface (generation in responses and
// healthz, current generation's manifest) without the update endpoint —
// POSTs to /v1/admin/update answer 403, because updates happen at the
// owner that writes the snapshots.
func NewLiveReplicaHTTPHandler(r *LiveReplica, opts ...HandlerOption) (http.Handler, error) {
	return newLiveHTTPHandler(r, nil, opts...)
}

// liveHTTPBackend implements the httpapi backend surface over a live
// source.
type liveHTTPBackend struct {
	src    liveSource
	update liveUpdater // nil: serving-only
	start  time.Time
	opts   handlerOptions
	// cache is the effective VO cache (handler option wins over the
	// source's own); nil when caching is off.
	cache  *VOCache
	served atomic.Int64
	failed atomic.Int64
}

// server pins the current generation, serving through the effective
// cache and metrics. withCache/withMetrics copy: the shared snapshot
// server is never mutated.
func (b *liveHTTPBackend) server() *Server {
	return b.src.currentServer().withCache(b.opts.cache).withMetrics(b.opts.metrics)
}

func (b *liveHTTPBackend) Search(req *httpapi.SearchRequest) (*httpapi.SearchResponse, error) {
	start := time.Now()
	res, err := b.server().Search(req.Query, req.R, parseWireAlgo(req.Algo), parseWireScheme(req.Scheme))
	if err != nil {
		b.failed.Add(1)
		return nil, err
	}
	b.served.Add(1)
	wall := time.Since(start)
	if b.opts.queryLog != nil {
		b.opts.queryLog(req.Query, req.R, res.Stats, wall)
	}
	return wireSearchResponse(req, res), nil
}

// SearchBatch pins ONE generation for the whole batch.
func (b *liveHTTPBackend) SearchBatch(reqs []httpapi.SearchRequest) []httpapi.BatchSearchResult {
	srv := b.server()
	queries := make([]BatchQuery, len(reqs))
	for i, req := range reqs {
		queries[i] = BatchQuery{
			Query:     req.Query,
			R:         req.R,
			Algorithm: parseWireAlgo(req.Algo),
			Scheme:    parseWireScheme(req.Scheme),
		}
	}
	items := srv.SearchBatch(queries, 0)
	out := make([]httpapi.BatchSearchResult, len(items))
	for i, item := range items {
		if item.Err != nil {
			b.failed.Add(1)
			out[i] = httpapi.BatchOutcome(nil, item.Err)
			continue
		}
		b.served.Add(1)
		wall := time.Duration(float64(item.Result.Stats.ServerTime) * float64(time.Millisecond))
		if b.opts.queryLog != nil {
			b.opts.queryLog(reqs[i].Query, reqs[i].R, item.Result.Stats, wall)
		}
		out[i] = httpapi.BatchOutcome(wireSearchResponse(&reqs[i], item.Result), nil)
	}
	return out
}

func (b *liveHTTPBackend) Update(req *httpapi.UpdateRequest) (*httpapi.UpdateResponse, error) {
	if b.update == nil {
		return nil, &httpapi.StatusError{
			Status:  http.StatusForbidden,
			Code:    httpapi.CodeUpdateFailed,
			Message: "this replica is serving-only; apply updates at the owner",
		}
	}
	add := make([]Document, len(req.Add))
	for i, d := range req.Add {
		add[i] = Document{Content: d.Content}
	}
	remove := make([]DocHandle, len(req.Remove))
	for i, h := range req.Remove {
		remove[i] = DocHandle(h)
	}
	handles, rep, err := b.update(add, remove)
	if err != nil {
		// Update failures are batch-shaped (unknown handle, emptying
		// removal, unindexable content): the server state is unchanged,
		// so report them as the caller's problem.
		return nil, &httpapi.StatusError{
			Status:  http.StatusBadRequest,
			Code:    httpapi.CodeUpdateFailed,
			Message: err.Error(),
		}
	}
	if b.cache != nil {
		// Hygiene, not correctness: superseded generations' entries can no
		// longer be looked up (the generation is in the key); dropping them
		// just returns their memory ahead of LRU aging.
		b.cache.dropBelow(rep.Generation)
	}
	if b.opts.updateLog != nil {
		b.opts.updateLog(rep)
	}
	resp := &httpapi.UpdateResponse{
		Generation:       rep.Generation,
		Documents:        rep.Documents,
		TombstonedSlots:  rep.TombstonedSlots,
		Compacted:        rep.Compacted,
		Added:            rawHandles(handles),
		Removed:          rep.Removed,
		SignaturesSigned: rep.SignaturesSigned,
		SignaturesReused: rep.SignaturesReused,
		ShardsReused:     rep.ShardsReused,
		RebuildMillis:    rep.RebuildMillis,
	}
	return resp, nil
}

func (b *liveHTTPBackend) ClientExport() ([]byte, error) { return b.src.currentExport() }

// CurrentGeneration implements httpapi.GenerationBackend: the handler
// stamps it into the X-Authtext-Generation response header so a fleet
// front end can route generation-consistently.
func (b *liveHTTPBackend) CurrentGeneration() uint64 { return b.src.Generation() }

func (b *liveHTTPBackend) Health() httpapi.Health {
	srv := b.src.currentServer()
	idx := srv.col.Index()
	h := httpapi.Health{
		Status: "ok",
		// Live documents, not slots: tombstoned removals don't count.
		Documents:     srv.col.LiveDocs(),
		Terms:         idx.M(),
		Generation:    b.src.Generation(),
		UptimeMillis:  time.Since(b.start).Milliseconds(),
		QueriesServed: b.served.Load(),
		QueriesFailed: b.failed.Load(),
	}
	if b.cache != nil {
		h.Cache = b.cache.health()
	}
	return h
}

// newLiveShardedHTTPHandler wires a live sharded owner onto the /v1
// protocol: the sharded serving surface plus /v1/admin/update.
func newLiveShardedHTTPHandler(srv *LiveShardedServer, owner *LiveShardedOwner, opts ...ShardedHandlerOption) (http.Handler, error) {
	if _, err := owner.ExportClient(); err != nil {
		return nil, err
	}
	b := &liveShardedHTTPBackend{srv: srv, owner: owner, start: time.Now()}
	for _, opt := range opts {
		opt(&b.opts)
	}
	b.cache = b.opts.cache
	if b.cache == nil {
		b.cache = srv.cache
	}
	if m := b.opts.metrics; m != nil {
		if srv.metrics == nil {
			srv.SetMetrics(m)
		}
		if owner.metrics == nil {
			owner.SetMetrics(m)
		}
		m.BindVOCache(b.cache)
	}
	return httpapi.NewHandler(b, b.opts.httpapiOpts()...), nil
}

// liveShardedHTTPBackend implements the sharded backend surface over a
// live sharded owner.
type liveShardedHTTPBackend struct {
	srv    *LiveShardedServer
	owner  *LiveShardedOwner
	start  time.Time
	opts   shardedHandlerOptions
	cache  *VOCache
	served atomic.Int64
	failed atomic.Int64
}

func (b *liveShardedHTTPBackend) Search(req *httpapi.SearchRequest) (*httpapi.SearchResponse, error) {
	return nil, &httpapi.StatusError{
		Status:  http.StatusNotFound,
		Code:    httpapi.CodeNotFound,
		Message: "this server is sharded; query " + httpapi.PathShardSearch,
	}
}

func (b *liveShardedHTTPBackend) ClientExport() ([]byte, error) {
	return nil, &httpapi.StatusError{
		Status:  http.StatusNotFound,
		Code:    httpapi.CodeNotFound,
		Message: "this server is sharded; fetch " + httpapi.PathShardManifest,
	}
}

func (b *liveShardedHTTPBackend) ShardSearch(req *httpapi.SearchRequest) (*httpapi.ShardedSearchResponse, error) {
	// Pin one generation for the whole fan-out (the handler-option cache,
	// when set, overrides the server's own via the withCache copy).
	pinned := &shardedHTTPBackend{srv: b.srv.Snapshot().withCache(b.opts.cache), opts: b.opts}
	resp, err := pinned.ShardSearch(req)
	if err != nil {
		b.failed.Add(1)
		return nil, err
	}
	b.served.Add(1)
	return resp, nil
}

func (b *liveShardedHTTPBackend) ShardExport() ([]byte, error) { return b.owner.ExportClient() }

// CurrentGeneration implements httpapi.GenerationBackend.
func (b *liveShardedHTTPBackend) CurrentGeneration() uint64 { return b.srv.Generation() }

func (b *liveShardedHTTPBackend) Update(req *httpapi.UpdateRequest) (*httpapi.UpdateResponse, error) {
	inner := &liveHTTPBackend{update: b.owner.Update, opts: handlerOptions{}, cache: b.cache}
	if b.opts.updateLog != nil {
		inner.opts.updateLog = b.opts.updateLog
	}
	return inner.Update(req)
}

func (b *liveShardedHTTPBackend) Health() httpapi.Health {
	h := shardedHealth(b.srv.Snapshot(), b.start, b.served.Load(), b.failed.Load())
	if b.cache != nil {
		h.Cache = b.cache.health()
	}
	return h
}
