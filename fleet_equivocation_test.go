package authtext

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"authtext/internal/core"
	"authtext/internal/httpapi"
	"authtext/internal/obs"
)

// Equivocation battery (docs/FLEET.md): a fleet of replicas — unlike a
// single server — can show different users different SIGNED states of
// the collection, each of which verifies in isolation. The FleetClient's
// cross-check must classify every such conflict as tampering
// (ErrEquivocation, IsTampered true) and must never promote plain
// unavailability into that class. Three attack shapes are pinned here,
// each for both query algorithms:
//
//   - split view: two different signed manifests for one generation
//   - forked chain: a replica invents a future generation the owner
//     never published, diverging from the honest history
//   - frozen replica: one replica withholds updates indefinitely while
//     the fleet advances (equivocation by omission)
//
// The forgeries are made with the owner's real signer, so signature
// verification alone accepts them — exactly the gap cross-replica
// comparison exists to close.

// forgeExport builds a client-export blob whose manifest is a mutated
// copy of the owner's current one, genuinely signed with the owner's
// key. mutate must keep the manifest Validate-clean.
func forgeExport(t *testing.T, owner *LiveOwner, mutate func(*core.Manifest)) []byte {
	t.Helper()
	honest, err := owner.ExportClient()
	if err != nil {
		t.Fatal(err)
	}
	raw, _, der, err := splitClientExport(honest)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.DecodeManifest(raw)
	if err != nil {
		t.Fatal(err)
	}
	mutate(m)
	enc := m.Encode()
	sg, err := owner.lc.Signer().Sign(enc)
	if err != nil {
		t.Fatal(err)
	}
	out := append([]byte(nil), exportMagic...)
	out = appendChunk(out, enc)
	out = appendChunk(out, sg)
	return appendChunk(out, der)
}

// manifestStub is a minimal replica that serves a swappable export on
// /v1/manifest — the mouthpiece for forged or frozen views.
type manifestStub struct {
	srv    *httptest.Server
	export atomic.Value // []byte
	gen    atomic.Uint64
}

func newManifestStub(export []byte, gen uint64) *manifestStub {
	s := &manifestStub{}
	s.export.Store(export)
	s.gen.Store(gen)
	s.srv = httptest.NewServer(http.HandlerFunc(s.serve))
	return s
}

func (s *manifestStub) SetExport(export []byte, gen uint64) {
	s.export.Store(export)
	s.gen.Store(gen)
}

func (s *manifestStub) URL() string { return s.srv.URL }
func (s *manifestStub) Close()      { s.srv.Close() }

func (s *manifestStub) serve(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case httpapi.PathManifest:
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(httpapi.ManifestResponse{
			Format: httpapi.FormatATCX,
			Export: s.export.Load().([]byte),
		})
	case httpapi.PathHealthz:
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(httpapi.Health{Status: "ok", Generation: s.gen.Load()})
	default:
		http.NotFound(w, r)
	}
}

// equivFixture is one scenario's cast: an honest owner serving as both
// the query path and replica A, and a stub replica B the test scripts.
type equivFixture struct {
	owner *LiveOwner
	fes   *httptest.Server
	stub  *manifestStub
	fc    *FleetClient
}

func newEquivFixture(t *testing.T, stubExport []byte, stubGen uint64, opts ...FleetOption) *equivFixture {
	t.Helper()
	owner, _, err := NewLiveOwner(liveDocs(0, 12))
	if err != nil {
		t.Fatal(err)
	}
	handler, err := owner.HTTPHandler()
	if err != nil {
		t.Fatal(err)
	}
	fes := httptest.NewServer(handler)
	t.Cleanup(fes.Close)
	if stubExport == nil {
		if stubExport, err = owner.ExportClient(); err != nil {
			t.Fatal(err)
		}
		stubGen = owner.Generation()
	}
	stub := newManifestStub(stubExport, stubGen)
	t.Cleanup(stub.Close)
	fc, err := NewFleetClient(fes.URL, []string{fes.URL, stub.URL()}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return &equivFixture{owner: owner, fes: fes, stub: stub, fc: fc}
}

// verifiedSearch runs one query through the serving path with the given
// algorithm and fails the test on any error: every scenario proves the
// honest pipeline works for that algorithm before judging the detector.
func (fx *equivFixture) verifiedSearch(t *testing.T, algo Algorithm) {
	t.Helper()
	res, err := fx.fc.Search(context.Background(), "merkle tree proof", 5, algo, ChainMHT)
	if err != nil {
		t.Fatalf("honest search (%v): %v", algo, err)
	}
	if res.Generation != fx.owner.Generation() {
		t.Fatalf("honest search generation %d, owner at %d", res.Generation, fx.owner.Generation())
	}
}

func mustEquivocation(t *testing.T, rep *CrossCheckReport, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("cross-check found no equivocation")
	}
	if !errors.Is(err, ErrEquivocation) {
		t.Fatalf("error does not match ErrEquivocation: %v", err)
	}
	if !IsTampered(err) {
		t.Fatalf("equivocation not classified as tampering: %v", err)
	}
	if rep == nil || rep.Equivocation == nil {
		t.Fatal("report carries no equivocation verdict")
	}
}

func eachAlgorithm(t *testing.T, f func(t *testing.T, algo Algorithm)) {
	for _, tc := range []struct {
		name string
		algo Algorithm
	}{{"TRA", TRA}, {"TNRA", TNRA}} {
		t.Run(tc.name, func(t *testing.T) { f(t, tc.algo) })
	}
}

// A second signed manifest for the generation the client already holds
// is a split view: tampering, pinned on the replica that presented it.
// The forgery is owner-signed, so only the cross-replica comparison can
// catch it.
func TestFleetCrossCheckSplitView(t *testing.T) {
	eachAlgorithm(t, func(t *testing.T, algo Algorithm) {
		metrics := NewMetrics()
		fx := newEquivFixture(t, nil, 0, WithFleetRemoteOptions(WithClientMetrics(metrics)))
		fx.verifiedSearch(t, algo)
		fx.stub.SetExport(forgeExport(t, fx.owner, func(m *core.Manifest) {
			m.AvgLen++ // divergent statistics, same generation, valid signature
		}), fx.owner.Generation())

		rep, err := fx.fc.CrossCheck(context.Background())
		mustEquivocation(t, rep, err)
		if a := rep.Replicas[0]; a.Err != nil {
			t.Fatalf("honest replica flagged: %v", a.Err)
		}
		b := rep.Replicas[1]
		if b.Err == nil || b.Unavailable {
			t.Fatalf("forging replica status: err=%v unavailable=%v, want a non-transient error", b.Err, b.Unavailable)
		}
		if !strings.Contains(b.Err.Error(), "conflicting manifest") {
			t.Fatalf("split view not named in the error: %v", b.Err)
		}

		var buf bytes.Buffer
		if err := metrics.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		samples, err := obs.Parse(&buf)
		if err != nil {
			t.Fatal(err)
		}
		var equivocations, checks float64
		for _, s := range samples {
			switch s.Name {
			case "authtext_fleet_equivocations_total":
				equivocations = s.Value
			case "authtext_fleet_crosschecks_total":
				checks = s.Value
			}
		}
		if equivocations != 1 || checks != 1 {
			t.Fatalf("metrics: equivocations=%v crosschecks=%v, want 1 and 1", equivocations, checks)
		}
	})
}

// A forged FUTURE generation is invisible at first sight — the client
// has no honest generation-2 view to compare against, so it (correctly,
// per the stale/fresh rules) advances. The fork becomes detectable the
// moment the honest chain reaches the same generation: one generation,
// two signed manifests. Note the verdict lands on whichever replica
// presented the SECOND view for that generation — here the honest one.
// Attribution between diverged replicas is inherently ambiguous without
// a trusted log; the detector's contract is detection, not blame.
func TestFleetCrossCheckForkedChain(t *testing.T) {
	eachAlgorithm(t, func(t *testing.T, algo Algorithm) {
		fx := newEquivFixture(t, nil, 0)
		fx.verifiedSearch(t, algo)
		forkGen := fx.owner.Generation() + 1
		fx.stub.SetExport(forgeExport(t, fx.owner, func(m *core.Manifest) {
			m.Generation = forkGen
			m.AvgLen++
		}), forkGen)

		// First sighting: the fork masquerades as an ordinary swap and the
		// client advances to it. No verdict is possible yet.
		rep, err := fx.fc.CrossCheck(context.Background())
		if err != nil {
			t.Fatalf("fork's first sighting misclassified: %v", err)
		}
		if rep.Generation != forkGen {
			t.Fatalf("fleet generation %d, want forged %d", rep.Generation, forkGen)
		}
		if got := fx.fc.Generation(); got != forkGen {
			t.Fatalf("client advanced to %d, want forged %d", got, forkGen)
		}

		// The honest owner now publishes its own generation 2 — the chains
		// have visibly diverged and the next check must say tampering.
		if _, _, err := fx.owner.AddDocuments(liveDocs(12, 1)); err != nil {
			t.Fatal(err)
		}
		rep, err = fx.fc.CrossCheck(context.Background())
		mustEquivocation(t, rep, err)
		if !strings.Contains(rep.Equivocation.Error(), "conflicting manifest") {
			t.Fatalf("fork not reported as conflicting signed state: %v", rep.Equivocation)
		}
	})
}

// A replica pinned at an old generation while the fleet advances is
// equivocation by omission: its users never see removals or updates. One
// lagging sighting is indistinguishable from a swap in progress, so with
// tolerance 1 the verdict must arrive exactly on the second check.
func TestFleetCrossCheckFrozenReplica(t *testing.T) {
	eachAlgorithm(t, func(t *testing.T, algo Algorithm) {
		fx := newEquivFixture(t, nil, 0, WithFleetLagTolerance(1))
		frozen, err := fx.owner.ExportClient()
		if err != nil {
			t.Fatal(err)
		}
		fx.stub.SetExport(frozen, fx.owner.Generation())
		if _, _, err := fx.owner.AddDocuments(liveDocs(12, 2)); err != nil {
			t.Fatal(err)
		}
		fx.verifiedSearch(t, algo)

		rep, err := fx.fc.CrossCheck(context.Background())
		if err != nil {
			t.Fatalf("first lagging sighting misclassified (could be a swap in progress): %v", err)
		}
		if rep.Lag != 1 {
			t.Fatalf("lag %d, want 1", rep.Lag)
		}
		rep, err = fx.fc.CrossCheck(context.Background())
		mustEquivocation(t, rep, err)
		b := rep.Replicas[1]
		if b.Err == nil || b.Unavailable || !strings.Contains(b.Err.Error(), "frozen") {
			t.Fatalf("frozen replica status: err=%v unavailable=%v", b.Err, b.Unavailable)
		}
	})
}

// Crashes are not equivocation: a dead replica presented no signed state
// to hold against it. With one replica down the check reports it
// Unavailable and returns no verdict; with everything down the check
// fails with a PLAIN error — never a tamper-classified one.
func TestFleetCrossCheckUnavailabilityIsNotTampering(t *testing.T) {
	eachAlgorithm(t, func(t *testing.T, algo Algorithm) {
		fx := newEquivFixture(t, nil, 0)
		fx.verifiedSearch(t, algo)
		if _, err := fx.fc.CrossCheck(context.Background()); err != nil {
			t.Fatalf("healthy fleet cross-check: %v", err)
		}

		fx.stub.Close()
		rep, err := fx.fc.CrossCheck(context.Background())
		if err != nil {
			t.Fatalf("one dead replica must not fail the check: %v", err)
		}
		b := rep.Replicas[1]
		if b.Err == nil || !b.Unavailable {
			t.Fatalf("dead replica status: err=%v unavailable=%v, want a transport error", b.Err, b.Unavailable)
		}
		if rep.Equivocation != nil {
			t.Fatalf("crash misclassified as equivocation: %v", rep.Equivocation)
		}

		fx.fes.Close()
		rep, err = fx.fc.CrossCheck(context.Background())
		if err == nil {
			t.Fatal("fully dark fleet reported success")
		}
		if IsTampered(err) {
			t.Fatalf("total outage misclassified as tampering: %v", err)
		}
		if rep != nil && rep.Reachable != 0 {
			t.Fatalf("reachable=%d with every replica down", rep.Reachable)
		}
	})
}
