package authtext

import (
	"net/http"

	"authtext/internal/index"
	"authtext/internal/live"
	"authtext/internal/shard"
)

// LiveShardedOwner owns a live sharded collection: one signing key, k
// shards, and a freshly signed shard-set manifest per generation. Updates
// re-partition the corpus and rebuild only the shards whose membership
// changed — with the hash partitioner a small batch touches few shards,
// and untouched shards are carried over wholesale — then the whole set
// swaps atomically, so a fan-out never mixes generations.
type LiveShardedOwner struct {
	lc *live.ShardedCollection
	// metrics, when non-nil, receives generation telemetry for every
	// accepted update (metrics.go). Set before updates start.
	metrics *Metrics
}

// SetMetrics attaches a metric registry recording set-generation swaps,
// rebuild latency and signature reuse (nil detaches). The current
// generation is published immediately.
func (o *LiveShardedOwner) SetMetrics(m *Metrics) {
	o.metrics = m
	m.setGeneration(o.lc.Generation())
}

// NewLiveShardedOwner partitions the documents into shards and publishes
// generation 1. All NewShardedOwner options apply, including the
// authority boost. Only PartitionHash is supported (and is the default):
// its placement depends on document content alone, so it is stable under
// updates — the property that makes whole-shard reuse and tombstoned
// removals possible. WithPartitioner(PartitionRoundRobin) is rejected
// with an error explaining why.
func NewLiveShardedOwner(docs []Document, shards int, opts ...Option) (*LiveShardedOwner, []DocHandle, error) {
	cfg, idocs, o, err := prepareBuild(docs, opts)
	if err != nil {
		return nil, nil, err
	}
	part := shard.HashContent
	if o.partitioner != 0 {
		part = o.partitioner.internal()
	}
	lc, handles, err := live.NewSharded(idocs, cfg, shards, part)
	if err != nil {
		return nil, nil, err
	}
	return &LiveShardedOwner{lc: lc}, docHandles(handles), nil
}

// AddDocuments publishes a new set generation containing the documents.
func (o *LiveShardedOwner) AddDocuments(docs []Document) ([]DocHandle, *UpdateReport, error) {
	return o.Update(docs, nil)
}

// RemoveDocuments publishes a new set generation without the documents.
func (o *LiveShardedOwner) RemoveDocuments(handles ...DocHandle) (*UpdateReport, error) {
	_, rep, err := o.Update(nil, handles)
	return rep, err
}

// Update applies additions and removals as one atomic set-wide generation
// change. On error nothing is published.
func (o *LiveShardedOwner) Update(add []Document, remove []DocHandle) ([]DocHandle, *UpdateReport, error) {
	return o.UpdateWithAuthority(add, nil, remove)
}

// UpdateWithAuthority is Update with per-document authority scores for
// the additions (see LiveOwner.UpdateWithAuthority).
func (o *LiveShardedOwner) UpdateWithAuthority(add []Document, auth []float64, remove []DocHandle) ([]DocHandle, *UpdateReport, error) {
	idocs := make([]index.Document, len(add))
	for i, d := range add {
		idocs[i] = index.Document{Content: d.Content, Tokens: d.Tokens}
	}
	handles, st, err := o.lc.UpdateWithAuthority(idocs, auth, rawHandles(remove))
	if err != nil {
		return nil, nil, err
	}
	rep := updateReport(st)
	o.metrics.recordUpdate(rep)
	return docHandles(handles), rep, nil
}

// Generation returns the latest published set generation (≥ 1).
func (o *LiveShardedOwner) Generation() uint64 { return o.lc.Generation() }

// Shards returns the shard count.
func (o *LiveShardedOwner) Shards() int { return o.lc.Shards() }

// LastUpdate reports the cost of the most recent generation change.
func (o *LiveShardedOwner) LastUpdate() *UpdateReport {
	st := o.lc.LastStats()
	return updateReport(&st)
}

// Server returns the live sharded serving half.
func (o *LiveShardedOwner) Server() *LiveShardedServer { return &LiveShardedServer{lc: o.lc} }

// Client returns a verification client pinned to the owner's key at the
// current set generation; advance it with AdvanceExport payloads.
func (o *LiveShardedOwner) Client() *ShardedClient {
	return newShardedClientFromSet(o.lc.Current())
}

// ExportClient serialises the current generation's ATSX verification
// material (also the /v1/shards/manifest payload, and what
// ShardedClient.AdvanceExport consumes).
func (o *LiveShardedOwner) ExportClient() ([]byte, error) {
	return exportSet(o.lc.Current())
}

// HTTPHandler exposes the live sharded deployment over the versioned HTTP
// protocol with the admin update endpoint enabled.
func (o *LiveShardedOwner) HTTPHandler(opts ...ShardedHandlerOption) (http.Handler, error) {
	return newLiveShardedHTTPHandler(o.Server(), o, opts...)
}

// LiveShardedServer serves fanned-out queries from the latest published
// set generation. A query in flight during a swap completes entirely
// against the set it started on.
type LiveShardedServer struct {
	lc      *live.ShardedCollection
	cache   *VOCache
	metrics *Metrics
}

// SetVOCache attaches a VO cache carried into every Snapshot (nil
// detaches; see LiveServer.SetVOCache for the update-safety argument).
func (s *LiveShardedServer) SetVOCache(c *VOCache) { s.cache = c }

// SetMetrics attaches a metric registry carried into every Snapshot (nil
// detaches). Call before serving starts.
func (s *LiveShardedServer) SetMetrics(m *Metrics) {
	s.metrics = m
	m.setGeneration(s.lc.Generation())
}

// Snapshot pins the current set generation as an ordinary ShardedServer.
func (s *LiveShardedServer) Snapshot() *ShardedServer {
	return (&ShardedServer{set: s.lc.Current()}).withCache(s.cache).withMetrics(s.metrics)
}

// Generation returns the latest published set generation.
func (s *LiveShardedServer) Generation() uint64 { return s.lc.Generation() }

// Shards returns the shard count.
func (s *LiveShardedServer) Shards() int { return s.lc.Shards() }

// Search fans the query out over the latest generation's shards (see
// ShardedServer.Search).
func (s *LiveShardedServer) Search(query string, r int, algo Algorithm, scheme Scheme) (*ShardedResult, error) {
	return s.Snapshot().Search(query, r, algo, scheme)
}
