package authtext_test

// One benchmark per table and figure of the paper's evaluation (§4), plus
// ablations for the design choices DESIGN.md calls out (chain-MHT vs plain
// MHT, buddy inclusion, dictionary-mode signature consolidation, block
// size) and per-variant micro-benchmarks. Benchmarks run on the `small`
// synthetic profile so `go test -bench=.` completes in minutes; the
// full-scale numbers in EXPERIMENTS.md come from cmd/authbench.

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"authtext"

	"authtext/internal/core"
	"authtext/internal/corpus"
	"authtext/internal/engine"
	"authtext/internal/experiments"
	"authtext/internal/index"
	"authtext/internal/linkgraph"
	"authtext/internal/live"
	"authtext/internal/okapi"
	"authtext/internal/shard"
	"authtext/internal/sig"
	"authtext/internal/snapshot"
	"authtext/internal/store"
	"authtext/internal/vo"
	"authtext/internal/workload"
)

var (
	benchOnce sync.Once
	benchFix  *experiments.Fixture
	benchErr  error
)

func benchFixture(b *testing.B) *experiments.Fixture {
	b.Helper()
	benchOnce.Do(func() {
		benchFix, benchErr = experiments.NewFixture(corpus.Small(), false)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchFix
}

func benchOptions() experiments.Options {
	return experiments.Options{
		Queries: 10,
		QSizes:  []int{2, 6, 10, 20},
		RValues: []int{10, 40, 80},
		Seed:    42,
	}
}

// BenchmarkFig04ListLengthDistribution regenerates Fig 4: index build plus
// the cumulative list-length distribution.
func BenchmarkFig04ListLengthDistribution(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		idx, err := experiments.BuildIndexOnly(corpus.Tiny())
		if err != nil {
			b.Fatal(err)
		}
		d := corpus.Describe(idx.ListLengths(), idx.N)
		if d.MaxLen == 0 {
			b.Fatal("degenerate distribution")
		}
	}
}

// BenchmarkFig13SyntheticVaryingQuerySize regenerates Fig 13(a–e): the
// synthetic workload swept over query sizes at r = 10, across all four
// variants, with every answer verified.
func BenchmarkFig13SyntheticVaryingQuerySize(b *testing.B) {
	f := benchFixture(b)
	opts := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13(f, opts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable02VOBreakdown regenerates Table 2: the data/digest split of
// the TRA VOs under both schemes.
func BenchmarkTable02VOBreakdown(b *testing.B) {
	f := benchFixture(b)
	opts := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(f, opts, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		m := res.Points[0][experiments.Variant{Algo: core.AlgoTRA, Scheme: core.SchemeCMHT}]
		b.ReportMetric(m.VOData/(m.VOData+m.VODigest)*100, "data%")
	}
}

// BenchmarkFig14SyntheticVaryingResultSize regenerates Fig 14(a–e).
func BenchmarkFig14SyntheticVaryingResultSize(b *testing.B) {
	f := benchFixture(b)
	opts := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14(f, opts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15TRECVaryingResultSize regenerates Fig 15(a–e) with the
// TREC-like verbose workload.
func BenchmarkFig15TRECVaryingResultSize(b *testing.B) {
	f := benchFixture(b)
	opts := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig15(f, opts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpaceOverhead regenerates the §4.1 space claims: a full build of
// all four authentication structures over the tiny profile, reporting the
// TRA and TNRA overheads.
func BenchmarkSpaceOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fx, err := experiments.NewFixture(corpus.Tiny(), false)
		if err != nil {
			b.Fatal(err)
		}
		over := experiments.SpaceReport(fx, io.Discard)
		b.ReportMetric(over["TRA-MHT"], "tra-over-%")
		b.ReportMetric(over["TNRA-MHT"], "tnra-over-%")
	}
}

// ---------------------------------------------------------------------------
// Per-variant micro-benchmarks: one authenticated query (search + VO) and
// its verification, q = 3, r = 10 (the paper's defaults, Table 1).

func benchQueries(b *testing.B, f *experiments.Fixture) [][]string {
	b.Helper()
	return workload.Synthetic(f.Col.Index(), 64, 3, 7)
}

func benchSearchVariant(b *testing.B, algo core.Algo, scheme core.Scheme) {
	f := benchFixture(b)
	queries := benchQueries(b, f)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		_, voBytes, st, err := f.Col.Search(q, 10, algo, scheme)
		if err != nil {
			b.Fatal(err)
		}
		if len(voBytes) == 0 || st.EntriesRead == 0 {
			b.Fatal("empty answer")
		}
	}
}

func BenchmarkSearchTRAMHT(b *testing.B)   { benchSearchVariant(b, core.AlgoTRA, core.SchemeMHT) }
func BenchmarkSearchTRACMHT(b *testing.B)  { benchSearchVariant(b, core.AlgoTRA, core.SchemeCMHT) }
func BenchmarkSearchTNRAMHT(b *testing.B)  { benchSearchVariant(b, core.AlgoTNRA, core.SchemeMHT) }
func BenchmarkSearchTNRACMHT(b *testing.B) { benchSearchVariant(b, core.AlgoTNRA, core.SchemeCMHT) }

// BenchmarkCachedSearchHit is the repeat-query path through the facade
// with a warm VO cache: lookup + defensive copy, no engine work, no VO
// encode. Compare against BenchmarkFacadeSearchUncached (the same facade
// call without a cache) and the BenchmarkSearch* engine variants above.
func BenchmarkCachedSearchHit(b *testing.B) {
	f := benchFixture(b)
	queries := benchQueries(b, f)
	srv := authtext.ServerForTest(f.Col)
	srv.SetVOCache(authtext.NewVOCache(64 << 20))
	qs := make([]string, len(queries))
	for i, q := range queries {
		qs[i] = strings.Join(q, " ")
		// Warm the cache: every benchmark iteration below is a hit.
		if _, err := srv.Search(qs[i], 10, authtext.TNRA, authtext.ChainMHT); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := srv.Search(qs[i%len(qs)], 10, authtext.TNRA, authtext.ChainMHT)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.VO) == 0 {
			b.Fatal("empty answer")
		}
	}
}

// BenchmarkFacadeSearchUncached is the same facade call with no cache
// attached — what every one of those queries costs without the cache,
// the honest baseline for BenchmarkCachedSearchHit.
func BenchmarkFacadeSearchUncached(b *testing.B) {
	f := benchFixture(b)
	queries := benchQueries(b, f)
	srv := authtext.ServerForTest(f.Col)
	qs := make([]string, len(queries))
	for i, q := range queries {
		qs[i] = strings.Join(q, " ")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := srv.Search(qs[i%len(qs)], 10, authtext.TNRA, authtext.ChainMHT)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.VO) == 0 {
			b.Fatal("empty answer")
		}
	}
}

// BenchmarkFacadeSearchMetrics is BenchmarkFacadeSearchUncached with a
// full metric registry attached — the acceptance gate for observability
// overhead on the hot path. The delta against the uncached baseline is
// the cost of the per-search instrumentation (pre-bound atomic handles;
// the budget is < 5%).
func BenchmarkFacadeSearchMetrics(b *testing.B) {
	f := benchFixture(b)
	queries := benchQueries(b, f)
	srv := authtext.ServerForTest(f.Col)
	srv.SetMetrics(authtext.NewMetrics())
	qs := make([]string, len(queries))
	for i, q := range queries {
		qs[i] = strings.Join(q, " ")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := srv.Search(qs[i%len(qs)], 10, authtext.TNRA, authtext.ChainMHT)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.VO) == 0 {
			b.Fatal("empty answer")
		}
	}
}

func benchVerifyVariant(b *testing.B, algo core.Algo, scheme core.Scheme) {
	f := benchFixture(b)
	queries := benchQueries(b, f)
	type prepared struct {
		tokens []string
		res    *engine.Result
		vo     []byte
	}
	preps := make([]prepared, 0, len(queries))
	for _, q := range queries {
		res, voBytes, _, err := f.Col.Search(q, 10, algo, scheme)
		if err != nil {
			b.Fatal(err)
		}
		preps = append(preps, prepared{tokens: q, res: res, vo: voBytes})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := preps[i%len(preps)]
		if _, err := f.Col.VerifyResult(p.tokens, 10, p.res, p.vo); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyTRAMHT(b *testing.B)   { benchVerifyVariant(b, core.AlgoTRA, core.SchemeMHT) }
func BenchmarkVerifyTRACMHT(b *testing.B)  { benchVerifyVariant(b, core.AlgoTRA, core.SchemeCMHT) }
func BenchmarkVerifyTNRAMHT(b *testing.B)  { benchVerifyVariant(b, core.AlgoTNRA, core.SchemeMHT) }
func BenchmarkVerifyTNRACMHT(b *testing.B) { benchVerifyVariant(b, core.AlgoTNRA, core.SchemeCMHT) }

// ---------------------------------------------------------------------------
// Ablations

// BenchmarkAblationChainVsMHT reports the VO size and simulated I/O of the
// two TNRA schemes side by side (the §3.3.2 motivation for chain-MHT).
func BenchmarkAblationChainVsMHT(b *testing.B) {
	f := benchFixture(b)
	queries := benchQueries(b, f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var mhtVO, cmhtVO, mhtIO, cmhtIO float64
		for _, q := range queries {
			_, voM, stM, err := f.Col.Search(q, 10, core.AlgoTNRA, core.SchemeMHT)
			if err != nil {
				b.Fatal(err)
			}
			_, voC, stC, err := f.Col.Search(q, 10, core.AlgoTNRA, core.SchemeCMHT)
			if err != nil {
				b.Fatal(err)
			}
			mhtVO += float64(len(voM))
			cmhtVO += float64(len(voC))
			mhtIO += float64(stM.IO.BlockReads)
			cmhtIO += float64(stC.IO.BlockReads)
		}
		n := float64(len(queries))
		b.ReportMetric(mhtVO/n, "mht-vo-B")
		b.ReportMetric(cmhtVO/n, "cmht-vo-B")
		b.ReportMetric(mhtIO/n, "mht-blocks")
		b.ReportMetric(cmhtIO/n, "cmht-blocks")
	}
}

// BenchmarkAblationDictionaryMode compares per-list signatures against the
// dictionary-MHT consolidation (§3.4): storage shrinks, VOs grow.
func BenchmarkAblationDictionaryMode(b *testing.B) {
	signer, err := sig.NewHMACSigner([]byte("ablation"), 128)
	if err != nil {
		b.Fatal(err)
	}
	docs := corpus.Generate(corpus.Tiny())
	for i := 0; i < b.N; i++ {
		for _, dict := range []bool{false, true} {
			cfg := engine.DefaultConfig(signer)
			cfg.DictMode = dict
			col, err := engine.BuildCollection(docs, cfg)
			if err != nil {
				b.Fatal(err)
			}
			queries := workload.Synthetic(col.Index(), 8, 3, 11)
			var voSum float64
			for _, q := range queries {
				_, voBytes, _, err := col.Search(q, 10, core.AlgoTNRA, core.SchemeCMHT)
				if err != nil {
					b.Fatal(err)
				}
				voSum += float64(len(voBytes))
			}
			label := "perlist"
			if dict {
				label = "dict"
			}
			b.ReportMetric(voSum/float64(len(queries)), label+"-vo-B")
			b.ReportMetric(float64(col.BuildStats().Signatures), label+"-sigs")
		}
	}
}

// BenchmarkAblationBlockSize sweeps the disk block size (the §4.1
// discussion of why 1 KB blocks fit the skewed list distribution).
func BenchmarkAblationBlockSize(b *testing.B) {
	signer, err := sig.NewHMACSigner([]byte("ablation"), 128)
	if err != nil {
		b.Fatal(err)
	}
	docs := corpus.Generate(corpus.Tiny())
	for i := 0; i < b.N; i++ {
		for _, bs := range []int{512, 1024, 4096} {
			cfg := engine.DefaultConfig(signer)
			cfg.Store = store.DefaultParams()
			cfg.Store.BlockSize = bs
			col, err := engine.BuildCollection(docs, cfg)
			if err != nil {
				b.Fatal(err)
			}
			queries := workload.Synthetic(col.Index(), 8, 3, 13)
			var ioMs float64
			for _, q := range queries {
				_, _, st, err := col.Search(q, 10, core.AlgoTNRA, core.SchemeCMHT)
				if err != nil {
					b.Fatal(err)
				}
				ioMs += st.IO.SimTime.Seconds() * 1000
			}
			b.ReportMetric(ioMs/float64(len(queries)), "io-ms/"+itoa(bs))
		}
	}
}

// BenchmarkAblationBuddyInclusion isolates the buddy-inclusion effect on
// TRA document proofs by comparing the data/digest split of TRA-MHT (no
// buddies) and TRA-CMHT (buddies) VOs, Table 2's mechanism.
func BenchmarkAblationBuddyInclusion(b *testing.B) {
	f := benchFixture(b)
	queries := benchQueries(b, f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var mhtData, mhtDigest, cmhtData, cmhtDigest float64
		for _, q := range queries {
			_, _, stM, err := f.Col.Search(q, 10, core.AlgoTRA, core.SchemeMHT)
			if err != nil {
				b.Fatal(err)
			}
			_, _, stC, err := f.Col.Search(q, 10, core.AlgoTRA, core.SchemeCMHT)
			if err != nil {
				b.Fatal(err)
			}
			mhtData += float64(stM.VO.Data)
			mhtDigest += float64(stM.VO.Digest)
			cmhtData += float64(stC.VO.Data)
			cmhtDigest += float64(stC.VO.Digest)
		}
		b.ReportMetric(100*mhtData/(mhtData+mhtDigest), "mht-data%")
		b.ReportMetric(100*cmhtData/(cmhtData+cmhtDigest), "cmht-data%")
	}
}

// BenchmarkOwnerBuild measures full owner-side construction (index, four
// structures, document records, signatures) on the tiny profile.
func BenchmarkOwnerBuild(b *testing.B) {
	signer, err := sig.NewHMACSigner([]byte("build"), 128)
	if err != nil {
		b.Fatal(err)
	}
	docs := corpus.Generate(corpus.Tiny())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.BuildCollection(docs, engine.DefaultConfig(signer)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Cold start: rebuilding from raw documents vs reopening a snapshot. The
// paper's model builds once (owner side) and serves many; these two
// benchmarks quantify what the snapshot subsystem buys every server start.

// BenchmarkColdStartRebuild is the status quo ante: every process start
// re-tokenises, re-indexes and re-signs the corpus.
func BenchmarkColdStartRebuild(b *testing.B) {
	signer, err := sig.NewHMACSigner([]byte("coldstart"), 128)
	if err != nil {
		b.Fatal(err)
	}
	docs := corpus.Generate(corpus.Tiny())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.BuildCollection(docs, engine.DefaultConfig(signer)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdStartSnapshot reopens the same collection from its snapshot
// bytes: no tokenising, no indexing, no signing.
func BenchmarkColdStartSnapshot(b *testing.B) {
	signer, err := sig.NewHMACSigner([]byte("coldstart"), 128)
	if err != nil {
		b.Fatal(err)
	}
	docs := corpus.Generate(corpus.Tiny())
	col, err := engine.BuildCollection(docs, engine.DefaultConfig(signer))
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, col); err != nil {
		b.Fatal(err)
	}
	snap := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snapshot.Open(bytes.NewReader(snap)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPSCANBaseline measures the unauthenticated full-scan baseline
// (Fig 2), for comparison against the threshold algorithms.
func BenchmarkPSCANBaseline(b *testing.B) {
	f := benchFixture(b)
	idx := f.Col.Index()
	src := &core.MemSource{Idx: idx}
	queries := benchQueries(b, f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := core.BuildQuery(idx, queries[i%len(queries)])
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.PSCAN(q, src); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Silence unused-import guards for build tags that strip benchmarks.
var (
	_ = index.DocID(0)
	_ = okapi.DefaultK1
)

// BenchmarkExtensionAuthorityBoost measures an authenticated boosted query
// (§5 extension): search + authority proof + verification.
func BenchmarkExtensionAuthorityBoost(b *testing.B) {
	signer, err := sig.NewHMACSigner([]byte("boost-bench"), 128)
	if err != nil {
		b.Fatal(err)
	}
	docs := corpus.Generate(corpus.Tiny())
	links := make([][]int, len(docs))
	for i := 1; i < len(docs); i++ {
		links[i] = []int{0, i / 2, i / 3}
	}
	g := linkgraph.NewGraph(len(docs))
	for src, outs := range links {
		for _, dst := range outs {
			if err := g.AddLink(src, dst); err != nil {
				b.Fatal(err)
			}
		}
	}
	authority, err := g.Normalized(0.85, 100, 1e-10)
	if err != nil {
		b.Fatal(err)
	}
	cfg := engine.DefaultConfig(signer)
	cfg.Authority = authority
	cfg.Beta = 2.0
	col, err := engine.BuildCollection(docs, cfg)
	if err != nil {
		b.Fatal(err)
	}
	queries := workload.Synthetic(col.Index(), 32, 3, 17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		res, voBytes, _, err := col.Search(q, 10, core.AlgoTNRA, core.SchemeCMHT)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := col.VerifyResult(q, 10, res, voBytes); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Sharding: parallel multi-shard fan-out vs the single collection. The
// shard-ms metric is the per-query critical path (slowest shard's server
// wall) — the latency of a deployment with one core or host per shard; on
// a single-core runner the raw ns/op cannot drop below it.

var (
	shardBenchOnce sync.Once
	shardBenchSets map[int]*shard.Set
	shardBenchErr  error
)

func shardBenchSet(b *testing.B, k int) *shard.Set {
	b.Helper()
	shardBenchOnce.Do(func() {
		signer, err := sig.NewHMACSigner([]byte("shard-bench"), 128)
		if err != nil {
			shardBenchErr = err
			return
		}
		docs := corpus.Generate(corpus.Small())
		shardBenchSets = make(map[int]*shard.Set)
		for _, kk := range []int{1, 2, 4, 8} {
			set, err := shard.Build(docs, shard.Config{Engine: engine.DefaultConfig(signer), Shards: kk})
			if err != nil {
				shardBenchErr = err
				return
			}
			shardBenchSets[kk] = set
		}
	})
	if shardBenchErr != nil {
		b.Fatal(shardBenchErr)
	}
	return shardBenchSets[k]
}

func benchShardedSearch(b *testing.B, k int) {
	set := shardBenchSet(b, k)
	queries := workload.Synthetic(set.Col(0).Index(), 64, 3, 7)
	b.ReportAllocs()
	b.ResetTimer()
	var critPath float64
	for i := 0; i < b.N; i++ {
		res, err := set.Search(queries[i%len(queries)], 10, core.AlgoTNRA, core.SchemeCMHT)
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, sr := range res.PerShard {
			if s := sr.Stats.ServerWall.Seconds() * 1000; s > worst {
				worst = s
			}
		}
		critPath += worst
	}
	b.ReportMetric(critPath/float64(b.N), "shard-ms")
}

func BenchmarkShardedSearch1(b *testing.B) { benchShardedSearch(b, 1) }
func BenchmarkShardedSearch2(b *testing.B) { benchShardedSearch(b, 2) }
func BenchmarkShardedSearch4(b *testing.B) { benchShardedSearch(b, 4) }
func BenchmarkShardedSearch8(b *testing.B) { benchShardedSearch(b, 8) }

// BenchmarkShardedSearchVerify measures the full round trip at 4 shards:
// fan-out search plus client-side verification of every shard VO and the
// merged ranking.
func BenchmarkShardedSearchVerify(b *testing.B) {
	set := shardBenchSet(b, 4)
	queries := workload.Synthetic(set.Col(0).Index(), 64, 3, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		res, err := set.Search(q, 10, core.AlgoTNRA, core.SchemeCMHT)
		if err != nil {
			b.Fatal(err)
		}
		if err := set.VerifyResult(q, 10, res); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Concurrent search on ONE collection: the read path is lock-free (each
// query runs on its own store session), so throughput scales with cores
// instead of serialising behind a collection-wide mutex. The Serialized
// variant re-imposes the pre-refactor global query lock for an
// apples-to-apples baseline on the same hardware: on an N-core runner the
// lock-free QPS at ≥N workers exceeds it by about N× (on a single-core
// runner the two converge — the paper-scale numbers live in
// docs/CONCURRENCY.md).

func benchConcurrentSearch(b *testing.B, workers int, serialize bool) {
	f := benchFixture(b)
	queries := benchQueries(b, f)
	var mu sync.Mutex
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					return
				}
				if serialize {
					mu.Lock()
				}
				_, _, _, err := f.Col.Search(queries[i%int64(len(queries))], 10, core.AlgoTNRA, core.SchemeCMHT)
				if serialize {
					mu.Unlock()
				}
				if err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkConcurrentSearch1(b *testing.B)  { benchConcurrentSearch(b, 1, false) }
func BenchmarkConcurrentSearch2(b *testing.B)  { benchConcurrentSearch(b, 2, false) }
func BenchmarkConcurrentSearch4(b *testing.B)  { benchConcurrentSearch(b, 4, false) }
func BenchmarkConcurrentSearch8(b *testing.B)  { benchConcurrentSearch(b, 8, false) }
func BenchmarkConcurrentSearch16(b *testing.B) { benchConcurrentSearch(b, 16, false) }

// BenchmarkSerializedSearch8 is the pre-refactor baseline: 8 workers
// queueing behind one collection-wide lock.
func BenchmarkSerializedSearch8(b *testing.B) { benchConcurrentSearch(b, 8, true) }

// BenchmarkSearchBatch8 measures the facade batch API end to end (64-query
// batches, 8 workers).
func BenchmarkSearchBatch8(b *testing.B) {
	f := benchFixture(b)
	queries := benchQueries(b, f)
	srv := authtext.ServerForTest(f.Col)
	batch := make([]authtext.BatchQuery, 64)
	for i := range batch {
		batch[i] = authtext.BatchQuery{Query: strings.Join(queries[i%len(queries)], " "), R: 10, Algorithm: authtext.TNRA, Scheme: authtext.ChainMHT}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, item := range srv.SearchBatch(batch, 8) {
			if item.Err != nil {
				b.Fatal(item.Err)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// VO codec allocation benchmarks: Encode pools its writer buffers and
// Decode backs digest lists with one flat allocation, so allocs/op stays
// small and flat as proofs grow.

func voCodecFixture(b *testing.B) ([]byte, *vo.VO) {
	b.Helper()
	f := benchFixture(b)
	queries := benchQueries(b, f)
	_, encoded, _, err := f.Col.Search(queries[0], 10, core.AlgoTRA, core.SchemeCMHT)
	if err != nil {
		b.Fatal(err)
	}
	decoded, err := vo.Decode(encoded)
	if err != nil {
		b.Fatal(err)
	}
	return encoded, decoded
}

func BenchmarkVOEncode(b *testing.B) {
	_, decoded := voCodecFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := vo.Encode(decoded, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVODecode(b *testing.B) {
	encoded, _ := voCodecFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vo.Decode(encoded); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Parallel throughput: many client goroutines hammering one serving
// process. A single collection's read path is lock-free, and a sharded set
// adds per-query fan-out on top, so both scale with cores (visible on
// multi-core runners via -cpu).

func BenchmarkParallelThroughputSingle(b *testing.B) {
	f := benchFixture(b)
	queries := benchQueries(b, f)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, _, _, err := f.Col.Search(queries[i%len(queries)], 10, core.AlgoTNRA, core.SchemeCMHT); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func benchParallelThroughputSharded(b *testing.B, k int) {
	set := shardBenchSet(b, k)
	queries := workload.Synthetic(set.Col(0).Index(), 64, 3, 7)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := set.Search(queries[i%len(queries)], 10, core.AlgoTNRA, core.SchemeCMHT); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func BenchmarkParallelThroughputSharded4(b *testing.B) { benchParallelThroughputSharded(b, 4) }
func BenchmarkParallelThroughputSharded8(b *testing.B) { benchParallelThroughputSharded(b, 8) }

// BenchmarkShardedBuild measures owner-side build of the same corpus at 1
// and 4 shards (shard builds run concurrently; speedup tracks cores).
func BenchmarkShardedBuild(b *testing.B) {
	signer, err := sig.NewHMACSigner([]byte("shard-build"), 128)
	if err != nil {
		b.Fatal(err)
	}
	docs := corpus.Generate(corpus.Tiny())
	for _, k := range []int{1, 4} {
		b.Run(itoa(k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := shard.Build(docs, shard.Config{Engine: engine.DefaultConfig(signer), Shards: k}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Live-update benchmarks: the cost of publishing a generation (with
// signature reuse) and the read path's indifference to concurrent swaps.

// benchLiveCollection builds a live collection over the tiny profile plus
// a dictionary-stable document factory (no new terms, so appends reuse
// signatures; see docs/UPDATES.md).
func benchLiveCollection(b *testing.B) (*live.Collection, func() index.Document) {
	b.Helper()
	signer, err := sig.NewHMACSigner([]byte("live-bench"), 128)
	if err != nil {
		b.Fatal(err)
	}
	docs := corpus.Generate(corpus.Tiny())
	lc, _, err := live.New(docs, engine.DefaultConfig(signer))
	if err != nil {
		b.Fatal(err)
	}
	idx := lc.Current().Index()
	dict := make([]string, idx.M())
	for t := range dict {
		dict[t] = idx.Name(index.TermID(t))
	}
	seq := 0
	makeDoc := func() index.Document {
		toks := make([]string, 60)
		for i := range toks {
			toks[i] = dict[(seq*31+i*7)%len(dict)]
		}
		seq++
		return index.Document{Content: []byte(strings.Join(toks, " ")), Tokens: toks}
	}
	return lc, makeDoc
}

// BenchmarkLiveUpdateAppend measures one dictionary-stable single-document
// append published as a full generation (rebuild + atomic swap).
func BenchmarkLiveUpdateAppend(b *testing.B) {
	lc, makeDoc := benchLiveCollection(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, st, err := lc.Update([]index.Document{makeDoc()}, nil); err != nil {
			b.Fatal(err)
		} else if i == b.N-1 {
			b.ReportMetric(float64(st.Reused)/float64(st.Signed+st.Reused)*100, "sig-reuse-%")
		}
	}
}

// BenchmarkLiveSwapUnderSearchLoad measures generation publication while
// 4 goroutines keep searching the collection — the acceptance shape of
// docs/UPDATES.md: updates must not stall the lock-free read path.
func BenchmarkLiveSwapUnderSearchLoad(b *testing.B) {
	lc, makeDoc := benchLiveCollection(b)
	queries := workload.Synthetic(lc.Current().Index(), 64, 3, 41)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if _, _, _, err := lc.Current().Search(queries[(c+i)%len(queries)], 10, core.AlgoTNRA, core.SchemeCMHT); err != nil {
					return
				}
			}
		}(c)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := lc.Update([]index.Document{makeDoc()}, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	stop.Store(true)
	wg.Wait()
}

// BenchmarkLiveSearchDuringUpdates is the inverse view: per-search cost
// while generations keep swapping underneath.
func BenchmarkLiveSearchDuringUpdates(b *testing.B) {
	lc, makeDoc := benchLiveCollection(b)
	queries := workload.Synthetic(lc.Current().Index(), 64, 3, 43)
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if _, _, err := lc.Update([]index.Document{makeDoc()}, nil); err != nil {
				return
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, _, _, err := lc.Current().Search(queries[i%len(queries)], 10, core.AlgoTNRA, core.SchemeCMHT); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	b.StopTimer()
	stop.Store(true)
	wg.Wait()
}
