package authtext

import (
	"fmt"
	"strings"
	"testing"
)

// newsDocs is a small realistic corpus used across the facade tests.
func newsDocs() []Document {
	texts := []string{
		"The patent examiner reviewed the search results from the portal",
		"A breached server may return incomplete or tampered search results",
		"Merkle hash trees let anyone verify a subset of signed messages",
		"The inverted index maps every term to the documents containing it",
		"Threshold algorithms stop early once the top results have emerged",
		"Financial and legal users require integrity assurance from paid content services",
		"The patent portal and the patent examiner signed the integrity report",
		"Search engines rank documents by similarity to the query keywords",
		"Signatures generated with the private key verify with the public key",
		"Digest chains authenticate the leading blocks of every inverted list",
		"The examiner compared the portal results against the CD-ROM edition",
		"Verification objects archive into an audit trail for later review",
	}
	docs := make([]Document, len(texts))
	for i, tx := range texts {
		docs[i] = Document{Content: []byte(tx)}
	}
	return docs
}

// buildOwner builds with real RSA-1024 once per test binary.
var ownerFixture *Owner

func owner(t *testing.T) *Owner {
	t.Helper()
	if ownerFixture == nil {
		o, err := NewOwner(newsDocs(), WithVocabularyProofs())
		if err != nil {
			t.Fatal(err)
		}
		ownerFixture = o
	}
	return ownerFixture
}

func TestEndToEndAllCombinations(t *testing.T) {
	o := owner(t)
	server, client := o.Server(), o.Client()
	queries := []string{
		"patent examiner portal",
		"merkle hash trees",
		"search results integrity",
		"inverted index documents",
		"the of and", // stopwords only
	}
	for _, q := range queries {
		for _, algo := range []Algorithm{TRA, TNRA} {
			for _, scheme := range []Scheme{MHT, ChainMHT} {
				res, err := server.Search(q, 3, algo, scheme)
				if err != nil {
					t.Fatalf("%v-%v %q: %v", algo, scheme, q, err)
				}
				if err := client.Verify(q, 3, res); err != nil {
					t.Fatalf("%v-%v %q: verify: %v", algo, scheme, q, err)
				}
				if res.Stats.VOBytes != len(res.VO) {
					t.Fatal("stats VO size mismatch")
				}
			}
		}
	}
}

func TestResultsAreRelevant(t *testing.T) {
	o := owner(t)
	server, client := o.Server(), o.Client()
	res, err := server.Search("patent examiner", 2, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits")
	}
	top := string(res.Hits[0].Content)
	if !strings.Contains(top, "patent") && !strings.Contains(top, "examiner") {
		t.Fatalf("top hit irrelevant: %q", top)
	}
	if err := client.Verify("patent examiner", 2, res); err != nil {
		t.Fatal(err)
	}
	// Scores ordered.
	for i := 1; i < len(res.Hits); i++ {
		if res.Hits[i-1].Score < res.Hits[i].Score {
			t.Fatal("hits out of order")
		}
	}
}

func TestTamperedContentDetected(t *testing.T) {
	o := owner(t)
	server, client := o.Server(), o.Client()
	res, err := server.Search("patent examiner portal", 2, TRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits")
	}
	evil := append([]byte{}, res.Hits[0].Content...)
	evil[0] ^= 1
	res.Hits[0].Content = evil
	err = client.Verify("patent examiner portal", 2, res)
	if err == nil {
		t.Fatal("tampered content accepted")
	}
	if !IsTampered(err) {
		t.Fatalf("IsTampered(%v) = false", err)
	}
}

func TestDroppedHitDetected(t *testing.T) {
	o := owner(t)
	server, client := o.Server(), o.Client()
	res, err := server.Search("search results", 3, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) < 2 {
		t.Skip("need at least two hits")
	}
	res.Hits = res.Hits[1:]
	if err := client.Verify("search results", 3, res); err == nil {
		t.Fatal("dropped hit accepted")
	}
}

func TestVerifyWrongQueryFails(t *testing.T) {
	o := owner(t)
	server, client := o.Server(), o.Client()
	res, err := server.Search("patent examiner", 3, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Verify("signatures private key", 3, res); err == nil {
		t.Fatal("result for a different query accepted")
	}
}

func TestNewOwnerValidation(t *testing.T) {
	if _, err := NewOwner(nil); err == nil {
		t.Fatal("empty collection accepted")
	}
}

func TestOptionsApply(t *testing.T) {
	docs := newsDocs()
	o, err := NewOwner(docs,
		WithFastSigner([]byte("opt-test")),
		WithBlockSize(512),
		WithHashSize(20),
		WithDictionaryMode(),
		WithSingletonTerms(),
		WithOkapi(1.5, 0.6),
	)
	if err != nil {
		t.Fatal(err)
	}
	server, client := o.Server(), o.Client()
	res, err := server.Search("merkle trees", 3, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Verify("merkle trees", 3, res); err != nil {
		t.Fatal(err)
	}
	_, sigs, _ := o.Stats()
	// Dictionary mode: one signature per document plus the manifest only.
	wantMax := len(docs) + 1
	if sigs != wantMax {
		t.Fatalf("dictionary mode signed %d times, want %d", sigs, wantMax)
	}
}

func TestStatsPlausible(t *testing.T) {
	o := owner(t)
	server := o.Server()
	res, err := server.Search("patent examiner portal", 3, TNRA, ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.QueryTerms == 0 || st.EntriesRead == 0 || st.BlockReads == 0 || st.IOTime <= 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	if st.PctListRead <= 0 || st.PctListRead > 100.01 {
		t.Fatalf("pct list read: %v", st.PctListRead)
	}
}

func TestAlgorithmSchemeStrings(t *testing.T) {
	if fmt.Sprint(TRA, TNRA, MHT, ChainMHT) != "TRA TNRA MHT CMHT" {
		t.Fatalf("got %q", fmt.Sprint(TRA, TNRA, MHT, ChainMHT))
	}
}
