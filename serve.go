package authtext

import (
	"errors"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"authtext/internal/httpapi"
)

// This file adapts a Server to the /v1 HTTP protocol of
// internal/httpapi (documented in docs/PROTOCOL.md). The handler serves
// three endpoints: /v1/search answers queries with their verification
// objects (single, or batched via a "queries" array executed concurrently
// server-side), /v1/manifest bootstraps clients with the owner's signed
// manifest and public key, and /v1/healthz reports liveness and aggregate
// counters. Requests are served concurrently — the engine's read path is
// lock-free, so the handler needs no serialization of its own.
// cmd/authserved is the production wrapper; RemoteClient is the consuming
// side.

// QueryLog receives one record per served query; see WithQueryLog.
type QueryLog func(query string, r int, stats Stats, wall time.Duration)

// handlerOptions collects the optional callbacks a handler can carry.
type handlerOptions struct {
	queryLog  QueryLog
	updateLog func(*UpdateReport)
	cache     *VOCache
	metrics   *Metrics
	reqLog    *slog.Logger
}

// httpapiOpts translates the observability options to the HTTP layer's.
func (o *handlerOptions) httpapiOpts() []httpapi.HandlerOpt {
	var out []httpapi.HandlerOpt
	if o.metrics != nil {
		out = append(out, httpapi.WithMetricsRegistry(o.metrics.registry()))
	}
	if o.reqLog != nil {
		out = append(out, httpapi.WithRequestLog(o.reqLog))
	}
	return out
}

// HandlerOption customises NewHTTPHandler and the live handlers.
type HandlerOption func(*handlerOptions)

// WithQueryLog installs a per-query callback (invoked synchronously after
// each successful search; keep it fast). Requests are served concurrently,
// so the callback MUST be safe for concurrent use.
func WithQueryLog(fn QueryLog) HandlerOption { return func(o *handlerOptions) { o.queryLog = fn } }

// WithUpdateLog installs a callback invoked synchronously after every
// accepted /v1/admin/update batch, with the served generation already
// swapped. Live handlers only (static handlers never update); use it for
// logging or to persist per-generation snapshots. MUST be safe for
// concurrent use.
func WithUpdateLog(fn func(*UpdateReport)) HandlerOption {
	return func(o *handlerOptions) { o.updateLog = fn }
}

// WithVOCache serves repeat queries from the given VO cache (cache.go).
// A cache hit returns a response byte-identical to the miss that
// populated it — the stats echo the original engine costs — and
// /v1/healthz reports the cache counters. On live deployments the cache
// survives generation swaps: updates invalidate it by construction
// (generation-stamped keys), so no coordination is needed.
func WithVOCache(c *VOCache) HandlerOption { return func(o *handlerOptions) { o.cache = c } }

// WithMetrics records the full request lifecycle in m — request counts and
// latency per endpoint, per-stage search timings, cache and live-path
// telemetry — and serves the registry at /v1/metrics in the Prometheus
// text format (docs/OBSERVABILITY.md is the catalog). When the handler
// also carries a VO cache, the cache series are bound to the SAME counters
// /v1/healthz reports.
func WithMetrics(m *Metrics) HandlerOption { return func(o *handlerOptions) { o.metrics = m } }

// WithRequestLog emits one structured slog record per request (request ID,
// method, path, status, duration, bytes; the X-Request-ID header is
// honored and echoed). The logger MUST be safe for concurrent use — slog
// loggers are.
func WithRequestLog(logger *slog.Logger) HandlerOption {
	return func(o *handlerOptions) { o.reqLog = logger }
}

// NewHTTPHandler exposes a Server over the versioned HTTP protocol.
// clientExport is the blob from Owner.ExportClient, served verbatim at
// /v1/manifest so remote clients can bootstrap; pass nil to run a search
// endpoint without manifest bootstrap (clients must then obtain the
// export out of band).
func NewHTTPHandler(srv *Server, clientExport []byte, opts ...HandlerOption) http.Handler {
	b := &httpBackend{srv: srv, export: clientExport, start: time.Now()}
	for _, opt := range opts {
		opt(&b.opts)
	}
	// WithVOCache layers over a cache the server may already carry, and
	// WithMetrics over a registry set via SetMetrics.
	b.srv = b.srv.withCache(b.opts.cache).withMetrics(b.opts.metrics)
	b.cache = b.srv.cache
	if b.opts.metrics != nil {
		m, _ := b.srv.col.Manifest()
		b.opts.metrics.setGeneration(m.Generation)
	}
	b.srv.metrics.BindVOCache(b.cache)
	return httpapi.NewHandler(b, b.opts.httpapiOpts()...)
}

// HTTPHandler is the owner-side convenience: it exports the verification
// material and wraps the serving half in one call.
func (o *Owner) HTTPHandler(opts ...HandlerOption) (http.Handler, error) {
	export, err := o.ExportClient()
	if err != nil {
		return nil, err
	}
	return NewHTTPHandler(o.Server(), export, opts...), nil
}

// httpBackend implements httpapi.Backend on top of a Server.
type httpBackend struct {
	srv    *Server
	export []byte
	start  time.Time
	opts   handlerOptions
	// cache is the effective VO cache (the handler option, or the one the
	// server already carried); nil when caching is off. Healthz reports it.
	cache  *VOCache
	served atomic.Int64
	failed atomic.Int64
}

func (b *httpBackend) Search(req *httpapi.SearchRequest) (*httpapi.SearchResponse, error) {
	start := time.Now()
	res, err := b.srv.Search(req.Query, req.R, parseWireAlgo(req.Algo), parseWireScheme(req.Scheme))
	if err != nil {
		b.failed.Add(1)
		return nil, err
	}
	return b.record(req, res, time.Since(start)), nil
}

// SearchBatch implements httpapi.BatchBackend on top of the facade's
// bounded-worker batch execution; queries in one batch run concurrently.
func (b *httpBackend) SearchBatch(reqs []httpapi.SearchRequest) []httpapi.BatchSearchResult {
	queries := make([]BatchQuery, len(reqs))
	for i, req := range reqs {
		queries[i] = BatchQuery{
			Query:     req.Query,
			R:         req.R,
			Algorithm: parseWireAlgo(req.Algo),
			Scheme:    parseWireScheme(req.Scheme),
		}
	}
	items := b.srv.SearchBatch(queries, 0)
	out := make([]httpapi.BatchSearchResult, len(items))
	for i, item := range items {
		if item.Err != nil {
			b.failed.Add(1)
			out[i] = httpapi.BatchOutcome(nil, item.Err)
			continue
		}
		// Per-query wall, not the batch's: the engine measures each query's
		// own server time, which stays meaningful under concurrency.
		wall := time.Duration(float64(item.Result.Stats.ServerTime) * float64(time.Millisecond))
		out[i] = httpapi.BatchOutcome(b.record(&reqs[i], item.Result, wall), nil)
	}
	return out
}

// record counts a served query, feeds the query log, and builds the wire
// response. wall is this query's own wall time — the handler-measured wall
// for single requests, the engine-measured per-query server time for
// batched ones. It feeds only the query log: the wire response is a pure
// function of the result object, so a cache hit serializes byte-identically
// to the miss that populated it.
func (b *httpBackend) record(req *httpapi.SearchRequest, res *SearchResult, wall time.Duration) *httpapi.SearchResponse {
	b.served.Add(1)
	if b.opts.queryLog != nil {
		b.opts.queryLog(req.Query, req.R, res.Stats, wall)
	}
	return wireSearchResponse(req, res)
}

// wireSearchResponse converts one facade result to the wire form (shared
// by the static and live backends). Deliberately a pure function of
// (req, res): ServerMillis echoes the engine-measured per-query time, not
// a handler wall clock, so replaying a cached result yields the identical
// bytes.
func wireSearchResponse(req *httpapi.SearchRequest, res *SearchResult) *httpapi.SearchResponse {
	out := &httpapi.SearchResponse{
		Query:      req.Query,
		R:          req.R,
		Algo:       req.Algo,
		Scheme:     req.Scheme,
		Generation: res.Generation,
		Hits:       make([]httpapi.Hit, len(res.Hits)),
		VO:         res.VO,
		Stats:      wireStats(res.Stats),
	}
	for i, h := range res.Hits {
		out.Hits[i] = httpapi.Hit{DocID: h.DocID, Score: h.Score, Content: h.Content}
	}
	return out
}

func (b *httpBackend) ClientExport() ([]byte, error) {
	if b.export == nil {
		return nil, errors.New("this server does not publish verification material")
	}
	return b.export, nil
}

func (b *httpBackend) Health() httpapi.Health {
	idx := b.srv.col.Index()
	m, _ := b.srv.col.Manifest()
	h := httpapi.Health{
		Status:        "ok",
		Documents:     idx.N,
		Terms:         idx.M(),
		Generation:    m.Generation,
		UptimeMillis:  time.Since(b.start).Milliseconds(),
		QueriesServed: b.served.Load(),
		QueriesFailed: b.failed.Load(),
	}
	if b.cache != nil {
		h.Cache = b.cache.health()
	}
	return h
}

func wireStats(st Stats) httpapi.SearchStats {
	return httpapi.SearchStats{
		QueryTerms:     st.QueryTerms,
		EntriesRead:    st.EntriesRead,
		EntriesPerTerm: st.EntriesPerTerm,
		PctListRead:    st.PctListRead,
		BlockReads:     st.BlockReads,
		RandomReads:    st.RandomReads,
		IOMillis:       float64(st.IOTime),
		VOBytes:        st.VOBytes,
		ServerMillis:   float64(st.ServerTime),
	}
}
