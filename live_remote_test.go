package authtext_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"authtext"
	"authtext/internal/httpapi"
)

// HTTP integration for live collections: an authserved-shaped handler
// keeps serving verified queries while /v1/admin/update batches land, a
// RemoteClient advances itself across generations, and a rolled-back
// server is rejected as tampering.

func liveRemoteDocs(start, n int) []authtext.Document {
	words := []string{
		"merkle", "tree", "signature", "verification", "inverted", "index",
		"threshold", "algorithm", "random", "access", "digest", "root",
	}
	docs := make([]authtext.Document, n)
	for i := range docs {
		var b []byte
		for j := 0; j < 7; j++ {
			b = append(b, words[(start+i+j)%len(words)]...)
			b = append(b, ' ')
		}
		docs[i] = authtext.Document{Content: b}
	}
	return docs
}

func postUpdate(t *testing.T, url string, req *httpapi.UpdateRequest) (*httpapi.UpdateResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+httpapi.PathAdminUpdate, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp
	}
	var out httpapi.UpdateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp
}

func TestLiveRemoteUpdateFlow(t *testing.T) {
	owner, handles, err := authtext.NewLiveOwner(liveRemoteDocs(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	var updates int
	handler, err := owner.HTTPHandler(authtext.WithUpdateLog(func(rep *authtext.UpdateReport) { updates++ }))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()
	ctx := context.Background()

	rc, err := authtext.NewRemoteClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	const q = "merkle digest"
	res, err := rc.Search(ctx, q, 3, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != 1 || rc.Generation() != 1 {
		t.Fatalf("generation 1 expected, got result %d client %d", res.Generation, rc.Generation())
	}

	// Apply an update over the wire, then search again: the client sees
	// the new generation in the response, refetches the manifest, and the
	// answer verifies.
	upd, _ := postUpdate(t, ts.URL, &httpapi.UpdateRequest{
		Add:    []httpapi.UpdateDocument{{Content: []byte("digest chains authenticate merkle verification")}},
		Remove: []uint64{uint64(handles[0])},
	})
	if upd == nil || upd.Generation != 2 {
		t.Fatalf("update response %+v", upd)
	}
	if updates != 1 {
		t.Fatalf("update log fired %d times", updates)
	}
	res2, err := rc.Search(ctx, q, 3, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		t.Fatalf("post-update search: %v", err)
	}
	if res2.Generation != 2 || rc.Generation() != 2 {
		t.Fatalf("generation 2 expected, got result %d client %d", res2.Generation, rc.Generation())
	}

	// Healthz reports the generation.
	h, err := rc.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Generation != 2 {
		t.Fatalf("healthz generation = %d", h.Generation)
	}

	// Malformed batches are the caller's fault (400), not a server error,
	// and publish nothing.
	if _, resp := postUpdate(t, ts.URL, &httpapi.UpdateRequest{}); resp == nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status %+v", resp)
	}
	if _, resp := postUpdate(t, ts.URL, &httpapi.UpdateRequest{Remove: []uint64{999999}}); resp == nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-handle batch status %+v", resp)
	}
	if owner.Generation() != 2 {
		t.Fatalf("rejected batches advanced the generation to %d", owner.Generation())
	}
}

func TestLiveRemoteRollbackRejected(t *testing.T) {
	owner, _, err := authtext.NewLiveOwner(liveRemoteDocs(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	// Freeze generation 1 (server and export) before updating.
	gen1Server := owner.Server().Snapshot()
	gen1Export, err := owner.ExportClient()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := owner.Update(liveRemoteDocs(10, 2), nil); err != nil {
		t.Fatal(err)
	}
	gen2Export, err := owner.ExportClient()
	if err != nil {
		t.Fatal(err)
	}

	// A server stuck at (or rolled back to) generation 1, talking to a
	// client that already accepted generation 2: every answer is stale.
	rolledBack := httptest.NewServer(authtext.NewHTTPHandler(gen1Server, gen1Export))
	defer rolledBack.Close()
	rc, err := authtext.NewRemoteClient(rolledBack.URL, authtext.WithClientExport(gen2Export))
	if err != nil {
		t.Fatal(err)
	}
	_, err = rc.Search(context.Background(), "merkle digest", 3, authtext.TRA, authtext.ChainMHT)
	if !errors.Is(err, authtext.ErrStaleGeneration) || !authtext.IsTampered(err) {
		t.Fatalf("rolled-back server classified as %v", err)
	}
}

func TestLiveReplicaHandlerServesAndRefusesUpdates(t *testing.T) {
	dir := t.TempDir()
	owner, _, err := authtext.NewLiveOwner(liveRemoteDocs(0, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := owner.WriteSnapshotDir(dir); err != nil {
		t.Fatal(err)
	}
	replica, err := authtext.OpenLiveSnapshotDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	handler, err := authtext.NewLiveReplicaHTTPHandler(replica)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()
	ctx := context.Background()

	rc, err := authtext.NewRemoteClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Search(ctx, "merkle digest", 3, authtext.TNRA, authtext.ChainMHT); err != nil {
		t.Fatalf("replica search: %v", err)
	}
	if rc.Generation() != 1 {
		t.Fatalf("replica client generation = %d", rc.Generation())
	}

	// The replica exposes the update endpoint but refuses to mutate.
	_, resp := postUpdate(t, ts.URL, &httpapi.UpdateRequest{
		Add: []httpapi.UpdateDocument{{Content: []byte("nope")}},
	})
	if resp == nil || resp.StatusCode != http.StatusForbidden {
		t.Fatalf("replica update status %+v", resp)
	}

	// New generation on disk → Reload → remote client follows.
	if _, _, err := owner.Update(liveRemoteDocs(8, 1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := owner.WriteSnapshotDir(dir); err != nil {
		t.Fatal(err)
	}
	if swapped, err := replica.Reload(); err != nil || !swapped {
		t.Fatalf("reload = (%v, %v)", swapped, err)
	}
	res, err := rc.Search(ctx, "merkle digest", 3, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		t.Fatalf("post-reload search: %v", err)
	}
	if res.Generation != 2 || rc.Generation() != 2 {
		t.Fatalf("post-reload generations: result %d client %d", res.Generation, rc.Generation())
	}
}

func TestLiveShardedRemoteGenerations(t *testing.T) {
	owner, _, err := authtext.NewLiveShardedOwner(liveRemoteDocs(0, 16), 2,
		authtext.WithShardPartitioner(authtext.PartitionHash))
	if err != nil {
		t.Fatal(err)
	}
	handler, err := owner.HTTPHandler()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()
	ctx := context.Background()

	rc, err := authtext.NewShardedRemoteClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	const q = "merkle digest"
	res, err := rc.Search(ctx, q, 3, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != 1 || rc.Generation() != 1 {
		t.Fatalf("set generation 1 expected, got result %d client %d", res.Generation, rc.Generation())
	}

	upd, _ := postUpdate(t, ts.URL, &httpapi.UpdateRequest{
		Add: []httpapi.UpdateDocument{{Content: []byte("digest chains authenticate merkle verification")}},
	})
	if upd == nil || upd.Generation != 2 {
		t.Fatalf("sharded update response %+v", upd)
	}
	res2, err := rc.Search(ctx, q, 3, authtext.TNRA, authtext.ChainMHT)
	if err != nil {
		t.Fatalf("post-update sharded search: %v", err)
	}
	if res2.Generation != 2 || rc.Generation() != 2 {
		t.Fatalf("set generation 2 expected, got result %d client %d", res2.Generation, rc.Generation())
	}
}
