package authtext

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"authtext/internal/engine"
	"authtext/internal/live"
	"authtext/internal/snapshot"
)

// Per-generation snapshot layout: a live snapshot directory holds one
// ordinary ATSN snapshot per published generation,
//
//	dir/gen-000000000001.atsn
//	dir/gen-000000000002.atsn
//	...
//
// written atomically (temp file + rename). The newest file IS the current
// state — no separate pointer file to go stale — and a serving process
// resumes at the latest generation by scanning the directory. The trust
// model is OpenSnapshot's: the directory is untrusted, and a replica
// additionally refuses to reload a generation lower than one it already
// served (rollback on disk is still rollback). docs/UPDATES.md and
// docs/SNAPSHOT.md describe the layout.

// liveSnapshotPattern names one generation's snapshot file. Zero-padding
// to 12 digits keeps lexicographic and numeric order identical.
const liveSnapshotPattern = "gen-%012d.atsn"

func liveSnapshotName(gen uint64) string { return fmt.Sprintf(liveSnapshotPattern, gen) }

// parseLiveSnapshotName inverts liveSnapshotName (0, false for foreign
// files).
func parseLiveSnapshotName(name string) (uint64, bool) {
	var gen uint64
	if _, err := fmt.Sscanf(name, liveSnapshotPattern, &gen); err != nil || gen == 0 {
		return 0, false
	}
	if name != liveSnapshotName(gen) {
		return 0, false
	}
	return gen, true
}

// WriteSnapshotDir persists the CURRENT generation as
// dir/gen-NNNNNNNNNNNN.atsn (creating dir if needed) and returns the
// written path. Earlier generations' files are left in place — prune them
// with any retention policy you like; a replica always picks the highest
// generation. The write is atomic: a crash mid-write leaves no partial
// snapshot under a generation name.
func (o *LiveOwner) WriteSnapshotDir(dir string) (string, error) {
	return writeGenerationSnapshot(o.lc.Current(), dir)
}

// PersistGenerations writes the current generation's snapshot to dir now
// and arranges for every FUTURE generation to be written too, from
// inside the update critical section — so even updates racing each other
// each leave their own gen-*.atsn file, in order. onError (optional)
// receives snapshot failures of future generations; the update itself
// still succeeds (serving beats durability here, and the next
// generation's snapshot re-establishes the latest state on disk).
func (o *LiveOwner) PersistGenerations(dir string, onError func(gen uint64, err error)) (string, error) {
	path, err := o.WriteSnapshotDir(dir)
	if err != nil {
		return "", err
	}
	o.lc.SetPublishHook(func(col *engine.Collection, st *live.UpdateStats) {
		if _, err := writeGenerationSnapshot(col, dir); err != nil && onError != nil {
			onError(st.Generation, err)
		}
	})
	return path, nil
}

// writeGenerationSnapshot atomically writes col's generation snapshot
// into dir and returns the path.
func writeGenerationSnapshot(col *engine.Collection, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	m, _ := col.Manifest()
	path := filepath.Join(dir, liveSnapshotName(m.Generation))
	tmp, err := os.CreateTemp(dir, ".gen-*.tmp")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name())
	if err := snapshot.Write(tmp, col); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	return path, nil
}

// IsLiveSnapshotDir reports whether path is a directory holding
// per-generation snapshots (used by the CLIs to route -snapshot PATH).
func IsLiveSnapshotDir(path string) bool {
	gen, _, err := latestGenerationSnapshot(path)
	return err == nil && gen > 0
}

// latestGenerationSnapshot scans dir for the highest-generation snapshot.
func latestGenerationSnapshot(dir string) (uint64, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, "", err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, ok := parseLiveSnapshotName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return 0, "", errors.New("authtext: no generation snapshots in directory")
	}
	sort.Strings(names) // zero-padded: lexicographic == numeric
	latest := names[len(names)-1]
	gen, _ := parseLiveSnapshotName(latest)
	return gen, filepath.Join(dir, latest), nil
}

// replicaState is one loaded generation of a LiveReplica.
type replicaState struct {
	server *Server
	client *Client
	gen    uint64
	export []byte // ATCX blob; nil for fast-signer snapshots
	// ms, for mapped replicas, owns this generation's file mapping. The
	// state holds the opening reference; Reload releases it when the
	// generation is superseded, and pinned Server() copies hold their own
	// references (dropped by finalizer), so in-flight queries keep their
	// pages until they are collected — unmap-after-swap, never under a
	// reader.
	ms *MappedSnapshot
}

// LiveReplica serves a live collection from its snapshot directory
// without holding the signing key: it opens the latest generation and,
// on Reload, hot-swaps to any newer generation that has appeared —
// `authserved -watch` is its production wrapper. It refuses to move
// backward: a directory whose latest generation shrank fails Reload
// rather than silently serving rolled-back state.
type LiveReplica struct {
	dir string
	// mapped selects zero-copy generation opens (OpenLiveSnapshotDirMapped).
	mapped bool

	mu  sync.Mutex // serialises Reload
	cur atomic.Pointer[replicaState]
	// cache is carried into every Server() copy; the shared replicaState
	// server is never mutated (withCache copies).
	cache *VOCache
	// metrics is carried into every Server() copy and receives reload
	// telemetry (generation gauge, snapshot open time).
	metrics *Metrics
}

// OpenLiveSnapshotDir opens the latest generation in dir and returns the
// serving replica. Every generation file is cross-checked against its
// name: a snapshot whose signed manifest pins a different generation than
// its filename claims is rejected.
func OpenLiveSnapshotDir(dir string) (*LiveReplica, error) {
	r := &LiveReplica{dir: dir}
	if _, err := r.Reload(); err != nil {
		return nil, err
	}
	return r, nil
}

// OpenLiveSnapshotDirMapped is OpenLiveSnapshotDir with zero-copy
// generation opens: each gen-*.atsn is memory-mapped instead of copied, so
// a reload swaps generations at decode speed and superseded generations'
// pages unmap once their in-flight queries finish (see MappedSnapshot).
func OpenLiveSnapshotDirMapped(dir string) (*LiveReplica, error) {
	r := &LiveReplica{dir: dir, mapped: true}
	if _, err := r.Reload(); err != nil {
		return nil, err
	}
	return r, nil
}

// loadGeneration opens one generation snapshot and validates its
// manifest-vs-filename consistency.
func loadGeneration(path string, wantGen uint64, mapped bool) (*replicaState, error) {
	var (
		server *Server
		client *Client
		ms     *MappedSnapshot
	)
	if mapped {
		var err error
		ms, err = OpenSnapshotMapped(path)
		if err != nil {
			return nil, err
		}
		server, client = ms.Server(), ms.Client()
	} else {
		var err error
		server, client, err = OpenSnapshotFile(path)
		if err != nil {
			return nil, err
		}
	}
	if got := client.Generation(); got != wantGen {
		if ms != nil {
			ms.Close()
		}
		return nil, fmt.Errorf("authtext: %s: snapshot manifest pins generation %d, filename claims %d",
			filepath.Base(path), got, wantGen)
	}
	st := &replicaState{server: server, client: client, gen: wantGen, ms: ms}
	// Fast-signer snapshots have no publishable key; serve without a
	// manifest endpoint rather than failing the whole replica.
	if export, err := client.Export(); err == nil {
		st.export = export
	}
	return st, nil
}

// Reload checks the directory for a newer generation and atomically
// swaps to it, returning whether a swap happened. Reload is cheap when
// nothing changed (one directory scan).
func (r *LiveReplica) Reload() (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	gen, path, err := latestGenerationSnapshot(r.dir)
	if err != nil {
		return false, err
	}
	cur := r.cur.Load()
	if cur != nil {
		if gen == cur.gen {
			return false, nil
		}
		if gen < cur.gen {
			return false, fmt.Errorf("authtext: snapshot directory rolled back: serving generation %d, latest on disk is %d",
				cur.gen, gen)
		}
	}
	openStart := time.Now()
	st, err := loadGeneration(path, gen, r.mapped)
	if err != nil {
		return false, err
	}
	r.cur.Store(st)
	if cur != nil && cur.ms != nil {
		// Unmap after swap: drop the superseded generation's opening
		// reference. Server() copies pinned to it still hold their own.
		cur.ms.Close()
	}
	r.metrics.recordSnapshotOpen(gen, time.Since(openStart))
	return true, nil
}

// Close releases the current generation's mapping (no-op for copying
// replicas). Serving must have stopped; pinned Server() copies still in
// flight keep their pages alive until collected.
func (r *LiveReplica) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur := r.cur.Load(); cur != nil && cur.ms != nil {
		cur.ms.Close()
		cur.ms = nil
	}
	return nil
}

// SetVOCache attaches a VO cache carried into every Server() result (nil
// detaches). Call before serving starts. Reloads need no cache work:
// generation-stamped keys mean entries of superseded generations simply
// stop matching.
func (r *LiveReplica) SetVOCache(c *VOCache) { r.cache = c }

// SetMetrics attaches a metric registry carried into every Server() result
// and recording reload telemetry (nil detaches). Call before serving
// starts. The currently served generation is published immediately.
func (r *LiveReplica) SetMetrics(m *Metrics) {
	r.metrics = m
	m.setGeneration(r.Generation())
}

// Server returns the serving half of the current generation. The result
// is pinned: it keeps answering from its generation even after a Reload
// swaps the replica forward. On a mapped replica the returned server also
// pins its generation's pages (released when the server is collected).
func (r *LiveReplica) Server() *Server {
	for {
		st := r.cur.Load()
		if st.ms == nil {
			return st.server.withCache(r.cache).withMetrics(r.metrics)
		}
		if st.ms.m.Retain() {
			// A fresh allocation per call so the finalizer tracks exactly
			// this handle's lifetime (withCache may return a shared pointer).
			srv := &Server{col: st.server.col, cache: r.cache, metrics: r.metrics}
			mp := st.ms.m
			runtime.SetFinalizer(srv, func(*Server) { mp.Release() })
			return srv
		}
		// Lost the race against a swap that fully released this
		// generation; the store of the successor is already visible.
	}
}

// Client returns the verification client of the current generation.
func (r *LiveReplica) Client() *Client { return r.cur.Load().client }

// Generation returns the currently served generation.
func (r *LiveReplica) Generation() uint64 { return r.cur.Load().gen }
