package authtext

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"authtext/internal/httpapi"
	"authtext/internal/wire"
)

// ShardedRemoteClient verifies fanned-out search results received over
// HTTP from an untrusted sharded authserved deployment, exactly as
// RemoteClient does for a single collection: it bootstraps the owner's
// signed shard-set manifest once (from /v1/shards/manifest, or injected
// out of band), then every answer — every shard's hits, contents, scores
// and VO, plus the merged global ranking — is verified locally before it
// is returned.
type ShardedRemoteClient struct {
	base string
	hc   *http.Client
	// metrics, when non-nil, records verify latency and tamper rejections
	// (WithShardedClientMetrics).
	metrics *Metrics

	// noBinary latches after a 406 to the binary-frame offer, exactly as
	// on RemoteClient.
	noBinary atomic.Bool

	mu     sync.Mutex
	client *ShardedClient // verification half, nil until bootstrapped

	optErr error
}

// ShardedRemoteOption customises NewShardedRemoteClient.
type ShardedRemoteOption func(*ShardedRemoteClient)

// WithShardedHTTPClient substitutes the transport (default: 30 s timeout).
func WithShardedHTTPClient(hc *http.Client) ShardedRemoteOption {
	return func(rc *ShardedRemoteClient) { rc.hc = hc }
}

// WithShardedClientMetrics is WithClientMetrics for sharded clients: the
// verify histogram covers the complete fan-out check (every shard's VO
// plus the merge recomputation).
func WithShardedClientMetrics(m *Metrics) ShardedRemoteOption {
	return func(rc *ShardedRemoteClient) { rc.metrics = m }
}

// WithShardedClientExport seeds the verification material from an
// out-of-band copy of the owner's ATSX export instead of fetching
// /v1/shards/manifest (the stronger deployment).
func WithShardedClientExport(export []byte) ShardedRemoteOption {
	return func(rc *ShardedRemoteClient) {
		c, err := NewShardedClientFromExport(export)
		if err != nil {
			rc.optErr = err
			return
		}
		rc.client = c
	}
}

// NewShardedRemoteClient prepares a client for the sharded deployment at
// baseURL. No network traffic happens until the first call.
func NewShardedRemoteClient(baseURL string, opts ...ShardedRemoteOption) (*ShardedRemoteClient, error) {
	u, err := url.Parse(strings.TrimRight(baseURL, "/"))
	if err != nil {
		return nil, fmt.Errorf("authtext: bad server URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("authtext: bad server URL %q: scheme must be http or https", baseURL)
	}
	rc := &ShardedRemoteClient{base: u.String(), hc: defaultHTTPClient()}
	for _, opt := range opts {
		opt(rc)
	}
	if rc.optErr != nil {
		return nil, rc.optErr
	}
	return rc, nil
}

// Bootstrap fetches and verifies the owner's shard-set manifest now
// instead of lazily on the first Search.
func (rc *ShardedRemoteClient) Bootstrap(ctx context.Context) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.bootstrapLocked(ctx)
}

func (rc *ShardedRemoteClient) bootstrapLocked(ctx context.Context) error {
	if rc.client != nil {
		return nil
	}
	m, err := rc.fetchManifest(ctx)
	if err != nil {
		return err
	}
	if m.Format != httpapi.FormatATSX {
		return fmt.Errorf("authtext: server sharded manifest format %q not supported", m.Format)
	}
	c, err := NewShardedClientFromExport(m.Export)
	if err != nil {
		return err
	}
	rc.client = c
	return nil
}

// fetchManifest retrieves /v1/shards/manifest with content negotiation.
func (rc *ShardedRemoteClient) fetchManifest(ctx context.Context) (*httpapi.ManifestResponse, error) {
	var m httpapi.ManifestResponse
	err := httpDoNegotiated(rc.hc, &rc.noBinary, rc.metrics,
		func() (*http.Request, error) {
			return http.NewRequestWithContext(ctx, http.MethodGet, rc.base+httpapi.PathShardManifest, nil)
		},
		func(frame []byte) error {
			d, err := wire.DecodeManifestResponse(frame)
			if err != nil {
				return err
			}
			m = *d
			return nil
		}, &m)
	if err != nil {
		return nil, err
	}
	return &m, nil
}

// Shards returns the shard count after bootstrap (0 before).
func (rc *ShardedRemoteClient) Shards() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.client == nil {
		return 0
	}
	return rc.client.Shards()
}

// Generation returns the set generation this client currently verifies
// against (0 before bootstrap or for static sets). It only moves forward.
func (rc *ShardedRemoteClient) Generation() uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.client == nil {
		return 0
	}
	return rc.client.Generation()
}

// refreshManifest advances the verification client to the server's
// current shard-set manifest (see RemoteClient.refreshManifest);
// ShardedClient.AdvanceExport enforces pinned-key verification and
// rollback rejection.
func (rc *ShardedRemoteClient) refreshManifest(ctx context.Context, client *ShardedClient) error {
	m, err := rc.fetchManifest(ctx)
	if err != nil {
		return err
	}
	if m.Format != httpapi.FormatATSX {
		return fmt.Errorf("authtext: server sharded manifest format %q not supported", m.Format)
	}
	return client.AdvanceExport(m.Export)
}

// Search asks the sharded deployment for the global top-r and verifies
// the complete answer locally — every shard's VO against its pinned
// manifest, then the merged ranking by recomputation — using the
// parameters this client asked for, never the server's echo.
func (rc *ShardedRemoteClient) Search(ctx context.Context, query string, r int, algo Algorithm, scheme Scheme) (*ShardedResult, error) {
	if r < 1 || r > httpapi.MaxR {
		return nil, fmt.Errorf("authtext: result size r=%d out of range [1, %d]", r, httpapi.MaxR)
	}
	rc.mu.Lock()
	if err := rc.bootstrapLocked(ctx); err != nil {
		rc.mu.Unlock()
		return nil, err
	}
	client := rc.client
	rc.mu.Unlock()

	reqBody, err := json.Marshal(&httpapi.SearchRequest{
		Query: query, R: r, Algo: wireAlgo(algo), Scheme: wireScheme(scheme),
	})
	if err != nil {
		return nil, err
	}
	// Retry loop as in RemoteClient.Search: absorb honest races where the
	// set is updated between the answer and the manifest refresh.
	var sw httpapi.ShardedSearchResponse
	for attempt := 0; ; attempt++ {
		sw = httpapi.ShardedSearchResponse{}
		err := httpDoNegotiated(rc.hc, &rc.noBinary, rc.metrics,
			func() (*http.Request, error) {
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, rc.base+httpapi.PathShardSearch, bytes.NewReader(reqBody))
				if err != nil {
					return nil, err
				}
				req.Header.Set("Content-Type", "application/json")
				return req, nil
			},
			func(frame []byte) error {
				d, err := wire.DecodeShardedSearchResponse(frame)
				if err != nil {
					return err
				}
				sw = *d
				return nil
			}, &sw)
		if err != nil {
			return nil, err
		}
		if sw.Generation > client.Generation() {
			if err := rc.refreshManifest(ctx, client); err != nil {
				return nil, err
			}
		}
		if sw.Generation < client.Generation() && attempt < 2 {
			continue
		}
		break
	}

	res := &ShardedResult{
		PerShard:   make([]*SearchResult, len(sw.Shards)),
		Merged:     make([]ShardedHit, len(sw.Merged)),
		Generation: sw.Generation,
		Stats: ShardedStats{
			Shards:      sw.Stats.Shards,
			Algorithm:   algo,
			Scheme:      scheme,
			EntriesRead: sw.Stats.EntriesRead,
			VOBytes:     sw.Stats.VOBytes,
			IOTime:      StatsDuration(sw.Stats.IOMillis),
			// Wall is the server-reported fan-out time (informational, like
			// every stat on the wire).
			Wall: time.Duration(sw.Stats.ServerMillis * float64(time.Millisecond)),
		},
	}
	for i := range sw.Shards {
		sr := &SearchResult{VO: sw.Shards[i].VO, Generation: sw.Shards[i].Generation,
			Hits: make([]Hit, len(sw.Shards[i].Hits))}
		for j, h := range sw.Shards[i].Hits {
			sr.Hits[j] = Hit{DocID: h.DocID, Score: h.Score, Content: h.Content}
		}
		sr.Stats = Stats{Algorithm: algo, Scheme: scheme, VOBytes: len(sr.VO)}
		res.PerShard[i] = sr
	}
	// Merged wire hits carry no content; deliver the (about to be
	// verified) content of the shard answer each one cites. A merged hit
	// citing a document its shard never returned fails verification, so
	// missing content here is fine — verification rejects first.
	for i, m := range sw.Merged {
		h := ShardedHit{Shard: m.Shard, DocID: m.DocID, GlobalID: m.GlobalID, Score: m.Score}
		if m.Shard >= 0 && m.Shard < len(res.PerShard) {
			for _, sh := range res.PerShard[m.Shard].Hits {
				if sh.DocID == m.DocID {
					h.Content = sh.Content
					break
				}
			}
		}
		res.Merged[i] = h
	}
	verifyStart := time.Now()
	err = client.Verify(query, r, res)
	rc.metrics.observeVerify(time.Since(verifyStart), err)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Health reports the deployment's liveness and shape (unauthenticated
// operational data, like RemoteClient.Health).
func (rc *ShardedRemoteClient) Health(ctx context.Context) (*ServerHealth, error) {
	var h httpapi.Health
	if err := httpGetJSON(ctx, rc.hc, rc.base, httpapi.PathHealthz, &h); err != nil {
		return nil, err
	}
	return &ServerHealth{
		Status:        h.Status,
		Documents:     h.Documents,
		Terms:         h.Terms,
		Shards:        h.Shards,
		Generation:    h.Generation,
		UptimeMillis:  h.UptimeMillis,
		QueriesServed: h.QueriesServed,
		QueriesFailed: h.QueriesFailed,
	}, nil
}
