// Package obs is the serving fleet's observability core: atomic counters,
// gauges and fixed-bucket histograms collected in a Registry and exposed
// in the Prometheus text format (prom.go) at /v1/metrics. It is stdlib
// only, like the rest of the repository, and deliberately tiny: the point
// is always-on, per-stage cost decomposition of the paper's protocol
// (index traversal vs. VO construction vs. verification, §4.1 of Pang &
// Mouratidis) without pulling a client library into the module.
//
// Concurrency model: instrument handles (Counter, Gauge, Histogram) are
// lock-free atomics on the hot path; Registry lookups take a mutex and are
// meant for construction time — callers on hot paths hold on to the
// returned handle instead of re-looking it up per event. Exposition reads
// every atomic without stopping writers, so a scrape observes a consistent
// enough point-in-time snapshot (each individual value is atomic; cross-
// metric skew is inherent to scraping a live system).
//
// Nothing in this package participates in the authentication protocol:
// metrics are operational data, exactly as trustworthy as the server
// publishing them — which is to say, not at all. Clients keep verifying
// every answer; the registry just tells operators where the time goes.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Metric types in the exposition format.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Counter is a monotonically increasing event count. The value is a
// uint64 and wraps on overflow like any Go unsigned integer — after
// 2^64-1 increments it returns to 0, which Prometheus-style consumers
// handle as a counter reset (obs_test.go pins the behaviour).
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (generation numbers, entry
// counts, ratios). Stored as IEEE float64 bits in a uint64 atomic.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution with cumulative Prometheus
// semantics: bucket i counts observations v <= Bounds[i], and an implicit
// +Inf bucket counts everything. Observe is lock-free.
type Histogram struct {
	bounds []float64       // strictly increasing upper bounds, +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// DefLatencyBuckets spans 25µs to 2.5s — wide enough for a cache hit
// (microseconds) and a cold sharded fan-out (milliseconds to seconds) to
// land in distinct buckets.
var DefLatencyBuckets = []float64{
	0.000025, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; equality lands IN the bucket
	// (le semantics).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// BucketCounts returns the per-bucket (non-cumulative) counts, the last
// element being the +Inf bucket. For tests and debugging.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// series is one labelled instance inside a family.
type series struct {
	labels  string // rendered {a="b"} suffix, "" when unlabelled
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // value function (counterFunc / gaugeFunc)
}

// family is all series sharing one metric name (and therefore one TYPE).
type family struct {
	name   string
	help   string
	typ    string
	series map[string]*series
}

// Registry holds metric families and renders them (prom.go). The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns (creating if needed) the series for name+labels,
// enforcing that one name keeps one metric type.
func (r *Registry) lookup(name, help, typ string, labels []Label) *series {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	s, ok := f.series[ls]
	if !ok {
		s = &series{labels: ls}
		f.series[ls] = s
	}
	return s
}

// Counter returns the counter for name+labels, registering it on first
// use. Repeated calls with the same name and labels return the same
// counter, so components can share series without coordination. A series
// first registered via CounterFunc cannot also be a direct counter;
// asking for one panics (like lookup's type-mismatch panic) instead of
// returning a nil handle that would blow up on the first Inc.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, typeCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.fn != nil {
		panic(fmt.Sprintf("obs: metric %s%s registered via CounterFunc, requested as Counter", name, s.labels))
	}
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge for name+labels, registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, typeGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.fn != nil {
		panic(fmt.Sprintf("obs: metric %s%s registered via GaugeFunc, requested as Gauge", name, s.labels))
	}
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns the histogram for name+labels with the given bucket
// upper bounds (+Inf implicit), registering it on first use. The bounds of
// the first registration win; they must be strictly increasing.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing at %d", name, i))
		}
	}
	s := r.lookup(name, help, typeHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		s.hist = &Histogram{bounds: append([]float64(nil), bounds...)}
		s.hist.counts = make([]atomic.Uint64, len(bounds)+1)
	}
	return s.hist
}

// CounterFunc registers a counter whose value is read by calling fn at
// scrape time — for components (like the VO cache) that already keep
// their own atomic counters: exposing THE SAME source that other surfaces
// report means the two can never disagree. Re-registering the same
// name+labels keeps the first function; a series already registered as a
// direct counter panics (silently dropping fn would leave the series
// reporting the wrong source forever).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, typeCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.counter != nil {
		panic(fmt.Sprintf("obs: metric %s%s registered as Counter, requested as CounterFunc", name, s.labels))
	}
	if s.fn == nil {
		s.fn = fn
	}
}

// GaugeFunc is CounterFunc for gauge-typed values.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, typeGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gauge != nil {
		panic(fmt.Sprintf("obs: metric %s%s registered as Gauge, requested as GaugeFunc", name, s.labels))
	}
	if s.fn == nil {
		s.fn = fn
	}
}

// renderLabels builds the canonical {a="b",c="d"} suffix (sorted by label
// name; "" for no labels) used both as the series key and on the wire.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes per the exposition format: backslash, double
// quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
