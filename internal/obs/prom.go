package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), hand-rolled because
// the repo carries no dependencies. Families are emitted sorted by name
// and series sorted by rendered labels, so output is deterministic for a
// fixed set of values — the golden fixture in internal/httpapi/testdata
// relies on that.

// ContentType is the Content-Type of the exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// famSnapshot is a point-in-time copy of one family, taken under the
// registry mutex. Rendering works from snapshots because lookup inserts
// new series into the live family maps at request time (e.g. the first
// sighting of a status code mints a new counter series), so iterating
// those maps after releasing the lock would be a concurrent map
// iteration+write — a fatal runtime error. The copied series carry
// instrument pointers whose values are atomics, safe to read while the
// hot path keeps writing.
type famSnapshot struct {
	name, help, typ string
	series          []series
}

// WritePrometheus renders every registered family to w.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshot() {
		if err := writeFamily(bw, f); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// snapshot copies every family (sorted by name) and its series (sorted by
// rendered labels) while holding the registry mutex.
func (r *Registry) snapshot() []famSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]famSnapshot, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		snap := famSnapshot{name: f.name, help: f.help, typ: f.typ,
			series: make([]series, 0, len(keys))}
		for _, k := range keys {
			snap.series = append(snap.series, *f.series[k])
		}
		fams = append(fams, snap)
	}
	return fams
}

func writeFamily(w *bufio.Writer, f famSnapshot) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
		return err
	}
	for i := range f.series {
		if err := writeSeries(w, f.name, &f.series[i]); err != nil {
			return err
		}
	}
	return nil
}

func writeSeries(w *bufio.Writer, name string, s *series) error {
	switch {
	case s.hist != nil:
		return writeHistogram(w, name, s)
	case s.fn != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, formatValue(s.fn()))
		return err
	case s.counter != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, formatValue(float64(s.counter.Value())))
		return err
	case s.gauge != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, formatValue(s.gauge.Value()))
		return err
	}
	return nil
}

func writeHistogram(w *bufio.Writer, name string, s *series) error {
	h := s.hist
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, withLabel(s.labels, "le", formatValue(bound)), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(s.labels, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatValue(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, cum)
	return err
}

// withLabel splices one extra label into an already-rendered label suffix
// (the histogram "le" label rides alongside the series labels).
func withLabel(rendered, name, value string) string {
	extra := name + `="` + escapeLabelValue(value) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(rendered, "}") + "," + extra + "}"
}

// formatValue renders a float the way Prometheus clients do: shortest
// round-trippable representation.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry in the exposition format (GET only).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w) // status line already sent
	})
}
