package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// A minimal parser for the exposition format written by WritePrometheus.
// It exists so tests (and the authserved integration test CI runs) can
// assert on scraped metrics by value instead of grepping text, and so the
// encoder can be round-trip-tested: parse(write(registry)) must yield
// exactly the registry's values.

// Sample is one parsed series value. Labels are sorted by name; histogram
// series appear as their component samples (name_bucket with an le label,
// name_sum, name_count).
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Key renders the sample identity (name + sorted labels) in the same
// canonical form the encoder writes.
func (s Sample) Key() string {
	ls := make([]Label, 0, len(s.Labels))
	for n, v := range s.Labels {
		ls = append(ls, Label{Name: n, Value: v})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	return s.Name + renderLabels(ls)
}

// Parse reads an exposition-format document and returns every sample.
// Comment (#) and blank lines are skipped; malformed sample lines are
// errors — a scrape endpoint that emits garbage should fail tests loudly.
func Parse(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value separator in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp after the value is legal in the format; we never write
	// one, but tolerate it by taking the first field.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(tok string) (float64, error) {
	switch tok {
	case "+Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	}
	return strconv.ParseFloat(tok, 64)
}

func parseLabels(body string, into map[string]string) error {
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return fmt.Errorf("label without '=' in %q", body)
		}
		name := strings.TrimSpace(body[i : i+eq])
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return fmt.Errorf("unquoted label value in %q", body)
		}
		i++
		var b strings.Builder
		for i < len(body) {
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				switch body[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(body[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
			i++
		}
		if i >= len(body) || body[i] != '"' {
			return fmt.Errorf("unterminated label value in %q", body)
		}
		i++
		into[name] = b.String()
		if i < len(body) && body[i] == ',' {
			i++
		}
	}
	return nil
}

// FindSample returns the first sample matching name and every given label
// (extra labels on the sample are allowed), or false.
func FindSample(samples []Sample, name string, labels ...Label) (Sample, bool) {
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		ok := true
		for _, l := range labels {
			if s.Labels[l.Name] != l.Value {
				ok = false
				break
			}
		}
		if ok {
			return s, true
		}
	}
	return Sample{}, false
}
