package obs

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// Bucket edges are le (inclusive): an observation exactly on a bound must
// land IN that bound's bucket, below the first bound in bucket 0, and
// above the last bound in +Inf.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edges", "t", []float64{1, 2, 5})
	for _, v := range []float64{
		0.5, // below first bound -> bucket 0
		1,   // exactly on first bound -> bucket 0 (le)
		1.5, // -> bucket 1
		2,   // exactly on bound -> bucket 1
		5,   // exactly on last bound -> bucket 2
		5.1, // above last bound -> +Inf bucket
	} {
		h.Observe(v)
	}
	got := h.BucketCounts()
	want := []uint64{2, 2, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if math.Abs(h.Sum()-15.1) > 1e-9 {
		t.Fatalf("sum = %g, want 15.1", h.Sum())
	}
}

// Cumulative exposition: each _bucket line carries the sum of everything
// at or below its le, and _count equals the +Inf bucket.
func TestHistogramCumulativeExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "t", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="2"} 2`,
		`lat_bucket{le="+Inf"} 3`,
		`lat_sum 101`,
		`lat_count 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// Counters are uint64 and wrap on overflow (a Prometheus consumer treats
// the wrap as a counter reset); the registry must not lose the series.
func TestCounterOverflow(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wrap_total", "t")
	c.Add(math.MaxUint64)
	if c.Value() != math.MaxUint64 {
		t.Fatalf("value = %d, want MaxUint64", c.Value())
	}
	c.Inc()
	if c.Value() != 0 {
		t.Fatalf("value after overflow = %d, want 0 (wraparound)", c.Value())
	}
	c.Add(3)
	if c.Value() != 3 {
		t.Fatalf("value = %d, want 3", c.Value())
	}
}

// Same name+labels returns the same instrument; different labels fork a
// new series in the same family.
func TestRegistryIdempotentLookup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs_total", "t", L("endpoint", "search"))
	b := r.Counter("reqs_total", "t", L("endpoint", "search"))
	c := r.Counter("reqs_total", "t", L("endpoint", "healthz"))
	if a != b {
		t.Fatal("same labels returned distinct counters")
	}
	if a == c {
		t.Fatal("distinct labels returned the same counter")
	}
	a.Add(2)
	c.Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `reqs_total{endpoint="healthz"} 1`) ||
		!strings.Contains(out, `reqs_total{endpoint="search"} 2`) {
		t.Fatalf("bad exposition:\n%s", out)
	}
}

// Write → Parse must reproduce every value exactly: counters, gauges,
// value-functions, histograms with labels, and escaped label values.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_requests_total", "t", L("endpoint", "search"), L("code", "200")).Add(17)
	r.Gauge("rt_generation", "t").Set(42)
	r.GaugeFunc("rt_entries", "t", func() float64 { return 7 })
	r.CounterFunc("rt_hits_total", "t", func() float64 { return 1234 })
	h := r.Histogram("rt_seconds", "t", []float64{0.001, 0.01, 0.1}, L("stage", `we"ird\label`))
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(3)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse of own output failed: %v\n%s", err, buf.String())
	}
	want := map[string]float64{
		`rt_requests_total{code="200",endpoint="search"}`: 17,
		`rt_generation`: 42,
		`rt_entries`:    7,
		`rt_hits_total`: 1234,
		`rt_seconds_bucket{le="0.001",stage="we\"ird\\label"}`: 1,
		`rt_seconds_bucket{le="0.01",stage="we\"ird\\label"}`:  1,
		`rt_seconds_bucket{le="0.1",stage="we\"ird\\label"}`:   2,
		`rt_seconds_bucket{le="+Inf",stage="we\"ird\\label"}`:  3,
		`rt_seconds_sum{stage="we\"ird\\label"}`:               3.0505,
		`rt_seconds_count{stage="we\"ird\\label"}`:             3,
	}
	got := map[string]float64{}
	for _, s := range samples {
		got[s.Key()] = s.Value
	}
	for k, v := range want {
		gv, ok := got[k]
		if !ok {
			t.Errorf("missing series %s in parsed output; have %v", k, keys(got))
			continue
		}
		if math.Abs(gv-v) > 1e-9 {
			t.Errorf("%s = %g, want %g", k, gv, v)
		}
	}
	if len(got) != len(want) {
		t.Errorf("parsed %d series, want %d: %v", len(got), len(want), keys(got))
	}
}

func keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// FindSample matches on name plus a label subset.
func TestFindSample(t *testing.T) {
	samples := []Sample{
		{Name: "x_total", Labels: map[string]string{"endpoint": "search", "code": "200"}, Value: 5},
		{Name: "x_total", Labels: map[string]string{"endpoint": "healthz", "code": "200"}, Value: 1},
	}
	s, ok := FindSample(samples, "x_total", L("endpoint", "healthz"))
	if !ok || s.Value != 1 {
		t.Fatalf("FindSample = %+v, %v", s, ok)
	}
	if _, ok := FindSample(samples, "x_total", L("endpoint", "missing")); ok {
		t.Fatal("matched a series that does not exist")
	}
}

// Concurrent observers and scrapers must not race (run under -race in CI).
func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "t")
	g := r.Gauge("cc_gauge", "t")
	h := r.Histogram("cc_seconds", "t", DefLatencyBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j%100) / 1000)
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
				if _, err := Parse(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

// Registering NEW series while a scrape renders must not race either:
// the HTTP layer mints a counter series per first-seen status code at
// request time, so lookup inserts into family maps that WritePrometheus
// iterates. Regression test (run under -race in CI) for the encoder
// iterating live maps after dropping the registry mutex.
func TestConcurrentRegisterAndScrape(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("reg_requests_total", "t",
					L("code", fmt.Sprintf("%d%02d", n, j))).Inc()
				r.Gauge("reg_gauge", "t", L("g", fmt.Sprintf("%d-%d", n, j))).Set(1)
				r.Histogram("reg_seconds", "t", DefLatencyBuckets,
					L("h", fmt.Sprintf("%d-%d", n, j))).Observe(0.001)
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, s := range samples {
		if s.Name == "reg_requests_total" {
			n++
		}
	}
	if n != 800 {
		t.Fatalf("reg_requests_total series = %d, want 800", n)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// Deterministic version of the register-during-scrape race: park the
// render mid-flush (the encoder's buffered writer flushes once early
// families exceed its buffer), mint new series in a late-sorting family
// while it sleeps, then let the render finish. The park is a plain
// time.Sleep, NOT a channel handshake — a handshake would give the mints
// a happens-before edge into the rest of the render and hide the race
// from the detector. Renders must work from a snapshot taken under the
// registry mutex; iterating the live series maps here is a
// write-vs-iterate race the -race CI run flags.
func TestScrapeDuringSeriesMint(t *testing.T) {
	r := NewRegistry()
	// Enough early-sorting series that the underlying writer is reached
	// (4 KiB bufio flush) before the zz family renders.
	for i := 0; i < 400; i++ {
		r.Counter("aa_total", "t", L("i", fmt.Sprintf("%04d", i))).Inc()
	}
	r.Counter("zz_total", "t", L("code", "200")).Inc()
	reached := make(chan struct{})
	var once sync.Once
	w := writerFunc(func(p []byte) (int, error) {
		once.Do(func() {
			close(reached)
			time.Sleep(250 * time.Millisecond)
		})
		return len(p), nil
	})
	done := make(chan error, 1)
	go func() { done <- r.WritePrometheus(w) }()
	<-reached
	// The renderer is asleep mid-render; these inserts land well inside
	// its window even on a slow single-core machine.
	for i := 0; i < 100; i++ {
		r.Counter("zz_total", "t", L("code", fmt.Sprintf("%d", 400+i))).Inc()
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// A series registered via a value function and a direct instrument are
// mutually exclusive; both orders must panic with a message naming the
// series instead of handing back a nil handle (or silently dropping fn).
func TestFuncInstrumentConflictPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.CounterFunc("fc_total", "t", func() float64 { return 1 }, L("a", "b"))
	mustPanic("Counter after CounterFunc", func() { r.Counter("fc_total", "t", L("a", "b")) })
	r.GaugeFunc("fg", "t", func() float64 { return 1 })
	mustPanic("Gauge after GaugeFunc", func() { r.Gauge("fg", "t") })
	r.Counter("dc_total", "t")
	mustPanic("CounterFunc after Counter", func() { r.CounterFunc("dc_total", "t", func() float64 { return 1 }) })
	r.Gauge("dg", "t")
	mustPanic("GaugeFunc after Gauge", func() { r.GaugeFunc("dg", "t", func() float64 { return 1 }) })
	// Different labels on the same name stay independent.
	r.Counter("fc_total", "t", L("a", "other")).Inc()
}
