// Package live maintains a mutable, authenticated document collection on
// top of the immutable engine: every batch of additions and removals
// rebuilds a fresh engine.Collection under the next publication
// *generation* and atomically swaps the served pointer, so the lock-free
// read path of docs/CONCURRENCY.md is never touched — readers always see
// one whole generation, never a torn mix of two.
//
// The owner-side cost of an update is dominated by signing, and signing
// is exactly what the generation model lets us avoid: the engine signs
// canonical content-addressed messages, so a CachingSigner reuses every
// signature whose message an update did not change (unchanged term lists,
// unchanged document records). The generation number itself lives in the
// freshly signed manifest, which is what makes rollback detectable:
// clients refuse to regress to a lower generation (docs/UPDATES.md).
//
// Removals use tombstones rather than deletion: a removed document keeps
// its slot — its postings stay in the signed term lists and its record
// stays signed — and the manifest (re-signed every generation anyway)
// commits a removal bitmap that search and verification skip
// deterministically. Document IDs therefore never shift, which is what
// lets a removal batch reuse every per-structure signature it did not
// touch, exactly like an append batch. Dead slots accumulate until they
// outnumber live documents, at which point the rebuild compacts them away
// (one full re-sign, the same rare-event budget as a W_A re-pin).
package live

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"authtext/internal/engine"
	"authtext/internal/index"
	"authtext/internal/sig"
)

// UpdateStats reports what one generation change cost.
type UpdateStats struct {
	// Generation is the generation the update published.
	Generation uint64
	// Documents is the number of live documents after the update
	// (tombstoned slots excluded).
	Documents int
	// Added and Removed count the documents the batch changed.
	Added, Removed int
	// TombstonedSlots is the number of dead slots the new generation still
	// carries; Compacted reports that this rebuild dropped accumulated
	// dead slots (a full re-sign).
	TombstonedSlots int
	Compacted       bool
	// Signed is the number of fresh signatures the rebuild needed;
	// Reused the number served from the signature cache. Both count only
	// structures this rebuild actually produced (reuse-eligible
	// structures), so Reused/(Signed+Reused) is the honest reuse ratio
	// whether or not slots are tombstoned.
	Signed, Reused int
	// ShardsReused counts whole shards carried over from the previous
	// generation without any rebuild (sharded live sets only).
	ShardsReused int
	// Rebuild is the wall time from accepting the batch to swapping the
	// served pointer.
	Rebuild time.Duration
}

// entry is one document slot: a stable handle, the immutable content, the
// pinned authority score (boosted collections), and the tombstone flag.
type entry struct {
	handle uint64
	doc    index.Document
	auth   float64
	dead   bool
}

// Collection is a live single-collection deployment: an atomically
// swapped engine.Collection plus the owner-side state needed to rebuild
// it. Searches go through Current and are lock-free; updates serialise on
// an owner-side mutex that the read path never touches.
type Collection struct {
	mu      sync.Mutex // serialises updates (owner side only)
	cfg     engine.Config
	signer  *CachingSigner
	boosted bool
	docs    []entry // slots, including tombstoned ones
	dead    int     // tombstoned slots in docs
	// nextHandle assigns handles; never reused, so a handle is
	// unambiguous across the whole collection lifetime.
	nextHandle uint64
	lastStats  UpdateStats
	// pinnedAvgLen freezes the Okapi W_A across generations so that
	// untouched documents keep byte-identical impact weights — the
	// precondition for any signature reuse. It re-pins (full re-sign)
	// when the true average drifts beyond maxAvgLenDrift.
	pinnedAvgLen float64
	// publishHook, when set, runs under mu right after every generation
	// swap — updates are serialised, so a hook that persists generations
	// sees every one exactly once, in order.
	publishHook func(*engine.Collection, *UpdateStats)

	cur atomic.Pointer[engine.Collection]
	gen atomic.Uint64
}

// maxAvgLenDrift is the relative drift of the true average document
// length from the pinned W_A beyond which a rebuild re-pins (and
// re-signs everything). 25% keeps Okapi's length normalisation honest
// without making routine updates expensive. Tombstoned slots count in
// the drift base — they are part of the index statistics the signed
// structures were built against — and compaction bounds how long they
// can distort it.
const maxAvgLenDrift = 0.25

// New builds generation 1 from the initial documents. cfg is the engine
// configuration to use for every generation; its Signer is wrapped in a
// CachingSigner so later updates reuse unchanged signatures. cfg.Authority
// (the §5 boost) is supported: scores are pinned per document and travel
// with it across generations. The returned handles identify the initial
// documents for later removal.
func New(docs []index.Document, cfg engine.Config) (*Collection, []uint64, error) {
	if cfg.Signer == nil {
		return nil, nil, errors.New("live: config needs a signer")
	}
	if cfg.Generation != 0 {
		return nil, nil, errors.New("live: the generation counter is owned by the live collection")
	}
	if cfg.Tombstones != nil {
		return nil, nil, errors.New("live: tombstones are managed by the live collection")
	}
	if cfg.Authority != nil && len(cfg.Authority) != len(docs) {
		return nil, nil, fmt.Errorf("live: %d authority scores for %d documents", len(cfg.Authority), len(docs))
	}
	c := &Collection{cfg: cfg, signer: NewCachingSigner(cfg.Signer), boosted: cfg.Authority != nil}
	c.cfg.Signer = c.signer
	// Per-generation authority/tombstone vectors are derived from the
	// entries at rebuild time, never from the construction config.
	c.cfg.Authority = nil
	handles := c.append(docs, cfg.Authority)
	if _, err := c.rebuildLocked(len(docs), 0); err != nil {
		return nil, nil, err
	}
	return c, handles, nil
}

// append registers documents and returns their handles (caller holds mu
// or is the constructor). auth may be nil (scores default to 0).
func (c *Collection) append(docs []index.Document, auth []float64) []uint64 {
	handles := make([]uint64, len(docs))
	for i, d := range docs {
		c.nextHandle++
		handles[i] = c.nextHandle
		e := entry{handle: c.nextHandle, doc: d}
		if auth != nil {
			e.auth = auth[i]
		}
		c.docs = append(c.docs, e)
	}
	return handles
}

// rebuildLocked builds generation gen+1 from c.docs and swaps the served
// pointer, compacting first when dead slots outnumber live documents. On
// error nothing is swapped and the generation does not advance; the
// caller must restore c.docs and c.dead.
func (c *Collection) rebuildLocked(added, removed int) (*UpdateStats, error) {
	live := len(c.docs) - c.dead
	if live == 0 {
		return nil, errors.New("live: update would empty the collection")
	}
	start := time.Now()
	// Compaction policy: once the majority of slots are dead, drop them.
	// Surviving documents shift IDs, so the rebuild re-signs everything —
	// the same rare-event budget as a W_A re-pin — and the next
	// generations reuse signatures against the compacted ID space.
	compacted := false
	if c.dead > live {
		kept := make([]entry, 0, live)
		for _, e := range c.docs {
			if !e.dead {
				kept = append(kept, e)
			}
		}
		c.docs, c.dead, compacted = kept, 0, true
	}
	idocs := make([]index.Document, len(c.docs))
	var tombs []bool
	if c.dead > 0 {
		tombs = make([]bool, len(c.docs))
	}
	var auth []float64
	if c.boosted {
		auth = make([]float64, len(c.docs))
	}
	for i, e := range c.docs {
		idocs[i] = e.doc
		if tombs != nil && e.dead {
			tombs[i] = true
		}
		if auth != nil {
			auth[i] = e.auth
		}
	}
	cfg := c.cfg
	cfg.Generation = c.gen.Load() + 1
	cfg.FixedAvgLen = c.pinnedAvgLen // 0 on the first build: compute and pin
	cfg.Tombstones = tombs
	cfg.Authority = auth
	c.signer.Begin()
	col, err := engine.BuildCollection(idocs, cfg)
	if err != nil {
		c.signer.Abort()
		return nil, err
	}
	if cfg.FixedAvgLen != 0 && avgLenDrift(col, cfg.FixedAvgLen) > maxAvgLenDrift {
		// The corpus has drifted too far from the pinned W_A: re-pin to
		// the true average and rebuild. Every weight changes, so this
		// generation re-signs everything — by design a rare event.
		cfg.FixedAvgLen = 0
		col, err = engine.BuildCollection(idocs, cfg)
		if err != nil {
			c.signer.Abort()
			return nil, err
		}
	}
	signed, reused := c.signer.End()
	c.pinnedAvgLen = col.Index().AvgLen
	c.cur.Store(col)
	c.gen.Store(cfg.Generation)
	c.lastStats = UpdateStats{
		Generation:      cfg.Generation,
		Documents:       live,
		Added:           added,
		Removed:         removed,
		TombstonedSlots: c.dead,
		Compacted:       compacted,
		Signed:          signed,
		Reused:          reused,
		Rebuild:         time.Since(start),
	}
	st := c.lastStats
	if c.publishHook != nil {
		c.publishHook(col, &st)
	}
	return &st, nil
}

// SetPublishHook installs fn to run after every future generation swap,
// while the update lock is still held: generations reach fn exactly
// once each, in order, with no concurrent invocations. Keep fn fast —
// it extends the owner-side critical section (never the read path).
func (c *Collection) SetPublishHook(fn func(*engine.Collection, *UpdateStats)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.publishHook = fn
}

// Current returns the serving collection of the latest published
// generation. The pointer is immutable; any number of searches may run
// against it while updates build the next generation.
func (c *Collection) Current() *engine.Collection { return c.cur.Load() }

// Generation returns the latest published generation (≥ 1).
func (c *Collection) Generation() uint64 { return c.gen.Load() }

// Signer returns the collection's signer (the caching wrapper around the
// owner's key, safe for concurrent Sign calls). The fleet equivocation
// battery uses it to forge genuinely owner-signed divergent manifests —
// the attack a stolen or coerced signing key enables — so detection is
// exercised against real signatures rather than hand-rolled stand-ins.
func (c *Collection) Signer() sig.Signer { return c.signer }

// LastStats returns the cost report of the most recent generation change.
func (c *Collection) LastStats() UpdateStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastStats
}

// Handles returns the handles of the live corpus, in document order
// (tombstoned slots excluded).
func (c *Collection) Handles() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint64, 0, len(c.docs)-c.dead)
	for _, e := range c.docs {
		if !e.dead {
			out = append(out, e.handle)
		}
	}
	return out
}

// Update applies one batch — additions and removals together — as a
// single generation change: handles for the added documents are assigned,
// the removed handles become tombstoned slots, the collection rebuilds
// under generation+1 (reusing unchanged signatures), and the served
// pointer swaps atomically. An empty batch is rejected rather than
// burning a generation. On error the corpus, the served collection and
// the generation are all unchanged.
func (c *Collection) Update(add []index.Document, remove []uint64) ([]uint64, *UpdateStats, error) {
	return c.UpdateWithAuthority(add, nil, remove)
}

// UpdateWithAuthority is Update with per-document authority scores for
// the additions (boosted collections only; len(auth) == len(add), scores
// in [0,1]). A nil auth on a boosted collection assigns 0 to every added
// document.
func (c *Collection) UpdateWithAuthority(add []index.Document, auth []float64, remove []uint64) ([]uint64, *UpdateStats, error) {
	if len(add) == 0 && len(remove) == 0 {
		return nil, nil, errors.New("live: empty update batch")
	}
	if auth != nil && len(auth) != len(add) {
		return nil, nil, fmt.Errorf("live: %d authority scores for %d added documents", len(auth), len(add))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if auth != nil && !c.boosted {
		return nil, nil, errors.New("live: authority scores on an unboosted collection")
	}
	prevDocs, prevDead, prevNext := c.docs, c.dead, c.nextHandle
	// Work on a copy so a failed rebuild leaves the corpus untouched
	// (entries are values; the shared backing array is never mutated).
	next := append(make([]entry, 0, len(prevDocs)+len(add)), prevDocs...)
	if err := markRemoved(next, remove); err != nil {
		return nil, nil, err
	}
	c.docs = next
	c.dead += len(remove)
	handles := c.append(add, auth)
	st, err := c.rebuildLocked(len(add), len(remove))
	if err != nil {
		c.docs, c.dead, c.nextHandle = prevDocs, prevDead, prevNext
		return nil, nil, err
	}
	return handles, st, nil
}

// avgLenDrift returns the relative deviation of the collection's true
// average document length from the pinned value.
func avgLenDrift(col *engine.Collection, pinned float64) float64 {
	idx := col.Index()
	var total int64
	for _, l := range idx.DocLen {
		total += int64(l)
	}
	trueAvg := float64(total) / float64(idx.N)
	d := (trueAvg - pinned) / pinned
	if d < 0 {
		d = -d
	}
	return d
}

// markRemoved tombstones the removed handles in docs, erroring on
// unknown, already-removed or duplicate handles (an update that silently
// "removes" a document that is not there would hide owner-side bugs).
func markRemoved(docs []entry, remove []uint64) error {
	if len(remove) == 0 {
		return nil
	}
	drop := make(map[uint64]bool, len(remove))
	for _, h := range remove {
		if drop[h] {
			return fmt.Errorf("live: handle %d removed twice in one batch", h)
		}
		drop[h] = true
	}
	for i := range docs {
		e := &docs[i]
		if !drop[e.handle] {
			continue
		}
		if e.dead {
			return fmt.Errorf("live: document handle %d already removed", e.handle)
		}
		e.dead = true
		delete(drop, e.handle)
	}
	for h := range drop {
		return fmt.Errorf("live: unknown document handle %d", h)
	}
	return nil
}
