// Package live maintains a mutable, authenticated document collection on
// top of the immutable engine: every batch of additions and removals
// rebuilds a fresh engine.Collection under the next publication
// *generation* and atomically swaps the served pointer, so the lock-free
// read path of docs/CONCURRENCY.md is never touched — readers always see
// one whole generation, never a torn mix of two.
//
// The owner-side cost of an update is dominated by signing, and signing
// is exactly what the generation model lets us avoid: the engine signs
// canonical content-addressed messages, so a CachingSigner reuses every
// signature whose message an update did not change (unchanged term lists,
// unchanged document records). The generation number itself lives in the
// freshly signed manifest, which is what makes rollback detectable:
// clients refuse to regress to a lower generation (docs/UPDATES.md).
package live

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"authtext/internal/engine"
	"authtext/internal/index"
)

// UpdateStats reports what one generation change cost.
type UpdateStats struct {
	// Generation is the generation the update published.
	Generation uint64
	// Documents is the corpus size after the update.
	Documents int
	// Added and Removed count the documents the batch changed.
	Added, Removed int
	// Signed is the number of fresh signatures the rebuild needed;
	// Reused the number served from the signature cache.
	Signed, Reused int
	// ShardsReused counts whole shards carried over from the previous
	// generation without any rebuild (sharded live sets only).
	ShardsReused int
	// Rebuild is the wall time from accepting the batch to swapping the
	// served pointer.
	Rebuild time.Duration
}

// entry is one live document: a stable handle plus its immutable content.
type entry struct {
	handle uint64
	doc    index.Document
}

// Collection is a live single-collection deployment: an atomically
// swapped engine.Collection plus the owner-side state needed to rebuild
// it. Searches go through Current and are lock-free; updates serialise on
// an owner-side mutex that the read path never touches.
type Collection struct {
	mu         sync.Mutex // serialises updates (owner side only)
	cfg        engine.Config
	signer     *CachingSigner
	docs       []entry
	nextHandle uint64
	lastStats  UpdateStats
	// pinnedAvgLen freezes the Okapi W_A across generations so that
	// untouched documents keep byte-identical impact weights — the
	// precondition for any signature reuse. It re-pins (full re-sign)
	// when the true average drifts beyond maxAvgLenDrift.
	pinnedAvgLen float64
	// publishHook, when set, runs under mu right after every generation
	// swap — updates are serialised, so a hook that persists generations
	// sees every one exactly once, in order.
	publishHook func(*engine.Collection, *UpdateStats)

	cur atomic.Pointer[engine.Collection]
	gen atomic.Uint64
}

// maxAvgLenDrift is the relative drift of the true average document
// length from the pinned W_A beyond which a rebuild re-pins (and
// re-signs everything). 25% keeps Okapi's length normalisation honest
// without making routine updates expensive.
const maxAvgLenDrift = 0.25

// New builds generation 1 from the initial documents. cfg is the engine
// configuration to use for every generation; its Signer is wrapped in a
// CachingSigner so later updates reuse unchanged signatures. The returned
// handles identify the initial documents for later removal.
func New(docs []index.Document, cfg engine.Config) (*Collection, []uint64, error) {
	if cfg.Signer == nil {
		return nil, nil, errors.New("live: config needs a signer")
	}
	if cfg.Authority != nil {
		return nil, nil, errors.New("live: the authority boost is not supported on live collections")
	}
	if cfg.Generation != 0 {
		return nil, nil, errors.New("live: the generation counter is owned by the live collection")
	}
	c := &Collection{cfg: cfg, signer: NewCachingSigner(cfg.Signer)}
	c.cfg.Signer = c.signer
	handles := c.append(docs)
	if _, err := c.rebuildLocked(len(docs), 0); err != nil {
		return nil, nil, err
	}
	return c, handles, nil
}

// append registers documents and returns their handles (caller holds mu
// or is the constructor).
func (c *Collection) append(docs []index.Document) []uint64 {
	handles := make([]uint64, len(docs))
	for i, d := range docs {
		c.nextHandle++
		handles[i] = c.nextHandle
		c.docs = append(c.docs, entry{handle: c.nextHandle, doc: d})
	}
	return handles
}

// rebuildLocked builds generation gen+1 from c.docs and swaps the served
// pointer. On error nothing is swapped and the generation does not
// advance; the caller must restore c.docs.
func (c *Collection) rebuildLocked(added, removed int) (*UpdateStats, error) {
	if len(c.docs) == 0 {
		return nil, errors.New("live: update would empty the collection")
	}
	start := time.Now()
	idocs := make([]index.Document, len(c.docs))
	for i, e := range c.docs {
		idocs[i] = e.doc
	}
	cfg := c.cfg
	cfg.Generation = c.gen.Load() + 1
	cfg.FixedAvgLen = c.pinnedAvgLen // 0 on the first build: compute and pin
	c.signer.Begin()
	col, err := engine.BuildCollection(idocs, cfg)
	if err != nil {
		c.signer.Abort()
		return nil, err
	}
	if cfg.FixedAvgLen != 0 && avgLenDrift(col, cfg.FixedAvgLen) > maxAvgLenDrift {
		// The corpus has drifted too far from the pinned W_A: re-pin to
		// the true average and rebuild. Every weight changes, so this
		// generation re-signs everything — by design a rare event.
		cfg.FixedAvgLen = 0
		col, err = engine.BuildCollection(idocs, cfg)
		if err != nil {
			c.signer.Abort()
			return nil, err
		}
	}
	signed, reused := c.signer.End()
	c.pinnedAvgLen = col.Index().AvgLen
	c.cur.Store(col)
	c.gen.Store(cfg.Generation)
	c.lastStats = UpdateStats{
		Generation: cfg.Generation,
		Documents:  len(c.docs),
		Added:      added,
		Removed:    removed,
		Signed:     signed,
		Reused:     reused,
		Rebuild:    time.Since(start),
	}
	st := c.lastStats
	if c.publishHook != nil {
		c.publishHook(col, &st)
	}
	return &st, nil
}

// SetPublishHook installs fn to run after every future generation swap,
// while the update lock is still held: generations reach fn exactly
// once each, in order, with no concurrent invocations. Keep fn fast —
// it extends the owner-side critical section (never the read path).
func (c *Collection) SetPublishHook(fn func(*engine.Collection, *UpdateStats)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.publishHook = fn
}

// Current returns the serving collection of the latest published
// generation. The pointer is immutable; any number of searches may run
// against it while updates build the next generation.
func (c *Collection) Current() *engine.Collection { return c.cur.Load() }

// Generation returns the latest published generation (≥ 1).
func (c *Collection) Generation() uint64 { return c.gen.Load() }

// LastStats returns the cost report of the most recent generation change.
func (c *Collection) LastStats() UpdateStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastStats
}

// Handles returns the handles of the current corpus, in document order.
func (c *Collection) Handles() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint64, len(c.docs))
	for i, e := range c.docs {
		out[i] = e.handle
	}
	return out
}

// Update applies one batch — additions and removals together — as a
// single generation change: handles for the added documents are assigned,
// the removed handles leave the corpus, the collection rebuilds under
// generation+1 (reusing unchanged signatures), and the served pointer
// swaps atomically. An empty batch is rejected rather than burning a
// generation. On error the corpus, the served collection and the
// generation are all unchanged.
func (c *Collection) Update(add []index.Document, remove []uint64) ([]uint64, *UpdateStats, error) {
	if len(add) == 0 && len(remove) == 0 {
		return nil, nil, errors.New("live: empty update batch")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	prev := c.docs
	prevNext := c.nextHandle
	kept, err := removeHandles(prev, remove)
	if err != nil {
		return nil, nil, err
	}
	// Work on a copy so a failed rebuild leaves the corpus untouched.
	c.docs = append(make([]entry, 0, len(kept)+len(add)), kept...)
	handles := c.append(add)
	st, err := c.rebuildLocked(len(add), len(remove))
	if err != nil {
		c.docs = prev
		c.nextHandle = prevNext
		return nil, nil, err
	}
	return handles, st, nil
}

// avgLenDrift returns the relative deviation of the collection's true
// average document length from the pinned value.
func avgLenDrift(col *engine.Collection, pinned float64) float64 {
	idx := col.Index()
	var total int64
	for _, l := range idx.DocLen {
		total += int64(l)
	}
	trueAvg := float64(total) / float64(idx.N)
	d := (trueAvg - pinned) / pinned
	if d < 0 {
		d = -d
	}
	return d
}

// removeHandles returns docs without the removed handles, erroring on
// unknown or duplicate handles (an update that silently "removes" a
// document that is not there would hide owner-side bugs).
func removeHandles(docs []entry, remove []uint64) ([]entry, error) {
	if len(remove) == 0 {
		return docs, nil
	}
	drop := make(map[uint64]bool, len(remove))
	for _, h := range remove {
		if drop[h] {
			return nil, fmt.Errorf("live: handle %d removed twice in one batch", h)
		}
		drop[h] = true
	}
	kept := make([]entry, 0, len(docs))
	for _, e := range docs {
		if drop[e.handle] {
			delete(drop, e.handle)
			continue
		}
		kept = append(kept, e)
	}
	if len(drop) != 0 {
		for h := range drop {
			return nil, fmt.Errorf("live: unknown document handle %d", h)
		}
	}
	return kept, nil
}
