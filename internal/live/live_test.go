package live

import (
	"testing"

	"authtext/internal/core"
	"authtext/internal/engine"
	"authtext/internal/index"
	"authtext/internal/shard"
	"authtext/internal/sig"
)

func testConfig(t *testing.T) engine.Config {
	t.Helper()
	signer, err := sig.NewHMACSigner([]byte("live-test-key"), 128)
	if err != nil {
		t.Fatal(err)
	}
	return engine.DefaultConfig(signer)
}

// vocab is a closed word pool: signature reuse across generations depends
// on dictionary stability (term IDs are baked into the signed messages),
// so the tests write documents whose vocabulary never grows.
var vocab = []string{
	"merkle", "tree", "signature", "verification", "inverted", "index",
	"threshold", "algorithm", "random", "access", "digest", "root",
	"chain", "block", "proof", "query", "result", "server", "client", "owner",
}

// corpusAt builds n documents whose word choice depends on the document's
// absolute position start+i, drawing only from vocab. Consecutive
// positions overlap heavily (no singleton terms in corpora of ≥ 9 docs)
// and every position yields distinct content (per-position repetition),
// so hash partitioning spreads documents usefully.
func corpusAt(start, n int) []index.Document {
	docs := make([]index.Document, n)
	for i := range docs {
		pos := start + i
		words := make([]byte, 0, 128)
		for j := 0; j < 8; j++ {
			words = append(words, vocab[(pos+j)%len(vocab)]...)
			words = append(words, ' ')
		}
		for j := 0; j <= pos%5; j++ {
			words = append(words, vocab[(pos*7)%len(vocab)]...)
			words = append(words, ' ')
		}
		docs[i] = index.Document{Content: words}
	}
	return docs
}

func corpus(n int) []index.Document { return corpusAt(0, n) }

func searchVerify(t *testing.T, col *engine.Collection, tokens []string) *engine.Result {
	t.Helper()
	res, vo, _, err := col.Search(tokens, 5, core.AlgoTNRA, core.SchemeCMHT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.VerifyResult(tokens, 5, res, vo); err != nil {
		t.Fatalf("self-verification failed: %v", err)
	}
	return res
}

func TestUpdateAdvancesGenerationAndReusesSignatures(t *testing.T) {
	c, handles, err := New(corpus(20), testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Generation(); got != 1 {
		t.Fatalf("initial generation = %d, want 1", got)
	}
	m, _ := c.Current().Manifest()
	if m.Generation != 1 {
		t.Fatalf("manifest generation = %d, want 1", m.Generation)
	}
	first := c.LastStats()
	if first.Reused != 0 || first.Signed == 0 {
		t.Fatalf("first build stats = %+v, want all signed", first)
	}
	searchVerify(t, c.Current(), []string{"merkle", "digest"})

	// Appending one document leaves most term lists and every existing
	// document record untouched: the rebuild must reuse far more
	// signatures than it creates.
	added, st, err := c.Update(corpus(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation != 2 || c.Generation() != 2 {
		t.Fatalf("generation after add = %d (stats %d), want 2", c.Generation(), st.Generation)
	}
	if len(added) != 1 {
		t.Fatalf("added handles = %v", added)
	}
	if st.Reused == 0 || st.Reused < st.Signed {
		t.Fatalf("append reused %d / signed %d signatures, expected mostly reuse", st.Reused, st.Signed)
	}
	m2, _ := c.Current().Manifest()
	if m2.Generation != 2 || m2.N != 21 {
		t.Fatalf("manifest after add: gen %d n %d", m2.Generation, m2.N)
	}
	searchVerify(t, c.Current(), []string{"merkle", "digest"})

	// Removal: the document becomes a tombstoned slot — every per-structure
	// signature is untouched, so the rebuild re-signs only the manifest.
	_, st3, err := c.Update(nil, []uint64{handles[0]})
	if err != nil {
		t.Fatal(err)
	}
	if c.Generation() != 3 {
		t.Fatalf("generation after remove = %d, want 3", c.Generation())
	}
	m3, _ := c.Current().Manifest()
	if m3.N != 21 {
		t.Fatalf("slot count after remove = %d, want 21 (tombstoned, not deleted)", m3.N)
	}
	if got := m3.LiveDocs(); got != 20 {
		t.Fatalf("live docs after remove = %d, want 20", got)
	}
	if !m3.IsTombstoned(0) || m3.IsTombstoned(1) {
		t.Fatalf("tombstone bitmap wrong: slot0=%v slot1=%v", m3.IsTombstoned(0), m3.IsTombstoned(1))
	}
	if st3.Signed != 1 {
		t.Fatalf("removal-only batch signed %d structures, want 1 (the manifest)", st3.Signed)
	}
	if st3.Documents != 20 || st3.TombstonedSlots != 1 {
		t.Fatalf("removal stats = %+v, want 20 live / 1 tombstoned", st3)
	}
	if got := len(c.Handles()); got != 20 {
		t.Fatalf("Handles() after remove = %d, want 20", got)
	}
	// The removed slot must never surface in (verified) results.
	res := searchVerify(t, c.Current(), []string{"merkle", "digest"})
	for _, e := range res.Entries {
		if e.Doc == 0 {
			t.Fatalf("tombstoned doc 0 returned in results: %+v", res.Entries)
		}
	}
}

func TestUpdateRejectsBadBatches(t *testing.T) {
	c, handles, err := New(corpus(3), testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Update(nil, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, _, err := c.Update(nil, []uint64{999}); err == nil {
		t.Fatal("unknown handle accepted")
	}
	if _, _, err := c.Update(nil, []uint64{handles[0], handles[0]}); err == nil {
		t.Fatal("duplicate handle accepted")
	}
	if _, _, err := c.Update(nil, handles); err == nil {
		t.Fatal("emptying removal accepted")
	}
	// Failed updates must leave generation and corpus untouched.
	if c.Generation() != 1 {
		t.Fatalf("generation moved to %d after rejected batches", c.Generation())
	}
	if got := len(c.Handles()); got != 3 {
		t.Fatalf("corpus has %d documents after rejected batches, want 3", got)
	}
}

func TestVOCarriesGeneration(t *testing.T) {
	c, _, err := New(corpus(8), testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Update(corpus(2), nil); err != nil {
		t.Fatal(err)
	}
	col := c.Current()
	tokens := []string{"merkle", "digest"}
	res, voBytes, _, err := col.Search(tokens, 3, core.AlgoTRA, core.SchemeCMHT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.VerifyResult(tokens, 3, res, voBytes); err != nil {
		t.Fatal(err)
	}
	// A stale VO (generation 1) must be rejected against the generation-2
	// manifest with the dedicated code.
	c2, _, err := New(corpus(10), testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	oldCol := c2.Current() // generation 1 over the same 10 documents
	res1, vo1, _, err := oldCol.Search(tokens, 3, core.AlgoTRA, core.SchemeCMHT)
	if err != nil {
		t.Fatal(err)
	}
	_, err = col.VerifyResult(tokens, 3, res1, vo1)
	if core.CodeOf(err) != core.CodeStaleGeneration {
		t.Fatalf("stale VO classified as %v (err %v), want stale-generation", core.CodeOf(err), err)
	}
}

func TestShardedUpdateReusesUntouchedShards(t *testing.T) {
	// HashContent placement is stable, so adding documents leaves most
	// shards' membership unchanged and they are carried over wholesale.
	c, _, err := NewSharded(corpus(40), testConfig(t), 4, shard.HashContent)
	if err != nil {
		t.Fatal(err)
	}
	if c.Generation() != 1 {
		t.Fatalf("initial generation = %d", c.Generation())
	}
	set := c.Current()
	sm, _ := set.Manifest()
	if sm.Generation != 1 {
		t.Fatalf("set manifest generation = %d", sm.Generation)
	}

	extra := []index.Document{{Content: []byte("a single brand new document about verification")}}
	_, st, err := c.Update(extra, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation != 2 {
		t.Fatalf("generation after add = %d", st.Generation)
	}
	if st.ShardsReused == 0 {
		t.Fatalf("no shards reused on a 1-document add with hash partitioning (stats %+v)", st)
	}
	newSet := c.Current()
	sm2, _ := newSet.Manifest()
	if sm2.Generation != 2 || int(sm2.GlobalN) != 41 {
		t.Fatalf("set manifest after add: gen %d globalN %d", sm2.Generation, sm2.GlobalN)
	}
	// The whole set must verify end to end at the new generation.
	tokens := []string{"verification", "merkle"}
	res, err := newSet.Search(tokens, 5, core.AlgoTNRA, core.SchemeCMHT)
	if err != nil {
		t.Fatal(err)
	}
	if err := newSet.VerifyResult(tokens, 5, res); err != nil {
		t.Fatalf("sharded self-verification failed after update: %v", err)
	}
}

func TestCachingSignerEpochPruning(t *testing.T) {
	signer, err := sig.NewHMACSigner([]byte("prune-key"), 128)
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCachingSigner(signer)
	if _, err := cs.Sign([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Sign([]byte("b")); err != nil {
		t.Fatal(err)
	}
	cs.Begin()
	if _, err := cs.Sign([]byte("a")); err != nil {
		t.Fatal(err)
	}
	signed, reused := cs.End()
	if signed != 0 || reused != 1 {
		t.Fatalf("epoch counts signed=%d reused=%d, want 0/1", signed, reused)
	}
	// "b" was pruned; signing it again is a miss.
	cs.Begin()
	if _, err := cs.Sign([]byte("b")); err != nil {
		t.Fatal(err)
	}
	signed, reused = cs.End()
	if signed != 1 || reused != 0 {
		t.Fatalf("post-prune counts signed=%d reused=%d, want 1/0", signed, reused)
	}

	// EndKeep does NOT prune: an epoch that touched only "a" must leave
	// "b" cached (the reused-shard case).
	if _, err := cs.Sign([]byte("a")); err != nil { // cache = {a, b}
		t.Fatal(err)
	}
	cs.Begin()
	if _, err := cs.Sign([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if signed, reused = cs.EndKeep(); signed != 0 || reused != 1 {
		t.Fatalf("EndKeep counts signed=%d reused=%d, want 0/1", signed, reused)
	}
	cs.Begin()
	if _, err := cs.Sign([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if signed, reused = cs.End(); signed != 0 || reused != 1 {
		t.Fatalf("\"b\" was evicted by EndKeep: signed=%d reused=%d", signed, reused)
	}

	// Abort discards the epoch without pruning.
	cs.Begin()
	if _, err := cs.Sign([]byte("a")); err != nil {
		t.Fatal(err)
	}
	cs.Abort()
	cs.Begin()
	if _, err := cs.Sign([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if signed, reused = cs.End(); signed != 0 || reused != 1 {
		t.Fatalf("\"a\" lost across Abort: signed=%d reused=%d", signed, reused)
	}
}
