package live

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"authtext/internal/engine"
	"authtext/internal/index"
	"authtext/internal/shard"
	"authtext/internal/sig"
	"authtext/internal/textproc"
)

// ShardedCollection is the sharded counterpart of Collection: one live
// shard set behind an atomic pointer. Every update re-partitions the
// corpus, rebuilds only the shards whose document membership changed —
// an untouched shard's engine.Collection is carried over wholesale, its
// manifest digest staying pinned in the freshly signed set manifest —
// and swaps the whole set at once, so a fan-out never observes shards
// from two different publication states.
//
// Shard-level reuse depends on the partitioner: HashContent keeps
// unchanged documents in place, so a small batch touches few shards;
// RoundRobin reassigns most documents whenever one is removed, degrading
// to a full rebuild (still with signature-level reuse).
type ShardedCollection struct {
	mu         sync.Mutex
	cfg        engine.Config
	signer     *CachingSigner
	part       shard.Partitioner
	k          int
	docs       []entry
	nextHandle uint64
	lastStats  UpdateStats
	shardKeys  [][]uint64 // current generation's per-shard handle lists
	// pinnedAvgLen freezes one corpus-wide Okapi W_A across all shards
	// and all generations (see Collection.pinnedAvgLen). A side benefit
	// over static sharded builds: every shard scores against the same
	// W_A, so cross-shard score comparisons in the merge are exact
	// rather than per-shard approximations.
	pinnedAvgLen float64

	cur atomic.Pointer[shard.Set]
	gen atomic.Uint64
}

// NewSharded builds generation 1 of a k-shard live set.
func NewSharded(docs []index.Document, cfg engine.Config, k int, part shard.Partitioner) (*ShardedCollection, []uint64, error) {
	if cfg.Signer == nil {
		return nil, nil, errors.New("live: config needs a signer")
	}
	if cfg.Authority != nil {
		return nil, nil, errors.New("live: the authority boost is not supported on live collections")
	}
	if cfg.Generation != 0 {
		return nil, nil, errors.New("live: the generation counter is owned by the live collection")
	}
	if part == 0 {
		part = shard.RoundRobin
	}
	c := &ShardedCollection{cfg: cfg, signer: NewCachingSigner(cfg.Signer), part: part, k: k}
	c.cfg.Signer = c.signer
	c.pinnedAvgLen = meanDocLen(docs)
	if c.pinnedAvgLen == 0 {
		return nil, nil, errors.New("live: collection has no indexable terms")
	}
	handles := make([]uint64, len(docs))
	for i, d := range docs {
		c.nextHandle++
		handles[i] = c.nextHandle
		c.docs = append(c.docs, entry{handle: c.nextHandle, doc: d})
	}
	if _, err := c.rebuildLocked(len(docs), 0); err != nil {
		return nil, nil, err
	}
	return c, handles, nil
}

// Current returns the serving shard set of the latest generation.
func (c *ShardedCollection) Current() *shard.Set { return c.cur.Load() }

// Generation returns the latest published generation (≥ 1).
func (c *ShardedCollection) Generation() uint64 { return c.gen.Load() }

// Shards returns the shard count.
func (c *ShardedCollection) Shards() int { return c.k }

// LastStats returns the cost report of the most recent generation change.
func (c *ShardedCollection) LastStats() UpdateStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastStats
}

// Update applies one add/remove batch as a single set-wide generation
// change; see Collection.Update for the contract.
func (c *ShardedCollection) Update(add []index.Document, remove []uint64) ([]uint64, *UpdateStats, error) {
	if len(add) == 0 && len(remove) == 0 {
		return nil, nil, errors.New("live: empty update batch")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	prev := c.docs
	prevNext := c.nextHandle
	kept, err := removeHandles(prev, remove)
	if err != nil {
		return nil, nil, err
	}
	c.docs = append(make([]entry, 0, len(kept)+len(add)), kept...)
	handles := make([]uint64, len(add))
	for i, d := range add {
		c.nextHandle++
		handles[i] = c.nextHandle
		c.docs = append(c.docs, entry{handle: c.nextHandle, doc: d})
	}
	st, err := c.rebuildLocked(len(add), len(remove))
	if err != nil {
		c.docs = prev
		c.nextHandle = prevNext
		return nil, nil, err
	}
	return handles, st, nil
}

// rebuildLocked builds the next set generation from c.docs and swaps the
// served pointer, reusing whole shards whose membership is unchanged.
func (c *ShardedCollection) rebuildLocked(added, removed int) (*UpdateStats, error) {
	if len(c.docs) == 0 {
		return nil, errors.New("live: update would empty the collection")
	}
	start := time.Now()
	idocs := make([]index.Document, len(c.docs))
	for i, e := range c.docs {
		idocs[i] = e.doc
	}
	assign, err := c.part.Assign(idocs, c.k)
	if err != nil {
		return nil, err
	}
	newGen := c.gen.Load() + 1
	prevSet := c.cur.Load()

	newKeys := make([][]uint64, c.k)
	for s, members := range assign {
		newKeys[s] = make([]uint64, len(members))
		for i, g := range members {
			newKeys[s][i] = c.docs[g].handle
		}
	}

	// Re-pin the shared W_A when the corpus drifted too far; that changes
	// every weight in every shard, so shard reuse is off for this build.
	pinned := c.pinnedAvgLen
	repin := false
	if trueAvg := meanDocLenEntries(c.docs); trueAvg > 0 {
		d := (trueAvg - pinned) / pinned
		if d < 0 {
			d = -d
		}
		if d > maxAvgLenDrift {
			pinned = trueAvg
			repin = true
		}
	}

	c.signer.Begin()
	cols := make([]*engine.Collection, c.k)
	errs := make([]error, c.k)
	reusedShards := 0
	var wg sync.WaitGroup
	for s := 0; s < c.k; s++ {
		if prevSet != nil && !repin && handlesEqual(c.shardKeys[s], newKeys[s]) {
			// Identical membership (documents are immutable under their
			// handles), identical configuration: the previous generation's
			// collection is byte-for-byte what a rebuild would produce,
			// minus the signing. Carry it over.
			cols[s] = prevSet.Col(s)
			reusedShards++
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sub := make([]index.Document, len(assign[s]))
			for i, g := range assign[s] {
				sub[i] = idocs[g]
			}
			scfg := c.cfg
			scfg.Generation = newGen
			scfg.FixedAvgLen = pinned
			cols[s], errs[s] = engine.BuildCollection(sub, scfg)
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			c.signer.Abort()
			return nil, fmt.Errorf("live: shard %d: %w", s, err)
		}
	}
	// A reused shard never called Sign this epoch; pruning would evict
	// its still-live signatures, so only fully-signed rebuilds prune.
	var signed, reused int
	if reusedShards > 0 {
		signed, reused = c.signer.EndKeep()
	} else {
		signed, reused = c.signer.End()
	}

	docMaps := make([][]uint32, c.k)
	for s, members := range assign {
		docMaps[s] = make([]uint32, len(members))
		for i, g := range members {
			docMaps[s][i] = uint32(g)
		}
	}
	set, err := signSet(cols, docMaps, c.cfg, c.signer, c.part, len(c.docs), newGen)
	if err != nil {
		return nil, err
	}
	c.cur.Store(set)
	c.gen.Store(newGen)
	c.shardKeys = newKeys
	c.pinnedAvgLen = pinned
	c.lastStats = UpdateStats{
		Generation:   newGen,
		Documents:    len(c.docs),
		Added:        added,
		Removed:      removed,
		Signed:       signed,
		Reused:       reused,
		ShardsReused: reusedShards,
		Rebuild:      time.Since(start),
	}
	st := c.lastStats
	return &st, nil
}

// signSet signs a set manifest over the built shards and assembles the
// serving Set (Assemble re-validates every pinned digest).
func signSet(cols []*engine.Collection, docMaps [][]uint32, cfg engine.Config, signer sig.Signer,
	part shard.Partitioner, globalN int, gen uint64) (*shard.Set, error) {
	hashSize := cfg.HashSize
	if hashSize == 0 {
		hashSize = sig.DefaultHashSize
	}
	hasher, err := sig.NewHasher(hashSize)
	if err != nil {
		return nil, err
	}
	k := len(cols)
	sm := &shard.SetManifest{
		K:               uint32(k),
		Partitioner:     part,
		GlobalN:         uint32(globalN),
		HashSize:        uint8(hashSize),
		ShardDocs:       make([]uint32, k),
		ManifestDigests: make([][]byte, k),
		DocMapDigests:   make([][]byte, k),
		Generation:      gen,
	}
	for s, col := range cols {
		m, _ := col.Manifest()
		sm.ShardDocs[s] = m.N
		sm.ManifestDigests[s] = hasher.Sum(m.Encode())
		sm.DocMapDigests[s] = hasher.Sum(shard.EncodeDocMap(docMaps[s]))
	}
	smSig, err := signer.Sign(sm.Encode())
	if err != nil {
		return nil, fmt.Errorf("live: sign set manifest: %w", err)
	}
	return shard.Assemble(cols, sm, smSig, signer.Verifier(), docMaps)
}

// meanDocLen computes the post-pipeline mean token count of the corpus —
// the W_A that index.Build would compute — without building anything.
func meanDocLen(docs []index.Document) float64 {
	var total int64
	for _, d := range docs {
		total += int64(docTokenLen(d))
	}
	if len(docs) == 0 {
		return 0
	}
	return float64(total) / float64(len(docs))
}

func meanDocLenEntries(docs []entry) float64 {
	var total int64
	for _, e := range docs {
		total += int64(docTokenLen(e.doc))
	}
	if len(docs) == 0 {
		return 0
	}
	return float64(total) / float64(len(docs))
}

func docTokenLen(d index.Document) int {
	if d.Tokens != nil {
		return len(textproc.RemoveStopwords(d.Tokens))
	}
	return len(textproc.Terms(string(d.Content)))
}

func handlesEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
