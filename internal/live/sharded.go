package live

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"authtext/internal/engine"
	"authtext/internal/index"
	"authtext/internal/shard"
	"authtext/internal/sig"
	"authtext/internal/textproc"
)

// ShardedCollection is the sharded counterpart of Collection: one live
// shard set behind an atomic pointer. Document placement is *sticky*:
// every document is hashed to a shard once, on addition, and keeps its
// slot there until compaction — removals tombstone the slot in place. An
// update therefore rebuilds only the shards an add, a removal or a
// compaction actually touched; every untouched shard's engine.Collection
// is carried over wholesale, its manifest digest staying pinned in the
// freshly signed set manifest, and the whole set swaps at once, so a
// fan-out never observes shards from two different publication states.
//
// Only the hash partitioner is supported: its placement depends on
// document content alone, which is what keeps slots stable under
// interleaved adds and removals. Round-robin placement depends on global
// position, so any removal would reshuffle most documents and degrade
// every update to a full rebuild — NewSharded rejects it outright.
type ShardedCollection struct {
	mu      sync.Mutex
	cfg     engine.Config
	signer  *CachingSigner
	part    shard.Partitioner
	k       int
	boosted bool
	// shards holds each shard's slot list (including tombstoned slots);
	// dead counts the tombstoned slots per shard.
	shards     [][]entry
	dead       []int
	nextHandle uint64
	lastStats  UpdateStats
	// pinnedAvgLen freezes one corpus-wide Okapi W_A across all shards
	// and all generations (see Collection.pinnedAvgLen). A side benefit
	// over static sharded builds: every shard scores against the same
	// W_A, so cross-shard score comparisons in the merge are exact
	// rather than per-shard approximations.
	pinnedAvgLen float64
	// publishHook runs under mu after every generation swap (see
	// Collection.SetPublishHook); snapshot persistence hangs off it.
	publishHook func(*shard.Set, *UpdateStats)

	cur atomic.Pointer[shard.Set]
	gen atomic.Uint64
}

// NewSharded builds generation 1 of a k-shard live set. part must be the
// hash partitioner (0 defaults to it); cfg.Authority (§5 boost) is
// supported exactly as in New.
func NewSharded(docs []index.Document, cfg engine.Config, k int, part shard.Partitioner) (*ShardedCollection, []uint64, error) {
	if cfg.Signer == nil {
		return nil, nil, errors.New("live: config needs a signer")
	}
	if cfg.Generation != 0 {
		return nil, nil, errors.New("live: the generation counter is owned by the live collection")
	}
	if cfg.Tombstones != nil {
		return nil, nil, errors.New("live: tombstones are managed by the live collection")
	}
	if cfg.Authority != nil && len(cfg.Authority) != len(docs) {
		return nil, nil, fmt.Errorf("live: %d authority scores for %d documents", len(cfg.Authority), len(docs))
	}
	if part == 0 {
		part = shard.HashContent
	}
	if part != shard.HashContent {
		return nil, nil, fmt.Errorf("live: the %v partitioner is not supported on live sharded sets: "+
			"its placement depends on document position, so removals would reshuffle every shard "+
			"and defeat signature reuse; use the hash partitioner", part)
	}
	if k < 1 {
		return nil, nil, fmt.Errorf("live: shard count %d", k)
	}
	if k > len(docs) {
		return nil, nil, fmt.Errorf("live: %d shards for %d documents", k, len(docs))
	}
	c := &ShardedCollection{
		cfg:     cfg,
		signer:  NewCachingSigner(cfg.Signer),
		part:    part,
		k:       k,
		boosted: cfg.Authority != nil,
		shards:  make([][]entry, k),
		dead:    make([]int, k),
	}
	c.cfg.Signer = c.signer
	c.cfg.Authority = nil
	c.pinnedAvgLen = meanDocLen(docs)
	if c.pinnedAvgLen == 0 {
		return nil, nil, errors.New("live: collection has no indexable terms")
	}
	handles := make([]uint64, len(docs))
	for i, d := range docs {
		c.nextHandle++
		handles[i] = c.nextHandle
		e := entry{handle: c.nextHandle, doc: d}
		if cfg.Authority != nil {
			e.auth = cfg.Authority[i]
		}
		s := shard.HashDoc(d, k)
		c.shards[s] = append(c.shards[s], e)
	}
	for s := range c.shards {
		if len(c.shards[s]) == 0 {
			return nil, nil, fmt.Errorf("live: hash partitioning left shard %d/%d empty; use fewer shards", s, k)
		}
	}
	if _, err := c.rebuildLocked(len(docs), 0, nil); err != nil {
		return nil, nil, err
	}
	return c, handles, nil
}

// Current returns the serving shard set of the latest generation.
func (c *ShardedCollection) Current() *shard.Set { return c.cur.Load() }

// Generation returns the latest published generation (≥ 1).
func (c *ShardedCollection) Generation() uint64 { return c.gen.Load() }

// Shards returns the shard count.
func (c *ShardedCollection) Shards() int { return c.k }

// LastStats returns the cost report of the most recent generation change.
func (c *ShardedCollection) LastStats() UpdateStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastStats
}

// SetPublishHook installs fn to run after every future set-generation
// swap, under the update lock (see Collection.SetPublishHook).
func (c *ShardedCollection) SetPublishHook(fn func(*shard.Set, *UpdateStats)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.publishHook = fn
}

// Update applies one add/remove batch as a single set-wide generation
// change; see Collection.Update for the contract.
func (c *ShardedCollection) Update(add []index.Document, remove []uint64) ([]uint64, *UpdateStats, error) {
	return c.UpdateWithAuthority(add, nil, remove)
}

// UpdateWithAuthority is Update with authority scores for the additions
// (see Collection.UpdateWithAuthority).
func (c *ShardedCollection) UpdateWithAuthority(add []index.Document, auth []float64, remove []uint64) ([]uint64, *UpdateStats, error) {
	if len(add) == 0 && len(remove) == 0 {
		return nil, nil, errors.New("live: empty update batch")
	}
	if auth != nil && len(auth) != len(add) {
		return nil, nil, fmt.Errorf("live: %d authority scores for %d added documents", len(auth), len(add))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if auth != nil && !c.boosted {
		return nil, nil, errors.New("live: authority scores on an unboosted collection")
	}
	prevShards, prevDead, prevNext := c.shards, c.dead, c.nextHandle
	next := make([][]entry, c.k)
	for s := range next {
		next[s] = append([]entry(nil), prevShards[s]...)
	}
	nextDead := append([]int(nil), prevDead...)
	dirty := make([]bool, c.k)
	if err := markRemovedSharded(next, nextDead, dirty, remove); err != nil {
		return nil, nil, err
	}
	handles := make([]uint64, len(add))
	for i, d := range add {
		c.nextHandle++
		handles[i] = c.nextHandle
		e := entry{handle: c.nextHandle, doc: d}
		if auth != nil {
			e.auth = auth[i]
		} // boosted with nil auth: scores default to 0
		s := shard.HashDoc(d, c.k)
		next[s] = append(next[s], e)
		dirty[s] = true
	}
	c.shards, c.dead = next, nextDead
	st, err := c.rebuildLocked(len(add), len(remove), dirty)
	if err != nil {
		c.shards, c.dead, c.nextHandle = prevShards, prevDead, prevNext
		return nil, nil, err
	}
	return handles, st, nil
}

// markRemovedSharded tombstones the removed handles across the shard slot
// lists, marking touched shards dirty (same error contract as
// markRemoved).
func markRemovedSharded(shards [][]entry, dead []int, dirty []bool, remove []uint64) error {
	if len(remove) == 0 {
		return nil
	}
	drop := make(map[uint64]bool, len(remove))
	for _, h := range remove {
		if drop[h] {
			return fmt.Errorf("live: handle %d removed twice in one batch", h)
		}
		drop[h] = true
	}
	for s := range shards {
		for i := range shards[s] {
			e := &shards[s][i]
			if !drop[e.handle] {
				continue
			}
			if e.dead {
				return fmt.Errorf("live: document handle %d already removed", e.handle)
			}
			e.dead = true
			dead[s]++
			dirty[s] = true
			delete(drop, e.handle)
		}
	}
	for h := range drop {
		return fmt.Errorf("live: unknown document handle %d", h)
	}
	return nil
}

// rebuildLocked builds the next set generation and swaps the served
// pointer, rebuilding only dirty shards (nil dirty: all). Shards whose
// dead slots outnumber live documents compact first (their IDs shift, so
// they re-sign in full; the rest of the set is unaffected). On error
// nothing is swapped; the caller must restore the slot lists.
func (c *ShardedCollection) rebuildLocked(added, removed int, dirty []bool) (*UpdateStats, error) {
	totalSlots, totalDead := 0, 0
	for s := range c.shards {
		totalSlots += len(c.shards[s])
		totalDead += c.dead[s]
	}
	if totalSlots == totalDead {
		return nil, errors.New("live: update would empty the collection")
	}
	start := time.Now()
	compacted := false
	for s := range c.shards {
		liveS := len(c.shards[s]) - c.dead[s]
		if liveS == 0 {
			// An all-dead shard cannot be published (its manifest would
			// commit zero live documents) and hash placement cannot move
			// survivors in. Reject the batch whole.
			return nil, fmt.Errorf("live: update would empty shard %d; remove fewer documents or use fewer shards", s)
		}
		if c.dead[s] > liveS {
			kept := make([]entry, 0, liveS)
			for _, e := range c.shards[s] {
				if !e.dead {
					kept = append(kept, e)
				}
			}
			c.shards[s] = kept
			totalSlots -= c.dead[s]
			totalDead -= c.dead[s]
			c.dead[s] = 0
			compacted = true
			if dirty != nil {
				dirty[s] = true
			}
		}
	}

	// Re-pin the shared W_A when the corpus drifted too far; that changes
	// every weight in every shard, so shard reuse is off for this build.
	pinned := c.pinnedAvgLen
	repin := false
	if trueAvg := c.meanSlotLen(); trueAvg > 0 {
		d := (trueAvg - pinned) / pinned
		if d < 0 {
			d = -d
		}
		if d > maxAvgLenDrift {
			pinned = trueAvg
			repin = true
		}
	}

	newGen := c.gen.Load() + 1
	prevSet := c.cur.Load()
	c.signer.Begin()
	cols := make([]*engine.Collection, c.k)
	errs := make([]error, c.k)
	reusedShards := 0
	var wg sync.WaitGroup
	for s := 0; s < c.k; s++ {
		if prevSet != nil && !repin && dirty != nil && !dirty[s] {
			// Untouched slot list, identical pinned W_A, identical
			// configuration: the previous generation's collection is
			// byte-for-byte what a rebuild would produce, minus the
			// signing. Carry it over, old shard manifest and all — the
			// new set manifest re-pins its digest.
			cols[s] = prevSet.Col(s)
			reusedShards++
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			slots := c.shards[s]
			sub := make([]index.Document, len(slots))
			var tombs []bool
			if c.dead[s] > 0 {
				tombs = make([]bool, len(slots))
			}
			var auth []float64
			if c.boosted {
				auth = make([]float64, len(slots))
			}
			for i, e := range slots {
				sub[i] = e.doc
				if tombs != nil && e.dead {
					tombs[i] = true
				}
				if auth != nil {
					auth[i] = e.auth
				}
			}
			scfg := c.cfg
			scfg.Generation = newGen
			scfg.FixedAvgLen = pinned
			scfg.Tombstones = tombs
			scfg.Authority = auth
			cols[s], errs[s] = engine.BuildCollection(sub, scfg)
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			c.signer.Abort()
			return nil, fmt.Errorf("live: shard %d: %w", s, err)
		}
	}
	// A reused shard never called Sign this epoch; pruning would evict
	// its still-live signatures, so only fully-signed rebuilds prune.
	var signed, reused int
	if reusedShards > 0 {
		signed, reused = c.signer.EndKeep()
	} else {
		signed, reused = c.signer.End()
	}

	// Global IDs are prefix-sum offsets over the shard slot lists,
	// regenerated every generation — they carry no signatures of their
	// own (only digests inside the freshly signed set manifest), so
	// renumbering is free.
	docMaps := make([][]uint32, c.k)
	off := 0
	for s := range c.shards {
		docMaps[s] = make([]uint32, len(c.shards[s]))
		for i := range docMaps[s] {
			docMaps[s][i] = uint32(off + i)
		}
		off += len(c.shards[s])
	}
	set, err := signSet(cols, docMaps, c.cfg, c.signer, c.part, off, newGen)
	if err != nil {
		return nil, err
	}
	c.cur.Store(set)
	c.gen.Store(newGen)
	c.pinnedAvgLen = pinned
	c.lastStats = UpdateStats{
		Generation:      newGen,
		Documents:       totalSlots - totalDead,
		Added:           added,
		Removed:         removed,
		TombstonedSlots: totalDead,
		Compacted:       compacted,
		Signed:          signed,
		Reused:          reused,
		ShardsReused:    reusedShards,
		Rebuild:         time.Since(start),
	}
	st := c.lastStats
	if c.publishHook != nil {
		c.publishHook(set, &st)
	}
	return &st, nil
}

// signSet signs a set manifest over the built shards and assembles the
// serving Set (Assemble re-validates every pinned digest).
func signSet(cols []*engine.Collection, docMaps [][]uint32, cfg engine.Config, signer sig.Signer,
	part shard.Partitioner, globalN int, gen uint64) (*shard.Set, error) {
	hashSize := cfg.HashSize
	if hashSize == 0 {
		hashSize = sig.DefaultHashSize
	}
	hasher, err := sig.NewHasher(hashSize)
	if err != nil {
		return nil, err
	}
	k := len(cols)
	sm := &shard.SetManifest{
		K:               uint32(k),
		Partitioner:     part,
		GlobalN:         uint32(globalN),
		HashSize:        uint8(hashSize),
		ShardDocs:       make([]uint32, k),
		ManifestDigests: make([][]byte, k),
		DocMapDigests:   make([][]byte, k),
		Generation:      gen,
	}
	for s, col := range cols {
		m, _ := col.Manifest()
		sm.ShardDocs[s] = m.N
		sm.ManifestDigests[s] = hasher.Sum(m.Encode())
		sm.DocMapDigests[s] = hasher.Sum(shard.EncodeDocMap(docMaps[s]))
	}
	smSig, err := signer.Sign(sm.Encode())
	if err != nil {
		return nil, fmt.Errorf("live: sign set manifest: %w", err)
	}
	return shard.Assemble(cols, sm, smSig, signer.Verifier(), docMaps)
}

// meanDocLen computes the post-pipeline mean token count of the corpus —
// the W_A that index.Build would compute — without building anything.
func meanDocLen(docs []index.Document) float64 {
	var total int64
	for _, d := range docs {
		total += int64(docTokenLen(d))
	}
	if len(docs) == 0 {
		return 0
	}
	return float64(total) / float64(len(docs))
}

// meanSlotLen is meanDocLen over every slot (tombstoned included — they
// are part of the statistics the signed structures carry).
func (c *ShardedCollection) meanSlotLen() float64 {
	var total, n int64
	for s := range c.shards {
		for _, e := range c.shards[s] {
			total += int64(docTokenLen(e.doc))
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

func docTokenLen(d index.Document) int {
	if d.Tokens != nil {
		return len(textproc.RemoveStopwords(d.Tokens))
	}
	return len(textproc.Terms(string(d.Content)))
}
