package live

import (
	"sync"

	"authtext/internal/sig"
)

// CachingSigner wraps a sig.Signer with a signature cache keyed by the
// exact message bytes. Rebuilding a live collection re-signs only the
// messages that actually changed: the engine signs canonical,
// content-addressed messages (term-root messages carry the term's name,
// id, ft and Merkle root; doc-root messages the document's id, length,
// content hash and root), so any structure untouched by an update
// reproduces its previous message byte for byte and hits the cache. The
// manifest always misses — its generation number changes every update.
//
// The cache is epoch-pruned: Begin marks the start of a rebuild, and End
// drops every entry the rebuild did not touch, so memory tracks the
// current corpus rather than the union of all generations ever built.
//
// Reusing a signature this way is sound: a cache hit requires the signed
// message — and therefore the committed content — to be identical, and
// freshness is not the per-structure signatures' job but the
// generation-scoped manifest's (docs/UPDATES.md discusses the split).
type CachingSigner struct {
	inner sig.Signer

	mu     sync.Mutex
	cache  map[string][]byte
	epoch  map[string][]byte // entries touched since Begin
	signed int               // misses (real signatures) since Begin
	reused int               // hits since Begin
}

// NewCachingSigner wraps inner. The cache starts empty, so the first
// build signs everything.
func NewCachingSigner(inner sig.Signer) *CachingSigner {
	return &CachingSigner{inner: inner, cache: make(map[string][]byte)}
}

// Begin starts a rebuild epoch and resets the reuse counters.
func (s *CachingSigner) Begin() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch = make(map[string][]byte)
	s.signed, s.reused = 0, 0
}

// End finishes the epoch: the cache shrinks to exactly the entries the
// rebuild used, and the (signed, reused) counts are returned.
func (s *CachingSigner) End() (signed, reused int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.epoch != nil {
		s.cache = s.epoch
		s.epoch = nil
	}
	return s.signed, s.reused
}

// EndKeep finishes the epoch WITHOUT pruning. Use it when the rebuild
// legitimately skipped signing for structures that are still live —
// whole shards reused from the previous generation never call Sign, so
// pruning would evict exactly the signatures the next rebuild of that
// shard needs. The cost is that entries for since-changed structures
// linger until a fully-signed rebuild prunes them.
func (s *CachingSigner) EndKeep() (signed, reused int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch = nil // Sign already wrote every epoch entry into cache too
	return s.signed, s.reused
}

// Abort abandons a failed rebuild's epoch: counters are discarded and
// nothing is pruned — the pre-Begin entries still describe the serving
// generation (signatures the failed build did create stay cached too;
// they are valid, merely possibly useless).
func (s *CachingSigner) Abort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch = nil
	s.signed, s.reused = 0, 0
}

// Sign implements sig.Signer: a cache hit returns the previous signature
// without touching the underlying key; a miss signs and caches. Safe for
// concurrent use (shard builds sign from several goroutines).
func (s *CachingSigner) Sign(msg []byte) ([]byte, error) {
	key := string(msg)
	s.mu.Lock()
	if sigBytes, ok := s.cache[key]; ok {
		s.reused++
		if s.epoch != nil {
			s.epoch[key] = sigBytes
		}
		s.mu.Unlock()
		return sigBytes, nil
	}
	s.mu.Unlock()
	// Sign outside the lock: RSA signatures are the expensive part and
	// parallel shard builds must not serialise on the cache.
	sigBytes, err := s.inner.Sign(msg)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.signed++
	s.cache[key] = sigBytes
	if s.epoch != nil {
		s.epoch[key] = sigBytes
	}
	s.mu.Unlock()
	return sigBytes, nil
}

// Verifier implements sig.Signer.
func (s *CachingSigner) Verifier() sig.Verifier { return s.inner.Verifier() }

// Size implements sig.Signer.
func (s *CachingSigner) Size() int { return s.inner.Size() }
