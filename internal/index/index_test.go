package index

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"authtext/internal/okapi"
)

// figure1Docs reconstructs a small corpus in the spirit of Fig 1 (the classic
// Zobel–Moffat "night keeper" example documents).
func figure1Docs() []Document {
	texts := []string{
		"The old night keeper keeps the keep in the night",
		"In the big old house in the big old gown",
		"The house in the town had the big old keep",
		"Where the old night keeper never did sleep",
		"The night keeper keeps the keep in the night",
		"And this is the big old sleeps dark light house keeps",
		"in x y",
		"in z w",
	}
	docs := make([]Document, len(texts))
	for i, tx := range texts {
		docs[i] = Document{Content: []byte(tx)}
	}
	return docs
}

func TestBuildBasics(t *testing.T) {
	idx, err := Build(figure1Docs(), Options{Okapi: okapi.DefaultParams(), RemoveSingletons: false})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Validate(); err != nil {
		t.Fatal(err)
	}
	if idx.N != 8 {
		t.Fatalf("N = %d, want 8", idx.N)
	}
	// "keeper" appears in docs 0, 3, 4 → ft = 3.
	tid, ok := idx.Lookup("keeper")
	if !ok {
		t.Fatal("keeper not in dictionary")
	}
	if idx.FT(tid) != 3 {
		t.Fatalf("ft(keeper) = %d, want 3", idx.FT(tid))
	}
	// Stopword "the" must not be indexed.
	if _, ok := idx.Lookup("the"); ok {
		t.Fatal("stopword indexed")
	}
}

func TestSingletonRemoval(t *testing.T) {
	idx, err := Build(figure1Docs(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// "town" appears in exactly one document → removed.
	if _, ok := idx.Lookup("town"); ok {
		t.Fatal("singleton term kept")
	}
	// "keep" appears in 3 documents → kept.
	if _, ok := idx.Lookup("keep"); !ok {
		t.Fatal("non-singleton removed")
	}
}

func TestFrequencyOrdering(t *testing.T) {
	idx, err := Build(figure1Docs(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for tid := range idx.Lists {
		l := idx.Lists[tid]
		for j := 1; j < len(l); j++ {
			if l[j-1].W < l[j].W {
				t.Fatalf("list %q out of order", idx.Name(TermID(tid)))
			}
		}
	}
}

func TestDocVectorSortedAndConsistentWithLists(t *testing.T) {
	idx, err := Build(figure1Docs(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < idx.N; d++ {
		vec := idx.DocVector(DocID(d))
		for j := 1; j < len(vec); j++ {
			if vec[j-1].Term >= vec[j].Term {
				t.Fatalf("doc %d vector unsorted", d)
			}
		}
		// Every vector entry appears in the corresponding list with the
		// same weight, and vice versa.
		for _, tf := range vec {
			found := false
			for _, p := range idx.List(tf.Term) {
				if p.Doc == DocID(d) {
					if p.W != tf.W {
						t.Fatalf("doc %d term %d: list W %v != vector W %v", d, tf.Term, p.W, tf.W)
					}
					found = true
				}
			}
			if !found {
				t.Fatalf("doc %d term %d in vector but not list", d, tf.Term)
			}
		}
	}
	total := 0
	for _, l := range idx.Lists {
		total += len(l)
	}
	vecTotal := 0
	for d := 0; d < idx.N; d++ {
		vecTotal += len(idx.DocVector(DocID(d)))
	}
	if total != vecTotal {
		t.Fatalf("posting count %d != vector entry count %d", total, vecTotal)
	}
}

func TestOkapiWeightsMatchFormula(t *testing.T) {
	idx, err := Build(figure1Docs(), Options{Okapi: okapi.DefaultParams(), RemoveSingletons: false})
	if err != nil {
		t.Fatal(err)
	}
	// doc 0 tokens after stopword removal:
	// old night keeper keeps keep night → length 6, night appears twice.
	if idx.DocLen[0] != 6 {
		t.Fatalf("docLen[0] = %d, want 6", idx.DocLen[0])
	}
	tid, _ := idx.Lookup("night")
	want := float32(idx.Okapi.DocWeight(2, 6, idx.AvgLen))
	var got float32
	for _, p := range idx.List(tid) {
		if p.Doc == 0 {
			got = p.W
		}
	}
	if got != want {
		t.Fatalf("w_{d0,night} = %v, want %v", got, want)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, DefaultOptions()); err == nil {
		t.Fatal("empty collection accepted")
	}
	// All-stopword collection: no terms.
	docs := []Document{{Content: []byte("the of to and")}, {Content: []byte("a an but")}}
	if _, err := Build(docs, DefaultOptions()); err == nil {
		t.Fatal("stopword-only collection accepted")
	}
}

func TestPreTokenizedInput(t *testing.T) {
	docs := []Document{
		{Content: []byte("c1"), Tokens: []string{"alpha", "beta", "the"}},
		{Content: []byte("c2"), Tokens: []string{"alpha", "gamma"}},
	}
	idx, err := Build(docs, Options{Okapi: okapi.DefaultParams(), RemoveSingletons: false})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := idx.Lookup("the"); ok {
		t.Fatal("stopword survived pre-tokenised path")
	}
	tid, ok := idx.Lookup("alpha")
	if !ok || idx.FT(tid) != 2 {
		t.Fatal("alpha not indexed correctly")
	}
}

func TestLookupIsLexicographic(t *testing.T) {
	idx, err := Build(figure1Docs(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(idx.Terms); i++ {
		if idx.Terms[i-1].Name >= idx.Terms[i].Name {
			t.Fatal("dictionary not lexicographically ordered")
		}
	}
}

func TestListLengths(t *testing.T) {
	idx, err := Build(figure1Docs(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lens := idx.ListLengths()
	if len(lens) != idx.M() {
		t.Fatal("ListLengths size mismatch")
	}
	for i, n := range lens {
		if n != len(idx.Lists[i]) {
			t.Fatal("ListLengths value mismatch")
		}
	}
}

// Property: for random synthetic corpora the index validates and f_t equals
// the number of documents containing each term.
func TestBuildInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nDocs := 2 + r.Intn(20)
		vocab := 3 + r.Intn(15)
		docs := make([]Document, nDocs)
		for i := range docs {
			ln := 1 + r.Intn(30)
			toks := make([]string, ln)
			for j := range toks {
				toks[j] = fmt.Sprintf("w%02d", r.Intn(vocab))
			}
			docs[i] = Document{Content: []byte(fmt.Sprint(toks)), Tokens: toks}
		}
		idx, err := Build(docs, Options{Okapi: okapi.DefaultParams(), RemoveSingletons: r.Intn(2) == 0})
		if err != nil {
			// Possible when every term is a singleton and removal is on.
			return true
		}
		if idx.Validate() != nil {
			return false
		}
		// Cross-check ft against a recount.
		for tid := range idx.Terms {
			count := 0
			for d := 0; d < idx.N; d++ {
				for _, tf := range idx.DocVector(DocID(d)) {
					if tf.Term == TermID(tid) {
						count++
					}
				}
			}
			if count != idx.FT(TermID(tid)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
