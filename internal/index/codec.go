package index

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary round-trip for snapshot persistence. The encoding is a flat,
// deterministic byte stream (all integers big-endian, float weights as
// IEEE-754 bit patterns):
//
//	u32 n | f64 avgLen | f64 k1 | f64 b | u32 m
//	m × ( u16 nameLen | name | u32 ft )
//	m × ( ft × ( u32 doc | u32 wBits ) )          inverted lists
//	n × ( u32 vecLen | vecLen × ( u32 term | u32 wBits )
//	      | u32 docLen | u32 contentLen | content )
//
// Decode is hostile-input-safe: every count is bounds-checked against the
// remaining payload before allocation, and the decoded index must pass
// Validate before it is returned.

const codecEntrySize = 8 // ⟨u32, u32⟩ pairs throughout

// AppendBinary appends the canonical binary encoding of the index to b.
func (x *Index) AppendBinary(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(x.N))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(x.AvgLen))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(x.Okapi.K1))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(x.Okapi.B))
	b = binary.BigEndian.AppendUint32(b, uint32(len(x.Terms)))
	for _, t := range x.Terms {
		b = binary.BigEndian.AppendUint16(b, uint16(len(t.Name)))
		b = append(b, t.Name...)
		b = binary.BigEndian.AppendUint32(b, t.FT)
	}
	for _, l := range x.Lists {
		for _, p := range l {
			b = binary.BigEndian.AppendUint32(b, uint32(p.Doc))
			b = binary.BigEndian.AppendUint32(b, math.Float32bits(p.W))
		}
	}
	for d := 0; d < x.N; d++ {
		vec := x.DocTerm[d]
		b = binary.BigEndian.AppendUint32(b, uint32(len(vec)))
		for _, tf := range vec {
			b = binary.BigEndian.AppendUint32(b, uint32(tf.Term))
			b = binary.BigEndian.AppendUint32(b, math.Float32bits(tf.W))
		}
		b = binary.BigEndian.AppendUint32(b, x.DocLen[d])
		b = binary.BigEndian.AppendUint32(b, uint32(len(x.Content[d])))
		b = append(b, x.Content[d]...)
	}
	return b
}

// DecodeBinary reconstructs an index from AppendBinary output. The input
// may come from an untrusted snapshot: lengths are checked before any
// allocation and the result is validated structurally.
func DecodeBinary(b []byte) (*Index, error) { return decodeBinary(b, false) }

// DecodeBinaryShared is DecodeBinary for callers whose input buffer
// outlives the index — the mapped snapshot open: document content aliases
// the input instead of being copied, so the decode cost is metadata only.
func DecodeBinaryShared(b []byte) (*Index, error) { return decodeBinary(b, true) }

func decodeBinary(b []byte, share bool) (*Index, error) {
	r := codecReader{b: b}
	n := int(r.u32())
	avgLen := r.f64()
	k1 := r.f64()
	bParam := r.f64()
	m := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("index: decode: %d documents, %d terms", n, m)
	}
	if !(avgLen > 0) || math.IsInf(avgLen, 0) {
		return nil, fmt.Errorf("index: decode: average length %v", avgLen)
	}
	// Each term costs ≥ 6 bytes (empty name is itself invalid, caught by
	// Validate-adjacent checks below); each document ≥ 12.
	if m > r.remaining()/6 || n > len(b)/12 {
		return nil, errors.New("index: decode: counts exceed payload")
	}

	x := &Index{
		N:       n,
		AvgLen:  avgLen,
		Terms:   make([]TermMeta, m),
		Lists:   make([][]Posting, m),
		DocTerm: make([][]TermFreq, n),
		DocLen:  make([]uint32, n),
		Content: make([][]byte, n),
		byName:  make(map[string]TermID, m),
	}
	x.Okapi.K1, x.Okapi.B = k1, bParam
	for t := 0; t < m; t++ {
		name := string(r.sized16())
		ft := r.u32()
		if r.err != nil {
			return nil, r.err
		}
		if name == "" {
			return nil, fmt.Errorf("index: decode: term %d has empty name", t)
		}
		if _, dup := x.byName[name]; dup {
			return nil, fmt.Errorf("index: decode: duplicate term %q", name)
		}
		if t > 0 && x.Terms[t-1].Name >= name {
			return nil, fmt.Errorf("index: decode: dictionary not sorted at %q", name)
		}
		x.Terms[t] = TermMeta{Name: name, FT: ft}
		x.byName[name] = TermID(t)
	}
	// The inverted lists dominate a snapshot open's CPU time, and their
	// lengths are already known from the dictionary: size (and
	// bounds-check) one postings arena up front, then decode each list
	// from its raw bytes in a single tight pass instead of through the
	// per-field reader.
	var total int
	for t := 0; t < m; t++ {
		ft := int(x.Terms[t].FT)
		if ft > r.remaining()/codecEntrySize-total {
			return nil, errors.New("index: decode: list length exceeds payload")
		}
		total += ft
	}
	arena := make([]Posting, total)
	for t := 0; t < m; t++ {
		ft := int(x.Terms[t].FT)
		raw := r.take(ft * codecEntrySize)
		if r.err != nil {
			return nil, r.err
		}
		l := arena[:ft:ft]
		arena = arena[ft:]
		for i := range l {
			e := raw[i*codecEntrySize:]
			l[i] = Posting{Doc: DocID(binary.BigEndian.Uint32(e)), W: math.Float32frombits(binary.BigEndian.Uint32(e[4:]))}
		}
		x.Lists[t] = l
	}
	for d := 0; d < n; d++ {
		vecLen := int(r.u32())
		if r.err != nil {
			return nil, r.err
		}
		if vecLen > r.remaining()/codecEntrySize {
			return nil, errors.New("index: decode: document vector exceeds payload")
		}
		raw := r.take(vecLen * codecEntrySize)
		vec := make([]TermFreq, vecLen)
		for i := range vec {
			e := raw[i*codecEntrySize:]
			vec[i] = TermFreq{Term: TermID(binary.BigEndian.Uint32(e)), W: math.Float32frombits(binary.BigEndian.Uint32(e[4:]))}
		}
		x.DocTerm[d] = vec
		x.DocLen[d] = r.u32()
		contentLen := int(r.u32())
		if r.err != nil {
			return nil, r.err
		}
		if contentLen > r.remaining() {
			return nil, errors.New("index: decode: document content exceeds payload")
		}
		if share {
			x.Content[d] = r.take(contentLen)
		} else {
			content := make([]byte, contentLen)
			copy(content, r.take(contentLen))
			x.Content[d] = content
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, errors.New("index: decode: trailing bytes")
	}
	for _, vec := range x.DocTerm {
		for _, tf := range vec {
			if int(tf.Term) >= m {
				return nil, fmt.Errorf("index: decode: vector references unknown term %d", tf.Term)
			}
		}
	}
	if err := x.Validate(); err != nil {
		return nil, err
	}
	return x, nil
}

type codecReader struct {
	b   []byte
	off int
	err error
}

func (r *codecReader) remaining() int { return len(r.b) - r.off }

func (r *codecReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.err = errors.New("index: decode: truncated input")
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *codecReader) u32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint32(v)
}

func (r *codecReader) f64() float64 {
	v := r.take(8)
	if v == nil {
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(v))
}

func (r *codecReader) sized16() []byte {
	v := r.take(2)
	if v == nil {
		return nil
	}
	return r.take(int(binary.BigEndian.Uint16(v)))
}
