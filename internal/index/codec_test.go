package index

import (
	"bytes"
	"reflect"
	"testing"
)

func codecTestIndex(t *testing.T) *Index {
	t.Helper()
	texts := []string{
		"the quick brown fox jumps over the lazy dog",
		"the quick red fox runs past the sleeping dog",
		"a lazy dog dreams of a quick brown fox",
		"red foxes and brown dogs share the meadow",
	}
	docs := make([]Document, len(texts))
	for i, s := range texts {
		docs[i] = Document{Content: []byte(s)}
	}
	x, err := Build(docs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestCodecRoundTrip(t *testing.T) {
	x := codecTestIndex(t)
	enc := x.AppendBinary(nil)
	got, err := DecodeBinary(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != x.N || got.M() != x.M() || got.AvgLen != x.AvgLen || got.Okapi != x.Okapi {
		t.Fatalf("header mismatch: %d/%d/%v vs %d/%d/%v", got.N, got.M(), got.AvgLen, x.N, x.M(), x.AvgLen)
	}
	if !reflect.DeepEqual(got.Terms, x.Terms) {
		t.Error("dictionary mismatch")
	}
	if !reflect.DeepEqual(got.Lists, x.Lists) {
		t.Error("inverted lists mismatch")
	}
	if !reflect.DeepEqual(got.DocTerm, x.DocTerm) {
		t.Error("document vectors mismatch")
	}
	if !reflect.DeepEqual(got.DocLen, x.DocLen) {
		t.Error("document lengths mismatch")
	}
	if !reflect.DeepEqual(got.Content, x.Content) {
		t.Error("content mismatch")
	}
	for i := range x.Terms {
		name := x.Terms[i].Name
		wantID, _ := x.Lookup(name)
		gotID, ok := got.Lookup(name)
		if !ok || gotID != wantID {
			t.Errorf("lookup %q: got (%v,%v), want %v", name, gotID, ok, wantID)
		}
	}
	// Canonical: re-encoding reproduces the bytes.
	if !bytes.Equal(got.AppendBinary(nil), enc) {
		t.Error("re-encoding differs")
	}
}

// The shared decode must produce the same index, with document content
// aliasing the input buffer instead of copying it.
func TestCodecSharedDecodeAliasesContent(t *testing.T) {
	x := codecTestIndex(t)
	enc := x.AppendBinary(nil)
	got, err := DecodeBinaryShared(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Lists, x.Lists) || !reflect.DeepEqual(got.DocTerm, x.DocTerm) {
		t.Error("shared decode disagrees with the copying decode")
	}
	if !reflect.DeepEqual(got.Content, x.Content) {
		t.Error("content mismatch")
	}
	// Content must be a window into enc, not a copy: flipping the
	// underlying byte must show through.
	d0 := got.Content[0]
	if len(d0) == 0 {
		t.Fatal("document 0 has no content")
	}
	off := bytes.Index(enc, d0)
	if off < 0 {
		t.Fatal("document 0 content not found in encoding")
	}
	enc[off] ^= 0xff
	if d0[0] == x.Content[0][0] {
		t.Error("shared decode copied content instead of aliasing it")
	}
	enc[off] ^= 0xff
}

func TestCodecRejectsHostileInput(t *testing.T) {
	x := codecTestIndex(t)
	enc := x.AppendBinary(nil)

	for _, n := range []int{0, 3, 4, 20, 35, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeBinary(enc[:n]); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
	if _, err := DecodeBinary(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	// Inflated document count must not allocate past the payload.
	bad := append([]byte(nil), enc...)
	bad[0], bad[1], bad[2], bad[3] = 0x7f, 0xff, 0xff, 0xff
	if _, err := DecodeBinary(bad); err == nil {
		t.Error("inflated document count accepted")
	}
	// Inflated term count.
	bad = append([]byte(nil), enc...)
	bad[28], bad[29], bad[30], bad[31] = 0x7f, 0xff, 0xff, 0xff
	if _, err := DecodeBinary(bad); err == nil {
		t.Error("inflated term count accepted")
	}
}
