// Package index implements the frequency-ordered inverted index of §2.1
// (Fig 1): a dictionary mapping each term t to its document count f_t, plus
// an inverted list of ⟨d, w_{d,t}⟩ impact entries sorted by non-increasing
// frequency. It also retains the per-document term vectors (the leaves of
// the document-MHTs of §3.3.1) and raw content (whose digest is committed
// in each document-MHT root).
package index

import (
	"errors"
	"fmt"
	"sort"

	"authtext/internal/okapi"
	"authtext/internal/textproc"
)

// DocID identifies a document; ids are assigned densely from 0 in input
// order.
type DocID uint32

// TermID identifies a dictionary term; ids are assigned densely from 0 in
// lexicographic term order, so the dictionary order is canonical for a
// given corpus.
type TermID uint32

// Posting is one impact entry ⟨d, w_{d,t}⟩ of an inverted list. The weight
// is stored as float32 (4 bytes, per Table 1's entry sizes); all scoring is
// performed in float64 over these rounded values, identically on the owner,
// server and client sides.
type Posting struct {
	Doc DocID
	W   float32
}

// TermFreq is one leaf of a document's term vector: ⟨t, w_{d,t}⟩.
type TermFreq struct {
	Term TermID
	W    float32
}

// TermMeta is the dictionary entry for a term.
type TermMeta struct {
	Name string
	FT   uint32 // number of documents containing the term
}

// Document is the builder input: raw content plus (optionally) a
// pre-tokenised term stream. When Tokens is nil the content is run through
// the textproc pipeline.
type Document struct {
	Content []byte
	Tokens  []string
}

// Options configures index construction.
type Options struct {
	Okapi okapi.Params
	// RemoveSingletons drops terms that appear in only one document, the
	// standard indexing step of §4.1.
	RemoveSingletons bool
	// FixedAvgLen, when non-zero, overrides the computed average document
	// length W_A in every w_{d,t} impact weight. Live collections pin it
	// at their first generation so that an update leaves the weights —
	// and therefore the signable list structures — of untouched documents
	// byte-identical (docs/UPDATES.md); scoring stays consistent because
	// owner, server and client all take W_A from the signed manifest.
	FixedAvgLen float64
}

// DefaultOptions mirrors the paper's setup.
func DefaultOptions() Options {
	return Options{Okapi: okapi.DefaultParams(), RemoveSingletons: true}
}

// Index is the in-memory inverted index. The dictionary (Terms, byName) is
// the component that §4.1 pins in memory; Lists and DocTerms model the
// on-disk structures and are serialised onto the simulated device by the
// engine.
type Index struct {
	N       int     // number of documents
	AvgLen  float64 // W_A, average document length
	Okapi   okapi.Params
	Terms   []TermMeta // indexed by TermID
	Lists   [][]Posting
	DocTerm [][]TermFreq // per-document term vector, sorted by TermID
	DocLen  []uint32     // W_d per document
	Content [][]byte     // raw document content

	byName map[string]TermID
}

// Build constructs the index from the documents.
func Build(docs []Document, opts Options) (*Index, error) {
	if len(docs) == 0 {
		return nil, errors.New("index: empty collection")
	}
	if opts.Okapi.K1 == 0 && opts.Okapi.B == 0 {
		opts.Okapi = okapi.DefaultParams()
	}

	n := len(docs)
	docTokens := make([][]string, n)
	docLen := make([]uint32, n)
	var totalLen int64
	for i, d := range docs {
		toks := d.Tokens
		if toks == nil {
			toks = textproc.Terms(string(d.Content))
		} else {
			toks = textproc.RemoveStopwords(toks)
		}
		docTokens[i] = toks
		docLen[i] = uint32(len(toks))
		totalLen += int64(len(toks))
	}
	avgLen := float64(totalLen) / float64(n)
	if avgLen == 0 {
		return nil, errors.New("index: collection has no indexable terms")
	}
	if opts.FixedAvgLen < 0 {
		return nil, fmt.Errorf("index: negative fixed average length %v", opts.FixedAvgLen)
	}
	if opts.FixedAvgLen > 0 {
		avgLen = opts.FixedAvgLen
	}

	// First pass: document frequencies.
	df := make(map[string]uint32)
	for _, toks := range docTokens {
		seen := make(map[string]struct{}, len(toks))
		for _, t := range toks {
			if _, ok := seen[t]; !ok {
				seen[t] = struct{}{}
				df[t]++
			}
		}
	}

	// Dictionary: drop singletons if requested, sort lexicographically.
	names := make([]string, 0, len(df))
	for t, c := range df {
		if opts.RemoveSingletons && c < 2 {
			continue
		}
		names = append(names, t)
	}
	if len(names) == 0 {
		return nil, errors.New("index: no terms survive dictionary construction")
	}
	sort.Strings(names)

	idx := &Index{
		N:       n,
		AvgLen:  avgLen,
		Okapi:   opts.Okapi,
		Terms:   make([]TermMeta, len(names)),
		Lists:   make([][]Posting, len(names)),
		DocTerm: make([][]TermFreq, n),
		DocLen:  docLen,
		Content: make([][]byte, n),
		byName:  make(map[string]TermID, len(names)),
	}
	for i, name := range names {
		idx.Terms[i] = TermMeta{Name: name, FT: df[name]}
		idx.byName[name] = TermID(i)
	}
	for i, d := range docs {
		idx.Content[i] = d.Content
	}

	// Second pass: per-document weights, postings, document vectors.
	for i, toks := range docTokens {
		counts := textproc.Counts(toks)
		vec := make([]TermFreq, 0, len(counts))
		for name, fdt := range counts {
			tid, ok := idx.byName[name]
			if !ok {
				continue // removed singleton
			}
			w := float32(opts.Okapi.DocWeight(fdt, float64(docLen[i]), avgLen))
			vec = append(vec, TermFreq{Term: tid, W: w})
			idx.Lists[tid] = append(idx.Lists[tid], Posting{Doc: DocID(i), W: w})
		}
		sort.Slice(vec, func(a, b int) bool { return vec[a].Term < vec[b].Term })
		idx.DocTerm[i] = vec
	}

	// Frequency-order every list: non-increasing w, ties by ascending doc
	// (a deterministic instance of "breaking ties arbitrarily").
	for tid := range idx.Lists {
		l := idx.Lists[tid]
		sort.Slice(l, func(a, b int) bool {
			if l[a].W != l[b].W {
				return l[a].W > l[b].W
			}
			return l[a].Doc < l[b].Doc
		})
		if int(idx.Terms[tid].FT) != len(l) {
			return nil, fmt.Errorf("index: term %q ft=%d but list has %d entries",
				idx.Terms[tid].Name, idx.Terms[tid].FT, len(l))
		}
	}
	return idx, nil
}

// Lookup returns the TermID for a term name.
func (x *Index) Lookup(name string) (TermID, bool) {
	id, ok := x.byName[name]
	return id, ok
}

// M returns the dictionary size (number of terms).
func (x *Index) M() int { return len(x.Terms) }

// List returns the inverted list for a term.
func (x *Index) List(t TermID) []Posting { return x.Lists[t] }

// FT returns the document count of a term.
func (x *Index) FT(t TermID) int { return int(x.Terms[t].FT) }

// Name returns the term string of a TermID.
func (x *Index) Name(t TermID) string { return x.Terms[t].Name }

// DocVector returns the ⟨term, weight⟩ leaves for a document, sorted by
// TermID.
func (x *Index) DocVector(d DocID) []TermFreq { return x.DocTerm[d] }

// ListLengths returns the lengths of all inverted lists (the raw data of
// Fig 4).
func (x *Index) ListLengths() []int {
	out := make([]int, len(x.Lists))
	for i, l := range x.Lists {
		out[i] = len(l)
	}
	return out
}

// Validate checks the structural invariants of the index. It is used by
// tests and by the owner before publication.
func (x *Index) Validate() error {
	if x.N != len(x.DocTerm) || x.N != len(x.DocLen) || x.N != len(x.Content) {
		return errors.New("index: document array length mismatch")
	}
	if len(x.Terms) != len(x.Lists) {
		return errors.New("index: dictionary/list length mismatch")
	}
	for tid, l := range x.Lists {
		if len(l) == 0 {
			return fmt.Errorf("index: term %d has empty list", tid)
		}
		if len(l) != int(x.Terms[tid].FT) {
			return fmt.Errorf("index: term %d ft mismatch", tid)
		}
		for j := range l {
			if j > 0 && l[j-1].W < l[j].W {
				return fmt.Errorf("index: list %d not frequency-ordered at %d", tid, j)
			}
			if int(l[j].Doc) >= x.N {
				return fmt.Errorf("index: list %d references unknown doc %d", tid, l[j].Doc)
			}
			if l[j].W <= 0 {
				return fmt.Errorf("index: list %d has non-positive weight at %d", tid, j)
			}
		}
	}
	for d, vec := range x.DocTerm {
		for j := range vec {
			if j > 0 && vec[j-1].Term >= vec[j].Term {
				return fmt.Errorf("index: doc %d vector not strictly term-ordered", d)
			}
		}
	}
	return nil
}
