package shard

import (
	"authtext/internal/core"
	"authtext/internal/index"
)

// MergedHit is one entry of the merged global ranking: the shard that
// produced it, the shard-local document ID, the global document index from
// the (authenticated) doc map, and the committed score.
type MergedHit struct {
	Shard  int
	Doc    index.DocID
	Global uint32
	Score  float64
}

// MergeTopK computes the global top-r from the per-shard local top-r
// lists. The result is deterministic: score descending, ties broken by
// (shard, local doc ID) ascending — so an honest server and a verifying
// client always agree byte-for-byte.
//
// Soundness: every shard's list is its true local top-r (enforced by
// per-shard VO verification), and any document of the global top-r is in
// its own shard's local top-r; the union therefore contains the global
// top-r and recomputation over it is exact.
func MergeTopK(perShard [][]core.ResultEntry, docMaps [][]uint32, r int) []MergedHit {
	var all []MergedHit
	for s, entries := range perShard {
		for _, e := range entries {
			h := MergedHit{Shard: s, Doc: e.Doc, Score: e.Score}
			if s < len(docMaps) && int(e.Doc) < len(docMaps[s]) {
				h.Global = docMaps[s][e.Doc]
			}
			all = append(all, h)
		}
	}
	sortMerged(all)
	if len(all) > r {
		all = all[:r]
	}
	return all
}

// VerifyMerge recomputes the global top-r from per-shard result lists that
// the caller has ALREADY verified individually, and checks the claimed
// merged ranking matches exactly. Any deviation — wrong length, wrong
// membership, wrong order, wrong score, wrong global ID — classifies as
// tampering (core.CodeIncomplete for a wrong result set size,
// core.CodeBadOrdering otherwise).
func VerifyMerge(perShard [][]core.ResultEntry, docMaps [][]uint32, r int, merged []MergedHit) error {
	want := MergeTopK(perShard, docMaps, r)
	if len(merged) != len(want) {
		return vErrf(core.CodeIncomplete, "merged ranking has %d entries, recomputation yields %d", len(merged), len(want))
	}
	for i := range want {
		g, w := merged[i], want[i]
		if g.Shard != w.Shard || g.Doc != w.Doc || g.Score != w.Score || g.Global != w.Global {
			return vErrf(core.CodeBadOrdering,
				"merged entry %d is shard %d doc %d (global %d, score %g), recomputation yields shard %d doc %d (global %d, score %g)",
				i, g.Shard, g.Doc, g.Global, g.Score, w.Shard, w.Doc, w.Global, w.Score)
		}
	}
	return nil
}
