package shard

import (
	"fmt"
	"testing"

	"authtext/internal/core"
	"authtext/internal/engine"
	"authtext/internal/index"
	"authtext/internal/sig"
)

func testDocs(n int) []index.Document {
	subjects := []string{
		"merkle tree authenticates the root digest of messages",
		"threshold algorithm pops the entry with the highest score",
		"inverted index stores impact entries sorted by frequency",
		"verification object carries digests to recompute the root",
		"sorted access maintains bounds for candidate documents",
		"signatures verify with the published public key",
		"audit trail archives verification objects for decisions",
		"random access fetches term frequencies from the record",
	}
	docs := make([]index.Document, n)
	for i := range docs {
		docs[i] = index.Document{Content: []byte(fmt.Sprintf("document %d: %s", i, subjects[i%len(subjects)]))}
	}
	return docs
}

func buildSet(t *testing.T, n, k int, part Partitioner) *Set {
	t.Helper()
	signer, err := sig.NewHMACSigner([]byte("shard-test"), 128)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.DefaultConfig(signer)
	// Tiny per-shard collections: keep singleton terms so even a one-document
	// shard still has a dictionary.
	cfg.RemoveSingletons = false
	set, err := Build(testDocs(n), Config{Engine: cfg, Shards: k, Partitioner: part})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestAssignRoundRobinBalanced(t *testing.T) {
	docs := testDocs(10)
	assign, err := RoundRobin.Assign(docs, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for s, ids := range assign {
		if len(ids) < 3 || len(ids) > 4 {
			t.Errorf("shard %d has %d documents", s, len(ids))
		}
		for _, g := range ids {
			if seen[g] {
				t.Errorf("document %d assigned twice", g)
			}
			seen[g] = true
		}
	}
	if len(seen) != len(docs) {
		t.Errorf("%d documents assigned, want %d", len(seen), len(docs))
	}
}

func TestAssignHashCoversAllDocs(t *testing.T) {
	docs := testDocs(64)
	assign, err := HashContent.Assign(docs, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ids := range assign {
		total += len(ids)
	}
	if total != len(docs) {
		t.Fatalf("assigned %d documents, want %d", total, len(docs))
	}
	// Stability: the same corpus assigns identically.
	again, err := HashContent.Assign(docs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for s := range assign {
		if len(assign[s]) != len(again[s]) {
			t.Fatalf("hash assignment not stable")
		}
	}
}

func TestAssignErrors(t *testing.T) {
	docs := testDocs(3)
	if _, err := RoundRobin.Assign(docs, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := RoundRobin.Assign(docs, 4); err == nil {
		t.Error("more shards than documents accepted")
	}
	if _, err := Partitioner(9).Assign(docs, 2); err == nil {
		t.Error("unknown partitioner accepted")
	}
}

func TestSetManifestRoundTrip(t *testing.T) {
	set := buildSet(t, 12, 3, RoundRobin)
	sm, smSig := set.Manifest()
	enc := sm.Encode()
	dec, err := DecodeSetManifest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if string(dec.Encode()) != string(enc) {
		t.Fatal("set manifest encode/decode not canonical")
	}
	if err := VerifySetManifest(dec, smSig, set.Verifier()); err != nil {
		t.Fatalf("signature over decoded manifest: %v", err)
	}
	// Any bit flip must break either decoding or the signature.
	for _, i := range []int{0, len(enc) / 2, len(enc) - 1} {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x01
		dm, err := DecodeSetManifest(bad)
		if err != nil {
			continue
		}
		if err := VerifySetManifest(dm, smSig, set.Verifier()); err == nil {
			t.Errorf("flipping byte %d went undetected", i)
		}
	}
}

func TestDocMapRoundTrip(t *testing.T) {
	m := []uint32{3, 1, 4, 1, 5, 9}
	dec, err := DecodeDocMap(EncodeDocMap(m))
	if err != nil {
		t.Fatal(err)
	}
	for i := range m {
		if dec[i] != m[i] {
			t.Fatalf("entry %d: %d != %d", i, dec[i], m[i])
		}
	}
	if _, err := DecodeDocMap([]byte{0, 0}); err == nil {
		t.Error("truncated doc map accepted")
	}
	if _, err := DecodeDocMap(append(EncodeDocMap(m), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestSearchVerifyAcrossVariants(t *testing.T) {
	for _, part := range []Partitioner{RoundRobin, HashContent} {
		set := buildSet(t, 16, 4, part)
		for _, algo := range []core.Algo{core.AlgoTRA, core.AlgoTNRA} {
			for _, scheme := range []core.Scheme{core.SchemeMHT, core.SchemeCMHT} {
				name := fmt.Sprintf("%s/%s-%s", part, algo, scheme)
				res, err := set.Search([]string{"merkle", "root", "digest"}, 5, algo, scheme)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if len(res.Merged) == 0 {
					t.Fatalf("%s: empty merge", name)
				}
				if err := set.VerifyResult([]string{"merkle", "root", "digest"}, 5, res); err != nil {
					t.Errorf("%s: honest result rejected: %v", name, err)
				}
			}
		}
	}
}

func TestGlobalIDsMatchPartition(t *testing.T) {
	set := buildSet(t, 10, 3, RoundRobin)
	for s := 0; s < set.K(); s++ {
		for local, global := range set.DocMap(s) {
			// Round-robin: global g goes to shard g%k at local position g/k.
			if int(global)%set.K() != s || int(global)/set.K() != local {
				t.Errorf("shard %d local %d maps to global %d", s, local, global)
			}
		}
	}
	if set.Documents() != 10 {
		t.Errorf("Documents() = %d", set.Documents())
	}
}

func TestVerifyMergeDetectsTampering(t *testing.T) {
	set := buildSet(t, 16, 4, RoundRobin)
	tokens := []string{"merkle", "entries", "root"}
	res, err := set.Search(tokens, 4, core.AlgoTNRA, core.SchemeCMHT)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Merged) < 2 {
		t.Skipf("merge too small (%d) to tamper meaningfully", len(res.Merged))
	}

	perShard := make([][]core.ResultEntry, set.K())
	for i := range res.PerShard {
		perShard[i] = res.PerShard[i].Result.Entries
	}
	docMaps := make([][]uint32, set.K())
	for i := range docMaps {
		docMaps[i] = set.DocMap(i)
	}

	reordered := append([]MergedHit(nil), res.Merged...)
	reordered[0], reordered[1] = reordered[1], reordered[0]
	if err := VerifyMerge(perShard, docMaps, 4, reordered); core.CodeOf(err) != core.CodeBadOrdering {
		t.Errorf("reordered merge: err=%v", err)
	}

	truncated := res.Merged[:len(res.Merged)-1]
	if err := VerifyMerge(perShard, docMaps, 4, truncated); core.CodeOf(err) != core.CodeIncomplete {
		t.Errorf("truncated merge: err=%v", err)
	}

	inflated := append([]MergedHit(nil), res.Merged...)
	inflated[0].Score += 1 // additive so a zero score is still a change
	if err := VerifyMerge(perShard, docMaps, 4, inflated); core.CodeOf(err) != core.CodeBadOrdering {
		t.Errorf("inflated score: err=%v", err)
	}

	wrongGlobal := append([]MergedHit(nil), res.Merged...)
	wrongGlobal[0].Global++
	if err := VerifyMerge(perShard, docMaps, 4, wrongGlobal); core.CodeOf(err) != core.CodeBadOrdering {
		t.Errorf("wrong global id: err=%v", err)
	}
}

func TestAssembleRejectsMixedShards(t *testing.T) {
	set := buildSet(t, 12, 3, RoundRobin)
	// A same-owner set over a DIFFERENT corpus: its shard manifests are
	// validly signed, but they are not the shards the set manifest pins.
	other := buildSet(t, 15, 3, RoundRobin)
	sm, smSig := set.Manifest()
	cols := []*engine.Collection{set.Col(0), set.Col(1), set.Col(2)}
	maps := [][]uint32{set.DocMap(0), set.DocMap(1), set.DocMap(2)}

	if _, err := Assemble(cols, sm, smSig, set.Verifier(), maps); err != nil {
		t.Fatalf("honest assemble rejected: %v", err)
	}

	swapped := []*engine.Collection{set.Col(0), other.Col(1), set.Col(2)}
	if _, err := Assemble(swapped, sm, smSig, set.Verifier(), maps); err == nil {
		t.Error("substituted shard accepted")
	}

	badMaps := [][]uint32{set.DocMap(0), set.DocMap(2), set.DocMap(1)}
	if _, err := Assemble(cols, sm, smSig, set.Verifier(), badMaps); err == nil {
		t.Error("swapped doc maps accepted")
	}

	short := []*engine.Collection{set.Col(0), set.Col(1)}
	if _, err := Assemble(short, sm, smSig, set.Verifier(), maps[:2]); err == nil {
		t.Error("missing shard accepted")
	}
}

func TestBuildSplitsAuthority(t *testing.T) {
	signer, err := sig.NewHMACSigner([]byte("shard-boost"), 128)
	if err != nil {
		t.Fatal(err)
	}
	docs := testDocs(9)
	cfg := engine.DefaultConfig(signer)
	cfg.Authority = make([]float64, len(docs))
	for i := range cfg.Authority {
		cfg.Authority[i] = float64(i) / float64(len(docs))
	}
	cfg.Beta = 1.5
	set, err := Build(docs, Config{Engine: cfg, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := set.Search([]string{"merkle", "digest"}, 3, core.AlgoTNRA, core.SchemeCMHT)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.VerifyResult([]string{"merkle", "digest"}, 3, res); err != nil {
		t.Errorf("boosted sharded result rejected: %v", err)
	}
}
