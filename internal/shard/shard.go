// Package shard splits a document collection into independently
// authenticated sub-collections ("shards"), builds and signs each one with
// the existing engine, and fans queries out to all shards in parallel.
//
// The trust model is unchanged from the single-collection scheme: the
// owner signs every shard's manifest with the same key, plus one extra
// signature over the *shard-set manifest* — a small descriptor that pins
// the shard count, the partitioning policy, and a digest of every shard's
// manifest and local→global document-ID map. A client that verifies the
// set manifest therefore knows exactly which shards must answer; a server
// cannot drop a shard, substitute a differently built one (even one the
// same owner signed for another deployment), or lie about the global IDs.
//
// The global top-r is defined over the scores the shards commit to: each
// shard answers the query for its local top-r with a verification object,
// and the merged ranking is the deterministic top-r of the union (score
// descending, ties broken by shard then document ID). Because every
// shard's local top-r is individually authenticated and the union of
// local top-r sets always contains the global top-r, a client can check
// the merge by recomputation alone — no additional cryptography. Okapi
// scores use per-shard statistics (n_i, avgLen_i); with the hash and
// round-robin partitioners these converge to the global statistics as the
// corpus grows (docs/SHARDING.md discusses the trade-off).
package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"authtext/internal/core"
	"authtext/internal/engine"
	"authtext/internal/index"
	"authtext/internal/sig"
)

// Partitioner selects the document→shard assignment policy.
type Partitioner uint8

const (
	// RoundRobin assigns document i to shard i mod k: perfectly balanced
	// shard sizes and a trivially invertible global-ID mapping.
	RoundRobin Partitioner = 1
	// HashContent assigns documents by FNV-1a hash of their content (or
	// token stream): placement is stable under corpus reordering, at the
	// price of slightly uneven shard sizes.
	HashContent Partitioner = 2
)

// String implements fmt.Stringer.
func (p Partitioner) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case HashContent:
		return "hash"
	}
	return fmt.Sprintf("Partitioner(%d)", uint8(p))
}

// ParsePartitioner resolves a command-line name ("" defaults to round-robin).
func ParsePartitioner(s string) (Partitioner, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "round-robin", "roundrobin", "rr":
		return RoundRobin, nil
	case "hash", "content-hash":
		return HashContent, nil
	}
	return 0, fmt.Errorf("shard: unknown partitioner %q (want round-robin or hash)", s)
}

func (p Partitioner) valid() bool { return p == RoundRobin || p == HashContent }

// Assign distributes len(docs) documents over k shards, returning the
// global document indices of each shard in ascending order. Every shard is
// guaranteed non-empty; if the hash partitioner leaves a shard empty (tiny
// corpora), Assign reports an error suggesting fewer shards.
func (p Partitioner) Assign(docs []index.Document, k int) ([][]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("shard: shard count %d", k)
	}
	if k > len(docs) {
		return nil, fmt.Errorf("shard: %d shards for %d documents", k, len(docs))
	}
	out := make([][]int, k)
	switch p {
	case RoundRobin:
		for i := range docs {
			out[i%k] = append(out[i%k], i)
		}
	case HashContent:
		for i, d := range docs {
			out[HashDoc(d, k)] = append(out[HashDoc(d, k)], i)
		}
		for s := range out {
			if len(out[s]) == 0 {
				return nil, fmt.Errorf("shard: hash partitioning left shard %d/%d empty; use fewer shards or round-robin", s, k)
			}
		}
	default:
		return nil, fmt.Errorf("shard: unknown partitioner %d", p)
	}
	return out, nil
}

// HashDoc returns the shard HashContent assigns d to: the per-document
// primitive behind Assign, exposed so live sharded sets can place
// additions without re-partitioning the whole corpus. Placement depends
// only on the document itself, never on its position — which is exactly
// what makes hash placement stable under interleaved adds and removals.
func HashDoc(d index.Document, k int) int {
	h := fnv.New64a()
	if len(d.Content) > 0 {
		h.Write(d.Content)
	} else {
		for _, tok := range d.Tokens {
			h.Write([]byte(tok))
			h.Write([]byte{0})
		}
	}
	return int(h.Sum64() % uint64(k))
}

// Config controls Build.
type Config struct {
	// Engine is the per-shard build configuration; its Signer signs every
	// shard and the set manifest. Engine.Authority, when set, is indexed by
	// global document position and split across shards automatically.
	Engine engine.Config
	// Shards is the shard count k ≥ 1.
	Shards int
	// Partitioner defaults to RoundRobin.
	Partitioner Partitioner
}

// Set is a built shard set: k serving collections plus the signed set
// manifest binding them together.
type Set struct {
	cols        []*engine.Collection
	manifest    *SetManifest
	manifestSig []byte
	verifier    sig.Verifier
	docMaps     [][]uint32 // [shard][local doc] = global doc index
}

// Build partitions the documents, builds every shard concurrently with the
// shared signer, and signs the set manifest. Shard builds run in parallel
// — the first concurrency-scaling path of the codebase — so owner-side
// build time drops with core count as well as with per-shard input size.
func Build(docs []index.Document, cfg Config) (*Set, error) {
	if cfg.Engine.Signer == nil {
		return nil, errors.New("shard: config needs a signer")
	}
	part := cfg.Partitioner
	if part == 0 {
		part = RoundRobin
	}
	if !part.valid() {
		return nil, fmt.Errorf("shard: unknown partitioner %d", part)
	}
	if cfg.Engine.Authority != nil && len(cfg.Engine.Authority) != len(docs) {
		return nil, fmt.Errorf("shard: %d authority scores for %d documents", len(cfg.Engine.Authority), len(docs))
	}
	assign, err := part.Assign(docs, cfg.Shards)
	if err != nil {
		return nil, err
	}
	k := len(assign)

	cols := make([]*engine.Collection, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for s := 0; s < k; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sub := make([]index.Document, len(assign[s]))
			scfg := cfg.Engine
			if cfg.Engine.Authority != nil {
				scfg.Authority = make([]float64, len(assign[s]))
			}
			for i, g := range assign[s] {
				sub[i] = docs[g]
				if scfg.Authority != nil {
					scfg.Authority[i] = cfg.Engine.Authority[g]
				}
			}
			cols[s], errs[s] = engine.BuildCollection(sub, scfg)
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
	}

	docMaps := make([][]uint32, k)
	for s := range assign {
		docMaps[s] = make([]uint32, len(assign[s]))
		for i, g := range assign[s] {
			docMaps[s][i] = uint32(g)
		}
	}

	hashSize := cfg.Engine.HashSize
	if hashSize == 0 {
		hashSize = sig.DefaultHashSize
	}
	hasher, err := sig.NewHasher(hashSize)
	if err != nil {
		return nil, err
	}
	sm := &SetManifest{
		K:               uint32(k),
		Partitioner:     part,
		GlobalN:         uint32(len(docs)),
		HashSize:        uint8(hashSize),
		ShardDocs:       make([]uint32, k),
		ManifestDigests: make([][]byte, k),
		DocMapDigests:   make([][]byte, k),
	}
	for s, col := range cols {
		m, _ := col.Manifest()
		sm.ShardDocs[s] = m.N
		sm.ManifestDigests[s] = hasher.Sum(m.Encode())
		sm.DocMapDigests[s] = hasher.Sum(EncodeDocMap(docMaps[s]))
	}
	smSig, err := cfg.Engine.Signer.Sign(sm.Encode())
	if err != nil {
		return nil, fmt.Errorf("shard: sign set manifest: %w", err)
	}
	return &Set{
		cols:        cols,
		manifest:    sm,
		manifestSig: smSig,
		verifier:    cfg.Engine.Signer.Verifier(),
		docMaps:     docMaps,
	}, nil
}

// Assemble rebuilds a Set from already-restored shard collections plus the
// set manifest — the snapshot warm-start path. Each shard's manifest and
// the supplied docMaps are cross-checked against the (signed) set manifest
// digests, so a mixed-up or substituted shard file fails here rather than
// at first query.
func Assemble(cols []*engine.Collection, sm *SetManifest, smSig []byte, verifier sig.Verifier, docMaps [][]uint32) (*Set, error) {
	if err := sm.Validate(); err != nil {
		return nil, err
	}
	if verifier == nil {
		return nil, errors.New("shard: assemble: nil verifier")
	}
	if len(cols) != int(sm.K) || len(docMaps) != int(sm.K) {
		return nil, fmt.Errorf("shard: assemble: %d collections and %d doc maps for %d shards", len(cols), len(docMaps), sm.K)
	}
	hasher, err := sig.NewHasher(int(sm.HashSize))
	if err != nil {
		return nil, err
	}
	for s, col := range cols {
		m, _ := col.Manifest()
		if m.N != sm.ShardDocs[s] {
			return nil, fmt.Errorf("shard: assemble: shard %d has %d documents, set manifest says %d", s, m.N, sm.ShardDocs[s])
		}
		if string(hasher.Sum(m.Encode())) != string(sm.ManifestDigests[s]) {
			return nil, fmt.Errorf("shard: assemble: shard %d manifest does not match the set manifest", s)
		}
		if len(docMaps[s]) != int(sm.ShardDocs[s]) {
			return nil, fmt.Errorf("shard: assemble: shard %d doc map has %d entries for %d documents", s, len(docMaps[s]), sm.ShardDocs[s])
		}
		if string(hasher.Sum(EncodeDocMap(docMaps[s]))) != string(sm.DocMapDigests[s]) {
			return nil, fmt.Errorf("shard: assemble: shard %d doc map does not match the set manifest", s)
		}
	}
	return &Set{cols: cols, manifest: sm, manifestSig: smSig, verifier: verifier, docMaps: docMaps}, nil
}

// K returns the shard count.
func (s *Set) K() int { return len(s.cols) }

// Col returns shard i's collection.
func (s *Set) Col(i int) *engine.Collection { return s.cols[i] }

// Manifest returns the signed set manifest and its signature.
func (s *Set) Manifest() (*SetManifest, []byte) { return s.manifest, s.manifestSig }

// Verifier returns the owner's public verification key.
func (s *Set) Verifier() sig.Verifier { return s.verifier }

// DocMap returns shard i's local→global document-ID map (do not mutate).
func (s *Set) DocMap(i int) []uint32 { return s.docMaps[i] }

// GlobalID translates a shard-local document ID to its global index.
func (s *Set) GlobalID(shardIdx int, d index.DocID) uint32 { return s.docMaps[shardIdx][d] }

// Documents returns the global document slot count (including tombstoned
// slots of a live set).
func (s *Set) Documents() int { return int(s.manifest.GlobalN) }

// LiveDocuments returns the number of live documents across all shards:
// equal to Documents unless shards carry tombstones.
func (s *Set) LiveDocuments() int {
	n := 0
	for _, c := range s.cols {
		n += c.LiveDocs()
	}
	return n
}

// Terms returns the summed dictionary size across shards (terms occurring
// in several shards count once per shard).
func (s *Set) Terms() int {
	t := 0
	for _, c := range s.cols {
		t += c.Index().M()
	}
	return t
}

// ShardResult is one shard's contribution to a fanned-out query.
type ShardResult struct {
	Result *engine.Result
	VO     []byte
	Stats  *engine.QueryStats
}

// SetResult is the answer to a fanned-out query: every shard's
// individually authenticated local top-r plus the merged global ranking.
type SetResult struct {
	PerShard []ShardResult
	Merged   []MergedHit
	// Wall is the fan-out wall time (slowest shard, since shards run in
	// parallel).
	Wall time.Duration
	// MergeWall is the slice of Wall spent in MergeTopK after the fan-out
	// barrier.
	MergeWall time.Duration
}

// Search fans the query out to every shard concurrently and merges the
// local top-r lists into the global top-r. Shard collections are
// immutable and lock-free on the read path, so k shards give k-way
// parallelism for a single query, and concurrent Search calls additionally
// overlap inside each shard (intra-shard parallelism) — fan-outs never
// queue behind one another.
func (s *Set) Search(tokens []string, r int, algo core.Algo, scheme core.Scheme) (*SetResult, error) {
	if r < 1 {
		return nil, fmt.Errorf("shard: result size %d", r)
	}
	start := time.Now()
	k := len(s.cols)
	out := &SetResult{PerShard: make([]ShardResult, k)}
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, vo, st, err := s.cols[i].Search(tokens, r, algo, scheme)
			if err != nil {
				errs[i] = err
				return
			}
			out.PerShard[i] = ShardResult{Result: res, VO: vo, Stats: st}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	perShard := make([][]core.ResultEntry, k)
	for i := range out.PerShard {
		perShard[i] = out.PerShard[i].Result.Entries
	}
	mergeStart := time.Now()
	out.Merged = MergeTopK(perShard, s.docMaps, r)
	out.MergeWall = time.Since(mergeStart)
	out.Wall = time.Since(start)
	return out, nil
}

// VerifyResult runs the full client-side check against this set's own
// manifests: every shard's VO, then the merge. Experiments and tests use
// it the way engine.Collection.VerifyResult is used for one collection.
func (s *Set) VerifyResult(tokens []string, r int, res *SetResult) error {
	if len(res.PerShard) != len(s.cols) {
		return vErrf(core.CodeIncomplete, "%d shard responses for %d shards", len(res.PerShard), len(s.cols))
	}
	perShard := make([][]core.ResultEntry, len(s.cols))
	for i, col := range s.cols {
		if _, err := col.VerifyResult(tokens, r, res.PerShard[i].Result, res.PerShard[i].VO); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		perShard[i] = res.PerShard[i].Result.Entries
	}
	return VerifyMerge(perShard, s.docMaps, r, res.Merged)
}

// sortEntries orders merged candidates deterministically: score
// descending, ties broken by shard then local document ID.
func sortMerged(hits []MergedHit) {
	sort.SliceStable(hits, func(a, b int) bool {
		if hits[a].Score != hits[b].Score {
			return hits[a].Score > hits[b].Score
		}
		if hits[a].Shard != hits[b].Shard {
			return hits[a].Shard < hits[b].Shard
		}
		return hits[a].Doc < hits[b].Doc
	})
}

func vErrf(code core.VerifyCode, format string, args ...interface{}) error {
	return &core.VerifyError{Code: code, Detail: fmt.Sprintf(format, args...)}
}
