package shard

import (
	"encoding/binary"
	"errors"
	"fmt"

	"authtext/internal/sig"
)

// SetManifest is the owner-published descriptor of a shard set: how many
// shards exist, how documents were assigned, and a digest pinning every
// shard's (individually signed) manifest and local→global document map.
// The owner signs the canonical encoding once; a client that verifies the
// signature knows the exact shard population, so a server cannot drop,
// duplicate, or substitute shards without detection.
type SetManifest struct {
	// K is the shard count.
	K uint32
	// Partitioner records the assignment policy (informational for
	// clients; the binding facts are the digests below).
	Partitioner Partitioner
	// GlobalN is the total document count across shards.
	GlobalN uint32
	// HashSize is the digest size used for the pinned digests (matches the
	// shards' manifest HashSize).
	HashSize uint8
	// ShardDocs is the per-shard document count n_i (Σ n_i = GlobalN).
	ShardDocs []uint32
	// ManifestDigests[i] = h(canonical encoding of shard i's manifest).
	ManifestDigests [][]byte
	// DocMapDigests[i] = h(EncodeDocMap(local→global map of shard i)).
	DocMapDigests [][]byte
	// Generation numbers the publication state of a live shard set
	// (docs/UPDATES.md): 0 for static sets, ≥ 1 for live ones. Signed
	// like every other field; shards rebuilt at set generation g carry
	// g in their own manifests, shards reused from an earlier generation
	// keep theirs — the binding facts stay the per-shard digests above.
	Generation uint64
}

// setManifestDomain domain-separates the signature from every other signed
// message in the system.
const setManifestDomain = "authtext/shardset/v1"

// Encode produces the canonical signed encoding of the set manifest.
func (m *SetManifest) Encode() []byte {
	b := make([]byte, 0, len(setManifestDomain)+16+int(m.K)*(4+2*int(m.HashSize)))
	b = append(b, setManifestDomain...)
	b = binary.BigEndian.AppendUint32(b, m.K)
	b = append(b, uint8(m.Partitioner))
	b = binary.BigEndian.AppendUint32(b, m.GlobalN)
	b = append(b, m.HashSize)
	for i := 0; i < int(m.K); i++ {
		b = binary.BigEndian.AppendUint32(b, m.ShardDocs[i])
		b = append(b, m.ManifestDigests[i]...)
		b = append(b, m.DocMapDigests[i]...)
	}
	// Trailing extension, mirroring core.Manifest: static sets
	// (generation 0) keep the original encoding byte for byte.
	if m.Generation != 0 {
		b = binary.BigEndian.AppendUint64(b, m.Generation)
	}
	return b
}

// Validate reports the first structural problem (nil for a well-formed
// manifest).
func (m *SetManifest) Validate() error {
	if m == nil {
		return errors.New("shard: nil set manifest")
	}
	if m.K < 1 {
		return errors.New("shard: set manifest has zero shards")
	}
	if !m.Partitioner.valid() {
		return fmt.Errorf("shard: set manifest has unknown partitioner %d", m.Partitioner)
	}
	if m.HashSize < 8 || m.HashSize > 32 {
		return fmt.Errorf("shard: set manifest hash size %d outside [8,32]", m.HashSize)
	}
	if len(m.ShardDocs) != int(m.K) || len(m.ManifestDigests) != int(m.K) || len(m.DocMapDigests) != int(m.K) {
		return errors.New("shard: set manifest table sizes disagree with shard count")
	}
	var total uint64
	for i := 0; i < int(m.K); i++ {
		if m.ShardDocs[i] == 0 {
			return fmt.Errorf("shard: set manifest shard %d is empty", i)
		}
		total += uint64(m.ShardDocs[i])
		if len(m.ManifestDigests[i]) != int(m.HashSize) || len(m.DocMapDigests[i]) != int(m.HashSize) {
			return fmt.Errorf("shard: set manifest digest %d has the wrong size", i)
		}
	}
	if total != uint64(m.GlobalN) {
		return fmt.Errorf("shard: set manifest shard sizes sum to %d, global count is %d", total, m.GlobalN)
	}
	return nil
}

// DecodeSetManifest parses a canonical encoding. The input is untrusted:
// counts are validated against the available bytes before allocation.
func DecodeSetManifest(b []byte) (*SetManifest, error) {
	if len(b) < len(setManifestDomain) || string(b[:len(setManifestDomain)]) != setManifestDomain {
		return nil, errors.New("shard: not a set manifest")
	}
	rest := b[len(setManifestDomain):]
	if len(rest) < 10 {
		return nil, errors.New("shard: truncated set manifest")
	}
	m := &SetManifest{
		K:           binary.BigEndian.Uint32(rest),
		Partitioner: Partitioner(rest[4]),
		GlobalN:     binary.BigEndian.Uint32(rest[5:]),
		HashSize:    rest[9],
	}
	rest = rest[10:]
	perShard := 4 + 2*int(m.HashSize)
	if m.K < 1 || int(m.K) > len(rest)/perShard {
		return nil, errors.New("shard: set manifest shard count exceeds payload")
	}
	k := int(m.K)
	m.ShardDocs = make([]uint32, k)
	m.ManifestDigests = make([][]byte, k)
	m.DocMapDigests = make([][]byte, k)
	for i := 0; i < k; i++ {
		m.ShardDocs[i] = binary.BigEndian.Uint32(rest)
		rest = rest[4:]
		m.ManifestDigests[i] = append([]byte(nil), rest[:m.HashSize]...)
		rest = rest[m.HashSize:]
		m.DocMapDigests[i] = append([]byte(nil), rest[:m.HashSize]...)
		rest = rest[m.HashSize:]
	}
	if len(rest) == 8 {
		m.Generation = binary.BigEndian.Uint64(rest)
		if m.Generation == 0 {
			return nil, errors.New("shard: non-canonical zero generation field")
		}
		rest = rest[8:]
	}
	if len(rest) != 0 {
		return nil, errors.New("shard: trailing bytes in set manifest")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// VerifySetManifest checks the owner's signature over the set manifest.
func VerifySetManifest(m *SetManifest, sigBytes []byte, v sig.Verifier) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if err := v.Verify(m.Encode(), sigBytes); err != nil {
		return fmt.Errorf("shard: set manifest signature: %w", err)
	}
	return nil
}

// EncodeDocMap canonically encodes a local→global document-ID map (the
// digest of this encoding is pinned in the set manifest).
func EncodeDocMap(m []uint32) []byte {
	b := make([]byte, 0, 4+4*len(m))
	b = binary.BigEndian.AppendUint32(b, uint32(len(m)))
	for _, g := range m {
		b = binary.BigEndian.AppendUint32(b, g)
	}
	return b
}

// DecodeDocMap parses an EncodeDocMap encoding.
func DecodeDocMap(b []byte) ([]uint32, error) {
	if len(b) < 4 {
		return nil, errors.New("shard: truncated doc map")
	}
	n := int(binary.BigEndian.Uint32(b))
	if len(b) != 4+4*n {
		return nil, errors.New("shard: doc map length disagrees with its count")
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.BigEndian.Uint32(b[4+4*i:])
	}
	return out, nil
}
