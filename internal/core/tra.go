package core

import (
	"sort"

	"authtext/internal/index"
)

// TraceEvent reports one iteration of a threshold algorithm, mirroring the
// trace tables of Figs 6 and 11. Thres is the threshold *before* the pop.
type TraceEvent struct {
	Iter       int
	Thres      float64
	Term       int // query-term position popped from; -1 on termination
	Entry      index.Posting
	Terminated bool
}

// TRAOutcome is everything the engine needs to assemble a TRA verification
// object: the result, the per-list revealed prefixes, and the set of
// encountered documents whose frequency vectors must be proven.
type TRAOutcome struct {
	// Result holds the top-r entries in canonical order, with canonical
	// scores.
	Result []ResultEntry
	// KScore[i] is the revealed prefix length of term i's list: every popped
	// entry plus the cut-off head entry (the entry whose term score
	// constitutes the threshold at termination). KScore[i] == Len when the
	// list was exhausted.
	KScore []int
	// Exhausted[i] reports whether list i was fully consumed.
	Exhausted []bool
	// Encountered lists, in ascending order, every document at a position
	// < KScore[i] in any list: the popped documents plus the cut-off heads.
	// All of them need document-MHT proofs in the VO (§3.3).
	Encountered []index.DocID
	// Scores maps every *popped* document to its canonical score. Cut-off
	// heads that were never popped are present in Encountered but absent
	// here (their scores are bounded by the threshold).
	Scores map[index.DocID]float64
	// Thres is the canonical termination threshold Σ w_{Q,ti}·f(head_i).
	Thres float64
	// Iterations counts pop operations.
	Iterations int
	// RandomAccesses counts document-vector fetches during processing.
	RandomAccesses int
}

// TRA runs Threshold with Random Access (Fig 5) for the top r documents.
// Unlike the classic TA of Fagin et al., which advances all lists in
// lockstep, this adaptation always pops the entry with the globally highest
// term score c_i = w_{Q,ti}·L_i.f — essential when some lists are orders of
// magnitude longer than others (§3.3).
func TRA(q *Query, lists ListSource, docs DocVectorSource, r int, trace func(TraceEvent)) (*TRAOutcome, error) {
	return TRAWithBoost(q, lists, docs, r, nil, nil, trace)
}

// TRAWithBoost is TRA with the §5 authority-boost extension: document
// scores gain β·A(d) and the termination threshold widens by β·A_max so
// that unseen matching documents remain bounded.
//
// dead (optional) marks tombstoned document slots of a live collection:
// their postings are still revealed (they are part of the signed lists)
// but they are never scored and never enter the result. The verifier
// replays the identical rule from the signed manifest's bitmap, so owner
// and client agree on the skip deterministically. A dead head entry still
// contributes to the termination threshold — the bound stays a valid
// upper bound for unrevealed live documents, merely a conservative one.
func TRAWithBoost(q *Query, lists ListSource, docs DocVectorSource, r int, boost *Boost, dead func(index.DocID) bool, trace func(TraceEvent)) (*TRAOutcome, error) {
	nq := len(q.Terms)
	if nq == 0 {
		return nil, ErrNoQueryTerms
	}
	cursors := make([]Cursor, nq)
	for i := range q.Terms {
		cur, err := lists.OpenList(q.Terms[i].ID)
		if err != nil {
			return nil, err
		}
		cursors[i] = cur
	}

	out := &TRAOutcome{
		KScore:    make([]int, nq),
		Exhausted: make([]bool, nq),
		Scores:    make(map[index.DocID]float64),
	}
	popped := make(map[index.DocID]struct{})
	var result []ResultEntry // sorted by resultLess

	thres := func() float64 {
		var t float64
		for i := range q.Terms {
			if p, ok := cursors[i].Peek(); ok {
				t += q.Terms[i].WQ * float64(p.W)
			}
		}
		return t
	}

	for {
		th := thres() + boost.Max()
		if len(result) >= r && result[r-1].Score >= th {
			out.Thres = th
			if trace != nil {
				trace(TraceEvent{Iter: out.Iterations + 1, Thres: th, Term: -1, Terminated: true})
			}
			break
		}
		// Pick the list with the highest current term score; ties break to
		// the lowest query-term position (a deterministic instance of
		// "breaking ties arbitrarily").
		best, bestC := -1, 0.0
		for i := range q.Terms {
			p, ok := cursors[i].Peek()
			if !ok {
				continue
			}
			c := q.Terms[i].WQ * float64(p.W)
			if best == -1 || c > bestC {
				best, bestC = i, c
			}
		}
		if best == -1 { // every list exhausted
			out.Thres = 0
			if trace != nil {
				trace(TraceEvent{Iter: out.Iterations + 1, Thres: 0, Term: -1, Terminated: true})
			}
			break
		}
		entry, _ := cursors[best].Peek()
		cursors[best].Advance()
		out.Iterations++
		if trace != nil {
			trace(TraceEvent{Iter: out.Iterations, Thres: th, Term: best, Entry: entry})
		}
		if _, seen := popped[entry.Doc]; !seen {
			popped[entry.Doc] = struct{}{}
			if dead != nil && dead(entry.Doc) {
				continue // tombstoned: revealed but never scored
			}
			vec, err := docs.DocVector(entry.Doc)
			if err != nil {
				return nil, err
			}
			out.RandomAccesses++
			s := Score(q, QueryWeights(q, vec)) + boost.Score(entry.Doc)
			out.Scores[entry.Doc] = s
			result = insertResult(result, ResultEntry{Doc: entry.Doc, Score: s})
		}
	}

	for i := range q.Terms {
		k := cursors[i].Consumed()
		if _, ok := cursors[i].Peek(); ok {
			k++ // the cut-off head entry is revealed too
		}
		out.KScore[i] = k
		// A prefix covering the whole list proves that absent documents
		// have frequency 0, whether or not the last entry was popped; the
		// client applies the same rule.
		out.Exhausted[i] = k == cursors[i].Len()
	}
	prefixes := cursorPrefixes(cursors, out.KScore)
	// Canonical threshold: lists whose prefixes cover the whole list
	// contribute 0 (unrevealed documents cannot appear in them at all).
	out.Thres = 0
	for i := range q.Terms {
		if !out.Exhausted[i] {
			k := out.KScore[i]
			out.Thres += q.Terms[i].WQ * float64(prefixes[i][k-1].W)
		}
	}
	out.Encountered = encounteredDocs(prefixes)
	if len(result) > r {
		result = result[:r]
	}
	out.Result = result
	return out, nil
}

// insertResult inserts e into a slice kept sorted by resultLess.
func insertResult(rs []ResultEntry, e ResultEntry) []ResultEntry {
	i := sort.Search(len(rs), func(i int) bool { return !resultLess(rs[i], e) })
	rs = append(rs, ResultEntry{})
	copy(rs[i+1:], rs[i:])
	rs[i] = e
	return rs
}

// cursorPrefixes re-reads the revealed prefixes from cursors that retain
// their consumed entries; for cursors that do not (the in-memory test
// cursor), the prefix is sliced from the backing list.
func cursorPrefixes(cursors []Cursor, k []int) [][]index.Posting {
	out := make([][]index.Posting, len(cursors))
	for i, c := range cursors {
		out[i] = CursorPrefix(c, k[i])
	}
	return out
}

// PrefixReader is implemented by cursors that can return the first k
// entries they have read (the engine's store-backed cursor retains them for
// VO construction).
type PrefixReader interface {
	Prefix(k int) []index.Posting
}

// CursorPrefix extracts the first k entries from a cursor.
func CursorPrefix(c Cursor, k int) []index.Posting {
	if pr, ok := c.(PrefixReader); ok {
		return pr.Prefix(k)
	}
	if mc, ok := c.(*memCursor); ok {
		return mc.list[:k]
	}
	panic("core: cursor cannot expose prefixes")
}

// encounteredDocs returns the sorted union of doc ids in the prefixes.
func encounteredDocs(prefixes [][]index.Posting) []index.DocID {
	seen := make(map[index.DocID]struct{})
	var out []index.DocID
	for _, pre := range prefixes {
		for _, p := range pre {
			if _, ok := seen[p.Doc]; !ok {
				seen[p.Doc] = struct{}{}
				out = append(out, p.Doc)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
