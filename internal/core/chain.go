package core

import (
	"errors"
	"fmt"

	"authtext/internal/mht"
)

// Chain-MHT (§3.3.2, Fig 9): an inverted list is stored as blocks of ρ
// entries. Each block embeds a Merkle tree over its leaves; moving from the
// last block forward, the digest of block j+1 is appended as an extra leaf
// of block j's tree, and the digest of the first block is signed. Any j
// leading blocks verify against the signature given only the digest that
// covers the (j+1)-st block — the engine never touches the tail of the
// list.

// ErrChain indicates a malformed chain proof.
var ErrChain = errors.New("core: malformed chain proof")

// ChainRho returns ρ, the number of list entries per chain block: each
// block reserves 4 bytes for the successor's address and hashSize bytes for
// its digest, and stores 8-byte ⟨d, f⟩ entries in the remainder (DESIGN.md
// §3.5 documents the deviation from the paper's id-only ρ = 251).
func ChainRho(blockSize, hashSize int) int {
	rho := (blockSize - 4 - hashSize) / 8
	if rho < 1 {
		rho = 1
	}
	return rho
}

// ChainBlocks returns the number of blocks for an n-entry list.
func ChainBlocks(n, rho int) int {
	if n == 0 {
		return 0
	}
	return (n + rho - 1) / rho
}

// blockTreeLeaves returns the leaves of block j's embedded tree: the
// encodings of its entries, plus the digest of block j+1 (when present) as
// a trailing leaf.
func blockTreeLeaves(leaves [][]byte, j, rho int, next []byte) [][]byte {
	lo := j * rho
	hi := lo + rho
	if hi > len(leaves) {
		hi = len(leaves)
	}
	tree := make([][]byte, 0, hi-lo+1)
	tree = append(tree, leaves[lo:hi]...)
	if next != nil {
		tree = append(tree, next)
	}
	return tree
}

// ChainDigests computes the per-block digests back to front; the result's
// element 0 is the digest the owner signs, and element j is the digest
// stored in the header of block j−1.
func ChainDigests(h mht.Hasher, leaves [][]byte, rho int) [][]byte {
	nb := ChainBlocks(len(leaves), rho)
	if nb == 0 {
		return nil
	}
	digests := make([][]byte, nb)
	for j := nb - 1; j >= 0; j-- {
		var next []byte
		if j < nb-1 {
			next = digests[j+1]
		}
		digests[j] = mht.Root(h, blockTreeLeaves(leaves, j, rho, next))
	}
	return digests
}

// ChainProvePrefix produces the digests a VO needs so that a client holding
// the first kProof leaf encodings can recompute the signed head digest:
// the multiproof of the partially consumed block (whose tree also covers
// the successor digest), and nothing else — full blocks rebuild from data
// alone. digests must be the full ChainDigests output (the owner stores
// digest j+1 inside block j, so the prover has them without extra I/O).
func ChainProvePrefix(h mht.Hasher, leaves [][]byte, digests [][]byte, rho, kProof int) (mht.Proof, error) {
	n := len(leaves)
	if kProof < 0 || kProof > n {
		return mht.Proof{}, fmt.Errorf("core: chain prefix %d outside [0,%d]", kProof, n)
	}
	if kProof == n {
		return mht.Proof{}, nil
	}
	nb := ChainBlocks(n, rho)
	j := kProof / rho
	rem := kProof % rho
	var next []byte
	if j < nb-1 {
		next = digests[j+1]
	}
	tree := blockTreeLeaves(leaves, j, rho, next)
	want := make([]int, rem)
	for i := 0; i < rem; i++ {
		want[i] = i
	}
	return mht.Prove(h, tree, want)
}

// ChainRootFromPrefix recomputes the signed head digest from the first
// kProof revealed leaf encodings of an n-entry list, using the proof from
// ChainProvePrefix. It is the client-side counterpart.
func ChainRootFromPrefix(h mht.Hasher, revealed [][]byte, n, rho int, proof mht.Proof) ([]byte, error) {
	kProof := len(revealed)
	if kProof > n || n < 1 {
		return nil, ErrChain
	}
	nb := ChainBlocks(n, rho)
	var next []byte

	if kProof < n {
		// Rebuild the digest of the partially consumed block j from its
		// revealed leaves and the complementary digests.
		j := kProof / rho
		rem := kProof % rho
		blockLen := rho
		if (j+1)*rho > n {
			blockLen = n - j*rho
		}
		treeSize := blockLen
		if j < nb-1 {
			treeSize++ // successor-digest leaf
		}
		want := make(map[int][]byte, rem)
		for i := 0; i < rem; i++ {
			want[i] = revealed[j*rho+i]
		}
		d, err := mht.RootFromProof(h, treeSize, want, proof)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrChain, err)
		}
		next = d
		// Chain upward through the fully revealed blocks.
		for jj := j - 1; jj >= 0; jj-- {
			tree := blockTreeLeaves(revealed, jj, rho, next)
			next = mht.Root(h, tree)
		}
		return next, nil
	}

	// Whole list revealed: recompute the chain from scratch.
	if len(proof.Digests) != 0 {
		return nil, ErrChain
	}
	ds := ChainDigests(h, revealed, rho)
	return ds[0], nil
}

// ChainKProof rounds the revealed prefix kScore up to a buddy-group
// boundary inside the partially consumed block (§3.3.2's buddy inclusion,
// applied block-locally): the extra leaves live in a block the server has
// already fetched, so they are free to include and displace digests from
// the VO.
func ChainKProof(kScore, n, rho, group int) int {
	if kScore >= n {
		return n
	}
	j := kScore / rho
	rem := kScore % rho
	blockLen := rho
	if (j+1)*rho > n {
		blockLen = n - j*rho
	}
	rounded := mht.RoundUpPrefix(rem, group, blockLen)
	return j*rho + rounded
}
