package core

import (
	"testing"

	"authtext/internal/sig"
)

func sampleManifest() *Manifest {
	root := make([]byte, 16)
	return &Manifest{
		N: 100, M: 50, AvgLen: 42.5, K1: 1.2, B: 0.75,
		BlockSize: 1024, HashSize: 16,
		DocHashRoot: root,
	}
}

func TestManifestEncodeDeterministic(t *testing.T) {
	m := sampleManifest()
	a, b := m.Encode(), m.Encode()
	if string(a) != string(b) {
		t.Fatal("manifest encoding not deterministic")
	}
}

func TestManifestEncodeBindsEveryField(t *testing.T) {
	base := sampleManifest().Encode()
	mutations := []func(*Manifest){
		func(m *Manifest) { m.N++ },
		func(m *Manifest) { m.M++ },
		func(m *Manifest) { m.AvgLen += 1 },
		func(m *Manifest) { m.K1 = 2.0 },
		func(m *Manifest) { m.B = 0.5 },
		func(m *Manifest) { m.BlockSize = 2048 },
		func(m *Manifest) { m.HashSize = 20 },
		func(m *Manifest) { m.DictMode = true },
		func(m *Manifest) { m.VocabProofsEnabled = true },
		func(m *Manifest) { m.DocHashRoot = append([]byte{1}, m.DocHashRoot[1:]...) },
		func(m *Manifest) { m.DictRoots[0] = make([]byte, 16) },
		func(m *Manifest) { m.NameDictRoot = make([]byte, 16) },
		func(m *Manifest) { m.Boosted = true },
		func(m *Manifest) { m.Beta = 3.5 },
		func(m *Manifest) { m.AMax = 0.25 },
		func(m *Manifest) { m.AuthorityRoot = make([]byte, 16) },
	}
	for i, mutate := range mutations {
		m := sampleManifest()
		mutate(m)
		if string(m.Encode()) == string(base) {
			t.Errorf("mutation %d not reflected in encoding", i)
		}
	}
}

func TestManifestValidate(t *testing.T) {
	if err := sampleManifest().Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	bad := []func(*Manifest){
		func(m *Manifest) { m.N = 0 },
		func(m *Manifest) { m.M = 0 },
		func(m *Manifest) { m.HashSize = 4 },
		func(m *Manifest) { m.BlockSize = 16 },
		func(m *Manifest) { m.DocHashRoot = nil },
		func(m *Manifest) { m.DictMode = true }, // roots missing
		func(m *Manifest) { m.VocabProofsEnabled = true },
		func(m *Manifest) { m.Boosted = true }, // authority root missing
		func(m *Manifest) {
			m.Boosted = true
			m.AuthorityRoot = make([]byte, 16)
			m.Beta = -1
		},
		func(m *Manifest) {
			m.Boosted = true
			m.AuthorityRoot = make([]byte, 16)
			m.AMax = 2
		},
	}
	for i, mutate := range bad {
		m := sampleManifest()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestVerifyManifest(t *testing.T) {
	signer, err := sig.NewHMACSigner([]byte("manifest"), 64)
	if err != nil {
		t.Fatal(err)
	}
	m := sampleManifest()
	sb, err := signer.Sign(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyManifest(m, sb, signer.Verifier()); err != nil {
		t.Fatalf("valid manifest signature rejected: %v", err)
	}
	m.N++
	if err := VerifyManifest(m, sb, signer.Verifier()); err == nil {
		t.Fatal("tampered manifest accepted")
	}
}

func TestTermRootMessageBindsFields(t *testing.T) {
	root := make([]byte, 16)
	base := TermRootMessage(KindTRAMHT, "term", 7, 13, root)
	variants := [][]byte{
		TermRootMessage(KindTNRAMHT, "term", 7, 13, root),
		TermRootMessage(KindTRAMHT, "other", 7, 13, root),
		TermRootMessage(KindTRAMHT, "term", 8, 13, root),
		TermRootMessage(KindTRAMHT, "term", 7, 14, root),
		TermRootMessage(KindTRAMHT, "term", 7, 13, append([]byte{1}, root[1:]...)),
	}
	for i, v := range variants {
		if string(v) == string(base) {
			t.Errorf("variant %d collides with base message", i)
		}
	}
}

func TestDocRootMessageBindsFields(t *testing.T) {
	h := make([]byte, 16)
	r := make([]byte, 16)
	base := DocRootMessage(3, 9, h, r)
	variants := [][]byte{
		DocRootMessage(4, 9, h, r),
		DocRootMessage(3, 10, h, r),
		DocRootMessage(3, 9, append([]byte{1}, h[1:]...), r),
		DocRootMessage(3, 9, h, append([]byte{1}, r[1:]...)),
	}
	for i, v := range variants {
		if string(v) == string(base) {
			t.Errorf("variant %d collides with base message", i)
		}
	}
}

func TestKindForAndLeafSizes(t *testing.T) {
	cases := []struct {
		a    Algo
		s    Scheme
		kind StructureKind
		leaf int
	}{
		{AlgoTRA, SchemeMHT, KindTRAMHT, 4},
		{AlgoTRA, SchemeCMHT, KindTRACMHT, 4},
		{AlgoTNRA, SchemeMHT, KindTNRAMHT, 8},
		{AlgoTNRA, SchemeCMHT, KindTNRACMHT, 8},
	}
	for _, c := range cases {
		if got := KindFor(c.a, c.s); got != c.kind {
			t.Errorf("KindFor(%v,%v) = %v", c.a, c.s, got)
		}
		if got := c.kind.LeafSize(); got != c.leaf {
			t.Errorf("LeafSize(%v) = %d, want %d", c.kind, got, c.leaf)
		}
	}
}

func TestAlgoSchemeStrings(t *testing.T) {
	if AlgoTRA.String() != "TRA" || AlgoTNRA.String() != "TNRA" {
		t.Fatal("algo strings")
	}
	if SchemeMHT.String() != "MHT" || SchemeCMHT.String() != "CMHT" {
		t.Fatal("scheme strings")
	}
	if Algo(9).String() == "" || Scheme(9).String() == "" {
		t.Fatal("unknown values must still print")
	}
}
