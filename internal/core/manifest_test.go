package core

import (
	"testing"

	"authtext/internal/sig"
)

func sampleManifest() *Manifest {
	root := make([]byte, 16)
	return &Manifest{
		N: 100, M: 50, AvgLen: 42.5, K1: 1.2, B: 0.75,
		BlockSize: 1024, HashSize: 16,
		DocHashRoot: root,
	}
}

func TestManifestEncodeDeterministic(t *testing.T) {
	m := sampleManifest()
	a, b := m.Encode(), m.Encode()
	if string(a) != string(b) {
		t.Fatal("manifest encoding not deterministic")
	}
}

func TestManifestEncodeBindsEveryField(t *testing.T) {
	base := sampleManifest().Encode()
	mutations := []func(*Manifest){
		func(m *Manifest) { m.N++ },
		func(m *Manifest) { m.M++ },
		func(m *Manifest) { m.AvgLen += 1 },
		func(m *Manifest) { m.K1 = 2.0 },
		func(m *Manifest) { m.B = 0.5 },
		func(m *Manifest) { m.BlockSize = 2048 },
		func(m *Manifest) { m.HashSize = 20 },
		func(m *Manifest) { m.DictMode = true },
		func(m *Manifest) { m.VocabProofsEnabled = true },
		func(m *Manifest) { m.DocHashRoot = append([]byte{1}, m.DocHashRoot[1:]...) },
		func(m *Manifest) { m.DictRoots[0] = make([]byte, 16) },
		func(m *Manifest) { m.NameDictRoot = make([]byte, 16) },
		func(m *Manifest) { m.Boosted = true },
		func(m *Manifest) { m.Beta = 3.5 },
		func(m *Manifest) { m.AMax = 0.25 },
		func(m *Manifest) { m.AuthorityRoot = make([]byte, 16) },
	}
	for i, mutate := range mutations {
		m := sampleManifest()
		mutate(m)
		if string(m.Encode()) == string(base) {
			t.Errorf("mutation %d not reflected in encoding", i)
		}
	}
}

func TestManifestValidate(t *testing.T) {
	if err := sampleManifest().Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	bad := []func(*Manifest){
		func(m *Manifest) { m.N = 0 },
		func(m *Manifest) { m.M = 0 },
		func(m *Manifest) { m.HashSize = 4 },
		func(m *Manifest) { m.BlockSize = 16 },
		func(m *Manifest) { m.DocHashRoot = nil },
		func(m *Manifest) { m.DictMode = true }, // roots missing
		func(m *Manifest) { m.VocabProofsEnabled = true },
		func(m *Manifest) { m.Boosted = true }, // authority root missing
		func(m *Manifest) {
			m.Boosted = true
			m.AuthorityRoot = make([]byte, 16)
			m.Beta = -1
		},
		func(m *Manifest) {
			m.Boosted = true
			m.AuthorityRoot = make([]byte, 16)
			m.AMax = 2
		},
	}
	for i, mutate := range bad {
		m := sampleManifest()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// tombstonedManifest returns a generation-2 manifest with slots 0 and 3
// tombstoned out of N=100.
func tombstonedManifest() *Manifest {
	m := sampleManifest()
	m.Generation = 2
	bm := make([]byte, 13) // ceil(100/8)
	bm[0] = 0b_0000_1001   // slots 0 and 3
	m.Tombstones = bm
	m.Live = 98
	return m
}

func TestManifestTombstoneRoundTrip(t *testing.T) {
	m := tombstonedManifest()
	if err := m.Validate(); err != nil {
		t.Fatalf("valid tombstoned manifest rejected: %v", err)
	}
	got, err := DecodeManifest(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != 2 || got.Live != 98 || string(got.Tombstones) != string(m.Tombstones) {
		t.Fatalf("round trip lost tombstone state: %+v", got)
	}
	if !got.IsTombstoned(0) || !got.IsTombstoned(3) || got.IsTombstoned(1) || got.IsTombstoned(99) {
		t.Fatal("IsTombstoned wrong after round trip")
	}
	if got.IsTombstoned(100) || got.IsTombstoned(1<<20) {
		t.Fatal("out-of-range slot reported tombstoned")
	}
	if got.LiveDocs() != 98 {
		t.Fatalf("LiveDocs = %d, want 98", got.LiveDocs())
	}
	// The bitmap is inside the signed bytes: flipping a bit must change
	// the encoding.
	m2 := tombstonedManifest()
	m2.Tombstones[1] = 1
	m2.Live = 97
	if string(m2.Encode()) == string(m.Encode()) {
		t.Fatal("tombstone bitmap not bound by the encoding")
	}
}

// TestManifestZeroTombstoneEncodingUnchanged pins the compatibility
// contract: a manifest without tombstones — generation 0 especially —
// encodes byte-identically to the pre-tombstone layout (no flag bit, no
// trailing extension), so gen-0 golden fixtures and static snapshots are
// untouched by the feature.
func TestManifestZeroTombstoneEncodingUnchanged(t *testing.T) {
	m := sampleManifest()
	base := m.Encode()
	m.Tombstones = nil // explicit: no bitmap
	m.Live = 0
	if string(m.Encode()) != string(base) {
		t.Fatal("no-tombstone encoding changed")
	}
	if base[0]&8 != 0 {
		t.Fatal("flag bit 8 set without tombstones")
	}
	// A generation-carrying manifest without tombstones keeps the old
	// 8-byte trailing-generation layout.
	m.Generation = 5
	gen := m.Encode()
	if len(gen) != len(base)+8 {
		t.Fatalf("generation suffix is %d bytes, want 8", len(gen)-len(base))
	}
}

func TestManifestTombstoneValidate(t *testing.T) {
	bad := []struct {
		name   string
		mutate func(*Manifest)
	}{
		{"generation 0", func(m *Manifest) { m.Generation = 0 }},
		{"bitmap too short", func(m *Manifest) { m.Tombstones = m.Tombstones[:12] }},
		{"bitmap too long", func(m *Manifest) { m.Tombstones = append(m.Tombstones, 0) }},
		{"trailing bits past N", func(m *Manifest) { m.Tombstones[12] |= 0x80 }},
		{"live count mismatch", func(m *Manifest) { m.Live = 99 }},
		{"all slots dead", func(m *Manifest) {
			for i := range m.Tombstones {
				m.Tombstones[i] = 0xff
			}
			m.Tombstones[12] = 0x0f
			m.Live = 0
		}},
		{"no dead bits but bitmap present", func(m *Manifest) {
			for i := range m.Tombstones {
				m.Tombstones[i] = 0
			}
			m.Live = 100
		}},
		{"live set without bitmap", func(m *Manifest) { m.Tombstones = nil }},
	}
	for _, tc := range bad {
		m := tombstonedManifest()
		tc.mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Decoding rejects the same corruptions when they survive encoding.
	m := tombstonedManifest()
	enc := m.Encode()
	enc[len(enc)-1] ^= 0x80 // set a trailing bit past N
	if _, err := DecodeManifest(enc); err == nil {
		t.Error("decoder accepted trailing tombstone bits past N")
	}
}

func TestVerifyManifest(t *testing.T) {
	signer, err := sig.NewHMACSigner([]byte("manifest"), 64)
	if err != nil {
		t.Fatal(err)
	}
	m := sampleManifest()
	sb, err := signer.Sign(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyManifest(m, sb, signer.Verifier()); err != nil {
		t.Fatalf("valid manifest signature rejected: %v", err)
	}
	m.N++
	if err := VerifyManifest(m, sb, signer.Verifier()); err == nil {
		t.Fatal("tampered manifest accepted")
	}
}

func TestTermRootMessageBindsFields(t *testing.T) {
	root := make([]byte, 16)
	base := TermRootMessage(KindTRAMHT, "term", 7, 13, root)
	variants := [][]byte{
		TermRootMessage(KindTNRAMHT, "term", 7, 13, root),
		TermRootMessage(KindTRAMHT, "other", 7, 13, root),
		TermRootMessage(KindTRAMHT, "term", 8, 13, root),
		TermRootMessage(KindTRAMHT, "term", 7, 14, root),
		TermRootMessage(KindTRAMHT, "term", 7, 13, append([]byte{1}, root[1:]...)),
	}
	for i, v := range variants {
		if string(v) == string(base) {
			t.Errorf("variant %d collides with base message", i)
		}
	}
}

func TestDocRootMessageBindsFields(t *testing.T) {
	h := make([]byte, 16)
	r := make([]byte, 16)
	base := DocRootMessage(3, 9, h, r)
	variants := [][]byte{
		DocRootMessage(4, 9, h, r),
		DocRootMessage(3, 10, h, r),
		DocRootMessage(3, 9, append([]byte{1}, h[1:]...), r),
		DocRootMessage(3, 9, h, append([]byte{1}, r[1:]...)),
	}
	for i, v := range variants {
		if string(v) == string(base) {
			t.Errorf("variant %d collides with base message", i)
		}
	}
}

func TestKindForAndLeafSizes(t *testing.T) {
	cases := []struct {
		a    Algo
		s    Scheme
		kind StructureKind
		leaf int
	}{
		{AlgoTRA, SchemeMHT, KindTRAMHT, 4},
		{AlgoTRA, SchemeCMHT, KindTRACMHT, 4},
		{AlgoTNRA, SchemeMHT, KindTNRAMHT, 8},
		{AlgoTNRA, SchemeCMHT, KindTNRACMHT, 8},
	}
	for _, c := range cases {
		if got := KindFor(c.a, c.s); got != c.kind {
			t.Errorf("KindFor(%v,%v) = %v", c.a, c.s, got)
		}
		if got := c.kind.LeafSize(); got != c.leaf {
			t.Errorf("LeafSize(%v) = %d, want %d", c.kind, got, c.leaf)
		}
	}
}

func TestAlgoSchemeStrings(t *testing.T) {
	if AlgoTRA.String() != "TRA" || AlgoTNRA.String() != "TNRA" {
		t.Fatal("algo strings")
	}
	if SchemeMHT.String() != "MHT" || SchemeCMHT.String() != "CMHT" {
		t.Fatal("scheme strings")
	}
	if Algo(9).String() == "" || Scheme(9).String() == "" {
		t.Fatal("unknown values must still print")
	}
}
