package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"authtext/internal/index"
	"authtext/internal/okapi"
)

// randomIndex builds a small random corpus for property tests.
func randomIndex(r *rand.Rand) *index.Index {
	nDocs := 3 + r.Intn(40)
	vocab := 5 + r.Intn(25)
	docs := make([]index.Document, nDocs)
	for i := range docs {
		ln := 2 + r.Intn(40)
		toks := make([]string, ln)
		for j := range toks {
			// Zipf-ish skew: low word ids are much more frequent.
			w := int(math.Floor(math.Pow(r.Float64(), 2.2) * float64(vocab)))
			toks[j] = fmt.Sprintf("w%03d", w)
		}
		docs[i] = index.Document{Content: []byte(fmt.Sprint(i, toks)), Tokens: toks}
	}
	idx, err := index.Build(docs, index.Options{Okapi: okapi.DefaultParams(), RemoveSingletons: false})
	if err != nil {
		panic(err)
	}
	return idx
}

func randomQuery(r *rand.Rand, idx *index.Index) *Query {
	qn := 1 + r.Intn(5)
	var tokens []string
	for i := 0; i < qn; i++ {
		tokens = append(tokens, idx.Name(index.TermID(r.Intn(idx.M()))))
	}
	q, err := BuildQuery(idx, tokens)
	if err != nil {
		panic(err)
	}
	return q
}

func TestBuildQuery(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	idx := randomIndex(r)
	name0 := idx.Name(0)
	name1 := idx.Name(1)
	q, err := BuildQuery(idx, []string{name0, "zzz-not-a-term", name1, name0})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Terms) != 2 {
		t.Fatalf("%d terms, want 2", len(q.Terms))
	}
	if q.Terms[0].Name != name0 || q.Terms[0].FQ != 2 {
		t.Fatalf("term 0 = %+v, want %s with fQ=2", q.Terms[0], name0)
	}
	if q.Terms[1].Name != name1 || q.Terms[1].FQ != 1 {
		t.Fatalf("term 1 = %+v", q.Terms[1])
	}
	if len(q.Unknown) != 1 || q.Unknown[0] != "zzz-not-a-term" {
		t.Fatalf("unknown = %v", q.Unknown)
	}
	if q.Terms[0].WQ != okapi.QueryWeight(idx.N, q.Terms[0].FT, 2) {
		t.Fatal("wQ mismatch")
	}
}

func TestPSCANMatchesNaiveScoring(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		idx := randomIndex(r)
		q := randomQuery(r, idx)
		src := &MemSource{Idx: idx}
		got, err := PSCAN(q, src)
		if err != nil {
			return false
		}
		// Naive: score every document directly from its vector.
		type ds struct {
			d index.DocID
			s float64
		}
		var want []ds
		for d := 0; d < idx.N; d++ {
			w := QueryWeights(q, idx.DocVector(index.DocID(d)))
			any := false
			for _, x := range w {
				if x != 0 {
					any = true
				}
			}
			if any {
				want = append(want, ds{index.DocID(d), Score(q, w)})
			}
		}
		sort.Slice(want, func(a, b int) bool {
			if want[a].s != want[b].s {
				return want[a].s > want[b].s
			}
			return want[a].d < want[b].d
		})
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Doc != want[i].d || got[i].Score != want[i].s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: TRA returns exactly the PSCAN top-r (scores identical; doc ids
// may differ only among tied scores).
func TestTRAMatchesPSCANProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		idx := randomIndex(r)
		q := randomQuery(r, idx)
		rr := 1 + r.Intn(10)
		src := &MemSource{Idx: idx}
		oracle, err := PSCAN(q, src)
		if err != nil {
			return false
		}
		out, err := TRA(q, src, src, rr, nil)
		if err != nil {
			return false
		}
		return resultsMatchTopK(t, out.Result, oracle, rr, true)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: TNRA selects a true top-r set (score multisets match) and its
// claimed SLB scores never exceed the true scores.
func TestTNRAMatchesPSCANProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		idx := randomIndex(r)
		q := randomQuery(r, idx)
		rr := 1 + r.Intn(10)
		src := &MemSource{Idx: idx}
		oracle, err := PSCAN(q, src)
		if err != nil {
			return false
		}
		out, err := TNRA(q, src, rr, nil)
		if err != nil {
			return false
		}
		if !resultsMatchTopK(t, out.Result, oracle, rr, false) {
			return false
		}
		// SLB never exceeds the true score.
		trueScore := make(map[index.DocID]float64, len(oracle))
		for _, e := range oracle {
			trueScore[e.Doc] = e.Score
		}
		for _, e := range out.Result {
			if e.Score > trueScore[e.Doc]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// resultsMatchTopK checks got against the first k oracle entries. With
// exactScores, got's scores must equal the oracle scores of the same docs;
// either way the score multisets must agree (ties may permute docs).
func resultsMatchTopK(t *testing.T, got, oracle []ResultEntry, k int, exactScores bool) bool {
	t.Helper()
	want := oracle
	if len(want) > k {
		want = want[:k]
	}
	if len(got) != len(want) {
		t.Logf("result size %d, want %d", len(got), len(want))
		return false
	}
	trueScore := make(map[index.DocID]float64, len(oracle))
	for _, e := range oracle {
		trueScore[e.Doc] = e.Score
	}
	for i, e := range got {
		ts, ok := trueScore[e.Doc]
		if !ok {
			t.Logf("doc %d not scored by oracle", e.Doc)
			return false
		}
		if exactScores && e.Score != ts {
			t.Logf("doc %d score %v, oracle %v", e.Doc, e.Score, ts)
			return false
		}
		// The i-th true score must match the oracle's i-th score.
		if math.Abs(ts-want[i].Score) > 1e-12 {
			t.Logf("position %d: true score %v, oracle %v", i, ts, want[i].Score)
			return false
		}
	}
	return true
}

func TestTRARevealedPrefixInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		idx := randomIndex(r)
		q := randomQuery(r, idx)
		rr := 1 + r.Intn(8)
		src := &MemSource{Idx: idx}
		out, err := TRA(q, src, src, rr, nil)
		if err != nil {
			return false
		}
		for i := range q.Terms {
			li := len(idx.List(q.Terms[i].ID))
			k := out.KScore[i]
			if k < 1 || k > li {
				return false
			}
			if out.Exhausted[i] != (k == li) {
				return false
			}
		}
		// Every result doc is encountered.
		enc := make(map[index.DocID]bool)
		for _, d := range out.Encountered {
			enc[d] = true
		}
		for _, e := range out.Result {
			if !enc[e.Doc] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTNRAEvalConditionsSound(t *testing.T) {
	// When EvalTNRA reports OK, the selected set must be a true top-r by
	// actual scores.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		idx := randomIndex(r)
		q := randomQuery(r, idx)
		rr := 1 + r.Intn(8)
		src := &MemSource{Idx: idx}
		out, err := TNRA(q, src, rr, nil)
		if err != nil {
			return false
		}
		ev := EvalTNRA(q, prefixesFromIndex(idx, q, out.KScore), out.Exhausted, rr)
		if !ev.OK {
			return false // the algorithm's own outcome must re-verify
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func prefixesFromIndex(idx *index.Index, q *Query, k []int) [][]index.Posting {
	out := make([][]index.Posting, len(q.Terms))
	for i := range q.Terms {
		out[i] = idx.List(q.Terms[i].ID)[:k[i]]
	}
	return out
}

func TestScoreCanonicalOrder(t *testing.T) {
	q := &Query{Terms: []QueryTerm{{WQ: 0.1}, {WQ: 0.7}, {WQ: 1.3}}}
	w := []float32{0.5, 0.25, 0.125}
	want := 0.1*float64(float32(0.5)) + 0.7*float64(float32(0.25)) + 1.3*float64(float32(0.125))
	if got := Score(q, w); got != want {
		t.Fatalf("Score = %v, want %v", got, want)
	}
}

func TestAlgorithmsRejectEmptyQuery(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	idx := randomIndex(r)
	src := &MemSource{Idx: idx}
	q := &Query{}
	if _, err := TRA(q, src, src, 5, nil); err != ErrNoQueryTerms {
		t.Fatalf("TRA err = %v", err)
	}
	if _, err := TNRA(q, src, 5, nil); err != ErrNoQueryTerms {
		t.Fatalf("TNRA err = %v", err)
	}
}

func TestTRAWithRLargerThanCollection(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	idx := randomIndex(r)
	src := &MemSource{Idx: idx}
	q := randomQuery(r, idx)
	out, err := TRA(q, src, src, idx.N*2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range q.Terms {
		if !out.Exhausted[i] {
			t.Fatal("oversized r must exhaust all lists")
		}
	}
	oracle, _ := PSCAN(q, src)
	if len(out.Result) != len(oracle) {
		t.Fatalf("result %d, oracle %d", len(out.Result), len(oracle))
	}
}

func TestTNRAWithRLargerThanCollection(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	idx := randomIndex(r)
	src := &MemSource{Idx: idx}
	q := randomQuery(r, idx)
	out, err := TNRA(q, src, idx.N*2, nil)
	if err != nil {
		t.Fatal(err)
	}
	oracle, _ := PSCAN(q, src)
	if len(out.Result) != len(oracle) {
		t.Fatalf("result %d, oracle %d", len(out.Result), len(oracle))
	}
}
