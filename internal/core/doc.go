// Package core implements the paper's primary contribution: the adapted
// threshold algorithms TRA (§3.3, Fig 5) and TNRA (§3.4, Fig 10), the
// PSCAN baseline (§2.1, Fig 2), the authentication structures built on
// Merkle hash trees and chained Merkle hash trees (§3.3.1, §3.3.2), and the
// client-side verification procedure that checks the correctness criteria
// of §3.1 against the owner's signatures.
//
// In the VO protocol, core is both ends of the proof: the server side
// decides, while a query runs, which list prefixes, boundary entries,
// digests and document evidence must enter the verification object for the
// answer to be checkable, and the client side (Verify) replays that
// evidence — recomputing scores, rebuilding Merkle roots, and re-deriving
// the termination threshold — to accept or reject the result. Every
// rejection carries a VerifyCode classifying the violation (wrong score,
// broken ordering, incomplete result, spurious document, ...), which is
// what authtext.IsTampered ultimately inspects. The Manifest type is the
// trust anchor that travels to clients: the signed collection metadata
// binding every per-list and per-document root. For live collections the
// manifest additionally carries a signed generation number that every VO
// must echo; Verify rejects a stamp mismatch as CodeStaleGeneration
// (docs/UPDATES.md).
//
// The package is I/O-free: query algorithms consume abstract list cursors
// and document-frequency sources, which internal/engine backs with the
// simulated block device and tests back with in-memory structures.
package core
