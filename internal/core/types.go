package core

import (
	"errors"
	"fmt"

	"authtext/internal/index"
	"authtext/internal/okapi"
	"authtext/internal/textproc"
)

// Algo selects the query processing algorithm.
type Algo uint8

const (
	// AlgoTRA is Threshold with Random Access (Fig 5).
	AlgoTRA Algo = 1
	// AlgoTNRA is Threshold with No Random Access (Fig 10).
	AlgoTNRA Algo = 2
)

// String implements fmt.Stringer.
func (a Algo) String() string {
	switch a {
	case AlgoTRA:
		return "TRA"
	case AlgoTNRA:
		return "TNRA"
	}
	return fmt.Sprintf("Algo(%d)", uint8(a))
}

// Scheme selects the authentication structure.
type Scheme uint8

const (
	// SchemeMHT uses one Merkle tree per inverted list (§3.3.1).
	SchemeMHT Scheme = 1
	// SchemeCMHT uses the chain of per-block Merkle trees with buddy
	// inclusion (§3.3.2).
	SchemeCMHT Scheme = 2
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeMHT:
		return "MHT"
	case SchemeCMHT:
		return "CMHT"
	}
	return fmt.Sprintf("Scheme(%d)", uint8(s))
}

// MaxQueryTerms bounds q; TNRA uses a 64-bit per-document term mask.
// TREC queries reach 20 terms (§4.1), so the bound is generous.
const MaxQueryTerms = 64

// QueryTerm is one unique search term of a query, with its statistics.
type QueryTerm struct {
	Name string
	ID   index.TermID
	FQ   int     // f_{Q,t}: occurrences in the query
	FT   int     // f_t: documents containing the term
	WQ   float64 // w_{Q,t}
}

// Query is a parsed query: the unique in-dictionary terms in first-occurrence
// order, plus the out-of-dictionary tokens (ignored for scoring, §3.1, but
// subject to non-membership proofs when the vocabulary-proof extension is
// enabled).
type Query struct {
	Terms   []QueryTerm
	Unknown []string
}

// BuildQuery resolves tokens against the dictionary: tokens are deduplicated
// preserving first-occurrence order, f_{Q,t} counts multiplicity, and
// w_{Q,t} is computed from the collection statistics. Tokens missing from
// the dictionary are collected in Unknown.
func BuildQuery(idx *index.Index, tokens []string) (*Query, error) {
	counts := textproc.Counts(tokens)
	q := &Query{}
	seen := make(map[string]struct{}, len(tokens))
	for _, tok := range tokens {
		if _, dup := seen[tok]; dup {
			continue
		}
		seen[tok] = struct{}{}
		tid, ok := idx.Lookup(tok)
		if !ok {
			q.Unknown = append(q.Unknown, tok)
			continue
		}
		ft := idx.FT(tid)
		q.Terms = append(q.Terms, QueryTerm{
			Name: tok,
			ID:   tid,
			FQ:   counts[tok],
			FT:   ft,
			WQ:   okapi.QueryWeight(idx.N, ft, counts[tok]),
		})
	}
	if len(q.Terms) > MaxQueryTerms {
		return nil, fmt.Errorf("core: query has %d terms, max %d", len(q.Terms), MaxQueryTerms)
	}
	return q, nil
}

// Score computes S(d|Q) = Σ_i w_{Q,ti}·w[i] canonically: float64 accumulation
// in query-term order over float32 weights. Server and client both use this
// function, so claimed and recomputed scores are bit-identical.
func Score(q *Query, w []float32) float64 {
	var s float64
	for i := range q.Terms {
		s += q.Terms[i].WQ * float64(w[i])
	}
	return s
}

// ResultEntry is one entry of the ordered query result R.
type ResultEntry struct {
	Doc   index.DocID
	Score float64
}

// resultLess is the canonical result order: score descending, doc ascending.
func resultLess(a, b ResultEntry) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Doc < b.Doc
}

// ErrNoQueryTerms is returned when none of the query tokens are in the
// dictionary.
var ErrNoQueryTerms = errors.New("core: no query terms in dictionary")
