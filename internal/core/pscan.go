package core

import (
	"sort"

	"authtext/internal/index"
)

// PSCAN evaluates a query with the Prioritized Scanning algorithm of Fig 2:
// every inverted list is consumed in full and per-document accumulators are
// summed. It returns all scored documents in canonical result order; callers
// take the first r entries. PSCAN is the unauthenticated baseline ("List
// Length" in Figs 13–15a) and the correctness oracle for TRA/TNRA tests.
//
// The accumulators are identical whatever order entries are merged in, so
// the implementation scans list-by-list; scores are nevertheless finalised
// with the canonical Score function so they compare exactly against the
// threshold algorithms' results.
func PSCAN(q *Query, lists ListSource) ([]ResultEntry, error) {
	weights := make(map[index.DocID][]float32)
	for i := range q.Terms {
		cur, err := lists.OpenList(q.Terms[i].ID)
		if err != nil {
			return nil, err
		}
		for {
			p, ok := cur.Peek()
			if !ok {
				break
			}
			cur.Advance()
			w := weights[p.Doc]
			if w == nil {
				w = make([]float32, len(q.Terms))
				weights[p.Doc] = w
			}
			w[i] = p.W
		}
	}
	out := make([]ResultEntry, 0, len(weights))
	for d, w := range weights {
		out = append(out, ResultEntry{Doc: d, Score: Score(q, w)})
	}
	sort.Slice(out, func(a, b int) bool { return resultLess(out[a], out[b]) })
	return out, nil
}
