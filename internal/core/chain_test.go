package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"authtext/internal/mht"
	"authtext/internal/sig"
)

func chainHasher() mht.Hasher { return mht.NewHasher(sig.MustHasher(16)) }

func chainLeaves(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		b := make([]byte, 8)
		binary.BigEndian.PutUint32(b, uint32(i))
		binary.BigEndian.PutUint32(b[4:], uint32(i*31+7))
		out[i] = b
	}
	return out
}

func TestChainRho(t *testing.T) {
	// 1 KB blocks, 16-byte digests, 4-byte addresses, 8-byte entries.
	if got := ChainRho(1024, 16); got != 125 {
		t.Fatalf("ChainRho(1024,16) = %d, want 125", got)
	}
	if got := ChainRho(64, 16); got != 5 {
		t.Fatalf("ChainRho(64,16) = %d, want 5", got)
	}
	if got := ChainRho(16, 16); got != 1 {
		t.Fatalf("tiny blocks should clamp to 1, got %d", got)
	}
}

func TestChainBlocks(t *testing.T) {
	cases := []struct{ n, rho, want int }{
		{0, 5, 0}, {1, 5, 1}, {5, 5, 1}, {6, 5, 2}, {10, 5, 2}, {11, 5, 3},
	}
	for _, c := range cases {
		if got := ChainBlocks(c.n, c.rho); got != c.want {
			t.Errorf("ChainBlocks(%d,%d) = %d, want %d", c.n, c.rho, got, c.want)
		}
	}
}

func TestChainDigestsStructure(t *testing.T) {
	h := chainHasher()
	leaves := chainLeaves(12)
	rho := 5
	ds := ChainDigests(h, leaves, rho)
	if len(ds) != 3 {
		t.Fatalf("%d digests, want 3", len(ds))
	}
	// Last block: tree over its own leaves only.
	want2 := mht.Root(h, leaves[10:12])
	if !bytes.Equal(ds[2], want2) {
		t.Fatal("last block digest mismatch")
	}
	// Middle block: leaves 5..9 plus digest of block 2 as trailing leaf.
	tree1 := append(append([][]byte{}, leaves[5:10]...), ds[2])
	if !bytes.Equal(ds[1], mht.Root(h, tree1)) {
		t.Fatal("middle block digest mismatch")
	}
	tree0 := append(append([][]byte{}, leaves[0:5]...), ds[1])
	if !bytes.Equal(ds[0], mht.Root(h, tree0)) {
		t.Fatal("head digest mismatch")
	}
}

func TestChainPrefixRoundTripAllPrefixes(t *testing.T) {
	h := chainHasher()
	for _, n := range []int{1, 4, 5, 6, 11, 25, 37} {
		leaves := chainLeaves(n)
		for _, rho := range []int{1, 3, 5, 8} {
			ds := ChainDigests(h, leaves, rho)
			head := ds[0]
			for k := 0; k <= n; k++ {
				proof, err := ChainProvePrefix(h, leaves, ds, rho, k)
				if err != nil {
					t.Fatalf("n=%d rho=%d k=%d: %v", n, rho, k, err)
				}
				got, err := ChainRootFromPrefix(h, leaves[:k], n, rho, proof)
				if err != nil {
					t.Fatalf("n=%d rho=%d k=%d: verify: %v", n, rho, k, err)
				}
				if !bytes.Equal(got, head) {
					t.Fatalf("n=%d rho=%d k=%d: head mismatch", n, rho, k)
				}
			}
		}
	}
}

func TestChainTamperedPrefixFails(t *testing.T) {
	h := chainHasher()
	leaves := chainLeaves(20)
	rho := 5
	ds := ChainDigests(h, leaves, rho)
	proof, err := ChainProvePrefix(h, leaves, ds, rho, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with a revealed leaf.
	tampered := append([][]byte{}, leaves[:7]...)
	evil := make([]byte, 8)
	copy(evil, tampered[3])
	evil[7] ^= 1
	tampered[3] = evil
	got, err := ChainRootFromPrefix(h, tampered, 20, rho, proof)
	if err == nil && bytes.Equal(got, ds[0]) {
		t.Fatal("tampered prefix verified")
	}
	// Reorder two revealed leaves.
	swapped := append([][]byte{}, leaves[:7]...)
	swapped[1], swapped[2] = swapped[2], swapped[1]
	got, err = ChainRootFromPrefix(h, swapped, 20, rho, proof)
	if err == nil && bytes.Equal(got, ds[0]) {
		t.Fatal("reordered prefix verified")
	}
	// Truncate the prefix but keep the proof.
	got, err = ChainRootFromPrefix(h, leaves[:6], 20, rho, proof)
	if err == nil && bytes.Equal(got, ds[0]) {
		t.Fatal("truncated prefix verified with stale proof")
	}
}

func TestChainProofSizeIndependentOfListLength(t *testing.T) {
	// §3.3.2: the number of digests per term is proportional to log2(ρ+1)
	// and independent of the list length.
	h := chainHasher()
	rho := 125
	k := 40
	var sizes []int
	for _, n := range []int{200, 2000, 20000} {
		leaves := chainLeaves(n)
		ds := ChainDigests(h, leaves, rho)
		proof, err := ChainProvePrefix(h, leaves, ds, rho, k)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(proof.Digests))
	}
	if sizes[0] != sizes[1] || sizes[1] != sizes[2] {
		t.Fatalf("proof sizes vary with list length: %v", sizes)
	}
}

func TestChainKProof(t *testing.T) {
	// rho=10, group=4: kScore=13 → block 1, rem 3 → rounded to 4 → 14.
	if got := ChainKProof(13, 100, 10, 4); got != 14 {
		t.Fatalf("ChainKProof = %d, want 14", got)
	}
	// Exact block boundary stays.
	if got := ChainKProof(20, 100, 10, 4); got != 20 {
		t.Fatalf("ChainKProof = %d, want 20", got)
	}
	// Clipped to n within the last, short block.
	if got := ChainKProof(97, 98, 10, 4); got != 98 {
		t.Fatalf("ChainKProof = %d, want 98", got)
	}
	// kScore at or beyond n.
	if got := ChainKProof(98, 98, 10, 4); got != 98 {
		t.Fatalf("ChainKProof = %d, want 98", got)
	}
}

// Property: buddy-rounded prefixes still verify, for random shapes.
func TestChainKProofRoundTripProperty(t *testing.T) {
	h := chainHasher()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		rho := 1 + r.Intn(20)
		group := []int{1, 2, 4, 16}[r.Intn(4)]
		kScore := 1 + r.Intn(n)
		kProof := ChainKProof(kScore, n, rho, group)
		if kProof < kScore || kProof > n {
			return false
		}
		leaves := chainLeaves(n)
		ds := ChainDigests(h, leaves, rho)
		proof, err := ChainProvePrefix(h, leaves, ds, rho, kProof)
		if err != nil {
			return false
		}
		got, err := ChainRootFromPrefix(h, leaves[:kProof], n, rho, proof)
		if err != nil {
			return false
		}
		return bytes.Equal(got, ds[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
