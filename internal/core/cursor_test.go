package core

import (
	"testing"

	"authtext/internal/index"
	"authtext/internal/okapi"
)

func tinyIndex(t *testing.T) *index.Index {
	t.Helper()
	docs := []index.Document{
		{Content: []byte("c0"), Tokens: []string{"apple", "banana", "apple"}},
		{Content: []byte("c1"), Tokens: []string{"banana", "cherry"}},
		{Content: []byte("c2"), Tokens: []string{"apple", "cherry", "cherry"}},
	}
	idx, err := index.Build(docs, index.Options{Okapi: okapi.DefaultParams(), RemoveSingletons: false})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestMemCursorSemantics(t *testing.T) {
	idx := tinyIndex(t)
	src := &MemSource{Idx: idx}
	tid, _ := idx.Lookup("apple")
	cur, err := src.OpenList(tid)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Len() != 2 {
		t.Fatalf("Len = %d, want 2", cur.Len())
	}
	p1, ok := cur.Peek()
	if !ok {
		t.Fatal("peek failed")
	}
	// Peek is idempotent.
	p2, _ := cur.Peek()
	if p1 != p2 {
		t.Fatal("peek not idempotent")
	}
	cur.Advance()
	if cur.Consumed() != 1 {
		t.Fatal("consumed != 1")
	}
	cur.Advance()
	if _, ok := cur.Peek(); ok {
		t.Fatal("exhausted cursor still peeks")
	}
}

func TestMemSourceErrors(t *testing.T) {
	idx := tinyIndex(t)
	src := &MemSource{Idx: idx}
	if _, err := src.OpenList(index.TermID(999)); err == nil {
		t.Fatal("unknown term opened")
	}
	if _, err := src.DocVector(index.DocID(999)); err == nil {
		t.Fatal("unknown doc fetched")
	}
}

func TestQueryWeights(t *testing.T) {
	idx := tinyIndex(t)
	q, err := BuildQuery(idx, []string{"apple", "cherry", "durian"})
	if err != nil {
		t.Fatal(err)
	}
	vec := idx.DocVector(2) // c2: apple, cherry
	w := QueryWeights(q, vec)
	if len(w) != 2 {
		t.Fatalf("weights len %d, want 2 (durian is unknown)", len(w))
	}
	if w[0] == 0 || w[1] == 0 {
		t.Fatalf("present terms have zero weight: %v", w)
	}
	vec0 := idx.DocVector(0) // c0: apple, banana — no cherry
	w0 := QueryWeights(q, vec0)
	if w0[1] != 0 {
		t.Fatalf("absent term weight %v, want 0", w0[1])
	}
}

func TestCursorPrefix(t *testing.T) {
	idx := tinyIndex(t)
	src := &MemSource{Idx: idx}
	tid, _ := idx.Lookup("cherry")
	cur, _ := src.OpenList(tid)
	pre := CursorPrefix(cur, 1)
	if len(pre) != 1 {
		t.Fatalf("prefix len %d", len(pre))
	}
	if got := CursorPrefix(cur, 0); len(got) != 0 {
		t.Fatal("empty prefix")
	}
}
