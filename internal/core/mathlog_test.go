package core

import "math"

// mathLog lets verify_test.go keep its import list minimal.
func mathLog(x float64) float64 { return math.Log(x) }
