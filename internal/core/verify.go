package core

import (
	"bytes"
	"math"
	"sort"

	"authtext/internal/index"
	"authtext/internal/mht"
	"authtext/internal/okapi"
	"authtext/internal/sig"
	"authtext/internal/textproc"
	"authtext/internal/vo"
)

// VerifyInput bundles everything the user has when checking a query result:
// the owner's published manifest and public key, the query, the result R
// with the delivered document contents, and the VO from the search engine.
type VerifyInput struct {
	Manifest *Manifest
	Verifier sig.Verifier
	// Tokens is the query token stream after the text pipeline; the client
	// derives f_{Q,t} and the canonical term order from it.
	Tokens []string
	R      int
	Result []ResultEntry
	// Contents delivers the result documents (needed to recompute their
	// committed digests).
	Contents map[index.DocID][]byte
	VO       *vo.VO
}

// Verify checks a query result against the correctness criteria of §3.1:
// result entries ordered by non-increasing scores that match the recomputed
// values, and no excluded document able to outscore the result tail. It
// returns nil iff the result is authentic; failures carry a VerifyError
// classifying the tampering.
func Verify(in *VerifyInput) error {
	m := in.Manifest
	if m == nil || in.VO == nil {
		return vErr(CodeMalformedVO, "missing manifest or VO")
	}
	if err := m.Validate(); err != nil {
		return vErr(CodeMalformedVO, "manifest: %v", err)
	}
	if in.VO.Generation != m.Generation {
		// The generation stamp is the server's claim of which publication
		// state produced this answer. A mismatch with the manifest the
		// client holds means a replayed (or prematurely served) answer —
		// flagged here before any cryptographic work. A server that lies
		// about the stamp instead faces the manifest-pinned checks below
		// (content tree, collection statistics) under the wrong state.
		return vErr(CodeStaleGeneration, "answer generation %d, manifest generation %d",
			in.VO.Generation, m.Generation)
	}
	algo, scheme := Algo(in.VO.Algo), Scheme(in.VO.Scheme)
	if algo != AlgoTRA && algo != AlgoTNRA {
		return vErr(CodeMalformedVO, "unknown algorithm %d", in.VO.Algo)
	}
	if scheme != SchemeMHT && scheme != SchemeCMHT {
		return vErr(CodeMalformedVO, "unknown scheme %d", in.VO.Scheme)
	}
	if in.R < 1 {
		return vErr(CodeMalformedVO, "result size %d", in.R)
	}
	if len(in.Result) > in.R {
		return vErr(CodeMalformedVO, "result has %d entries for r=%d", len(in.Result), in.R)
	}
	kind := KindFor(algo, scheme)
	baseHasher := sig.MustHasher(int(m.HashSize))
	hasher := mht.NewHasher(baseHasher)

	// Resolve the query: unique tokens in first-occurrence order, matched
	// against the VO's term proofs by name.
	counts := textproc.Counts(in.Tokens)
	var uniq []string
	seen := make(map[string]struct{}, len(in.Tokens))
	for _, tok := range in.Tokens {
		if _, dup := seen[tok]; !dup {
			seen[tok] = struct{}{}
			uniq = append(uniq, tok)
		}
	}
	byName := make(map[string]*vo.TermProof, len(in.VO.Terms))
	for i := range in.VO.Terms {
		t := &in.VO.Terms[i]
		if _, dup := byName[t.Name]; dup {
			return vErr(CodeMalformedVO, "duplicate term proof %q", t.Name)
		}
		if counts[t.Name] == 0 {
			return vErr(CodeMalformedVO, "term proof %q not in query", t.Name)
		}
		byName[t.Name] = t
	}

	q := &Query{}
	var termProofs []*vo.TermProof
	var unknown []string
	for _, tok := range uniq {
		tp := byName[tok]
		if tp == nil {
			unknown = append(unknown, tok)
			continue
		}
		q.Terms = append(q.Terms, QueryTerm{
			Name: tok,
			ID:   index.TermID(tp.TermID),
			FQ:   counts[tok],
			FT:   int(tp.FT),
			WQ:   okapi.QueryWeight(int(m.N), int(tp.FT), counts[tok]),
		})
		termProofs = append(termProofs, tp)
	}
	if len(q.Terms) > MaxQueryTerms {
		return vErr(CodeMalformedVO, "too many query terms: %d", len(q.Terms))
	}
	if m.VocabProofsEnabled {
		if err := verifyVocabProofs(m, hasher, unknown, in.VO.VocabProofs); err != nil {
			return err
		}
	}
	if len(q.Terms) == 0 {
		if len(in.Result) != 0 {
			return vErr(CodeSpurious, "result entries for a query with no dictionary terms")
		}
		return nil
	}

	// Authenticate every term's revealed prefix against its signed root.
	nq := len(q.Terms)
	prefixes := make([][]index.Posting, nq)
	exhausted := make([]bool, nq)
	dictWant := make(map[int][]byte)
	for i, tp := range termProofs {
		ft := int(tp.FT)
		kScore, kProof := int(tp.KScore), int(tp.KProof)
		if ft < 1 || kScore < 1 || kScore > kProof || kProof > ft {
			return vErr(CodeMalformedVO, "term %q: ft=%d kScore=%d kProof=%d", tp.Name, ft, kScore, kProof)
		}
		if len(tp.Docs) != kProof {
			return vErr(CodeMalformedVO, "term %q: %d revealed ids for kProof=%d", tp.Name, len(tp.Docs), kProof)
		}
		if algo == AlgoTNRA {
			if len(tp.Freqs) != kProof {
				return vErr(CodeMalformedVO, "term %q: missing frequencies", tp.Name)
			}
		} else if tp.Freqs != nil {
			return vErr(CodeMalformedVO, "term %q: unexpected frequencies in TRA VO", tp.Name)
		}

		posts := make([]index.Posting, kProof)
		leaves := make([][]byte, kProof)
		for j := 0; j < kProof; j++ {
			p := index.Posting{Doc: index.DocID(tp.Docs[j])}
			if algo == AlgoTNRA {
				p.W = tp.Freqs[j]
				if math.IsNaN(float64(p.W)) || p.W < 0 {
					return vErr(CodeMalformedVO, "term %q: invalid frequency at %d", tp.Name, j)
				}
			}
			posts[j] = p
			leaves[j] = kind.ListLeaf(p)
		}

		var root []byte
		var err error
		switch scheme {
		case SchemeMHT:
			want := make(map[int][]byte, kProof)
			for j := 0; j < kProof; j++ {
				want[j] = leaves[j]
			}
			root, err = mht.RootFromProof(hasher, ft, want, mht.Proof{Digests: tp.Digests})
		default:
			rho := ChainRho(int(m.BlockSize), int(m.HashSize))
			root, err = ChainRootFromPrefix(hasher, leaves, ft, rho, mht.Proof{Digests: tp.Digests})
		}
		if err != nil {
			return vErr(CodeBadTermProof, "term %q: %v", tp.Name, err)
		}
		if m.DictMode {
			if tp.Sig != nil {
				return vErr(CodeMalformedVO, "term %q: signature present in dictionary mode", tp.Name)
			}
			dictWant[int(tp.TermID)] = root
		} else {
			msg := TermRootMessage(kind, tp.Name, index.TermID(tp.TermID), tp.FT, root)
			if err := in.Verifier.Verify(msg, tp.Sig); err != nil {
				return vErr(CodeBadSignature, "term %q: %v", tp.Name, err)
			}
		}
		prefixes[i] = posts[:kScore]
		exhausted[i] = kScore == ft
	}
	if m.DictMode {
		dp := in.VO.DictProof
		if dp == nil {
			return vErr(CodeMalformedVO, "dictionary mode without dictionary proof")
		}
		if dp.M != m.M {
			return vErr(CodeMalformedVO, "dictionary proof m=%d, manifest m=%d", dp.M, m.M)
		}
		root, err := mht.RootFromProof(hasher, int(m.M), dictWant, mht.Proof{Digests: dp.Digests})
		if err != nil {
			return vErr(CodeBadTermProof, "dictionary proof: %v", err)
		}
		if !bytes.Equal(root, m.DictRoots[kind-1]) {
			return vErr(CodeBadTermProof, "dictionary root mismatch")
		}
	}

	var boost *Boost
	if m.Boosted {
		var err error
		boost, err = verifyAuthority(in, hasher, prefixes)
		if err != nil {
			return err
		}
	} else if in.VO.AuthorityProof != nil {
		return vErr(CodeMalformedVO, "authority proof for an unboosted collection")
	}

	if algo == AlgoTRA {
		return verifyTRA(in, baseHasher, hasher, q, prefixes, exhausted, boost)
	}
	return verifyTNRA(in, baseHasher, hasher, q, prefixes, exhausted, boost)
}

// verifyAuthority checks the authority-MHT multiproof covering every
// revealed document (§5 extension) and returns the Boost the scoring steps
// will apply.
func verifyAuthority(in *VerifyInput, hasher mht.Hasher, prefixes [][]index.Posting) (*Boost, error) {
	m := in.Manifest
	ap := in.VO.AuthorityProof
	if ap == nil {
		return nil, vErr(CodeMalformedVO, "boosted collection without authority proof")
	}
	seen := make(map[index.DocID]struct{})
	var docs []index.DocID
	for _, pre := range prefixes {
		for _, p := range pre {
			if _, ok := seen[p.Doc]; !ok {
				seen[p.Doc] = struct{}{}
				docs = append(docs, p.Doc)
			}
		}
	}
	sort.Slice(docs, func(a, b int) bool { return docs[a] < docs[b] })
	if len(ap.Values) != len(docs) {
		return nil, vErr(CodeMalformedVO, "authority proof covers %d documents, need %d", len(ap.Values), len(docs))
	}
	want := make(map[int][]byte, len(docs))
	authority := make(map[index.DocID]float64, len(docs))
	for i, d := range docs {
		if int(d) >= int(m.N) {
			return nil, vErr(CodeMalformedVO, "revealed doc %d outside collection", d)
		}
		want[int(d)] = EncodeAuthorityLeaf(d, ap.Values[i])
		authority[d] = float64(ap.Values[i])
	}
	root, err := mht.RootFromProof(hasher, int(m.N), want, mht.Proof{Digests: ap.Digests})
	if err != nil {
		return nil, vErr(CodeBadTermProof, "authority proof: %v", err)
	}
	if !bytes.Equal(root, m.AuthorityRoot) {
		return nil, vErr(CodeBadTermProof, "authority root mismatch")
	}
	return &Boost{
		Beta: m.Beta,
		AMax: m.AMax,
		Authority: func(d index.DocID) float64 {
			return authority[d]
		},
	}, nil
}

// verifyTRA checks a TRA result: every encountered document's score is
// recomputed from its document-MHT proof and compared against the result,
// and the cut-off threshold bounds everything unseen (§3.3).
func verifyTRA(in *VerifyInput, baseHasher sig.Hasher, hasher mht.Hasher, q *Query, prefixes [][]index.Posting, exhausted []bool, boost *Boost) error {
	enc := make(map[index.DocID]struct{})
	for _, pre := range prefixes {
		for _, p := range pre {
			enc[p.Doc] = struct{}{}
		}
	}
	resultSet := make(map[index.DocID]int, len(in.Result))
	for i, e := range in.Result {
		if _, dup := resultSet[e.Doc]; dup {
			return vErr(CodeSpurious, "duplicate result doc %d", e.Doc)
		}
		resultSet[e.Doc] = i
	}

	proofs := make(map[index.DocID]*vo.DocProof, len(in.VO.Docs))
	prev := -1
	for i := range in.VO.Docs {
		dp := &in.VO.Docs[i]
		if int(dp.Doc) <= prev {
			return vErr(CodeMalformedVO, "document proofs not strictly ascending")
		}
		prev = int(dp.Doc)
		if _, ok := enc[index.DocID(dp.Doc)]; !ok {
			return vErr(CodeMalformedVO, "document proof for unencountered doc %d", dp.Doc)
		}
		proofs[index.DocID(dp.Doc)] = dp
	}
	for d := range enc {
		if proofs[d] == nil {
			return vErr(CodeBadDocProof, "missing document proof for encountered doc %d", d)
		}
	}

	scores := make(map[index.DocID]float64, len(proofs))
	weights := make(map[index.DocID][]float32, len(proofs))
	for i := range in.VO.Docs {
		dp := &in.VO.Docs[i]
		w, err := verifyDocProof(in, baseHasher, hasher, q, dp)
		if err != nil {
			return err
		}
		d := index.DocID(dp.Doc)
		weights[d] = w
		scores[d] = Score(q, w) + boost.Score(d)
	}

	// Threshold from the cut-off head entries, frequencies taken from the
	// heads' verified document proofs.
	var thres float64
	for i := range q.Terms {
		if exhausted[i] {
			continue
		}
		head := prefixes[i][len(prefixes[i])-1].Doc
		thres += q.Terms[i].WQ * float64(weights[head][i])
	}

	m := in.Manifest
	for i, e := range in.Result {
		if _, ok := enc[e.Doc]; !ok {
			return vErr(CodeSpurious, "result doc %d never encountered", e.Doc)
		}
		if m.IsTombstoned(uint32(e.Doc)) {
			// The signed manifest's bitmap says this slot was removed; a
			// server cannot resurrect it.
			return vErr(CodeSpurious, "result doc %d is tombstoned", e.Doc)
		}
		if !proofs[e.Doc].InResult {
			return vErr(CodeBadContent, "result doc %d content not bound to its proof", e.Doc)
		}
		if e.Score != scores[e.Doc] {
			return vErr(CodeBadScore, "result doc %d: claimed %v, computed %v", e.Doc, e.Score, scores[e.Doc])
		}
		if i > 0 && in.Result[i-1].Score < e.Score {
			return vErr(CodeBadOrdering, "result not in non-increasing score order at %d", i)
		}
	}

	if len(in.Result) < in.R {
		// A short result is legitimate only when the lists are exhausted
		// and everything encountered is already in the result.
		for i := range exhausted {
			if !exhausted[i] {
				return vErr(CodeIncomplete, "short result with unexhausted list %q", q.Terms[i].Name)
			}
		}
		for d := range enc {
			if _, ok := resultSet[d]; !ok && !m.IsTombstoned(uint32(d)) {
				return vErr(CodeIncomplete, "short result omits encountered doc %d", d)
			}
		}
		return nil
	}

	sLast := in.Result[len(in.Result)-1].Score
	for d := range enc {
		if _, inR := resultSet[d]; inR {
			continue
		}
		if m.IsTombstoned(uint32(d)) {
			continue // removed slots cannot outscore anything
		}
		if scores[d] > sLast {
			return vErr(CodeIncomplete, "encountered doc %d outscores result tail (%v > %v)", d, scores[d], sLast)
		}
	}
	// Unseen matching documents are bounded by thres (+ β·A_max under the
	// boost extension); with every list fully revealed the bound is vacuous.
	if !allTrue(exhausted) && thres+boost.Max() > sLast {
		return vErr(CodeThreshold, "threshold %v exceeds result tail %v", thres+boost.Max(), sLast)
	}
	return nil
}

// verifyDocProof authenticates one document's query-term frequencies
// (Fig 8) and returns the per-query-term weight vector.
func verifyDocProof(in *VerifyInput, baseHasher sig.Hasher, hasher mht.Hasher, q *Query, dp *vo.DocProof) ([]float32, error) {
	n := int(dp.LeafCount)
	if n < 1 {
		return nil, vErr(CodeBadDocProof, "doc %d: empty term vector", dp.Doc)
	}
	if len(dp.Terms) != len(dp.Positions) || len(dp.Ws) != len(dp.Positions) {
		return nil, vErr(CodeMalformedVO, "doc %d: ragged reveal arrays", dp.Doc)
	}
	want := make(map[int][]byte, len(dp.Positions))
	prevPos := -1
	for j := range dp.Positions {
		p := int(dp.Positions[j])
		if p <= prevPos || p >= n {
			return nil, vErr(CodeBadDocProof, "doc %d: bad leaf position %d", dp.Doc, p)
		}
		if j > 0 && dp.Terms[j] <= dp.Terms[j-1] {
			return nil, vErr(CodeBadDocProof, "doc %d: leaf terms not ascending", dp.Doc)
		}
		prevPos = p
		want[p] = EncodeTermFreqLeaf(index.TermFreq{Term: index.TermID(dp.Terms[j]), W: dp.Ws[j]})
	}
	root, err := mht.RootFromProof(hasher, n, want, mht.Proof{Digests: dp.Digests})
	if err != nil {
		return nil, vErr(CodeBadDocProof, "doc %d: %v", dp.Doc, err)
	}

	var contentHash []byte
	if dp.InResult {
		content, ok := in.Contents[index.DocID(dp.Doc)]
		if !ok {
			return nil, vErr(CodeBadContent, "doc %d: result content missing", dp.Doc)
		}
		contentHash = baseHasher.Sum(content)
	} else {
		if len(dp.ContentHash) != baseHasher.Size() {
			return nil, vErr(CodeMalformedVO, "doc %d: content hash size", dp.Doc)
		}
		contentHash = dp.ContentHash
	}
	msg := DocRootMessage(index.DocID(dp.Doc), dp.LeafCount, contentHash, root)
	if err := in.Verifier.Verify(msg, dp.Sig); err != nil {
		if dp.InResult {
			// A bad signature here usually means the delivered content does
			// not hash to the committed digest.
			return nil, vErr(CodeBadContent, "doc %d: content/root signature mismatch", dp.Doc)
		}
		return nil, vErr(CodeBadSignature, "doc %d: %v", dp.Doc, err)
	}

	w := make([]float32, len(q.Terms))
	for i := range q.Terms {
		if q.Terms[i].WQ == 0 {
			continue // cannot affect any score or bound
		}
		wv, err := extractWeight(dp, n, uint32(q.Terms[i].ID))
		if err != nil {
			return nil, err
		}
		w[i] = wv
	}
	return w, nil
}

// extractWeight returns w_{d,t} from the revealed leaves, or 0 when the
// proof shows t absent (adjacent revealed leaves straddling t, or a
// revealed boundary leaf).
func extractWeight(dp *vo.DocProof, n int, t uint32) (float32, error) {
	for j := range dp.Terms {
		if dp.Terms[j] == t {
			return dp.Ws[j], nil
		}
	}
	for j := range dp.Terms {
		if dp.Terms[j] > t {
			if dp.Positions[j] == 0 {
				return 0, nil // t sorts before the first leaf
			}
			if j > 0 && dp.Positions[j-1] == dp.Positions[j]-1 && dp.Terms[j-1] < t {
				return 0, nil // t falls between two adjacent leaves
			}
			return 0, vErr(CodeBadDocProof, "doc %d: no absence evidence for term %d", dp.Doc, t)
		}
	}
	if k := len(dp.Positions); k > 0 && int(dp.Positions[k-1]) == n-1 {
		return 0, nil // t sorts after the last leaf
	}
	return 0, vErr(CodeBadDocProof, "doc %d: no absence evidence for term %d", dp.Doc, t)
}

// verifyTNRA re-derives the canonical TNRA evaluation from the revealed
// prefixes and checks the claimed result against it (§3.4), then
// authenticates the delivered contents against the collection's
// document-hash tree.
func verifyTNRA(in *VerifyInput, baseHasher sig.Hasher, hasher mht.Hasher, q *Query, prefixes [][]index.Posting, exhausted []bool, boost *Boost) error {
	if len(in.VO.Docs) != 0 {
		return vErr(CodeMalformedVO, "document proofs in a TNRA VO")
	}
	// The signed manifest's tombstone bitmap drives the same deterministic
	// skip rule the owner applied: removed slots are revealed but never
	// candidates.
	var dead func(index.DocID) bool
	if len(in.Manifest.Tombstones) != 0 {
		m := in.Manifest
		dead = func(d index.DocID) bool { return m.IsTombstoned(uint32(d)) }
	}
	ev := EvalTNRAWithBoost(q, prefixes, exhausted, in.R, boost, dead)
	if !ev.OK {
		return vErr(CodeBadConditions, "termination conditions do not hold over the revealed prefixes")
	}
	if len(in.Result) != len(ev.Result) {
		return vErr(CodeIncomplete, "result has %d entries, evaluation yields %d", len(in.Result), len(ev.Result))
	}
	for i := range in.Result {
		if in.Result[i].Doc != ev.Result[i].Doc {
			if _, known := ev.Bounds[in.Result[i].Doc]; !known {
				return vErr(CodeSpurious, "result doc %d not derivable from revealed prefixes", in.Result[i].Doc)
			}
			return vErr(CodeBadOrdering, "result position %d: doc %d, expected %d", i, in.Result[i].Doc, ev.Result[i].Doc)
		}
		if in.Result[i].Score != ev.Result[i].Score {
			return vErr(CodeBadScore, "result doc %d: claimed %v, computed %v", in.Result[i].Doc, in.Result[i].Score, ev.Result[i].Score)
		}
	}

	if len(in.Result) == 0 {
		return nil
	}
	cp := in.VO.ContentProof
	if cp == nil {
		return vErr(CodeBadContent, "missing content proof")
	}
	want := make(map[int][]byte, len(in.Result))
	for _, e := range in.Result {
		content, ok := in.Contents[e.Doc]
		if !ok {
			return vErr(CodeBadContent, "result doc %d content missing", e.Doc)
		}
		if int(e.Doc) >= int(in.Manifest.N) {
			return vErr(CodeMalformedVO, "result doc %d outside collection", e.Doc)
		}
		want[int(e.Doc)] = baseHasher.Sum(content)
	}
	root, err := mht.RootFromProof(hasher, int(in.Manifest.N), want, mht.Proof{Digests: cp.Digests})
	if err != nil {
		return vErr(CodeBadContent, "content proof: %v", err)
	}
	if !bytes.Equal(root, in.Manifest.DocHashRoot) {
		return vErr(CodeBadContent, "content root mismatch")
	}
	return nil
}

// verifyVocabProofs checks non-membership proofs for out-of-dictionary
// tokens against the name-ordered dictionary tree (extension; DESIGN.md §6).
func verifyVocabProofs(m *Manifest, hasher mht.Hasher, unknown []string, proofs []vo.VocabProof) error {
	byToken := make(map[string]*vo.VocabProof, len(proofs))
	for i := range proofs {
		p := &proofs[i]
		if _, dup := byToken[p.Token]; dup {
			return vErr(CodeMalformedVO, "duplicate vocabulary proof %q", p.Token)
		}
		byToken[p.Token] = p
	}
	mm := int(m.M)
	for _, tok := range unknown {
		p := byToken[tok]
		if p == nil {
			return vErr(CodeBadVocabProof, "no non-membership proof for %q", tok)
		}
		if len(p.Positions) != len(p.Names) || len(p.Positions) < 1 || len(p.Positions) > 2 {
			return vErr(CodeBadVocabProof, "%q: malformed proof", tok)
		}
		switch len(p.Positions) {
		case 1:
			pos, name := int(p.Positions[0]), p.Names[0]
			before := pos == 0 && name > tok
			after := pos == mm-1 && name < tok
			if !before && !after {
				return vErr(CodeBadVocabProof, "%q: boundary leaf does not exclude token", tok)
			}
		case 2:
			if p.Positions[1] != p.Positions[0]+1 {
				return vErr(CodeBadVocabProof, "%q: leaves not adjacent", tok)
			}
			if !(p.Names[0] < tok && tok < p.Names[1]) {
				return vErr(CodeBadVocabProof, "%q: leaves do not straddle token", tok)
			}
		}
		want := make(map[int][]byte, len(p.Positions))
		for j := range p.Positions {
			want[int(p.Positions[j])] = VocabLeaf(p.Names[j])
		}
		root, err := mht.RootFromProof(hasher, mm, want, mht.Proof{Digests: p.Digests})
		if err != nil {
			return vErr(CodeBadVocabProof, "%q: %v", tok, err)
		}
		if !bytes.Equal(root, m.NameDictRoot) {
			return vErr(CodeBadVocabProof, "%q: name-dictionary root mismatch", tok)
		}
	}
	return nil
}
