package core

import (
	"testing"

	"authtext/internal/index"
	"authtext/internal/mht"
	"authtext/internal/sig"
	"authtext/internal/vo"
)

// verifyFixture hand-builds a minimal one-term TNRA collection so the
// verifier's edge cases can be exercised without the engine: a single list
// of four postings over five documents.
type verifyFixture struct {
	manifest *Manifest
	signer   sig.Signer
	hasher   mht.Hasher
	base     sig.Hasher
	postings []index.Posting
	contents map[index.DocID][]byte
	docHash  [][]byte
}

func newVerifyFixture(t *testing.T) *verifyFixture {
	t.Helper()
	signer, err := sig.NewHMACSigner([]byte("verify-fixture"), 64)
	if err != nil {
		t.Fatal(err)
	}
	base := sig.MustHasher(16)
	f := &verifyFixture{
		signer:   signer,
		base:     base,
		hasher:   mht.NewHasher(base),
		postings: []index.Posting{{Doc: 2, W: 0.9}, {Doc: 0, W: 0.7}, {Doc: 4, W: 0.5}, {Doc: 1, W: 0.2}},
		contents: map[index.DocID][]byte{},
	}
	for d := 0; d < 5; d++ {
		f.contents[index.DocID(d)] = []byte{byte(d), 0xAA}
		f.docHash = append(f.docHash, base.Sum(f.contents[index.DocID(d)]))
	}
	f.manifest = &Manifest{
		N: 5, M: 1, AvgLen: 3, K1: 1.2, B: 0.75,
		BlockSize: 1024, HashSize: 16,
		DocHashRoot: mht.Root(f.hasher, f.docHash),
	}
	return f
}

// answer builds a legitimate TNRA-MHT answer revealing the first k entries.
func (f *verifyFixture) answer(t *testing.T, k, r int) (*vo.VO, []ResultEntry, map[index.DocID][]byte) {
	t.Helper()
	leaves := KindTNRAMHT.ListLeaves(f.postings)
	want := make([]int, k)
	wantData := make(map[int][]byte, k)
	for i := 0; i < k; i++ {
		want[i] = i
		wantData[i] = leaves[i]
	}
	proof, err := mht.Prove(f.hasher, leaves, want)
	if err != nil {
		t.Fatal(err)
	}
	root := mht.Root(f.hasher, leaves)
	sigBytes, err := f.signer.Sign(TermRootMessage(KindTNRAMHT, "alpha", 0, uint32(len(f.postings)), root))
	if err != nil {
		t.Fatal(err)
	}
	tp := vo.TermProof{
		TermID: 0, FT: uint32(len(f.postings)), Name: "alpha",
		KScore: uint32(k), KProof: uint32(k),
		Docs: make([]uint32, k), Freqs: make([]float32, k),
		Digests: proof.Digests, Sig: sigBytes,
	}
	for i := 0; i < k; i++ {
		tp.Docs[i] = uint32(f.postings[i].Doc)
		tp.Freqs[i] = f.postings[i].W
	}

	// Canonical evaluation for the claimed result.
	q := f.query(k)
	prefixes := [][]index.Posting{f.postings[:k]}
	ev := EvalTNRA(q, prefixes, []bool{k == len(f.postings)}, r)
	result := ev.Result

	contents := map[index.DocID][]byte{}
	positions := make([]int, 0, len(result))
	wantHash := make(map[int][]byte)
	for _, e := range result {
		contents[e.Doc] = f.contents[e.Doc]
		positions = append(positions, int(e.Doc))
	}
	sortInts2(positions)
	for _, p := range positions {
		wantHash[p] = f.docHash[p]
	}
	cproof, err := mht.Prove(f.hasher, f.docHash, positions)
	if err != nil {
		t.Fatal(err)
	}
	v := &vo.VO{
		Algo: uint8(AlgoTNRA), Scheme: uint8(SchemeMHT),
		Terms:        []vo.TermProof{tp},
		ContentProof: &vo.ContentProof{Digests: cproof.Digests},
	}
	return v, result, contents
}

func sortInts2(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

func (f *verifyFixture) query(k int) *Query {
	return &Query{Terms: []QueryTerm{{
		Name: "alpha", ID: 0, FQ: 1, FT: len(f.postings),
		WQ: 1.0, // any positive weight; the fixture controls scores directly
	}}}
}

func (f *verifyFixture) input(v *vo.VO, result []ResultEntry, contents map[index.DocID][]byte, r int) *VerifyInput {
	return &VerifyInput{
		Manifest: f.manifest,
		Verifier: f.signer.Verifier(),
		Tokens:   []string{"alpha"},
		R:        r,
		Result:   result,
		Contents: contents,
		VO:       v,
	}
}

// The fixture's query weight differs from okapi.QueryWeight(n, ft, fQ), so
// verification must be run against a query the client would derive. Align
// the fixture weight with the derived one.
func TestVerifyFixtureBaseline(t *testing.T) {
	f := newVerifyFixture(t)
	v, result, contents := f.answerDerived(t, 3, 2)
	if err := Verify(f.input(v, result, contents, 2)); err != nil {
		t.Fatalf("baseline rejected: %v", err)
	}
}

// answerDerived is answer() but computes the result with the same w_{Q,t}
// the verifier will derive from (n, ft, fQ).
func (f *verifyFixture) answerDerived(t *testing.T, k, r int) (*vo.VO, []ResultEntry, map[index.DocID][]byte) {
	t.Helper()
	v, _, _ := f.answer(t, k, r)
	q := clientQuery(f, 1)
	prefixes := [][]index.Posting{f.postings[:k]}
	ev := EvalTNRA(q, prefixes, []bool{k == len(f.postings)}, r)
	contents := map[index.DocID][]byte{}
	positions := make([]int, 0, len(ev.Result))
	for _, e := range ev.Result {
		contents[e.Doc] = f.contents[e.Doc]
		positions = append(positions, int(e.Doc))
	}
	sortInts2(positions)
	cproof, err := mht.Prove(f.hasher, f.docHash, positions)
	if err != nil {
		t.Fatal(err)
	}
	v.ContentProof = &vo.ContentProof{Digests: cproof.Digests}
	return v, ev.Result, contents
}

func clientQuery(f *verifyFixture, fq int) *Query {
	// Mirror the verifier's derivation.
	return &Query{Terms: []QueryTerm{{
		Name: "alpha", ID: 0, FQ: fq, FT: len(f.postings),
		WQ: queryWeightForTest(int(f.manifest.N), len(f.postings), fq),
	}}}
}

func queryWeightForTest(n, ft, fq int) float64 {
	// Same formula as okapi.QueryWeight; duplicated here to keep the
	// fixture self-contained and to catch accidental formula drift.
	if fq <= 0 || ft <= 0 || ft > n {
		return 0
	}
	v := ln((float64(n) - float64(ft) + 0.5) / (float64(ft) + 0.5))
	if v < 0 {
		return 0
	}
	return v * float64(fq)
}

func ln(x float64) float64 {
	// Delegate to the standard library through a tiny indirection so the
	// test file needs no extra import block churn.
	return mathLog(x)
}

func TestVerifyRejectsStructuralProblems(t *testing.T) {
	f := newVerifyFixture(t)
	r := 2
	cases := []struct {
		name   string
		mutate func(v *vo.VO, result *[]ResultEntry, contents map[index.DocID][]byte, in *VerifyInput)
		code   VerifyCode
	}{
		{"nil manifest", func(v *vo.VO, res *[]ResultEntry, c map[index.DocID][]byte, in *VerifyInput) {
			in.Manifest = nil
		}, CodeMalformedVO},
		{"bad algo", func(v *vo.VO, res *[]ResultEntry, c map[index.DocID][]byte, in *VerifyInput) {
			v.Algo = 99
		}, CodeMalformedVO},
		{"bad scheme", func(v *vo.VO, res *[]ResultEntry, c map[index.DocID][]byte, in *VerifyInput) {
			v.Scheme = 99
		}, CodeMalformedVO},
		{"r zero", func(v *vo.VO, res *[]ResultEntry, c map[index.DocID][]byte, in *VerifyInput) {
			in.R = 0
		}, CodeMalformedVO},
		{"oversized result", func(v *vo.VO, res *[]ResultEntry, c map[index.DocID][]byte, in *VerifyInput) {
			*res = append(*res, (*res)[0], (*res)[0], (*res)[0])
		}, CodeMalformedVO},
		{"duplicate term proof", func(v *vo.VO, res *[]ResultEntry, c map[index.DocID][]byte, in *VerifyInput) {
			v.Terms = append(v.Terms, v.Terms[0])
		}, CodeMalformedVO},
		{"unqueried term proof", func(v *vo.VO, res *[]ResultEntry, c map[index.DocID][]byte, in *VerifyInput) {
			extra := v.Terms[0]
			extra.Name = "beta"
			v.Terms = append(v.Terms, extra)
		}, CodeMalformedVO},
		{"kscore zero", func(v *vo.VO, res *[]ResultEntry, c map[index.DocID][]byte, in *VerifyInput) {
			v.Terms[0].KScore = 0
		}, CodeMalformedVO},
		{"kproof beyond ft", func(v *vo.VO, res *[]ResultEntry, c map[index.DocID][]byte, in *VerifyInput) {
			v.Terms[0].KProof = v.Terms[0].FT + 1
		}, CodeMalformedVO},
		{"missing freqs", func(v *vo.VO, res *[]ResultEntry, c map[index.DocID][]byte, in *VerifyInput) {
			v.Terms[0].Freqs = nil
		}, CodeMalformedVO},
		{"negative frequency", func(v *vo.VO, res *[]ResultEntry, c map[index.DocID][]byte, in *VerifyInput) {
			v.Terms[0].Freqs[0] = -1
		}, CodeMalformedVO},
		{"doc proofs in TNRA", func(v *vo.VO, res *[]ResultEntry, c map[index.DocID][]byte, in *VerifyInput) {
			v.Docs = []vo.DocProof{{Doc: 0, LeafCount: 1}}
		}, CodeMalformedVO},
		{"missing content proof", func(v *vo.VO, res *[]ResultEntry, c map[index.DocID][]byte, in *VerifyInput) {
			v.ContentProof = nil
		}, CodeBadContent},
		{"missing content", func(v *vo.VO, res *[]ResultEntry, c map[index.DocID][]byte, in *VerifyInput) {
			delete(c, (*res)[0].Doc)
		}, CodeBadContent},
		{"tampered content", func(v *vo.VO, res *[]ResultEntry, c map[index.DocID][]byte, in *VerifyInput) {
			d := (*res)[0].Doc
			c[d] = append([]byte{0xFF}, c[d]...)
		}, CodeBadContent},
		{"inflated claimed score", func(v *vo.VO, res *[]ResultEntry, c map[index.DocID][]byte, in *VerifyInput) {
			(*res)[0].Score += 1
		}, CodeBadScore},
		{"foreign result doc", func(v *vo.VO, res *[]ResultEntry, c map[index.DocID][]byte, in *VerifyInput) {
			(*res)[0].Doc = 3 // doc 3 never appears in the revealed prefix
			c[3] = f.contents[3]
		}, CodeSpurious},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, result, contents := f.answerDerived(t, 3, r)
			in := f.input(v, result, contents, r)
			tc.mutate(v, &in.Result, in.Contents, in)
			err := Verify(in)
			if err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			if CodeOf(err) != tc.code {
				t.Fatalf("%s: got %v, want code %v", tc.name, err, tc.code)
			}
		})
	}
}

func TestVerifyEmptyQueryPaths(t *testing.T) {
	f := newVerifyFixture(t)
	in := &VerifyInput{
		Manifest: f.manifest,
		Verifier: f.signer.Verifier(),
		Tokens:   []string{"unknown-token"},
		R:        3,
		VO:       &vo.VO{Algo: uint8(AlgoTNRA), Scheme: uint8(SchemeMHT)},
	}
	if err := Verify(in); err != nil {
		t.Fatalf("empty-query verification failed: %v", err)
	}
	// Results for a no-term query are spurious by definition.
	in.Result = []ResultEntry{{Doc: 0, Score: 1}}
	if err := Verify(in); CodeOf(err) != CodeSpurious {
		t.Fatalf("got %v, want spurious", err)
	}
}

func TestExtractWeightEvidence(t *testing.T) {
	dp := &vo.DocProof{
		Doc:       7,
		LeafCount: 6,
		// Revealed leaves at positions 1,2 with terms 10,20 and position 5
		// (the last leaf) with term 40.
		Positions: []uint32{1, 2, 5},
		Terms:     []uint32{10, 20, 40},
		Ws:        []float32{0.1, 0.2, 0.4},
	}
	// Present term.
	if w, err := extractWeight(dp, 6, 20); err != nil || w != 0.2 {
		t.Fatalf("present term: %v %v", w, err)
	}
	// Absent between adjacent revealed leaves (positions 1,2).
	if w, err := extractWeight(dp, 6, 15); err != nil || w != 0 {
		t.Fatalf("absent between: %v %v", w, err)
	}
	// Absent after last leaf (position 5 == n-1).
	if w, err := extractWeight(dp, 6, 99); err != nil || w != 0 {
		t.Fatalf("absent after: %v %v", w, err)
	}
	// No evidence: term between positions 2 and 5 (not adjacent).
	if _, err := extractWeight(dp, 6, 30); err == nil {
		t.Fatal("gap accepted as absence evidence")
	}
	// Before first revealed position (position 1 is not position 0).
	if _, err := extractWeight(dp, 6, 5); err == nil {
		t.Fatal("non-boundary prefix accepted")
	}
	// With position 0 revealed, smaller terms are provably absent.
	dp2 := &vo.DocProof{Doc: 1, LeafCount: 3, Positions: []uint32{0}, Terms: []uint32{10}, Ws: []float32{0.5}}
	if w, err := extractWeight(dp2, 3, 5); err != nil || w != 0 {
		t.Fatalf("absent before first: %v %v", w, err)
	}
}
