package core

import (
	"math"
	"testing"

	"authtext/internal/index"
)

// The golden tests replay the paper's worked example: the inverted index of
// Figure 1 and the query "sleeps in the dark" with r = 2, checking the TRA
// trace of Figure 6 and the TNRA trace of Figure 11 iteration by iteration.

// figure6Query reproduces the query of Figs 6/11 with the paper's exact
// w_{Q,t} values and inverted lists.
func figure6Query() (*Query, *fixedSource) {
	lists := map[index.TermID][]index.Posting{
		0: {{Doc: 6, W: 0.079}}, // sleeps
		1: {{Doc: 6, W: 0.159}, {Doc: 2, W: 0.148}, {Doc: 5, W: 0.142},
			{Doc: 1, W: 0.058}, {Doc: 7, W: 0.058}, {Doc: 8, W: 0.053}}, // in
		2: {{Doc: 5, W: 0.265}, {Doc: 3, W: 0.263}, {Doc: 6, W: 0.200},
			{Doc: 1, W: 0.159}, {Doc: 2, W: 0.148}, {Doc: 4, W: 0.125}}, // the
		3: {{Doc: 6, W: 0.079}}, // dark
	}
	q := &Query{Terms: []QueryTerm{
		{Name: "sleeps", ID: 0, FQ: 1, FT: 1, WQ: 2.3979},
		{Name: "in", ID: 1, FQ: 1, FT: 6, WQ: 1.0986},
		{Name: "the", ID: 2, FQ: 1, FT: 6, WQ: 0.9808},
		{Name: "dark", ID: 3, FQ: 1, FT: 6, WQ: 2.3979},
	}}
	return q, &fixedSource{lists: lists}
}

// fixedSource serves hand-built lists and derives document vectors from
// them, using the query-term ids as term ids.
type fixedSource struct {
	lists map[index.TermID][]index.Posting
}

func (f *fixedSource) OpenList(t index.TermID) (Cursor, error) {
	return &memCursor{list: f.lists[t]}, nil
}

func (f *fixedSource) DocVector(d index.DocID) ([]index.TermFreq, error) {
	var vec []index.TermFreq
	for t := index.TermID(0); int(t) < len(f.lists); t++ {
		for _, p := range f.lists[t] {
			if p.Doc == d {
				vec = append(vec, index.TermFreq{Term: t, W: p.W})
			}
		}
	}
	return vec, nil
}

func TestTRAFigure6Trace(t *testing.T) {
	q, src := figure6Query()
	var events []TraceEvent
	out, err := TRA(q, src, src, 2, func(e TraceEvent) { events = append(events, e) })
	if err != nil {
		t.Fatal(err)
	}

	// Fig 6: thres per iteration, the popped entry, and termination at
	// iteration 6.
	wantThres := []float64{0.8135, 0.8115, 0.7497, 0.7095, 0.5201, 0.3306}
	wantPops := []struct {
		term int // query term position: 0 sleeps, 1 in, 2 the, 3 dark
		doc  index.DocID
	}{
		{2, 5}, {2, 3}, {2, 6}, {0, 6}, {3, 6},
	}
	if len(events) != 6 {
		t.Fatalf("%d trace events, want 6", len(events))
	}
	for i, e := range events {
		if math.Abs(e.Thres-wantThres[i]) > 5e-4 {
			t.Errorf("iteration %d: thres = %.4f, want %.4f", i+1, e.Thres, wantThres[i])
		}
		if i < 5 {
			if e.Terminated {
				t.Fatalf("iteration %d terminated early", i+1)
			}
			if e.Term != wantPops[i].term || e.Entry.Doc != wantPops[i].doc {
				t.Errorf("iteration %d: popped term %d doc %d, want term %d doc %d",
					i+1, e.Term, e.Entry.Doc, wantPops[i].term, wantPops[i].doc)
			}
		}
	}
	if !events[5].Terminated {
		t.Fatal("iteration 6 did not terminate")
	}

	// Result: ⟨6, 0.750⟩, ⟨5, 0.416⟩.
	if len(out.Result) != 2 {
		t.Fatalf("result size %d, want 2", len(out.Result))
	}
	if out.Result[0].Doc != 6 || math.Abs(out.Result[0].Score-0.750) > 5e-4 {
		t.Errorf("result[0] = %+v, want ⟨6, 0.750⟩", out.Result[0])
	}
	if out.Result[1].Doc != 5 || math.Abs(out.Result[1].Score-0.416) > 5e-4 {
		t.Errorf("result[1] = %+v, want ⟨5, 0.416⟩", out.Result[1])
	}

	// Revealed prefixes: sleeps and dark exhausted after one pop; 'in' only
	// its head; 'the' three pops plus the head ⟨1, 0.159⟩.
	wantK := []int{1, 1, 4, 1}
	for i, k := range out.KScore {
		if k != wantK[i] {
			t.Errorf("KScore[%d] = %d, want %d", i, k, wantK[i])
		}
	}
	if !out.Exhausted[0] || out.Exhausted[1] || out.Exhausted[2] || !out.Exhausted[3] {
		t.Errorf("exhausted flags %v", out.Exhausted)
	}
	// Encountered: popped {5, 3, 6} plus heads {6 (in), 1 (the)}.
	wantEnc := []index.DocID{1, 3, 5, 6}
	if len(out.Encountered) != len(wantEnc) {
		t.Fatalf("encountered %v, want %v", out.Encountered, wantEnc)
	}
	for i := range wantEnc {
		if out.Encountered[i] != wantEnc[i] {
			t.Fatalf("encountered %v, want %v", out.Encountered, wantEnc)
		}
	}
}

func TestTNRAFigure11Trace(t *testing.T) {
	q, src := figure6Query()
	var events []TraceEvent
	out, err := TNRA(q, src, 2, func(e TraceEvent) { events = append(events, e) })
	if err != nil {
		t.Fatal(err)
	}

	// Fig 11: eight pops, termination at iteration 9.
	// Fig 11 prints thres to three decimals; 1e-3 absorbs its rounding.
	wantThres := []float64{0.814, 0.812, 0.750, 0.710, 0.520, 0.331, 0.319, 0.312, 0.220}
	const thresTol = 1e-3
	wantPops := []struct {
		term int
		doc  index.DocID
	}{
		{2, 5}, {2, 3}, {2, 6}, {0, 6}, {3, 6}, {1, 6}, {1, 2}, {1, 5},
	}
	if len(events) != 9 {
		t.Fatalf("%d trace events, want 9", len(events))
	}
	for i, e := range events {
		if math.Abs(e.Thres-wantThres[i]) > thresTol {
			t.Errorf("iteration %d: thres = %.4f, want %.4f", i+1, e.Thres, wantThres[i])
		}
		if i < 8 {
			if e.Terminated {
				t.Fatalf("iteration %d terminated early", i+1)
			}
			if e.Term != wantPops[i].term || e.Entry.Doc != wantPops[i].doc {
				t.Errorf("iteration %d: popped term %d doc %d, want term %d doc %d",
					i+1, e.Term, e.Entry.Doc, wantPops[i].term, wantPops[i].doc)
			}
		}
	}
	if !events[8].Terminated {
		t.Fatal("iteration 9 did not terminate")
	}

	// Result: ⟨6, 0.750⟩, ⟨5, 0.416⟩ with converged bounds.
	if len(out.Result) != 2 {
		t.Fatalf("result size %d, want 2", len(out.Result))
	}
	if out.Result[0].Doc != 6 || math.Abs(out.Result[0].Score-0.750) > 5e-4 {
		t.Errorf("result[0] = %+v, want ⟨6, 0.750⟩", out.Result[0])
	}
	if out.Result[1].Doc != 5 || math.Abs(out.Result[1].Score-0.416) > 5e-4 {
		t.Errorf("result[1] = %+v, want ⟨5, 0.416⟩", out.Result[1])
	}

	// Bounds of non-result candidates at termination (iteration 8's row,
	// tightened by the revealed heads): d3 = ⟨0.258, 0.322⟩.
	b3 := out.Bounds[3]
	if math.Abs(b3.SLB-0.258) > 5e-4 || math.Abs(b3.SUB-0.322) > 5e-4 {
		t.Errorf("bounds(d3) = ⟨%.4f, %.4f⟩, want ⟨0.258, 0.322⟩", b3.SLB, b3.SUB)
	}
	// Final threshold 0.220.
	if math.Abs(out.Thres-0.220) > 5e-4 {
		t.Errorf("thres = %.4f, want 0.220", out.Thres)
	}
}

func TestTNRAFigure11BoundEvolution(t *testing.T) {
	// Spot-check the SLB/SUB bookkeeping of iterations 4 and 5 (Fig 11):
	// after popping ⟨6,0.079⟩ from 'sleeps', d6 = ⟨0.386, 0.750⟩ and the
	// exhausted list's contribution is deducted from other docs' SUB:
	// d5 = ⟨0.260, 0.624⟩ after iteration 4.
	q, src := figure6Query()
	prefixes := [][]index.Posting{
		{{Doc: 6, W: 0.079}}, // sleeps popped (exhausted)
		{{Doc: 6, W: 0.159}}, // in: head only
		{{Doc: 5, W: 0.265}, {Doc: 3, W: 0.263}, {Doc: 6, W: 0.200}}, // the: 3 pops
		{{Doc: 6, W: 0.079}}, // dark: head only
	}
	_ = src
	ev := EvalTNRA(q, prefixes, []bool{true, false, false, false}, 2)
	// The canonical evaluation treats heads as known, so d6 has all four
	// frequencies: SLB = SUB = 0.750.
	b6 := ev.Bounds[6]
	if math.Abs(b6.SLB-0.750) > 5e-4 {
		t.Errorf("SLB(d6) = %.4f, want 0.750", b6.SLB)
	}
	// d5 knows only 'the'; bounds from heads: in ≤ 0.159, dark ≤ 0.079.
	b5 := ev.Bounds[5]
	if math.Abs(b5.SLB-0.260) > 5e-4 {
		t.Errorf("SLB(d5) = %.4f, want 0.260", b5.SLB)
	}
	wantSUB := 0.265*0.9808 + 0.159*1.0986 + 0.079*2.3979
	if math.Abs(b5.SUB-wantSUB) > 5e-4 {
		t.Errorf("SUB(d5) = %.4f, want %.4f", b5.SUB, wantSUB)
	}
}
