package core

import (
	"encoding/binary"
	"math"

	"authtext/internal/index"
)

// Boost implements the §5 future-work extension: similarity scores of
// matching documents are raised by a certified static authority score,
//
//	S'(d|Q) = S(d|Q) + β·A(d),   A(d) ∈ [0, 1],
//
// applied only to documents containing at least one query term (an
// authority boost reorders matches; it does not make non-matches
// retrievable). The owner commits the authority vector in an
// authority-MHT whose root, together with β and max_d A(d), is signed in
// the manifest; the server proves A(d) for every revealed document and
// the client bounds unseen matches by thres + β·A_max.
type Boost struct {
	// Beta is the boost weight β (query-independent, from the manifest).
	Beta float64
	// AMax is max_d A(d), committed in the manifest: the bound for
	// documents whose authority the VO does not reveal.
	AMax float64
	// Authority returns A(d); it must cover every document the caller
	// scores (the full pinned vector server-side, the verified VO values
	// client-side).
	Authority func(index.DocID) float64
}

// Score returns β·A(d); a nil Boost scores 0 (plain Okapi ranking).
func (b *Boost) Score(d index.DocID) float64 {
	if b == nil {
		return 0
	}
	return b.Beta * b.Authority(d)
}

// Max returns β·A_max, the boost bound for unrevealed documents.
func (b *Boost) Max() float64 {
	if b == nil {
		return 0
	}
	return b.Beta * b.AMax
}

// EncodeAuthorityLeaf encodes one authority-MHT leaf ⟨d, A(d)⟩.
func EncodeAuthorityLeaf(d index.DocID, a float32) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint32(b, uint32(d))
	binary.BigEndian.PutUint32(b[4:], math.Float32bits(a))
	return b
}
