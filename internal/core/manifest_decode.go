package core

import (
	"encoding/binary"
	"errors"
	"math"
)

// DecodeManifest parses the canonical encoding produced by
// Manifest.Encode. Owners publish exactly the signed bytes, so clients can
// verify the signature over the received buffer and then decode it.
func DecodeManifest(b []byte) (*Manifest, error) {
	const prefix = "authtext/manifest/v1"
	if len(b) < len(prefix) || string(b[:len(prefix)]) != prefix {
		return nil, errors.New("core: not a manifest")
	}
	r := manifestReader{b: b[len(prefix):]}
	m := &Manifest{}
	m.N = r.u32()
	m.M = r.u32()
	m.AvgLen = r.f64()
	m.K1 = r.f64()
	m.B = r.f64()
	m.BlockSize = r.u32()
	m.HashSize = r.u8()
	flags := r.u8()
	m.DictMode = flags&1 != 0
	m.VocabProofsEnabled = flags&2 != 0
	m.Boosted = flags&4 != 0
	tombstoned := flags&8 != 0
	m.DocHashRoot = r.sized()
	for i := range m.DictRoots {
		m.DictRoots[i] = r.sized()
	}
	m.NameDictRoot = r.sized()
	m.Beta = r.f64()
	m.AMax = r.f64()
	m.AuthorityRoot = r.sized()
	// Optional trailing generation (live collections only; see
	// Manifest.Encode). A zero value would have been omitted by the
	// encoder, so reject it to keep the encoding canonical. When the
	// tombstone flag is set the trailing section is mandatory and longer:
	// generation, live count, and the sized removal bitmap.
	switch {
	case tombstoned:
		m.Generation = r.u64()
		if r.err == nil && m.Generation == 0 {
			return nil, errors.New("core: non-canonical zero generation field")
		}
		m.Live = r.u32()
		bmLen := r.u32()
		if r.err == nil && int(bmLen) != tombstoneLen(m.N) {
			return nil, errors.New("core: manifest tombstone bitmap length mismatch")
		}
		if bm := r.take(int(bmLen)); bm != nil {
			m.Tombstones = append([]byte(nil), bm...)
		}
	case r.err == nil && len(r.b)-r.off == 8:
		m.Generation = r.u64()
		if m.Generation == 0 {
			return nil, errors.New("core: non-canonical zero generation field")
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != r.off {
		return nil, errors.New("core: trailing bytes after manifest")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

type manifestReader struct {
	b   []byte
	off int
	err error
}

func (r *manifestReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = errors.New("core: truncated manifest")
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *manifestReader) u8() uint8 {
	v := r.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

func (r *manifestReader) u32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint32(v)
}

func (r *manifestReader) u64() uint64 {
	v := r.take(8)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint64(v)
}

func (r *manifestReader) f64() float64 {
	v := r.take(8)
	if v == nil {
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(v))
}

func (r *manifestReader) sized() []byte {
	ln := r.take(2)
	if ln == nil {
		return nil
	}
	n := int(binary.BigEndian.Uint16(ln))
	if n == 0 {
		return nil
	}
	v := r.take(n)
	if v == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, v)
	return out
}
