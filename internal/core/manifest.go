package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"authtext/internal/sig"
)

// Manifest is the owner-published collection metadata the client needs to
// verify results: the collection size n (for w_{Q,t}), the structural
// parameters, and the roots of the collection-wide trees. The owner signs
// the canonical encoding once at publication time; everything else a query
// needs arrives in the VO.
type Manifest struct {
	N         uint32 // number of documents
	M         uint32 // dictionary size
	AvgLen    float64
	K1, B     float64
	BlockSize uint32
	HashSize  uint8
	// DictMode selects the dictionary-MHT space optimisation: lists carry
	// no individual signatures; DictRoots[kind] commits all roots of that
	// structure kind.
	DictMode bool
	// VocabProofsEnabled selects the vocabulary non-membership extension.
	VocabProofsEnabled bool
	// DocHashRoot is the root over h(doc_0..n−1) (content authentication
	// for TNRA results).
	DocHashRoot []byte
	// DictRoots holds, per StructureKind (index kind−1), the dictionary-MHT
	// root over that kind's term roots. Empty unless DictMode.
	DictRoots [4][]byte
	// NameDictRoot is the root of the name-ordered dictionary tree. Empty
	// unless VocabProofsEnabled.
	NameDictRoot []byte
	// Boosted enables the §5 authority-boost extension: result scores are
	// S(d|Q) + Beta·A(d) with A committed under AuthorityRoot and bounded
	// by AMax.
	Boosted       bool
	Beta          float64
	AMax          float64
	AuthorityRoot []byte
	// Generation numbers the publication state of a live collection
	// (docs/UPDATES.md). 0 means a static, build-once collection; live
	// collections start at 1 and every accepted update increments it. The
	// field is inside the signed encoding, so a server cannot claim a
	// generation the owner never signed; clients additionally refuse to
	// move to a manifest with a lower generation than one they have
	// already accepted (rollback = tampering).
	Generation uint64
}

// Encode produces the canonical signed encoding of the manifest.
func (m *Manifest) Encode() []byte {
	b := make([]byte, 0, 128)
	b = append(b, "authtext/manifest/v1"...)
	b = binary.BigEndian.AppendUint32(b, m.N)
	b = binary.BigEndian.AppendUint32(b, m.M)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(m.AvgLen))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(m.K1))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(m.B))
	b = binary.BigEndian.AppendUint32(b, m.BlockSize)
	b = append(b, m.HashSize)
	var flags byte
	if m.DictMode {
		flags |= 1
	}
	if m.VocabProofsEnabled {
		flags |= 2
	}
	if m.Boosted {
		flags |= 4
	}
	b = append(b, flags)
	b = appendSized(b, m.DocHashRoot)
	for _, r := range m.DictRoots {
		b = appendSized(b, r)
	}
	b = appendSized(b, m.NameDictRoot)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(m.Beta))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(m.AMax))
	b = appendSized(b, m.AuthorityRoot)
	// The generation is a trailing extension: static collections
	// (generation 0) encode exactly the original v1 layout, so their
	// signatures, snapshots and golden fixtures are unaffected, while live
	// collections (generation ≥ 1) sign the extra 8 bytes.
	if m.Generation != 0 {
		b = binary.BigEndian.AppendUint64(b, m.Generation)
	}
	return b
}

func appendSized(b, v []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(v)))
	return append(b, v...)
}

// Validate checks internal consistency before use.
func (m *Manifest) Validate() error {
	if m.N == 0 || m.M == 0 {
		return errors.New("core: manifest has empty collection")
	}
	if m.HashSize < 8 || m.HashSize > 32 {
		return fmt.Errorf("core: manifest hash size %d", m.HashSize)
	}
	if m.BlockSize < 64 {
		return fmt.Errorf("core: manifest block size %d", m.BlockSize)
	}
	if len(m.DocHashRoot) != int(m.HashSize) {
		return errors.New("core: manifest doc-hash root size mismatch")
	}
	if m.DictMode {
		for k, r := range m.DictRoots {
			if len(r) != int(m.HashSize) {
				return fmt.Errorf("core: manifest dict root %d size mismatch", k)
			}
		}
	}
	if m.VocabProofsEnabled && len(m.NameDictRoot) != int(m.HashSize) {
		return errors.New("core: manifest name-dict root size mismatch")
	}
	if m.Boosted {
		if len(m.AuthorityRoot) != int(m.HashSize) {
			return errors.New("core: manifest authority root size mismatch")
		}
		if m.Beta < 0 || math.IsNaN(m.Beta) || math.IsInf(m.Beta, 0) {
			return fmt.Errorf("core: manifest beta %v", m.Beta)
		}
		if m.AMax < 0 || m.AMax > 1 || math.IsNaN(m.AMax) {
			return fmt.Errorf("core: manifest authority max %v", m.AMax)
		}
	}
	return nil
}

// VerifyManifest checks the owner's signature over the manifest.
func VerifyManifest(m *Manifest, sigBytes []byte, v sig.Verifier) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if err := v.Verify(m.Encode(), sigBytes); err != nil {
		return fmt.Errorf("core: manifest signature: %w", err)
	}
	return nil
}
