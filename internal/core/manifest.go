package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"

	"authtext/internal/sig"
)

// Manifest is the owner-published collection metadata the client needs to
// verify results: the collection size n (for w_{Q,t}), the structural
// parameters, and the roots of the collection-wide trees. The owner signs
// the canonical encoding once at publication time; everything else a query
// needs arrives in the VO.
type Manifest struct {
	N         uint32 // number of documents
	M         uint32 // dictionary size
	AvgLen    float64
	K1, B     float64
	BlockSize uint32
	HashSize  uint8
	// DictMode selects the dictionary-MHT space optimisation: lists carry
	// no individual signatures; DictRoots[kind] commits all roots of that
	// structure kind.
	DictMode bool
	// VocabProofsEnabled selects the vocabulary non-membership extension.
	VocabProofsEnabled bool
	// DocHashRoot is the root over h(doc_0..n−1) (content authentication
	// for TNRA results).
	DocHashRoot []byte
	// DictRoots holds, per StructureKind (index kind−1), the dictionary-MHT
	// root over that kind's term roots. Empty unless DictMode.
	DictRoots [4][]byte
	// NameDictRoot is the root of the name-ordered dictionary tree. Empty
	// unless VocabProofsEnabled.
	NameDictRoot []byte
	// Boosted enables the §5 authority-boost extension: result scores are
	// S(d|Q) + Beta·A(d) with A committed under AuthorityRoot and bounded
	// by AMax.
	Boosted       bool
	Beta          float64
	AMax          float64
	AuthorityRoot []byte
	// Generation numbers the publication state of a live collection
	// (docs/UPDATES.md). 0 means a static, build-once collection; live
	// collections start at 1 and every accepted update increments it. The
	// field is inside the signed encoding, so a server cannot claim a
	// generation the owner never signed; clients additionally refuse to
	// move to a manifest with a lower generation than one they have
	// already accepted (rollback = tampering).
	Generation uint64
	// Live counts the non-tombstoned documents when Tombstones is present;
	// 0 (with a nil Tombstones) means all N slots are live. N stays the
	// slot count — the size every signed structure was built against — so
	// term frequencies, tree shapes and Okapi weights remain consistent
	// with the per-structure signatures across removals.
	Live uint32
	// Tombstones is the removal bitmap of a live collection: bit d set
	// means document slot d was removed after being signed into the
	// collection. The bitmap is part of the signed encoding, so a server
	// can neither resurrect a removed document nor suppress a live one.
	// Removed slots keep their postings and signed records (which is what
	// lets CachingSigner reuse them); search and verification skip them
	// deterministically. nil when no document is tombstoned.
	Tombstones []byte
}

// tombstoneLen is the canonical bitmap length for n document slots.
func tombstoneLen(n uint32) int { return int(n+7) / 8 }

// LiveDocs returns the number of live (non-tombstoned) documents.
func (m *Manifest) LiveDocs() int {
	if len(m.Tombstones) == 0 {
		return int(m.N)
	}
	return int(m.Live)
}

// IsTombstoned reports whether document slot d was removed. Out-of-range
// slots report false; callers bound d by N independently.
func (m *Manifest) IsTombstoned(d uint32) bool {
	if len(m.Tombstones) == 0 {
		return false
	}
	byteIdx := int(d >> 3)
	if byteIdx >= len(m.Tombstones) {
		return false
	}
	return m.Tombstones[byteIdx]&(1<<(d&7)) != 0
}

// Encode produces the canonical signed encoding of the manifest.
func (m *Manifest) Encode() []byte {
	b := make([]byte, 0, 128)
	b = append(b, "authtext/manifest/v1"...)
	b = binary.BigEndian.AppendUint32(b, m.N)
	b = binary.BigEndian.AppendUint32(b, m.M)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(m.AvgLen))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(m.K1))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(m.B))
	b = binary.BigEndian.AppendUint32(b, m.BlockSize)
	b = append(b, m.HashSize)
	var flags byte
	if m.DictMode {
		flags |= 1
	}
	if m.VocabProofsEnabled {
		flags |= 2
	}
	if m.Boosted {
		flags |= 4
	}
	if len(m.Tombstones) != 0 {
		flags |= 8
	}
	b = append(b, flags)
	b = appendSized(b, m.DocHashRoot)
	for _, r := range m.DictRoots {
		b = appendSized(b, r)
	}
	b = appendSized(b, m.NameDictRoot)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(m.Beta))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(m.AMax))
	b = appendSized(b, m.AuthorityRoot)
	// The generation is a trailing extension: static collections
	// (generation 0) encode exactly the original v1 layout, so their
	// signatures, snapshots and golden fixtures are unaffected, while live
	// collections (generation ≥ 1) sign the extra 8 bytes. The tombstone
	// bitmap extends further, and only when a slot is actually tombstoned
	// (flag bit 8): a live collection with no removals still encodes the
	// generation-only layout, so pre-tombstone snapshots stay valid.
	if m.Generation != 0 {
		b = binary.BigEndian.AppendUint64(b, m.Generation)
	}
	if len(m.Tombstones) != 0 {
		b = binary.BigEndian.AppendUint32(b, m.Live)
		b = binary.BigEndian.AppendUint32(b, uint32(len(m.Tombstones)))
		b = append(b, m.Tombstones...)
	}
	return b
}

func appendSized(b, v []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(v)))
	return append(b, v...)
}

// Validate checks internal consistency before use.
func (m *Manifest) Validate() error {
	if m.N == 0 || m.M == 0 {
		return errors.New("core: manifest has empty collection")
	}
	if m.HashSize < 8 || m.HashSize > 32 {
		return fmt.Errorf("core: manifest hash size %d", m.HashSize)
	}
	if m.BlockSize < 64 {
		return fmt.Errorf("core: manifest block size %d", m.BlockSize)
	}
	if len(m.DocHashRoot) != int(m.HashSize) {
		return errors.New("core: manifest doc-hash root size mismatch")
	}
	if m.DictMode {
		for k, r := range m.DictRoots {
			if len(r) != int(m.HashSize) {
				return fmt.Errorf("core: manifest dict root %d size mismatch", k)
			}
		}
	}
	if m.VocabProofsEnabled && len(m.NameDictRoot) != int(m.HashSize) {
		return errors.New("core: manifest name-dict root size mismatch")
	}
	if m.Boosted {
		if len(m.AuthorityRoot) != int(m.HashSize) {
			return errors.New("core: manifest authority root size mismatch")
		}
		if m.Beta < 0 || math.IsNaN(m.Beta) || math.IsInf(m.Beta, 0) {
			return fmt.Errorf("core: manifest beta %v", m.Beta)
		}
		if m.AMax < 0 || m.AMax > 1 || math.IsNaN(m.AMax) {
			return fmt.Errorf("core: manifest authority max %v", m.AMax)
		}
	}
	if len(m.Tombstones) != 0 {
		if m.Generation == 0 {
			return errors.New("core: manifest tombstones on a static collection")
		}
		if len(m.Tombstones) != tombstoneLen(m.N) {
			return fmt.Errorf("core: manifest tombstone bitmap is %d bytes for %d slots",
				len(m.Tombstones), m.N)
		}
		// Canonical form: bits past slot N−1 must be clear, at least one
		// slot tombstoned (else the bitmap would be omitted), at least one
		// live (an empty collection is unservable), and Live must agree
		// with the bitmap so the two signed views cannot diverge.
		dead := 0
		for i, bb := range m.Tombstones {
			if i == len(m.Tombstones)-1 && m.N%8 != 0 {
				if bb>>(m.N%8) != 0 {
					return errors.New("core: manifest tombstone bitmap has bits past slot count")
				}
			}
			dead += bits.OnesCount8(bb)
		}
		if dead == 0 {
			return errors.New("core: manifest tombstone bitmap is empty")
		}
		if dead == int(m.N) {
			return errors.New("core: manifest tombstones every slot")
		}
		if int(m.Live) != int(m.N)-dead {
			return fmt.Errorf("core: manifest live count %d disagrees with bitmap (%d of %d tombstoned)",
				m.Live, dead, m.N)
		}
	} else if m.Live != 0 {
		return errors.New("core: manifest live count without tombstone bitmap")
	}
	return nil
}

// VerifyManifest checks the owner's signature over the manifest.
func VerifyManifest(m *Manifest, sigBytes []byte, v sig.Verifier) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if err := v.Verify(m.Encode(), sigBytes); err != nil {
		return fmt.Errorf("core: manifest signature: %w", err)
	}
	return nil
}
