package core

import (
	"fmt"

	"authtext/internal/index"
)

// Cursor iterates an inverted list front to back. Implementations charge
// I/O costs on block boundaries (engine) or are free (tests).
type Cursor interface {
	// Peek returns the next unconsumed entry, or ok=false when exhausted.
	// Fetching the entry (loading its block) happens here, matching the
	// "fetch the next entry in term t's inverted list" steps of Figs 5/10.
	Peek() (p index.Posting, ok bool)
	// Advance consumes the entry returned by Peek.
	Advance()
	// Consumed returns the number of entries advanced past.
	Consumed() int
	// Len returns the total list length l_i (known from the dictionary).
	Len() int
}

// ListSource opens cursors over inverted lists.
type ListSource interface {
	OpenList(t index.TermID) (Cursor, error)
}

// DocVectorSource provides the random accesses of TRA: the full ⟨term,
// weight⟩ vector of a document (physically, the leaves of its document
// record / document-MHT).
type DocVectorSource interface {
	DocVector(d index.DocID) ([]index.TermFreq, error)
}

// QueryWeights extracts the per-query-term weights w_{d,ti} from a document
// vector (0 for absent terms). vec must be sorted by TermID.
func QueryWeights(q *Query, vec []index.TermFreq) []float32 {
	w := make([]float32, len(q.Terms))
	for i := range q.Terms {
		w[i] = lookupWeight(vec, q.Terms[i].ID)
	}
	return w
}

func lookupWeight(vec []index.TermFreq, t index.TermID) float32 {
	lo, hi := 0, len(vec)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case vec[mid].Term < t:
			lo = mid + 1
		case vec[mid].Term > t:
			hi = mid
		default:
			return vec[mid].W
		}
	}
	return 0
}

// ---------------------------------------------------------------------------
// In-memory implementations (tests, PSCAN oracle, examples)

// MemSource serves cursors and document vectors straight from an Index.
type MemSource struct {
	Idx *index.Index
}

// OpenList implements ListSource.
func (m *MemSource) OpenList(t index.TermID) (Cursor, error) {
	if int(t) >= m.Idx.M() {
		return nil, fmt.Errorf("core: unknown term id %d", t)
	}
	return &memCursor{list: m.Idx.List(t)}, nil
}

// DocVector implements DocVectorSource.
func (m *MemSource) DocVector(d index.DocID) ([]index.TermFreq, error) {
	if int(d) >= m.Idx.N {
		return nil, fmt.Errorf("core: unknown doc id %d", d)
	}
	return m.Idx.DocVector(d), nil
}

type memCursor struct {
	list []index.Posting
	pos  int
}

func (c *memCursor) Peek() (index.Posting, bool) {
	if c.pos >= len(c.list) {
		return index.Posting{}, false
	}
	return c.list[c.pos], true
}

func (c *memCursor) Advance()      { c.pos++ }
func (c *memCursor) Consumed() int { return c.pos }
func (c *memCursor) Len() int      { return len(c.list) }
