package core

import (
	"container/heap"
	"sort"

	"authtext/internal/index"
)

// DocBounds carries the score bounds of §3.4: SLB assumes 0 for unseen
// query-term frequencies, SUB assumes the latest frequency read from the
// corresponding list.
type DocBounds struct {
	SLB float64
	SUB float64
}

// TNRAOutcome is the TNRA analogue of TRAOutcome. TNRA needs no document
// proofs: the revealed ⟨d, f⟩ prefixes alone determine the bounds.
type TNRAOutcome struct {
	Result     []ResultEntry
	KScore     []int
	Exhausted  []bool
	Bounds     map[index.DocID]DocBounds // canonical final bounds of all revealed docs
	Thres      float64
	Iterations int
}

// TNRAEval is the canonical evaluation of a set of revealed prefixes: the
// same computation performed by the server to finalise its answer and by
// the client to verify it (DESIGN.md §4).
type TNRAEval struct {
	Bounds map[index.DocID]DocBounds
	// Order lists every revealed doc by (SLB desc, doc asc).
	Order  []index.DocID
	Result []ResultEntry // first min(r, len(Order)) entries with SLB scores
	Thres  float64
	// OK reports whether the three termination conditions of Fig 10 hold.
	OK bool
}

// EvalTNRA computes canonical TNRA bounds over the revealed prefixes.
// prefixes[i] holds the first KScore[i] entries of term i's list (popped
// entries plus the cut-off head); exhausted[i] is true when the prefix is
// the whole list. Frequencies of a document in lists where it was not
// revealed are bounded by the last revealed frequency (0 if exhausted).
func EvalTNRA(q *Query, prefixes [][]index.Posting, exhausted []bool, r int) *TNRAEval {
	return EvalTNRAWithBoost(q, prefixes, exhausted, r, nil, nil)
}

// EvalTNRAWithBoost is EvalTNRA under the §5 authority-boost extension:
// every candidate's bounds gain β·A(d), and the unseen-document bound in
// termination condition 3 widens by β·A_max.
//
// dead (optional) marks tombstoned document slots of a live collection:
// their revealed postings never become candidates, so they cannot enter
// the result or the termination ordering. Their frequencies still set the
// per-list bounds (they sit inside the signed, frequency-ordered lists),
// which keeps every bound a valid — merely conservative — cap on live
// documents.
func EvalTNRAWithBoost(q *Query, prefixes [][]index.Posting, exhausted []bool, r int, boost *Boost, dead func(index.DocID) bool) *TNRAEval {
	nq := len(q.Terms)
	type cand struct {
		w    []float32
		mask uint64
	}
	cands := make(map[index.DocID]*cand)
	bound := make([]float64, nq)
	for i := 0; i < nq; i++ {
		if exhausted[i] || len(prefixes[i]) == 0 {
			bound[i] = 0
		} else {
			bound[i] = float64(prefixes[i][len(prefixes[i])-1].W)
		}
		for _, p := range prefixes[i] {
			if dead != nil && dead(p.Doc) {
				continue // tombstoned: revealed but never a candidate
			}
			c := cands[p.Doc]
			if c == nil {
				c = &cand{w: make([]float32, nq)}
				cands[p.Doc] = c
			}
			c.w[i] = p.W
			c.mask |= 1 << uint(i)
		}
	}

	ev := &TNRAEval{Bounds: make(map[index.DocID]DocBounds, len(cands))}
	for i := 0; i < nq; i++ {
		ev.Thres += q.Terms[i].WQ * bound[i]
	}
	for d, c := range cands {
		var slb, sub float64
		for i := 0; i < nq; i++ {
			if c.mask&(1<<uint(i)) != 0 {
				v := q.Terms[i].WQ * float64(c.w[i])
				slb += v
				sub += v
			} else {
				sub += q.Terms[i].WQ * bound[i]
			}
		}
		bs := boost.Score(d)
		slb += bs
		sub += bs
		ev.Bounds[d] = DocBounds{SLB: slb, SUB: sub}
		ev.Order = append(ev.Order, d)
	}
	sort.Slice(ev.Order, func(a, b int) bool {
		da, db := ev.Order[a], ev.Order[b]
		ba, bb := ev.Bounds[da], ev.Bounds[db]
		if ba.SLB != bb.SLB {
			return ba.SLB > bb.SLB
		}
		return da < db
	})

	top := r
	if top > len(ev.Order) {
		top = len(ev.Order)
	}
	for _, d := range ev.Order[:top] {
		ev.Result = append(ev.Result, ResultEntry{Doc: d, Score: ev.Bounds[d].SLB})
	}

	// Termination conditions (Fig 10, step 4a), canonically evaluated.
	if len(ev.Order) < r {
		// Fewer candidates than requested: legitimate only when every list
		// has been fully consumed (nothing else can ever appear).
		ev.OK = allTrue(exhausted) && ev.Thres == 0
		return ev
	}
	slbLast := ev.Bounds[ev.Order[r-1]].SLB
	// Condition 3, boost-widened: unseen matching documents score at most
	// thres + β·A_max. When every list is fully revealed no unseen matching
	// document exists and the bound is vacuous.
	ok := allTrue(exhausted) || ev.Thres+boost.Max() <= slbLast
	if ok { // condition 1: complete ordering within R
		minSLB := ev.Bounds[ev.Order[0]].SLB
		for k := 1; k < r && ok; k++ {
			b := ev.Bounds[ev.Order[k]]
			if b.SUB > minSLB {
				ok = false
			}
			if b.SLB < minSLB {
				minSLB = b.SLB
			}
		}
	}
	if ok { // condition 2: no outsider can overtake R.dr
		for _, d := range ev.Order[r:] {
			if ev.Bounds[d].SUB > slbLast {
				ok = false
				break
			}
		}
	}
	ev.OK = ok
	return ev
}

func allTrue(bs []bool) bool {
	for _, b := range bs {
		if !b {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Incremental TNRA

type tnraCand struct {
	doc    index.DocID
	w      []float32
	mask   uint64
	slb    float64
	inTopR bool
}

type subEntry struct {
	doc index.DocID
	key float64
}

// subHeap is a max-heap of (doc, stale SUB upper bound).
type subHeap []subEntry

func (h subHeap) Len() int            { return len(h) }
func (h subHeap) Less(i, j int) bool  { return h[i].key > h[j].key }
func (h subHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *subHeap) Push(x interface{}) { *h = append(*h, x.(subEntry)) }
func (h *subHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TNRA runs Threshold with No Random Access (Fig 10) for the top r
// documents. Like TRA it favours the list with the highest current term
// score rather than advancing lists in lockstep. Sorted access alone
// determines the result: the algorithm maintains per-document lower/upper
// score bounds and stops once the three termination conditions hold.
//
// Termination is first detected with incrementally maintained bounds (a
// lazy max-heap tracks the best non-result candidate) and then confirmed
// with the canonical EvalTNRA computation, whose outcome — including the
// head entries of each list, which the VO reveals anyway — is what the
// server answers with and what the client recomputes.
func TNRA(q *Query, lists ListSource, r int, trace func(TraceEvent)) (*TNRAOutcome, error) {
	return TNRAWithBoost(q, lists, r, nil, nil, trace)
}

// TNRAWithBoost is TNRA with the §5 authority-boost extension. Authority
// scores are memory-resident (like the dictionary), so the boost costs no
// additional I/O: a candidate's bounds simply include β·A(d) from the
// moment it is first polled. dead (optional) marks tombstoned slots,
// excluded from candidacy exactly as in EvalTNRAWithBoost.
func TNRAWithBoost(q *Query, lists ListSource, r int, boost *Boost, dead func(index.DocID) bool, trace func(TraceEvent)) (*TNRAOutcome, error) {
	nq := len(q.Terms)
	if nq == 0 {
		return nil, ErrNoQueryTerms
	}
	if r < 1 {
		r = 1
	}
	cursors := make([]Cursor, nq)
	for i := range q.Terms {
		cur, err := lists.OpenList(q.Terms[i].ID)
		if err != nil {
			return nil, err
		}
		cursors[i] = cur
	}

	cands := make(map[index.DocID]*tnraCand)
	topR := make([]index.DocID, 0, r) // sorted by (slb desc, doc asc)
	var others subHeap
	out := &TNRAOutcome{KScore: make([]int, nq), Exhausted: make([]bool, nq)}

	latest := func(i int) float64 {
		if p, ok := cursors[i].Peek(); ok {
			return float64(p.W)
		}
		return 0
	}
	sub := func(c *tnraCand) float64 {
		s := c.slb
		for i := 0; i < nq; i++ {
			if c.mask&(1<<uint(i)) == 0 {
				s += q.Terms[i].WQ * latest(i)
			}
		}
		return s
	}
	thres := func() float64 {
		var t float64
		for i := 0; i < nq; i++ {
			t += q.Terms[i].WQ * latest(i)
		}
		return t
	}
	candLess := func(a, b index.DocID) bool {
		ca, cb := cands[a], cands[b]
		if ca.slb != cb.slb {
			return ca.slb > cb.slb
		}
		return a < b
	}

	finalize := func() *TNRAEval {
		for i := range cursors {
			k := cursors[i].Consumed()
			if _, ok := cursors[i].Peek(); ok {
				k++
			}
			out.KScore[i] = k
			// Same rule as the client: a prefix covering the whole list
			// bounds absent documents by 0.
			out.Exhausted[i] = k == cursors[i].Len()
		}
		return EvalTNRAWithBoost(q, cursorPrefixes(cursors, out.KScore), out.Exhausted, r, boost, dead)
	}

	// incrementalOK is a cheap sufficient check before paying for EvalTNRA.
	incrementalOK := func(th float64) bool {
		if len(topR) < r {
			return false
		}
		slbLast := cands[topR[r-1]].slb
		if th+boost.Max() > slbLast { // condition 3 (boost-widened)
			return false
		}
		// Condition 1 over the maintained top-r.
		minSLB := cands[topR[0]].slb
		for k := 1; k < r; k++ {
			c := cands[topR[k]]
			if sub(c) > minSLB {
				return false
			}
			if c.slb < minSLB {
				minSLB = c.slb
			}
		}
		// Condition 2 via the lazy heap.
		for others.Len() > 0 {
			e := others[0]
			c := cands[e.doc]
			if c.inTopR {
				heap.Pop(&others)
				continue
			}
			cur := sub(c)
			if cur < e.key {
				others[0].key = cur
				heap.Fix(&others, 0)
				continue
			}
			return cur <= slbLast
		}
		return true
	}

	for {
		th := thres()
		if incrementalOK(th) {
			ev := finalize()
			if ev.OK {
				out.Result, out.Bounds, out.Thres = ev.Result, ev.Bounds, ev.Thres
				if trace != nil {
					trace(TraceEvent{Iter: out.Iterations + 1, Thres: th, Term: -1, Terminated: true})
				}
				return out, nil
			}
			// Marginal disagreement between incremental and canonical
			// arithmetic: keep popping (termination is guaranteed at
			// exhaustion).
		}
		best, bestC := -1, 0.0
		for i := 0; i < nq; i++ {
			p, ok := cursors[i].Peek()
			if !ok {
				continue
			}
			c := q.Terms[i].WQ * float64(p.W)
			if best == -1 || c > bestC {
				best, bestC = i, c
			}
		}
		if best == -1 {
			ev := finalize()
			out.Result, out.Bounds, out.Thres = ev.Result, ev.Bounds, ev.Thres
			if trace != nil {
				trace(TraceEvent{Iter: out.Iterations + 1, Thres: 0, Term: -1, Terminated: true})
			}
			return out, nil
		}
		entry, _ := cursors[best].Peek()
		cursors[best].Advance()
		out.Iterations++
		if trace != nil {
			trace(TraceEvent{Iter: out.Iterations, Thres: th, Term: best, Entry: entry})
		}
		if dead != nil && dead(entry.Doc) {
			continue // tombstoned: revealed but never a candidate
		}

		c := cands[entry.Doc]
		if c == nil {
			c = &tnraCand{doc: entry.Doc, w: make([]float32, nq), slb: boost.Score(entry.Doc)}
			cands[entry.Doc] = c
		}
		if c.mask&(1<<uint(best)) == 0 {
			c.mask |= 1 << uint(best)
			c.w[best] = entry.W
			c.slb += q.Terms[best].WQ * float64(entry.W)
		}

		// Maintain the top-r slice.
		if c.inTopR {
			// slb grew: restore sort order around this doc.
			pos := indexOf(topR, entry.Doc)
			for pos > 0 && candLess(topR[pos], topR[pos-1]) {
				topR[pos], topR[pos-1] = topR[pos-1], topR[pos]
				pos--
			}
		} else if len(topR) < r {
			topR = insertSorted(topR, entry.Doc, candLess)
			c.inTopR = true
		} else if candLess(entry.Doc, topR[r-1]) {
			evicted := topR[r-1]
			cands[evicted].inTopR = false
			heap.Push(&others, subEntry{doc: evicted, key: sub(cands[evicted])})
			topR = insertSorted(topR[:r-1], entry.Doc, candLess)
			c.inTopR = true
		} else {
			heap.Push(&others, subEntry{doc: entry.Doc, key: sub(c)})
		}
	}
}

func indexOf(s []index.DocID, d index.DocID) int {
	for i, v := range s {
		if v == d {
			return i
		}
	}
	return -1
}

func insertSorted(s []index.DocID, d index.DocID, less func(a, b index.DocID) bool) []index.DocID {
	i := sort.Search(len(s), func(i int) bool { return !less(s[i], d) })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = d
	return s
}
