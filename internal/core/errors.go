package core

import (
	"errors"
	"fmt"
)

// VerifyCode classifies verification failures; the failure-injection test
// suite asserts specific codes for each tampering strategy of the §1 threat
// model (incomplete results, altered ranking, spurious results).
type VerifyCode int

const (
	// VerifyOK is the zero value; VerifyError never carries it.
	VerifyOK VerifyCode = iota
	// CodeMalformedVO: structural problems in the VO itself.
	CodeMalformedVO
	// CodeBadSignature: an owner signature failed to verify.
	CodeBadSignature
	// CodeBadTermProof: a list prefix did not reproduce its signed root.
	CodeBadTermProof
	// CodeBadDocProof: a document-MHT proof failed (bad root, missing term
	// evidence, or broken non-membership adjacency).
	CodeBadDocProof
	// CodeBadContent: delivered document content does not match its
	// committed digest.
	CodeBadContent
	// CodeBadScore: a claimed score differs from the recomputed one.
	CodeBadScore
	// CodeBadOrdering: result entries are not in non-increasing score order.
	CodeBadOrdering
	// CodeThreshold: the cut-off threshold exceeds the last result score, so
	// unseen documents could outrank the result (incomplete result).
	CodeThreshold
	// CodeIncomplete: an encountered non-result document outscores the
	// result tail, or the result is short without list exhaustion.
	CodeIncomplete
	// CodeSpurious: the result contains a document that cannot be accounted
	// for by the revealed prefixes.
	CodeSpurious
	// CodeBadVocabProof: an out-of-dictionary claim lacks a valid
	// non-membership proof.
	CodeBadVocabProof
	// CodeBadConditions: the TNRA termination conditions do not hold over
	// the revealed prefixes.
	CodeBadConditions
	// CodeStaleGeneration: the answer pins a different (usually older)
	// publication generation than the manifest the client holds — a
	// replayed or rolled-back answer from a live collection
	// (docs/UPDATES.md).
	CodeStaleGeneration
	// CodeEquivocation: a fleet of replicas presented conflicting signed
	// states for the same collection — two different manifests for one
	// generation (split view / forked generation chain), or a replica
	// persistently frozen at an old generation while the rest of the
	// fleet advances. Unlike transport failures, this is supported by
	// signatures on both sides of the conflict, so it is tampering, never
	// a transient error (docs/FLEET.md).
	CodeEquivocation
)

// String implements fmt.Stringer.
func (c VerifyCode) String() string {
	switch c {
	case VerifyOK:
		return "ok"
	case CodeMalformedVO:
		return "malformed-vo"
	case CodeBadSignature:
		return "bad-signature"
	case CodeBadTermProof:
		return "bad-term-proof"
	case CodeBadDocProof:
		return "bad-doc-proof"
	case CodeBadContent:
		return "bad-content"
	case CodeBadScore:
		return "bad-score"
	case CodeBadOrdering:
		return "bad-ordering"
	case CodeThreshold:
		return "threshold-violated"
	case CodeIncomplete:
		return "incomplete-result"
	case CodeSpurious:
		return "spurious-result"
	case CodeBadVocabProof:
		return "bad-vocab-proof"
	case CodeBadConditions:
		return "tnra-conditions-violated"
	case CodeStaleGeneration:
		return "stale-generation"
	case CodeEquivocation:
		return "equivocation"
	}
	return fmt.Sprintf("VerifyCode(%d)", int(c))
}

// VerifyError is returned by Verify when a result fails authentication.
type VerifyError struct {
	Code   VerifyCode
	Detail string
}

// Error implements error.
func (e *VerifyError) Error() string {
	return fmt.Sprintf("verify: %s: %s", e.Code, e.Detail)
}

// Is makes two VerifyErrors match under errors.Is when they carry the same
// code, so sentinel values like authtext.ErrStaleGeneration work without
// forcing every construction site to thread one shared instance through.
func (e *VerifyError) Is(target error) bool {
	t, ok := target.(*VerifyError)
	return ok && t.Code == e.Code
}

func vErr(code VerifyCode, format string, args ...interface{}) *VerifyError {
	return &VerifyError{Code: code, Detail: fmt.Sprintf(format, args...)}
}

// CodeOf extracts the VerifyCode from an error, unwrapping fmt.Errorf
// chains (VerifyOK for nil or foreign errors).
func CodeOf(err error) VerifyCode {
	var ve *VerifyError
	if errors.As(err, &ve) {
		return ve.Code
	}
	return VerifyOK
}
