package core

import (
	"encoding/binary"
	"math"

	"authtext/internal/index"
)

// Canonical byte encodings shared by the owner (structure construction),
// the server (VO assembly) and the client (verification). All integers are
// big-endian; float32 weights are encoded as their IEEE-754 bit patterns.
// Entry sizes follow Table 1: 4-byte identifiers, 4-byte frequencies,
// giving 4-byte doc-id leaves for the TRA term structures and 8-byte
// ⟨id, frequency⟩ leaves elsewhere.

// StructureKind distinguishes the four signed list structures, so that a
// signature over one cannot be replayed as another.
type StructureKind uint8

const (
	// KindTRAMHT is the term-MHT over doc ids (§3.3.1, Fig 7).
	KindTRAMHT StructureKind = 1
	// KindTRACMHT is the chain-MHT over doc ids (§3.3.2, Fig 9).
	KindTRACMHT StructureKind = 2
	// KindTNRAMHT is the term-MHT over ⟨d, f⟩ pairs (§3.4).
	KindTNRAMHT StructureKind = 3
	// KindTNRACMHT is the chain-MHT over ⟨d, f⟩ pairs (§3.4, Fig 12).
	KindTNRACMHT StructureKind = 4
)

// KindFor maps an (algorithm, scheme) pair to its structure kind.
func KindFor(a Algo, s Scheme) StructureKind {
	switch {
	case a == AlgoTRA && s == SchemeMHT:
		return KindTRAMHT
	case a == AlgoTRA && s == SchemeCMHT:
		return KindTRACMHT
	case a == AlgoTNRA && s == SchemeMHT:
		return KindTNRAMHT
	default:
		return KindTNRACMHT
	}
}

// LeafSize returns the list-leaf size in bytes for a structure kind.
func (k StructureKind) LeafSize() int {
	if k == KindTRAMHT || k == KindTRACMHT {
		return 4
	}
	return 8
}

// EncodeDocIDLeaf encodes a doc-id-only list leaf (TRA structures).
func EncodeDocIDLeaf(d index.DocID) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, uint32(d))
	return b
}

// EncodePostingLeaf encodes a ⟨d, f⟩ list leaf (TNRA structures).
func EncodePostingLeaf(p index.Posting) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint32(b, uint32(p.Doc))
	binary.BigEndian.PutUint32(b[4:], math.Float32bits(p.W))
	return b
}

// EncodeTermFreqLeaf encodes a ⟨t, w_{d,t}⟩ document-MHT leaf (Fig 8).
func EncodeTermFreqLeaf(tf index.TermFreq) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint32(b, uint32(tf.Term))
	binary.BigEndian.PutUint32(b[4:], math.Float32bits(tf.W))
	return b
}

// ListLeaf encodes a posting as a leaf of the given structure kind.
func (k StructureKind) ListLeaf(p index.Posting) []byte {
	if k.LeafSize() == 4 {
		return EncodeDocIDLeaf(p.Doc)
	}
	return EncodePostingLeaf(p)
}

// ListLeaves encodes a slice of postings.
func (k StructureKind) ListLeaves(ps []index.Posting) [][]byte {
	out := make([][]byte, len(ps))
	for i, p := range ps {
		out[i] = k.ListLeaf(p)
	}
	return out
}

// TermRootMessage composes the signed message of a list structure,
// sign(h(t | f_t | i | digest)) in the paper's notation (Figs 7, 9, 12),
// extended with a domain label and the structure kind.
func TermRootMessage(kind StructureKind, name string, termID index.TermID, ft uint32, root []byte) []byte {
	b := make([]byte, 0, 16+len(name)+len(root))
	b = append(b, "authtext/list/v1"...)
	b = append(b, byte(kind))
	b = binary.BigEndian.AppendUint32(b, uint32(termID))
	b = binary.BigEndian.AppendUint32(b, ft)
	b = binary.BigEndian.AppendUint32(b, uint32(len(name)))
	b = append(b, name...)
	b = append(b, root...)
	return b
}

// DocRootMessage composes the signed message of a document-MHT,
// sign(h(h(doc) | d | root)) per Fig 8, extended with the leaf count
// (DESIGN.md §3.6).
func DocRootMessage(docID index.DocID, leafCount uint32, contentHash, leavesRoot []byte) []byte {
	b := make([]byte, 0, 24+len(contentHash)+len(leavesRoot))
	b = append(b, "authtext/doc/v1"...)
	b = binary.BigEndian.AppendUint32(b, uint32(docID))
	b = binary.BigEndian.AppendUint32(b, leafCount)
	b = append(b, contentHash...)
	b = append(b, leavesRoot...)
	return b
}

// DictRootMessage composes the signed message of a dictionary-MHT (§3.4
// space optimisation): the root over all term-structure roots of one kind.
func DictRootMessage(kind StructureKind, m uint32, root []byte) []byte {
	b := make([]byte, 0, 24+len(root))
	b = append(b, "authtext/dict/v1"...)
	b = append(b, byte(kind))
	b = binary.BigEndian.AppendUint32(b, m)
	b = append(b, root...)
	return b
}

// VocabLeaf encodes a name-dictionary leaf for the vocabulary
// non-membership extension: the term name, length-prefixed.
func VocabLeaf(name string) []byte {
	b := make([]byte, 0, 4+len(name))
	b = binary.BigEndian.AppendUint32(b, uint32(len(name)))
	b = append(b, name...)
	return b
}
