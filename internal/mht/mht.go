package mht

import (
	"errors"
	"fmt"
	"math/bits"

	"authtext/internal/sig"
)

// Domain-separation prefixes for leaf and interior node hashes.
const (
	leafPrefix  = 0x00
	nodePrefix  = 0x01
	emptyPrefix = 0x02
)

// Hasher computes leaf and node digests for a tree.
type Hasher struct {
	H sig.Hasher
}

// NewHasher wraps a sig.Hasher for tree hashing.
func NewHasher(h sig.Hasher) Hasher { return Hasher{H: h} }

// Size returns the digest size in bytes.
func (h Hasher) Size() int { return h.H.Size() }

// Leaf returns the digest of a leaf carrying data.
func (h Hasher) Leaf(data []byte) []byte {
	return h.H.SumConcat([]byte{leafPrefix}, data)
}

// Node returns the digest of an internal node with children l and r.
func (h Hasher) Node(l, r []byte) []byte {
	return h.H.SumConcat([]byte{nodePrefix}, l, r)
}

// Empty returns the digest of the empty tree.
func (h Hasher) Empty() []byte {
	return h.H.Sum([]byte{emptyPrefix})
}

// splitPoint returns the size of the left subtree for n > 1 leaves:
// the largest power of two strictly less than n.
func splitPoint(n int) int {
	return 1 << (bits.Len(uint(n-1)) - 1)
}

// Root computes the root digest over leaves (data values, in order).
func Root(h Hasher, leaves [][]byte) []byte {
	if len(leaves) == 0 {
		return h.Empty()
	}
	return rootRange(h, leaves)
}

func rootRange(h Hasher, leaves [][]byte) []byte {
	if len(leaves) == 1 {
		return h.Leaf(leaves[0])
	}
	k := splitPoint(len(leaves))
	return h.Node(rootRange(h, leaves[:k]), rootRange(h, leaves[k:]))
}

// Proof carries the complementary digests for a multi-leaf proof, in the
// canonical pre-order traversal order used by Prove and RootFromProof.
type Proof struct {
	Digests [][]byte
}

// Prove produces the complementary digests needed to recompute the root
// from the leaves at the given positions. want must be sorted ascending,
// duplicate-free, and within [0, len(leaves)).
func Prove(h Hasher, leaves [][]byte, want []int) (Proof, error) {
	if err := checkWant(want, len(leaves)); err != nil {
		return Proof{}, err
	}
	if len(leaves) == 0 {
		return Proof{}, nil
	}
	var p Proof
	prove(h, leaves, 0, want, &p)
	return p, nil
}

// prove covers leaves[0:len(leaves)] which sit at absolute offset off;
// want holds absolute positions restricted to this range by the caller.
func prove(h Hasher, leaves [][]byte, off int, want []int, p *Proof) {
	if len(want) == 0 {
		p.Digests = append(p.Digests, rootRange(h, leaves))
		return
	}
	if len(leaves) == 1 {
		return // leaf is supplied by the verifier; nothing to add
	}
	k := splitPoint(len(leaves))
	l, r := partition(want, off+k)
	prove(h, leaves[:k], off, l, p)
	prove(h, leaves[k:], off+k, r, p)
}

// partition splits a sorted position slice at the absolute position mid.
func partition(want []int, mid int) (left, right []int) {
	i := 0
	for i < len(want) && want[i] < mid {
		i++
	}
	return want[:i], want[i:]
}

func checkWant(want []int, n int) error {
	for i, w := range want {
		if w < 0 || w >= n {
			return fmt.Errorf("mht: want position %d outside [0,%d)", w, n)
		}
		if i > 0 && want[i-1] >= w {
			return errors.New("mht: want positions not strictly ascending")
		}
	}
	return nil
}

// ErrProofShape indicates a malformed proof (wrong digest count for the
// claimed tree size and leaf positions).
var ErrProofShape = errors.New("mht: proof shape mismatch")

// RootFromProof recomputes the root of an n-leaf tree given the data of the
// leaves at positions `want` (position → leaf data) and the complementary
// digests produced by Prove for exactly that position set. It returns the
// recomputed root; the caller compares it against the signed root.
func RootFromProof(h Hasher, n int, want map[int][]byte, proof Proof) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("mht: negative tree size %d", n)
	}
	if n == 0 {
		if len(want) != 0 || len(proof.Digests) != 0 {
			return nil, ErrProofShape
		}
		return h.Empty(), nil
	}
	positions := make([]int, 0, len(want))
	for pos := range want {
		if pos < 0 || pos >= n {
			return nil, fmt.Errorf("mht: leaf position %d outside [0,%d)", pos, n)
		}
		positions = append(positions, pos)
	}
	sortInts(positions)
	idx := 0
	root, err := rebuild(h, 0, n, positions, want, proof.Digests, &idx)
	if err != nil {
		return nil, err
	}
	if idx != len(proof.Digests) {
		return nil, ErrProofShape
	}
	return root, nil
}

func rebuild(h Hasher, off, size int, positions []int, want map[int][]byte, digests [][]byte, idx *int) ([]byte, error) {
	if len(positions) == 0 {
		if *idx >= len(digests) {
			return nil, ErrProofShape
		}
		d := digests[*idx]
		if len(d) != h.Size() {
			return nil, ErrProofShape
		}
		*idx++
		return d, nil
	}
	if size == 1 {
		return h.Leaf(want[off]), nil
	}
	k := splitPoint(size)
	l, r := partition(positions, off+k)
	left, err := rebuild(h, off, k, l, want, digests, idx)
	if err != nil {
		return nil, err
	}
	right, err := rebuild(h, off+k, size-k, r, want, digests, idx)
	if err != nil {
		return nil, err
	}
	return h.Node(left, right), nil
}

func sortInts(s []int) {
	// insertion sort: position sets are small or nearly sorted prefixes.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

// ProofSize returns the number of complementary digests Prove would emit for
// an n-leaf tree and the given sorted want positions, without hashing.
func ProofSize(n int, want []int) int {
	if n == 0 || len(want) == 0 {
		if n == 0 {
			return 0
		}
		return 1
	}
	return proofSize(0, n, want)
}

func proofSize(off, size int, want []int) int {
	if len(want) == 0 {
		return 1
	}
	if size == 1 {
		return 0
	}
	k := splitPoint(size)
	l, r := partition(want, off+k)
	return proofSize(off, k, l) + proofSize(off+k, size-k, r)
}
