package mht

// Buddy inclusion (§3.3.2): leaves are partitioned into groups of 2^g where
// g is the largest integer satisfying (2^g − 1)·|leaf| ≤ g·|h|. Whenever a
// leaf must enter the VO, its whole group is included as data, which is
// cheaper than transmitting the complementary digests that would otherwise
// cover the group's siblings.

// BuddyGroupSize returns the group size 2^g for the given leaf and digest
// sizes. With the paper's defaults (|h| = 16): 8-byte leaves → groups of 4,
// 4-byte leaves → groups of 16.
func BuddyGroupSize(leafSize, hashSize int) int {
	if leafSize <= 0 || hashSize <= 0 {
		return 1
	}
	g := 0
	for ((1<<(g+1))-1)*leafSize <= (g+1)*hashSize {
		g++
	}
	return 1 << g
}

// ExpandBuddies returns the sorted, deduplicated union of every requested
// position's buddy group, clipped to [0, n). want must be sorted ascending.
func ExpandBuddies(want []int, group, n int) []int {
	if group <= 1 {
		out := make([]int, len(want))
		copy(out, want)
		return out
	}
	out := make([]int, 0, len(want)*group)
	lastGroup := -1
	for _, w := range want {
		g := w / group
		if g == lastGroup {
			continue
		}
		lastGroup = g
		lo := g * group
		hi := lo + group
		if hi > n {
			hi = n
		}
		for p := lo; p < hi; p++ {
			out = append(out, p)
		}
	}
	return out
}

// RoundUpPrefix rounds a prefix length k up to a buddy-group boundary,
// clipped to n. It is the prefix special case of ExpandBuddies.
func RoundUpPrefix(k, group, n int) int {
	if group <= 1 || k <= 0 {
		return min(k, n)
	}
	r := ((k + group - 1) / group) * group
	return min(r, n)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
