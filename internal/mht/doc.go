// Package mht implements the Merkle hash tree of §2.2 (Fig 3) together
// with the pieces the authentication schemes of §3.3 need on top of the
// textbook construction:
//
//   - multi-leaf proofs ("complementary digests") for an arbitrary set of
//     leaf positions, as used by the term-MHTs and document-MHTs;
//   - buddy-inclusion grouping (§3.3.2), which replaces digests near the
//     requested leaves with the cheaper underlying leaf data.
//
// In the VO protocol, mht supplies the commitment scheme everything else
// hangs off: the owner builds a tree over each inverted list and each
// document's term vector and signs only the roots (recorded in the
// manifest), the server packs complementary digests and buddy leaves into
// the VO, and the client recombines them with the entries it was shown to
// reproduce the signed root — so revealing a list prefix proves both its
// contents and its completeness without shipping the rest of the list.
//
// The tree shape is canonical for a given leaf count n: an internal node
// over k leaves splits after the largest power of two strictly smaller
// than k (RFC 6962 style), so prover and verifier agree on the shape
// knowing only n. Leaf and internal hashes are domain-separated
// (0x00 / 0x01 prefixes); this hardening is documented as a deviation in
// DESIGN.md §3.6.
package mht
