package mht

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"authtext/internal/sig"
)

func testHasher() Hasher { return NewHasher(sig.MustHasher(16)) }

func leavesN(n int) [][]byte {
	leaves := make([][]byte, n)
	for i := range leaves {
		b := make([]byte, 4)
		binary.BigEndian.PutUint32(b, uint32(i*7+1))
		leaves[i] = b
	}
	return leaves
}

func TestRootEmptyAndSingle(t *testing.T) {
	h := testHasher()
	if len(Root(h, nil)) != 16 {
		t.Fatal("empty root wrong size")
	}
	one := Root(h, [][]byte{[]byte("m1")})
	if !bytes.Equal(one, h.Leaf([]byte("m1"))) {
		t.Fatal("single-leaf root != leaf digest")
	}
}

// TestFigure3Structure checks the 4-leaf tree of Fig 3:
// root = node(node(leaf m1, leaf m2), node(leaf m3, leaf m4)).
func TestFigure3Structure(t *testing.T) {
	h := testHasher()
	m := [][]byte{[]byte("m1"), []byte("m2"), []byte("m3"), []byte("m4")}
	n1, n2, n3, n4 := h.Leaf(m[0]), h.Leaf(m[1]), h.Leaf(m[2]), h.Leaf(m[3])
	n12 := h.Node(n1, n2)
	n34 := h.Node(n3, n4)
	want := h.Node(n12, n34)
	if !bytes.Equal(Root(h, m), want) {
		t.Fatal("root does not match hand-built Fig 3 tree")
	}

	// VO for m1 contains N2 and N3,4 (§2.2).
	proof, err := Prove(h, m, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(proof.Digests) != 2 {
		t.Fatalf("proof for m1 has %d digests, want 2", len(proof.Digests))
	}
	if !bytes.Equal(proof.Digests[0], n2) || !bytes.Equal(proof.Digests[1], n34) {
		t.Fatal("proof digests are not [N2, N3,4]")
	}
	root, err := RootFromProof(h, 4, map[int][]byte{0: m[0]}, proof)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(root, want) {
		t.Fatal("recomputed root mismatch")
	}
}

func TestSplitPoint(t *testing.T) {
	cases := map[int]int{2: 1, 3: 2, 4: 2, 5: 4, 6: 4, 7: 4, 8: 4, 9: 8, 127: 64, 128: 64, 129: 128}
	for n, want := range cases {
		if got := splitPoint(n); got != want {
			t.Errorf("splitPoint(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestProveVerifyAllSizesAllSingles(t *testing.T) {
	h := testHasher()
	for n := 1; n <= 33; n++ {
		leaves := leavesN(n)
		root := Root(h, leaves)
		for i := 0; i < n; i++ {
			proof, err := Prove(h, leaves, []int{i})
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			got, err := RootFromProof(h, n, map[int][]byte{i: leaves[i]}, proof)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if !bytes.Equal(got, root) {
				t.Fatalf("n=%d i=%d: root mismatch", n, i)
			}
		}
	}
}

func TestProveVerifyPrefixes(t *testing.T) {
	h := testHasher()
	for _, n := range []int{1, 2, 3, 5, 8, 13, 64, 100, 257} {
		leaves := leavesN(n)
		root := Root(h, leaves)
		for _, k := range []int{1, 2, n / 2, n - 1, n} {
			if k < 1 || k > n {
				continue
			}
			want := make([]int, k)
			wantData := make(map[int][]byte, k)
			for i := 0; i < k; i++ {
				want[i] = i
				wantData[i] = leaves[i]
			}
			proof, err := Prove(h, leaves, want)
			if err != nil {
				t.Fatal(err)
			}
			if got := ProofSize(n, want); got != len(proof.Digests) {
				t.Fatalf("n=%d k=%d: ProofSize=%d, actual=%d", n, k, got, len(proof.Digests))
			}
			got, err := RootFromProof(h, n, wantData, proof)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, root) {
				t.Fatalf("n=%d k=%d: root mismatch", n, k)
			}
		}
	}
}

func TestTamperedLeafFailsVerification(t *testing.T) {
	h := testHasher()
	leaves := leavesN(10)
	root := Root(h, leaves)
	proof, err := Prove(h, leaves, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RootFromProof(h, 10, map[int][]byte{3: []byte("evil")}, proof)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, root) {
		t.Fatal("tampered leaf produced the correct root")
	}
}

func TestTamperedDigestFailsVerification(t *testing.T) {
	h := testHasher()
	leaves := leavesN(10)
	root := Root(h, leaves)
	proof, err := Prove(h, leaves, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	proof.Digests[0] = h.H.Sum([]byte("evil"))
	got, err := RootFromProof(h, 10, map[int][]byte{3: leaves[3]}, proof)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, root) {
		t.Fatal("tampered digest produced the correct root")
	}
}

func TestWrongPositionFailsVerification(t *testing.T) {
	h := testHasher()
	leaves := leavesN(8)
	root := Root(h, leaves)
	proof, err := Prove(h, leaves, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	// Claim the same leaf sits at position 3.
	got, err := RootFromProof(h, 8, map[int][]byte{3: leaves[2]}, proof)
	if err == nil && bytes.Equal(got, root) {
		t.Fatal("relocated leaf verified")
	}
}

func TestProofShapeErrors(t *testing.T) {
	h := testHasher()
	leaves := leavesN(8)
	proof, err := Prove(h, leaves, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	// Too few digests.
	short := Proof{Digests: proof.Digests[:len(proof.Digests)-1]}
	if _, err := RootFromProof(h, 8, map[int][]byte{2: leaves[2]}, short); err == nil {
		t.Fatal("short proof accepted")
	}
	// Too many digests.
	long := Proof{Digests: append(append([][]byte{}, proof.Digests...), h.Empty())}
	if _, err := RootFromProof(h, 8, map[int][]byte{2: leaves[2]}, long); err == nil {
		t.Fatal("long proof accepted")
	}
	// Out-of-range position.
	if _, err := RootFromProof(h, 8, map[int][]byte{9: leaves[2]}, proof); err == nil {
		t.Fatal("out-of-range position accepted")
	}
	// Wrong digest width.
	bad := Proof{Digests: [][]byte{[]byte("short")}}
	if _, err := RootFromProof(h, 8, map[int][]byte{2: leaves[2]}, bad); err == nil {
		t.Fatal("narrow digest accepted")
	}
}

func TestProveRejectsBadWant(t *testing.T) {
	h := testHasher()
	leaves := leavesN(4)
	if _, err := Prove(h, leaves, []int{-1}); err == nil {
		t.Fatal("negative position accepted")
	}
	if _, err := Prove(h, leaves, []int{5}); err == nil {
		t.Fatal("out-of-range position accepted")
	}
	if _, err := Prove(h, leaves, []int{2, 2}); err == nil {
		t.Fatal("duplicate positions accepted")
	}
	if _, err := Prove(h, leaves, []int{3, 1}); err == nil {
		t.Fatal("descending positions accepted")
	}
}

// Property: for random sizes and random subsets, Prove → RootFromProof
// reproduces the root computed from all leaves.
func TestProofRoundTripProperty(t *testing.T) {
	h := testHasher()
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		leaves := make([][]byte, n)
		for i := range leaves {
			b := make([]byte, 8)
			r.Read(b)
			leaves[i] = b
		}
		root := Root(h, leaves)
		k := 1 + r.Intn(n)
		positions := r.Perm(n)[:k]
		sortInts(positions)
		wantData := make(map[int][]byte, k)
		for _, p := range positions {
			wantData[p] = leaves[p]
		}
		proof, err := Prove(h, leaves, positions)
		if err != nil {
			return false
		}
		got, err := RootFromProof(h, n, wantData, proof)
		if err != nil {
			return false
		}
		return bytes.Equal(got, root)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBuddyGroupSizePaperValues(t *testing.T) {
	// §3.3.2: |h| = 16, |leaf| = 8 → g = 2, groups of 4.
	if got := BuddyGroupSize(8, 16); got != 4 {
		t.Fatalf("BuddyGroupSize(8,16) = %d, want 4", got)
	}
	// 4-byte doc-id leaves → g = 4, groups of 16.
	if got := BuddyGroupSize(4, 16); got != 16 {
		t.Fatalf("BuddyGroupSize(4,16) = %d, want 16", got)
	}
	if got := BuddyGroupSize(32, 16); got != 1 {
		t.Fatalf("BuddyGroupSize(32,16) = %d, want 1", got)
	}
	if got := BuddyGroupSize(0, 16); got != 1 {
		t.Fatalf("BuddyGroupSize(0,16) = %d, want 1", got)
	}
}

func TestExpandBuddies(t *testing.T) {
	got := ExpandBuddies([]int{1, 6}, 4, 10)
	want := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Clipping at n.
	got = ExpandBuddies([]int{9}, 4, 10)
	want = []int{8, 9}
	if len(got) != 2 || got[0] != 8 || got[1] != 9 {
		t.Fatalf("got %v, want %v", got, want)
	}
	// Group size 1: identity.
	got = ExpandBuddies([]int{2, 5}, 1, 10)
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("group 1: got %v", got)
	}
}

func TestRoundUpPrefix(t *testing.T) {
	cases := []struct{ k, g, n, want int }{
		{0, 4, 10, 0},
		{1, 4, 10, 4},
		{4, 4, 10, 4},
		{5, 4, 10, 8},
		{9, 4, 10, 10},
		{3, 1, 10, 3},
		{12, 4, 10, 10},
	}
	for _, c := range cases {
		if got := RoundUpPrefix(c.k, c.g, c.n); got != c.want {
			t.Errorf("RoundUpPrefix(%d,%d,%d) = %d, want %d", c.k, c.g, c.n, got, c.want)
		}
	}
}

// Property: buddy expansion always contains the original positions and is
// sorted, deduplicated and within range.
func TestExpandBuddiesProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		group := []int{1, 2, 4, 8, 16}[r.Intn(5)]
		k := 1 + r.Intn(n)
		want := r.Perm(n)[:k]
		sortInts(want)
		got := ExpandBuddies(want, group, n)
		seen := map[int]bool{}
		for i, p := range got {
			if p < 0 || p >= n {
				return false
			}
			if i > 0 && got[i-1] >= p {
				return false
			}
			seen[p] = true
		}
		for _, w := range want {
			if !seen[w] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRoot1024(b *testing.B) {
	h := testHasher()
	leaves := leavesN(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Root(h, leaves)
	}
}

func BenchmarkProvePrefix(b *testing.B) {
	h := testHasher()
	leaves := leavesN(1024)
	want := make([]int, 32)
	for i := range want {
		want[i] = i
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Prove(h, leaves, want); err != nil {
			b.Fatal(err)
		}
	}
}
