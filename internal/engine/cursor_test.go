package engine

import (
	"testing"

	"authtext/internal/core"
	"authtext/internal/index"
	"authtext/internal/store"
)

// buildList writes one list in both layouts onto a fresh device.
func buildCursorFixture(t *testing.T, n int, blockSize int) (*store.Device, store.Extent, store.Extent, []index.Posting) {
	t.Helper()
	dev := store.MustDevice(store.Params{
		BlockSize: blockSize, Seek: 1e6, Rotation: 1e6, TransferBytesPerSec: 1 << 20,
	})
	ps := make([]index.Posting, n)
	for i := range ps {
		ps[i] = index.Posting{Doc: index.DocID(i * 3), W: float32(n-i) * 0.5}
	}
	plainExt := dev.AllocWrite(encodePlainList(ps, blockSize))
	rho := core.ChainRho(blockSize, 16)
	leaves := core.KindTNRACMHT.ListLeaves(ps)
	hasher := testHasher()
	digests := core.ChainDigests(hasher, leaves, rho)
	chainExt := dev.AllocWrite(encodeChainList(ps, digests, blockSize, 16, rho))
	return dev, plainExt, chainExt, ps
}

func TestPlainCursorRoundTrip(t *testing.T) {
	dev, plainExt, _, ps := buildCursorFixture(t, 100, 256)
	cur := newListCursor(dev.NewSession(), plainExt, len(ps), false, 256, 16)
	for i := 0; i < len(ps); i++ {
		p, ok := cur.Peek()
		if !ok {
			t.Fatalf("exhausted at %d", i)
		}
		if p != ps[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, p, ps[i])
		}
		cur.Advance()
	}
	if _, ok := cur.Peek(); ok {
		t.Fatal("cursor not exhausted")
	}
	if cur.Consumed() != len(ps) {
		t.Fatal("consumed mismatch")
	}
}

func TestChainCursorRoundTripAndDigests(t *testing.T) {
	dev, _, chainExt, ps := buildCursorFixture(t, 100, 256)
	rho := core.ChainRho(256, 16)
	cur := newListCursor(dev.NewSession(), chainExt, len(ps), true, 256, 16)
	all := cur.LoadAll()
	if len(all) != len(ps) {
		t.Fatalf("LoadAll %d entries", len(all))
	}
	for i := range ps {
		if all[i] != ps[i] {
			t.Fatalf("entry %d mismatch", i)
		}
	}
	// Header digests must reproduce the chain computation.
	leaves := core.KindTNRACMHT.ListLeaves(ps)
	digests := core.ChainDigests(testHasher(), leaves, rho)
	nb := core.ChainBlocks(len(ps), rho)
	for j := 0; j < nb-1; j++ {
		got := cur.NextDigest(j)
		if string(got) != string(digests[j+1]) {
			t.Fatalf("block %d header digest mismatch", j)
		}
	}
	if cur.NextDigest(nb-1) != nil {
		t.Fatal("last block must have no successor digest")
	}
}

func TestCursorLazyBlockLoads(t *testing.T) {
	dev, plainExt, _, ps := buildCursorFixture(t, 100, 256) // 32 entries/block
	sess := dev.NewSession()
	cur := newListCursor(sess, plainExt, len(ps), false, 256, 16)
	cur.Peek()
	if got := sess.Stats().BlockReads; got != 1 {
		t.Fatalf("first peek read %d blocks, want 1", got)
	}
	// Consuming within the block costs nothing further.
	for i := 0; i < 31; i++ {
		cur.Advance()
		cur.Peek()
	}
	if got := sess.Stats().BlockReads; got != 1 {
		t.Fatalf("within-block consumption read %d blocks", got)
	}
	cur.Advance()
	cur.Peek() // crosses into block 1
	if got := sess.Stats().BlockReads; got != 2 {
		t.Fatalf("block crossing read %d blocks, want 2", got)
	}
}

func TestFullListForProofChargesFullScan(t *testing.T) {
	dev, plainExt, _, ps := buildCursorFixture(t, 100, 256)
	sess := dev.NewSession()
	cur := newListCursor(sess, plainExt, len(ps), false, 256, 16)
	cur.Peek() // one block fetched during "processing"
	before := sess.Stats()
	all := cur.FullListForProof()
	if len(all) != len(ps) {
		t.Fatal("full scan incomplete")
	}
	// §4.1 prevents caching: the proof pass pays for every block again.
	if got := sess.Stats().Sub(before).BlockReads; got != int64(plainExt.Blocks) {
		t.Fatalf("proof scan read %d blocks, want %d", got, plainExt.Blocks)
	}
}

func TestDocRecordRoundTrip(t *testing.T) {
	vec := []index.TermFreq{{Term: 2, W: 0.5}, {Term: 9, W: 1.25}}
	hash := make([]byte, 16)
	for i := range hash {
		hash[i] = byte(i)
	}
	sigBytes := []byte("signature-bytes")
	rec, err := decodeDocRecord(encodeDocRecord(vec, hash, sigBytes), 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.vec) != 2 || rec.vec[1].W != 1.25 || rec.vec[0].Term != 2 {
		t.Fatalf("vector mismatch: %+v", rec.vec)
	}
	if string(rec.contentHash) != string(hash) || string(rec.sig) != string(sigBytes) {
		t.Fatal("hash/sig mismatch")
	}
}

func TestDecodeDocRecordErrors(t *testing.T) {
	if _, err := decodeDocRecord([]byte{1, 2, 3}, 16); err == nil {
		t.Fatal("short record decoded")
	}
	// Claimed count larger than the payload.
	bad := encodeDocRecord([]index.TermFreq{{Term: 1, W: 1}}, make([]byte, 16), nil)
	bad[3] = 200
	if _, err := decodeDocRecord(bad, 16); err == nil {
		t.Fatal("truncated record decoded")
	}
}

func testHasher() (h mhtHasher) { return newTestHasher() }
