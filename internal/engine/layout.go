package engine

import (
	"encoding/binary"
	"fmt"
	"math"

	"authtext/internal/index"
	"authtext/internal/store"
)

// Physical layouts (1-Kbyte blocks by default, §4.1):
//
// Plain list block (MHT variants, PSCAN): packed 8-byte ⟨d, f⟩ entries,
// blockSize/8 per block.
//
// Chain list block (CMHT variants, Figs 9/12): a header holding the digest
// of the succeeding block (hashSize bytes) and its address (4 bytes),
// followed by ρ = (blockSize − hashSize − 4)/8 packed entries.
//
// Document record (TRA random accesses, Fig 8): leaf count (4), h(doc)
// (hashSize), signature length (2) + signature, then the ⟨t, w_{d,t}⟩
// leaves sorted by term id, 8 bytes each.

const entrySize = 8

func putEntry(b []byte, p index.Posting) {
	binary.BigEndian.PutUint32(b, uint32(p.Doc))
	binary.BigEndian.PutUint32(b[4:], math.Float32bits(p.W))
}

func getEntry(b []byte) index.Posting {
	return index.Posting{
		Doc: index.DocID(binary.BigEndian.Uint32(b)),
		W:   math.Float32frombits(binary.BigEndian.Uint32(b[4:])),
	}
}

// encodePlainList packs postings into plain blocks.
func encodePlainList(ps []index.Posting, blockSize int) []byte {
	perBlock := blockSize / entrySize
	nb := (len(ps) + perBlock - 1) / perBlock
	out := make([]byte, nb*blockSize)
	for i, p := range ps {
		blk := i / perBlock
		off := blk*blockSize + (i%perBlock)*entrySize
		putEntry(out[off:], p)
	}
	return out
}

// encodeChainList packs postings into chain blocks; digests[j+1] is written
// into block j's header (ChainDigests output), and nextAddr is the
// block-relative successor index.
func encodeChainList(ps []index.Posting, digests [][]byte, blockSize, hashSize, rho int) []byte {
	nb := (len(ps) + rho - 1) / rho
	out := make([]byte, nb*blockSize)
	for j := 0; j < nb; j++ {
		base := j * blockSize
		if j < nb-1 {
			copy(out[base:], digests[j+1])
			binary.BigEndian.PutUint32(out[base+hashSize:], uint32(j+1))
		}
		lo := j * rho
		hi := lo + rho
		if hi > len(ps) {
			hi = len(ps)
		}
		for i := lo; i < hi; i++ {
			off := base + hashSize + 4 + (i-lo)*entrySize
			putEntry(out[off:], ps[i])
		}
	}
	return out
}

// encodeDocRecord serialises one document record.
func encodeDocRecord(vec []index.TermFreq, contentHash, sigBytes []byte) []byte {
	out := make([]byte, 0, 4+len(contentHash)+2+len(sigBytes)+len(vec)*entrySize)
	out = binary.BigEndian.AppendUint32(out, uint32(len(vec)))
	out = append(out, contentHash...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(sigBytes)))
	out = append(out, sigBytes...)
	for _, tf := range vec {
		var e [entrySize]byte
		binary.BigEndian.PutUint32(e[:], uint32(tf.Term))
		binary.BigEndian.PutUint32(e[4:], math.Float32bits(tf.W))
		out = append(out, e[:]...)
	}
	return out
}

// docRecord is a parsed document record.
type docRecord struct {
	vec         []index.TermFreq
	contentHash []byte
	sig         []byte
}

func decodeDocRecord(b []byte, hashSize int) (*docRecord, error) {
	if len(b) < 4+hashSize+2 {
		return nil, fmt.Errorf("engine: document record too short (%d bytes)", len(b))
	}
	n := int(binary.BigEndian.Uint32(b))
	off := 4
	rec := &docRecord{contentHash: b[off : off+hashSize]}
	off += hashSize
	sigLen := int(binary.BigEndian.Uint16(b[off:]))
	off += 2
	if len(b) < off+sigLen+n*entrySize {
		return nil, fmt.Errorf("engine: document record truncated")
	}
	rec.sig = b[off : off+sigLen]
	off += sigLen
	rec.vec = make([]index.TermFreq, n)
	for i := 0; i < n; i++ {
		rec.vec[i] = index.TermFreq{
			Term: index.TermID(binary.BigEndian.Uint32(b[off:])),
			W:    math.Float32frombits(binary.BigEndian.Uint32(b[off+4:])),
		}
		off += entrySize
	}
	return rec, nil
}

// Layout records where each structure lives on the device.
type Layout struct {
	Plain     []store.Extent // per term
	ChainTRA  []store.Extent // per term
	ChainTNRA []store.Extent // per term
	Doc       []store.Extent // per document
}
