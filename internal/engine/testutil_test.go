package engine

import (
	"authtext/internal/mht"
	"authtext/internal/sig"
	"authtext/internal/vo"
)

// mhtHasher aliases the tree hasher for test helpers.
type mhtHasher = mht.Hasher

func newTestHasher() mht.Hasher { return mht.NewHasher(sig.MustHasher(16)) }

// decodeForTest re-parses an encoded VO for structural assertions.
func decodeForTest(b []byte) (*vo.VO, error) { return vo.Decode(b) }
