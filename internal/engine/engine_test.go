package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"authtext/internal/core"
	"authtext/internal/index"
	"authtext/internal/okapi"
	"authtext/internal/sig"
	"authtext/internal/store"
)

func testSigner(t testing.TB) sig.Signer {
	t.Helper()
	s, err := sig.NewHMACSigner([]byte("engine-test-key"), 128)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func smallParams() store.Params {
	p := store.DefaultParams()
	p.BlockSize = 256 // small blocks exercise multi-block lists on tiny corpora
	return p
}

// randomDocs builds a skewed random corpus.
func randomDocs(r *rand.Rand, nDocs, vocab int) []index.Document {
	docs := make([]index.Document, nDocs)
	for i := range docs {
		ln := 3 + r.Intn(60)
		toks := make([]string, ln)
		for j := range toks {
			w := int(math.Floor(math.Pow(r.Float64(), 2.5) * float64(vocab)))
			toks[j] = fmt.Sprintf("w%03d", w)
		}
		content := []byte(fmt.Sprintf("document %d: %v", i, toks))
		docs[i] = index.Document{Content: content, Tokens: toks}
	}
	return docs
}

func buildTestCollection(t testing.TB, seed int64, nDocs, vocab int, mutate func(*Config)) *Collection {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	cfg := Config{
		Store:            smallParams(),
		HashSize:         16,
		Signer:           testSigner(t),
		Okapi:            okapi.DefaultParams(),
		RemoveSingletons: false,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	col, err := BuildCollection(randomDocs(r, nDocs, vocab), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return col
}

var allVariants = []struct {
	algo   core.Algo
	scheme core.Scheme
}{
	{core.AlgoTRA, core.SchemeMHT},
	{core.AlgoTRA, core.SchemeCMHT},
	{core.AlgoTNRA, core.SchemeMHT},
	{core.AlgoTNRA, core.SchemeCMHT},
}

func TestSearchAndVerifyAllVariants(t *testing.T) {
	col := buildTestCollection(t, 1, 60, 40, nil)
	r := rand.New(rand.NewSource(2))
	idx := col.Index()
	for trial := 0; trial < 25; trial++ {
		nq := 1 + r.Intn(4)
		tokens := make([]string, nq)
		for i := range tokens {
			tokens[i] = idx.Name(index.TermID(r.Intn(idx.M())))
		}
		rr := 1 + r.Intn(8)
		for _, v := range allVariants {
			res, voBytes, stats, err := col.Search(tokens, rr, v.algo, v.scheme)
			if err != nil {
				t.Fatalf("%v-%v %v: %v", v.algo, v.scheme, tokens, err)
			}
			if _, err := col.VerifyResult(tokens, rr, res, voBytes); err != nil {
				t.Fatalf("%v-%v %v r=%d: verification failed: %v", v.algo, v.scheme, tokens, rr, err)
			}
			if stats.VO.Total() != len(voBytes) {
				t.Fatalf("VO breakdown %d != encoded %d", stats.VO.Total(), len(voBytes))
			}
			if stats.EntriesRead < len(tokens) {
				t.Fatalf("entries read %d < q", stats.EntriesRead)
			}
		}
	}
}

func TestResultsAgreeAcrossVariantsAndPSCAN(t *testing.T) {
	col := buildTestCollection(t, 3, 80, 50, nil)
	idx := col.Index()
	r := rand.New(rand.NewSource(4))
	src := &core.MemSource{Idx: idx}
	for trial := 0; trial < 20; trial++ {
		tokens := []string{
			idx.Name(index.TermID(r.Intn(idx.M()))),
			idx.Name(index.TermID(r.Intn(idx.M()))),
			idx.Name(index.TermID(r.Intn(idx.M()))),
		}
		rr := 1 + r.Intn(10)
		q, err := core.BuildQuery(idx, tokens)
		if err != nil || len(q.Terms) == 0 {
			continue
		}
		oracle, err := core.PSCAN(q, src)
		if err != nil {
			t.Fatal(err)
		}
		want := oracle
		if len(want) > rr {
			want = want[:rr]
		}
		trueScore := make(map[index.DocID]float64)
		for _, e := range oracle {
			trueScore[e.Doc] = e.Score
		}
		for _, v := range allVariants {
			res, _, _, err := col.Search(tokens, rr, v.algo, v.scheme)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Entries) != len(want) {
				t.Fatalf("%v-%v: %d results, oracle %d", v.algo, v.scheme, len(res.Entries), len(want))
			}
			for i, e := range res.Entries {
				ts, ok := trueScore[e.Doc]
				if !ok {
					t.Fatalf("%v-%v: doc %d unknown to oracle", v.algo, v.scheme, e.Doc)
				}
				if math.Abs(ts-want[i].Score) > 1e-12 {
					t.Fatalf("%v-%v: position %d true score %v, oracle %v", v.algo, v.scheme, i, ts, want[i].Score)
				}
			}
		}
	}
}

func TestMHTAndCMHTReadSameEntries(t *testing.T) {
	// Fig 13a: the MHT and CMHT variants of the same algorithm have the
	// same cut-off, hence equal entries read.
	col := buildTestCollection(t, 5, 70, 40, nil)
	idx := col.Index()
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 15; trial++ {
		tokens := []string{
			idx.Name(index.TermID(r.Intn(idx.M()))),
			idx.Name(index.TermID(r.Intn(idx.M()))),
		}
		for _, algo := range []core.Algo{core.AlgoTRA, core.AlgoTNRA} {
			_, _, sMHT, err := col.Search(tokens, 5, algo, core.SchemeMHT)
			if err != nil {
				t.Fatal(err)
			}
			_, _, sCMHT, err := col.Search(tokens, 5, algo, core.SchemeCMHT)
			if err != nil {
				t.Fatal(err)
			}
			if sMHT.EntriesRead != sCMHT.EntriesRead {
				t.Fatalf("%v: MHT read %d entries, CMHT %d", algo, sMHT.EntriesRead, sCMHT.EntriesRead)
			}
		}
	}
}

func TestUnknownTokensIgnored(t *testing.T) {
	col := buildTestCollection(t, 7, 40, 30, nil)
	idx := col.Index()
	tokens := []string{idx.Name(0), "zzzz-not-in-dictionary"}
	for _, v := range allVariants {
		res, voBytes, _, err := col.Search(tokens, 3, v.algo, v.scheme)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := col.VerifyResult(tokens, 3, res, voBytes); err != nil {
			t.Fatalf("%v-%v: %v", v.algo, v.scheme, err)
		}
	}
}

func TestAllUnknownQuery(t *testing.T) {
	col := buildTestCollection(t, 7, 40, 30, nil)
	tokens := []string{"nope", "zilch"}
	res, voBytes, _, err := col.Search(tokens, 3, core.AlgoTNRA, core.SchemeCMHT)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 0 {
		t.Fatal("results for a fully out-of-dictionary query")
	}
	if _, err := col.VerifyResult(tokens, 3, res, voBytes); err != nil {
		t.Fatal(err)
	}
}

func TestDictionaryMode(t *testing.T) {
	col := buildTestCollection(t, 9, 50, 35, func(c *Config) { c.DictMode = true })
	idx := col.Index()
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 10; trial++ {
		tokens := []string{
			idx.Name(index.TermID(r.Intn(idx.M()))),
			idx.Name(index.TermID(r.Intn(idx.M()))),
		}
		for _, v := range allVariants {
			res, voBytes, _, err := col.Search(tokens, 4, v.algo, v.scheme)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := col.VerifyResult(tokens, 4, res, voBytes); err != nil {
				t.Fatalf("dict mode %v-%v: %v", v.algo, v.scheme, err)
			}
		}
	}
}

func TestVocabProofs(t *testing.T) {
	col := buildTestCollection(t, 11, 40, 30, func(c *Config) { c.VocabProofs = true })
	idx := col.Index()
	// Tokens that sort before, between, and after dictionary terms.
	tokens := []string{idx.Name(0), "aaaa", "w0500x", "zzzz"}
	res, voBytes, _, err := col.Search(tokens, 3, core.AlgoTNRA, core.SchemeCMHT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.VerifyResult(tokens, 3, res, voBytes); err != nil {
		t.Fatalf("vocab proofs: %v", err)
	}
}

func TestVocabProofsDetectDroppedTerm(t *testing.T) {
	// With the extension enabled, silently dropping a dictionary term from
	// the query must be detected: the server cannot produce a
	// non-membership proof for a term that exists.
	col := buildTestCollection(t, 11, 40, 30, func(c *Config) { c.VocabProofs = true })
	idx := col.Index()
	kept, dropped := idx.Name(0), idx.Name(index.TermID(idx.M()/2))
	tokens := []string{kept, dropped}
	// Honest query on the kept term only; then claim it answered both.
	res, voBytes, _, err := col.Search([]string{kept}, 3, core.AlgoTNRA, core.SchemeCMHT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.VerifyResult(tokens, 3, res, voBytes); err == nil {
		t.Fatal("dropped dictionary term went undetected")
	} else if core.CodeOf(err) != core.CodeBadVocabProof {
		t.Fatalf("wrong code: %v", err)
	}
}

func TestIOAccountingShape(t *testing.T) {
	// TNRA-CMHT must read no more blocks than TNRA-MHT (which scans whole
	// lists for digest regeneration), and TRA must incur random accesses.
	col := buildTestCollection(t, 13, 120, 30, nil)
	idx := col.Index()
	// Pick the longest list's term to make the gap visible.
	longest := index.TermID(0)
	for t2 := 1; t2 < idx.M(); t2++ {
		if idx.FT(index.TermID(t2)) > idx.FT(longest) {
			longest = index.TermID(t2)
		}
	}
	tokens := []string{idx.Name(longest)}
	_, _, sMHT, err := col.Search(tokens, 3, core.AlgoTNRA, core.SchemeMHT)
	if err != nil {
		t.Fatal(err)
	}
	_, _, sCMHT, err := col.Search(tokens, 3, core.AlgoTNRA, core.SchemeCMHT)
	if err != nil {
		t.Fatal(err)
	}
	if sCMHT.IO.BlockReads > sMHT.IO.BlockReads {
		t.Fatalf("TNRA-CMHT read %d blocks, TNRA-MHT %d", sCMHT.IO.BlockReads, sMHT.IO.BlockReads)
	}
	_, _, sTRA, err := col.Search(tokens, 3, core.AlgoTRA, core.SchemeCMHT)
	if err != nil {
		t.Fatal(err)
	}
	if sTRA.RandomAccesses == 0 {
		t.Fatal("TRA made no random accesses")
	}
}

func TestSpaceReport(t *testing.T) {
	col := buildTestCollection(t, 15, 50, 30, nil)
	sp := col.Space()
	if sp.PlainListBytes == 0 || sp.ChainTRABytes == 0 || sp.ChainTNRABytes == 0 || sp.DocRecordBytes == 0 {
		t.Fatalf("incomplete space report: %+v", sp)
	}
	if sp.DeviceBytes < sp.PlainListBytes+sp.ChainTRABytes+sp.ChainTNRABytes {
		t.Fatalf("device smaller than its parts: %+v", sp)
	}
	bs := col.BuildStats()
	if bs.Signatures != 4*col.Index().M()+col.Index().N+1 {
		t.Fatalf("signature count %d", bs.Signatures)
	}
}

func TestBuildRejectsMissingSigner(t *testing.T) {
	if _, err := BuildCollection(randomDocs(rand.New(rand.NewSource(1)), 5, 10), Config{}); err == nil {
		t.Fatal("missing signer accepted")
	}
}

func TestSearchRejectsBadR(t *testing.T) {
	col := buildTestCollection(t, 17, 20, 15, nil)
	if _, _, _, err := col.Search([]string{col.Index().Name(0)}, 0, core.AlgoTRA, core.SchemeMHT); err == nil {
		t.Fatal("r=0 accepted")
	}
}
