package engine

import (
	"errors"
	"fmt"
	"math"
	"time"

	"authtext/internal/core"
	"authtext/internal/index"
	"authtext/internal/mht"
	"authtext/internal/sig"
	"authtext/internal/store"
)

// State is the portable description of a fully built collection: everything
// BuildCollection computed that cannot be cheaply re-derived, and nothing
// secret — in particular, no signer. internal/snapshot serialises it;
// Restore turns it back into a serving Collection without signing anything.
type State struct {
	// Manifest is the decoded manifest; ManifestSig the owner's signature
	// over its canonical encoding.
	Manifest    *core.Manifest
	ManifestSig []byte
	// Verifier is the owner's public verification key.
	Verifier sig.Verifier
	// Index is the in-memory inverted index (dictionary, lists, document
	// vectors, raw content).
	Index *index.Index
	// StoreParams and DeviceData reconstruct the simulated disk.
	StoreParams store.Params
	DeviceData  []byte
	// ShareDeviceData makes Restore alias DeviceData instead of copying it
	// (zero-copy opens over a memory-mapped snapshot). The provider of
	// DeviceData then owns its lifetime; see store.RestoreDeviceShared.
	ShareDeviceData bool
	// Layout locates every structure on the device.
	Layout Layout
	// TermSigs holds the per-list signatures ([kind-1][termID]; all nil in
	// dictionary mode); TermRoots the corresponding roots (always present,
	// needed for dictionary proofs); DocHash the h(doc) leaves.
	TermSigs  [4][][]byte
	TermRoots [4][][]byte
	DocHash   [][]byte
	// Authority holds the pinned per-document authority scores (boost
	// extension); nil unless Manifest.Boosted.
	Authority []float32
	// Space and build statistics, carried over for reporting.
	Space      SpaceReport
	Signatures int
	BuildTime  time.Duration
}

// ExportState captures the collection for serialisation. Slices alias
// collection memory; the caller must not mutate them.
func (c *Collection) ExportState() *State {
	return &State{
		Manifest:    c.manifest,
		ManifestSig: c.manifestSig,
		Verifier:    c.verifier,
		Index:       c.idx,
		StoreParams: c.dev.Params(),
		DeviceData:  c.dev.Data(),
		Layout:      c.layout,
		TermSigs:    c.termSigs,
		TermRoots:   c.termRoots,
		DocHash:     c.docHash,
		Authority:   c.authority,
		Space:       c.space,
		Signatures:  c.buildStats.Signatures,
		BuildTime:   c.buildStats.BuildTime,
	}
}

// Restore reconstructs a serving Collection from an exported state without
// touching a signer. The state may come from an untrusted snapshot, so
// every structural invariant the query path relies on is re-checked here;
// what Restore cannot check is authenticity — that remains the manifest
// signature's job, and a tampered-but-consistent state yields VOs that fail
// client verification.
func Restore(st *State) (*Collection, error) {
	m := st.Manifest
	if m == nil {
		return nil, errors.New("engine: restore: nil manifest")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if st.Verifier == nil {
		return nil, errors.New("engine: restore: nil verifier")
	}
	idx := st.Index
	if idx == nil {
		return nil, errors.New("engine: restore: nil index")
	}
	if idx.N != int(m.N) || idx.M() != int(m.M) {
		return nil, fmt.Errorf("engine: restore: index %d×%d does not match manifest %d×%d",
			idx.N, idx.M(), m.N, m.M)
	}
	if math.Float64bits(idx.AvgLen) != math.Float64bits(m.AvgLen) ||
		math.Float64bits(idx.Okapi.K1) != math.Float64bits(m.K1) ||
		math.Float64bits(idx.Okapi.B) != math.Float64bits(m.B) {
		return nil, errors.New("engine: restore: index parameters disagree with manifest")
	}
	if st.StoreParams.BlockSize != int(m.BlockSize) {
		return nil, fmt.Errorf("engine: restore: device block size %d, manifest %d",
			st.StoreParams.BlockSize, m.BlockSize)
	}
	restore := store.RestoreDevice
	if st.ShareDeviceData {
		restore = store.RestoreDeviceShared
	}
	dev, err := restore(st.StoreParams, st.DeviceData)
	if err != nil {
		return nil, err
	}

	hashSize := int(m.HashSize)
	baseHasher, err := sig.NewHasher(hashSize)
	if err != nil {
		return nil, err
	}
	blockSize := st.StoreParams.BlockSize
	rho := core.ChainRho(blockSize, hashSize)
	plainPerBlock := blockSize / entrySize
	n, mm := idx.N, idx.M()

	// Layout: every extent must lie on the device, and the list extents
	// must cover exactly the blocks the cursors will read for ft entries —
	// otherwise a hostile snapshot could steer the query path off the end
	// of an extent.
	if len(st.Layout.Plain) != mm || len(st.Layout.ChainTRA) != mm ||
		len(st.Layout.ChainTNRA) != mm || len(st.Layout.Doc) != n {
		return nil, errors.New("engine: restore: layout table sizes disagree with index")
	}
	checkExtent := func(what string, i int, ext store.Extent, wantBlocks int, fullBlocks bool) error {
		// Subtract instead of adding: Start+Blocks would overflow int64 for
		// a hostile Start near MaxInt64 and wrap past the bound.
		if ext.Start < 0 || ext.Blocks < 1 || int64(ext.Start) > dev.Blocks()-int64(ext.Blocks) {
			return fmt.Errorf("engine: restore: %s extent %d off-device", what, i)
		}
		if wantBlocks >= 0 && int(ext.Blocks) != wantBlocks {
			return fmt.Errorf("engine: restore: %s extent %d has %d blocks, need %d",
				what, i, ext.Blocks, wantBlocks)
		}
		if fullBlocks {
			if ext.Length != int64(ext.Blocks)*int64(blockSize) {
				return fmt.Errorf("engine: restore: %s extent %d not block-exact", what, i)
			}
		} else if ext.Length < 0 || ext.Length > int64(ext.Blocks)*int64(blockSize) {
			return fmt.Errorf("engine: restore: %s extent %d length out of range", what, i)
		}
		return nil
	}
	blocksFor := func(entries, perBlock int) int {
		nb := (entries + perBlock - 1) / perBlock
		if nb == 0 {
			nb = 1
		}
		return nb
	}
	for t := 0; t < mm; t++ {
		ft := idx.FT(index.TermID(t))
		if err := checkExtent("plain", t, st.Layout.Plain[t], blocksFor(ft, plainPerBlock), true); err != nil {
			return nil, err
		}
		if err := checkExtent("chain-tra", t, st.Layout.ChainTRA[t], blocksFor(ft, rho), true); err != nil {
			return nil, err
		}
		if err := checkExtent("chain-tnra", t, st.Layout.ChainTNRA[t], blocksFor(ft, rho), true); err != nil {
			return nil, err
		}
	}
	for d := 0; d < n; d++ {
		if err := checkExtent("doc", d, st.Layout.Doc[d], -1, false); err != nil {
			return nil, err
		}
	}

	// Authentication material: roots and document hashes are fixed-width;
	// per-list signatures exist exactly when dictionary mode is off.
	for k := range st.TermRoots {
		if len(st.TermRoots[k]) != mm {
			return nil, fmt.Errorf("engine: restore: term-root table %d has %d entries", k, len(st.TermRoots[k]))
		}
		for t, r := range st.TermRoots[k] {
			if len(r) != hashSize {
				return nil, fmt.Errorf("engine: restore: term root %d/%d size mismatch", k, t)
			}
		}
		if m.DictMode {
			if st.TermSigs[k] != nil {
				return nil, errors.New("engine: restore: per-list signatures present in dictionary mode")
			}
			continue
		}
		if len(st.TermSigs[k]) != mm {
			return nil, fmt.Errorf("engine: restore: signature table %d has %d entries", k, len(st.TermSigs[k]))
		}
		for t, s := range st.TermSigs[k] {
			if len(s) == 0 {
				return nil, fmt.Errorf("engine: restore: term %d kind %d has empty signature", t, k+1)
			}
		}
	}
	if len(st.DocHash) != n {
		return nil, fmt.Errorf("engine: restore: %d document hashes for %d documents", len(st.DocHash), n)
	}
	for d, h := range st.DocHash {
		if len(h) != hashSize {
			return nil, fmt.Errorf("engine: restore: document hash %d size mismatch", d)
		}
	}

	c := &Collection{
		idx:        idx,
		dev:        dev,
		baseHasher: baseHasher,
		hasher:     mht.NewHasher(baseHasher),
		verifier:   st.Verifier,
		layout:     st.Layout,
		termSigs:   st.TermSigs,
		termRoots:  st.TermRoots,
		docHash:    st.DocHash,
		manifest:   m,
		// ManifestSig authenticity is not assumed here; clients check it.
		manifestSig: st.ManifestSig,
		space:       st.Space,
		buildStats:  BuildStats{BuildTime: st.BuildTime, Signatures: st.Signatures},
	}
	c.cfg = Config{
		Store:       st.StoreParams,
		HashSize:    hashSize,
		Okapi:       idx.Okapi,
		DictMode:    m.DictMode,
		VocabProofs: m.VocabProofsEnabled,
		Beta:        m.Beta,
		Generation:  m.Generation,
	}
	// Derived leaf tables are pure encodings — rebuild rather than persist.
	if m.VocabProofsEnabled {
		c.nameDict = make([][]byte, mm)
		for t := 0; t < mm; t++ {
			c.nameDict[t] = core.VocabLeaf(idx.Name(index.TermID(t)))
		}
	}
	if m.Boosted {
		if len(st.Authority) != n {
			return nil, fmt.Errorf("engine: restore: %d authority scores for %d documents", len(st.Authority), n)
		}
		c.authority = st.Authority
		c.authorityLeaves = make([][]byte, n)
		for d, a := range st.Authority {
			if math.IsNaN(float64(a)) || a < 0 || a > 1 {
				return nil, fmt.Errorf("engine: restore: authority[%d] = %v outside [0,1]", d, a)
			}
			c.authorityLeaves[d] = core.EncodeAuthorityLeaf(index.DocID(d), a)
		}
		auth := c.authority
		c.boost = &core.Boost{
			Beta: m.Beta,
			AMax: m.AMax,
			Authority: func(d index.DocID) float64 {
				return float64(auth[d])
			},
		}
	} else if st.Authority != nil {
		return nil, errors.New("engine: restore: authority scores present without boost flag")
	}
	return c, nil
}
