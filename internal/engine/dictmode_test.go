package engine

import (
	"testing"

	"authtext/internal/core"
	"authtext/internal/index"
	"authtext/internal/vo"
)

func TestDictModeTamperedRootRejected(t *testing.T) {
	col := buildTestCollection(t, 31, 50, 30, func(c *Config) { c.DictMode = true })
	idx := col.Index()
	tokens := []string{idx.Name(0), idx.Name(1)}
	res, voBytes, _, err := col.Search(tokens, 4, core.AlgoTNRA, core.SchemeCMHT)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := vo.Decode(voBytes)
	if err != nil {
		t.Fatal(err)
	}
	// Forge a revealed frequency: the recomputed term root changes, the
	// dictionary root no longer matches the manifest.
	decoded.Terms[0].Freqs[0] += 1
	if err := col.verifyDecoded(tokens, 4, res, decoded); err == nil {
		t.Fatal("dict-mode frequency forgery accepted")
	} else if core.CodeOf(err) != core.CodeBadTermProof {
		t.Fatalf("wrong code: %v", err)
	}
}

func TestDictModeMissingProofRejected(t *testing.T) {
	col := buildTestCollection(t, 31, 50, 30, func(c *Config) { c.DictMode = true })
	idx := col.Index()
	tokens := []string{idx.Name(0)}
	res, voBytes, _, err := col.Search(tokens, 4, core.AlgoTNRA, core.SchemeMHT)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := vo.Decode(voBytes)
	if err != nil {
		t.Fatal(err)
	}
	decoded.DictProof = nil
	if err := col.verifyDecoded(tokens, 4, res, decoded); err == nil {
		t.Fatal("missing dictionary proof accepted")
	}
}

func TestDictModeWrongMRejected(t *testing.T) {
	col := buildTestCollection(t, 31, 50, 30, func(c *Config) { c.DictMode = true })
	idx := col.Index()
	tokens := []string{idx.Name(0)}
	res, voBytes, _, err := col.Search(tokens, 4, core.AlgoTRA, core.SchemeMHT)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := vo.Decode(voBytes)
	if err != nil {
		t.Fatal(err)
	}
	decoded.DictProof.M++
	if err := col.verifyDecoded(tokens, 4, res, decoded); err == nil {
		t.Fatal("wrong dictionary size accepted")
	}
}

func TestDictModeWithVocabProofs(t *testing.T) {
	col := buildTestCollection(t, 33, 50, 30, func(c *Config) {
		c.DictMode = true
		c.VocabProofs = true
	})
	idx := col.Index()
	tokens := []string{idx.Name(0), "zz-out-of-vocab"}
	for _, v := range allVariants {
		res, voBytes, _, err := col.Search(tokens, 4, v.algo, v.scheme)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := col.VerifyResult(tokens, 4, res, voBytes); err != nil {
			t.Fatalf("%v-%v dict+vocab: %v", v.algo, v.scheme, err)
		}
	}
}

// TestChainIOBeatsFullScan asserts the §3.3.2 motivation quantitatively:
// for a query on a long list that the algorithm prunes, TNRA-CMHT's I/O
// must come in well below TNRA-MHT's full-list digest regeneration.
func TestChainIOBeatsFullScan(t *testing.T) {
	col := buildTestCollection(t, 35, 400, 60, nil)
	idx := col.Index()
	// One rare term plus the longest discriminative list: the threshold
	// algorithm stops partway down the long list, so the chain saves I/O.
	longest, rare := -1, -1
	for ti := 0; ti < idx.M(); ti++ {
		ft := idx.FT(index.TermID(ti))
		if ft > idx.N/3 {
			continue
		}
		if longest < 0 || ft > idx.FT(index.TermID(longest)) {
			longest = ti
		}
		if ft <= 4 && rare < 0 {
			rare = ti
		}
	}
	if longest < 0 || rare < 0 {
		t.Skip("fixture lacks suitable terms")
	}
	tokens := []string{idx.Name(index.TermID(rare)), idx.Name(index.TermID(longest))}
	_, _, mht, err := col.Search(tokens, 3, core.AlgoTNRA, core.SchemeMHT)
	if err != nil {
		t.Fatal(err)
	}
	_, _, cmht, err := col.Search(tokens, 3, core.AlgoTNRA, core.SchemeCMHT)
	if err != nil {
		t.Fatal(err)
	}
	// The MHT variant reads every list twice (processing + digest
	// regeneration, no caching); the chain variant reads each block once.
	if cmht.IO.BlockReads*3 > mht.IO.BlockReads*2 {
		t.Fatalf("TNRA-CMHT read %d blocks, TNRA-MHT %d: chain should save ≥ a third",
			cmht.IO.BlockReads, mht.IO.BlockReads)
	}
}
