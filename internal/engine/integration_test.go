package engine

import (
	"math/rand"
	"strings"
	"testing"

	"authtext/internal/core"
	"authtext/internal/corpus"
	"authtext/internal/index"
	"authtext/internal/workload"
)

// TestRepeatedQueryTerms exercises f_{Q,t} > 1: repeating a term multiplies
// its w_{Q,t} (Formula 1), which both sides must derive identically.
func TestRepeatedQueryTerms(t *testing.T) {
	col := buildTestCollection(t, 61, 50, 30, nil)
	idx := col.Index()
	name := idx.Name(0)
	other := idx.Name(1)
	single := []string{name, other}
	doubled := []string{name, other, name} // f_{Q,name} = 2

	for _, v := range allVariants {
		resS, voS, _, err := col.Search(single, 4, v.algo, v.scheme)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := col.VerifyResult(single, 4, resS, voS); err != nil {
			t.Fatalf("%v-%v single: %v", v.algo, v.scheme, err)
		}
		resD, voD, _, err := col.Search(doubled, 4, v.algo, v.scheme)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := col.VerifyResult(doubled, 4, resD, voD); err != nil {
			t.Fatalf("%v-%v doubled: %v", v.algo, v.scheme, err)
		}
		// Cross-wiring the token multiplicity must fail: the claimed scores
		// were computed under a different w_{Q,t}.
		if len(resD.Entries) > 0 && resD.Entries[0].Score > 0 {
			if _, err := col.VerifyResult(single, 4, resD, voD); err == nil {
				t.Fatalf("%v-%v: doubled-term answer verified against single-term query", v.algo, v.scheme)
			}
		}
	}
}

// TestSingleTermAndManyTermQueries covers the q = 1 and q = 20 extremes of
// the Fig 13 sweep.
func TestSingleTermAndManyTermQueries(t *testing.T) {
	col := buildTestCollection(t, 63, 80, 40, nil)
	idx := col.Index()
	one := []string{idx.Name(3)}
	var many []string
	for i := 0; i < 20 && i < idx.M(); i++ {
		many = append(many, idx.Name(index.TermID(i)))
	}
	for _, tokens := range [][]string{one, many} {
		for _, v := range allVariants {
			res, voBytes, _, err := col.Search(tokens, 5, v.algo, v.scheme)
			if err != nil {
				t.Fatalf("%v-%v q=%d: %v", v.algo, v.scheme, len(tokens), err)
			}
			if _, err := col.VerifyResult(tokens, 5, res, voBytes); err != nil {
				t.Fatalf("%v-%v q=%d: %v", v.algo, v.scheme, len(tokens), err)
			}
		}
	}
}

// TestAllExtensionsTogether runs dictionary mode, vocabulary proofs and the
// authority boost simultaneously across every variant.
func TestAllExtensionsTogether(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	docs := randomDocs(r, 60, 30)
	authority := make([]float64, len(docs))
	for d := range authority {
		authority[d] = r.Float64()
	}
	cfg := Config{
		Store:       smallParams(),
		HashSize:    16,
		Signer:      testSigner(t),
		DictMode:    true,
		VocabProofs: true,
		Authority:   authority,
		Beta:        1.5,
	}
	col, err := BuildCollection(docs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	idx := col.Index()
	tokens := []string{idx.Name(0), "zz-not-a-term", idx.Name(2)}
	for _, v := range allVariants {
		res, voBytes, _, err := col.Search(tokens, 4, v.algo, v.scheme)
		if err != nil {
			t.Fatalf("%v-%v: %v", v.algo, v.scheme, err)
		}
		if _, err := col.VerifyResult(tokens, 4, res, voBytes); err != nil {
			t.Fatalf("all-extensions %v-%v: %v", v.algo, v.scheme, err)
		}
	}
}

// TestSmallProfileTRECWorkload is a heavier integration pass: the small
// synthetic corpus under the TREC-like workload with every variant
// verified. Skipped with -short.
func TestSmallProfileTRECWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy integration test")
	}
	signer := testSigner(t)
	col, err := BuildCollection(corpus.Generate(corpus.Tiny()), DefaultConfig(signer))
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.TRECLike(col.Index(), 15, 5)
	for _, q := range queries {
		for _, v := range allVariants {
			res, voBytes, st, err := col.Search(q, 10, v.algo, v.scheme)
			if err != nil {
				t.Fatalf("%v-%v %v: %v", v.algo, v.scheme, q, err)
			}
			if _, err := col.VerifyResult(q, 10, res, voBytes); err != nil {
				t.Fatalf("%v-%v %v: %v", v.algo, v.scheme, strings.Join(q, " "), err)
			}
			if st.IO.BlockReads == 0 {
				t.Fatal("no I/O recorded")
			}
		}
	}
}

// TestStatsEntriesConsistency cross-checks the per-term stats against the
// VO's revealed prefixes.
func TestStatsEntriesConsistency(t *testing.T) {
	col := buildTestCollection(t, 69, 60, 30, nil)
	idx := col.Index()
	tokens := []string{idx.Name(0), idx.Name(5)}
	res, voBytes, st, err := col.Search(tokens, 4, core.AlgoTNRA, core.SchemeCMHT)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	decoded, err := decodeForTest(voBytes)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, tp := range decoded.Terms {
		sum += int(tp.KScore)
	}
	if sum != st.EntriesRead {
		t.Fatalf("VO reveals %d scoring entries, stats report %d", sum, st.EntriesRead)
	}
}
