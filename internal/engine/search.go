package engine

import (
	"fmt"
	"sort"
	"time"

	"authtext/internal/core"
	"authtext/internal/index"
	"authtext/internal/mht"
	"authtext/internal/store"
	"authtext/internal/vo"
)

// Result is the query answer delivered to the user: the ordered entries and
// the contents of the result documents (whose retrieval cost is constant
// across algorithms and excluded from the metrics, §4.1).
type Result struct {
	Entries  []core.ResultEntry
	Contents map[index.DocID][]byte
}

// QueryStats captures the per-query costs behind Figs 13–15.
type QueryStats struct {
	Algo           core.Algo
	Scheme         core.Scheme
	QueryTerms     int
	EntriesRead    int     // Σ_i KScore_i
	EntriesPerTerm float64 // Fig 13a/14a/15a
	PctListRead    float64 // Fig 13b/14b/15b (mean over query terms)
	AvgListLen     float64 // the "List Length" baseline
	IO             store.Stats
	VO             vo.Breakdown
	Iterations     int
	RandomAccesses int
	ServerWall     time.Duration
	// EncodeWall is the slice of ServerWall spent serializing the VO;
	// ServerWall-EncodeWall is index traversal + proof assembly.
	EncodeWall time.Duration
}

// Search processes a query (tokens are the post-pipeline token stream) for
// the top r documents using the chosen algorithm and authentication scheme,
// returning the result, the encoded VO, and the cost statistics.
//
// Search is safe for concurrent use: a built Collection is immutable, and
// all per-query mutable state — the simulated disk head and the I/O
// statistics — lives in a store.Session private to this call. Each session
// starts with a cold head, so per-query QueryStats.IO is identical to what
// the serialized engine reported for the same query.
func (c *Collection) Search(tokens []string, r int, algo core.Algo, scheme core.Scheme) (retRes *Result, retVO []byte, retStats *QueryStats, retErr error) {
	if r < 1 {
		return nil, nil, nil, fmt.Errorf("engine: result size %d", r)
	}
	// Cursor code raises block-read failures as a typed panic (the cursor
	// interfaces have no error channel). Recover it here so a poisoned
	// device — a mapped snapshot that failed its deferred checksum —
	// surfaces as a query error, not a process crash.
	defer func() {
		if p := recover(); p != nil {
			f, ok := p.(deviceFault)
			if !ok {
				panic(p)
			}
			retRes, retVO, retStats, retErr = nil, nil, nil, f.err
		}
	}()
	start := time.Now()
	sess := c.dev.NewSession()
	stats := &QueryStats{Algo: algo, Scheme: scheme}

	q, err := core.BuildQuery(c.idx, tokens)
	if err != nil {
		return nil, nil, nil, err
	}
	stats.QueryTerms = len(q.Terms)

	v := &vo.VO{Algo: uint8(algo), Scheme: uint8(scheme), Generation: c.manifest.Generation}
	if c.cfg.VocabProofs {
		if err := c.appendVocabProofs(v, q.Unknown); err != nil {
			return nil, nil, nil, err
		}
	}

	res := &Result{Contents: make(map[index.DocID][]byte)}
	if len(q.Terms) == 0 {
		return c.finish(res, v, stats, sess, start)
	}

	chain := scheme == core.SchemeCMHT
	exts := c.layout.Plain
	if chain {
		if algo == core.AlgoTRA {
			exts = c.layout.ChainTRA
		} else {
			exts = c.layout.ChainTNRA
		}
	}
	src := &recordingSource{open: func(t index.TermID) (*listCursor, error) {
		return newListCursor(sess, exts[t], c.idx.FT(t), chain, c.cfg.Store.BlockSize, c.cfg.HashSize), nil
	}}

	kind := core.KindFor(algo, scheme)
	switch algo {
	case core.AlgoTRA:
		docs := newDocSource(c, sess)
		out, err := core.TRAWithBoost(q, src, docs, r, c.boost, c.deadPredicate(), nil)
		if err != nil {
			return nil, nil, nil, err
		}
		stats.Iterations, stats.RandomAccesses = out.Iterations, out.RandomAccesses
		res.Entries = out.Result
		if err := c.assembleTermProofs(v, q, src.cursors, out.KScore, kind, scheme); err != nil {
			return nil, nil, nil, err
		}
		if err := c.assembleDocProofs(v, q, docs, out, scheme); err != nil {
			return nil, nil, nil, err
		}
		c.recordReadStats(stats, q, out.KScore)
	default:
		out, err := core.TNRAWithBoost(q, src, r, c.boost, c.deadPredicate(), nil)
		if err != nil {
			return nil, nil, nil, err
		}
		stats.Iterations = out.Iterations
		res.Entries = out.Result
		if err := c.assembleTermProofs(v, q, src.cursors, out.KScore, kind, scheme); err != nil {
			return nil, nil, nil, err
		}
		if err := c.assembleContentProof(v, out.Result); err != nil {
			return nil, nil, nil, err
		}
		c.recordReadStats(stats, q, out.KScore)
	}

	if c.cfg.DictMode {
		if err := c.assembleDictProof(v, q, kind); err != nil {
			return nil, nil, nil, err
		}
	}
	if c.boost != nil {
		if err := c.assembleAuthorityProof(v); err != nil {
			return nil, nil, nil, err
		}
	}
	for _, e := range res.Entries {
		res.Contents[e.Doc] = c.idx.Content[e.Doc]
	}
	return c.finish(res, v, stats, sess, start)
}

func (c *Collection) finish(res *Result, v *vo.VO, stats *QueryStats, sess *store.Session, start time.Time) (*Result, []byte, *QueryStats, error) {
	encStart := time.Now()
	encoded, bd, err := vo.Encode(v, c.cfg.HashSize)
	if err != nil {
		return nil, nil, nil, err
	}
	stats.EncodeWall = time.Since(encStart)
	stats.VO = bd
	stats.IO = sess.Stats()
	stats.ServerWall = time.Since(start)
	return res, encoded, stats, nil
}

func (c *Collection) recordReadStats(stats *QueryStats, q *core.Query, kScore []int) {
	var pct, lens float64
	for i := range q.Terms {
		ft := q.Terms[i].FT
		stats.EntriesRead += kScore[i]
		pct += float64(kScore[i]) / float64(ft)
		lens += float64(ft)
	}
	nq := float64(len(q.Terms))
	stats.EntriesPerTerm = float64(stats.EntriesRead) / nq
	stats.PctListRead = 100 * pct / nq
	stats.AvgListLen = lens / nq
}

// assembleTermProofs builds one TermProof per query term from the revealed
// prefixes.
func (c *Collection) assembleTermProofs(v *vo.VO, q *core.Query, cursors []*listCursor, kScore []int, kind core.StructureKind, scheme core.Scheme) error {
	withFreqs := kind == core.KindTNRAMHT || kind == core.KindTNRACMHT
	rho := core.ChainRho(c.cfg.Store.BlockSize, c.cfg.HashSize)
	group := mht.BuddyGroupSize(kind.LeafSize(), c.cfg.HashSize)
	for i := range q.Terms {
		qt := q.Terms[i]
		cur := cursors[i]
		ft := qt.FT
		ks := kScore[i]
		tp := vo.TermProof{
			TermID: uint32(qt.ID),
			FT:     uint32(ft),
			Name:   qt.Name,
			KScore: uint32(ks),
		}

		var proof mht.Proof
		var kp int
		if scheme == core.SchemeMHT {
			kp = ks
			all := cur.FullListForProof()
			leaves := kind.ListLeaves(all)
			want := make([]int, kp)
			for j := 0; j < kp; j++ {
				want[j] = j
			}
			var err error
			proof, err = mht.Prove(c.hasher, leaves, want)
			if err != nil {
				return fmt.Errorf("engine: term %q proof: %w", qt.Name, err)
			}
		} else {
			kp = core.ChainKProof(ks, ft, rho, group)
			cur.Prefix(kp) // ensure coverage (stays within loaded blocks)
			switch {
			case kp == ft:
				// Whole list revealed: the chain rebuilds from data alone.
			case kp%rho == 0:
				// Boundary: the digest covering block kp/ρ sits in the
				// previous block's header.
				j := kp / rho
				proof.Digests = [][]byte{cur.NextDigest(j - 1)}
			default:
				j := kp / rho
				rem := kp % rho
				blockLeaves := kind.ListLeaves(cur.BlockEntries(j))
				tree := blockLeaves
				if next := cur.NextDigest(j); next != nil {
					tree = append(append([][]byte{}, blockLeaves...), next)
				}
				want := make([]int, rem)
				for x := 0; x < rem; x++ {
					want[x] = x
				}
				var err error
				proof, err = mht.Prove(c.hasher, tree, want)
				if err != nil {
					return fmt.Errorf("engine: term %q chain proof: %w", qt.Name, err)
				}
			}
		}
		tp.KProof = uint32(kp)
		prefix := cur.Prefix(kp)
		tp.Docs = make([]uint32, kp)
		if withFreqs {
			tp.Freqs = make([]float32, kp)
		}
		for j, p := range prefix {
			tp.Docs[j] = uint32(p.Doc)
			if withFreqs {
				tp.Freqs[j] = p.W
			}
		}
		tp.Digests = proof.Digests
		if !c.cfg.DictMode {
			tp.Sig = c.termSigs[kind-1][qt.ID]
		}
		v.Terms = append(v.Terms, tp)
	}
	return nil
}

// assembleDocProofs adds a document-MHT proof for every encountered
// document (TRA): the query-term leaves (or absence boundaries), buddies
// under CMHT, the complementary digests and the signed root.
func (c *Collection) assembleDocProofs(v *vo.VO, q *core.Query, docs *docSource, out *core.TRAOutcome, scheme core.Scheme) error {
	inResult := make(map[index.DocID]bool, len(out.Result))
	for _, e := range out.Result {
		inResult[e.Doc] = true
	}
	group := 1
	if scheme == core.SchemeCMHT {
		group = mht.BuddyGroupSize(entrySize, c.cfg.HashSize)
	}
	for _, d := range out.Encountered {
		rec, err := docs.record(d) // cached for popped docs; random I/O for heads
		if err != nil {
			return err
		}
		n := len(rec.vec)
		posSet := make(map[int]struct{})
		for i := range q.Terms {
			p, found := searchVec(rec.vec, q.Terms[i].ID)
			if found {
				posSet[p] = struct{}{}
				continue
			}
			if p > 0 {
				posSet[p-1] = struct{}{}
			}
			if p < n {
				posSet[p] = struct{}{}
			}
		}
		positions := make([]int, 0, len(posSet))
		for p := range posSet {
			positions = append(positions, p)
		}
		sort.Ints(positions)
		positions = mht.ExpandBuddies(positions, group, n)

		leaves := make([][]byte, n)
		for i, tf := range rec.vec {
			leaves[i] = core.EncodeTermFreqLeaf(tf)
		}
		proof, err := mht.Prove(c.hasher, leaves, positions)
		if err != nil {
			return fmt.Errorf("engine: doc %d proof: %w", d, err)
		}
		dp := vo.DocProof{
			Doc:       uint32(d),
			LeafCount: uint32(n),
			InResult:  inResult[d],
			Digests:   proof.Digests,
			Sig:       rec.sig,
		}
		if !dp.InResult {
			dp.ContentHash = rec.contentHash
		}
		dp.Positions = make([]uint32, len(positions))
		dp.Terms = make([]uint32, len(positions))
		dp.Ws = make([]float32, len(positions))
		for j, p := range positions {
			dp.Positions[j] = uint32(p)
			dp.Terms[j] = uint32(rec.vec[p].Term)
			dp.Ws[j] = rec.vec[p].W
		}
		v.Docs = append(v.Docs, dp)
	}
	return nil
}

// searchVec finds t in a term vector, returning (position, true) or the
// insertion point and false.
func searchVec(vec []index.TermFreq, t index.TermID) (int, bool) {
	lo, hi := 0, len(vec)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case vec[mid].Term < t:
			lo = mid + 1
		case vec[mid].Term > t:
			hi = mid
		default:
			return mid, true
		}
	}
	return lo, false
}

// assembleContentProof authenticates TNRA result contents against the
// document-hash tree.
func (c *Collection) assembleContentProof(v *vo.VO, result []core.ResultEntry) error {
	if len(result) == 0 {
		return nil
	}
	positions := make([]int, 0, len(result))
	for _, e := range result {
		positions = append(positions, int(e.Doc))
	}
	sort.Ints(positions)
	proof, err := mht.Prove(c.hasher, c.docHash, positions)
	if err != nil {
		return err
	}
	v.ContentProof = &vo.ContentProof{Digests: proof.Digests}
	return nil
}

// assembleDictProof replaces per-term signatures with one dictionary-MHT
// multiproof (§3.4 space optimisation).
func (c *Collection) assembleDictProof(v *vo.VO, q *core.Query, kind core.StructureKind) error {
	positions := make([]int, 0, len(q.Terms))
	for i := range q.Terms {
		positions = append(positions, int(q.Terms[i].ID))
	}
	sort.Ints(positions)
	proof, err := mht.Prove(c.hasher, c.termRoots[kind-1], positions)
	if err != nil {
		return err
	}
	v.DictProof = &vo.DictProof{M: uint32(c.idx.M()), Digests: proof.Digests}
	return nil
}

// appendVocabProofs adds non-membership proofs for out-of-dictionary tokens.
func (c *Collection) appendVocabProofs(v *vo.VO, unknown []string) error {
	if len(unknown) == 0 {
		return nil
	}
	m := c.idx.M()
	for _, tok := range unknown {
		p := sort.Search(m, func(i int) bool { return c.idx.Name(index.TermID(i)) >= tok })
		var positions []int
		switch {
		case p == 0:
			positions = []int{0}
		case p == m:
			positions = []int{m - 1}
		default:
			positions = []int{p - 1, p}
		}
		proof, err := mht.Prove(c.hasher, c.nameDict, positions)
		if err != nil {
			return err
		}
		vp := vo.VocabProof{Token: tok, Digests: proof.Digests}
		for _, pos := range positions {
			vp.Positions = append(vp.Positions, uint32(pos))
			vp.Names = append(vp.Names, c.idx.Name(index.TermID(pos)))
		}
		v.VocabProofs = append(v.VocabProofs, vp)
	}
	return nil
}

// assembleAuthorityProof adds the authority-MHT multiproof covering every
// revealed document (boost extension). The revealed set is the union of the
// scoring prefixes; the per-document authority values travel as data leaves.
func (c *Collection) assembleAuthorityProof(v *vo.VO) error {
	seen := make(map[index.DocID]struct{})
	var docs []int
	for _, tp := range v.Terms {
		for j := 0; j < int(tp.KScore); j++ {
			d := index.DocID(tp.Docs[j])
			if _, ok := seen[d]; !ok {
				seen[d] = struct{}{}
				docs = append(docs, int(d))
			}
		}
	}
	sort.Ints(docs)
	proof, err := mht.Prove(c.hasher, c.authorityLeaves, docs)
	if err != nil {
		return err
	}
	ap := &vo.AuthorityProof{Digests: proof.Digests, Values: make([]float32, len(docs))}
	for i, d := range docs {
		ap.Values[i] = c.authority[d]
	}
	v.AuthorityProof = ap
	return nil
}

// VerifyResult runs the client-side verification against this collection's
// published manifest and key, returning the verification wall time.
func (c *Collection) VerifyResult(tokens []string, r int, res *Result, encodedVO []byte) (time.Duration, error) {
	start := time.Now()
	decoded, err := vo.Decode(encodedVO)
	if err != nil {
		return time.Since(start), err
	}
	err = core.Verify(&core.VerifyInput{
		Manifest: c.manifest,
		Verifier: c.verifier,
		Tokens:   tokens,
		R:        r,
		Result:   res.Entries,
		Contents: res.Contents,
		VO:       decoded,
	})
	return time.Since(start), err
}
