package engine

import (
	"math"
	"testing"

	"authtext/internal/core"
	"authtext/internal/index"
	"authtext/internal/sig"
	"authtext/internal/store"
)

// Regression for the PR-2 proof of concept: a hostile State with extents
// whose Start is near MaxInt64 used to slip through Restore's bounds check
// (Start+Blocks wraps negative under int64 addition) and blow up on the
// query path. Restore must reject such extents outright — never panic and
// never serve from them.
func TestRestoreHostileExtentOverflow(t *testing.T) {
	signer, err := sig.NewHMACSigner([]byte("hostile-extent"), 128)
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{
		"alpha beta gamma", "beta gamma delta", "gamma delta epsilon",
		"delta epsilon alpha", "epsilon alpha beta",
	}
	docs := make([]index.Document, len(texts))
	for i, s := range texts {
		docs[i] = index.Document{Content: []byte(s)}
	}
	col, err := BuildCollection(docs, DefaultConfig(signer))
	if err != nil {
		t.Fatal(err)
	}

	hostile := []store.Extent{
		{Start: store.Addr(math.MaxInt64), Blocks: 1, Length: 8},
		{Start: store.Addr(math.MaxInt64 - 1), Blocks: 2, Length: 8},
		{Start: 1, Blocks: math.MaxInt32, Length: 8},
	}
	tables := []struct {
		name   string
		mutate func(st *State, ext store.Extent)
	}{
		{"doc", func(st *State, ext store.Extent) { st.Layout.Doc[0] = ext }},
		{"plain", func(st *State, ext store.Extent) { st.Layout.Plain[0] = ext }},
		{"chain-tra", func(st *State, ext store.Extent) { st.Layout.ChainTRA[0] = ext }},
		{"chain-tnra", func(st *State, ext store.Extent) { st.Layout.ChainTNRA[0] = ext }},
	}
	for _, tbl := range tables {
		for _, ext := range hostile {
			st := col.ExportState()
			// ExportState aliases layout tables; deep-copy before tampering.
			st.Layout.Plain = append([]store.Extent(nil), st.Layout.Plain...)
			st.Layout.ChainTRA = append([]store.Extent(nil), st.Layout.ChainTRA...)
			st.Layout.ChainTNRA = append([]store.Extent(nil), st.Layout.ChainTNRA...)
			st.Layout.Doc = append([]store.Extent(nil), st.Layout.Doc...)
			tbl.mutate(st, ext)

			col2, err := Restore(st)
			if err != nil {
				continue // rejected up front: the desired outcome
			}
			// If Restore let it through, serving must still not panic.
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s extent %+v: PANIC serving query from hostile state: %v", tbl.name, ext, r)
					}
				}()
				for _, algo := range []core.Algo{core.AlgoTRA, core.AlgoTNRA} {
					for _, scheme := range []core.Scheme{core.SchemeMHT, core.SchemeCMHT} {
						_, _, _, err := col2.Search([]string{"alpha", "gamma"}, 3, algo, scheme)
						t.Logf("%s extent %+v survived Restore; search err=%v", tbl.name, ext, err)
					}
				}
			}()
		}
	}
}

// The device-level bound must hold independently of Restore's checks.
func TestReadExtentOverflowRejected(t *testing.T) {
	dev, err := store.NewDevice(store.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	dev.AllocWrite(make([]byte, 64))
	for _, ext := range []store.Extent{
		{Start: store.Addr(math.MaxInt64), Blocks: 1, Length: 8},
		{Start: store.Addr(math.MaxInt64 - 1), Blocks: 2, Length: 8},
		{Start: 0, Blocks: -1, Length: 8},
	} {
		if _, err := dev.NewSession().ReadExtent(ext); err == nil {
			t.Errorf("extent %+v accepted", ext)
		}
	}
}
