package engine

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"authtext/internal/core"
	"authtext/internal/index"
	"authtext/internal/vo"
)

// boostedCollection builds a collection with a skewed authority vector.
func boostedCollection(t *testing.T, seed int64, beta float64) *Collection {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	docs := randomDocs(r, 70, 30)
	authority := make([]float64, len(docs))
	for d := range authority {
		authority[d] = math.Pow(r.Float64(), 3) // most docs low, few high
	}
	authority[7] = 1.0 // a guaranteed top authority
	cfg := Config{
		Store:     smallParams(),
		HashSize:  16,
		Signer:    testSigner(t),
		Authority: authority,
		Beta:      beta,
	}
	col, err := BuildCollection(docs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func TestBoostedSearchVerifiesAllVariants(t *testing.T) {
	col := boostedCollection(t, 41, 2.0)
	idx := col.Index()
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 15; trial++ {
		tokens := []string{
			idx.Name(index.TermID(r.Intn(idx.M()))),
			idx.Name(index.TermID(r.Intn(idx.M()))),
		}
		for _, v := range allVariants {
			res, voBytes, _, err := col.Search(tokens, 5, v.algo, v.scheme)
			if err != nil {
				t.Fatalf("%v-%v: %v", v.algo, v.scheme, err)
			}
			if _, err := col.VerifyResult(tokens, 5, res, voBytes); err != nil {
				t.Fatalf("boosted %v-%v %v: %v", v.algo, v.scheme, tokens, err)
			}
		}
	}
}

// TestBoostedMatchesNaiveOracle checks TRA/TNRA boosted results against a
// brute-force boosted scoring of all matching documents.
func TestBoostedMatchesNaiveOracle(t *testing.T) {
	col := boostedCollection(t, 43, 1.5)
	idx := col.Index()
	boost := col.boost
	r := rand.New(rand.NewSource(44))
	for trial := 0; trial < 15; trial++ {
		tokens := []string{
			idx.Name(index.TermID(r.Intn(idx.M()))),
			idx.Name(index.TermID(r.Intn(idx.M()))),
		}
		q, err := core.BuildQuery(idx, tokens)
		if err != nil || len(q.Terms) == 0 {
			continue
		}
		// Oracle: boosted score for every matching document.
		type ds struct {
			d index.DocID
			s float64
		}
		var oracle []ds
		for d := 0; d < idx.N; d++ {
			w := core.QueryWeights(q, idx.DocVector(index.DocID(d)))
			matching := false
			for _, x := range w {
				if x != 0 {
					matching = true
				}
			}
			if matching {
				oracle = append(oracle, ds{index.DocID(d), core.Score(q, w) + boost.Score(index.DocID(d))})
			}
		}
		sort.Slice(oracle, func(a, b int) bool {
			if oracle[a].s != oracle[b].s {
				return oracle[a].s > oracle[b].s
			}
			return oracle[a].d < oracle[b].d
		})
		rr := 4
		want := oracle
		if len(want) > rr {
			want = want[:rr]
		}
		trueScore := make(map[index.DocID]float64, len(oracle))
		for _, e := range oracle {
			trueScore[e.d] = e.s
		}
		for _, v := range allVariants {
			res, _, _, err := col.Search(tokens, rr, v.algo, v.scheme)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Entries) != len(want) {
				t.Fatalf("%v-%v: %d results, oracle %d", v.algo, v.scheme, len(res.Entries), len(want))
			}
			for i, e := range res.Entries {
				ts, ok := trueScore[e.Doc]
				if !ok {
					t.Fatalf("%v-%v: unmatched doc %d in result", v.algo, v.scheme, e.Doc)
				}
				if math.Abs(ts-want[i].s) > 1e-9 {
					t.Fatalf("%v-%v: position %d true score %v, oracle %v", v.algo, v.scheme, i, ts, want[i].s)
				}
				if v.algo == core.AlgoTRA && e.Score != ts {
					t.Fatalf("TRA claimed %v, true %v", e.Score, ts)
				}
			}
		}
	}
}

func TestBoostChangesRanking(t *testing.T) {
	// The same corpus with and without boost must (for some query) produce
	// different orderings — otherwise the extension is inert.
	r := rand.New(rand.NewSource(47))
	docs := randomDocs(r, 70, 30)
	authority := make([]float64, len(docs))
	for d := range authority {
		authority[d] = float64(d%2) * 0.9 // alternate authorities
	}
	plain, err := BuildCollection(docs, Config{Store: smallParams(), HashSize: 16, Signer: testSigner(t)})
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := BuildCollection(docs, Config{Store: smallParams(), HashSize: 16, Signer: testSigner(t),
		Authority: authority, Beta: 5})
	if err != nil {
		t.Fatal(err)
	}
	idx := plain.Index()
	changed := false
	for trial := 0; trial < 30 && !changed; trial++ {
		tokens := []string{idx.Name(index.TermID(r.Intn(idx.M())))}
		a, _, _, err := plain.Search(tokens, 5, core.AlgoTNRA, core.SchemeCMHT)
		if err != nil {
			t.Fatal(err)
		}
		b, _, _, err := boosted.Search(tokens, 5, core.AlgoTNRA, core.SchemeCMHT)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Entries) != len(b.Entries) {
			changed = true
			break
		}
		for i := range a.Entries {
			if a.Entries[i].Doc != b.Entries[i].Doc {
				changed = true
				break
			}
		}
	}
	if !changed {
		t.Fatal("authority boost never changed any ranking")
	}
}

func TestBoostTamperedAuthorityDetected(t *testing.T) {
	col := boostedCollection(t, 51, 2.0)
	idx := col.Index()
	tokens := []string{idx.Name(0), idx.Name(1)}
	res, voBytes, _, err := col.Search(tokens, 4, core.AlgoTNRA, core.SchemeCMHT)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := vo.Decode(voBytes)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.AuthorityProof == nil || len(decoded.AuthorityProof.Values) == 0 {
		t.Fatal("no authority proof in boosted VO")
	}
	decoded.AuthorityProof.Values[0] += 0.5
	if err := col.verifyDecoded(tokens, 4, res, decoded); err == nil {
		t.Fatal("forged authority value accepted")
	} else if core.CodeOf(err) != core.CodeBadTermProof {
		t.Fatalf("wrong code: %v", err)
	}
}

func TestBoostDroppedAuthorityProofDetected(t *testing.T) {
	col := boostedCollection(t, 53, 2.0)
	idx := col.Index()
	tokens := []string{idx.Name(0)}
	res, voBytes, _, err := col.Search(tokens, 4, core.AlgoTRA, core.SchemeMHT)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := vo.Decode(voBytes)
	if err != nil {
		t.Fatal(err)
	}
	decoded.AuthorityProof = nil
	if err := col.verifyDecoded(tokens, 4, res, decoded); err == nil {
		t.Fatal("missing authority proof accepted")
	}
}

func TestBoostConfigValidation(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	docs := randomDocs(r, 10, 10)
	cfg := Config{Store: smallParams(), HashSize: 16, Signer: testSigner(t)}
	cfg.Authority = []float64{0.5} // wrong length
	if _, err := BuildCollection(docs, cfg); err == nil {
		t.Fatal("mismatched authority length accepted")
	}
	cfg.Authority = make([]float64, len(docs))
	cfg.Authority[0] = 1.5 // out of range
	if _, err := BuildCollection(docs, cfg); err == nil {
		t.Fatal("out-of-range authority accepted")
	}
	cfg.Authority[0] = 0.5
	cfg.Beta = -1
	if _, err := BuildCollection(docs, cfg); err == nil {
		t.Fatal("negative beta accepted")
	}
}
