package engine

import (
	"fmt"
	"math/rand"

	"authtext/internal/index"
	"authtext/internal/sig"
)

func sigSignerForFuzz() (sig.Signer, error) {
	return sig.NewHMACSigner([]byte("fuzz"), 64)
}

func fuzzDocs() []index.Document {
	r := rand.New(rand.NewSource(99))
	docs := make([]index.Document, 30)
	for i := range docs {
		toks := make([]string, 10+r.Intn(20))
		for j := range toks {
			toks[j] = fmt.Sprintf("w%02d", r.Intn(12))
		}
		docs[i] = index.Document{Content: []byte(fmt.Sprint("doc", i, toks)), Tokens: toks}
	}
	return docs
}
