package engine

import (
	"testing"

	"authtext/internal/index"
	"authtext/internal/sig"
	"authtext/internal/store"
	"math"
)

// PoC: a hostile State with a doc extent whose Start is near MaxInt64
// passes Restore's checkExtent (Start+Blocks wraps negative) and then
// panics at read time.
func TestHostileExtentOverflow(t *testing.T) {
	signer, err := sig.NewHMACSigner([]byte("k"), 128)
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{"alpha beta gamma", "beta gamma delta", "gamma delta epsilon"}
	docs := make([]index.Document, len(texts))
	for i, s := range texts {
		docs[i] = index.Document{Content: []byte(s)}
	}
	col, err := BuildCollection(docs, DefaultConfig(signer))
	if err != nil {
		t.Fatal(err)
	}
	st := col.ExportState()
	// Tamper: doc 0's extent points past the end of the address space.
	st.Layout.Doc[0] = store.Extent{Start: store.Addr(math.MaxInt64), Blocks: 1, Length: 8}
	col2, err := Restore(st)
	if err != nil {
		t.Logf("Restore rejected hostile extent: %v", err)
		return
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("PANIC serving query from restored hostile snapshot: %v", r)
		}
	}()
	_, _, _, err = col2.Search("alpha", 3, 2, 2) // algo/scheme values may need adjusting
	t.Logf("search err=%v", err)
}
