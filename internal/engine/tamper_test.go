package engine

import (
	"testing"

	"authtext/internal/core"
	"authtext/internal/index"
	"authtext/internal/vo"
)

// The tamper suite exercises the §1 threat model: a compromised search
// engine returning incomplete results, altered rankings, or spurious
// documents. Each strategy modifies a legitimate (result, VO) pair and the
// verifier must reject it.

type tamperEnv struct {
	col    *Collection
	tokens []string
	r      int
	res    *Result
	vo     *vo.VO
}

// freshEnv produces a legitimate answer whose result is non-trivial: at
// least three entries with at least two distinct scores (fully tied results
// make ranking tampering legitimately undetectable).
func freshEnv(t *testing.T, algo core.Algo, scheme core.Scheme) *tamperEnv {
	t.Helper()
	var col *Collection
	var tokens []string
	var res *Result
	var voBytes []byte
	r := 5
	found := false
	for seed := int64(21); seed < 31 && !found; seed++ {
		col = buildTestCollection(t, seed, 80, 30, nil)
		idx := col.Index()
		// Query the two longest lists among discriminative terms: terms in
		// more than half the collection have w_{Q,t} = 0 (clamped IDF) and
		// cannot separate scores.
		best, second := -1, -1
		for ti := 0; ti < idx.M(); ti++ {
			ft := idx.FT(index.TermID(ti))
			if ft > idx.N/3 {
				continue
			}
			if best < 0 || ft > idx.FT(index.TermID(best)) {
				second, best = best, ti
			} else if second < 0 || ft > idx.FT(index.TermID(second)) {
				second = ti
			}
		}
		if best < 0 || second < 0 {
			continue
		}
		tokens = []string{idx.Name(index.TermID(best)), idx.Name(index.TermID(second))}
		var err error
		res, voBytes, _, err = col.Search(tokens, r, algo, scheme)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Entries) >= 3 && res.Entries[0].Score > res.Entries[len(res.Entries)-1].Score {
			found = true
		}
	}
	if !found {
		t.Fatal("no fixture with distinct scores found")
	}
	decoded, err := vo.Decode(voBytes)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the untampered answer verifies.
	if err := col.verifyDecoded(tokens, r, res, decoded); err != nil {
		t.Fatalf("baseline does not verify: %v", err)
	}
	return &tamperEnv{col: col, tokens: tokens, r: r, res: res, vo: decoded}
}

// verifyDecoded verifies against an already-decoded VO (so tamper tests can
// mutate structures directly).
func (c *Collection) verifyDecoded(tokens []string, r int, res *Result, v *vo.VO) error {
	return core.Verify(&core.VerifyInput{
		Manifest: c.manifest,
		Verifier: c.verifier,
		Tokens:   tokens,
		R:        r,
		Result:   res.Entries,
		Contents: res.Contents,
		VO:       v,
	})
}

func (e *tamperEnv) mustFail(t *testing.T, what string, wantCodes ...core.VerifyCode) {
	t.Helper()
	err := e.col.verifyDecoded(e.tokens, e.r, e.res, e.vo)
	if err == nil {
		t.Fatalf("%s went undetected", what)
	}
	if len(wantCodes) > 0 {
		got := core.CodeOf(err)
		for _, c := range wantCodes {
			if got == c {
				return
			}
		}
		t.Fatalf("%s: detected with %v, want one of %v", what, err, wantCodes)
	}
}

func cloneResult(res *Result) *Result {
	out := &Result{Entries: append([]core.ResultEntry{}, res.Entries...), Contents: map[index.DocID][]byte{}}
	for d, c := range res.Contents {
		out.Contents[d] = c
	}
	return out
}

func TestTamperDropResultDocument(t *testing.T) {
	for _, v := range allVariants {
		e := freshEnv(t, v.algo, v.scheme)
		e.res = cloneResult(e.res)
		// "Incomplete results that omit some legitimate documents": drop
		// the top document and promote the rest.
		e.res.Entries = e.res.Entries[1:]
		e.mustFail(t, "dropped result document",
			core.CodeIncomplete, core.CodeThreshold, core.CodeBadOrdering)
	}
}

func TestTamperSwapRanking(t *testing.T) {
	for _, v := range allVariants {
		e := freshEnv(t, v.algo, v.scheme)
		e.res = cloneResult(e.res)
		// "Altered ranking": swap two adjacent entries with strictly
		// different scores (swapping tied entries is a legitimate
		// reordering and rightly passes).
		swapped := false
		for i := 0; i+1 < len(e.res.Entries); i++ {
			if e.res.Entries[i].Score > e.res.Entries[i+1].Score {
				e.res.Entries[i], e.res.Entries[i+1] = e.res.Entries[i+1], e.res.Entries[i]
				swapped = true
				break
			}
		}
		if !swapped {
			t.Fatalf("%v-%v: all result scores tied; fixture too weak", v.algo, v.scheme)
		}
		e.mustFail(t, "swapped ranking", core.CodeBadOrdering)
	}
}

func TestTamperInflateScore(t *testing.T) {
	for _, v := range allVariants {
		e := freshEnv(t, v.algo, v.scheme)
		e.res = cloneResult(e.res)
		e.res.Entries[1].Score = e.res.Entries[0].Score + 1
		e.mustFail(t, "inflated score", core.CodeBadScore, core.CodeBadOrdering)
	}
}

func TestTamperSpuriousDocument(t *testing.T) {
	for _, v := range allVariants {
		e := freshEnv(t, v.algo, v.scheme)
		e.res = cloneResult(e.res)
		// "Spurious results": splice an unrelated document in.
		var outsider index.DocID
		seen := map[index.DocID]bool{}
		for _, en := range e.res.Entries {
			seen[en.Doc] = true
		}
		for d := 0; d < e.col.Index().N; d++ {
			if !seen[index.DocID(d)] {
				outsider = index.DocID(d)
				break
			}
		}
		e.res.Entries[len(e.res.Entries)-1] = core.ResultEntry{Doc: outsider, Score: e.res.Entries[len(e.res.Entries)-1].Score}
		e.res.Contents[outsider] = e.col.Index().Content[outsider]
		e.mustFail(t, "spurious document", core.CodeSpurious, core.CodeBadScore, core.CodeIncomplete)
	}
}

func TestTamperModifiedFrequency(t *testing.T) {
	for _, v := range allVariants {
		if v.algo != core.AlgoTNRA {
			continue
		}
		e := freshEnv(t, v.algo, v.scheme)
		// Inflate a revealed frequency: the list root no longer matches.
		e.vo.Terms[0].Freqs[0] *= 2
		e.mustFail(t, "modified list frequency", core.CodeBadTermProof, core.CodeBadSignature)
	}
}

func TestTamperReorderedList(t *testing.T) {
	for _, v := range allVariants {
		e := freshEnv(t, v.algo, v.scheme)
		tp := &e.vo.Terms[0]
		if tp.KProof < 2 {
			continue
		}
		tp.Docs[0], tp.Docs[1] = tp.Docs[1], tp.Docs[0]
		if tp.Freqs != nil {
			tp.Freqs[0], tp.Freqs[1] = tp.Freqs[1], tp.Freqs[0]
		}
		e.mustFail(t, "reordered list prefix", core.CodeBadTermProof, core.CodeBadSignature,
			core.CodeBadScore, core.CodeBadOrdering, core.CodeIncomplete, core.CodeBadConditions,
			core.CodeBadDocProof, core.CodeSpurious)
	}
}

func TestTamperTruncatedPrefix(t *testing.T) {
	// Shortening the revealed prefix (to hide a competitor) must trip the
	// root recomputation or the threshold condition.
	for _, v := range allVariants {
		e := freshEnv(t, v.algo, v.scheme)
		tp := &e.vo.Terms[0]
		if tp.KScore < 2 {
			continue
		}
		tp.KScore--
		tp.KProof--
		tp.Docs = tp.Docs[:tp.KProof]
		if tp.Freqs != nil {
			tp.Freqs = tp.Freqs[:tp.KProof]
		}
		e.mustFail(t, "truncated prefix")
	}
}

func TestTamperWrongSignature(t *testing.T) {
	for _, v := range allVariants {
		e := freshEnv(t, v.algo, v.scheme)
		sig := append([]byte{}, e.vo.Terms[0].Sig...)
		sig[0] ^= 0xff
		e.vo.Terms[0].Sig = sig
		e.mustFail(t, "corrupted term signature", core.CodeBadSignature)
	}
}

func TestTamperDocumentContent(t *testing.T) {
	for _, v := range allVariants {
		e := freshEnv(t, v.algo, v.scheme)
		e.res = cloneResult(e.res)
		d := e.res.Entries[0].Doc
		content := append([]byte{}, e.res.Contents[d]...)
		content[0] ^= 0xff
		e.res.Contents[d] = content
		e.mustFail(t, "tampered document content", core.CodeBadContent)
	}
}

func TestTamperDocProofWeight(t *testing.T) {
	// TRA only: inflating a frequency inside a document proof must break
	// the document-MHT root.
	for _, v := range allVariants {
		if v.algo != core.AlgoTRA {
			continue
		}
		e := freshEnv(t, v.algo, v.scheme)
		for i := range e.vo.Docs {
			if len(e.vo.Docs[i].Ws) > 0 {
				e.vo.Docs[i].Ws[0] *= 4
				break
			}
		}
		e.mustFail(t, "tampered document proof weight",
			core.CodeBadSignature, core.CodeBadDocProof, core.CodeBadContent)
	}
}

func TestTamperDroppedDocProof(t *testing.T) {
	for _, v := range allVariants {
		if v.algo != core.AlgoTRA {
			continue
		}
		e := freshEnv(t, v.algo, v.scheme)
		e.vo.Docs = e.vo.Docs[1:]
		e.mustFail(t, "dropped document proof", core.CodeBadDocProof)
	}
}

func TestTamperStorageCorruption(t *testing.T) {
	// Flip one byte of a stored authenticated structure: queries touching
	// it must fail verification. The injection target differs per variant:
	// TNRA authenticates ⟨d, f⟩ pairs in the lists, so a corrupted list
	// frequency breaks the list root; TRA authenticates frequencies through
	// the document records, so the record is the target (a corrupted TRA
	// list *weight* merely perturbs traversal order, which the threshold
	// check keeps honest — that case is covered by TestTamperTruncatedPrefix).
	for _, v := range allVariants {
		col := buildTestCollection(t, 23, 60, 25, nil)
		idx := col.Index()
		longest := index.TermID(0)
		for ti := 1; ti < idx.M(); ti++ {
			if idx.FT(index.TermID(ti)) > idx.FT(longest) {
				longest = index.TermID(ti)
			}
		}
		tokens := []string{idx.Name(longest)}

		if v.algo == core.AlgoTNRA {
			ext := col.Layout().Plain[longest]
			off := 12 // first block, entry 1's frequency bytes
			if v.scheme == core.SchemeCMHT {
				ext = col.Layout().ChainTNRA[longest]
				off = 16 + 4 + 8 + 4 // header, entry 1's frequency
			}
			if err := col.Device().Corrupt(ext.Start, off, 0x55); err != nil {
				t.Fatal(err)
			}
		} else {
			// Find the top document with a clean query, then corrupt a
			// frequency inside its document record.
			res, _, _, err := col.Search(tokens, 4, v.algo, v.scheme)
			if err != nil || len(res.Entries) == 0 {
				t.Fatalf("clean query failed: %v", err)
			}
			ext := col.Layout().Doc[res.Entries[0].Doc]
			sigLen := 128
			off := 4 + 16 + 2 + sigLen + 4 // count, hash, siglen, sig, leaf term id
			if err := col.Device().Corrupt(ext.Start, off, 0x55); err != nil {
				t.Fatal(err)
			}
		}

		res, voBytes, _, err := col.Search(tokens, 4, v.algo, v.scheme)
		if err != nil {
			continue // structural damage may already break the search
		}
		if _, err := col.VerifyResult(tokens, 4, res, voBytes); err == nil {
			t.Fatalf("%v-%v: storage corruption went undetected", v.algo, v.scheme)
		}
	}
}

func TestTamperReplayAcrossSchemes(t *testing.T) {
	// A signature over the TRA-MHT structure must not validate the
	// TNRA-MHT structure of the same term (kind is bound into the signed
	// message).
	col := buildTestCollection(t, 25, 40, 20, nil)
	idx := col.Index()
	tokens := []string{idx.Name(0)}
	res, voBytes, _, err := col.Search(tokens, 3, core.AlgoTNRA, core.SchemeMHT)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := vo.Decode(voBytes)
	if err != nil {
		t.Fatal(err)
	}
	// Substitute the TRA-kind signature for the same term.
	decoded.Terms[0].Sig = col.termSigs[core.KindTRAMHT-1][0]
	if err := col.verifyDecoded(tokens, 3, res, decoded); err == nil {
		t.Fatal("cross-kind signature replay accepted")
	} else if core.CodeOf(err) != core.CodeBadSignature {
		t.Fatalf("wrong code: %v", err)
	}
}

func TestTamperExtraTermProof(t *testing.T) {
	// The server cannot attach proofs for terms the user never queried.
	e := freshEnv(t, core.AlgoTNRA, core.SchemeCMHT)
	extra := e.vo.Terms[0]
	extra.Name = "never-queried-term"
	e.vo.Terms = append(e.vo.Terms, extra)
	e.mustFail(t, "extra term proof", core.CodeMalformedVO)
}
