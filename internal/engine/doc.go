// Package engine backs the core algorithms with the simulated block
// device: the owner-side build of all authentication structures (§3.3.1,
// §3.3.2), the store-backed list cursors and document records whose
// accesses produce the I/O costs of §4, and the server-side search that
// assembles verification objects.
//
// In the VO protocol, engine is the server's half of the bargain made
// concrete: Collection.Search runs TRA or TNRA against the on-"disk"
// layouts, then assembles the term proofs, document proofs, content
// digests and (under ChainMHT) chained block trees that core decided the
// client will need, and encodes them into the VO bytes that travel with
// every result. It also holds the owner-side artifacts the protocol
// starts from — the signed manifest and the signing keys — which the
// authtext facade exports to clients. The network layer (internal/httpapi,
// cmd/authserved) moves these same VO bytes unchanged; nothing in engine
// assumes the client is in-process.
//
// Collections are immutable once built. Live deployments
// (internal/live) therefore never mutate an engine.Collection: they
// build a fresh one per publication generation — Config.Generation is
// signed into the manifest and stamped into every VO — and swap which
// collection serves.
package engine
