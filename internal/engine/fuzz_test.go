package engine

import (
	"sync"
	"testing"

	"authtext/internal/core"
	"authtext/internal/vo"
)

var (
	fuzzOnce sync.Once
	fuzzCol  *Collection
)

func fuzzCollection(t testing.TB) *Collection {
	fuzzOnce.Do(func() {
		var tt *testing.T // buildTestCollection needs testing.TB only
		_ = tt
		col, err := buildFuzzCollection()
		if err != nil {
			t.Fatal(err)
		}
		fuzzCol = col
	})
	return fuzzCol
}

func buildFuzzCollection() (*Collection, error) {
	signer, err := sigSignerForFuzz()
	if err != nil {
		return nil, err
	}
	cfg := Config{Store: smallParams(), HashSize: 16, Signer: signer}
	return BuildCollection(fuzzDocs(), cfg)
}

// FuzzVerifyAgainstArbitraryVO feeds the client verifier VOs decoded from
// arbitrary bytes: it must never panic and never accept a VO it did not
// produce (acceptance requires forging a keyed-hash tag, which would be a
// find in itself).
func FuzzVerifyAgainstArbitraryVO(f *testing.F) {
	col := fuzzCollection(f)
	idx := col.Index()
	tokens := []string{idx.Name(0), idx.Name(1)}
	res, honest, _, err := col.Search(tokens, 3, core.AlgoTNRA, core.SchemeCMHT)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(honest)
	mutated := append([]byte{}, honest...)
	if len(mutated) > 40 {
		mutated[40] ^= 0xFF
	}
	f.Add(mutated)
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := vo.Decode(data)
		if err != nil {
			return
		}
		verr := core.Verify(&core.VerifyInput{
			Manifest: col.manifest,
			Verifier: col.verifier,
			Tokens:   tokens,
			R:        3,
			Result:   res.Entries,
			Contents: res.Contents,
			VO:       decoded,
		})
		// Only the unmodified honest VO may verify.
		if verr == nil && string(data) != string(honest) {
			t.Fatalf("forged VO accepted (%d bytes)", len(data))
		}
	})
}
