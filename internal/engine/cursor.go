package engine

import (
	"fmt"

	"authtext/internal/core"
	"authtext/internal/index"
	"authtext/internal/store"
)

// listCursor reads an inverted list block by block off the device through
// the query's store session, charging each block load against the cost
// model. Decoded entries are retained: the server needs the revealed prefix
// again for VO assembly, and chain-block headers carry the successor
// digests the chain proofs require.
type listCursor struct {
	sess     *store.Session
	ext      store.Extent
	total    int
	chain    bool
	hashSize int
	perBlock int

	consumed int
	loaded   int // highest loaded block index; -1 initially
	entries  []index.Posting
	nextDig  [][]byte // nextDig[j] = digest of block j+1, from block j's header
}

var _ core.Cursor = (*listCursor)(nil)
var _ core.PrefixReader = (*listCursor)(nil)

// deviceFault carries a block-read failure out of cursor methods that
// cannot return errors (core.Cursor has no error channel). It unwinds as
// a panic and Collection.Search recovers it at its boundary, so a
// poisoned device degrades to a failed query instead of a crashed
// server.
type deviceFault struct{ err error }

func newListCursor(sess *store.Session, ext store.Extent, total int, chain bool, blockSize, hashSize int) *listCursor {
	c := &listCursor{sess: sess, ext: ext, total: total, chain: chain, hashSize: hashSize, loaded: -1}
	if chain {
		c.perBlock = core.ChainRho(blockSize, hashSize)
	} else {
		c.perBlock = blockSize / entrySize
	}
	return c
}

func (c *listCursor) numBlocks() int { return (c.total + c.perBlock - 1) / c.perBlock }

// loadBlock reads and decodes block j (which must be loaded+1).
func (c *listCursor) loadBlock(j int) {
	raw, err := c.sess.ReadBlock(c.ext.Start + store.Addr(j))
	if err != nil {
		// The extent was written by the same build that sized it, so this
		// is either a layout bug or a poisoned device (a mapped snapshot
		// whose deferred checksum failed). core.Cursor has no error
		// channel; Search recovers the typed fault at its boundary.
		panic(deviceFault{fmt.Errorf("engine: list block read: %w", err)})
	}
	off := 0
	if c.chain {
		dig := make([]byte, c.hashSize)
		copy(dig, raw[:c.hashSize])
		c.nextDig = append(c.nextDig, dig)
		off = c.hashSize + 4
	}
	lo := j * c.perBlock
	hi := lo + c.perBlock
	if hi > c.total {
		hi = c.total
	}
	for i := lo; i < hi; i++ {
		c.entries = append(c.entries, getEntry(raw[off+(i-lo)*entrySize:]))
	}
	c.loaded = j
}

// Peek implements core.Cursor; fetching an entry loads its block.
func (c *listCursor) Peek() (index.Posting, bool) {
	if c.consumed >= c.total {
		return index.Posting{}, false
	}
	need := c.consumed / c.perBlock
	for c.loaded < need {
		c.loadBlock(c.loaded + 1)
	}
	return c.entries[c.consumed], true
}

// Advance implements core.Cursor.
func (c *listCursor) Advance() { c.consumed++ }

// Consumed implements core.Cursor.
func (c *listCursor) Consumed() int { return c.consumed }

// Len implements core.Cursor.
func (c *listCursor) Len() int { return c.total }

// Prefix implements core.PrefixReader; it loads any blocks needed to cover
// the first k entries (buddy padding stays within an already-loaded block,
// so this is normally free).
func (c *listCursor) Prefix(k int) []index.Posting {
	if k == 0 {
		return nil
	}
	need := (k - 1) / c.perBlock
	for c.loaded < need {
		c.loadBlock(c.loaded + 1)
	}
	return c.entries[:k]
}

// LoadAll reads the rest of the list and returns every entry.
func (c *listCursor) LoadAll() []index.Posting {
	for c.loaded < c.numBlocks()-1 {
		c.loadBlock(c.loaded + 1)
	}
	return c.entries
}

// FullListForProof re-reads the whole list from disk and returns all
// entries. The MHT variants regenerate the internal term-MHT digests during
// VO construction, and §4.1's setup prevents list blocks from being cached
// in memory — so this second pass pays full I/O even for blocks the query
// processing already fetched.
func (c *listCursor) FullListForProof() []index.Posting {
	raw, err := c.sess.ReadExtent(c.ext)
	if err != nil {
		panic(deviceFault{fmt.Errorf("engine: list extent read: %w", err)})
	}
	out := make([]index.Posting, c.total)
	blockSize := c.sess.BlockSize()
	hdr := 0
	if c.chain {
		hdr = c.hashSize + 4
	}
	for i := 0; i < c.total; i++ {
		blk := i / c.perBlock
		off := blk*blockSize + hdr + (i%c.perBlock)*entrySize
		out[i] = getEntry(raw[off:])
	}
	return out
}

// NextDigest returns the digest of block j+1 (stored in block j's header),
// or nil when block j is the last block. Block j must be loaded.
func (c *listCursor) NextDigest(j int) []byte {
	if j >= c.numBlocks()-1 {
		return nil
	}
	return c.nextDig[j]
}

// BlockEntries returns the entries of loaded block j.
func (c *listCursor) BlockEntries(j int) []index.Posting {
	lo := j * c.perBlock
	hi := lo + c.perBlock
	if hi > c.total {
		hi = c.total
	}
	return c.entries[lo:hi]
}

// recordingSource opens cursors and remembers them in open order so the VO
// assembly can revisit the revealed prefixes.
type recordingSource struct {
	open    func(t index.TermID) (*listCursor, error)
	cursors []*listCursor
}

func (s *recordingSource) OpenList(t index.TermID) (core.Cursor, error) {
	c, err := s.open(t)
	if err != nil {
		return nil, err
	}
	s.cursors = append(s.cursors, c)
	return c, nil
}

// docSource provides TRA's random accesses from the document records
// through the query's store session, caching per query so each document
// costs at most one random I/O.
type docSource struct {
	col   *Collection
	sess  *store.Session
	cache map[index.DocID]*docRecord
}

func newDocSource(col *Collection, sess *store.Session) *docSource {
	return &docSource{col: col, sess: sess, cache: make(map[index.DocID]*docRecord)}
}

func (s *docSource) record(d index.DocID) (*docRecord, error) {
	if rec, ok := s.cache[d]; ok {
		return rec, nil
	}
	if int(d) >= len(s.col.layout.Doc) {
		return nil, fmt.Errorf("engine: unknown document %d", d)
	}
	raw, err := s.sess.ReadExtent(s.col.layout.Doc[d])
	if err != nil {
		return nil, err
	}
	rec, err := decodeDocRecord(raw, int(s.col.manifest.HashSize))
	if err != nil {
		return nil, err
	}
	s.cache[d] = rec
	return rec, nil
}

// DocVector implements core.DocVectorSource.
func (s *docSource) DocVector(d index.DocID) ([]index.TermFreq, error) {
	rec, err := s.record(d)
	if err != nil {
		return nil, err
	}
	return rec.vec, nil
}
