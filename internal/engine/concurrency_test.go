package engine

import (
	"math/rand"
	"sync"
	"testing"

	"authtext/internal/index"
)

// concurrencyQueries draws a mixed workload of known dictionary terms.
func concurrencyQueries(col *Collection, n int, seed int64) [][]string {
	r := rand.New(rand.NewSource(seed))
	idx := col.Index()
	out := make([][]string, n)
	for i := range out {
		q := make([]string, 1+r.Intn(4))
		for j := range q {
			q[j] = idx.Name(index.TermID(r.Intn(idx.M())))
		}
		out[i] = q
	}
	return out
}

// Golden comparison for the session refactor: per-query QueryStats from
// concurrent searches must equal — field for field, including the
// simulated-I/O model — the values a serialized run of the same queries
// produces, across every Algorithm×Scheme pair. This pins the invariant
// the refactor relies on: a store session starts with the same cold head a
// per-query ResetStats produced, so concurrency cannot perturb the paper's
// cost accounting.
func TestQueryStatsConcurrentMatchSerialized(t *testing.T) {
	col := buildTestCollection(t, 7, 80, 50, nil)
	queries := concurrencyQueries(col, 32, 11)

	for _, v := range allVariants {
		v := v
		t.Run(v.algo.String()+"-"+v.scheme.String(), func(t *testing.T) {
			// Serialized golden pass: one query at a time.
			golden := make([]*QueryStats, len(queries))
			goldenVO := make([][]byte, len(queries))
			for i, q := range queries {
				_, voBytes, st, err := col.Search(q, 5, v.algo, v.scheme)
				if err != nil {
					t.Fatal(err)
				}
				golden[i], goldenVO[i] = st, voBytes
			}

			// Concurrent pass: all queries in flight across 8 goroutines.
			stats := make([]*QueryStats, len(queries))
			vos := make([][]byte, len(queries))
			errs := make([]error, len(queries))
			var wg sync.WaitGroup
			next := make(chan int)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range next {
						_, vos[i], stats[i], errs[i] = col.Search(queries[i], 5, v.algo, v.scheme)
					}
				}()
			}
			for i := range queries {
				next <- i
			}
			close(next)
			wg.Wait()

			for i := range queries {
				if errs[i] != nil {
					t.Fatalf("query %d: %v", i, errs[i])
				}
				g, c := golden[i], stats[i]
				if g.IO != c.IO {
					t.Errorf("query %d %v: IO diverged under concurrency:\n  serialized %+v\n  concurrent %+v",
						i, queries[i], g.IO, c.IO)
				}
				if g.RandomAccesses != c.RandomAccesses {
					t.Errorf("query %d: RandomAccesses %d != %d", i, c.RandomAccesses, g.RandomAccesses)
				}
				if g.Iterations != c.Iterations {
					t.Errorf("query %d: Iterations %d != %d", i, c.Iterations, g.Iterations)
				}
				if g.EntriesRead != c.EntriesRead {
					t.Errorf("query %d: EntriesRead %d != %d", i, c.EntriesRead, g.EntriesRead)
				}
				if g.VO != c.VO {
					t.Errorf("query %d: VO breakdown %+v != %+v", i, c.VO, g.VO)
				}
				if string(goldenVO[i]) != string(vos[i]) {
					t.Errorf("query %d: encoded VO bytes diverged under concurrency", i)
				}
			}
		})
	}
}

// Concurrent searches must also verify: the VO assembly walks shared
// collection structures (term signatures, MHT leaves, document hashes)
// that the immutability contract promises are never written post-build.
func TestConcurrentSearchResultsVerify(t *testing.T) {
	col := buildTestCollection(t, 8, 60, 40, nil)
	queries := concurrencyQueries(col, 12, 13)

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				q := queries[(g+i)%len(queries)]
				v := allVariants[(g+i)%len(allVariants)]
				res, voBytes, _, err := col.Search(q, 4, v.algo, v.scheme)
				if err != nil {
					errs[g] = err
					return
				}
				if _, err := col.VerifyResult(q, 4, res, voBytes); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}
