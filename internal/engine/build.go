package engine

import (
	"errors"
	"fmt"
	"time"

	"authtext/internal/core"
	"authtext/internal/index"
	"authtext/internal/mht"
	"authtext/internal/okapi"
	"authtext/internal/sig"
	"authtext/internal/store"
)

// Config controls collection construction.
type Config struct {
	Store    store.Params
	HashSize int
	// Signer produces the owner's signatures (RSA-1024 for fidelity; the
	// experiment harness may substitute the fast keyed-hash signer).
	Signer           sig.Signer
	Okapi            okapi.Params
	RemoveSingletons bool
	// DictMode enables the dictionary-MHT space optimisation (§3.4): no
	// per-list signatures; one root per structure kind in the manifest.
	DictMode bool
	// VocabProofs enables the out-of-dictionary non-membership extension.
	VocabProofs bool
	// Authority enables the §5 authority-boost extension: per-document
	// static authority scores in [0, 1] (e.g. normalised PageRank), one per
	// input document. Scores become S(d|Q) + Beta·A(d) for matching
	// documents.
	Authority []float64
	// Beta is the authority weight β (ignored unless Authority is set).
	Beta float64
	// Generation numbers the publication state for live collections
	// (docs/UPDATES.md): 0 builds a static collection with the original
	// manifest encoding; values ≥ 1 are signed into the manifest and
	// stamped into every VO the collection serves.
	Generation uint64
	// FixedAvgLen pins the Okapi average document length (see
	// index.Options.FixedAvgLen); 0 computes it from the corpus.
	FixedAvgLen float64
	// Tombstones marks removed document slots of a live collection
	// (Tombstones[d] == true ⇒ slot d is dead). Tombstoned documents stay
	// fully indexed — postings, records and their signatures are exactly
	// those of a collection where the slot is live, which is what lets a
	// caching signer reuse them — but the signed manifest commits the
	// removal bitmap and search/verification skip the slots. nil or
	// all-false means no tombstones. Requires Generation ≥ 1.
	Tombstones []bool
}

// DefaultConfig returns the paper's parameters; the caller must supply a
// Signer.
func DefaultConfig(signer sig.Signer) Config {
	return Config{
		Store:            store.DefaultParams(),
		HashSize:         sig.DefaultHashSize,
		Signer:           signer,
		Okapi:            okapi.DefaultParams(),
		RemoveSingletons: true,
	}
}

// BuildStats reports owner-side construction costs.
type BuildStats struct {
	BuildTime  time.Duration
	Signatures int
}

// SpaceReport breaks down storage consumption, for the §4.1 space-overhead
// claims (TNRA < 1 % over a plain index+corpus, TRA ≈ 25 %).
type SpaceReport struct {
	ContentBytes   int64
	PlainListBytes int64
	ChainTRABytes  int64
	ChainTNRABytes int64
	DocRecordBytes int64
	TermSigBytes   int64
	DeviceBytes    int64
}

// Collection is a published, queryable, authenticated document collection:
// the in-memory dictionary, the on-device structures, the owner's
// signatures and the signed manifest.
//
// Immutability contract: once BuildCollection (or Restore) returns, every
// field is read-only — the index, the device blocks, the layout tables, the
// signatures and the derived leaf tables never change. Search therefore
// takes no lock; all per-query mutable state (the simulated disk head, the
// I/O statistics) lives in a store.Session private to each call, and any
// number of Searches and VerifyResults may run concurrently. The only
// writers are the build path itself and the test-only Device().Corrupt,
// which must not run concurrently with queries.
type Collection struct {
	idx *index.Index
	dev *store.Device
	cfg Config

	baseHasher sig.Hasher
	hasher     mht.Hasher
	verifier   sig.Verifier

	layout    Layout
	termSigs  [4][][]byte // [kind-1][termID]; nil in dict mode
	termRoots [4][][]byte // retained for dictionary proofs
	docHash   [][]byte    // h(doc) leaves
	nameDict  [][]byte    // VocabLeaf(name) leaves (vocab-proof mode)
	// authority holds the pinned per-document authority scores and the
	// authority-MHT leaves (boost extension); nil when disabled.
	authority       []float32
	authorityLeaves [][]byte
	boost           *core.Boost

	manifest    *core.Manifest
	manifestSig []byte

	buildStats BuildStats
	space      SpaceReport
}

// BuildCollection indexes the documents and constructs every authentication
// structure: plain and chained list layouts for all four algorithm/scheme
// combinations, document records with signed document-MHT roots, the
// document-hash tree, and the signed manifest.
func BuildCollection(docs []index.Document, cfg Config) (*Collection, error) {
	start := time.Now()
	if cfg.Signer == nil {
		return nil, errors.New("engine: config needs a signer")
	}
	if cfg.HashSize == 0 {
		cfg.HashSize = sig.DefaultHashSize
	}
	if cfg.Store.BlockSize == 0 {
		cfg.Store = store.DefaultParams()
	}
	if cfg.Okapi.K1 == 0 && cfg.Okapi.B == 0 {
		cfg.Okapi = okapi.DefaultParams()
	}
	baseHasher, err := sig.NewHasher(cfg.HashSize)
	if err != nil {
		return nil, err
	}
	idx, err := index.Build(docs, index.Options{Okapi: cfg.Okapi, RemoveSingletons: cfg.RemoveSingletons,
		FixedAvgLen: cfg.FixedAvgLen})
	if err != nil {
		return nil, err
	}
	dev, err := store.NewDevice(cfg.Store)
	if err != nil {
		return nil, err
	}

	c := &Collection{
		idx:        idx,
		dev:        dev,
		cfg:        cfg,
		baseHasher: baseHasher,
		hasher:     mht.NewHasher(baseHasher),
		verifier:   cfg.Signer.Verifier(),
	}
	nSigs := 0

	// Document records: leaves, content hashes, signed document-MHT roots.
	c.layout.Doc = make([]store.Extent, idx.N)
	c.docHash = make([][]byte, idx.N)
	for d := 0; d < idx.N; d++ {
		vec := idx.DocVector(index.DocID(d))
		leaves := make([][]byte, len(vec))
		for i, tf := range vec {
			leaves[i] = core.EncodeTermFreqLeaf(tf)
		}
		ch := baseHasher.Sum(idx.Content[d])
		c.docHash[d] = ch
		root := mht.Root(c.hasher, leaves)
		msg := core.DocRootMessage(index.DocID(d), uint32(len(vec)), ch, root)
		sigBytes, err := cfg.Signer.Sign(msg)
		if err != nil {
			return nil, fmt.Errorf("engine: sign doc %d: %w", d, err)
		}
		nSigs++
		rec := encodeDocRecord(vec, ch, sigBytes)
		c.layout.Doc[d] = dev.AllocWrite(rec)
		c.space.DocRecordBytes += int64(len(rec))
		c.space.ContentBytes += int64(len(idx.Content[d]))
	}

	// Inverted lists: plain blocks, two chain layouts, four signed roots.
	m := idx.M()
	rho := core.ChainRho(cfg.Store.BlockSize, cfg.HashSize)
	c.layout.Plain = make([]store.Extent, m)
	c.layout.ChainTRA = make([]store.Extent, m)
	c.layout.ChainTNRA = make([]store.Extent, m)
	for k := range c.termRoots {
		c.termRoots[k] = make([][]byte, m)
		if !cfg.DictMode {
			c.termSigs[k] = make([][]byte, m)
		}
	}
	kinds := []core.StructureKind{core.KindTRAMHT, core.KindTRACMHT, core.KindTNRAMHT, core.KindTNRACMHT}
	for t := 0; t < m; t++ {
		tid := index.TermID(t)
		ps := idx.List(tid)
		ft := uint32(len(ps))
		name := idx.Name(tid)

		plain := encodePlainList(ps, cfg.Store.BlockSize)
		c.layout.Plain[t] = dev.AllocWrite(plain)
		c.space.PlainListBytes += int64(len(plain))

		traLeaves := core.KindTRACMHT.ListLeaves(ps)
		tnraLeaves := core.KindTNRACMHT.ListLeaves(ps)

		traChain := core.ChainDigests(c.hasher, traLeaves, rho)
		tnraChain := core.ChainDigests(c.hasher, tnraLeaves, rho)
		traBytes := encodeChainList(ps, traChain, cfg.Store.BlockSize, cfg.HashSize, rho)
		tnraBytes := encodeChainList(ps, tnraChain, cfg.Store.BlockSize, cfg.HashSize, rho)
		c.layout.ChainTRA[t] = dev.AllocWrite(traBytes)
		c.layout.ChainTNRA[t] = dev.AllocWrite(tnraBytes)
		c.space.ChainTRABytes += int64(len(traBytes))
		c.space.ChainTNRABytes += int64(len(tnraBytes))

		roots := [4][]byte{
			mht.Root(c.hasher, traLeaves),  // KindTRAMHT
			traChain[0],                    // KindTRACMHT
			mht.Root(c.hasher, tnraLeaves), // KindTNRAMHT
			tnraChain[0],                   // KindTNRACMHT
		}
		for k, kind := range kinds {
			c.termRoots[k][t] = roots[k]
			if cfg.DictMode {
				continue
			}
			msg := core.TermRootMessage(kind, name, tid, ft, roots[k])
			sb, err := cfg.Signer.Sign(msg)
			if err != nil {
				return nil, fmt.Errorf("engine: sign term %q kind %d: %w", name, kind, err)
			}
			c.termSigs[k][t] = sb
			nSigs++
		}
	}

	manifest := &core.Manifest{
		N:                  uint32(idx.N),
		M:                  uint32(m),
		AvgLen:             idx.AvgLen,
		K1:                 cfg.Okapi.K1,
		B:                  cfg.Okapi.B,
		BlockSize:          uint32(cfg.Store.BlockSize),
		HashSize:           uint8(cfg.HashSize),
		DictMode:           cfg.DictMode,
		VocabProofsEnabled: cfg.VocabProofs,
		DocHashRoot:        mht.Root(c.hasher, c.docHash),
		Generation:         cfg.Generation,
	}
	if cfg.Tombstones != nil {
		if len(cfg.Tombstones) != idx.N {
			return nil, fmt.Errorf("engine: %d tombstone flags for %d documents", len(cfg.Tombstones), idx.N)
		}
		bm := make([]byte, (idx.N+7)/8)
		dead := 0
		for d, t := range cfg.Tombstones {
			if t {
				bm[d>>3] |= 1 << (d & 7)
				dead++
			}
		}
		if dead == idx.N {
			return nil, errors.New("engine: every document tombstoned")
		}
		if dead > 0 {
			if cfg.Generation == 0 {
				return nil, errors.New("engine: tombstones require a live collection (generation ≥ 1)")
			}
			manifest.Live = uint32(idx.N - dead)
			manifest.Tombstones = bm
		}
	}
	if cfg.DictMode {
		for k := range kinds {
			manifest.DictRoots[k] = mht.Root(c.hasher, c.termRoots[k])
		}
	}
	if cfg.VocabProofs {
		c.nameDict = make([][]byte, m)
		for t := 0; t < m; t++ {
			c.nameDict[t] = core.VocabLeaf(idx.Name(index.TermID(t)))
		}
		manifest.NameDictRoot = mht.Root(c.hasher, c.nameDict)
	}
	if cfg.Authority != nil {
		if len(cfg.Authority) != idx.N {
			return nil, fmt.Errorf("engine: %d authority scores for %d documents", len(cfg.Authority), idx.N)
		}
		if cfg.Beta < 0 {
			return nil, fmt.Errorf("engine: negative authority weight %v", cfg.Beta)
		}
		c.authority = make([]float32, idx.N)
		c.authorityLeaves = make([][]byte, idx.N)
		var amax float32
		for d, a := range cfg.Authority {
			if a < 0 || a > 1 {
				return nil, fmt.Errorf("engine: authority[%d] = %v outside [0,1]", d, a)
			}
			a32 := float32(a)
			c.authority[d] = a32
			c.authorityLeaves[d] = core.EncodeAuthorityLeaf(index.DocID(d), a32)
			if a32 > amax {
				amax = a32
			}
		}
		manifest.Boosted = true
		manifest.Beta = cfg.Beta
		manifest.AMax = float64(amax)
		manifest.AuthorityRoot = mht.Root(c.hasher, c.authorityLeaves)
		auth := c.authority
		c.boost = &core.Boost{
			Beta: cfg.Beta,
			AMax: float64(amax),
			Authority: func(d index.DocID) float64 {
				return float64(auth[d])
			},
		}
	}
	c.manifest = manifest
	c.manifestSig, err = cfg.Signer.Sign(manifest.Encode())
	if err != nil {
		return nil, fmt.Errorf("engine: sign manifest: %w", err)
	}
	nSigs++

	if !cfg.DictMode {
		c.space.TermSigBytes = int64(4 * m * cfg.Signer.Size())
	}
	c.space.DeviceBytes = dev.SizeBytes()
	c.buildStats = BuildStats{BuildTime: time.Since(start), Signatures: nSigs}
	return c, nil
}

// Index exposes the underlying inverted index (dictionary pinned in memory).
func (c *Collection) Index() *index.Index { return c.idx }

// LiveDocs returns the number of live (non-tombstoned) documents; equal to
// Index().N unless the collection carries tombstones.
func (c *Collection) LiveDocs() int { return c.manifest.LiveDocs() }

// deadPredicate returns the tombstone skip rule for the search algorithms,
// or nil when no slot is tombstoned (the common case pays nothing).
func (c *Collection) deadPredicate() func(index.DocID) bool {
	m := c.manifest
	if len(m.Tombstones) == 0 {
		return nil
	}
	return func(d index.DocID) bool { return m.IsTombstoned(uint32(d)) }
}

// Device exposes the simulated disk (tests use it for failure injection).
func (c *Collection) Device() *store.Device { return c.dev }

// Manifest returns the signed collection metadata and its signature.
func (c *Collection) Manifest() (*core.Manifest, []byte) { return c.manifest, c.manifestSig }

// Verifier returns the owner's public verification key.
func (c *Collection) Verifier() sig.Verifier { return c.verifier }

// BuildStats returns owner-side construction costs.
func (c *Collection) BuildStats() BuildStats { return c.buildStats }

// Space returns the storage breakdown.
func (c *Collection) Space() SpaceReport { return c.space }

// Layout exposes extent locations (tests use it for targeted corruption).
func (c *Collection) Layout() *Layout { return &c.layout }
