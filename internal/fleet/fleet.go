// Package fleet is the multi-host serving layer: a Frontend that fans
// /v1 traffic out across N replica backends with health-aware ejection,
// retry/timeout/backoff, and generation-consistent routing — a retried
// request never observes a publication-generation regression, and
// replicas lagging behind a snapshot swap are routed around until they
// catch up.
//
// The front end is an UNTRUSTED component, exactly like the replicas
// behind it: every response it forwards is verified end-to-end by the
// client against the owner's public key, so nothing here participates in
// the authentication protocol. What the front end does add is
// availability (failover between replicas) and the routing discipline
// that keeps honest swaps from looking like rollback attacks to clients.
// The complementary client-side defence — cross-checking replicas
// directly to catch an equivocating fleet — lives in the root package's
// FleetClient (docs/FLEET.md).
package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"authtext/internal/httpapi"
	"authtext/internal/obs"
)

// PathFleetHealthz serves the per-backend fleet status (FleetHealth).
const PathFleetHealthz = "/v1/fleet/healthz"

// Defaults for Config fields left zero.
const (
	DefaultProbeInterval  = 500 * time.Millisecond
	DefaultAttemptTimeout = 10 * time.Second
	DefaultMaxAttempts    = 3
	DefaultEjectAfter     = 2
	DefaultEjectFor       = 1 * time.Second
	// maxEjectFor caps the exponential ejection backoff.
	maxEjectFor = 30 * time.Second
	// maxProxyBody caps the request body the front end buffers for
	// retries; far above MaxBodyBytes, so it never bites a legitimate
	// /v1/search body.
	maxProxyBody = 32 << 20
)

// Config configures a Frontend.
type Config struct {
	// Backends are the replica base URLs (e.g. "http://10.0.0.1:8080").
	// At least one is required.
	Backends []string
	// ProbeInterval is the health-probe period (DefaultProbeInterval when
	// zero). Probes GET /v1/healthz on every backend, learn generations,
	// and drive ejection/recovery independent of request traffic.
	ProbeInterval time.Duration
	// AttemptTimeout bounds one forwarded attempt to one backend.
	AttemptTimeout time.Duration
	// MaxAttempts bounds the backends tried per request (each attempt
	// goes to a backend not yet tried for this request).
	MaxAttempts int
	// EjectAfter is the number of consecutive failures that ejects a
	// backend from the rotation.
	EjectAfter int
	// EjectFor is the base ejection duration; it doubles per consecutive
	// ejection (capped) and resets on a successful probe or request.
	EjectFor time.Duration
	// Transport overrides the forwarding transport (tests inject one).
	Transport http.RoundTripper
	// Registry receives authtext_fleet_* metrics and is served at
	// /v1/metrics when non-nil.
	Registry *obs.Registry
	// Logger receives ejection/recovery events (discarded when nil).
	Logger *slog.Logger
}

// backend is the per-replica routing state. All fields are atomics: the
// request path reads them lock-free; membership changes copy the slice.
type backend struct {
	url string
	// gen is the highest generation this backend has been seen serving
	// (probe healthz or response header).
	gen atomic.Uint64
	// inflight is the number of requests currently forwarded to it
	// (power-of-two-choices reads it).
	inflight atomic.Int64
	// fails counts consecutive failures since the last success.
	fails atomic.Int32
	// ejectedUntil is a unix-nano deadline; 0 = in rotation.
	ejectedUntil atomic.Int64
	// ejections counts consecutive ejections (backoff exponent), reset on
	// recovery.
	ejections atomic.Int32
	// healthy is the last probe verdict (status reporting only; routing
	// uses ejection state).
	healthy atomic.Bool
	// probed flips true after the first probe answer, so status can
	// distinguish "unknown yet" from "down".
	probed atomic.Bool
	// lastHealth is the last successfully probed healthz payload (shape
	// for the synthesized front-end healthz).
	lastHealth atomic.Pointer[httpapi.Health]
}

// available reports whether the backend is in rotation at now.
func (b *backend) available(now time.Time) bool {
	eu := b.ejectedUntil.Load()
	return eu == 0 || now.UnixNano() >= eu
}

// Frontend load-balances the /v1 read surface over replica backends. It
// implements http.Handler; Close stops the probe loop.
type Frontend struct {
	cfg    Config
	hc     *http.Client
	logger *slog.Logger
	start  time.Time

	// backends is the current membership (copy-on-write under mu).
	mu       sync.Mutex
	backends atomic.Pointer[[]*backend]

	// watermark is the highest generation any verified-healthy backend or
	// forwarded response has shown; responses below it are re-routed.
	watermark atomic.Uint64

	served atomic.Int64
	failed atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// Metric handles (nil without a Registry; guarded by inc/observe
	// helpers).
	mProxiedOK   *obs.Counter
	mProxiedFail *obs.Counter
	mRetries     *obs.Counter
	mEjections   *obs.Counter
	mLagReroutes *obs.Counter
	mProbes      *obs.Counter
	mProbeFails  *obs.Counter
}

// New validates cfg, starts the probe loop, and returns the front end.
func New(cfg Config) (*Frontend, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("fleet: no backends configured")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = DefaultAttemptTimeout
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = DefaultEjectAfter
	}
	if cfg.EjectFor <= 0 {
		cfg.EjectFor = DefaultEjectFor
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
	}
	f := &Frontend{
		cfg:    cfg,
		logger: logger,
		start:  time.Now(),
		stop:   make(chan struct{}),
	}
	f.hc = &http.Client{Transport: cfg.Transport, Timeout: cfg.AttemptTimeout}
	bs := make([]*backend, 0, len(cfg.Backends))
	seen := make(map[string]bool, len(cfg.Backends))
	for _, raw := range cfg.Backends {
		u, err := normalizeBackendURL(raw)
		if err != nil {
			return nil, err
		}
		if seen[u] {
			return nil, fmt.Errorf("fleet: duplicate backend %s", u)
		}
		seen[u] = true
		bs = append(bs, &backend{url: u})
	}
	f.backends.Store(&bs)
	if reg := cfg.Registry; reg != nil {
		reg.GaugeFunc("authtext_fleet_backends", "Configured replica backends.",
			func() float64 { return float64(len(*f.backends.Load())) })
		reg.GaugeFunc("authtext_fleet_backends_available", "Replica backends currently in rotation.",
			func() float64 { return float64(f.availableCount()) })
		reg.GaugeFunc("authtext_fleet_generation", "Fleet generation watermark (highest generation seen).",
			func() float64 { return float64(f.watermark.Load()) })
		help := "Requests proxied through the fleet front end by outcome."
		f.mProxiedOK = reg.Counter("authtext_fleet_proxied_total", help, obs.L("outcome", "ok"))
		f.mProxiedFail = reg.Counter("authtext_fleet_proxied_total", help, obs.L("outcome", "unavailable"))
		f.mRetries = reg.Counter("authtext_fleet_retries_total", "Request attempts retried on another backend.")
		f.mEjections = reg.Counter("authtext_fleet_ejections_total", "Backends ejected from rotation after consecutive failures.")
		f.mLagReroutes = reg.Counter("authtext_fleet_lag_reroutes_total", "Responses discarded because they regressed below the generation watermark.")
		f.mProbes = reg.Counter("authtext_fleet_probes_total", "Health probes sent.")
		f.mProbeFails = reg.Counter("authtext_fleet_probe_failures_total", "Health probes that failed.")
	}
	f.wg.Add(1)
	go f.probeLoop()
	return f, nil
}

func normalizeBackendURL(raw string) (string, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("fleet: bad backend URL %q: %v", raw, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("fleet: bad backend URL %q (want http(s)://host[:port])", raw)
	}
	return raw, nil
}

func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

// Close stops the probe loop. In-flight requests finish normally.
func (f *Frontend) Close() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.wg.Wait()
}

// Generation returns the fleet generation watermark.
func (f *Frontend) Generation() uint64 { return f.watermark.Load() }

// AddBackend adds a replica to the rotation (it becomes eligible after
// its first successful probe or immediately for routing; its generation
// is unknown until probed).
func (f *Frontend) AddBackend(raw string) error {
	u, err := normalizeBackendURL(raw)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	old := *f.backends.Load()
	for _, b := range old {
		if b.url == u {
			return fmt.Errorf("fleet: backend %s already present", u)
		}
	}
	nw := make([]*backend, len(old)+1)
	copy(nw, old)
	nb := &backend{url: u}
	nw[len(old)] = nb
	f.backends.Store(&nw)
	// Probe it right away so it picks up a generation before the next tick.
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		f.probe(nb)
	}()
	return nil
}

// RemoveBackend removes a replica from the rotation; it reports whether
// the URL was present.
func (f *Frontend) RemoveBackend(raw string) bool {
	u, err := normalizeBackendURL(raw)
	if err != nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	old := *f.backends.Load()
	nw := make([]*backend, 0, len(old))
	found := false
	for _, b := range old {
		if b.url == u {
			found = true
			continue
		}
		nw = append(nw, b)
	}
	if found {
		f.backends.Store(&nw)
	}
	return found
}

func (f *Frontend) availableCount() int {
	now := time.Now()
	n := 0
	for _, b := range *f.backends.Load() {
		if b.available(now) {
			n++
		}
	}
	return n
}

// probeLoop drives health probes until Close.
func (f *Frontend) probeLoop() {
	defer f.wg.Done()
	f.probeRound()
	t := time.NewTicker(f.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			f.probeRound()
		}
	}
}

func (f *Frontend) probeRound() {
	bs := *f.backends.Load()
	var wg sync.WaitGroup
	for _, b := range bs {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			f.probe(b)
		}(b)
	}
	wg.Wait()
}

// probe GETs one backend's healthz, updating generation and ejection
// state.
func (f *Frontend) probe(b *backend) {
	inc(f.mProbes)
	timeout := f.cfg.ProbeInterval
	if timeout > f.cfg.AttemptTimeout {
		timeout = f.cfg.AttemptTimeout
	}
	hc := &http.Client{Transport: f.cfg.Transport, Timeout: timeout}
	resp, err := hc.Get(b.url + httpapi.PathHealthz)
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			err = fmt.Errorf("healthz status %d", resp.StatusCode)
		} else {
			var h httpapi.Health
			if derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); derr != nil {
				err = fmt.Errorf("healthz decode: %v", derr)
			} else {
				b.probed.Store(true)
				b.healthy.Store(true)
				b.lastHealth.Store(&h)
				f.raiseGen(b, h.Generation)
				f.recover(b)
				return
			}
		}
	}
	b.probed.Store(true)
	b.healthy.Store(false)
	inc(f.mProbeFails)
	f.fail(b, err)
}

// raiseGen raises (never lowers) a backend's known generation and the
// fleet watermark. A replica cannot regress its own generation
// (LiveReplica refuses rollback), so raise-only avoids races between a
// stale probe and a fresh response header.
func (f *Frontend) raiseGen(b *backend, gen uint64) {
	for {
		cur := b.gen.Load()
		if gen <= cur || b.gen.CompareAndSwap(cur, gen) {
			break
		}
	}
	for {
		cur := f.watermark.Load()
		if gen <= cur || f.watermark.CompareAndSwap(cur, gen) {
			break
		}
	}
}

// fail records one failure; EjectAfter consecutive failures eject the
// backend with exponential backoff.
func (f *Frontend) fail(b *backend, err error) {
	if int(b.fails.Add(1)) < f.cfg.EjectAfter {
		return
	}
	b.fails.Store(0)
	n := b.ejections.Add(1)
	backoff := f.cfg.EjectFor
	for i := int32(1); i < n && backoff < maxEjectFor; i++ {
		backoff *= 2
	}
	if backoff > maxEjectFor {
		backoff = maxEjectFor
	}
	b.ejectedUntil.Store(time.Now().Add(backoff).UnixNano())
	inc(f.mEjections)
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	f.logger.Warn("fleet: backend ejected", "backend", b.url, "for", backoff.String(), "err", msg)
}

// recover puts a backend back in rotation after a success.
func (f *Frontend) recover(b *backend) {
	b.fails.Store(0)
	if b.ejectedUntil.Swap(0) != 0 {
		b.ejections.Store(0)
		f.logger.Info("fleet: backend recovered", "backend", b.url)
	}
}

// pick chooses the next backend for a request: among available, untried
// backends that are caught up to the highest generation any candidate
// serves, pick the less-loaded of two random choices.
func (f *Frontend) pick(tried map[*backend]bool) *backend {
	now := time.Now()
	bs := *f.backends.Load()
	cands := make([]*backend, 0, len(bs))
	var topGen uint64
	for _, b := range bs {
		if tried[b] || !b.available(now) {
			continue
		}
		cands = append(cands, b)
		if g := b.gen.Load(); g > topGen {
			topGen = g
		}
	}
	// Generation-consistent routing: only candidates at the newest
	// generation any candidate serves. (If the watermark is ahead of every
	// candidate — e.g. the only caught-up replica just died — we still
	// serve from the best available; the response-header check below
	// guards the per-request monotonicity clients depend on.)
	cur := cands[:0]
	for _, b := range cands {
		if b.gen.Load() == topGen {
			cur = append(cur, b)
		}
	}
	switch len(cur) {
	case 0:
		return nil
	case 1:
		return cur[0]
	}
	// Power of two choices on in-flight load.
	i := rand.Intn(len(cur))
	j := rand.Intn(len(cur) - 1)
	if j >= i {
		j++
	}
	if cur[j].inflight.Load() < cur[i].inflight.Load() {
		return cur[j]
	}
	return cur[i]
}

// proxyable is the read surface the front end forwards.
func proxyable(path string) bool {
	switch path {
	case httpapi.PathSearch, httpapi.PathManifest, httpapi.PathShardSearch, httpapi.PathShardManifest:
		return true
	}
	return false
}

// ServeHTTP implements http.Handler.
func (f *Frontend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case proxyable(r.URL.Path):
		f.proxy(w, r)
	case r.URL.Path == httpapi.PathHealthz:
		f.serveHealth(w, r)
	case r.URL.Path == PathFleetHealthz:
		f.serveFleetHealth(w, r)
	case r.URL.Path == httpapi.PathAdminUpdate:
		writeError(w, http.StatusForbidden, httpapi.CodeUpdateFailed,
			"the fleet front end is serving-only; apply updates at the owner")
	case r.URL.Path == httpapi.PathMetrics && f.cfg.Registry != nil:
		f.cfg.Registry.Handler().ServeHTTP(w, r)
	default:
		writeError(w, http.StatusNotFound, httpapi.CodeNotFound, "no such endpoint: "+r.URL.Path)
	}
}

// proxy forwards one request, retrying across distinct backends on
// transport errors, 5xx answers, and generation regressions.
func (f *Frontend) proxy(w http.ResponseWriter, r *http.Request) {
	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, maxProxyBody+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, httpapi.CodeBadRequest, "reading request body: "+err.Error())
			return
		}
		if len(body) > maxProxyBody {
			writeError(w, http.StatusRequestEntityTooLarge, httpapi.CodeBadRequest, "request body too large")
			return
		}
	}
	tried := make(map[*backend]bool, f.cfg.MaxAttempts)
	lastErr := "no backend in rotation"
	for attempt := 0; attempt < f.cfg.MaxAttempts; attempt++ {
		b := f.pick(tried)
		if b == nil {
			break
		}
		tried[b] = true
		if attempt > 0 {
			inc(f.mRetries)
		}
		if f.forward(w, r, b, body, &lastErr) {
			f.served.Add(1)
			inc(f.mProxiedOK)
			return
		}
	}
	f.failed.Add(1)
	inc(f.mProxiedFail)
	writeError(w, http.StatusServiceUnavailable, httpapi.CodeFleetUnavailable,
		"no replica backend available: "+lastErr)
}

// forward tries one backend; it reports whether the response was written
// to the client (true = done, false = retry with another backend).
func (f *Frontend) forward(w http.ResponseWriter, r *http.Request, b *backend, body []byte, lastErr *string) bool {
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	out, err := http.NewRequestWithContext(r.Context(), r.Method,
		b.url+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		*lastErr = err.Error()
		return false
	}
	copyHeader(out.Header, r.Header, "Accept")
	copyHeader(out.Header, r.Header, "Content-Type")
	copyHeader(out.Header, r.Header, "X-Request-Id")
	resp, err := f.hc.Do(out)
	if err != nil {
		*lastErr = err.Error()
		f.fail(b, err)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		*lastErr = fmt.Sprintf("%s answered %d", b.url, resp.StatusCode)
		f.fail(b, fmt.Errorf("status %d", resp.StatusCode))
		return false
	}
	if gh := resp.Header.Get(httpapi.GenerationHeader); gh != "" {
		gen, perr := strconv.ParseUint(gh, 10, 64)
		if perr == nil {
			if wm := f.watermark.Load(); gen < wm {
				// A lagging replica raced a snapshot swap: the fleet has
				// already served generation wm, so forwarding this response
				// would be a client-visible regression. Route around it; this
				// is lag, not failure, so it does not count toward ejection.
				io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
				*lastErr = fmt.Sprintf("%s lags at generation %d (fleet at %d)", b.url, gen, wm)
				inc(f.mLagReroutes)
				return false
			}
			f.raiseGen(b, gen)
		}
	}
	f.recover(b)
	// Success: relay status, negotiated content type, and body.
	copyHeader(w.Header(), resp.Header, "Content-Type")
	copyHeader(w.Header(), resp.Header, "Content-Length")
	copyHeader(w.Header(), resp.Header, httpapi.GenerationHeader)
	w.WriteHeader(resp.StatusCode)
	if _, cerr := io.Copy(w, resp.Body); cerr != nil {
		// Body relay failed mid-stream; the status line is gone, nothing
		// left to do but log. The client sees a truncated body and treats
		// it as a transport failure (never tampering: undecodable bodies
		// of this kind surface as unexpected-EOF transport errors).
		f.logger.Warn("fleet: body relay interrupted", "backend", b.url, "err", cerr.Error())
	}
	return true
}

func copyHeader(dst, src http.Header, key string) {
	if vs := src.Values(key); len(vs) > 0 {
		dst[http.CanonicalHeaderKey(key)] = vs
	}
}

// BackendStatus is one replica's routing state inside FleetHealth.
type BackendStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Probed reports whether at least one probe has answered (false right
	// after startup or AddBackend).
	Probed     bool   `json:"probed"`
	Ejected    bool   `json:"ejected,omitempty"`
	Generation uint64 `json:"generation,omitempty"`
	Inflight   int64  `json:"inflight,omitempty"`
}

// FleetHealth is the payload of /v1/fleet/healthz.
type FleetHealth struct {
	// Status is "ok" when at least one backend is in rotation,
	// "unavailable" otherwise.
	Status string `json:"status"`
	// Generation is the fleet watermark.
	Generation uint64          `json:"generation,omitempty"`
	Backends   []BackendStatus `json:"backends"`
}

// Status returns the current fleet status snapshot.
func (f *Frontend) Status() FleetHealth {
	now := time.Now()
	bs := *f.backends.Load()
	out := FleetHealth{Status: "unavailable", Generation: f.watermark.Load()}
	for _, b := range bs {
		avail := b.available(now)
		if avail {
			out.Status = "ok"
		}
		out.Backends = append(out.Backends, BackendStatus{
			URL:        b.url,
			Healthy:    b.healthy.Load(),
			Probed:     b.probed.Load(),
			Ejected:    !avail,
			Generation: b.gen.Load(),
			Inflight:   b.inflight.Load(),
		})
	}
	return out
}

func (f *Frontend) serveFleetHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, httpapi.CodeMethodNotAllowed, r.Method+" not allowed")
		return
	}
	writeJSON(w, http.StatusOK, f.Status())
}

// serveHealth synthesizes a standard /v1/healthz from the fleet's view:
// collection shape from the freshest probed backend, liveness from the
// rotation, counters from the front end itself. Clients built for a
// single replica keep working unchanged against a fleet.
func (f *Frontend) serveHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, httpapi.CodeMethodNotAllowed, r.Method+" not allowed")
		return
	}
	h := httpapi.Health{
		Status:        "unavailable",
		Generation:    f.watermark.Load(),
		UptimeMillis:  time.Since(f.start).Milliseconds(),
		QueriesServed: f.served.Load(),
		QueriesFailed: f.failed.Load(),
	}
	now := time.Now()
	var bestGen uint64
	for _, b := range *f.backends.Load() {
		if b.available(now) {
			h.Status = "ok"
		}
		if lh := b.lastHealth.Load(); lh != nil && (h.Documents == 0 || b.gen.Load() >= bestGen) {
			bestGen = b.gen.Load()
			h.Documents = lh.Documents
			h.Terms = lh.Terms
			h.Shards = lh.Shards
		}
	}
	if h.Status == "ok" {
		httpapiSetGen(w, h.Generation)
	}
	writeJSON(w, http.StatusOK, h)
}

func httpapiSetGen(w http.ResponseWriter, gen uint64) {
	if gen > 0 {
		w.Header().Set(httpapi.GenerationHeader, strconv.FormatUint(gen, 10))
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, &httpapi.ErrorResponse{Error: httpapi.ErrorBody{Code: code, Message: msg}})
}
