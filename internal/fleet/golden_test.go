package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"authtext/internal/httpapi"
)

// Golden wire fixtures for the fleet additions to the /v1 protocol: the
// fleet_unavailable error, the serving-only admin refusal, and the
// /v1/fleet/healthz payload. Same contract as the httpapi golden suite —
// any diff here is a protocol change and must be deliberate. Regenerate
// with UPDATE_GOLDEN=1 go test ./internal/fleet.

var fleetGoldenCases = []struct {
	file  string
	value interface{}
	fresh func() interface{}
}{
	{
		file: "error_fleet_unavailable.json",
		value: &httpapi.ErrorResponse{Error: httpapi.ErrorBody{
			Code:    httpapi.CodeFleetUnavailable,
			Message: "no replica backend available: http://replica-2.example:8080 lags at generation 6 (fleet at 7)",
		}},
		fresh: func() interface{} { return new(httpapi.ErrorResponse) },
	},
	{
		file: "error_admin_forbidden.json",
		value: &httpapi.ErrorResponse{Error: httpapi.ErrorBody{
			Code:    httpapi.CodeUpdateFailed,
			Message: "the fleet front end is serving-only; apply updates at the owner",
		}},
		fresh: func() interface{} { return new(httpapi.ErrorResponse) },
	},
	{
		file: "fleet_healthz.json",
		value: &FleetHealth{
			Status:     "ok",
			Generation: 12,
			Backends: []BackendStatus{
				{URL: "http://replica-1.example:8080", Healthy: true, Probed: true, Generation: 12, Inflight: 3},
				{URL: "http://replica-2.example:8080", Healthy: false, Probed: true, Ejected: true, Generation: 11},
			},
		},
		fresh: func() interface{} { return new(FleetHealth) },
	},
}

func TestFleetGoldenWireFormats(t *testing.T) {
	for _, tc := range fleetGoldenCases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			path := filepath.Join("testdata", tc.file)
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				enc, err := json.MarshalIndent(tc.value, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run with UPDATE_GOLDEN=1 once): %v", err)
			}

			got := tc.fresh()
			dec := json.NewDecoder(bytes.NewReader(raw))
			dec.DisallowUnknownFields()
			if err := dec.Decode(got); err != nil {
				t.Fatalf("golden fixture no longer decodes: %v", err)
			}
			if !reflect.DeepEqual(got, tc.value) {
				t.Errorf("decoded fixture disagrees with expected value:\n got: %#v\nwant: %#v", got, tc.value)
			}

			enc, err := json.Marshal(tc.value)
			if err != nil {
				t.Fatal(err)
			}
			var a, b interface{}
			if err := json.Unmarshal(enc, &a); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(raw, &b); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("re-encoded value disagrees with the golden fixture\n got: %s\nwant: %s", enc, raw)
			}
		})
	}
}

// The live 403 the front end emits for admin updates must match the
// golden fixture byte-for-byte (modulo the encoder's trailing newline):
// operators alarm on this body.
func TestAdminForbiddenMatchesGolden(t *testing.T) {
	s := newStubReplica(1)
	defer s.Close()
	f := newTestFrontend(t, []string{s.URL()}, nil)
	req := httptest.NewRequest(http.MethodPost, httpapi.PathAdminUpdate, strings.NewReader(`{}`))
	w := httptest.NewRecorder()
	f.ServeHTTP(w, req)
	if w.Code != http.StatusForbidden {
		t.Fatalf("status %d, want 403", w.Code)
	}
	raw, err := os.ReadFile(filepath.Join("testdata", "error_admin_forbidden.json"))
	if err != nil {
		t.Fatal(err)
	}
	var want, got interface{}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("live 403 body disagrees with golden fixture\n got: %s\nwant: %s", w.Body.Bytes(), raw)
	}
}
